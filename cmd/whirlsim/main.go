// Command whirlsim runs one benchmark under one (or every) LLC scheme
// on a simulated NUCA chip and prints the resulting performance and
// data-movement energy report.
//
// Usage:
//
//	whirlsim -app delaunay                         # all registered schemes
//	whirlsim -app MIS -scheme whirlpool            # one scheme
//	whirlsim -app mcf -chip 8x8:6                  # custom chip topology
//	whirlsim -spec specs/phase-shift.json -app phaser
//	whirlsim -list                                 # show available apps and schemes
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"whirlpool"
	"whirlpool/internal/cliutil"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whirlsim:", err)
	os.Exit(1)
}

func main() {
	app := flag.String("app", "delaunay", "benchmark to run (see -list)")
	scheme := flag.String("scheme", "", "scheme to run (default: all; see -list)")
	specFiles := flag.String("spec", "", "comma-separated workload-spec files to load (see docs/workload-specs.md)")
	scale := flag.Float64("scale", 1.0, "workload length multiplier")
	seed := flag.Uint64("seed", 0, "workload generation seed (0 = the published default)")
	reconfig := flag.Uint64("reconfig", 0, "D-NUCA reconfiguration period in cycles (0 = default)")
	chip := flag.String("chip", "", "chip topology: 4core, 16core, or WxH[:cores[:bankKB]]")
	pools := flag.Int("auto", 0, "classify with WhirlTool into N pools (whirlpool scheme)")
	traceCache := flag.String("trace-cache", "", cliutil.TraceCacheUsage)
	list := flag.Bool("list", false, "list available apps and schemes, then exit")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("whirlsim", *version)

	if dir, err := cliutil.ResolveTraceCacheDir(*traceCache); err != nil {
		fatal(err)
	} else if dir != "" {
		whirlpool.SetTraceCacheDir(dir)
	}

	for _, path := range cliutil.SplitList(*specFiles) {
		info, err := whirlpool.LoadSpecFile(path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "whirlsim: loaded %s: %d app(s), %d mix(es)\n",
			info.Name, len(info.Apps), len(info.Mixes))
	}

	if *list {
		specApps := map[string]bool{}
		for _, a := range whirlpool.SpecApps() {
			specApps[a] = true
		}
		fmt.Println("single-threaded apps:")
		for _, a := range whirlpool.Apps() {
			if specApps[a] {
				fmt.Println("  ", a, "(spec file)")
			} else {
				fmt.Println("  ", a)
			}
		}
		fmt.Println("parallel apps (use whirlbench -fig fig13):")
		for _, a := range whirlpool.ParallelApps() {
			fmt.Println("  ", a)
		}
		fmt.Println("schemes:")
		for _, s := range whirlpool.Schemes() {
			fmt.Printf("   %s (%s)\n", s, whirlpool.SchemeLabel(s))
		}
		return
	}

	opts := []whirlpool.Option{whirlpool.WithScale(*scale)}
	if *seed != 0 {
		opts = append(opts, whirlpool.WithSeed(*seed))
	}
	if *reconfig != 0 {
		opts = append(opts, whirlpool.WithReconfigCycles(*reconfig))
	}
	if *pools > 0 {
		opts = append(opts, whirlpool.WithAutoClassify(*pools))
	}
	if *chip != "" {
		c, err := whirlpool.ParseChip(*chip)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, whirlpool.WithChip(c))
	}

	var schemes []whirlpool.Scheme
	if *scheme != "" {
		schemes = []whirlpool.Scheme{whirlpool.Scheme(*scheme)}
	} else {
		schemes = whirlpool.Schemes()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tcycles(M)\tIPC\tAPKI\tMPKI\thit%\tbyp%\tDME(mJ)\tnet\tbank\tmem")
	for _, s := range schemes {
		r, err := whirlpool.New(*app, s, opts...).Run()
		if err != nil {
			fatal(err)
		}
		d := float64(r.LLCAccesses)
		fmt.Fprintf(w, "%s\t%.2f\t%.3f\t%.1f\t%.2f\t%.1f\t%.1f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			s, r.Cycles/1e6, r.IPC, r.APKI, r.MPKI,
			100*float64(r.Hits)/d, 100*float64(r.Bypasses)/d,
			r.EnergyPJ/1e9, r.NetworkEnergyPJ/1e9, r.BankEnergyPJ/1e9, r.MemoryEnergyPJ/1e9)
	}
	w.Flush()
}
