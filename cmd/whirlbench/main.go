// Command whirlbench regenerates the paper's tables and figures.
//
// Usage:
//
//	whirlbench -fig fig21              # the overall comparison
//	whirlbench -fig fig22 -mixes 8     # mixes, fewer samples
//	whirlbench -fig all -scale 0.25    # everything, faster
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"whirlpool"
	"whirlpool/internal/cliutil"
)

func main() {
	fig := flag.String("fig", "", "figure/table id, or 'all' (see -listfigs)")
	scale := flag.Float64("scale", 1.0, "workload length multiplier")
	seed := flag.Uint64("seed", 0, "workload generation seed (0 = the published default)")
	mixes := flag.Int("mixes", 20, "number of mixes for fig22")
	apps := flag.String("apps", "", "comma-separated app subset for suite figures")
	traceCache := flag.String("trace-cache", "", cliutil.TraceCacheUsage)
	listFigs := flag.Bool("listfigs", false, "list figure ids and exit")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("whirlbench", *version)

	if dir, err := cliutil.ResolveTraceCacheDir(*traceCache); err != nil {
		fmt.Fprintln(os.Stderr, "whirlbench:", err)
		os.Exit(1)
	} else if dir != "" {
		whirlpool.SetTraceCacheDir(dir)
	}

	if *listFigs || *fig == "" {
		fmt.Println("figures:", strings.Join(whirlpool.Figures(), " "))
		return
	}
	opt := &whirlpool.FigureOptions{Scale: *scale, Mixes: *mixes, Seed: *seed}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	ids := []string{*fig}
	if *fig == "all" {
		ids = whirlpool.Figures()
	}
	for _, id := range ids {
		out, err := whirlpool.Figure(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whirlbench:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
