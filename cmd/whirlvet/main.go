// Command whirlvet runs the repo's static-analysis suite: five
// analyzers encoding invariants the codebase documents but `go vet`
// cannot check — determinism of the compute path, zero-alloc hot
// paths, envelope-only API errors, grep-able log keys, and
// mutex-guarded registries. See docs/lint.md for the catalog and the
// marker comments (//whirl:wallclock, //whirl:zeroalloc, ...).
//
// Usage:
//
//	whirlvet ./...                          # the whole module (what make lint runs)
//	whirlvet -analyzers determinism ./internal/experiments/
//	whirlvet -json ./...                    # machine-readable findings
//	whirlvet -write-baseline ./...          # grandfather current findings
//
// Exit status: 0 clean, 1 new findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"whirlpool/internal/cliutil"
	"whirlpool/internal/lint"
)

// defaultBaseline is picked up from the working directory when present
// (the committed one lives at the module root, where make lint runs).
const defaultBaseline = "lint.baseline.json"

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whirlvet:", err)
	os.Exit(2)
}

func main() {
	analyzersFlag := flag.String("analyzers", "", "comma-separated analyzers to run (default: all; see -list)")
	disableFlag := flag.String("disable", "", "comma-separated analyzers to skip")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	baselineFlag := flag.String("baseline", "", "baseline file of grandfathered findings (default: "+defaultBaseline+" when present)")
	writeBaseline := flag.Bool("write-baseline", false, "write current findings to the baseline file and exit")
	list := flag.Bool("list", false, "list analyzers and exit")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("whirlvet", *version)

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	cfg := lint.Config{
		Patterns:  flag.Args(),
		Analyzers: cliutil.SplitList(*analyzersFlag),
		Disable:   cliutil.SplitList(*disableFlag),
	}

	baselinePath := *baselineFlag
	if baselinePath == "" {
		if _, err := os.Stat(defaultBaseline); err == nil {
			baselinePath = defaultBaseline
		}
	}
	if baselinePath != "" && !*writeBaseline {
		b, err := lint.ReadBaseline(baselinePath)
		if err != nil {
			fatal(err)
		}
		cfg.Baseline = b
	}

	res, err := lint.Run(cfg)
	if err != nil {
		fatal(err)
	}

	if *writeBaseline {
		if baselinePath == "" {
			baselinePath = defaultBaseline
		}
		if err := lint.WriteBaseline(baselinePath, res.Findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "whirlvet: wrote %d finding(s) to %s\n", len(res.Findings), baselinePath)
		return
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings  []lint.Finding `json:"findings"`
			Baselined int            `json:"baselined"`
			Packages  int            `json:"packages"`
		}{nonNil(res.Findings), len(res.Baselined), res.Packages}); err != nil {
			fatal(err)
		}
	} else {
		lint.WriteText(os.Stdout, res.Findings)
	}

	if len(res.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "whirlvet: %d finding(s) in %d package(s)", len(res.Findings), res.Packages)
			if n := len(res.Baselined); n > 0 {
				fmt.Fprintf(os.Stderr, " (+%d baselined)", n)
			}
			fmt.Fprintln(os.Stderr)
		}
		os.Exit(1)
	}
}

func nonNil(fs []lint.Finding) []lint.Finding {
	if fs == nil {
		return []lint.Finding{}
	}
	return fs
}
