package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// promlintCmd validates Prometheus text exposition format 0.0.4 — the
// whirld /metrics?format=prom output, but any exposition works. It
// checks metric-name and label syntax, TYPE declarations, and sample
// values, reporting every offending line; any error exits non-zero so
// the obs-smoke CI step can gate on it.
func promlintCmd(args []string) {
	fs := flag.NewFlagSet("promlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: whirltool promlint <file | ->

Validates Prometheus text exposition format (e.g. curl .../metrics?format=prom | whirltool promlint -).`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	var r io.Reader
	if fs.Arg(0) == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	errs, samples := promLint(r)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "whirltool: promlint:", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: OK (%d samples)\n", samples)
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promTypes   = map[string]bool{
		"counter": true, "gauge": true, "histogram": true,
		"summary": true, "untyped": true,
	}
)

// promLint scans one exposition, returning the per-line problems and
// the number of valid samples seen.
func promLint(r io.Reader) (errs []string, samples int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{} // metric name → declared type
	lineNo := 0
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf("line %d: %s", lineNo, fmt.Sprintf(format, args...)))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parsePromComment(line)
			if !ok {
				continue // free-form comment: legal
			}
			if !promNameRe.MatchString(name) {
				fail("%s for invalid metric name %q", kind, name)
				continue
			}
			if kind == "TYPE" {
				if !promTypes[rest] {
					fail("unknown TYPE %q for %s", rest, name)
				}
				if _, dup := types[name]; dup {
					fail("duplicate TYPE for %s", name)
				}
				types[name] = rest
			}
			continue
		}
		name, labels, value, ok := parsePromSample(line)
		if !ok {
			fail("unparsable sample %q", line)
			continue
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		base = strings.TrimSuffix(base, "_bucket")
		if !promNameRe.MatchString(name) {
			fail("invalid metric name %q", name)
			continue
		}
		if _, declared := types[name]; !declared {
			if _, declared = types[base]; !declared {
				fail("sample %q has no preceding TYPE declaration", name)
			}
		}
		for _, l := range labels {
			if !promLabelRe.MatchString(l) {
				fail("invalid label name %q on %s", l, name)
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil &&
			value != "+Inf" && value != "-Inf" && value != "NaN" {
			fail("sample %s has non-numeric value %q", name, value)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		lineNo++
		fail("read: %v", err)
	}
	return errs, samples
}

// parsePromComment splits "# HELP name ..." / "# TYPE name kind".
func parsePromComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", "", false
	}
	rest = ""
	if len(fields) > 3 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parsePromSample splits one sample line into its metric name, label
// names, and value (an optional trailing timestamp is accepted and
// ignored). Label values may contain escaped quotes.
func parsePromSample(line string) (name string, labels []string, value string, ok bool) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name = rest[:i]
		end := promLabelEnd(rest[i:])
		if end < 0 {
			return "", nil, "", false
		}
		var lok bool
		labels, lok = parsePromLabels(rest[i+1 : i+end])
		if !lok {
			return "", nil, "", false
		}
		rest = rest[i+end+1:]
	} else {
		j := strings.IndexByte(rest, ' ')
		if j < 0 {
			return "", nil, "", false
		}
		name, rest = rest[:j], rest[j:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", false
	}
	return name, labels, fields[0], true
}

// promLabelEnd finds the index of the closing '}' of a label set
// starting at '{', honoring escapes inside quoted values. Returns -1 if
// unterminated.
func promLabelEnd(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// parsePromLabels extracts the label names of `k="v",k2="v2"`.
func parsePromLabels(s string) (names []string, ok bool) {
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, false
		}
		names = append(names, strings.TrimSpace(s[:eq]))
		// Scan the quoted value, honoring escapes.
		i := eq + 2
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return nil, false
		}
		s = s[i+1:]
		if s == "" {
			break
		}
		if s[0] != ',' {
			return nil, false
		}
		s = strings.TrimSpace(s[1:])
	}
	return names, true
}
