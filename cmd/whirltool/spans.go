package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"whirlpool/internal/obs"
)

// spansCmd renders a span-JSONL trace (the GET /v1/jobs/{id}/trace
// payload, or a tracer sink file) as a text waterfall: the tree by
// parent links, each span with its offset from the trace start, a
// scaled duration bar, and per-name aggregates plus the critical path
// at the bottom.
func spansCmd(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	width := fs.Int("width", 40, "waterfall bar width in characters")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: whirltool spans [-width N] <file | - | http(s)://...>

Renders a span-JSONL trace as a text waterfall. The input is a file of
one JSON span per line, "-" for stdin, or a URL (typically a whirld
job's /v1/jobs/{id}/trace endpoint).`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	spans, err := readSpans(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(spans) == 0 {
		fatal(fmt.Errorf("no spans in %s", fs.Arg(0)))
	}
	if err := renderSpans(os.Stdout, spans, *width); err != nil {
		fatal(err)
	}
}

// readSpans loads span JSONL from a file, stdin ("-"), or a URL.
func readSpans(src string) ([]obs.Span, error) {
	var r io.ReadCloser
	switch {
	case src == "-":
		r = os.Stdin
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: %s: %s", src, resp.Status, strings.TrimSpace(string(body)))
		}
		r = resp.Body
	default:
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	return obs.ParseSpans(r)
}

// spanNode is one span plus its resolved children, ordered by start.
type spanNode struct {
	span     obs.Span
	children []*spanNode
}

// buildTree links spans into trees by parent span ID. Spans whose
// parent is absent from the set (e.g. a caller's request span that
// lives in another process) render as additional roots.
func buildTree(spans []obs.Span) []*spanNode {
	nodes := make([]*spanNode, len(spans))
	byID := map[obs.SpanID]*spanNode{}
	for i := range spans {
		nodes[i] = &spanNode{span: spans[i]}
		byID[spans[i].ID] = nodes[i]
	}
	var roots []*spanNode
	for _, n := range nodes {
		if p := byID[n.span.Parent]; p != nil && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*spanNode) {
		sort.SliceStable(ns, func(i, j int) bool {
			if !ns[i].span.Start.Equal(ns[j].span.Start) {
				return ns[i].span.Start.Before(ns[j].span.Start)
			}
			return ns[i].span.Name < ns[j].span.Name
		})
	}
	for _, n := range nodes {
		order(n.children)
	}
	order(roots)
	return roots
}

// renderSpans writes the waterfall, the per-name aggregate table, and
// the critical path.
func renderSpans(w io.Writer, spans []obs.Span, width int) error {
	if width < 10 {
		width = 10
	}
	roots := buildTree(spans)

	// The timeline spans the earliest start to the latest end.
	t0 := spans[0].Start
	var tEnd time.Time
	for _, sp := range spans {
		if sp.Start.Before(t0) {
			t0 = sp.Start
		}
		if end := sp.Start.Add(sp.Dur); end.After(tEnd) {
			tEnd = end
		}
	}
	total := tEnd.Sub(t0)
	if total <= 0 {
		total = time.Microsecond
	}

	fmt.Fprintf(w, "trace %s: %d spans, %s\n\n", spans[0].Trace, len(spans), fmtDur(total))
	var walk func(n *spanNode, depth int)
	walk = func(n *spanNode, depth int) {
		sp := n.span
		off := sp.Start.Sub(t0)
		lead := int(int64(width) * int64(off) / int64(total))
		bar := int(int64(width) * int64(sp.Dur) / int64(total))
		if bar < 1 {
			bar = 1
		}
		if lead+bar > width {
			bar = width - lead
			if bar < 1 {
				lead, bar = width-1, 1
			}
		}
		lane := strings.Repeat(" ", lead) + strings.Repeat("█", bar) + strings.Repeat(" ", width-lead-bar)
		label := strings.Repeat("  ", depth) + sp.Name
		attrs := renderAttrs(sp)
		fmt.Fprintf(w, "%-32s |%s| %8s @ %-8s%s\n", clip(label, 32), lane, fmtDur(sp.Dur), fmtDur(off), attrs)
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}

	// Per-name aggregates.
	type agg struct {
		name  string
		n     int
		total time.Duration
		max   time.Duration
	}
	aggs := map[string]*agg{}
	var names []string
	for _, sp := range spans {
		a := aggs[sp.Name]
		if a == nil {
			a = &agg{name: sp.Name}
			aggs[sp.Name] = a
			names = append(names, sp.Name)
		}
		a.n++
		a.total += sp.Dur
		if sp.Dur > a.max {
			a.max = sp.Dur
		}
	}
	sort.Slice(names, func(i, j int) bool { return aggs[names[i]].total > aggs[names[j]].total })
	fmt.Fprintf(w, "\n%-24s %6s %10s %10s %10s\n", "span", "count", "total", "mean", "max")
	for _, name := range names {
		a := aggs[name]
		fmt.Fprintf(w, "%-24s %6d %10s %10s %10s\n",
			clip(a.name, 24), a.n, fmtDur(a.total), fmtDur(a.total/time.Duration(a.n)), fmtDur(a.max))
	}

	// Critical path: from each root, repeatedly descend into the child
	// that finishes last — the chain that bounded the trace's wall time.
	var best []*spanNode
	var bestEnd time.Time
	for _, r := range roots {
		if end := r.span.Start.Add(r.span.Dur); best == nil || end.After(bestEnd) {
			best, bestEnd = []*spanNode{r}, end
		}
	}
	if best != nil {
		for {
			n := best[len(best)-1]
			var last *spanNode
			var lastEnd time.Time
			for _, c := range n.children {
				if end := c.span.Start.Add(c.span.Dur); last == nil || end.After(lastEnd) {
					last, lastEnd = c, end
				}
			}
			if last == nil {
				break
			}
			best = append(best, last)
		}
		parts := make([]string, len(best))
		for i, n := range best {
			parts[i] = fmt.Sprintf("%s (%s)", n.span.Name, fmtDur(n.span.Dur))
		}
		fmt.Fprintf(w, "\ncritical path: %s\n", strings.Join(parts, " → "))
	}
	return nil
}

// renderAttrs formats a span's attributes as " k=v ..." (empty when the
// span has none).
func renderAttrs(sp obs.Span) string {
	attrs := sp.Attrs()
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value())
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// fmtDur renders a duration compactly with µs resolution at the bottom.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
