// Command whirltool bundles the workload tooling around the simulator:
// WhirlTool's profile-guided classification (the default mode), the
// .wtrc trace record/replay toolchain, and the bench-trajectory
// formatter.
//
// Usage:
//
//	whirltool -app omnet -pools 3                  # classification (Fig 17)
//	whirltool trace record -app delaunay -o dt.wtrc
//	whirltool trace info dt.wtrc
//	whirltool trace cat dt.wtrc | head
//	whirltool load -spec traffic.json -base http://localhost:8080
//	whirltool spans http://localhost:8080/v1/jobs/j1/trace   # span waterfall
//	curl -s localhost:8080/metrics?format=prom | whirltool promlint -
//	go test -bench . -benchmem ./... | whirltool benchjson > BENCH_trace.json
//
// Recorded traces replay through every scheme, sweep, and figure via a
// "trace"-sourced spec app (docs/workload-specs.md).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"whirlpool"
	"whirlpool/internal/cliutil"
	"whirlpool/internal/experiments"
	"whirlpool/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whirltool:", err)
	os.Exit(1)
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			traceCmd(os.Args[2:])
			return
		case "benchjson":
			benchJSONCmd(os.Args[2:])
			return
		case "benchdelta":
			benchDeltaCmd(os.Args[2:])
			return
		case "load":
			loadCmd(os.Args[2:])
			return
		case "spans":
			spansCmd(os.Args[2:])
			return
		case "promlint":
			promlintCmd(os.Args[2:])
			return
		}
	}
	classifyCmd()
}

// classifyCmd is the original whirltool mode: profile-guided pool
// classification.
func classifyCmd() {
	app := flag.String("app", "delaunay", "benchmark to classify")
	pools := flag.Int("pools", 3, "number of pools to produce")
	scale := flag.Float64("scale", 1.0, "profiling run length multiplier")
	seed := flag.Uint64("seed", 0, "workload generation seed (0 = the published default)")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("whirltool", *version)

	opts := []whirlpool.Option{whirlpool.WithScale(*scale)}
	if *seed != 0 {
		opts = append(opts, whirlpool.WithSeed(*seed))
	}
	groups, err := whirlpool.New(*app, whirlpool.Whirlpool, opts...).Classify(*pools)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("WhirlTool classification of %s into %d pools:\n", *app, *pools)
	for i, g := range groups {
		fmt.Printf("  pool %d: %v\n", i+1, g)
	}
	dendro, err := whirlpool.Figure("fig17", &whirlpool.FigureOptions{Scale: *scale, Seed: *seed})
	if err == nil && (*app == "delaunay" || *app == "omnet") {
		fmt.Println()
		fmt.Println(dendro)
	}
}

// traceCmd dispatches the record/info/cat trace subcommands.
func traceCmd(args []string) {
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: whirltool trace record|info|cat ..."))
	}
	switch args[0] {
	case "record":
		traceRecord(args[1:])
	case "info":
		traceInfo(args[1:])
	case "cat":
		traceCat(args[1:])
	default:
		fatal(fmt.Errorf("unknown trace subcommand %q (valid: record, info, cat)", args[0]))
	}
}

// traceRecord generates an app, filters it through the private levels,
// and writes the LLC trace as a .wtrc file.
func traceRecord(args []string) {
	fs := flag.NewFlagSet("trace record", flag.ExitOnError)
	app := fs.String("app", "delaunay", "app to record (built-in or from -spec files)")
	specFiles := fs.String("spec", "", "comma-separated workload-spec files to load first")
	scale := fs.Float64("scale", 1.0, "workload length multiplier")
	seed := fs.Uint64("seed", 0, "workload generation seed (0 = the published default)")
	out := fs.String("o", "", "output file (default <app>.wtrc)")
	fs.Parse(args)

	for _, path := range cliutil.SplitList(*specFiles) {
		if _, err := whirlpool.LoadSpecFile(path); err != nil {
			fatal(err)
		}
	}
	h := experiments.NewHarness(*scale)
	if *seed != 0 {
		h.Seed = *seed
	}
	at, err := h.AppErr(*app)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *app + ".wtrc"
	}
	if err := trace.WriteFile(path, at.Tr); err != nil {
		fatal(err)
	}
	s := at.Tr.Stats()
	fmt.Fprintf(os.Stderr, "whirltool: recorded %s: %d LLC accesses (%d demand), %d instrs -> %s (%d bytes)\n",
		*app, at.Tr.NumAccesses(), at.Tr.DemandAccesses(), s.Instrs, path, fileSize(path))
}

// traceInfo prints a .wtrc file's header and derived statistics.
func traceInfo(args []string) {
	fs := flag.NewFlagSet("trace info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: whirltool trace info FILE.wtrc"))
	}
	path := fs.Arg(0)
	tr, err := trace.OpenMapped(path)
	if err != nil {
		fatal(err)
	}
	defer tr.Close()
	s := tr.Stats()
	wbacks := uint64(tr.NumAccesses()) - tr.DemandAccesses()
	fmt.Printf("%s: wtrc v%d\n", path, trace.FormatVersion)
	fmt.Printf("  accesses:     %d (%d demand + %d writeback)\n", tr.NumAccesses(), tr.DemandAccesses(), wbacks)
	fmt.Printf("  instructions: %d\n", s.Instrs)
	fmt.Printf("  LLC APKI:     %.2f\n", tr.LLCAPKI())
	fmt.Printf("  private lvls: %d raw accesses, %d L1 hits, %d L2 hits\n", s.RawAccesses, s.L1Hits, s.L2Hits)
	fmt.Printf("  base cycles:  %d\n", s.BaseCycles)
	fmt.Printf("  file bytes:   %d (%.2f B/access resident)\n", fileSize(path),
		float64(tr.EncodedBytes())/max(1, float64(tr.NumAccesses())))
}

// traceCat streams a .wtrc file as text, one access per line.
func traceCat(args []string) {
	fs := flag.NewFlagSet("trace cat", flag.ExitOnError)
	limit := fs.Int("n", 0, "print at most N accesses (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: whirltool trace cat [-n N] FILE.wtrc"))
	}
	tr, err := trace.OpenMapped(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer tr.Close()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "# seq line gap flags (W=write, B=writeback)")
	for i, cur := 0, tr.NewCursor(); ; i++ {
		a, ok := cur.Next()
		if !ok || (*limit > 0 && i >= *limit) {
			break
		}
		flags := "-"
		switch {
		case a.Writeback:
			flags = "B"
		case a.Write:
			flags = "W"
		}
		fmt.Fprintf(w, "%d %#x %d %s\n", i, uint64(a.Line), a.Gap, flags)
	}
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return fi.Size()
}

// benchRow is one parsed benchmark result.
type benchRow struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchJSON is the BENCH_trace.json schema: parsed metrics for
// dashboards plus the raw benchmark lines, which remain benchstat
// input (jq -r '.raw[]' BENCH_trace.json | benchstat /dev/stdin).
type benchJSON struct {
	Schema     string     `json:"schema"`
	Go         string     `json:"go"`
	Benchmarks []benchRow `json:"benchmarks"`
	Raw        []string   `json:"raw"`
}

// benchJSONCmd converts `go test -bench` output on stdin into the
// repo's bench-trajectory JSON on stdout.
func benchJSONCmd(args []string) {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	fs.Parse(args)

	out := benchJSON{Schema: "whirlpool-bench/v1", Go: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		row := benchRow{Name: f[0], Pkg: pkg, Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			row.Metrics[f[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, row)
		out.Raw = append(out.Raw, line)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// benchDeltaCmd compares two BENCH_trace.json snapshots and exits
// non-zero when any benchmark matching -match regressed by more than
// -max-regress percent on a guarded metric (ns/op and allocs/op). It is
// the core of scripts/bench-delta.sh, the CI guard that keeps the trace
// decode path from quietly slowing down.
func benchDeltaCmd(args []string) {
	fs := flag.NewFlagSet("benchdelta", flag.ExitOnError)
	match := fs.String("match", "FilterPrivate|TraceCursor|TraceCodec|TraceMmap", "regexp of guarded benchmark names")
	maxRegress := fs.Float64("max-regress", 20, "allowed regression in percent before failing")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("usage: whirltool benchdelta [-match RE] [-max-regress PCT] BASELINE.json CURRENT.json"))
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fatal(fmt.Errorf("benchdelta: bad -match: %w", err))
	}
	load := func(path string) map[string]map[string]float64 {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(fmt.Errorf("benchdelta: %w", err))
		}
		var doc benchJSON
		if err := json.Unmarshal(data, &doc); err != nil {
			fatal(fmt.Errorf("benchdelta: %s: %w", path, err))
		}
		m := map[string]map[string]float64{}
		for _, row := range doc.Benchmarks {
			// Strip the -N GOMAXPROCS suffix so snapshots from machines
			// with different core counts still line up.
			name := row.Name
			if i := strings.LastIndex(name, "-"); i > 0 {
				if _, err := strconv.Atoi(name[i+1:]); err == nil {
					name = name[:i]
				}
			}
			m[name] = row.Metrics
		}
		return m
	}
	base, cur := load(fs.Arg(0)), load(fs.Arg(1))
	guarded := []string{"ns/op", "allocs/op"}
	failed := false
	compared := 0
	for name, curMetrics := range cur {
		if !re.MatchString(name) {
			continue
		}
		baseMetrics, ok := base[name]
		if !ok {
			fmt.Printf("benchdelta: %-40s new benchmark, no baseline\n", name)
			continue
		}
		for _, metric := range guarded {
			b, c := baseMetrics[metric], curMetrics[metric]
			if b <= 0 {
				continue
			}
			compared++
			deltaPct := (c - b) / b * 100
			status := "ok"
			if deltaPct > *maxRegress {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("benchdelta: %-40s %-10s %12.1f -> %12.1f  %+7.1f%%  %s\n",
				name, metric, b, c, deltaPct, status)
		}
	}
	if compared == 0 {
		fmt.Println("benchdelta: no guarded benchmarks in common; nothing to compare")
		return
	}
	if failed {
		fatal(fmt.Errorf("benchdelta: guarded benchmarks regressed more than %.0f%% (set BENCH_DELTA_SKIP=1 to bypass a known-noisy run)", *maxRegress))
	}
	fmt.Printf("benchdelta: %d guarded metrics within %.0f%% of baseline\n", compared, *maxRegress)
}
