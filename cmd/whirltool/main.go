// Command whirltool runs WhirlTool's profile-guided classification on a
// benchmark: it prints the clustering dendrogram (Fig 17) and the
// resulting pool assignment for the requested pool count.
//
// Usage:
//
//	whirltool -app omnet -pools 3
package main

import (
	"flag"
	"fmt"
	"os"

	"whirlpool"
)

func main() {
	app := flag.String("app", "delaunay", "benchmark to classify")
	pools := flag.Int("pools", 3, "number of pools to produce")
	scale := flag.Float64("scale", 1.0, "profiling run length multiplier")
	seed := flag.Uint64("seed", 0, "workload generation seed (0 = the published default)")
	flag.Parse()

	opts := []whirlpool.Option{whirlpool.WithScale(*scale)}
	if *seed != 0 {
		opts = append(opts, whirlpool.WithSeed(*seed))
	}
	groups, err := whirlpool.New(*app, whirlpool.Whirlpool, opts...).Classify(*pools)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whirltool:", err)
		os.Exit(1)
	}
	fmt.Printf("WhirlTool classification of %s into %d pools:\n", *app, *pools)
	for i, g := range groups {
		fmt.Printf("  pool %d: %v\n", i+1, g)
	}
	dendro, err := whirlpool.Figure("fig17", &whirlpool.FigureOptions{Scale: *scale, Seed: *seed})
	if err == nil && (*app == "delaunay" || *app == "omnet") {
		fmt.Println()
		fmt.Println(dendro)
	}
}
