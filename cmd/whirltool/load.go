package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"whirlpool/internal/apiclient"
	"whirlpool/internal/traffic"
)

// loadCmd is whirlload: drive a whirld daemon with a declarative
// traffic spec and judge the measured latencies against per-class SLOs.
//
//	whirltool load -spec traffic.json -base http://localhost:8080
//
// The process exits 1 when any class breaches its SLO or throughput
// floor (disable with -check=false), so the command slots directly into
// CI gates like scripts/load-smoke.sh.
func loadCmd(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	specPath := fs.String("spec", "", "traffic spec file (required; see docs/server.md)")
	base := fs.String("base", "http://localhost:8080", "whirld base URL")
	duration := fs.Duration("duration", 0, "run length override (0 = the spec's duration_s)")
	seed := fs.Uint64("seed", 0, "arrival-schedule seed override (0 = the spec's seed)")
	format := fs.String("format", "table", "report format: table or json")
	check := fs.Bool("check", true, "exit 1 when a class breaches its SLO or rps floor")
	fs.Parse(args)

	if *specPath == "" {
		fatal(fmt.Errorf("load: -spec is required"))
	}
	if *format != "table" && *format != "json" {
		fatal(fmt.Errorf("load: unknown -format %q (valid: table, json)", *format))
	}
	spec, err := traffic.Load(*specPath)
	if err != nil {
		fatal(err)
	}
	api, err := apiclient.New(*base, nil)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := traffic.Run(ctx, api, spec, traffic.Options{
		Duration: *duration,
		Seed:     *seed,
		Logf: func(f string, a ...any) {
			fmt.Fprintf(os.Stderr, "whirltool: "+f+"\n", a...)
		},
	})
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	default:
		rep.WriteTable(os.Stdout)
	}

	if cerr := rep.Check(); cerr != nil {
		fmt.Fprintln(os.Stderr, "whirltool:", cerr)
		if *check {
			os.Exit(1)
		}
	}
}
