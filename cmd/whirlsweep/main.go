// Command whirlsweep fans an app × scheme grid out across a worker pool
// and emits machine-readable results. Apps come from the built-in suite
// and/or declarative spec files; each app's trace is generated and
// private-filtered once, then shared by every scheme's run, so a full
// sweep costs far less than the equivalent serial whirlsim invocations.
//
// Usage:
//
//	whirlsweep -apps delaunay,MIS,mcf                    # 3 apps × 6 schemes
//	whirlsweep -apps all -schemes jigsaw,whirlpool -format csv -o out.csv
//	whirlsweep -spec specs/multitenant-kv.json -mix all  # sweep the file's mixes
//	whirlsweep -apps all -store auto                     # memoize rows; warm cells skip simulation
//	whirlsweep -dump-builtin > specs/builtin.json        # export the suite
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"strings"
	"syscall"
	"time"

	"whirlpool/internal/cliutil"
	"whirlpool/internal/experiments"
	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
	"whirlpool/internal/spec"
	"whirlpool/internal/workloads"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whirlsweep:", err)
	os.Exit(1)
}

func main() {
	appsFlag := flag.String("apps", "", "comma-separated apps, or 'all' (default: apps from -spec files, else all)")
	schemesFlag := flag.String("schemes", "all", "comma-separated schemes, or 'all' (valid: "+strings.Join(schemes.KindIDs(), ", ")+")")
	specFiles := flag.String("spec", "", "comma-separated workload-spec files to load")
	mixFlag := flag.String("mix", "", "comma-separated mix names from -spec files, or 'all'")
	scale := flag.Float64("scale", 1.0, "workload length multiplier")
	seed := flag.Uint64("seed", 0, "workload generation seed (0 = the published default)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers")
	format := flag.String("format", "table", "output format: table, csv, or json")
	out := flag.String("o", "", "write results to this file (default: stdout)")
	noBypass := flag.Bool("nobypass", false, "disable VC bypassing in every run (ablation)")
	traceCache := flag.String("trace-cache", "", cliutil.TraceCacheUsage)
	storeFlag := flag.String("store", "", cliutil.StoreUsage)
	quiet := flag.Bool("q", false, "suppress progress output on stderr")
	dumpBuiltin := flag.Bool("dump-builtin", false, "print the built-in suite as a spec file and exit")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("whirlsweep", *version)

	if *dumpBuiltin {
		data, err := spec.Encode(spec.Builtin())
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		return
	}

	// Load spec files; their apps register into the workload registry
	// and their mixes become sweepable by name.
	var files []*spec.File
	var specAppNames []string
	for _, path := range cliutil.SplitList(*specFiles) {
		f, err := spec.Load(path)
		if err != nil {
			fatal(err)
		}
		names, err := f.Register()
		if err != nil {
			fatal(err)
		}
		specAppNames = append(specAppNames, names...)
		files = append(files, f)
	}

	cfg := experiments.SweepConfig{Workers: *workers, NoBypass: *noBypass}

	switch {
	case *appsFlag == "all":
		cfg.Apps = workloads.Names()
	case *appsFlag != "":
		cfg.Apps = cliutil.SplitList(*appsFlag)
	case *mixFlag != "":
		// -mix without -apps sweeps only the mixes.
	case len(specAppNames) > 0:
		cfg.Apps = specAppNames
	default:
		cfg.Apps = workloads.Names()
	}

	if *mixFlag != "" {
		if len(files) == 0 {
			fatal(fmt.Errorf("-mix needs -spec files that define mixes"))
		}
		want := cliutil.SplitList(*mixFlag)
		all := *mixFlag == "all"
		found := map[string]bool{}
		for _, f := range files {
			for _, m := range f.Mixes {
				if all || slices.Contains(want, m.Name) {
					if found[m.Name] {
						fatal(fmt.Errorf("mix %q defined in more than one -spec file; rows would be ambiguous", m.Name))
					}
					cfg.Mixes = append(cfg.Mixes, experiments.SweepMix{
						Name: m.Name, Apps: m.Apps, Pins: m.Pins, Chip: m.BuildChip(),
					})
					found[m.Name] = true
				}
			}
		}
		if !all {
			for _, name := range want {
				if !found[name] {
					fatal(fmt.Errorf("mix %q not defined in the loaded spec files", name))
				}
			}
		} else if len(cfg.Mixes) == 0 {
			fatal(fmt.Errorf("-mix all: the loaded spec files define no mixes"))
		}
	}

	if *schemesFlag != "all" && *schemesFlag != "" {
		for _, name := range cliutil.SplitList(*schemesFlag) {
			k, err := schemes.ParseKind(name)
			if err != nil {
				fatal(err)
			}
			cfg.Kinds = append(cfg.Kinds, k)
		}
	}

	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (valid: table, csv, json)", *format))
	}

	if !*quiet {
		cfg.OnRow = func(done, total int, row experiments.SweepRow) {
			status := fmt.Sprintf("%.1fms", row.WallMS)
			if row.Err != "" {
				status = "ERROR: " + row.Err
			}
			fmt.Fprintf(os.Stderr, "whirlsweep: [%d/%d] %s/%s %s\n", done, total, row.App, row.Scheme, status)
		}
	}

	// Ctrl-C / SIGTERM cancel the sweep: in-flight cells finish, the
	// rest are skipped, and completed rows are still written out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Context = ctx

	h := experiments.NewHarness(*scale)
	if *seed != 0 {
		h.Seed = *seed
	}
	cacheDir, err := cliutil.ResolveTraceCacheDir(*traceCache)
	if err != nil {
		fatal(err)
	}
	h.CacheDir = cacheDir
	storeDir, err := cliutil.ResolveStoreDir(*storeFlag)
	if err != nil {
		fatal(err)
	}
	var store *results.Store
	var sweepStats experiments.SweepStats
	if storeDir != "" {
		store, err = results.Open(storeDir)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		cfg.Store = store
		cfg.Stats = &sweepStats
	}
	start := time.Now()
	rows, sweepErr := h.Sweep(cfg)
	if store != nil && !*quiet {
		fmt.Fprintf(os.Stderr, "whirlsweep: results: %d served from %s, %d computed\n",
			sweepStats.Served, storeDir, sweepStats.Computed)
	}
	if cacheDir != "" && !*quiet {
		s := h.CacheStats()
		fmt.Fprintf(os.Stderr, "whirlsweep: traces: %d generated, %d streamed from %s\n",
			s.Builds, s.DiskHits, cacheDir)
		if s.WriteErrors > 0 {
			fmt.Fprintf(os.Stderr, "whirlsweep: warning: %d trace cache write(s) failed; those traces stayed uncached\n",
				s.WriteErrors)
		}
	}
	if sweepErr != nil && len(rows) == 0 {
		fatal(sweepErr)
	}
	if sweepErr != nil {
		// Canceled mid-sweep: keep only the cells that finished.
		var completed []experiments.SweepRow
		for _, r := range rows {
			if r.Err != "canceled" {
				completed = append(completed, r)
			}
		}
		rows = completed
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "whirlsweep: %d cells in %.1fs with %d workers\n",
			len(rows), time.Since(start).Seconds(), *workers)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	// *format was validated before the sweep ran.
	var writeErr error
	switch *format {
	case "table":
		writeErr = experiments.WriteRowsTable(w, rows)
	case "csv":
		writeErr = experiments.WriteRowsCSV(w, rows)
	case "json":
		writeErr = experiments.WriteRowsJSON(w, rows)
	}
	if writeErr != nil {
		fatal(writeErr)
	}

	// A sweep that ran but produced failed cells, or was canceled before
	// finishing, should not look green to CI pipelines consuming the
	// output.
	if sweepErr != nil {
		fatal(sweepErr)
	}
	for _, r := range rows {
		if r.Err != "" {
			fatal(fmt.Errorf("%d of %d cells failed (first: %s/%s: %s)",
				countErrs(rows), len(rows), r.App, r.Scheme, r.Err))
		}
	}
}

func countErrs(rows []experiments.SweepRow) int {
	n := 0
	for _, r := range rows {
		if r.Err != "" {
			n++
		}
	}
	return n
}
