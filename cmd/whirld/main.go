// Command whirld is the Whirlpool serving daemon: it runs, memoizes,
// and streams experiments over HTTP. Sweeps submitted to POST
// /v1/sweeps run as async jobs on a bounded worker pool; every
// computed row is committed to a persistent content-addressed result
// store, and any cell already in the store is served without
// re-simulation — the same store whirlsweep -store reads and writes,
// so the CLI and the daemon share one result universe.
//
// In coordinator mode the daemon shards each sweep's unserved cells
// across a fleet of remote worker whirlds, collects their rows over
// SSE, and commits everything to its own store. The fleet is elastic:
// workers either appear on the -workers list (static members, assumed
// alive forever) or join themselves at runtime with -join (leased
// members that heartbeat; a worker that misses its lease deadline is
// dead exactly like a dropped connection, and its cells re-route to
// the survivors). Routing is capacity- and load-aware, so a -parallel
// 8 worker draws more cells than a -parallel 2 one.
//
// Usage:
//
//	whirld                                   # 127.0.0.1:8080, store under the user cache dir
//	whirld -addr :9090 -store ./store -trace-cache auto -parallel 8
//	whirld -workers http://10.0.0.2:8080,http://10.0.0.3:8080   # static coordinator
//	whirld -addr :0 -join http://10.0.0.1:8080                  # elastic worker
//	curl -X POST -d '{"apps":["delaunay"],"scale":0.1}' localhost:8080/v1/sweeps
//	curl -N localhost:8080/v1/jobs/j1/stream # SSE rows as cells finish
//
// See docs/server.md for the API reference and the distributed-mode
// topology.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"whirlpool/internal/cliutil"
	"whirlpool/internal/fleet"
	"whirlpool/internal/obs"
	"whirlpool/internal/results"
	"whirlpool/internal/server"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whirld:", err)
	os.Exit(1)
}

// parseInflight decodes the -inflight flag ("results=64,sweeps=8") into
// server.Config.EndpointLimits. Unknown endpoint names are rejected by
// server.New, so typos fail at startup, not silently at serve time.
func parseInflight(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	limits := map[string]int{}
	for _, pair := range cliutil.SplitList(s) {
		name, val, ok := strings.Cut(pair, "=")
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if !ok || strings.TrimSpace(name) == "" || err != nil {
			return nil, fmt.Errorf("-inflight: %q is not name=N (e.g. results=64; valid names: %s)",
				pair, strings.Join(server.EndpointNames(), ", "))
		}
		limits[strings.TrimSpace(name)] = n
	}
	return limits, nil
}

// resolveWorkers interprets -workers: a URL list is coordinator mode;
// a plain integer is the flag's deprecated pre-distributed meaning
// (simulation parallelism, now -parallel), kept working with a
// deprecation warning on warn.
func resolveWorkers(workersFlag string, parallelSet bool, parallel *int, warn io.Writer) ([]string, error) {
	if workersFlag == "" {
		return nil, nil
	}
	if n, err := strconv.Atoi(workersFlag); err == nil {
		// An explicit -parallel alongside integer -workers is
		// contradictory — refuse rather than silently pick one.
		if parallelSet {
			return nil, fmt.Errorf("-workers %d conflicts with -parallel %d: integer -workers is the old name for -parallel; use one", n, *parallel)
		}
		fmt.Fprintf(warn, "whirld: -workers %d is deprecated; use -parallel %d\n", n, n)
		*parallel = n
		return nil, nil
	}
	// Only the scheme is validated here; the fleet registry owns URL
	// normalization (trimming, dedup) for every caller.
	var urls []string
	for _, u := range cliutil.SplitList(workersFlag) {
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("-workers: %q is not a worker URL (want http://host:port, or a plain integer for -parallel)", u)
		}
		urls = append(urls, u)
	}
	return urls, nil
}

// advertiseURL derives the base URL a -join worker advertises when
// -advertise is unset: the bound listen address, with wildcard hosts
// rewritten to loopback so the coordinator gets something dialable.
func advertiseURL(bound net.Addr) string {
	host, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return "http://" + bound.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	storeFlag := flag.String("store", "auto", cliutil.StoreUsage)
	traceCache := flag.String("trace-cache", "", cliutil.TraceCacheUsage)
	workersFlag := flag.String("workers", "", "coordinator mode: comma-separated worker whirld base URLs (http://host:port) to shard sweeps across as static fleet members; a plain integer is accepted as -parallel, the flag's deprecated pre-distributed meaning")
	join := flag.String("join", "", "worker mode: register with this coordinator whirld (http://host:port) and renew a heartbeat lease until shutdown")
	advertise := flag.String("advertise", "", "base URL the coordinator dials this worker at (with -join; default: derived from the bound -addr)")
	leaseTTL := flag.Duration("lease-ttl", 0, "coordinator: how long a joined worker survives without a heartbeat before its lease expires and its cells re-route to survivors (0 = 10s)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "parallel simulation workers per job")
	queue := flag.Int("queue", 64, "max queued jobs before submits get 503")
	inflight := flag.String("inflight", "", "per-endpoint concurrency limits as name=N pairs (e.g. results=64,sweeps=8); N<0 lifts an endpoint's default limit; endpoints: sweeps, cells, jobs, stream, rows, results, healthz, metrics")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof profiling on this separate address (e.g. 127.0.0.1:6060); empty disables it")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("whirld", *version)

	parallelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelSet = true
		}
	})
	workerURLs, err := resolveWorkers(*workersFlag, parallelSet, parallel, os.Stderr)
	if err != nil {
		fatal(err)
	}

	limits, err := parseInflight(*inflight)
	if err != nil {
		fatal(err)
	}

	storeDir, err := cliutil.ResolveStoreDir(*storeFlag)
	if err != nil {
		fatal(err)
	}
	if storeDir == "" {
		fatal(fmt.Errorf("whirld needs a result store (-store DIR, or -store auto)"))
	}
	store, err := results.Open(storeDir)
	if err != nil {
		fatal(err)
	}
	cacheDir, err := cliutil.ResolveTraceCacheDir(*traceCache)
	if err != nil {
		fatal(err)
	}

	// Structured logging with the daemon's traditional line shape:
	// "whirld: message key=val ..." on stderr, so scripts grepping the
	// old printf output keep working.
	logger := obs.NewLogger(os.Stderr, "whirld")
	srv, err := server.New(server.Config{
		Store:          store,
		TraceCacheDir:  cacheDir,
		Workers:        *parallel,
		WorkerURLs:     workerURLs,
		LeaseTTL:       *leaseTTL,
		Log:            logger,
		QueueDepth:     *queue,
		EndpointLimits: limits,
		Version:        cliutil.Version(),
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The bound address goes to stdout (scripts parse it, especially
	// with -addr :0); everything else logs to stderr.
	fmt.Printf("whirld: listening on %s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "whirld: store %s (%d rows), trace cache %q, %d parallel sim workers\n",
		storeDir, store.Len(), cacheDir, *parallel)
	if len(workerURLs) > 0 {
		fmt.Fprintf(os.Stderr, "whirld: coordinator over %d static workers: %s\n",
			len(workerURLs), strings.Join(workerURLs, ", "))
	}
	if *inflight != "" {
		fmt.Fprintf(os.Stderr, "whirld: endpoint concurrency limits: %s\n", *inflight)
	}

	// Profiling stays off the serving listener: pprof handlers leak
	// internals and hold connections open, so they bind to their own
	// address (typically loopback) and never share the API's port.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			store.Close()
			fatal(fmt.Errorf("-debug-addr: %v", err))
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux}
		go debugSrv.Serve(dln)
		// Scripts parse this from stdout like the main listen line.
		fmt.Printf("whirld: debug listening on %s\n", dln.Addr())
	}

	// Worker mode: join the coordinator's fleet and keep the lease
	// warm. The agent retries registration until the coordinator is
	// reachable, so boot order doesn't matter.
	var agent *fleet.Agent
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = advertiseURL(ln.Addr())
		}
		agent, err = fleet.StartAgent(fleet.AgentOptions{
			Coordinator: *join,
			Advertise:   adv,
			Capacity:    *parallel,
			Load:        srv.Load,
			Log:         logger,
		})
		if err != nil {
			store.Close()
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "whirld: joining fleet at %s as %s (capacity %d)\n", *join, adv, *parallel)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "whirld: shutting down (in-flight rows are committed; resubmit to resume)")
	case err := <-errc:
		store.Close()
		fatal(err)
	}

	// Graceful shutdown: leave the fleet first (so the coordinator
	// stops routing here instead of waiting out the lease), then cancel
	// jobs (their committed rows are already in the store), which ends
	// SSE streams, then drain HTTP.
	if agent != nil {
		agent.Close()
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	srv.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "whirld: shutdown:", err)
	}
	if err := store.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "whirld: store close:", err)
	}
}
