// Command whirld is the Whirlpool serving daemon: it runs, memoizes,
// and streams experiments over HTTP. Sweeps submitted to POST
// /v1/sweeps run as async jobs on a bounded worker pool; every
// computed row is committed to a persistent content-addressed result
// store, and any cell already in the store is served without
// re-simulation — the same store whirlsweep -store reads and writes,
// so the CLI and the daemon share one result universe.
//
// Usage:
//
//	whirld                                   # 127.0.0.1:8080, store under the user cache dir
//	whirld -addr :9090 -store ./store -trace-cache auto -workers 8
//	curl -X POST -d '{"apps":["delaunay"],"scale":0.1}' localhost:8080/v1/sweeps
//	curl -N localhost:8080/v1/jobs/j1/stream # SSE rows as cells finish
//
// See docs/server.md for the API reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"whirlpool/internal/cliutil"
	"whirlpool/internal/results"
	"whirlpool/internal/server"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whirld:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	storeFlag := flag.String("store", "auto", cliutil.StoreUsage)
	traceCache := flag.String("trace-cache", "", cliutil.TraceCacheUsage)
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers per job")
	queue := flag.Int("queue", 64, "max queued jobs before submits get 503")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("whirld", *version)

	storeDir, err := cliutil.ResolveStoreDir(*storeFlag)
	if err != nil {
		fatal(err)
	}
	if storeDir == "" {
		fatal(fmt.Errorf("whirld needs a result store (-store DIR, or -store auto)"))
	}
	store, err := results.Open(storeDir)
	if err != nil {
		fatal(err)
	}
	cacheDir, err := cliutil.ResolveTraceCacheDir(*traceCache)
	if err != nil {
		fatal(err)
	}

	srv, err := server.New(server.Config{
		Store:         store,
		TraceCacheDir: cacheDir,
		Workers:       *workers,
		QueueDepth:    *queue,
		Version:       cliutil.Version(),
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The bound address goes to stdout (scripts parse it, especially
	// with -addr :0); everything else logs to stderr.
	fmt.Printf("whirld: listening on %s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "whirld: store %s (%d rows), trace cache %q, %d workers\n",
		storeDir, store.Len(), cacheDir, *workers)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "whirld: shutting down (in-flight rows are committed; resubmit to resume)")
	case err := <-errc:
		store.Close()
		fatal(err)
	}

	// Graceful shutdown: cancel jobs first (their committed rows are
	// already in the store), which ends SSE streams, then drain HTTP.
	srv.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "whirld: shutdown:", err)
	}
	if err := store.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "whirld: store close:", err)
	}
}
