package main

import (
	"net"
	"strings"
	"testing"
)

func TestResolveWorkersIntegerDeprecated(t *testing.T) {
	var warn strings.Builder
	parallel := 4
	urls, err := resolveWorkers("12", false, &parallel, &warn)
	if err != nil || urls != nil {
		t.Fatalf("resolveWorkers(12) = %v, %v", urls, err)
	}
	if parallel != 12 {
		t.Fatalf("parallel = %d, want 12", parallel)
	}
	w := warn.String()
	if !strings.Contains(w, "deprecated") || !strings.Contains(w, "-parallel") {
		t.Fatalf("deprecation warning = %q, want a pointer at -parallel", w)
	}
	if strings.Count(w, "\n") != 1 {
		t.Fatalf("warning is not one line: %q", w)
	}
}

func TestResolveWorkersIntegerConflictsWithParallel(t *testing.T) {
	var warn strings.Builder
	parallel := 4
	if _, err := resolveWorkers("12", true, &parallel, &warn); err == nil ||
		!strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("err = %v, want conflict", err)
	}
	if warn.Len() != 0 {
		t.Fatalf("conflict case warned anyway: %q", warn.String())
	}
}

func TestResolveWorkersURLs(t *testing.T) {
	var warn strings.Builder
	parallel := 4
	urls, err := resolveWorkers("http://a:1, http://b:2", false, &parallel, &warn)
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[0] != "http://a:1" {
		t.Fatalf("urls = %v", urls)
	}
	if warn.Len() != 0 {
		t.Fatalf("URL mode warned: %q", warn.String())
	}
	if _, err := resolveWorkers("not-a-url", false, &parallel, &warn); err == nil ||
		!strings.Contains(err.Error(), "not-a-url") {
		t.Fatalf("bad URL accepted: %v", err)
	}
	if urls, err := resolveWorkers("", false, &parallel, &warn); urls != nil || err != nil {
		t.Fatalf("empty flag: %v, %v", urls, err)
	}
}

type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

func TestAdvertiseURL(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8080": "http://127.0.0.1:8080",
		"10.0.0.5:9000":  "http://10.0.0.5:9000",
		"0.0.0.0:8080":   "http://127.0.0.1:8080",
		"[::]:8080":      "http://127.0.0.1:8080",
		"weird":          "http://weird",
	}
	for in, want := range cases {
		if got := advertiseURL(net.Addr(fakeAddr(in))); got != want {
			t.Errorf("advertiseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
