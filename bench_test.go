// Benchmarks that regenerate every table and figure in the paper's
// evaluation (docs/design.md maps each to its experiment). Each benchmark
// prints nothing by default; run cmd/whirlbench to see the tables. The
// -whirl.scale flag trades fidelity for speed (1.0 = full runs).
package whirlpool_test

import (
	"flag"
	"testing"

	"whirlpool"
)

var benchScale = flag.Float64("whirl.scale", 0.2, "workload scale for figure benchmarks")

func figOpt() *whirlpool.FigureOptions {
	return &whirlpool.FigureOptions{Scale: *benchScale, Mixes: 4}
}

func benchFigure(b *testing.B, id string, opt *whirlpool.FigureOptions) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := whirlpool.Figure(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty figure output")
		}
	}
}

// BenchmarkFig02DtBreakdown regenerates Fig 2: dt's working set and
// per-pool access intensity.
func BenchmarkFig02DtBreakdown(b *testing.B) { benchFigure(b, "fig2", figOpt()) }

// BenchmarkFig05DtPlacement regenerates Figs 3-5: dt's placement maps
// under S-NUCA, Jigsaw, and Whirlpool.
func BenchmarkFig05DtPlacement(b *testing.B) { benchFigure(b, "fig5", figOpt()) }

// BenchmarkFig06LbmPhases regenerates Fig 6: lbm's alternating per-pool
// access pattern.
func BenchmarkFig06LbmPhases(b *testing.B) { benchFigure(b, "fig6", figOpt()) }

// BenchmarkFig08DtCurves regenerates Fig 8: dt's per-pool miss curves.
func BenchmarkFig08DtCurves(b *testing.B) { benchFigure(b, "fig8", figOpt()) }

// BenchmarkFig09MisCurves regenerates Fig 9: mis's per-pool miss curves.
func BenchmarkFig09MisCurves(b *testing.B) { benchFigure(b, "fig9", figOpt()) }

// BenchmarkFig10MisBreakdown regenerates Fig 10: mis across all six
// schemes.
func BenchmarkFig10MisBreakdown(b *testing.B) { benchFigure(b, "fig10", figOpt()) }

// BenchmarkFig11RefineAdapt regenerates Fig 11: refine's allocations over
// time as the runtime adapts to irregular phases.
func BenchmarkFig11RefineAdapt(b *testing.B) { benchFigure(b, "fig11", figOpt()) }

// BenchmarkFig13PaWS regenerates Fig 13: the six parallel apps under
// S-NUCA / Jigsaw / J+PaWS / W+PaWS on 16 cores.
func BenchmarkFig13PaWS(b *testing.B) { benchFigure(b, "fig13", figOpt()) }

// BenchmarkFig16WhirlTool regenerates Fig 16: WhirlTool with 2/3/4 pools
// vs manual classification, over the suite.
func BenchmarkFig16WhirlTool(b *testing.B) {
	opt := figOpt()
	// The full 31-app sweep belongs to whirlbench; bench a spread that
	// covers the paper's callouts (manual apps, gains, and a flat case).
	opt.Apps = []string{"delaunay", "MIS", "mcf", "cactus", "lbm", "libqntm", "sphinx3", "hull"}
	benchFigure(b, "fig16", opt)
}

// BenchmarkFig17Dendrograms regenerates Fig 17: clustering dendrograms
// for dt and omnetpp.
func BenchmarkFig17Dendrograms(b *testing.B) { benchFigure(b, "fig17", figOpt()) }

// BenchmarkFig18TrainInputs regenerates Fig 18: train-vs-ref profiling
// sensitivity.
func BenchmarkFig18TrainInputs(b *testing.B) { benchFigure(b, "fig18", figOpt()) }

// BenchmarkFig19CactusBreakdown regenerates Fig 19.
func BenchmarkFig19CactusBreakdown(b *testing.B) { benchFigure(b, "fig19", figOpt()) }

// BenchmarkFig20SABreakdown regenerates Fig 20.
func BenchmarkFig20SABreakdown(b *testing.B) { benchFigure(b, "fig20", figOpt()) }

// BenchmarkFig21Overall regenerates Fig 21: the whole single-threaded
// suite under all six schemes.
func BenchmarkFig21Overall(b *testing.B) { benchFigure(b, "fig21", figOpt()) }

// BenchmarkFig22Mixes regenerates Fig 22: weighted speedups over
// multi-programmed mixes at 4 and 16 cores.
func BenchmarkFig22Mixes(b *testing.B) { benchFigure(b, "fig22", figOpt()) }

// BenchmarkFig23CombineModel regenerates Fig 23: the Appendix B
// miss-curve combining model.
func BenchmarkFig23CombineModel(b *testing.B) { benchFigure(b, "fig23", nil) }

// BenchmarkTable2ManualPools regenerates Table 2.
func BenchmarkTable2ManualPools(b *testing.B) { benchFigure(b, "table2", figOpt()) }

// BenchmarkTable3Config regenerates Table 3.
func BenchmarkTable3Config(b *testing.B) { benchFigure(b, "table3", nil) }

// BenchmarkAblationLatencyCurves sizes VCs with latency curves vs pure
// miss curves (Sec 2.4's design argument).
func BenchmarkAblationLatencyCurves(b *testing.B) { benchFigure(b, "ablation-latency", figOpt()) }

// BenchmarkAblationTrading compares trading placement vs greedy-only.
func BenchmarkAblationTrading(b *testing.B) { benchFigure(b, "ablation-trading", figOpt()) }

// BenchmarkAblationBypass quantifies VC bypassing for Jigsaw/Whirlpool.
func BenchmarkAblationBypass(b *testing.B) {
	opt := figOpt()
	opt.Apps = []string{"MIS", "cactus", "delaunay", "libqntm"}
	benchFigure(b, "ablation-bypass", opt)
}

// BenchmarkRunWhirlpoolDt measures the simulator's own throughput on the
// flagship workload (not a paper figure; a library micro-benchmark).
func BenchmarkRunWhirlpoolDt(b *testing.B) {
	opt := &whirlpool.Options{Scale: *benchScale}
	for i := 0; i < b.N; i++ {
		if _, err := whirlpool.Run("delaunay", whirlpool.Whirlpool, opt); err != nil {
			b.Fatal(err)
		}
	}
}
