// Public API tests: the contract a downstream user of the library sees.
package whirlpool_test

import (
	"strings"
	"testing"

	"whirlpool"
)

var apiOpt = &whirlpool.Options{Scale: 0.05}

func TestRunUnknownApp(t *testing.T) {
	if _, err := whirlpool.Run("nosuch", whirlpool.Jigsaw, nil); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if _, err := whirlpool.Run("delaunay", whirlpool.Scheme("bogus"), nil); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestAppsListed(t *testing.T) {
	// The built-in suite is 31 apps; spec files loaded elsewhere in this
	// test binary may layer more on top, never fewer.
	apps := map[string]bool{}
	for _, a := range whirlpool.Apps() {
		apps[a] = true
	}
	if len(apps) < 31 {
		t.Fatalf("Apps() = %d entries, want at least the 31 built-ins", len(apps))
	}
	for _, a := range []string{"delaunay", "MIS", "mcf", "lbm", "hull"} {
		if !apps[a] {
			t.Fatalf("built-in %q missing from Apps()", a)
		}
	}
	par := whirlpool.ParallelApps()
	if len(par) != 6 {
		t.Fatalf("ParallelApps() = %d entries, want 6", len(par))
	}
}

func TestRunReportFields(t *testing.T) {
	r, err := whirlpool.Run("mcf", whirlpool.Whirlpool, apiOpt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.IPC <= 0 || r.EnergyPJ <= 0 || r.LLCAccesses == 0 {
		t.Fatalf("incomplete report: %+v", r)
	}
	if r.Hits+r.Misses+r.Bypasses != r.LLCAccesses {
		t.Fatal("outcome counts do not sum to accesses")
	}
	sum := r.NetworkEnergyPJ + r.BankEnergyPJ + r.MemoryEnergyPJ
	if sum < r.EnergyPJ*0.999 || sum > r.EnergyPJ*1.001 {
		t.Fatal("energy components do not sum to total")
	}
}

func TestCompareCoversAllSchemes(t *testing.T) {
	m, err := whirlpool.Compare("hull", apiOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Compare covers every registered scheme: the paper's six plus any
	// registered by other tests in this binary.
	all := whirlpool.Schemes()
	if len(all) < 6 {
		t.Fatalf("Schemes() = %d entries, want at least 6", len(all))
	}
	if len(m) != len(all) {
		t.Fatalf("Compare returned %d schemes, want %d", len(m), len(all))
	}
	for _, s := range []whirlpool.Scheme{whirlpool.SNUCALRU, whirlpool.Whirlpool} {
		if _, ok := m[s]; !ok {
			t.Fatalf("Compare missing %q", s)
		}
	}
}

func TestAutoClassifyMIS(t *testing.T) {
	pools, err := whirlpool.AutoClassify("MIS", 2, apiOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 2 {
		t.Fatalf("pools = %v", pools)
	}
	// The streaming edges structure must be isolated (the Sec 3.3 case).
	edgesAlone := false
	for _, g := range pools {
		if len(g) == 1 && g[0] == "edges" {
			edgesAlone = true
		}
	}
	if !edgesAlone {
		t.Fatalf("WhirlTool failed to isolate edges: %v", pools)
	}
}

func TestExplicitPoolsOption(t *testing.T) {
	r, err := whirlpool.Run("delaunay", whirlpool.Whirlpool,
		&whirlpool.Options{Scale: 0.05, Pools: [][]int{{0, 1}, {2}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.LLCAccesses == 0 {
		t.Fatal("empty run")
	}
}

func TestRunParallelVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel run is slow")
	}
	base, err := whirlpool.RunParallel("fft", whirlpool.ParSNUCA, nil)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := whirlpool.RunParallel("fft", whirlpool.ParWhirlpoolPaWS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wp.Cycles >= base.Cycles {
		t.Errorf("W+PaWS (%.0f) should beat S-NUCA (%.0f) on fft", wp.Cycles, base.Cycles)
	}
}

func TestFigureUnknown(t *testing.T) {
	if _, err := whirlpool.Figure("fig999", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestFigureTable3(t *testing.T) {
	out, err := whirlpool.Figure("table3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "512KB/bank") {
		t.Fatalf("table 3 content missing:\n%s", out)
	}
}

func TestFigureFig23(t *testing.T) {
	out, err := whirlpool.Figure("fig23", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "combined") {
		t.Fatal("fig23 missing content")
	}
}

func TestFiguresListed(t *testing.T) {
	ids := whirlpool.Figures()
	if len(ids) < 18 {
		t.Fatalf("only %d figures registered", len(ids))
	}
}

// The paper's headline dt ordering through the public API. Needs enough
// run length for the D-NUCA runtimes to converge, so it uses a larger
// scale than the plumbing tests.
func TestHeadlineOrdering(t *testing.T) {
	apiOpt := &whirlpool.Options{Scale: 0.2}
	snuca, err := whirlpool.Run("delaunay", whirlpool.SNUCALRU, apiOpt)
	if err != nil {
		t.Fatal(err)
	}
	jig, err := whirlpool.Run("delaunay", whirlpool.Jigsaw, apiOpt)
	if err != nil {
		t.Fatal(err)
	}
	whl, err := whirlpool.Run("delaunay", whirlpool.Whirlpool, apiOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !(whl.Cycles < jig.Cycles && jig.Cycles < snuca.Cycles) {
		t.Errorf("ordering broken: whirlpool %.0f, jigsaw %.0f, snuca %.0f",
			whl.Cycles, jig.Cycles, snuca.Cycles)
	}
}
