package whirlpool

import (
	"context"
	"fmt"
	"runtime/debug"

	"whirlpool/internal/experiments"
	"whirlpool/internal/workloads"
)

// Experiment is a configured simulation, built with New and functional
// options and executed with Run (one scheme) or Compare (every
// registered scheme):
//
//	rep, err := whirlpool.New("delaunay", whirlpool.Whirlpool,
//		whirlpool.WithScale(0.5),
//		whirlpool.WithChip(whirlpool.Mesh(8, 8)),
//		whirlpool.WithSeed(42),
//	).Run()
//
// The legacy Run/Compare/RunParallel/AutoClassify functions are thin
// shims over Experiment; with default options every result is
// bit-identical to theirs.
type Experiment struct {
	app    string
	scheme Scheme

	scale         float64
	seed          uint64
	reconfig      uint64
	pools         [][]int
	autoClassify  int
	disableBypass bool
	chip          *Chip
	ctx           context.Context
	observer      func(Report)

	err error // first option/validation error, reported by Run
}

// Option configures an Experiment.
type Option func(*Experiment)

// New builds an experiment for one app under one scheme. Option errors
// are deferred to Run, so call sites stay chainable.
func New(app string, scheme Scheme, opts ...Option) *Experiment {
	e := &Experiment{app: app, scheme: scheme}
	for _, o := range opts {
		o(e)
	}
	return e
}

func (e *Experiment) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// WithScale multiplies workload length (default 1.0, the paper's full
// runs; smaller is faster).
func WithScale(scale float64) Option {
	return func(e *Experiment) {
		if scale < 0 {
			e.fail(fmt.Errorf("whirlpool: scale must be >= 0, got %g", scale))
			return
		}
		e.scale = scale
	}
}

// WithSeed drives workload generation from a different seed (default:
// the seed behind every published number in this repo). Reports from
// different seeds are not comparable cell-by-cell.
func WithSeed(seed uint64) Option {
	return func(e *Experiment) { e.seed = seed }
}

// WithReconfigCycles overrides the D-NUCA runtime reconfiguration
// period (default experiments.DefaultReconfigCycles; shorter adapts
// faster at higher overhead).
func WithReconfigCycles(n uint64) Option {
	return func(e *Experiment) {
		if n == 0 {
			e.fail(fmt.Errorf("whirlpool: reconfig period must be > 0"))
			return
		}
		e.reconfig = n
	}
}

// WithPools overrides data classification with explicit groups of
// structure indices (the paper's manual pool_create porting). Nil
// keeps the app's manual classification (Table 2).
func WithPools(pools ...[]int) Option {
	return func(e *Experiment) { e.pools = pools }
}

// WithAutoClassify runs WhirlTool to discover k pools instead of using
// the manual classification (Whirlpool scheme only; others ignore it).
func WithAutoClassify(k int) Option {
	return func(e *Experiment) {
		if k < 1 {
			e.fail(fmt.Errorf("whirlpool: auto-classify needs at least 1 pool, got %d", k))
			return
		}
		e.autoClassify = k
	}
}

// WithoutBypass disables VC bypassing (the paper's Fig 21/22 ablation).
func WithoutBypass() Option {
	return func(e *Experiment) { e.disableBypass = true }
}

// WithChip runs the experiment on a custom chip topology instead of
// the default 4-core chip. See Chip, Mesh, FourCore, SixteenCore.
func WithChip(c Chip) Option {
	return func(e *Experiment) {
		if _, err := c.toNoc(); err != nil {
			e.fail(err)
			return
		}
		e.chip = &c
	}
}

// WithContext attaches a context. Cancellation is observed between
// simulations (an individual run is not interrupted mid-flight): Run
// checks it before starting, Compare between schemes.
func WithContext(ctx context.Context) Option {
	return func(e *Experiment) { e.ctx = ctx }
}

// WithObserver streams every finished report to fn as it completes —
// one call for Run, one per scheme for Compare — before the aggregate
// result returns. fn runs on the calling goroutine.
func WithObserver(fn func(Report)) Option {
	return func(e *Experiment) { e.observer = fn }
}

// harness resolves the experiment's harness from the shared cache,
// keyed on the full harness configuration.
func (e *Experiment) harness() *experiments.Harness {
	return harnessFor(harnessKey{scale: e.scale, seed: e.seed, reconfig: e.reconfig})
}

func (e *Experiment) checkCtx() error {
	if e.ctx != nil {
		return e.ctx.Err()
	}
	return nil
}

// checkClassifiable rejects WhirlTool profiling of trace-sourced apps:
// profiling replays the synthetic generator, which a recorded .wtrc
// trace does not have.
func (e *Experiment) checkClassifiable() error {
	if spec, ok := workloads.ByName(e.app); ok && spec.TracePath != "" {
		return fmt.Errorf("whirlpool: cannot classify trace-sourced app %q (WhirlTool profiles the synthetic generator; recorded traces carry no allocation sites)", e.app)
	}
	return nil
}

// validate resolves the app name; option errors were already captured.
func (e *Experiment) validate() error {
	if e.err != nil {
		return e.err
	}
	if _, ok := workloads.ByName(e.app); !ok {
		return fmt.Errorf("whirlpool: unknown app %q (see Apps())", e.app)
	}
	return nil
}

// Run simulates the app under the experiment's scheme and returns its
// report.
func (e *Experiment) Run() (Report, error) {
	if err := e.validate(); err != nil {
		return Report{}, err
	}
	return e.runScheme(e.scheme)
}

func (e *Experiment) runScheme(s Scheme) (rep Report, err error) {
	k, err := s.kind()
	if err != nil {
		return Report{}, err
	}
	if err := e.checkCtx(); err != nil {
		return Report{}, err
	}
	// Panics from deep inside the harness (a bad pool grouping, a
	// malformed registered spec) must surface as errors with the panic
	// site attached, like the sweep engine's error rows — not crash the
	// caller's process.
	defer func() {
		if r := recover(); r != nil {
			rep, err = Report{}, fmt.Errorf("whirlpool: %s under %s panicked: %v\n%s", e.app, s, r, debug.Stack())
		}
	}()
	h := e.harness()
	// Resolve the trace up front: building can fail at run time (e.g. a
	// trace-sourced app whose .wtrc file is missing or corrupt), and that
	// must surface as an error, not a panic from deeper in the harness.
	if _, err := h.AppErr(e.app); err != nil {
		return Report{}, err
	}
	ro := experiments.RunOptions{Grouping: e.pools, NoBypass: e.disableBypass}
	if e.chip != nil {
		ro.Chip, err = e.chip.toNoc()
		if err != nil {
			return Report{}, err
		}
	}
	if e.autoClassify > 0 && s == Whirlpool {
		if err := e.checkClassifiable(); err != nil {
			return Report{}, err
		}
		ro.Grouping = h.WhirlToolGrouping(e.app, e.autoClassify, true)
	}
	r := h.RunSingle(e.app, k, ro)
	rep = report(e.app, s, r)
	if e.observer != nil {
		e.observer(rep)
	}
	return rep, nil
}

// Compare runs the app under every registered scheme (built-ins plus
// any added via scheme registration), observing each report as it
// lands.
func (e *Experiment) Compare() (map[Scheme]Report, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	all := Schemes()
	out := make(map[Scheme]Report, len(all))
	for _, s := range all {
		r, err := e.runScheme(s)
		if err != nil {
			return nil, err
		}
		out[s] = r
	}
	return out, nil
}

// Classify runs WhirlTool on the app and returns the discovered pools
// as groups of data-structure names.
func (e *Experiment) Classify(pools int) ([][]string, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	if pools < 1 {
		return nil, fmt.Errorf("whirlpool: classify needs at least 1 pool, got %d", pools)
	}
	if err := e.checkCtx(); err != nil {
		return nil, err
	}
	if err := e.checkClassifiable(); err != nil {
		return nil, err
	}
	spec, _ := workloads.ByName(e.app)
	h := e.harness()
	groups := h.WhirlToolGrouping(e.app, pools, true)
	out := make([][]string, len(groups))
	for i, g := range groups {
		for _, si := range g {
			if si >= 0 && si < len(spec.Structs) {
				out[i] = append(out[i], spec.Structs[si].Name)
			}
		}
	}
	return out, nil
}

// runParallelVariant backs the public RunParallel shim: parallel apps
// reuse the experiment's harness configuration (scale, seed, reconfig
// period) on the 16-core chip.
func (e *Experiment) runParallelVariant(v experiments.ParallelVariant, label Scheme) (Report, error) {
	if e.err != nil {
		return Report{}, e.err
	}
	if err := e.checkCtx(); err != nil {
		return Report{}, err
	}
	r := e.harness().RunParallel(e.app, v)
	rep := report(e.app, label, r)
	if e.observer != nil {
		e.observer(rep)
	}
	return rep, nil
}
