// Builder-API tests: the composable Experiment surface, the scheme
// registry's end-to-end path, chip topologies, and the harness cache
// contract.
package whirlpool_test

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"whirlpool"
	"whirlpool/internal/addr"
	"whirlpool/internal/cache"
	"whirlpool/internal/llc"
	"whirlpool/internal/schemes"
	"whirlpool/internal/trace"
)

// The builder with default options must produce bit-identical reports
// to the legacy Run shim (which itself routes through the builder, so
// this also pins harness-cache stability across both paths).
func TestBuilderMatchesLegacyRun(t *testing.T) {
	legacy, err := whirlpool.Run("mcf", whirlpool.Whirlpool, &whirlpool.Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	built, err := whirlpool.New("mcf", whirlpool.Whirlpool, whirlpool.WithScale(0.05)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if legacy != built {
		t.Fatalf("builder report differs from legacy:\n%+v\n%+v", legacy, built)
	}
}

func TestBuilderOptionErrorsDeferred(t *testing.T) {
	if _, err := whirlpool.New("mcf", whirlpool.Jigsaw, whirlpool.WithScale(-1)).Run(); err == nil {
		t.Fatal("negative scale did not error")
	}
	if _, err := whirlpool.New("mcf", whirlpool.Jigsaw, whirlpool.WithAutoClassify(0)).Run(); err == nil {
		t.Fatal("zero-pool auto-classify did not error")
	}
	if _, err := whirlpool.New("mcf", whirlpool.Jigsaw, whirlpool.WithReconfigCycles(0)).Run(); err == nil {
		t.Fatal("zero reconfig period did not error")
	}
	if _, err := whirlpool.New("mcf", whirlpool.Jigsaw,
		whirlpool.WithChip(whirlpool.Mesh(100, 2))).Run(); err == nil {
		t.Fatal("oversized mesh did not error")
	}
}

// The acceptance test for the open scheme registry: a scheme registered
// from outside internal/schemes runs end-to-end through Experiment.Run
// and shows up in the public scheme list (which whirlsim -list and
// whirlsweep -schemes render).
func TestExternalSchemeEndToEnd(t *testing.T) {
	const id = "ext-snuca-lru"
	if err := schemes.Register(id, "ExtLRU", func(o schemes.Options) llc.LLC {
		return schemes.NewSNUCA(o.Chip, o.Meter, cache.LRU)
	}); err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, s := range whirlpool.Schemes() {
		if s == whirlpool.Scheme(id) {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("%q missing from whirlpool.Schemes()", id)
	}
	if whirlpool.SchemeLabel(whirlpool.Scheme(id)) != "ExtLRU" {
		t.Fatalf("label = %q", whirlpool.SchemeLabel(whirlpool.Scheme(id)))
	}
	ext, err := whirlpool.New("delaunay", whirlpool.Scheme(id), whirlpool.WithScale(0.05)).Run()
	if err != nil {
		t.Fatal(err)
	}
	// The clone is built exactly like the built-in S-NUCA-LRU, so the
	// simulation must agree number for number.
	ref, err := whirlpool.New("delaunay", whirlpool.SNUCALRU, whirlpool.WithScale(0.05)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ext.Cycles != ref.Cycles || ext.Hits != ref.Hits || ext.Misses != ref.Misses {
		t.Fatalf("external clone diverged from built-in: %+v vs %+v", ext, ref)
	}
}

func TestCustomChipTopology(t *testing.T) {
	r, err := whirlpool.New("delaunay", whirlpool.SNUCALRU,
		whirlpool.WithScale(0.05),
		whirlpool.WithChip(whirlpool.Mesh(6, 4).Cores(4)),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.LLCAccesses == 0 || r.Cycles <= 0 {
		t.Fatalf("empty run on custom chip: %+v", r)
	}
	// A tiny LLC must miss more than the paper's 25-bank chip.
	big, err := whirlpool.New("delaunay", whirlpool.SNUCALRU, whirlpool.WithScale(0.05)).Run()
	if err != nil {
		t.Fatal(err)
	}
	small, err := whirlpool.New("delaunay", whirlpool.SNUCALRU,
		whirlpool.WithScale(0.05),
		whirlpool.WithChip(whirlpool.Mesh(2, 2).BankKB(64)),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if small.Misses <= big.Misses {
		t.Fatalf("2x2/64KB chip misses (%d) should exceed the 5x5/512KB chip's (%d)",
			small.Misses, big.Misses)
	}
}

func TestChipPresetsAndParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int // cores
	}{
		{"4core", 4}, {"16core", 16}, {"16core:1024", 16},
		{"8x8", 4}, {"8x8:6", 6}, {"8x8:6:1024", 6},
	} {
		c, err := whirlpool.ParseChip(tc.in)
		if err != nil {
			t.Fatalf("ParseChip(%q): %v", tc.in, err)
		}
		if c.NCores() != tc.want {
			t.Fatalf("ParseChip(%q).NCores() = %d, want %d", tc.in, c.NCores(), tc.want)
		}
		// String must round-trip through ParseChip.
		if _, err := whirlpool.ParseChip(c.String()); err != nil {
			t.Fatalf("round trip of %q via %q: %v", tc.in, c.String(), err)
		}
	}
	// Strict parsing: trailing garbage and non-positive fields are
	// errors, never silent defaults.
	for _, bad := range []string{
		"bogus", "1x1", "8x8:0:32", "8x8:999", "8x8garbage", "8x8:0",
		"8x8:-2", "8x8:6:1024junk", "8x8:6:0", "8x8:6:1024:9", "4core:32", "4core:8:512",
	} {
		if _, err := whirlpool.ParseChip(bad); err == nil {
			t.Fatalf("ParseChip(%q) accepted bad topology", bad)
		}
	}
}

func TestWithSeedChangesWorkload(t *testing.T) {
	a, err := whirlpool.New("mcf", whirlpool.SNUCALRU, whirlpool.WithScale(0.05)).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := whirlpool.New("mcf", whirlpool.SNUCALRU,
		whirlpool.WithScale(0.05), whirlpool.WithSeed(12345)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.Hits == b.Hits && a.Misses == b.Misses {
		t.Fatal("different seeds produced identical runs: the harness cache is not keyed on seed")
	}
	// Same seed again: the cached harness must reproduce exactly.
	b2, err := whirlpool.New("mcf", whirlpool.SNUCALRU,
		whirlpool.WithScale(0.05), whirlpool.WithSeed(12345)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if b != b2 {
		t.Fatalf("same-seed rerun diverged:\n%+v\n%+v", b, b2)
	}
}

func TestWithReconfigCyclesKeyed(t *testing.T) {
	a, err := whirlpool.New("lbm", whirlpool.Whirlpool, whirlpool.WithScale(0.05)).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := whirlpool.New("lbm", whirlpool.Whirlpool,
		whirlpool.WithScale(0.05), whirlpool.WithReconfigCycles(250_000)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles {
		t.Fatal("a 8x shorter reconfig period changed nothing: the harness cache ignores it")
	}
}

func TestWithContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := whirlpool.New("mcf", whirlpool.Jigsaw,
		whirlpool.WithScale(0.05), whirlpool.WithContext(ctx)).Run(); err == nil {
		t.Fatal("canceled context did not abort the run")
	}
}

func TestWithObserverStreams(t *testing.T) {
	var seen []whirlpool.Report
	e := whirlpool.New("delaunay", whirlpool.Whirlpool,
		whirlpool.WithScale(0.05),
		whirlpool.WithObserver(func(r whirlpool.Report) { seen = append(seen, r) }))
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != r {
		t.Fatalf("observer saw %d reports, want exactly the returned one", len(seen))
	}
	seen = nil
	m, err := e.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(m) {
		t.Fatalf("observer saw %d reports for a %d-scheme compare", len(seen), len(m))
	}
}

// Satellite: registering a spec that redefines an already-run app must
// invalidate the cached trace, so the redefinition takes effect.
func TestSpecReloadInvalidatesHarnessCache(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, accesses int) string {
		path := filepath.Join(dir, name)
		data := []byte(`{
  "version": 1,
  "apps": [{
    "name": "reloadtest",
    "accesses": ` + strconv.Itoa(accesses) + `,
    "structs": [{"name": "buf", "bytes": "1MB", "pattern": "seq"}]
  }]
}`)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if _, err := whirlpool.LoadSpecFile(write("v1.json", 200_000)); err != nil {
		t.Fatal(err)
	}
	r1, err := whirlpool.New("reloadtest", whirlpool.SNUCALRU).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Redefine the app with twice the work, after it has already run.
	if _, err := whirlpool.LoadSpecFile(write("v2.json", 400_000)); err != nil {
		t.Fatal(err)
	}
	r2, err := whirlpool.New("reloadtest", whirlpool.SNUCALRU).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Instrs <= r1.Instrs {
		t.Fatalf("redefinition ignored: instrs %v -> %v (stale cached trace)", r1.Instrs, r2.Instrs)
	}
}

// A trace-sourced app whose .wtrc file is missing must fail with a
// clean error through the public API, never a panic.
func TestRunTraceAppMissingFileErrors(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(specPath,
		[]byte(`{"apps":[{"name":"ghost-trace","source":"trace","trace":"ghost.wtrc"}]}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := whirlpool.LoadSpecFile(specPath); err != nil {
		t.Fatal(err)
	}
	_, err := whirlpool.New("ghost-trace", whirlpool.Jigsaw).Run()
	if err == nil || !strings.Contains(err.Error(), "ghost.wtrc") {
		t.Fatalf("missing trace file: err = %v, want a named-file error", err)
	}
}

// WhirlTool classification needs the synthetic generator: on a
// trace-sourced app it must error, not profile an empty stream.
func TestClassifyTraceAppErrors(t *testing.T) {
	dir := t.TempDir()
	wtrc := filepath.Join(dir, "t.wtrc")
	tr := &trace.LLCTrace{}
	for i := 0; i < 100; i++ {
		tr.Append(trace.LLCAccess{Line: addr.Line(i * 64), Gap: 30})
	}
	tr.Instrs = 3000
	if err := trace.WriteFile(wtrc, tr); err != nil {
		t.Fatal(err)
	}
	spec := filepath.Join(dir, "s.json")
	if err := os.WriteFile(spec,
		[]byte(`{"apps":[{"name":"cls-trace","source":"trace","trace":"`+wtrc+`"}]}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := whirlpool.LoadSpecFile(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := whirlpool.New("cls-trace", whirlpool.Whirlpool).Classify(3); err == nil ||
		!strings.Contains(err.Error(), "classify trace-sourced") {
		t.Fatalf("Classify on trace app: err = %v", err)
	}
	if _, err := whirlpool.New("cls-trace", whirlpool.Whirlpool, whirlpool.WithAutoClassify(2)).Run(); err == nil ||
		!strings.Contains(err.Error(), "classify trace-sourced") {
		t.Fatalf("auto-classify Run on trace app: err = %v", err)
	}
	// Without auto-classify the same app must simply run.
	if _, err := whirlpool.New("cls-trace", whirlpool.Whirlpool).Run(); err != nil {
		t.Fatalf("plain run of trace app: %v", err)
	}
}

// TestRunPanicsBecomeErrors: the same failure class the sweep engine
// converts into error rows (a pool grouping referencing a struct index
// that does not exist) must surface from the public Run path as an
// error naming the panic site — not crash the caller's process.
func TestRunPanicsBecomeErrors(t *testing.T) {
	_, err := whirlpool.New("delaunay", whirlpool.Whirlpool,
		whirlpool.WithPools([]int{99}),
	).Run()
	if err == nil {
		t.Fatal("out-of-range pool grouping: Run returned nil error")
	}
	if !strings.Contains(err.Error(), "bad struct index") {
		t.Errorf("error lost the panic value: %v", err)
	}
	if !strings.Contains(err.Error(), "CallpointPools") {
		t.Errorf("error lost the panic site stack: %.200v", err)
	}
	// Compare goes through the same guarded path.
	if _, err := whirlpool.New("delaunay", whirlpool.Whirlpool,
		whirlpool.WithPools([]int{99})).Compare(); err == nil {
		t.Fatal("Compare with a panicking cell returned nil error")
	}
}
