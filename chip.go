package whirlpool

import (
	"fmt"
	"strconv"
	"strings"

	"whirlpool/internal/addr"
	"whirlpool/internal/noc"
)

// Chip describes the simulated chip topology: a W×H mesh of LLC banks
// with cores attached around the border and memory controllers at the
// edge midpoints. The zero value is the paper's 4-core chip; build
// custom topologies with Mesh and the Cores/BankKB refiners:
//
//	whirlpool.Mesh(8, 8)               // 8×8 banks, 4 cores
//	whirlpool.Mesh(8, 8).Cores(8)      // 8 border cores
//	whirlpool.Mesh(4, 4).BankKB(1024)  // 1MB banks
//
// Chip is a value type: refiners return copies, so presets can be
// shared and specialized freely.
type Chip struct {
	preset string // "", "4core" or "16core": the paper's exact layouts
	w, h   int
	cores  int
	bankKB int
}

// FourCore is the paper's 4-core, 5×5-bank, 512KB/bank chip (Fig 1).
func FourCore() Chip { return Chip{preset: "4core"} }

// SixteenCore is the paper's 16-core, 9×9-bank chip (Fig 12).
func SixteenCore() Chip { return Chip{preset: "16core"} }

// Mesh describes a custom w×h-bank mesh. Cores default to 4, spread
// evenly around the border; banks default to the paper's 512KB.
func Mesh(w, h int) Chip { return Chip{w: w, h: h} }

// Cores returns a copy of the chip with n border-attached cores.
func (c Chip) Cores(n int) Chip { c.cores = n; return c }

// BankKB returns a copy of the chip with kb-kilobyte LLC banks.
func (c Chip) BankKB(kb int) Chip { c.bankKB = kb; return c }

// String renders the topology in the format ParseChip accepts
// ("4core", "16core:1024", "8x8:6", "8x8:6:1024").
func (c Chip) String() string {
	bank := ""
	if c.bankKB != 0 && c.bankKB != 512 {
		bank = fmt.Sprintf(":%d", c.bankKB)
	}
	if c.isPreset() {
		return c.preset + bank
	}
	if c.w == 0 && c.h == 0 {
		return "4core" + bank
	}
	return fmt.Sprintf("%dx%d:%d%s", c.w, c.h, c.coreCount(), bank)
}

func (c Chip) isPreset() bool { return c.preset != "" }

func (c Chip) coreCount() int {
	switch c.preset {
	case "4core":
		return 4
	case "16core":
		return 16
	}
	if c.cores == 0 {
		return 4
	}
	return c.cores
}

// NCores reports how many cores the chip has — the bound on mix size
// and core pinning.
func (c Chip) NCores() int { return c.coreCount() }

// toNoc validates the topology and builds the internal chip. The zero
// Chip maps to the paper's exact 4-core layout, so default runs stay
// bit-identical to the presets.
func (c Chip) toNoc() (*noc.Chip, error) {
	if c.bankKB < 0 {
		return nil, fmt.Errorf("whirlpool: bank size %dKB out of range", c.bankKB)
	}
	bankBytes := uint64(c.bankKB) * addr.KB
	if bankBytes != 0 && bankBytes < noc.MinBankBytes {
		return nil, fmt.Errorf("whirlpool: bank size %dKB out of range (want >= %dKB)", c.bankKB, noc.MinBankBytes/addr.KB)
	}
	switch {
	case c.preset == "4core", c.preset == "" && c.w == 0 && c.h == 0:
		chip := noc.FourCoreChip()
		if bankBytes != 0 {
			chip.BankBytes = bankBytes
		}
		if c.preset == "4core" && c.cores != 0 && c.cores != 4 {
			return nil, fmt.Errorf("whirlpool: the 4-core preset has exactly 4 cores")
		}
		return chip, nil
	case c.preset == "16core":
		chip := noc.SixteenCoreChip()
		if bankBytes != 0 {
			chip.BankBytes = bankBytes
		}
		if c.cores != 0 && c.cores != 16 {
			return nil, fmt.Errorf("whirlpool: the 16-core preset has exactly 16 cores")
		}
		return chip, nil
	case c.preset != "":
		return nil, fmt.Errorf("whirlpool: unknown chip preset %q", c.preset)
	}
	if err := noc.ValidateCustom(c.w, c.h, c.coreCount(), bankBytes); err != nil {
		return nil, fmt.Errorf("whirlpool: %v", err)
	}
	return noc.Custom(c.w, c.h, c.coreCount(), bankBytes), nil
}

// ParseChip parses a topology string: "4core" or "16core" (optionally
// with a bank size, "16core:1024"), or "WxH[:cores[:bankKB]]" ("8x8",
// "8x8:6", "8x8:6:1024") — the format the CLI -chip flags accept and
// Chip.String round-trips. Parsing is strict: trailing garbage and
// non-positive fields are errors, not defaults.
func ParseChip(s string) (Chip, error) {
	bad := func(why string) (Chip, error) {
		return Chip{}, fmt.Errorf("whirlpool: bad chip %q: %s (want 4core[:bankKB], 16core[:bankKB], or WxH[:cores[:bankKB]])", s, why)
	}
	if s == "" {
		return FourCore(), nil
	}
	parts := strings.Split(s, ":")
	pos := func(p, what string) (int, error) {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("%s %q must be a positive integer", what, p)
		}
		return v, nil
	}

	var c Chip
	switch parts[0] {
	case "4core":
		c = FourCore()
	case "16core":
		c = SixteenCore()
	default:
		wh := strings.Split(parts[0], "x")
		if len(wh) != 2 {
			return bad("topology must be a preset or WxH")
		}
		w, err := pos(wh[0], "mesh width")
		if err != nil {
			return bad(err.Error())
		}
		h, err := pos(wh[1], "mesh height")
		if err != nil {
			return bad(err.Error())
		}
		c = Mesh(w, h)
		if len(parts) > 1 {
			n, err := pos(parts[1], "core count")
			if err != nil {
				return bad(err.Error())
			}
			c = c.Cores(n)
			parts = parts[1:]
		}
	}
	switch len(parts) {
	case 1:
	case 2:
		kb, err := pos(parts[1], "bank size")
		if err != nil {
			return bad(err.Error())
		}
		c = c.BankKB(kb)
	default:
		return bad("too many ':' fields")
	}
	if _, err := c.toNoc(); err != nil {
		return Chip{}, err
	}
	return c, nil
}
