// Package mem implements the Whirlpool memory allocator over a *simulated*
// 64-bit virtual address space.
//
// The paper's allocator (built on Doug Lea's malloc) guarantees that every
// page belongs to exactly one pool at a time, so the virtual memory system
// can classify data. Go's managed runtime cannot tag raw OS pages, so we
// reproduce the same contract on simulated addresses: each (pool,
// callpoint) pair owns a disjoint arena — a large aligned region of the
// simulated address space — and allocations never share a page across
// arenas. Address-to-pool and address-to-callpoint lookups are O(1) bit
// arithmetic, exactly like the paper's TLB-based classification.
package mem

import (
	"fmt"

	"whirlpool/internal/addr"
)

// PoolID identifies a memory pool. Pool 0 is the default (thread-private)
// pool that untagged allocations land in.
type PoolID int32

// DefaultPool is where plain malloc (no pool) allocations go.
const DefaultPool PoolID = 0

// Callpoint identifies an allocation site (the paper hashes the last two
// return PCs on the stack; workloads provide stable synthetic ids).
type Callpoint uint32

// NoCallpoint marks allocations without callpoint attribution.
const NoCallpoint Callpoint = 0

const (
	// arenaShift gives each arena a 64GB region; arena id = addr >> 36.
	arenaShift = 36
	arenaBytes = uint64(1) << arenaShift
	// minAlloc is the minimum allocation granule (dlmalloc-style).
	minAlloc = 16
	// largeCutoff and above are allocated as whole pages.
	largeCutoff = 16 * addr.KB
	// numClasses covers power-of-two size classes 16B..16KB (requests at
	// or above largeCutoff go to the page allocator, but a rounded class
	// can reach largeCutoff itself).
	numClasses = 11
)

type arenaKey struct {
	pool PoolID
	cp   Callpoint
}

type arena struct {
	pool PoolID
	cp   Callpoint
	base addr.Addr
	next addr.Addr // bump pointer
	free [numClasses][]addr.Addr
	// freePages holds runs of freed whole pages for reuse.
	freePages []pageRun

	BytesLive uint64
	BytesPeak uint64
}

type pageRun struct {
	start addr.Addr
	pages uint64
}

// Space is a simulated virtual address space with pool-aware allocation.
type Space struct {
	arenas []*arena
	byKey  map[arenaKey]int32
	sizes  map[addr.Addr]uint64 // live allocation sizes, for Free/Realloc
	pools  []PoolInfo
}

// PoolInfo describes a created pool.
type PoolInfo struct {
	ID   PoolID
	Name string
}

// NewSpace creates an empty address space with the default pool in place.
func NewSpace() *Space {
	s := &Space{
		byKey: make(map[arenaKey]int32),
		sizes: make(map[addr.Addr]uint64),
	}
	s.pools = append(s.pools, PoolInfo{ID: DefaultPool, Name: "default"})
	return s
}

// PoolCreate creates a new pool and returns its id (the paper's
// pool_create).
func (s *Space) PoolCreate(name string) PoolID {
	id := PoolID(len(s.pools))
	if name == "" {
		name = fmt.Sprintf("pool%d", id)
	}
	s.pools = append(s.pools, PoolInfo{ID: id, Name: name})
	return id
}

// Pools returns descriptors for all created pools (including default).
func (s *Space) Pools() []PoolInfo { return s.pools }

// PoolName returns the name of pool p.
func (s *Space) PoolName(p PoolID) string {
	if int(p) < len(s.pools) {
		return s.pools[p].Name
	}
	return fmt.Sprintf("pool%d", p)
}

func (s *Space) arenaFor(pool PoolID, cp Callpoint) *arena {
	k := arenaKey{pool, cp}
	if i, ok := s.byKey[k]; ok {
		return s.arenas[i]
	}
	id := int32(len(s.arenas))
	// Arena 0 would start at address 0; skip it so address 0 stays
	// invalid (a nil-like sentinel).
	base := addr.Addr(uint64(id+1) << arenaShift)
	a := &arena{pool: pool, cp: cp, base: base, next: base}
	s.arenas = append(s.arenas, a)
	s.byKey[k] = id
	return a
}

// sizeClass returns the class index and rounded size for a small request.
func sizeClass(size uint64) (int, uint64) {
	c := 0
	sz := uint64(minAlloc)
	for sz < size {
		sz <<= 1
		c++
	}
	return c, sz
}

// Malloc allocates size bytes from the given pool (pool_malloc). The
// callpoint tags the allocation site for WhirlTool profiling; use
// NoCallpoint when not profiling.
func (s *Space) Malloc(size uint64, pool PoolID, cp Callpoint) addr.Addr {
	if size == 0 {
		size = minAlloc
	}
	a := s.arenaFor(pool, cp)
	var p addr.Addr
	if size >= largeCutoff {
		pages := addr.PagesFor(size)
		p = a.allocPages(pages)
		size = pages * addr.PageBytes
	} else {
		var c int
		c, size = sizeClass(size)
		if n := len(a.free[c]); n > 0 {
			p = a.free[c][n-1]
			a.free[c] = a.free[c][:n-1]
		} else {
			// Avoid small allocations straddling a page boundary, so a
			// page never mixes arenas (it can't) nor partial objects in
			// confusing ways.
			if off := uint64(a.next) % addr.PageBytes; off+size > addr.PageBytes {
				a.next += addr.Addr(addr.PageBytes - off)
			}
			p = a.next
			a.next += addr.Addr(size)
		}
	}
	a.BytesLive += size
	if a.BytesLive > a.BytesPeak {
		a.BytesPeak = a.BytesLive
	}
	s.sizes[p] = size
	return p
}

func (a *arena) allocPages(pages uint64) addr.Addr {
	// First-fit over freed page runs.
	for i, run := range a.freePages {
		if run.pages >= pages {
			p := run.start
			if run.pages == pages {
				a.freePages = append(a.freePages[:i], a.freePages[i+1:]...)
			} else {
				a.freePages[i].start += addr.Addr(pages * addr.PageBytes)
				a.freePages[i].pages -= pages
			}
			return p
		}
	}
	// Bump to a fresh page boundary.
	if off := uint64(a.next) % addr.PageBytes; off != 0 {
		a.next += addr.Addr(addr.PageBytes - off)
	}
	p := a.next
	a.next += addr.Addr(pages * addr.PageBytes)
	return p
}

// Free releases an allocation made by Malloc.
func (s *Space) Free(p addr.Addr) {
	size, ok := s.sizes[p]
	if !ok {
		panic(fmt.Sprintf("mem: Free of unknown address %#x", uint64(p)))
	}
	delete(s.sizes, p)
	a := s.arenaOf(p)
	a.BytesLive -= size
	if size >= addr.PageBytes && uint64(p)%addr.PageBytes == 0 {
		a.freePages = append(a.freePages, pageRun{p, size / addr.PageBytes})
		return
	}
	c, _ := sizeClass(size)
	a.free[c] = append(a.free[c], p)
}

// Realloc grows or shrinks an allocation, possibly moving it.
func (s *Space) Realloc(p addr.Addr, size uint64) addr.Addr {
	old, ok := s.sizes[p]
	if !ok {
		panic(fmt.Sprintf("mem: Realloc of unknown address %#x", uint64(p)))
	}
	if size <= old {
		return p
	}
	a := s.arenaOf(p)
	np := s.Malloc(size, a.pool, a.cp)
	s.Free(p)
	return np
}

// Calloc allocates zeroed memory (zeroing is implicit in simulation).
func (s *Space) Calloc(n, elemSize uint64, pool PoolID, cp Callpoint) addr.Addr {
	return s.Malloc(n*elemSize, pool, cp)
}

func (s *Space) arenaOf(p addr.Addr) *arena {
	id := int32(uint64(p)>>arenaShift) - 1
	if id < 0 || int(id) >= len(s.arenas) {
		panic(fmt.Sprintf("mem: address %#x outside any arena", uint64(p)))
	}
	return s.arenas[id]
}

// PoolOf returns the pool owning address p (O(1), like a TLB tag read).
func (s *Space) PoolOf(p addr.Addr) PoolID {
	return s.arenaOf(p).pool
}

// PoolOfLine returns the pool owning a line address.
func (s *Space) PoolOfLine(l addr.Line) PoolID {
	return s.PoolOf(addr.LineAddr(l))
}

// CallpointOf returns the allocation-site tag of address p.
func (s *Space) CallpointOf(p addr.Addr) Callpoint {
	return s.arenaOf(p).cp
}

// CallpointOfLine returns the allocation-site tag of a line address.
func (s *Space) CallpointOfLine(l addr.Line) Callpoint {
	return s.arenaOf(addr.LineAddr(l)).cp
}

// PoolBytes returns the peak bytes held by each pool, indexed by PoolID.
func (s *Space) PoolBytes() []uint64 {
	out := make([]uint64, len(s.pools))
	for _, a := range s.arenas {
		out[a.pool] += a.BytesPeak
	}
	return out
}

// NumPools returns the number of pools including the default pool.
func (s *Space) NumPools() int { return len(s.pools) }
