package mem

import (
	"testing"
	"testing/quick"

	"whirlpool/internal/addr"
)

func TestPoolCreate(t *testing.T) {
	s := NewSpace()
	p1 := s.PoolCreate("vertices")
	p2 := s.PoolCreate("edges")
	if p1 == p2 || p1 == DefaultPool || p2 == DefaultPool {
		t.Fatalf("pool ids not distinct: %d %d", p1, p2)
	}
	if s.PoolName(p1) != "vertices" {
		t.Fatalf("name = %q", s.PoolName(p1))
	}
	if s.NumPools() != 3 {
		t.Fatalf("NumPools = %d, want 3 (default + 2)", s.NumPools())
	}
}

func TestMallocPoolOwnership(t *testing.T) {
	s := NewSpace()
	p1 := s.PoolCreate("a")
	p2 := s.PoolCreate("b")
	a1 := s.Malloc(1000, p1, NoCallpoint)
	a2 := s.Malloc(1000, p2, NoCallpoint)
	if s.PoolOf(a1) != p1 || s.PoolOf(a2) != p2 {
		t.Fatal("PoolOf mismatch")
	}
	// Every line of each allocation belongs to its pool.
	for off := uint64(0); off < 1000; off += 64 {
		if s.PoolOfLine(addr.LineOf(a1+addr.Addr(off))) != p1 {
			t.Fatal("line ownership violated")
		}
	}
}

func TestPagesNeverShared(t *testing.T) {
	// The paper's allocator contract: a page belongs to exactly one pool.
	s := NewSpace()
	p1 := s.PoolCreate("a")
	p2 := s.PoolCreate("b")
	pages := make(map[addr.Page]PoolID)
	for i := 0; i < 200; i++ {
		pool := p1
		if i%2 == 1 {
			pool = p2
		}
		a := s.Malloc(100, pool, NoCallpoint)
		for off := uint64(0); off < 100; off += 64 {
			pg := addr.PageOf(a + addr.Addr(off))
			if prev, ok := pages[pg]; ok && prev != pool {
				t.Fatalf("page %d shared by pools %d and %d", pg, prev, pool)
			}
			pages[pg] = pool
		}
	}
}

func TestSmallAllocationsDoNotStraddlePages(t *testing.T) {
	s := NewSpace()
	for i := 0; i < 1000; i++ {
		a := s.Malloc(96, DefaultPool, NoCallpoint) // rounds to 128
		first := addr.PageOf(a)
		last := addr.PageOf(a + 127)
		if first != last {
			t.Fatalf("allocation %d straddles pages", i)
		}
	}
}

func TestLargeAllocationsPageAligned(t *testing.T) {
	s := NewSpace()
	a := s.Malloc(100*addr.KB, DefaultPool, NoCallpoint)
	if uint64(a)%addr.PageBytes != 0 {
		t.Fatalf("large allocation not page aligned: %#x", uint64(a))
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := NewSpace()
	a := s.Malloc(128, DefaultPool, NoCallpoint)
	s.Free(a)
	b := s.Malloc(128, DefaultPool, NoCallpoint)
	if a != b {
		t.Fatalf("free-list reuse failed: %#x then %#x", uint64(a), uint64(b))
	}
}

func TestFreePagesReused(t *testing.T) {
	s := NewSpace()
	a := s.Malloc(64*addr.KB, DefaultPool, NoCallpoint)
	s.Free(a)
	b := s.Malloc(32*addr.KB, DefaultPool, NoCallpoint)
	if b != a {
		t.Fatalf("page run not reused: %#x vs %#x", uint64(b), uint64(a))
	}
}

func TestFreeUnknownPanics(t *testing.T) {
	s := NewSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Free(addr.Addr(1 << 40))
}

func TestRealloc(t *testing.T) {
	s := NewSpace()
	p := s.PoolCreate("x")
	a := s.Malloc(100, p, NoCallpoint)
	b := s.Realloc(a, 50) // shrink: stays
	if a != b {
		t.Fatal("shrinking realloc moved")
	}
	c := s.Realloc(a, 100000) // grow: moves, stays in pool
	if s.PoolOf(c) != p {
		t.Fatal("realloc left the pool")
	}
}

func TestCalloc(t *testing.T) {
	s := NewSpace()
	a := s.Calloc(100, 8, DefaultPool, NoCallpoint)
	if s.PoolOf(a) != DefaultPool {
		t.Fatal("calloc pool wrong")
	}
}

func TestCallpointTracking(t *testing.T) {
	s := NewSpace()
	a := s.Malloc(100, DefaultPool, Callpoint(7))
	b := s.Malloc(100, DefaultPool, Callpoint(9))
	if s.CallpointOf(a) != 7 || s.CallpointOf(b) != 9 {
		t.Fatal("callpoint mismatch")
	}
	if s.CallpointOfLine(addr.LineOf(a)) != 7 {
		t.Fatal("CallpointOfLine mismatch")
	}
	// Different callpoints must not share pages.
	if addr.PageOf(a) == addr.PageOf(b) {
		t.Fatal("different callpoints share a page")
	}
}

func TestPoolBytes(t *testing.T) {
	s := NewSpace()
	p := s.PoolCreate("big")
	s.Malloc(1*addr.MB, p, NoCallpoint)
	s.Malloc(2*addr.MB, p, NoCallpoint)
	pb := s.PoolBytes()
	if pb[p] < 3*addr.MB {
		t.Fatalf("pool bytes = %d, want >= 3MB", pb[p])
	}
}

func TestQuickPoolOfAlwaysMatchesAllocation(t *testing.T) {
	s := NewSpace()
	pools := []PoolID{DefaultPool, s.PoolCreate("a"), s.PoolCreate("b"), s.PoolCreate("c")}
	f := func(sizeRaw uint16, poolRaw, cpRaw uint8) bool {
		size := uint64(sizeRaw)%8192 + 1
		pool := pools[int(poolRaw)%len(pools)]
		cp := Callpoint(cpRaw % 4)
		a := s.Malloc(size, pool, cp)
		return s.PoolOf(a) == pool && s.CallpointOf(a) == cp &&
			s.PoolOf(a+addr.Addr(size-1)) == pool
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
