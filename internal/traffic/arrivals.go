package traffic

import (
	"math"
	"time"

	"whirlpool/internal/stats"
)

// arrivals generates one client class's deterministic request schedule:
// next() returns successive arrival offsets from the run's start. The
// schedule depends only on (spec seed, class id, class parameters), so
// two runs of one spec issue requests at identical offsets.
type arrivals struct {
	c   *Client
	rng *stats.Rng
	// t is the next arrival offset to hand out.
	t time.Duration
	// inBurst counts arrivals already emitted in the current burst
	// (bursty only).
	inBurst int
}

// newArrivals builds the schedule generator for one class. The class id
// is folded into the seed so classes draw independent streams even at
// equal rates.
func newArrivals(seed uint64, c *Client) *arrivals {
	h := seed
	for _, b := range []byte(c.ID) {
		h = h*1099511628211 + uint64(b) // FNV-1a fold, same spirit as ShardOf
	}
	return &arrivals{c: c, rng: stats.NewRng(h)}
}

// next returns the next arrival offset from the run start.
func (a *arrivals) next() time.Duration {
	interval := time.Duration(float64(time.Second) / a.c.Rate)
	switch a.c.Arrival {
	case ArrivalPoisson:
		// Exponential inter-arrival with mean 1/rate: -ln(U)/rate.
		u := a.rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap := -math.Log(u) / a.c.Rate
		a.t += time.Duration(gap * float64(time.Second))
	case ArrivalBursty:
		// Burst.Size back-to-back arrivals, then one idle gap sized so
		// the long-run average rate is still Rate.
		if a.inBurst < a.c.Burst.Size {
			a.inBurst++
			// Arrivals inside a burst share one offset (back-to-back).
		} else {
			a.inBurst = 1
			a.t += time.Duration(float64(a.c.Burst.Size) * float64(interval))
		}
	default: // constant
		a.t += interval
	}
	return a.t
}
