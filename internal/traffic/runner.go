package traffic

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whirlpool/internal/apiclient"
	"whirlpool/internal/stats"
)

// ClassReport is one request class's measured outcome.
type ClassReport struct {
	ID string `json:"id"`
	Op string `json:"op"`
	// Sent counts requests actually issued; Dropped counts scheduled
	// arrivals skipped because the class's workers could not keep up
	// (the backlog bound protects the open-loop schedule — a drop means
	// the offered rate exceeded what Concurrency could carry).
	Sent    int `json:"sent"`
	Dropped int `json:"dropped,omitempty"`
	// OK / Shed / Errors partition Sent: 2xx, back-pressure (429/503),
	// everything else.
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// RPS is the achieved completion rate: OK / wall-clock.
	RPS float64 `json:"rps"`
	// Latency quantiles over OK requests, milliseconds (exact, from the
	// full sample set — not the server's bucketed estimates).
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// SLO / MinRPS echo the spec's targets; Violations holds one line
	// per breached target (empty = class passed).
	SLO        *SLO     `json:"slo,omitempty"`
	MinRPS     float64  `json:"min_rps,omitempty"`
	Violations []string `json:"violations,omitempty"`
	// SampleErrors holds up to three distinct error strings, so a
	// failing run's report says why.
	SampleErrors []string `json:"sample_errors,omitempty"`
}

// Report is a whole run's outcome.
type Report struct {
	Name      string        `json:"name,omitempty"`
	Base      string        `json:"base"`
	DurationS float64       `json:"duration_s"`
	Seed      uint64        `json:"seed"`
	Classes   []ClassReport `json:"classes"`
}

// Check returns a single error summarizing every SLO and floor
// violation in the report, or nil when all classes passed.
func (r *Report) Check() error {
	var all []string
	for i := range r.Classes {
		all = append(all, r.Classes[i].Violations...)
	}
	if len(all) == 0 {
		return nil
	}
	return fmt.Errorf("traffic: %d SLO violation(s): %s", len(all), joinLines(all))
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "; "
		}
		out += s
	}
	return out
}

// WriteTable renders the report as an aligned text table (whirltool
// load's default output).
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "target %s  duration %.1fs  seed %d\n", r.Base, r.DurationS, r.Seed)
	fmt.Fprintf(w, "%-12s %-8s %8s %8s %6s %6s %9s %9s %9s %9s  %s\n",
		"class", "op", "sent", "ok", "shed", "err", "rps", "p50ms", "p95ms", "p99ms", "slo")
	for i := range r.Classes {
		c := &r.Classes[i]
		verdict := "-"
		if c.SLO != nil || c.MinRPS > 0 {
			verdict = "pass"
			if len(c.Violations) > 0 {
				verdict = "FAIL"
			}
		}
		fmt.Fprintf(w, "%-12s %-8s %8d %8d %6d %6d %9.1f %9.2f %9.2f %9.2f  %s\n",
			c.ID, c.Op, c.Sent, c.OK, c.Shed, c.Errors, c.RPS, c.P50MS, c.P95MS, c.P99MS, verdict)
		for _, v := range c.Violations {
			fmt.Fprintf(w, "  ! %s\n", v)
		}
		for _, e := range c.SampleErrors {
			fmt.Fprintf(w, "  · error: %s\n", e)
		}
	}
}

// Options tune a run.
type Options struct {
	// Duration overrides the spec's duration_s when positive.
	Duration time.Duration
	// Seed overrides the spec's seed when non-zero.
	Seed uint64
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// backlogBound caps how many scheduled arrivals may queue ahead of a
// class's workers before the generator starts dropping (and counting)
// them instead of distorting the arrival process by blocking.
const backlogBound = 1024

// Run drives the spec against the daemon behind api and reports per
// class. The context cancels the run early (the report covers what ran).
func Run(ctx context.Context, api *apiclient.Client, spec *Spec, opt Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := spec.Duration(opt.Duration)
	seed := spec.Seed
	if opt.Seed != 0 {
		seed = opt.Seed
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	logf("traffic: %d classes against %s for %s (seed %d)", len(spec.Clients), api.Base(), d, seed)

	start := time.Now()
	var wg sync.WaitGroup
	reports := make([]*ClassReport, len(spec.Clients))
	for i := range spec.Clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = runClass(ctx, api, seed, &spec.Clients[i], d, start)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Name: spec.Name, Base: api.Base(),
		DurationS: elapsed.Seconds(), Seed: seed,
	}
	for _, cr := range reports {
		rep.Classes = append(rep.Classes, *cr)
	}
	sort.Slice(rep.Classes, func(a, b int) bool { return rep.Classes[a].ID < rep.Classes[b].ID })
	return rep, nil
}

// classState accumulates one class's outcomes across its workers.
type classState struct {
	mu        sync.Mutex
	latMS     []float64
	ok        int
	shed      int
	errs      int
	errSample []string
}

func (st *classState) record(latMS float64, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err == nil {
		st.ok++
		st.latMS = append(st.latMS, latMS)
		return
	}
	var ae *apiclient.Error
	if errors.As(err, &ae) && ae.Temporary() {
		st.shed++
		return
	}
	st.errs++
	msg := err.Error()
	for _, s := range st.errSample {
		if s == msg {
			return
		}
	}
	if len(st.errSample) < 3 {
		st.errSample = append(st.errSample, msg)
	}
}

// runClass drives one class: a deterministic arrival generator feeding
// Concurrency workers, each issuing the class's request through api.
func runClass(ctx context.Context, api *apiclient.Client, seed uint64, c *Client, d time.Duration, start time.Time) *ClassReport {
	workers := c.Concurrency
	if workers <= 0 {
		workers = 1
	}
	ticks := make(chan struct{}, backlogBound)
	var dropped, sent atomic.Int64

	// Generator: walk the deterministic schedule in real time.
	go func() {
		defer close(ticks)
		ar := newArrivals(seed, c)
		timer := time.NewTimer(0)
		defer timer.Stop()
		<-timer.C
		for {
			off := ar.next()
			if off >= d {
				return
			}
			if wait := time.Until(start.Add(off)); wait > 0 {
				timer.Reset(wait)
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
			} else if ctx.Err() != nil {
				return
			}
			select {
			case ticks <- struct{}{}:
			default:
				dropped.Add(1)
			}
		}
	}()

	st := &classState{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ticks {
				if ctx.Err() != nil {
					return
				}
				sent.Add(1)
				t0 := time.Now()
				err := issue(ctx, api, c)
				st.record(float64(time.Since(t0).Microseconds())/1000, err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	cr := &ClassReport{
		ID: c.ID, Op: string(c.Op),
		Sent: int(sent.Load()), Dropped: int(dropped.Load()),
		OK: st.ok, Shed: st.shed, Errors: st.errs,
		SLO: c.SLO, MinRPS: c.MinRPS, SampleErrors: st.errSample,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		cr.RPS = float64(st.ok) / secs
	}
	cr.P50MS = stats.Percentile(st.latMS, 50)
	cr.P95MS = stats.Percentile(st.latMS, 95)
	cr.P99MS = stats.Percentile(st.latMS, 99)
	if len(st.latMS) > 0 {
		sum := 0.0
		for _, v := range st.latMS {
			sum += v
		}
		cr.MeanMS = sum / float64(len(st.latMS))
	}
	cr.Violations = judge(cr)
	return cr
}

// judge compares a class's measurements against its targets.
func judge(cr *ClassReport) []string {
	var out []string
	if cr.SLO != nil && cr.OK > 0 {
		for _, t := range []struct {
			target, got float64
			name        string
		}{
			{cr.SLO.P50MS, cr.P50MS, "p50"},
			{cr.SLO.P95MS, cr.P95MS, "p95"},
			{cr.SLO.P99MS, cr.P99MS, "p99"},
		} {
			if t.target > 0 && t.got > t.target {
				out = append(out, fmt.Sprintf("%s: %s %.2fms exceeds SLO %gms", cr.ID, t.name, t.got, t.target))
			}
		}
	}
	if cr.SLO != nil && cr.OK == 0 && cr.Sent > 0 {
		out = append(out, fmt.Sprintf("%s: no successful requests to judge against its SLO", cr.ID))
	}
	if cr.MinRPS > 0 && cr.RPS < cr.MinRPS {
		out = append(out, fmt.Sprintf("%s: achieved %.1f rps below floor %g", cr.ID, cr.RPS, cr.MinRPS))
	}
	return out
}

// issue sends one request for the class and returns its outcome.
func issue(ctx context.Context, api *apiclient.Client, c *Client) error {
	switch c.Op {
	case OpResults:
		path := "/v1/results"
		if len(c.Params) > 0 {
			q := url.Values{}
			for k, v := range c.Params {
				q.Set(k, v)
			}
			path += "?" + q.Encode()
		}
		return api.Do(ctx, "GET", path, nil, nil)
	case OpJobs:
		return api.Do(ctx, "GET", "/v1/jobs", nil, nil)
	case OpSweep:
		var out struct {
			ID string `json:"id"`
		}
		if err := api.PostJSON(ctx, "/v1/sweeps", c.Sweep, &out); err != nil {
			return err
		}
		if !c.Wait || out.ID == "" {
			return nil
		}
		// Poll to a terminal state: the latency then covers the whole
		// warm resubmit, store lookup included.
		for {
			var job struct {
				State string `json:"state"`
			}
			if err := api.GetJSON(ctx, "/v1/jobs/"+out.ID, &job); err != nil {
				return err
			}
			switch job.State {
			case "done":
				return nil
			case "failed", "canceled":
				return fmt.Errorf("traffic: sweep job %s finished %s", out.ID, job.State)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	return fmt.Errorf("traffic: unknown op %q", c.Op)
}
