// Package traffic is whirlload's engine: declarative traffic specs
// that drive a whirld daemon with a reproducible open-loop workload and
// judge the observed latencies against per-class SLOs.
//
// A traffic spec is a JSON document (the shape mirrors the repo's
// workload-spec files: a named document with a list of named parts):
//
//	{
//	  "name": "warm-mixed",
//	  "duration_s": 10,
//	  "seed": 42,
//	  "clients": [
//	    {"id": "readers", "op": "results", "rate": 200, "concurrency": 4,
//	     "arrival": "poisson", "params": {"limit": "50"},
//	     "slo": {"p50_ms": 5, "p99_ms": 50}, "min_rps": 150},
//	    {"id": "resubmits", "op": "sweep", "rate": 2, "concurrency": 2,
//	     "arrival": "constant", "wait": true,
//	     "sweep": {"apps": ["mcf"], "schemes": ["whirlpool"]}}
//	  ]
//	}
//
// Each client class is an independent open-loop arrival process
// (constant, poisson, or bursty) generated from the spec's seed via the
// repo's deterministic PRNG — the same spec and seed produce the same
// request schedule, so a regression in a latency report is a server
// regression, not generator noise.
package traffic

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Op names the request a client class issues.
type Op string

const (
	// OpResults GETs /v1/results with the class's query params — the
	// warm row-serving path.
	OpResults Op = "results"
	// OpSweep POSTs the class's SweepRequest body to /v1/sweeps (a warm
	// resubmit when the store already holds the grid); with Wait set the
	// latency spans submit → job completion.
	OpSweep Op = "sweep"
	// OpJobs GETs /v1/jobs — the cheap poll every dashboard hammers.
	OpJobs Op = "jobs"
)

// Arrival names a client class's inter-arrival process.
type Arrival string

const (
	// ArrivalConstant spaces requests exactly 1/rate apart.
	ArrivalConstant Arrival = "constant"
	// ArrivalPoisson draws exponential inter-arrival gaps (mean 1/rate) —
	// memoryless open-loop load, the usual serving-benchmark default.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalBursty emits back-to-back groups of Burst.Size requests,
	// idling between groups so the long-run average still meets rate.
	ArrivalBursty Arrival = "bursty"
)

// SLO is a class's latency objective in milliseconds; zero fields are
// unchecked.
type SLO struct {
	P50MS float64 `json:"p50_ms,omitempty"`
	P95MS float64 `json:"p95_ms,omitempty"`
	P99MS float64 `json:"p99_ms,omitempty"`
}

// Burst parameterizes the bursty arrival process.
type Burst struct {
	// Size is the number of back-to-back requests per burst.
	Size int `json:"size"`
}

// Client is one request class: an arrival process, a request shape, and
// the objectives its latencies are judged against.
type Client struct {
	// ID names the class in reports and metrics; unique within a spec.
	ID string `json:"id"`
	// Op selects the request (results | sweep | jobs).
	Op Op `json:"op"`
	// Rate is the class's open-loop target in requests/second.
	Rate float64 `json:"rate"`
	// Concurrency is the number of in-flight requests the class may have
	// (its worker count); 0 means 1.
	Concurrency int `json:"concurrency,omitempty"`
	// Arrival selects the inter-arrival process; empty means constant.
	Arrival Arrival `json:"arrival,omitempty"`
	// Burst parameterizes the bursty process (required for it).
	Burst *Burst `json:"burst,omitempty"`
	// Params are extra query parameters for OpResults (app, scheme, key,
	// limit).
	Params map[string]string `json:"params,omitempty"`
	// Sweep is the verbatim POST /v1/sweeps body for OpSweep.
	Sweep json.RawMessage `json:"sweep,omitempty"`
	// Wait (OpSweep only) extends the measured latency until the
	// submitted job reaches a terminal state — "a warm resubmit is
	// answered from the store within the SLO" becomes checkable.
	Wait bool `json:"wait,omitempty"`
	// SLO are the class's latency targets; nil means unchecked.
	SLO *SLO `json:"slo,omitempty"`
	// MinRPS fails the run when the achieved completion rate (excluding
	// shed and errored requests) lands below it; 0 means unchecked.
	MinRPS float64 `json:"min_rps,omitempty"`
}

// Spec is a whole traffic document.
type Spec struct {
	// Name labels the run in reports.
	Name string `json:"name,omitempty"`
	// DurationS is the run length in seconds (the -duration flag
	// overrides it).
	DurationS float64 `json:"duration_s,omitempty"`
	// Seed drives every arrival process; runs with equal specs and seeds
	// issue identical request schedules.
	Seed uint64 `json:"seed,omitempty"`
	// Clients are the request classes, all driven concurrently.
	Clients []Client `json:"clients"`
}

// Load reads and validates a traffic spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: %v", err)
	}
	return Parse(data)
}

// Parse decodes and validates a traffic spec. Unknown fields are
// rejected: a typoed "arival" must fail loudly, not silently default.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("traffic: parsing spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's internal consistency.
func (s *Spec) Validate() error {
	if len(s.Clients) == 0 {
		return fmt.Errorf("traffic: spec has no clients")
	}
	if s.DurationS < 0 {
		return fmt.Errorf("traffic: duration_s %g is negative", s.DurationS)
	}
	seen := map[string]bool{}
	for i := range s.Clients {
		c := &s.Clients[i]
		at := fmt.Sprintf("client %d (%q)", i, c.ID)
		if c.ID == "" {
			return fmt.Errorf("traffic: client %d has no id", i)
		}
		if seen[c.ID] {
			return fmt.Errorf("traffic: duplicate client id %q", c.ID)
		}
		seen[c.ID] = true
		switch c.Op {
		case OpResults, OpJobs:
			if len(c.Sweep) > 0 {
				return fmt.Errorf("traffic: %s: op %q does not take a sweep body", at, c.Op)
			}
			if c.Wait {
				return fmt.Errorf("traffic: %s: wait only applies to op %q", at, OpSweep)
			}
		case OpSweep:
			if len(c.Sweep) == 0 {
				return fmt.Errorf("traffic: %s: op %q needs a sweep body", at, c.Op)
			}
			if !json.Valid(c.Sweep) {
				return fmt.Errorf("traffic: %s: sweep body is not valid JSON", at)
			}
		case "":
			return fmt.Errorf("traffic: %s: missing op (valid: results, sweep, jobs)", at)
		default:
			return fmt.Errorf("traffic: %s: unknown op %q (valid: results, sweep, jobs)", at, c.Op)
		}
		if c.Op != OpResults && len(c.Params) > 0 {
			return fmt.Errorf("traffic: %s: params only apply to op %q", at, OpResults)
		}
		if c.Rate <= 0 {
			return fmt.Errorf("traffic: %s: rate must be positive (got %g)", at, c.Rate)
		}
		if c.Concurrency < 0 {
			return fmt.Errorf("traffic: %s: concurrency %d is negative", at, c.Concurrency)
		}
		switch c.Arrival {
		case "", ArrivalConstant, ArrivalPoisson:
			if c.Burst != nil {
				return fmt.Errorf("traffic: %s: burst only applies to arrival %q", at, ArrivalBursty)
			}
		case ArrivalBursty:
			if c.Burst == nil || c.Burst.Size <= 0 {
				return fmt.Errorf("traffic: %s: arrival %q needs burst.size > 0", at, ArrivalBursty)
			}
		default:
			return fmt.Errorf("traffic: %s: unknown arrival %q (valid: constant, poisson, bursty)", at, c.Arrival)
		}
		if c.SLO != nil {
			if c.SLO.P50MS < 0 || c.SLO.P95MS < 0 || c.SLO.P99MS < 0 {
				return fmt.Errorf("traffic: %s: slo targets must be non-negative", at)
			}
			// Where multiple targets are set they must be achievable
			// together: quantiles are monotone in q.
			prev, prevName := 0.0, ""
			for _, t := range []struct {
				v    float64
				name string
			}{{c.SLO.P50MS, "p50_ms"}, {c.SLO.P95MS, "p95_ms"}, {c.SLO.P99MS, "p99_ms"}} {
				if t.v == 0 {
					continue
				}
				if prev > t.v {
					return fmt.Errorf("traffic: %s: slo %s (%g) below %s (%g) — quantiles are monotone", at, t.name, t.v, prevName, prev)
				}
				prev, prevName = t.v, t.name
			}
		}
		if c.MinRPS < 0 {
			return fmt.Errorf("traffic: %s: min_rps %g is negative", at, c.MinRPS)
		}
	}
	return nil
}

// Duration resolves the run length: the override when positive, else
// the spec's duration_s, else a 10s default.
func (s *Spec) Duration(override time.Duration) time.Duration {
	if override > 0 {
		return override
	}
	if s.DurationS > 0 {
		return time.Duration(s.DurationS * float64(time.Second))
	}
	return 10 * time.Second
}

// SortedClientIDs returns the spec's class ids in report order.
func (s *Spec) SortedClientIDs() []string {
	ids := make([]string, 0, len(s.Clients))
	for i := range s.Clients {
		ids = append(ids, s.Clients[i].ID)
	}
	sort.Strings(ids)
	return ids
}
