package traffic

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whirlpool/internal/apiclient"
)

// fakeDaemon implements just enough of whirld's v1 surface for the
// runner: results/jobs GETs, a sweep submit whose job finishes after
// one poll, and a per-endpoint shed switch.
type fakeDaemon struct {
	results atomic.Int64
	jobs    atomic.Int64
	sweeps  atomic.Int64
	// shedResults, when set, answers /v1/results with 429 + Retry-After.
	shedResults atomic.Bool
}

func (f *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/results", func(w http.ResponseWriter, r *http.Request) {
		if f.shedResults.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{
				"error": map[string]string{"code": "overloaded", "message": "results concurrency limit reached"},
			})
			return
		}
		f.results.Add(1)
		w.Write([]byte("[]"))
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.jobs.Add(1)
		w.Write([]byte("[]"))
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		f.sweeps.Add(1)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "j1"})
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"id": "j1", "state": "done"})
	})
	return mux
}

func testClient(t *testing.T, h http.Handler) (*apiclient.Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	api, err := apiclient.New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return api, ts
}

// TestRunMixedClasses: a three-class spec drives all three ops, meets
// its floors, and reports quantiles per class.
func TestRunMixedClasses(t *testing.T) {
	f := &fakeDaemon{}
	api, _ := testClient(t, f.handler())
	spec, err := Parse([]byte(`{
	  "seed": 11,
	  "clients": [
	    {"id": "readers", "op": "results", "rate": 150, "concurrency": 4,
	     "arrival": "poisson", "slo": {"p99_ms": 1000}, "min_rps": 40},
	    {"id": "pollers", "op": "jobs", "rate": 60, "arrival": "bursty",
	     "burst": {"size": 6}},
	    {"id": "resubmits", "op": "sweep", "rate": 10, "concurrency": 2,
	     "wait": true, "sweep": {"apps": ["mcf"]}}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), api, spec, Options{Duration: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("classes = %d", len(rep.Classes))
	}
	byID := map[string]*ClassReport{}
	for i := range rep.Classes {
		byID[rep.Classes[i].ID] = &rep.Classes[i]
	}
	if byID["readers"].OK == 0 || byID["pollers"].OK == 0 || byID["resubmits"].OK == 0 {
		t.Fatalf("some class issued nothing: %+v", rep.Classes)
	}
	if f.results.Load() == 0 || f.jobs.Load() == 0 || f.sweeps.Load() == 0 {
		t.Fatalf("daemon counters: results=%d jobs=%d sweeps=%d",
			f.results.Load(), f.jobs.Load(), f.sweeps.Load())
	}
	r := byID["readers"]
	if r.P99MS < r.P50MS {
		t.Fatalf("p99 %.3f < p50 %.3f", r.P99MS, r.P50MS)
	}
	if r.Errors != 0 {
		t.Fatalf("reader errors: %v", r.SampleErrors)
	}
}

// TestRunCountsShedSeparately: back-pressure (429 with the envelope) is
// its own column — not a success, not an error.
func TestRunCountsShedSeparately(t *testing.T) {
	f := &fakeDaemon{}
	f.shedResults.Store(true)
	api, _ := testClient(t, f.handler())
	spec, err := Parse([]byte(`{
	  "seed": 3,
	  "clients": [{"id": "readers", "op": "results", "rate": 100}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), api, spec, Options{Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Classes[0]
	if c.Shed == 0 || c.OK != 0 || c.Errors != 0 {
		t.Fatalf("class = %+v, want all requests shed", c)
	}
}

// TestRunSLOBreachFailsCheck: an impossible SLO makes Check return a
// descriptive error.
func TestRunSLOBreachFailsCheck(t *testing.T) {
	f := &fakeDaemon{}
	api, _ := testClient(t, f.handler())
	spec, err := Parse([]byte(`{
	  "clients": [{"id": "readers", "op": "results", "rate": 200,
	    "min_rps": 1000000}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), api, spec, Options{Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cerr := rep.Check()
	if cerr == nil || !strings.Contains(cerr.Error(), "below floor") {
		t.Fatalf("Check = %v, want floor violation", cerr)
	}
}

// TestRunDeterministicSchedule: two runs of one spec issue the same
// number of requests per class (the schedule, not the latencies, is
// the deterministic part).
func TestRunDeterministicSchedule(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "seed": 9,
	  "clients": [{"id": "readers", "op": "results", "rate": 150,
	    "arrival": "poisson", "concurrency": 8}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for i := range counts {
		f := &fakeDaemon{}
		api, _ := testClient(t, f.handler())
		rep, err := Run(context.Background(), api, spec, Options{Duration: 300 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = rep.Classes[0].Sent
	}
	// The generator is deterministic; the only slack is requests in
	// flight at the deadline.
	diff := counts[0] - counts[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 3 {
		t.Fatalf("runs issued %d vs %d requests; schedule should be deterministic", counts[0], counts[1])
	}
}

// TestReportTable: the table renderer includes every class and flags
// failures.
func TestReportTable(t *testing.T) {
	rep := &Report{
		Base: "http://x", DurationS: 1, Seed: 1,
		Classes: []ClassReport{
			{ID: "good", Op: "results", Sent: 10, OK: 10, RPS: 10, SLO: &SLO{P99MS: 100}, P99MS: 1},
			{ID: "bad", Op: "jobs", Sent: 10, OK: 10, RPS: 10, MinRPS: 50,
				Violations: []string{"bad: achieved 10.0 rps below floor 50"}},
		},
	}
	var b strings.Builder
	rep.WriteTable(&b)
	out := b.String()
	for _, want := range []string{"good", "bad", "pass", "FAIL", "below floor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
