package traffic

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func validSpec() string {
	return `{
	  "name": "t", "duration_s": 1, "seed": 7,
	  "clients": [
	    {"id": "readers", "op": "results", "rate": 50, "concurrency": 2,
	     "arrival": "poisson", "params": {"limit": "10"},
	     "slo": {"p50_ms": 5, "p99_ms": 50}, "min_rps": 10},
	    {"id": "resubmits", "op": "sweep", "rate": 2, "wait": true,
	     "sweep": {"apps": ["mcf"], "schemes": ["whirlpool"]}},
	    {"id": "pollers", "op": "jobs", "rate": 20, "arrival": "bursty",
	     "burst": {"size": 5}}
	  ]
	}`
}

func TestParseValidSpec(t *testing.T) {
	s, err := Parse([]byte(validSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clients) != 3 || s.Seed != 7 || s.Name != "t" {
		t.Fatalf("spec = %+v", s)
	}
	if s.Duration(0) != time.Second {
		t.Fatalf("Duration = %v, want 1s", s.Duration(0))
	}
	if s.Duration(3*time.Second) != 3*time.Second {
		t.Fatal("override ignored")
	}
}

// TestSpecValidationErrors: every malformed spec fails with a message
// naming the offending client and field.
func TestSpecValidationErrors(t *testing.T) {
	mutate := func(f func(*Spec)) *Spec {
		var s Spec
		if err := json.Unmarshal([]byte(validSpec()), &s); err != nil {
			t.Fatal(err)
		}
		f(&s)
		return &s
	}
	cases := []struct {
		name string
		s    *Spec
		want string
	}{
		{"no clients", mutate(func(s *Spec) { s.Clients = nil }), "no clients"},
		{"negative duration", mutate(func(s *Spec) { s.DurationS = -1 }), "negative"},
		{"empty id", mutate(func(s *Spec) { s.Clients[0].ID = "" }), "has no id"},
		{"duplicate id", mutate(func(s *Spec) { s.Clients[1].ID = "readers" }), "duplicate client id"},
		{"missing op", mutate(func(s *Spec) { s.Clients[0].Op = "" }), "missing op"},
		{"unknown op", mutate(func(s *Spec) { s.Clients[0].Op = "delete-everything" }), "unknown op"},
		{"zero rate", mutate(func(s *Spec) { s.Clients[0].Rate = 0 }), "rate must be positive"},
		{"negative rate", mutate(func(s *Spec) { s.Clients[0].Rate = -3 }), "rate must be positive"},
		{"negative concurrency", mutate(func(s *Spec) { s.Clients[0].Concurrency = -1 }), "concurrency"},
		{"unknown arrival", mutate(func(s *Spec) { s.Clients[0].Arrival = "fractal" }), "unknown arrival"},
		{"bursty without burst", mutate(func(s *Spec) {
			s.Clients[2].Burst = nil
		}), "needs burst.size"},
		{"burst size zero", mutate(func(s *Spec) {
			s.Clients[2].Burst.Size = 0
		}), "needs burst.size"},
		{"burst on constant", mutate(func(s *Spec) {
			s.Clients[0].Arrival = ArrivalConstant
			s.Clients[0].Burst = &Burst{Size: 4}
		}), "burst only applies"},
		{"sweep without body", mutate(func(s *Spec) { s.Clients[1].Sweep = nil }), "needs a sweep body"},
		{"sweep body invalid", mutate(func(s *Spec) { s.Clients[1].Sweep = json.RawMessage("{nope") }), "not valid JSON"},
		{"sweep body on results", mutate(func(s *Spec) {
			s.Clients[0].Sweep = json.RawMessage("{}")
		}), "does not take a sweep body"},
		{"wait on jobs", mutate(func(s *Spec) { s.Clients[2].Wait = true }), "wait only applies"},
		{"params on jobs", mutate(func(s *Spec) {
			s.Clients[2].Params = map[string]string{"limit": "1"}
		}), "params only apply"},
		{"negative slo", mutate(func(s *Spec) { s.Clients[0].SLO.P50MS = -1 }), "non-negative"},
		{"non-monotone slo", mutate(func(s *Spec) {
			s.Clients[0].SLO = &SLO{P50MS: 50, P99MS: 5}
		}), "monotone"},
		{"negative min_rps", mutate(func(s *Spec) { s.Clients[0].MinRPS = -1 }), "min_rps"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestParseRejectsUnknownFields: a typoed field is an error, not a
// silently ignored default.
func TestParseRejectsUnknownFields(t *testing.T) {
	bad := `{"clients": [{"id": "a", "op": "jobs", "rate": 1, "arival": "poisson"}]}`
	if _, err := Parse([]byte(bad)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestArrivalsDeterministic: equal (seed, class) produce the identical
// schedule; different class ids diverge.
func TestArrivalsDeterministic(t *testing.T) {
	c := &Client{ID: "readers", Op: OpResults, Rate: 100, Arrival: ArrivalPoisson}
	a1, a2 := newArrivals(7, c), newArrivals(7, c)
	for i := 0; i < 100; i++ {
		if x, y := a1.next(), a2.next(); x != y {
			t.Fatalf("arrival %d: %v != %v", i, x, y)
		}
	}
	other := &Client{ID: "pollers", Op: OpJobs, Rate: 100, Arrival: ArrivalPoisson}
	b := newArrivals(7, other)
	same := 0
	a3 := newArrivals(7, c)
	for i := 0; i < 100; i++ {
		if a3.next() == b.next() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("distinct classes shared %d/100 arrival offsets", same)
	}
}

// TestArrivalRates: over many arrivals every process realizes its
// configured average rate.
func TestArrivalRates(t *testing.T) {
	cases := []Client{
		{ID: "c", Rate: 200, Arrival: ArrivalConstant},
		{ID: "p", Rate: 200, Arrival: ArrivalPoisson},
		{ID: "b", Rate: 200, Arrival: ArrivalBursty, Burst: &Burst{Size: 10}},
	}
	for _, c := range cases {
		ar := newArrivals(42, &c)
		const n = 4000
		var last time.Duration
		for i := 0; i < n; i++ {
			last = ar.next()
		}
		got := float64(n) / last.Seconds()
		if got < c.Rate*0.9 || got > c.Rate*1.1 {
			t.Errorf("%s: realized %.1f req/s, want ~%g", c.Arrival, got, c.Rate)
		}
	}
}

// TestBurstyShape: bursty arrivals come in back-to-back groups of
// exactly Burst.Size sharing one offset.
func TestBurstyShape(t *testing.T) {
	c := &Client{ID: "b", Rate: 100, Arrival: ArrivalBursty, Burst: &Burst{Size: 4}}
	ar := newArrivals(1, c)
	offsets := make([]time.Duration, 12)
	for i := range offsets {
		offsets[i] = ar.next()
	}
	for g := 0; g < 3; g++ {
		base := offsets[g*4]
		for i := 1; i < 4; i++ {
			if offsets[g*4+i] != base {
				t.Fatalf("burst %d arrival %d at %v, want %v", g, i, offsets[g*4+i], base)
			}
		}
		if g > 0 && base <= offsets[g*4-1] {
			t.Fatalf("burst %d does not advance past previous burst", g)
		}
	}
}

// TestJudge: SLO and floor comparisons produce one violation line per
// breached target, and pass when met.
func TestJudge(t *testing.T) {
	cr := &ClassReport{
		ID: "r", OK: 100, Sent: 100, RPS: 50,
		P50MS: 10, P95MS: 40, P99MS: 90,
		SLO: &SLO{P50MS: 5, P95MS: 50, P99MS: 80}, MinRPS: 60,
	}
	v := judge(cr)
	if len(v) != 3 {
		t.Fatalf("violations = %v, want p50 + p99 + floor", v)
	}
	for _, want := range []string{"p50", "p99", "below floor"} {
		found := false
		for _, line := range v {
			if strings.Contains(line, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation mentions %q: %v", want, v)
		}
	}

	pass := &ClassReport{ID: "r", OK: 10, Sent: 10, RPS: 100, P50MS: 1, P99MS: 2,
		SLO: &SLO{P50MS: 5, P99MS: 80}, MinRPS: 60}
	if v := judge(pass); len(v) != 0 {
		t.Fatalf("passing class judged %v", v)
	}

	// A class whose every request failed cannot silently "pass" its SLO.
	dead := &ClassReport{ID: "r", OK: 0, Sent: 10, SLO: &SLO{P99MS: 80}}
	if v := judge(dead); len(v) != 1 || !strings.Contains(v[0], "no successful requests") {
		t.Fatalf("dead class judged %v", v)
	}
}
