package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func rec(key, app, scheme string, v int) Record {
	return Record{
		Key: key, App: app, Scheme: scheme,
		Row: json.RawMessage(fmt.Sprintf(`{"app":%q,"scheme":%q,"mpki":%d}`, app, scheme, v)),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := rec("k1", "delaunay", "whirlpool", 7)
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok || got.App != "delaunay" || string(got.Row) != string(want.Row) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get of a missing key succeeded")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReopenLoadsRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// More than snapshotEvery records so the index snapshot path runs,
	// plus a few appended after the last snapshot (tail-scan path).
	n := snapshotEvery + 5
	for i := 0; i < n; i++ {
		if err := s.Put(rec(fmt.Sprintf("k%03d", i), "app", "s", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reopened store has %d records, want %d", s2.Len(), n)
	}
	if st := s2.Stats(); st.IndexRebuilds != 0 || st.CorruptRows != 0 {
		t.Fatalf("clean reopen rebuilt or skipped rows: %+v", st)
	}
	for i := 0; i < n; i++ {
		if _, ok := s2.Get(fmt.Sprintf("k%03d", i)); !ok {
			t.Fatalf("record k%03d lost across reopen", i)
		}
	}
}

func TestLastWriterWins(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put(rec("k", "a", "s", 1))
	s.Put(rec("k", "a", "s", 2))
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (same key)", s.Len())
	}
	got, _ := s.Get("k")
	if string(got.Row) != `{"app":"a","scheme":"s","mpki":2}` {
		t.Fatalf("Get after overwrite = %s", got.Row)
	}
	s.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	if got, _ := s2.Get("k"); string(got.Row) != `{"app":"a","scheme":"s","mpki":2}` {
		t.Fatalf("reopened Get after overwrite = %s", got.Row)
	}
}

// TestConcurrentWriters hammers one handle from many goroutines and a
// second same-directory handle from another process's point of view,
// then verifies every record survived intact.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir) // a second handle, as another process would hold
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s1
			if w%2 == 1 {
				h = s2
			}
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-i%d", w, i)
				if err := h.Put(rec(key, fmt.Sprintf("app%d", w), "scheme", i)); err != nil {
					t.Errorf("Put(%s): %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	s1.Close()
	s2.Close()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.CorruptRows != 0 {
		t.Fatalf("concurrent appends corrupted %d rows", st.CorruptRows)
	}
	if s.Len() != writers*perWriter {
		t.Fatalf("store has %d records, want %d", s.Len(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			r, ok := s.Get(fmt.Sprintf("w%d-i%d", w, i))
			if !ok {
				t.Fatalf("record w%d-i%d lost", w, i)
			}
			var row struct {
				MPKI int `json:"mpki"`
			}
			if err := json.Unmarshal(r.Row, &row); err != nil || row.MPKI != i {
				t.Fatalf("record w%d-i%d payload mangled: %s", w, i, r.Row)
			}
		}
	}
}

// TestCrossHandleVisibility: records appended through one handle are
// served by an already-open second handle (Get refreshes on miss).
func TestCrossHandleVisibility(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir)
	defer s1.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	if err := s1.Put(rec("shared", "a", "s", 3)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("shared"); !ok || got.App != "a" {
		t.Fatalf("second handle missed a record the first appended: %+v, %v", got, ok)
	}
}

// TestCorruptIndexSelfHeals: a mangled index.json must not lose data or
// fail Open — the store rebuilds from rows.jsonl and counts the rebuild.
func TestCorruptIndexSelfHeals(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 5; i++ {
		s.Put(rec(fmt.Sprintf("k%d", i), "app", "s", i))
	}
	s.Close() // writes a valid index.json

	for _, garbage := range []string{"{not json", `{"version":99,"offset":0}`, ""} {
		if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(garbage), 0o666); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("Open with corrupt index %q: %v", garbage, err)
		}
		if s2.Len() != 5 {
			t.Fatalf("corrupt index %q: %d records, want 5", garbage, s2.Len())
		}
		if st := s2.Stats(); st.IndexRebuilds == 0 {
			t.Fatalf("corrupt index %q: rebuild not counted: %+v", garbage, st)
		}
		s2.Close() // heals: writes a fresh valid snapshot
	}
	s3, _ := Open(dir)
	defer s3.Close()
	if st := s3.Stats(); st.IndexRebuilds != 0 || s3.Len() != 5 {
		t.Fatalf("index not healed after rewrite: %+v len=%d", st, s3.Len())
	}
}

// TestStaleIndexAfterTruncation: an index claiming more bytes than
// rows.jsonl holds (file replaced/truncated) is distrusted wholesale.
func TestStaleIndexAfterTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 3; i++ {
		s.Put(rec(fmt.Sprintf("k%d", i), "app", "s", i))
	}
	s.Sync()
	one, _ := json.Marshal(rec("only", "app", "s", 9))
	if err := os.WriteFile(filepath.Join(dir, "rows.jsonl"), append(one, '\n'), 0o666); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("store served %d records from a stale index, want 1", s2.Len())
	}
	if _, ok := s2.Get("only"); !ok {
		t.Fatal("surviving record lost")
	}
}

// TestCorruptRowsSkipped: torn/garbage JSONL lines are skipped and
// counted; the records around them still load, and a torn final line
// is healed so the next append stays line-aligned.
func TestCorruptRowsSkipped(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put(rec("good1", "a", "s", 1))
	s.Close()
	os.Remove(filepath.Join(dir, "index.json")) // force a full rescan

	f, err := os.OpenFile(filepath.Join(dir, "rows.jsonl"), os.O_APPEND|os.O_WRONLY, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{torn garbage\n")
	good2, _ := json.Marshal(rec("good2", "a", "s", 2))
	f.Write(append(good2, '\n'))
	f.WriteString(`{"key":"torn-tail","app":"a`) // killed mid-append, no '\n'
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("good1"); !ok {
		t.Fatal("good1 lost to a neighboring corrupt line")
	}
	if _, ok := s2.Get("good2"); !ok {
		t.Fatal("good2 lost to a neighboring corrupt line")
	}
	if st := s2.Stats(); st.CorruptRows < 2 {
		t.Fatalf("corrupt lines not counted: %+v", st)
	}
	// The healed tail must keep post-corruption appends readable.
	if err := s2.Put(rec("good3", "a", "s", 3)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, _ := Open(dir)
	defer s3.Close()
	if _, ok := s3.Get("good3"); !ok {
		t.Fatal("append after healed tail lost")
	}
}

func TestQueryFilters(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	s.Put(rec("k1", "delaunay", "whirlpool", 1))
	s.Put(rec("k2", "delaunay", "jigsaw", 2))
	s.Put(rec("k3", "mcf", "whirlpool", 3))
	cases := []struct {
		q    Query
		want []string
	}{
		{Query{}, []string{"k1", "k2", "k3"}},
		{Query{App: "delaunay"}, []string{"k1", "k2"}},
		{Query{Scheme: "whirlpool"}, []string{"k1", "k3"}},
		{Query{App: "delaunay", Scheme: "jigsaw"}, []string{"k2"}},
		{Query{Key: "k3"}, []string{"k3"}},
		{Query{App: "nosuch"}, nil},
		{Query{Limit: 2}, []string{"k1", "k2"}},
	}
	for _, c := range cases {
		got := s.Query(c.q)
		var keys []string
		for _, r := range got {
			keys = append(keys, r.Key)
		}
		if fmt.Sprint(keys) != fmt.Sprint(c.want) {
			t.Errorf("Query(%+v) = %v, want %v", c.q, keys, c.want)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

// TestAppendRawMatchesQuery: the raw serving path answers exactly what
// Query answers — same records, same order, same filters — across the
// three ways a record can enter memory (Put, JSONL tail scan, index
// snapshot).
func TestAppendRawMatchesQuery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put(rec("k1", "delaunay", "whirlpool", 1))
	s.Put(rec("k2", "delaunay", "jigsaw", 2))
	s.Put(rec("k3", "mcf", "whirlpool", 3))
	s.Sync() // snapshot so the reopen below loads via index.json
	s.Close()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(rec("k4", "mcf", "jigsaw", 4)) // post-reopen Put path

	for _, q := range []Query{
		{}, {App: "delaunay"}, {Scheme: "whirlpool"}, {Key: "k3"},
		{Limit: 2}, {App: "nosuch"},
	} {
		want := s.Query(q)
		raws := s.AppendRaw(q, nil)
		if len(raws) != len(want) {
			t.Fatalf("AppendRaw(%+v) = %d rows, Query = %d", q, len(raws), len(want))
		}
		for i, raw := range raws {
			var got Record
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatalf("raw row %d is not JSON: %v\n%s", i, err, raw)
			}
			if got.Key != want[i].Key || string(got.Row) != string(want[i].Row) {
				t.Fatalf("raw row %d = %+v, want %+v", i, got, want[i])
			}
		}
	}
}

// TestAppendRawZeroAllocPerRow: serving a warm query allocates a small
// constant (the file freshness stat), independent of row count — the
// rows themselves are retained bytes, never re-marshaled.
func TestAppendRawZeroAllocPerRow(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	const rows = 1000
	for i := 0; i < rows; i++ {
		s.Put(rec(fmt.Sprintf("k%04d", i), "delaunay", "whirlpool", i))
	}
	dst := make([][]byte, 0, rows)
	allocs := testing.AllocsPerRun(50, func() {
		dst = s.AppendRaw(Query{}, dst[:0])
		if len(dst) != rows {
			t.Fatalf("got %d rows, want %d", len(dst), rows)
		}
	})
	// The only allocations allowed are per-call constants (os.File.Stat
	// in the freshness check) — anything that scales with rows fails.
	if allocs > 4 {
		t.Fatalf("AppendRaw allocated %.1f times for %d rows; want a small per-call constant", allocs, rows)
	}
}

func BenchmarkAppendRawWarm(b *testing.B) {
	s, _ := Open(b.TempDir())
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Put(rec(fmt.Sprintf("k%04d", i), "delaunay", "whirlpool", i))
	}
	dst := make([][]byte, 0, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.AppendRaw(Query{}, dst[:0])
	}
}

func BenchmarkQueryWarm(b *testing.B) {
	s, _ := Open(b.TempDir())
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Put(rec(fmt.Sprintf("k%04d", i), "delaunay", "whirlpool", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Query(Query{})
	}
}
