// Package results is the persistent half of the experiment pipeline: a
// content-addressed, append-only store of finished sweep rows. Every
// input to a sweep cell is hashable (the workload spec JSON, the scheme
// id, scale, seed, reconfig period, chip topology, format version — see
// internal/experiments.CellKey), so a cell's result can be memoized
// under that digest and served forever after without re-simulation, by
// any process sharing the store directory.
//
// On disk a store is two files under one directory:
//
//	rows.jsonl  — one JSON record per line, append-only, the source of
//	              truth. Writers append whole lines with O_APPEND, so
//	              concurrent processes interleave records, never bytes.
//	index.json  — a snapshot of the decoded records plus the rows.jsonl
//	              byte offset it covers. Purely an open-time
//	              accelerator: a missing, corrupt, or stale index is
//	              rebuilt from rows.jsonl and never loses data.
//
// Torn writes (a process killed mid-append) surface as unparsable
// JSONL lines; they are skipped and counted, and the next Open heals
// the file tail so later appends stay line-aligned.
package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FormatVersion is the store's on-disk schema version; records and
// index snapshots from other versions are ignored (and rebuilt where
// possible) rather than misread.
const FormatVersion = 1

// snapshotEvery bounds index staleness: a snapshot is rewritten after
// this many appends (and on Close), so reopening a long-lived store
// replays at most this many JSONL lines.
const snapshotEvery = 64

// Record is one stored result row.
type Record struct {
	// Key is the content-address of the cell that produced the row
	// (experiments.CellKey): two records with equal keys describe the
	// same simulation and carry equal rows.
	Key string `json:"key"`
	// App and Scheme duplicate the row's identity columns so queries
	// can filter without decoding Row.
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	// Unix is the append time in seconds (informational only; it is not
	// part of the identity and never affects serving).
	Unix int64 `json:"unix,omitempty"`
	// Row is the full metric row as produced by the sweep engine
	// (experiments.SweepRow JSON: MPKI, cycles, NoC/energy breakdowns).
	Row json.RawMessage `json:"row"`
}

// Query filters Records; zero fields match everything.
type Query struct {
	App    string
	Scheme string
	Key    string
	// Limit caps the result count; 0 means unlimited.
	Limit int
}

// Stats are the store's observability counters. ServeHits/Misses prove
// memoization the same way harness CacheStats prove trace caching: a
// sweep resubmitted against a warm store shows Misses == 0.
type Stats struct {
	// Hits counts Get calls that found a record (rows served without
	// simulation when the caller is the sweep engine).
	Hits int64
	// Misses counts Get calls that found nothing (each one corresponds
	// to a freshly computed row on the sweep path).
	Misses int64
	// Puts counts records appended by this handle.
	Puts int64
	// CorruptRows counts unparsable JSONL lines skipped while loading
	// (torn writes from killed processes; the data before and after
	// them is unaffected).
	CorruptRows int64
	// IndexRebuilds counts opens that could not use index.json (missing,
	// corrupt, or stale) and rescanned rows.jsonl from the start.
	IndexRebuilds int64
	// Records is the number of distinct keys currently loaded.
	Records int
}

// Store is an open result store. It is safe for concurrent use by
// multiple goroutines, and the directory is safe to share between
// concurrent processes: appends are atomic whole lines, and readers
// pick up other writers' records on open and on demand via Refresh.
type Store struct {
	dir string

	mu    sync.Mutex
	f     *os.File // rows.jsonl, O_APPEND
	byKey map[string]int
	recs  []Record // insertion order; byKey points into it
	// raws[i] is recs[i]'s marshaled JSON line (no trailing newline),
	// retained so the serving path can stream rows without re-marshaling
	// or allocating per row. Each slice is immutable once stored — a
	// replacement (duplicate key) swaps in a fresh slice rather than
	// mutating the old one — so AppendRaw results stay valid after the
	// store lock is released.
	raws     [][]byte
	loaded   int64 // rows.jsonl bytes consumed into recs
	sinceSnp int   // appends since the last index snapshot
	closed   bool

	hits, misses, puts, corrupt, rebuilds int64
}

func (s *Store) rowsPath() string  { return filepath.Join(s.dir, "rows.jsonl") }
func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

// index is the snapshot schema.
type index struct {
	Version int      `json:"version"`
	Offset  int64    `json:"offset"` // rows.jsonl bytes the snapshot covers
	Records []Record `json:"records"`
}

// Open opens (creating if needed) the store rooted at dir, loading
// existing records via the index snapshot plus a tail scan of
// rows.jsonl — or a full scan when the snapshot is unusable.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: store directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("results: %v", err)
	}
	s := &Store{dir: dir, byKey: make(map[string]int)}
	f, err := os.OpenFile(s.rowsPath(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("results: %v", err)
	}
	s.f = f
	if err := s.healTail(); err != nil {
		f.Close()
		return nil, err
	}
	s.loadIndex()
	if _, err := s.scanTail(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// healTail line-aligns rows.jsonl: if the last append was torn (no
// trailing newline), a plain O_APPEND write would fuse with it and
// corrupt a *good* record, so terminate the partial line now. The
// partial line itself is skipped (and counted) by the scanner.
func (s *Store) healTail() error {
	st, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("results: %v", err)
	}
	if st.Size() == 0 {
		return nil
	}
	buf := make([]byte, 1)
	if _, err := s.f.ReadAt(buf, st.Size()-1); err != nil {
		return fmt.Errorf("results: %v", err)
	}
	if buf[0] != '\n' {
		if _, err := s.f.Write([]byte("\n")); err != nil {
			return fmt.Errorf("results: healing torn tail: %v", err)
		}
	}
	return nil
}

// loadIndex seeds the in-memory map from index.json when it is valid
// and consistent with rows.jsonl; otherwise it leaves the store empty
// (offset 0) so scanTail rebuilds everything. Never fails: the index
// is an accelerator, rows.jsonl is the truth.
func (s *Store) loadIndex() {
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		if !os.IsNotExist(err) {
			s.rebuilds++
		}
		return
	}
	var ix index
	if json.Unmarshal(data, &ix) != nil || ix.Version != FormatVersion || ix.Offset < 0 {
		s.rebuilds++
		return
	}
	st, err := s.f.Stat()
	if err != nil || ix.Offset > st.Size() {
		// The snapshot claims more bytes than rows.jsonl holds — the
		// JSONL was truncated or replaced. Distrust the whole snapshot.
		s.rebuilds++
		return
	}
	for _, r := range ix.Records {
		if r.Key == "" {
			s.rebuilds++
			s.byKey = make(map[string]int)
			s.recs = nil
			s.raws = nil
			return
		}
		s.insert(r, nil)
	}
	s.loaded = ix.Offset
}

// insert adds or replaces (last writer wins) one record in memory.
// raw is the record's marshaled JSON line without the trailing newline;
// nil means "marshal it now" (the index-snapshot load path, where the
// line bytes are not at hand).
func (s *Store) insert(r Record, raw []byte) {
	if raw == nil {
		raw, _ = json.Marshal(r)
	}
	if i, ok := s.byKey[r.Key]; ok {
		s.recs[i] = r
		s.raws[i] = raw
		return
	}
	s.byKey[r.Key] = len(s.recs)
	s.recs = append(s.recs, r)
	s.raws = append(s.raws, raw)
}

// scanTail decodes rows.jsonl from s.loaded to EOF, folding new records
// into memory and skipping (but counting) corrupt lines. Returns how
// many records it decoded.
func (s *Store) scanTail() (int, error) {
	st, err := s.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("results: %v", err)
	}
	if st.Size() < s.loaded {
		// Shrunk underneath us (someone replaced rows.jsonl): rebuild.
		s.byKey = make(map[string]int)
		s.recs = nil
		s.raws = nil
		s.loaded = 0
		s.rebuilds++
	}
	if st.Size() == s.loaded {
		return 0, nil
	}
	tail := make([]byte, st.Size()-s.loaded)
	if _, err := s.f.ReadAt(tail, s.loaded); err != nil && err != io.EOF {
		return 0, fmt.Errorf("results: scanning %s: %v", s.rowsPath(), err)
	}
	// Consume only complete lines: a trailing fragment without '\n'
	// (another process mid-append) is left for the next scan to reread
	// once it is whole.
	end := bytes.LastIndexByte(tail, '\n')
	if end < 0 {
		return 0, nil
	}
	n := 0
	for _, line := range bytes.Split(tail[:end], []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Key == "" {
			s.corrupt++
			continue
		}
		// Clone the line out of the scan buffer so retaining it does not
		// pin the whole tail read (and so a replaced record's raw bytes
		// stay immutable).
		s.insert(r, append([]byte(nil), line...))
		n++
	}
	s.loaded += int64(end) + 1
	return n, nil
}

// Get returns the record stored under key. A miss first refreshes from
// disk, so records appended by other processes since Open are served
// without reopening.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.byKey[key]
	if !ok {
		_, _ = s.scanTail()
		i, ok = s.byKey[key]
	}
	if !ok {
		s.misses++
		return Record{}, false
	}
	s.hits++
	return s.recs[i], true
}

// Put appends one record to the store and folds it into memory. The
// append is a single write of one complete line, so concurrent writers
// (goroutines or processes) never interleave bytes.
func (s *Store) Put(r Record) error {
	if r.Key == "" {
		return fmt.Errorf("results: record needs a key")
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("results: %v", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("results: store is closed")
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("results: %v", err)
	}
	// Our own append extends rows.jsonl past s.loaded; account for it
	// directly only when no other writer slipped in between (the common
	// case); otherwise the next scanTail picks both up.
	if st, err := s.f.Stat(); err == nil && st.Size() == s.loaded+int64(len(line)) {
		s.loaded = st.Size()
		s.insert(r, line[:len(line)-1])
	} else {
		_, _ = s.scanTail()
	}
	s.puts++
	s.sinceSnp++
	if s.sinceSnp >= snapshotEvery {
		s.snapshotLocked()
	}
	return nil
}

// Query returns the records matching q, in insertion order.
func (s *Store) Query(q Query) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.scanTail()
	var out []Record
	for _, r := range s.recs {
		if q.App != "" && r.App != q.App {
			continue
		}
		if q.Scheme != "" && r.Scheme != q.Scheme {
			continue
		}
		if q.Key != "" && r.Key != q.Key {
			continue
		}
		out = append(out, r)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// AppendRaw appends the marshaled JSON lines of the records matching q
// to dst (in insertion order) and returns the extended slice. This is
// the zero-allocation serving path: each element is the record's
// retained JSONL bytes — no per-row marshaling, no copies — so a warm
// query allocates nothing beyond dst growth when its capacity is
// exceeded. The returned slices are immutable; they remain valid after
// the call (a concurrent replacement of a key installs a fresh slice
// rather than mutating the old one).
//
//whirl:zeroalloc
func (s *Store) AppendRaw(q Query, dst [][]byte) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.scanTail()
	matched := 0
	for i := range s.recs {
		r := &s.recs[i]
		if q.App != "" && r.App != q.App {
			continue
		}
		if q.Scheme != "" && r.Scheme != q.Scheme {
			continue
		}
		if q.Key != "" && r.Key != q.Key {
			continue
		}
		dst = append(dst, s.raws[i])
		matched++
		if q.Limit > 0 && matched >= q.Limit {
			break
		}
	}
	return dst
}

// Len returns the number of distinct keys currently loaded.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Refresh folds records appended by other processes into memory and
// reports how many arrived.
func (s *Store) Refresh() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scanTail()
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		CorruptRows: s.corrupt, IndexRebuilds: s.rebuilds,
		Records: len(s.recs),
	}
}

// snapshotLocked atomically rewrites index.json to cover everything
// loaded so far. Failures are ignored: the snapshot is an accelerator,
// and a stale one is detected and rebuilt on the next Open.
func (s *Store) snapshotLocked() {
	s.sinceSnp = 0
	ix := index{Version: FormatVersion, Offset: s.loaded, Records: s.recs}
	data, err := json.Marshal(&ix)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".index-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), s.indexPath()) != nil {
		os.Remove(tmp.Name())
	}
}

// Sync rewrites the index snapshot now (normally done every
// snapshotEvery appends and on Close).
func (s *Store) Sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotLocked()
}

// Close snapshots the index and releases the store's file handle. The
// directory remains valid for other handles and future Opens.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.snapshotLocked()
	return s.f.Close()
}
