package addr

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if 1<<LineShift != LineBytes {
		t.Fatal("LineShift inconsistent")
	}
	if 1<<PageShift != PageBytes {
		t.Fatal("PageShift inconsistent")
	}
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64", LinesPerPage)
	}
}

func TestConversions(t *testing.T) {
	a := Addr(0x12345)
	if LineOf(a) != Line(0x12345>>6) {
		t.Fatal("LineOf wrong")
	}
	if PageOf(a) != Page(0x12345>>12) {
		t.Fatal("PageOf wrong")
	}
	l := LineOf(a)
	if PageOfLine(l) != PageOf(a) {
		t.Fatal("PageOfLine inconsistent with PageOf")
	}
}

func TestFirstLineRoundTrip(t *testing.T) {
	p := Page(77)
	l := FirstLine(p)
	if PageOfLine(l) != p {
		t.Fatal("FirstLine not in page")
	}
	if uint64(LineAddr(l)) != uint64(Base(p)) {
		t.Fatal("LineAddr(FirstLine) != Base")
	}
}

func TestPagesFor(t *testing.T) {
	cases := []struct{ n, want uint64 }{
		{0, 0}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2},
	}
	for _, c := range cases {
		if got := PagesFor(c.n); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLinesFor(t *testing.T) {
	cases := []struct{ n, want uint64 }{
		{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2},
	}
	for _, c := range cases {
		if got := LinesFor(c.n); got != c.want {
			t.Errorf("LinesFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestQuickLinePageConsistency(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		return PageOfLine(LineOf(a)) == PageOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLineAddrInverse(t *testing.T) {
	f := func(raw uint64) bool {
		l := Line(raw >> LineShift)
		return LineOf(LineAddr(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
