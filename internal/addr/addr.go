// Package addr defines the geometry of the simulated physical address
// space: 64-byte cache lines and 4KB pages, with helpers to convert between
// byte addresses, line addresses, and page numbers.
//
// The simulator works on *line addresses* (byte address >> 6) everywhere
// past the allocator, so hot paths never re-shift.
package addr

const (
	// LineBytes is the cache line size used throughout (Table 3: 64B lines).
	LineBytes = 64
	// LineShift is log2(LineBytes).
	LineShift = 6
	// PageBytes is the virtual memory page size (4KB).
	PageBytes = 4096
	// PageShift is log2(PageBytes).
	PageShift = 12
	// LinesPerPage is the number of cache lines in one page.
	LinesPerPage = PageBytes / LineBytes
)

// Addr is a simulated 64-bit virtual byte address.
type Addr uint64

// Line is a cache-line address (byte address >> LineShift).
type Line uint64

// Page is a virtual page number (byte address >> PageShift).
type Page uint64

// LineOf returns the line containing byte address a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// PageOf returns the page containing byte address a.
func PageOf(a Addr) Page { return Page(a >> PageShift) }

// PageOfLine returns the page containing line l.
func PageOfLine(l Line) Page { return Page(l >> (PageShift - LineShift)) }

// FirstLine returns the first line of page p.
func FirstLine(p Page) Line { return Line(p << (PageShift - LineShift)) }

// Base returns the first byte address of page p.
func Base(p Page) Addr { return Addr(p << PageShift) }

// LineAddr returns the first byte address of line l.
func LineAddr(l Line) Addr { return Addr(l << LineShift) }

// PagesFor returns how many pages are needed to hold n bytes.
func PagesFor(n uint64) uint64 {
	return (n + PageBytes - 1) / PageBytes
}

// LinesFor returns how many lines are needed to hold n bytes.
func LinesFor(n uint64) uint64 {
	return (n + LineBytes - 1) / LineBytes
}

const (
	// KB is two to the tenth bytes.
	KB = 1024
	// MB is two to the twentieth bytes.
	MB = 1024 * 1024
)
