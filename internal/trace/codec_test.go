package trace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/trace"
	"whirlpool/internal/workloads"
)

// roundTrip encodes tr and decodes it back, failing the test on error.
func roundTrip(t *testing.T, tr *trace.LLCTrace) *trace.LLCTrace {
	t.Helper()
	var buf bytes.Buffer
	wn, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if wn != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", wn, buf.Len())
	}
	got := &trace.LLCTrace{}
	rn, err := got.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if rn != wn {
		t.Fatalf("ReadFrom consumed %d bytes, want %d", rn, wn)
	}
	return got
}

// sameTrace compares two traces access-by-access and stat-by-stat.
func sameTrace(t *testing.T, name string, a, b trace.Reader) {
	t.Helper()
	if a.Stats() != b.Stats() {
		t.Fatalf("%s: stats %+v != %+v", name, a.Stats(), b.Stats())
	}
	if a.NumAccesses() != b.NumAccesses() {
		t.Fatalf("%s: %d accesses != %d", name, a.NumAccesses(), b.NumAccesses())
	}
	ca, cb := a.NewCursor(), b.NewCursor()
	for i := 0; ; i++ {
		x, okx := ca.Next()
		y, oky := cb.Next()
		if okx != oky {
			t.Fatalf("%s: streams end at different lengths near %d", name, i)
		}
		if !okx {
			return
		}
		if x != y {
			t.Fatalf("%s: access %d: %+v != %+v", name, i, x, y)
		}
	}
}

// TestCodecRoundTripBuiltins encodes and decodes every built-in app's
// filtered trace at small scale and requires the decoded stream to be
// identical to the generator's.
func TestCodecRoundTripBuiltins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite round trip is not short")
	}
	for _, spec := range workloads.Specs() {
		w := workloads.Build(spec, 0.002)
		tr := trace.FilterPrivate(w.Stream(1))
		got := roundTrip(t, tr)
		sameTrace(t, spec.Name, tr, got)
	}
}

func TestCodecRoundTripEmpty(t *testing.T) {
	tr := &trace.LLCTrace{}
	got := roundTrip(t, tr)
	sameTrace(t, "empty", tr, got)
}

// encodeOne builds a small deterministic trace for robustness tests.
func encodeOne(t *testing.T) []byte {
	t.Helper()
	tr := &trace.LLCTrace{}
	for i := 0; i < 1000; i++ {
		tr.Append(trace.LLCAccess{Line: addr.Line(i * 17), Gap: uint32(i % 100), Write: i%3 == 0})
		if i%7 == 0 {
			tr.Append(trace.LLCAccess{Line: addr.Line(i), Writeback: true})
		}
	}
	tr.Instrs = 50000
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCodecTruncated cuts the encoding at every length bucket: each
// prefix must produce an error, never a panic or a silent success.
func TestCodecTruncated(t *testing.T) {
	data := encodeOne(t)
	cuts := []int{0, 1, 3, 4, 7, 8, 20, len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 1}
	for _, cut := range cuts {
		got := &trace.LLCTrace{}
		if _, err := got.ReadFrom(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded without error", cut, len(data))
		}
	}
}

// TestCodecCorrupt flips single bytes across the file: every flip must
// surface as an error (header sanity, CRC, or varint validation).
func TestCodecCorrupt(t *testing.T) {
	data := encodeOne(t)
	for _, pos := range []int{8, 16, 40, 80, len(data) / 2, len(data) - 2} {
		bad := bytes.Clone(data)
		bad[pos] ^= 0x5a
		got := &trace.LLCTrace{}
		if _, err := got.ReadFrom(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupt byte at %d decoded without error", pos)
		}
	}
}

func TestCodecBadMagic(t *testing.T) {
	got := &trace.LLCTrace{}
	_, err := got.ReadFrom(strings.NewReader("ELF\x7fnot a trace at all, padding padding"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic error = %v", err)
	}
}

func TestCodecWrongVersion(t *testing.T) {
	data := encodeOne(t)
	bad := bytes.Clone(data)
	bad[4] = 0x63 // version 99
	got := &trace.LLCTrace{}
	_, err := got.ReadFrom(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version error = %v", err)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	w := workloads.Build(mustSpec(t, "delaunay"), 0.01)
	tr := trace.FilterPrivate(w.Stream(1))
	path := filepath.Join(t.TempDir(), "dt.wtrc")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "delaunay file", tr, got)
	// No temp droppings left behind by the atomic write.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("cache dir has %d entries, want 1", len(ents))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := trace.ReadFile(filepath.Join(t.TempDir(), "nope.wtrc")); err == nil {
		t.Fatal("missing file must error")
	}
}

func mustSpec(t *testing.T, name string) workloads.AppSpec {
	t.Helper()
	s, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	return s
}
