package trace_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"whirlpool/internal/trace"
	"whirlpool/internal/workloads"
)

// benchScale keeps one iteration around 10^5 raw accesses: large enough
// to exercise the encoder, small enough for -benchtime 1x CI smoke.
const benchScale = 0.05

func benchWorkload(b *testing.B) *workloads.Workload {
	b.Helper()
	spec, ok := workloads.ByName("delaunay")
	if !ok {
		b.Fatal("no delaunay spec")
	}
	return workloads.Build(spec, benchScale)
}

// BenchmarkFilterPrivate measures the generate+filter pipeline that the
// harness runs once per app, and reports the columnar trace's resident
// bytes (the number the streaming refactor is meant to shrink).
func BenchmarkFilterPrivate(b *testing.B) {
	w := benchWorkload(b)
	var tr *trace.LLCTrace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr = trace.FilterPrivate(w.Stream(1))
	}
	b.ReportMetric(float64(tr.EncodedBytes()), "trace-bytes")
	b.ReportMetric(float64(tr.EncodedBytes())/float64(tr.NumAccesses()), "bytes/access")
}

// BenchmarkTraceCursorScan measures raw replay speed: one full decode
// pass over a filtered trace, the inner loop of every simulation.
func BenchmarkTraceCursorScan(b *testing.B) {
	w := benchWorkload(b)
	tr := trace.FilterPrivate(w.Stream(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		for cur := tr.NewCursor(); ; {
			if _, ok := cur.Next(); !ok {
				break
			}
			n++
		}
		if n != tr.NumAccesses() {
			b.Fatal("short scan")
		}
	}
}

// BenchmarkTraceCodecEncode measures .wtrc serialization.
func BenchmarkTraceCodecEncode(b *testing.B) {
	w := benchWorkload(b)
	tr := trace.FilterPrivate(w.Stream(1))
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "file-bytes")
}

// BenchmarkTraceCodecDecode measures .wtrc deserialization + validation.
func BenchmarkTraceCodecDecode(b *testing.B) {
	w := benchWorkload(b)
	tr := trace.FilterPrivate(w.Stream(1))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := &trace.LLCTrace{}
		if _, err := got.ReadFrom(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceMmapOpen measures opening a .wtrc file for zero-copy
// reading: header + CRC validation against the mapping, no column
// decode. This is the fixed cost a warm sweep cell pays before its
// first (lazy) replay pass.
func BenchmarkTraceMmapOpen(b *testing.B) {
	w := benchWorkload(b)
	tr := trace.FilterPrivate(w.Stream(1))
	path := filepath.Join(b.TempDir(), "bench.wtrc")
	if err := trace.WriteFile(path, tr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := trace.OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

// BenchmarkTraceMmapCursor measures one full lazy-decode replay pass
// straight out of the mapping — the zero-copy counterpart of
// TraceCursorScan (heap-resident decode) and, together with TraceMmapOpen,
// of the eager TraceCodecDecode path it replaces on warm cells.
func BenchmarkTraceMmapCursor(b *testing.B) {
	w := benchWorkload(b)
	tr := trace.FilterPrivate(w.Stream(1))
	path := filepath.Join(b.TempDir(), "bench.wtrc")
	if err := trace.WriteFile(path, tr); err != nil {
		b.Fatal(err)
	}
	m, err := trace.OpenMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		for cur := m.NewCursor(); ; {
			if _, ok := cur.Next(); !ok {
				break
			}
			n++
		}
		if n != m.NumAccesses() {
			b.Fatal("short scan")
		}
	}
}
