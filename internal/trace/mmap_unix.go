//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only and returns the mapping plus an
// unmap closure. Callers fall back to plain reads on any error (empty
// files cannot be mapped; exotic filesystems may refuse).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, errMmapUnavailable
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
