package trace

import (
	"testing"

	"whirlpool/internal/addr"
)

func mkStream(accs []Access) Stream { return &SliceStream{Accs: accs} }

// collect decodes a trace back into a flat slice via its cursor.
func collect(tr *LLCTrace) []LLCAccess {
	var out []LLCAccess
	for c := tr.NewCursor(); ; {
		a, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func TestFilterTinyWorkingSetNeverReachesLLC(t *testing.T) {
	// 16KB working set fits in L1: after the cold pass nothing reaches
	// the LLC.
	var accs []Access
	lines := 16 * 1024 / 64
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < lines; i++ {
			accs = append(accs, Access{Line: addr.Line(i), Gap: 10})
		}
	}
	tr := FilterPrivate(mkStream(accs))
	if tr.RawAccesses != uint64(len(accs)) {
		t.Fatalf("raw = %d", tr.RawAccesses)
	}
	// Only cold misses (256 lines) reach the LLC.
	if got := tr.DemandAccesses(); got != uint64(lines) {
		t.Fatalf("LLC demand accesses = %d, want %d cold misses", got, lines)
	}
	if tr.L1Hits < uint64(9*lines) {
		t.Fatalf("L1 hits = %d, want >= %d", tr.L1Hits, 9*lines)
	}
}

func TestFilterL2WorkingSet(t *testing.T) {
	// 96KB working set: misses L1 (32KB) but fits L2 (128KB).
	var accs []Access
	lines := 96 * 1024 / 64
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < lines; i++ {
			accs = append(accs, Access{Line: addr.Line(i), Gap: 10})
		}
	}
	tr := FilterPrivate(mkStream(accs))
	if got := tr.DemandAccesses(); got != uint64(lines) {
		t.Fatalf("LLC demand = %d, want %d cold only", got, lines)
	}
	if tr.L2Hits == 0 {
		t.Fatal("L2 should hit the loop")
	}
}

func TestFilterStreamingReachesLLC(t *testing.T) {
	// 4MB stream: every line misses both private levels.
	var accs []Access
	lines := 4 * 1024 * 1024 / 64
	for i := 0; i < lines; i++ {
		accs = append(accs, Access{Line: addr.Line(i), Gap: 5})
	}
	tr := FilterPrivate(mkStream(accs))
	if got := tr.DemandAccesses(); got != uint64(lines) {
		t.Fatalf("LLC demand = %d, want %d", got, lines)
	}
}

func TestFilterEmitsWritebacks(t *testing.T) {
	// Write a stream larger than L2: dirty evictions must appear.
	var accs []Access
	lines := 1024 * 1024 / 64
	for i := 0; i < lines; i++ {
		accs = append(accs, Access{Line: addr.Line(i), Write: true, Gap: 5})
	}
	tr := FilterPrivate(mkStream(accs))
	wb := 0
	for _, a := range collect(tr) {
		if a.Writeback {
			wb++
		}
	}
	if wb == 0 {
		t.Fatal("no writebacks emitted")
	}
	if uint64(wb) > tr.RawAccesses {
		t.Fatal("more writebacks than accesses")
	}
}

func TestFilterGapAccounting(t *testing.T) {
	var accs []Access
	for i := 0; i < 1000; i++ {
		accs = append(accs, Access{Line: addr.Line(i * 1000), Gap: 7})
	}
	tr := FilterPrivate(mkStream(accs))
	if tr.Instrs != 7000 {
		t.Fatalf("instrs = %d, want 7000", tr.Instrs)
	}
	// All accesses miss (huge strides): gaps must sum to total instrs.
	var sum uint64
	for _, a := range collect(tr) {
		sum += uint64(a.Gap)
	}
	if sum != 7000 {
		t.Fatalf("gap sum = %d, want 7000", sum)
	}
}

func TestFilterBaseCycles(t *testing.T) {
	accs := []Access{{Line: 1, Gap: 1000}}
	tr := FilterPrivate(mkStream(accs))
	want := uint64(float64(1000) * BaseCPI)
	if tr.BaseCycles != want {
		t.Fatalf("BaseCycles = %d, want %d", tr.BaseCycles, want)
	}
}

func TestLLCAPKI(t *testing.T) {
	var accs []Access
	for i := 0; i < 100; i++ {
		accs = append(accs, Access{Line: addr.Line(i * 1000), Gap: 100})
	}
	tr := FilterPrivate(mkStream(accs))
	apki := tr.LLCAPKI()
	if apki < 9.9 || apki > 10.1 { // 100 accesses / 10000 instrs * 1000
		t.Fatalf("APKI = %v, want ~10", apki)
	}
}

func TestAppendCursorRoundTrip(t *testing.T) {
	// Every flag/gap/delta combination, including negative and huge line
	// jumps (mix offsets live at 1<<44).
	accs := []LLCAccess{
		{Line: 100, Gap: 7},
		{Line: 3, Gap: 0, Write: true},
		{Line: 1 << 45, Gap: 1 << 31},
		{Line: 42, Writeback: true},
		{Line: 42, Gap: 12, Write: true},
		{Line: 41, Writeback: true},
	}
	tr := &LLCTrace{}
	for _, a := range accs {
		tr.Append(a)
	}
	if tr.NumAccesses() != len(accs) {
		t.Fatalf("NumAccesses = %d, want %d", tr.NumAccesses(), len(accs))
	}
	if tr.DemandAccesses() != 4 {
		t.Fatalf("demand = %d, want 4", tr.DemandAccesses())
	}
	got := collect(tr)
	for i, a := range accs {
		if got[i] != a {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], a)
		}
	}
}

func TestCursorReset(t *testing.T) {
	tr := &LLCTrace{}
	for i := 0; i < 100; i++ {
		tr.Append(LLCAccess{Line: addr.Line(i * i), Gap: uint32(i)})
	}
	c := tr.NewCursor()
	first := make([]LLCAccess, 0, 100)
	for {
		a, ok := c.Next()
		if !ok {
			break
		}
		first = append(first, a)
	}
	c.Reset()
	for i := 0; ; i++ {
		a, ok := c.Next()
		if !ok {
			if i != len(first) {
				t.Fatalf("second pass ended at %d, want %d", i, len(first))
			}
			break
		}
		if a != first[i] {
			t.Fatalf("after Reset access %d = %+v, want %+v", i, a, first[i])
		}
	}
}

func TestOffsetReader(t *testing.T) {
	tr := &LLCTrace{}
	tr.Append(LLCAccess{Line: 10, Gap: 5})
	tr.Append(LLCAccess{Line: 20, Writeback: true})
	tr.Instrs = 5
	r := Offset(tr, 1<<44)
	if r.NumAccesses() != 2 || r.Stats().Instrs != 5 {
		t.Fatal("offset reader must delegate stats")
	}
	c := r.NewCursor()
	a, _ := c.Next()
	if a.Line != 10+1<<44 || a.Gap != 5 {
		t.Fatalf("offset access = %+v", a)
	}
	c.Reset()
	b, _ := c.Next()
	if b != a {
		t.Fatalf("offset cursor reset replays %+v, want %+v", b, a)
	}
	if Offset(tr, 0) != Reader(tr) {
		t.Fatal("zero offset should return the reader unchanged")
	}
}

func TestEncodedBytesSmallerThanStructs(t *testing.T) {
	// The columnar form must beat 16-byte structs by a wide margin on a
	// realistic (mostly local, small-gap) stream.
	tr := &LLCTrace{}
	n := 10000
	for i := 0; i < n; i++ {
		tr.Append(LLCAccess{Line: addr.Line(i), Gap: 30})
	}
	if got, limit := tr.EncodedBytes(), n*8; got >= limit {
		t.Fatalf("encoded bytes = %d, want < %d (16*n is the struct cost)", got, limit)
	}
}

func TestSliceStream(t *testing.T) {
	s := mkStream([]Access{{Line: 1}, {Line: 2}})
	a, ok := s.Next()
	if !ok || a.Line != 1 {
		t.Fatal("first access wrong")
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
}
