// The .wtrc binary codec: a versioned record/replay format for filtered
// LLC traces. The on-disk layout is the in-memory columnar layout plus a
// fixed header and a CRC, so encode/decode is a straight copy of the
// column buffers; see docs/trace-format.md for the byte-level reference.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"whirlpool/internal/addr"
)

// Magic identifies a .wtrc file.
const Magic = "WTRC"

// FormatVersion is the current .wtrc format version. Bump it on any
// layout change; readers reject versions they do not understand, and the
// harness folds it into trace-cache keys so stale cache entries are
// never picked up.
const FormatVersion = 1

// maxSaneAccesses and maxSaneBytes bound the sizes a reader will
// believe: a corrupt header must not provoke a multi-terabyte allocation
// before the CRC check has a chance to run.
const (
	maxSaneAccesses = 1 << 33
	maxSaneBytes    = 1 << 34
)

// header is the fixed-size portion after magic+version, little-endian.
type header struct {
	N           uint64
	Demand      uint64
	Instrs      uint64
	RawAccesses uint64
	L1Hits      uint64
	L2Hits      uint64
	BaseCycles  uint64
	LenDeltas   uint64
	LenGaps     uint64
}

// WriteTo encodes the trace in .wtrc format. It implements io.WriterTo.
func (t *LLCTrace) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}

	if _, err := cw.Write([]byte(Magic)); err != nil {
		return cw.n, err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint16(ver[0:], FormatVersion)
	if _, err := cw.Write(ver[:]); err != nil {
		return cw.n, err
	}
	h := header{
		N:           uint64(t.n),
		Demand:      t.demand,
		Instrs:      t.Instrs,
		RawAccesses: t.RawAccesses,
		L1Hits:      t.L1Hits,
		L2Hits:      t.L2Hits,
		BaseCycles:  t.BaseCycles,
		LenDeltas:   uint64(len(t.deltas)),
		LenGaps:     uint64(len(t.gaps)),
	}
	if err := binary.Write(cw, binary.LittleEndian, &h); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(t.deltas); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(t.gaps); err != nil {
		return cw.n, err
	}
	for _, words := range [][]uint64{t.write, t.wback} {
		if err := binary.Write(cw, binary.LittleEndian, words); err != nil {
			return cw.n, err
		}
	}
	// The CRC trailer covers everything above, magic included. It is
	// written to w only (not to the running CRC).
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	n, err := w.Write(sum[:])
	return cw.n + int64(n), err
}

// ReadFrom decodes a .wtrc stream into t, replacing its contents. It
// implements io.ReaderFrom. Truncated, corrupt, or wrong-version input
// returns a descriptive error; it never panics and never half-populates
// t (contents are replaced only on success).
func (t *LLCTrace) ReadFrom(r io.Reader) (int64, error) {
	crc := crc32.NewIEEE()
	cr := &countReader{r: io.TeeReader(r, crc)}

	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return cr.n, fmt.Errorf("trace: not a .wtrc trace: %w", readErr(err))
	}
	if string(magic[:]) != Magic {
		return cr.n, fmt.Errorf("trace: not a .wtrc trace (bad magic %q)", magic[:])
	}
	var ver [4]byte
	if _, err := io.ReadFull(cr, ver[:]); err != nil {
		return cr.n, fmt.Errorf("trace: truncated header: %w", readErr(err))
	}
	if v := binary.LittleEndian.Uint16(ver[0:]); v != FormatVersion {
		return cr.n, fmt.Errorf("trace: unsupported .wtrc version %d (this build reads version %d)", v, FormatVersion)
	}
	var hb [headerBytes]byte
	if _, err := io.ReadFull(cr, hb[:]); err != nil {
		return cr.n, fmt.Errorf("trace: truncated header: %w", readErr(err))
	}
	h := decodeHeader(hb[:])
	if err := h.sane(); err != nil {
		return cr.n, err
	}
	nt := &LLCTrace{
		Summary: Summary{
			Instrs:      h.Instrs,
			RawAccesses: h.RawAccesses,
			L1Hits:      h.L1Hits,
			L2Hits:      h.L2Hits,
			BaseCycles:  h.BaseCycles,
		},
		n:      int(h.N),
		demand: h.Demand,
		deltas: make([]byte, h.LenDeltas),
		gaps:   make([]byte, h.LenGaps),
	}
	if _, err := io.ReadFull(cr, nt.deltas); err != nil {
		return cr.n, fmt.Errorf("trace: truncated delta column: %w", readErr(err))
	}
	if _, err := io.ReadFull(cr, nt.gaps); err != nil {
		return cr.n, fmt.Errorf("trace: truncated gap column: %w", readErr(err))
	}
	// The bitsets stream through one reusable byte buffer and decode in
	// place (binary.Read would allocate an equal-sized shadow buffer per
	// column via reflection — the decode path's old double-buffering).
	words := (h.N + 63) / 64
	raw := make([]byte, 8*words)
	for _, dst := range []*[]uint64{&nt.write, &nt.wback} {
		if _, err := io.ReadFull(cr, raw); err != nil {
			return cr.n, fmt.Errorf("trace: truncated flag bitsets: %w", readErr(err))
		}
		*dst = decodeBitset(raw)
	}
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(cr, sum[:]); err != nil {
		return cr.n, fmt.Errorf("trace: truncated checksum: %w", readErr(err))
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return cr.n, fmt.Errorf("trace: .wtrc checksum mismatch (file %08x, computed %08x): corrupt trace", got, want)
	}
	if err := nt.validate(); err != nil {
		return cr.n, err
	}
	*t = *nt
	return cr.n, nil
}

// validate walks the decoded columns once, checking that the varint
// streams contain exactly n well-formed records and leaving the encoder
// state (lastLine) consistent so the trace could even be appended to.
func (nt *LLCTrace) validate() error {
	dpos, gpos := 0, 0
	var line addr.Line
	var demand uint64
	for i := 0; i < nt.n; i++ {
		u, k := binary.Uvarint(nt.deltas[dpos:])
		if k <= 0 {
			return fmt.Errorf("trace: corrupt .wtrc delta column at access %d", i)
		}
		dpos += k
		line += addr.Line(unzigzag(u))
		w := uint(i)
		if nt.wback[w/64]&(1<<(w%64)) == 0 {
			g, k := binary.Uvarint(nt.gaps[gpos:])
			if k <= 0 || g > 1<<32-1 {
				return fmt.Errorf("trace: corrupt .wtrc gap column at access %d", i)
			}
			gpos += k
			demand++
		}
	}
	if dpos != len(nt.deltas) || gpos != len(nt.gaps) || demand != nt.demand {
		return fmt.Errorf("trace: corrupt .wtrc payload (column sizes disagree with header)")
	}
	nt.lastLine = line
	return nil
}

// readErr maps io.EOF to the clearer unexpected-EOF for mid-stream
// truncation.
func readErr(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteFile atomically writes the trace to path in .wtrc format: the
// bytes land in a temp file in the same directory and are renamed into
// place, so concurrent readers (parallel sweep workers sharing a trace
// cache) never observe a partial file. Any TraceReader can be written —
// non-eager readers (a MappedTrace, an Offset wrapper) are materialized
// first.
func WriteFile(path string, r TraceReader) error {
	t, err := materializeErr(r)
	if err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".wtrc-tmp-*")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	tmp := f.Name()
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadFile eagerly decodes a .wtrc file. The file is mapped (or read
// whole on platforms without mmap) and parsed straight out of that one
// image — no intermediate stream buffers — then the mapping is released:
// the result is an ordinary heap-resident LLCTrace. Use OpenMapped to
// keep the columns in the mapping instead of copying them out.
func ReadFile(path string) (*LLCTrace, error) {
	data, unmap, err := readFileBytes(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if unmap != nil {
		defer unmap()
	}
	lay, err := parseWTRC(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	t, err := decodeLayout(lay)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
