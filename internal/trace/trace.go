// Package trace defines memory-access streams and the private-cache filter
// that turns a raw program access stream into the LLC-level trace the NUCA
// schemes are evaluated on.
//
// Filtering through the (identical across schemes) private L1/L2 levels
// once and replaying the resulting LLC trace against each scheme is what
// makes sweeping 31 apps × 6 schemes tractable; see docs/design.md.
//
// The LLC trace itself is a columnar, delta-encoded stream (LLCTrace)
// replayed through cursors (Reader/Cursor), not a materialized slice of
// structs: traces dominate the simulator's resident memory, and the
// columnar form both shrinks them severalfold and serializes directly to
// the on-disk .wtrc format (docs/trace-format.md).
package trace

import (
	"encoding/binary"

	"whirlpool/internal/addr"
	"whirlpool/internal/cache"
)

// Access is one memory reference in program order.
type Access struct {
	Line  addr.Line
	Write bool
	// Gap is the number of instructions executed since the previous
	// access (pacing for APKI accounting).
	Gap uint32
}

// Stream produces a finite sequence of accesses.
type Stream interface {
	// Next returns the next access; ok=false signals end of stream.
	Next() (Access, bool)
}

// SliceStream replays a recorded slice of accesses.
type SliceStream struct {
	Accs []Access
	pos  int
}

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.Accs) {
		return Access{}, false
	}
	a := s.Accs[s.pos]
	s.pos++
	return a, true
}

// LLCAccess is one access arriving at the shared LLC.
type LLCAccess struct {
	Line addr.Line
	// Gap is the number of instructions since the previous *demand*
	// LLC access from this core.
	Gap uint32
	// Writeback marks an L2 dirty eviction: it consumes LLC bandwidth and
	// energy but does not stall the core.
	Writeback bool
	// Write marks a demand store.
	Write bool
}

// Private cache configuration (Table 3).
const (
	L1Bytes    = 32 * addr.KB
	L1Ways     = 8
	L2Bytes    = 128 * addr.KB
	L2Ways     = 8
	L1Latency  = 4
	L2Latency  = 6
	L2HitStall = 6 // cycles a demand L2 hit adds to the core
)

// Summary holds the private-level statistics of a filtered trace: they
// are identical across LLC schemes, so the simulator folds them into
// every scheme's result instead of re-simulating the private levels.
type Summary struct {
	// Instrs is the total instructions the raw stream represents.
	Instrs uint64
	// RawAccesses, L1Hits, L2Hits summarize private-level behaviour.
	RawAccesses uint64
	L1Hits      uint64
	L2Hits      uint64
	// BaseCycles are cycles spent independent of the LLC scheme:
	// instructions at the base CPI plus private-level hit stalls.
	BaseCycles uint64
}

// Reader is a replayable LLC access trace: the simulator's view of a
// filtered app. The concrete implementations are *LLCTrace (columnar,
// in-memory or decoded from a .wtrc file) and the wrapper returned by
// Offset.
type Reader interface {
	// NewCursor returns an independent cursor positioned at the start.
	NewCursor() Cursor
	// NumAccesses is the total number of LLC accesses (demand + writeback).
	NumAccesses() int
	// Stats returns the private-level summary.
	Stats() Summary
}

// Cursor iterates a Reader's accesses in order. Reset rewinds to the
// start, which is how the simulator replays a trace across warmup and
// fixed-work (Loop) passes without re-decoding state.
type Cursor interface {
	Next() (LLCAccess, bool)
	Reset()
}

// TraceReader is the full trace surface the tooling and harness consume:
// replayable like any Reader, plus the derived statistics CLI reports
// print. Both the eager *LLCTrace and the zero-copy *MappedTrace satisfy
// it, so callers holding a TraceReader never care which decode path
// produced their trace.
type TraceReader interface {
	Reader
	// DemandAccesses counts non-writeback accesses.
	DemandAccesses() uint64
	// LLCAPKI returns demand LLC accesses per kilo-instruction.
	LLCAPKI() float64
	// EncodedBytes reports the resident size of the columnar payload.
	EncodedBytes() int
}

// Materialize returns an eager, heap-resident LLCTrace equivalent to r:
// r itself when it already is one, otherwise a replay of r's stream into
// a fresh encoder (how a mapped or offset trace becomes writable again —
// WriteFile uses it).
func Materialize(r Reader) *LLCTrace {
	t, _ := materializeErr(r)
	return t
}

// materializeErr is Materialize plus the cursor's error channel: a
// replay cut short (mapping closed mid-copy) surfaces instead of
// silently producing a truncated trace.
func materializeErr(r Reader) (*LLCTrace, error) {
	if t, ok := r.(*LLCTrace); ok {
		return t, nil
	}
	t := &LLCTrace{Summary: r.Stats()}
	cur := r.NewCursor()
	for {
		a, ok := cur.Next()
		if !ok {
			break
		}
		t.Append(a)
	}
	if ec, ok := cur.(interface{ Err() error }); ok && ec.Err() != nil {
		return t, ec.Err()
	}
	return t, nil
}

// LLCTrace is a core's filtered access stream plus the cycle/energy
// contributions of the private levels. The access stream is stored
// column-wise — line deltas and instruction gaps as varints, the
// write/writeback flags as bitsets — which is both ~4x smaller than a
// []LLCAccess and exactly the .wtrc wire format.
type LLCTrace struct {
	Summary

	n      int    // total accesses
	demand uint64 // non-writeback accesses

	// Encoder state: the previous appended line (deltas chain off it).
	lastLine addr.Line

	deltas []byte   // per access: uvarint(zigzag(line - prev line))
	gaps   []byte   // per demand access: uvarint(gap)
	write  []uint64 // bitset over access index: demand store
	wback  []uint64 // bitset over access index: L2 dirty eviction
}

// zigzag maps signed deltas to unsigned varint-friendly values.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Append adds one access to the trace. Traces are append-only: the
// private filter and the .wtrc decoder are the only writers.
func (t *LLCTrace) Append(a LLCAccess) {
	i := uint(t.n)
	if i%64 == 0 {
		t.write = append(t.write, 0)
		t.wback = append(t.wback, 0)
	}
	// Line deltas use wrapping uint64 subtraction, so any jump — including
	// the 2^44-sized per-core mix offsets — round-trips exactly.
	t.deltas = binary.AppendUvarint(t.deltas, zigzag(int64(a.Line-t.lastLine)))
	t.lastLine = a.Line
	if a.Writeback {
		t.wback[i/64] |= 1 << (i % 64)
	} else {
		t.gaps = binary.AppendUvarint(t.gaps, uint64(a.Gap))
		t.demand++
	}
	if a.Write {
		t.write[i/64] |= 1 << (i % 64)
	}
	t.n++
}

// NumAccesses implements Reader.
func (t *LLCTrace) NumAccesses() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Stats implements Reader.
func (t *LLCTrace) Stats() Summary {
	if t == nil {
		return Summary{}
	}
	return t.Summary
}

// EncodedBytes reports the resident size of the columnar payload — the
// number the bench trajectory tracks (a []LLCAccess costs 16 bytes per
// access; this is typically 3-5).
func (t *LLCTrace) EncodedBytes() int {
	return len(t.deltas) + len(t.gaps) + 8*(len(t.write)+len(t.wback))
}

// NewCursor implements Reader.
func (t *LLCTrace) NewCursor() Cursor { return &llcCursor{t: t} }

// llcCursor decodes the columnar stream sequentially.
type llcCursor struct {
	t    *LLCTrace
	i    int
	dpos int
	gpos int
	line addr.Line
}

// Next implements Cursor.
func (c *llcCursor) Next() (LLCAccess, bool) {
	t := c.t
	if c.i >= t.n {
		return LLCAccess{}, false
	}
	u, k := binary.Uvarint(t.deltas[c.dpos:])
	c.dpos += k
	c.line += addr.Line(unzigzag(u))
	i := uint(c.i)
	bit := uint64(1) << (i % 64)
	a := LLCAccess{
		Line:      c.line,
		Writeback: t.wback[i/64]&bit != 0,
		Write:     t.write[i/64]&bit != 0,
	}
	if !a.Writeback {
		g, k := binary.Uvarint(t.gaps[c.gpos:])
		c.gpos += k
		a.Gap = uint32(g)
	}
	c.i++
	return a, true
}

// Reset implements Cursor.
func (c *llcCursor) Reset() { *c = llcCursor{t: c.t} }

// Offset wraps a reader so every access line is shifted by off: how
// multi-programmed mixes give each core a disjoint address space without
// cloning the underlying trace.
func Offset(r Reader, off addr.Line) Reader {
	if off == 0 {
		return r
	}
	return &offsetReader{r: r, off: off}
}

type offsetReader struct {
	r   Reader
	off addr.Line
}

func (o *offsetReader) NewCursor() Cursor { return &offsetCursor{c: o.r.NewCursor(), off: o.off} }
func (o *offsetReader) NumAccesses() int  { return o.r.NumAccesses() }
func (o *offsetReader) Stats() Summary    { return o.r.Stats() }

type offsetCursor struct {
	c   Cursor
	off addr.Line
}

func (c *offsetCursor) Next() (LLCAccess, bool) {
	a, ok := c.c.Next()
	a.Line += c.off
	return a, ok
}

func (c *offsetCursor) Reset() { c.c.Reset() }

// BaseCPI is the core's cycles-per-instruction when never stalled on the
// LLC (a Nehalem-like OOO sustains ~2 IPC on compute; docs/design.md
// documents the in-order stall substitution).
const BaseCPI = 0.5

// LLCStallFactor is the fraction of LLC access latency the core actually
// stalls for: OOO cores overlap a good part of LLC latency with
// independent work and memory-level parallelism. 0.5 calibrates the
// relative scheme gaps to the paper's reported magnitudes (docs/design.md).
const LLCStallFactor = 0.5

// FilterPrivate runs stream through private L1D and L2 and records the LLC
// access trace. The L2 is inclusive of the L1; L1 evictions due to L2
// evictions are implicit (we model hit/miss only). The filtered accesses
// stream straight into the columnar encoder — no intermediate slice.
func FilterPrivate(s Stream) *LLCTrace {
	l1 := cache.NewSetAssoc(L1Bytes, L1Ways, cache.LRU)
	l2 := cache.NewSetAssoc(L2Bytes, L2Ways, cache.LRU)
	t := &LLCTrace{}
	var gapAcc uint64
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		t.RawAccesses++
		t.Instrs += uint64(a.Gap)
		gapAcc += uint64(a.Gap)
		if hit, _, _ := l1.Access(a.Line, a.Write); hit {
			t.L1Hits++
			continue
		}
		hit, ev, evd := l2.Access(a.Line, a.Write)
		if hit {
			t.L2Hits++
			continue
		}
		// L2 miss: demand access to the LLC.
		g := gapAcc
		if g > 1<<31 {
			g = 1 << 31
		}
		t.Append(LLCAccess{
			Line:  a.Line,
			Gap:   uint32(g),
			Write: a.Write,
		})
		gapAcc = 0
		if evd && ev.Dirty {
			// Dirty L2 eviction: writeback to the LLC, off the
			// critical path.
			t.Append(LLCAccess{
				Line:      ev.Line,
				Writeback: true,
			})
		}
	}
	t.BaseCycles = uint64(float64(t.Instrs)*BaseCPI) + t.L2Hits*L2HitStall
	return t
}

// DemandAccesses counts non-writeback accesses in the trace.
func (t *LLCTrace) DemandAccesses() uint64 { return t.demand }

// LLCAPKI returns demand LLC accesses per kilo-instruction.
func (t *LLCTrace) LLCAPKI() float64 {
	if t.Instrs == 0 {
		return 0
	}
	return float64(t.demand) / float64(t.Instrs) * 1000
}
