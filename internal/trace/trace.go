// Package trace defines memory-access streams and the private-cache filter
// that turns a raw program access stream into the LLC-level trace the NUCA
// schemes are evaluated on.
//
// Filtering through the (identical across schemes) private L1/L2 levels
// once and replaying the resulting LLC trace against each scheme is what
// makes sweeping 31 apps × 6 schemes tractable; see DESIGN.md.
package trace

import (
	"whirlpool/internal/addr"
	"whirlpool/internal/cache"
)

// Access is one memory reference in program order.
type Access struct {
	Line  addr.Line
	Write bool
	// Gap is the number of instructions executed since the previous
	// access (pacing for APKI accounting).
	Gap uint32
}

// Stream produces a finite sequence of accesses.
type Stream interface {
	// Next returns the next access; ok=false signals end of stream.
	Next() (Access, bool)
}

// SliceStream replays a recorded slice of accesses.
type SliceStream struct {
	Accs []Access
	pos  int
}

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.Accs) {
		return Access{}, false
	}
	a := s.Accs[s.pos]
	s.pos++
	return a, true
}

// LLCAccess is one access arriving at the shared LLC.
type LLCAccess struct {
	Line addr.Line
	// Gap is the number of instructions since the previous *demand*
	// LLC access from this core.
	Gap uint32
	// Writeback marks an L2 dirty eviction: it consumes LLC bandwidth and
	// energy but does not stall the core.
	Writeback bool
	// Write marks a demand store.
	Write bool
}

// Private cache configuration (Table 3).
const (
	L1Bytes    = 32 * addr.KB
	L1Ways     = 8
	L2Bytes    = 128 * addr.KB
	L2Ways     = 8
	L1Latency  = 4
	L2Latency  = 6
	L2HitStall = 6 // cycles a demand L2 hit adds to the core
)

// LLCTrace is a core's filtered access stream plus the cycle/energy
// contributions of the private levels (identical across LLC schemes).
type LLCTrace struct {
	Accesses []LLCAccess
	// Instrs is the total instructions the raw stream represents.
	Instrs uint64
	// RawAccesses, L1Hits, L2Hits summarize private-level behaviour.
	RawAccesses uint64
	L1Hits      uint64
	L2Hits      uint64
	// BaseCycles are cycles spent independent of the LLC scheme:
	// instructions at the base CPI plus private-level hit stalls.
	BaseCycles uint64
}

// BaseCPI is the core's cycles-per-instruction when never stalled on the
// LLC (a Nehalem-like OOO sustains ~2 IPC on compute; DESIGN.md documents
// the in-order stall substitution).
const BaseCPI = 0.5

// LLCStallFactor is the fraction of LLC access latency the core actually
// stalls for: OOO cores overlap a good part of LLC latency with
// independent work and memory-level parallelism. 0.5 calibrates the
// relative scheme gaps to the paper's reported magnitudes (DESIGN.md).
const LLCStallFactor = 0.5

// FilterPrivate runs stream through private L1D and L2 and records the LLC
// access trace. The L2 is inclusive of the L1; L1 evictions due to L2
// evictions are implicit (we model hit/miss only).
func FilterPrivate(s Stream) *LLCTrace {
	l1 := cache.NewSetAssoc(L1Bytes, L1Ways, cache.LRU)
	l2 := cache.NewSetAssoc(L2Bytes, L2Ways, cache.LRU)
	t := &LLCTrace{}
	var gapAcc uint64
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		t.RawAccesses++
		t.Instrs += uint64(a.Gap)
		gapAcc += uint64(a.Gap)
		if hit, _, _ := l1.Access(a.Line, a.Write); hit {
			t.L1Hits++
			continue
		}
		hit, ev, evd := l2.Access(a.Line, a.Write)
		if hit {
			t.L2Hits++
			continue
		}
		// L2 miss: demand access to the LLC.
		g := gapAcc
		if g > 1<<31 {
			g = 1 << 31
		}
		t.Accesses = append(t.Accesses, LLCAccess{
			Line:  a.Line,
			Gap:   uint32(g),
			Write: a.Write,
		})
		gapAcc = 0
		if evd && ev.Dirty {
			// Dirty L2 eviction: writeback to the LLC, off the
			// critical path.
			t.Accesses = append(t.Accesses, LLCAccess{
				Line:      ev.Line,
				Writeback: true,
			})
		}
	}
	t.BaseCycles = uint64(float64(t.Instrs)*BaseCPI) + t.L2Hits*L2HitStall
	return t
}

// DemandAccesses counts non-writeback accesses in the trace.
func (t *LLCTrace) DemandAccesses() uint64 {
	var n uint64
	for i := range t.Accesses {
		if !t.Accesses[i].Writeback {
			n++
		}
	}
	return n
}

// LLCAPKI returns demand LLC accesses per kilo-instruction.
func (t *LLCTrace) LLCAPKI() float64 {
	if t.Instrs == 0 {
		return 0
	}
	return float64(t.DemandAccesses()) / float64(t.Instrs) * 1000
}
