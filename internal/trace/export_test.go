package trace

// SetMmapDisabledForTest force-disables (or re-enables) mmap so tests
// can exercise OpenMapped's io fallback path deterministically.
func SetMmapDisabledForTest(v bool) { mmapDisabled.Store(v) }
