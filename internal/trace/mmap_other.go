//go:build !unix

package trace

// mapFile on platforms without a usable mmap syscall always reports
// unavailability; OpenMapped then falls back to reading the file through
// ordinary io (the bytes live on the heap instead of in a mapping, with
// identical semantics).
func mapFile(path string) ([]byte, func() error, error) {
	return nil, nil, errMmapUnavailable
}
