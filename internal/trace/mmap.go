// Memory-mapped .wtrc reading: MappedTrace serves a trace straight out
// of the page cache. The file is validated once at open (magic, version,
// header plausibility, column completeness, CRC), but the columns are
// never copied or pre-walked — cursors decode varints lazily out of the
// mapping, so opening a warm trace costs one checksum pass instead of a
// full decode, and N concurrent cursors share one resident copy.
//
// When mmap is unavailable (non-unix builds, empty files, filesystems
// that refuse to map) OpenMapped falls back to reading the file through
// ordinary io: same type, same semantics, heap-resident bytes.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"

	"whirlpool/internal/addr"
)

// ErrClosed is returned (via Cursor.Err / wrapped in open errors) when a
// MappedTrace is used after Close released its mapping.
var ErrClosed = errors.New("trace: mapped trace is closed")

// errMmapUnavailable signals mapFile cannot serve this request; the
// caller falls back to plain reads.
var errMmapUnavailable = errors.New("trace: mmap unavailable")

// mmapDisabled force-disables mmap (tests exercise the fallback path).
var mmapDisabled atomic.Bool

// wtrcLayout is a parsed view over one .wtrc byte image: the header plus
// zero-copy subslices of each column. Produced by parseWTRC, consumed by
// both the mapped (lazy) and eager decode paths.
type wtrcLayout struct {
	h      header
	deltas []byte
	gaps   []byte
	write  []byte // raw little-endian bitset bytes, 8*ceil(n/64)
	wback  []byte
}

// headerBytes is the fixed-size region after magic+version.
const headerBytes = 9 * 8

// parseWTRC validates a complete .wtrc byte image and returns its
// layout. Validation order and error wording mirror LLCTrace.ReadFrom
// exactly (magic, version, header plausibility, column completeness,
// CRC), so mapped and streamed reads of the same broken file report the
// same failure. It never allocates and never panics.
func parseWTRC(data []byte) (wtrcLayout, error) {
	var lay wtrcLayout
	if len(data) < 4 {
		return lay, fmt.Errorf("trace: not a .wtrc trace: %w", errShort(len(data)))
	}
	if string(data[:4]) != Magic {
		return lay, fmt.Errorf("trace: not a .wtrc trace (bad magic %q)", data[:4])
	}
	if len(data) < 8 {
		return lay, fmt.Errorf("trace: truncated header: %w", errShort(len(data)))
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != FormatVersion {
		return lay, fmt.Errorf("trace: unsupported .wtrc version %d (this build reads version %d)", v, FormatVersion)
	}
	if len(data) < 8+headerBytes {
		return lay, fmt.Errorf("trace: truncated header: %w", errShort(len(data)))
	}
	h := decodeHeader(data[8:])
	if err := h.sane(); err != nil {
		return lay, err
	}
	// Column completeness: report the first column the bytes run out in,
	// like the streaming reader's per-column ReadFull errors.
	pos := uint64(8 + headerBytes)
	words := (h.N + 63) / 64
	take := func(n uint64, what string) ([]byte, error) {
		if uint64(len(data))-pos < n {
			return nil, fmt.Errorf("trace: truncated %s: %w", what, errShort(len(data)))
		}
		col := data[pos : pos+n]
		pos += n
		return col, nil
	}
	var err error
	if lay.deltas, err = take(h.LenDeltas, "delta column"); err != nil {
		return lay, err
	}
	if lay.gaps, err = take(h.LenGaps, "gap column"); err != nil {
		return lay, err
	}
	if lay.write, err = take(8*words, "flag bitsets"); err != nil {
		return lay, err
	}
	if lay.wback, err = take(8*words, "flag bitsets"); err != nil {
		return lay, err
	}
	sum, err := take(4, "checksum")
	if err != nil {
		return lay, err
	}
	want := crc32.ChecksumIEEE(data[:pos-4])
	if got := binary.LittleEndian.Uint32(sum); got != want {
		return lay, fmt.Errorf("trace: .wtrc checksum mismatch (file %08x, computed %08x): corrupt trace", got, want)
	}
	lay.h = h
	return lay, nil
}

// errShort is the truncation cause for a byte image that ended early —
// the mapped analogue of the reader path's unexpected EOF.
func errShort(n int) error {
	return fmt.Errorf("file is %d bytes: unexpected EOF", n)
}

// decodeHeader decodes the fixed header region (headerBytes long).
func decodeHeader(hb []byte) header {
	return header{
		N:           binary.LittleEndian.Uint64(hb[0:]),
		Demand:      binary.LittleEndian.Uint64(hb[8:]),
		Instrs:      binary.LittleEndian.Uint64(hb[16:]),
		RawAccesses: binary.LittleEndian.Uint64(hb[24:]),
		L1Hits:      binary.LittleEndian.Uint64(hb[32:]),
		L2Hits:      binary.LittleEndian.Uint64(hb[40:]),
		BaseCycles:  binary.LittleEndian.Uint64(hb[48:]),
		LenDeltas:   binary.LittleEndian.Uint64(hb[56:]),
		LenGaps:     binary.LittleEndian.Uint64(hb[64:]),
	}
}

// readFileBytes returns path's full contents, preferring a read-only
// mapping (unmap non-nil) and falling back to a plain read (unmap nil).
func readFileBytes(path string) (data []byte, unmap func() error, err error) {
	if !mmapDisabled.Load() {
		if data, unmap, err := mapFile(path); err == nil {
			return data, unmap, nil
		}
	}
	data, err = os.ReadFile(path)
	return data, nil, err
}

// sane bounds the sizes a reader will believe before allocating or
// indexing anything (shared by the streaming and mapped paths).
func (h header) sane() error {
	if h.N > maxSaneAccesses || h.Demand > h.N ||
		h.LenDeltas > maxSaneBytes || h.LenGaps > maxSaneBytes ||
		h.LenDeltas > 10*h.N || h.LenGaps > 10*h.N || (h.N > 0 && h.LenDeltas == 0) {
		return fmt.Errorf("trace: corrupt .wtrc header (n=%d demand=%d deltas=%d gaps=%d)",
			h.N, h.Demand, h.LenDeltas, h.LenGaps)
	}
	return nil
}

// decodeLayout materializes an eager LLCTrace from a validated layout:
// one copy per varint column, bitsets decoded in place, then the full
// varint walk (validate) the eager path has always guaranteed.
func decodeLayout(lay wtrcLayout) (*LLCTrace, error) {
	h := lay.h
	nt := &LLCTrace{
		Summary: Summary{
			Instrs:      h.Instrs,
			RawAccesses: h.RawAccesses,
			L1Hits:      h.L1Hits,
			L2Hits:      h.L2Hits,
			BaseCycles:  h.BaseCycles,
		},
		n:      int(h.N),
		demand: h.Demand,
		deltas: append([]byte(nil), lay.deltas...),
		gaps:   append([]byte(nil), lay.gaps...),
		write:  decodeBitset(lay.write),
		wback:  decodeBitset(lay.wback),
	}
	if err := nt.validate(); err != nil {
		return nil, err
	}
	return nt, nil
}

// decodeBitset turns raw little-endian bitset bytes into words.
func decodeBitset(raw []byte) []uint64 {
	words := make([]uint64, len(raw)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return words
}

// MappedTrace is a .wtrc file served zero-copy: the header and CRC are
// validated at open, and cursors decode the columns lazily straight out
// of the mapping (or its heap-read fallback). It implements TraceReader,
// so it drops in anywhere an eager *LLCTrace does — the harness's trace
// cache and "trace"-sourced spec apps both open traces this way.
//
// Close releases the mapping; cursors created before or after Close
// observe it and fail cleanly via Cursor errors (they never touch
// unmapped memory after the closed flag is set). Close must not be
// called while a cursor is mid-Next on another goroutine.
type MappedTrace struct {
	lay    wtrcLayout
	data   []byte
	unmap  func() error
	mapped bool
	closed atomic.Bool
}

// OpenMapped opens a .wtrc file for zero-copy reading. The whole file is
// validated up front (header plausibility and CRC — one sequential pass,
// no decoding, no column copies); corrupt or truncated files error here
// with the same messages the streaming reader produces. When the file
// cannot be mmapped the bytes are read into memory instead and served
// identically.
func OpenMapped(path string) (*MappedTrace, error) {
	data, unmap, err := readFileBytes(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	lay, err := parseWTRC(data)
	if err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &MappedTrace{lay: lay, data: data, unmap: unmap, mapped: unmap != nil}, nil
}

// Close releases the mapping (a no-op on the heap fallback beyond
// flagging the trace closed). Idempotent. Cursors used after Close
// return no accesses and report ErrClosed via Err.
func (m *MappedTrace) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	if m.unmap != nil {
		return m.unmap()
	}
	return nil
}

// Mapped reports whether the trace is backed by a real memory mapping
// (false on the io fallback path).
func (m *MappedTrace) Mapped() bool { return m.mapped }

// NumAccesses implements Reader.
func (m *MappedTrace) NumAccesses() int { return int(m.lay.h.N) }

// Stats implements Reader.
func (m *MappedTrace) Stats() Summary {
	h := m.lay.h
	return Summary{
		Instrs:      h.Instrs,
		RawAccesses: h.RawAccesses,
		L1Hits:      h.L1Hits,
		L2Hits:      h.L2Hits,
		BaseCycles:  h.BaseCycles,
	}
}

// DemandAccesses counts non-writeback accesses.
func (m *MappedTrace) DemandAccesses() uint64 { return m.lay.h.Demand }

// LLCAPKI returns demand LLC accesses per kilo-instruction.
func (m *MappedTrace) LLCAPKI() float64 {
	if m.lay.h.Instrs == 0 {
		return 0
	}
	return float64(m.lay.h.Demand) / float64(m.lay.h.Instrs) * 1000
}

// EncodedBytes reports the resident size of the columnar payload (for a
// real mapping, bytes shared with the page cache rather than heap).
func (m *MappedTrace) EncodedBytes() int {
	return len(m.lay.deltas) + len(m.lay.gaps) + len(m.lay.write) + len(m.lay.wback)
}

// NewCursor implements Reader. Cursors are independent: any number may
// iterate one mapping concurrently (they only read).
func (m *MappedTrace) NewCursor() Cursor { return &mappedCursor{m: m} }

// mappedCursor decodes the mapped columns sequentially. Identical
// decode logic to llcCursor, minus the eager column copies.
type mappedCursor struct {
	m    *MappedTrace
	i    int
	dpos int
	gpos int
	line addr.Line
	err  error
}

// Next implements Cursor. After Close, or on a malformed varint (only
// reachable if the file mutated after its CRC was verified), it returns
// ok=false and records the cause for Err.
func (c *mappedCursor) Next() (LLCAccess, bool) {
	m := c.m
	if c.err != nil || c.i >= int(m.lay.h.N) {
		return LLCAccess{}, false
	}
	if m.closed.Load() {
		c.err = ErrClosed
		return LLCAccess{}, false
	}
	u, k := binary.Uvarint(m.lay.deltas[c.dpos:])
	if k <= 0 {
		c.err = fmt.Errorf("trace: corrupt .wtrc delta column at access %d", c.i)
		return LLCAccess{}, false
	}
	c.dpos += k
	c.line += addr.Line(unzigzag(u))
	i := c.i
	bit := byte(1) << (i & 7)
	a := LLCAccess{
		Line:      c.line,
		Writeback: m.lay.wback[i>>3]&bit != 0,
		Write:     m.lay.write[i>>3]&bit != 0,
	}
	if !a.Writeback {
		g, k := binary.Uvarint(m.lay.gaps[c.gpos:])
		if k <= 0 || g > 1<<32-1 {
			c.err = fmt.Errorf("trace: corrupt .wtrc gap column at access %d", c.i)
			return LLCAccess{}, false
		}
		c.gpos += k
		a.Gap = uint32(g)
	}
	c.i++
	return a, true
}

// Reset implements Cursor, rewinding to the start (it also clears a
// sticky decode error, but not ErrClosed — a closed mapping stays
// closed).
func (c *mappedCursor) Reset() {
	if c.err == ErrClosed {
		*c = mappedCursor{m: c.m, err: ErrClosed}
		return
	}
	*c = mappedCursor{m: c.m}
}

// Err reports why iteration stopped early: nil at a clean end of trace,
// ErrClosed after Close, or a corruption error. The Cursor interface
// itself has no error channel (the hot loop stays two return values);
// callers that care assert to interface{ Err() error }.
func (c *mappedCursor) Err() error { return c.err }
