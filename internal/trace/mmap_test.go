package trace_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/trace"
	"whirlpool/internal/workloads"
)

// writeWTRC dumps tr to a .wtrc file under a fresh temp dir.
func writeWTRC(t *testing.T, tr *trace.LLCTrace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.wtrc")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

// cursorErr extracts the optional error channel from a cursor.
func cursorErr(t *testing.T, c trace.Cursor) error {
	t.Helper()
	ec, ok := c.(interface{ Err() error })
	if !ok {
		t.Fatalf("cursor %T has no Err()", c)
	}
	return ec.Err()
}

// TestMappedBitIdentityBuiltins decodes every built-in app's trace both
// eagerly and via the mapping and requires identical streams and stats —
// the invariant that lets the harness swap decode paths freely.
func TestMappedBitIdentityBuiltins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison is not short")
	}
	for _, spec := range workloads.Specs() {
		w := workloads.Build(spec, 0.002)
		tr := trace.FilterPrivate(w.Stream(1))
		path := writeWTRC(t, tr)
		eager, err := trace.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: ReadFile: %v", spec.Name, err)
		}
		mapped, err := trace.OpenMapped(path)
		if err != nil {
			t.Fatalf("%s: OpenMapped: %v", spec.Name, err)
		}
		sameTrace(t, spec.Name+" eager", tr, eager)
		sameTrace(t, spec.Name+" mapped", tr, mapped)
		if mapped.DemandAccesses() != tr.DemandAccesses() || mapped.LLCAPKI() != tr.LLCAPKI() {
			t.Fatalf("%s: mapped derived stats diverge", spec.Name)
		}
		if err := mapped.Close(); err != nil {
			t.Fatalf("%s: Close: %v", spec.Name, err)
		}
	}
}

// TestMappedFallbackBitIdentity forces the io fallback (no mmap) and
// requires identical behaviour from the same API.
func TestMappedFallbackBitIdentity(t *testing.T) {
	trace.SetMmapDisabledForTest(true)
	defer trace.SetMmapDisabledForTest(false)
	w := workloads.Build(mustSpec(t, "delaunay"), 0.01)
	tr := trace.FilterPrivate(w.Stream(1))
	path := writeWTRC(t, tr)
	mapped, err := trace.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if mapped.Mapped() {
		t.Fatal("fallback path reports a real mapping")
	}
	sameTrace(t, "fallback", tr, mapped)
	eager, err := trace.ReadFile(path) // ReadFile's fallback arm too
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "fallback ReadFile", tr, eager)
}

// TestMappedIsMapped asserts the real-mmap path engages on this
// platform (unix CI): the zero-copy claim depends on it.
func TestMappedIsMapped(t *testing.T) {
	tr := &trace.LLCTrace{}
	tr.Append(trace.LLCAccess{Line: 1, Gap: 1})
	mapped, err := trace.OpenMapped(writeWTRC(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Skip("mmap unavailable on this platform")
	}
}

// TestMappedCursorReset rewinds a mapped cursor mid-stream and after
// exhaustion (the simulator's warmup and Loop rewinds) and requires the
// replay to match a fresh cursor exactly.
func TestMappedCursorReset(t *testing.T) {
	w := workloads.Build(mustSpec(t, "delaunay"), 0.005)
	tr := trace.FilterPrivate(w.Stream(1))
	mapped, err := trace.OpenMapped(writeWTRC(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	cur := mapped.NewCursor()
	for i := 0; i < mapped.NumAccesses()/3; i++ {
		cur.Next() // partial pass (warmup abandoned mid-way)
	}
	cur.Reset()
	ref := mapped.NewCursor()
	for i := 0; ; i++ {
		a, ok := cur.Next()
		b, okb := ref.Next()
		if ok != okb || a != b {
			t.Fatalf("post-Reset access %d: %+v/%v != %+v/%v", i, a, ok, b, okb)
		}
		if !ok {
			break
		}
	}
	// Full pass then Reset (the Loop rewind): must replay identically.
	cur.Reset()
	n := 0
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	if n != mapped.NumAccesses() {
		t.Fatalf("second full pass saw %d accesses, want %d", n, mapped.NumAccesses())
	}
	if err := cursorErr(t, cur); err != nil {
		t.Fatalf("clean replay left cursor error %v", err)
	}
}

// TestMappedConcurrentCursors runs many cursors over one mapping at
// once; each must see the full, identical stream (cursors share bytes
// but no mutable state).
func TestMappedConcurrentCursors(t *testing.T) {
	w := workloads.Build(mustSpec(t, "delaunay"), 0.005)
	tr := trace.FilterPrivate(w.Stream(1))
	mapped, err := trace.OpenMapped(writeWTRC(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	want := uint64(0)
	for cur := tr.NewCursor(); ; {
		a, ok := cur.Next()
		if !ok {
			break
		}
		want += uint64(a.Line) + uint64(a.Gap)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum, n := uint64(0), 0
			for cur := mapped.NewCursor(); ; {
				a, ok := cur.Next()
				if !ok {
					break
				}
				sum += uint64(a.Line) + uint64(a.Gap)
				n++
			}
			if n != mapped.NumAccesses() || sum != want {
				t.Errorf("concurrent cursor saw %d accesses (sum %d), want %d (sum %d)",
					n, sum, mapped.NumAccesses(), want)
			}
		}()
	}
	wg.Wait()
}

// TestMappedUseAfterClose requires clean errors — never a fault — from
// cursors used after the mapping is released, whichever side of Close
// they were created on.
func TestMappedUseAfterClose(t *testing.T) {
	tr := &trace.LLCTrace{}
	for i := 0; i < 100; i++ {
		tr.Append(trace.LLCAccess{Line: addr.Line(i), Gap: 1})
	}
	mapped, err := trace.OpenMapped(writeWTRC(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	before := mapped.NewCursor()
	if _, ok := before.Next(); !ok {
		t.Fatal("cursor dead before Close")
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, ok := before.Next(); ok {
		t.Fatal("Next succeeded after Close")
	}
	if err := cursorErr(t, before); !errors.Is(err, trace.ErrClosed) {
		t.Fatalf("pre-Close cursor error = %v, want ErrClosed", err)
	}
	after := mapped.NewCursor()
	if _, ok := after.Next(); ok {
		t.Fatal("post-Close cursor returned an access")
	}
	if err := cursorErr(t, after); !errors.Is(err, trace.ErrClosed) {
		t.Fatalf("post-Close cursor error = %v, want ErrClosed", err)
	}
	// Reset does not resurrect a closed mapping.
	before.Reset()
	if _, ok := before.Next(); ok {
		t.Fatal("Reset revived a closed cursor")
	}
}

// TestMappedErrorParity truncates and corrupts a file at every region
// and requires OpenMapped to fail exactly when the streaming reader
// does, with the same error class in the message.
func TestMappedErrorParity(t *testing.T) {
	data := encodeOne(t)
	dir := t.TempDir()
	write := func(b []byte) string {
		path := filepath.Join(dir, "x.wtrc")
		if err := os.WriteFile(path, b, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}
	classOf := func(err error) string {
		for _, class := range []string{
			"not a .wtrc trace", "unsupported .wtrc version", "truncated header",
			"truncated delta column", "truncated gap column", "truncated flag bitsets",
			"truncated checksum", "checksum mismatch", "corrupt .wtrc header",
			"corrupt .wtrc delta column", "corrupt .wtrc gap column", "corrupt .wtrc payload",
		} {
			if strings.Contains(err.Error(), class) {
				return class
			}
		}
		return "other: " + err.Error()
	}
	cuts := []int{0, 1, 3, 4, 7, 8, 20, 79, 80, len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 3, len(data) - 1}
	for _, cut := range cuts {
		path := write(data[:cut])
		ref := &trace.LLCTrace{}
		_, refErr := ref.ReadFrom(bytes.NewReader(data[:cut]))
		_, mapErr := trace.OpenMapped(path)
		if refErr == nil || mapErr == nil {
			t.Fatalf("cut %d: reader err %v, mapped err %v (both must fail)", cut, refErr, mapErr)
		}
		if classOf(refErr) != classOf(mapErr) {
			t.Fatalf("cut %d: reader %q vs mapped %q", cut, refErr, mapErr)
		}
	}
	for _, pos := range []int{0, 4, 8, 16, 40, 80, len(data) / 2, len(data) - 2} {
		bad := bytes.Clone(data)
		bad[pos] ^= 0x5a
		path := write(bad)
		ref := &trace.LLCTrace{}
		_, refErr := ref.ReadFrom(bytes.NewReader(bad))
		_, mapErr := trace.OpenMapped(path)
		if refErr == nil || mapErr == nil {
			t.Fatalf("flip at %d: reader err %v, mapped err %v (both must fail)", pos, refErr, mapErr)
		}
		if classOf(refErr) != classOf(mapErr) {
			t.Fatalf("flip at %d: reader %q vs mapped %q", pos, refErr, mapErr)
		}
	}
}

// TestMappedMissingFile errors cleanly on both paths.
func TestMappedMissingFile(t *testing.T) {
	if _, err := trace.OpenMapped(filepath.Join(t.TempDir(), "nope.wtrc")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestMappedEmptyTrace round-trips a zero-access trace (header-only
// file) through the mapped path.
func TestMappedEmptyTrace(t *testing.T) {
	mapped, err := trace.OpenMapped(writeWTRC(t, &trace.LLCTrace{}))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if mapped.NumAccesses() != 0 {
		t.Fatalf("empty trace has %d accesses", mapped.NumAccesses())
	}
	if _, ok := mapped.NewCursor().Next(); ok {
		t.Fatal("empty trace yielded an access")
	}
}

// TestMaterializeMapped re-encodes a mapped trace and requires the
// round trip to be bit-identical (WriteFile on a MappedTrace).
func TestMaterializeMapped(t *testing.T) {
	w := workloads.Build(mustSpec(t, "delaunay"), 0.005)
	tr := trace.FilterPrivate(w.Stream(1))
	mapped, err := trace.OpenMapped(writeWTRC(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	path2 := filepath.Join(t.TempDir(), "copy.wtrc")
	if err := trace.WriteFile(path2, mapped); err != nil {
		t.Fatal(err)
	}
	again, err := trace.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "materialized copy", tr, again)
}
