package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"whirlpool/internal/results"
)

// TestEndpointShedding: overdriving one endpoint past its concurrency
// limit sheds with 429 + Retry-After and counts into server.shed and
// the endpoint's own counter — while other endpoints keep serving.
func TestEndpointShedding(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:          store,
		Workers:        1,
		EndpointLimits: map[string]int{"results": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); store.Close() })

	// Hold the single results slot open with a handler-level block: park
	// one request inside the endpoint by swapping in a slow store read.
	// Simpler: drive many concurrent requests; with limit 1 at least one
	// must shed under any interleaving of 8 simultaneous requests.
	const n = 8
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/results")
			if err != nil {
				codes <- 0
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("shed 429 without Retry-After")
				}
				var body struct {
					Error struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				if json.NewDecoder(resp.Body).Decode(&body) != nil || body.Error.Code != "overloaded" {
					t.Errorf("shed body code = %q, want overloaded", body.Error.Code)
				}
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	shed, ok := 0, 0
	for c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK:
			ok++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 {
		t.Fatal("every request shed; the limit should admit one at a time")
	}
	if shed == 0 {
		t.Skip("no overlap achieved (single-core scheduling); shed path covered by TestEndpointSheddingDeterministic")
	}
	if got := srv.metrics.shed.Load(); got != int64(shed) {
		t.Fatalf("server.shed = %d, want %d", got, shed)
	}

	// Other endpoints are isolated: healthz still serves.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during results shedding: %v %v", err, resp)
	}
	resp.Body.Close()
}

// TestEndpointSheddingDeterministic drives the admission gate directly:
// with the endpoint's single slot occupied, the next request must shed.
func TestEndpointSheddingDeterministic(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:          store,
		EndpointLimits: map[string]int{"results": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); store.Close() })

	var ep *endpoint
	for _, e := range srv.endpoints {
		if e.name == "results" {
			ep = e
		}
	}
	if ep == nil || ep.limit != 1 {
		t.Fatalf("results endpoint limit = %+v, want 1", ep)
	}
	ep.inflight.Add(1) // a request parked inside the endpoint
	defer ep.inflight.Add(-1)

	req := httptest.NewRequest(http.MethodGet, "/v1/results", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want 1", rec.Header().Get("Retry-After"))
	}
	if !strings.Contains(rec.Body.String(), `"code": "overloaded"`) &&
		!strings.Contains(rec.Body.String(), `"code":"overloaded"`) {
		t.Fatalf("body = %s", rec.Body.String())
	}
	if srv.metrics.shed.Load() != 1 || ep.shed.Load() != 1 {
		t.Fatalf("shed counters = %d/%d, want 1/1", srv.metrics.shed.Load(), ep.shed.Load())
	}

	// The slot freeing admits the next request again.
	ep.inflight.Add(-1)
	defer ep.inflight.Add(1)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/results", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-shed status = %d, want 200", rec.Code)
	}
}

// TestUnlimitedEndpointsNeverShed: healthz and metrics have no limit —
// they must stay reachable precisely when everything else sheds.
func TestUnlimitedEndpointsNeverShed(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	for _, ep := range srv.endpoints {
		if ep.name == "healthz" || ep.name == "metrics" {
			if ep.limit != 0 {
				t.Fatalf("%s limit = %d, want unlimited", ep.name, ep.limit)
			}
		}
	}
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: %v %v", err, resp)
		}
		resp.Body.Close()
	}
}

// TestLatencyRecorded: serving a request populates its endpoint's
// histogram in /metrics.
func TestLatencyRecorded(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/results")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var m map[string]any
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	srvM := m["server"].(map[string]any)
	eps := srvM["endpoints"].(map[string]any)
	res := eps["results"].(map[string]any)
	lat := res["latency"].(map[string]any)
	if lat["count"] != float64(3) {
		t.Fatalf("results latency count = %v, want 3", lat["count"])
	}
	for _, k := range []string{"p50_ms", "p95_ms", "p99_ms", "mean_ms"} {
		if _, ok := lat[k].(float64); !ok {
			t.Fatalf("latency %s missing: %v", k, lat)
		}
	}
}
