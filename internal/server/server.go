// Package server implements whirld's HTTP surface: submit sweeps as
// async jobs, stream rows over SSE as cells finish, and query the
// persistent result store. Every row a job computes is committed to the
// store as it lands, and every cell already in the store is served
// without simulation, so the daemon and the CLIs (whirlsweep -store)
// share one memoized result universe.
//
// Endpoints (see docs/server.md for the reference + curl examples):
//
//	POST   /v1/sweeps           submit a sweep (spec + grid) as a job
//	POST   /v1/cells            run an explicit cell list (worker shard)
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        job status + cell-resolution counters
//	GET    /v1/jobs/{id}/stream SSE: completed rows as they finish
//	GET    /v1/jobs/{id}/rows   finished grid in csv/json/table form
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/results          query the store (app/scheme/key filters)
//	POST   /v1/workers          a worker joins the fleet (lease grant)
//	POST   /v1/workers/{id}/heartbeat renew the lease + report load
//	DELETE /v1/workers/{id}     a worker leaves gracefully
//	GET    /v1/workers          fleet roster (alive + dead)
//	GET    /healthz             liveness + build identity
//	GET    /metrics             expvar-style counters
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"whirlpool/internal/dispatch"
	"whirlpool/internal/experiments"
	"whirlpool/internal/fleet"
	"whirlpool/internal/obs"
	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
	"whirlpool/internal/spec"
	"whirlpool/internal/workloads"
)

// Config configures a Server.
type Config struct {
	// Store is the persistent result store; required.
	Store *results.Store
	// TraceCacheDir, when non-empty, gives every job's harness an
	// on-disk trace cache (uncached cells still skip regeneration
	// across jobs).
	TraceCacheDir string
	// Workers bounds each job's sweep parallelism; <= 0 means
	// GOMAXPROCS.
	Workers int
	// WorkerURLs seeds the fleet with static members: workers assumed
	// alive for the daemon's lifetime (no lease, never expire — the
	// pre-elastic -workers model). Workers may also join dynamically at
	// runtime via POST /v1/workers (whirld -join), with liveness
	// governed by heartbeat leases. Whenever the fleet has at least one
	// alive member the daemon is a coordinator: a sweep's unserved
	// cells are sharded across the alive set (internal/dispatch)
	// instead of being simulated locally, and every returned row is
	// committed to this daemon's store. Shard jobs (POST /v1/cells)
	// always run locally, so a coordinator is never part of its own
	// fleet.
	WorkerURLs []string
	// LeaseTTL is how long a dynamically-joined worker stays alive
	// without a heartbeat; past it the worker is dead exactly as if
	// its connection had dropped mid-shard. <= 0 means the fleet
	// default (10s).
	LeaseTTL time.Duration
	// Log, when non-nil, receives structured job, fleet membership, and
	// dispatch logs (whirld passes an obs.NewLogger writing the classic
	// "whirld: msg key=val" lines to stderr). Nil discards.
	Log *slog.Logger
	// JobWorkers bounds how many jobs run concurrently; <= 0 means 1
	// (FIFO jobs, each fanning cells across Workers — the right
	// throughput model for CPU-bound simulation).
	JobWorkers int
	// QueueDepth bounds queued jobs; submits beyond it get 503.
	// <= 0 means 64.
	QueueDepth int
	// JobHistory bounds how many finished jobs stay queryable (their
	// rows live in memory; the store keeps the results forever). When a
	// new job finishes beyond the bound, the oldest terminal jobs are
	// evicted. <= 0 means 256.
	JobHistory int
	// EndpointLimits overrides per-endpoint concurrency limits by
	// endpoint name (sweeps, cells, jobs, stream, rows, results,
	// healthz, metrics). Requests beyond an endpoint's limit are shed
	// with 429 + Retry-After instead of queuing behind it. Absent
	// entries use defaultLimits; negative values mean unlimited.
	EndpointLimits map[string]int
	// Version is reported by /healthz (cliutil.Version in whirld).
	Version string
}

// Server routes HTTP requests onto a bounded job pool running
// experiments.Sweep. Create with New, serve via Handler, stop with
// Close.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	seq      int
	draining bool

	queue   chan *job
	runners sync.WaitGroup

	// regMu serializes workload-spec registration: the workloads
	// registry is process-global, so concurrent submits registering
	// apps must not interleave. Jobs reusing one app name across
	// different specs race with in-flight sweeps of that name; keys
	// and stored rows stay truthful (both read the registry at sweep
	// start), but prefer distinct names.
	regMu sync.Mutex

	started   time.Time
	metrics   metrics
	endpoints []*endpoint

	// fleet is the worker registry: static members seeded from
	// cfg.WorkerURLs plus leased members joining via /v1/workers.
	fleet *fleet.Registry
	log   *slog.Logger

	// tracer is the daemon's span ring: every request span, job span,
	// and sweep stage span lands here, and GET /v1/jobs/{id}/trace
	// serves a job's tree from it.
	tracer *obs.Tracer

	// cellsDone counts rows landed across all jobs (the throughput
	// numerator for Load's cells/sec); loadAt/loadCells are the
	// previous Load sample, guarded by loadMu.
	cellsDone atomic.Int64
	loadMu    sync.Mutex
	loadAt    time.Time
	loadCells int64

	// dispWorkers aggregates per-worker dispatch tallies across jobs
	// for /metrics (dispatch.workers.per_worker), guarded by dispMu.
	dispMu      sync.Mutex
	dispWorkers map[string]*workerAgg
	dispOrder   []string
}

// SweepRequest is the POST /v1/sweeps body. Semantics mirror the
// whirlsweep flags.
type SweepRequest struct {
	// Spec is an optional inline workload-spec file (the same JSON
	// schema as docs/workload-specs.md); its apps are registered and
	// its mixes become sweepable by name.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Apps to sweep. Empty: the spec's apps, else every registered
	// app. ["all"] forces the full registry.
	Apps []string `json:"apps,omitempty"`
	// Mixes are mix names from Spec; ["all"] sweeps every mix in Spec.
	Mixes []string `json:"mixes,omitempty"`
	// Schemes to cross with every app and mix; empty means all.
	Schemes []string `json:"schemes,omitempty"`
	// Scale multiplies workload length (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives workload generation (0 = the published default).
	Seed uint64 `json:"seed,omitempty"`
	// Reconfig overrides the D-NUCA reconfiguration period in cycles.
	Reconfig uint64 `json:"reconfig,omitempty"`
	// NoBypass disables VC bypassing in every run.
	NoBypass bool `json:"nobypass,omitempty"`
}

// New builds a Server and starts its job runners.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 256
	}
	for name := range cfg.EndpointLimits {
		if _, ok := defaultLimits[name]; !ok {
			return nil, fmt.Errorf("server: unknown endpoint %q in EndpointLimits (valid: %s)",
				name, strings.Join(EndpointNames(), ", "))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		baseCtx: ctx,
		cancel:  cancel,
		jobs:    map[string]*job{},
		queue:   make(chan *job, cfg.QueueDepth),
		started: time.Now(),
	}
	s.log = cfg.Log
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.tracer = obs.New(0)
	s.fleet = fleet.NewRegistry(fleet.RegistryOptions{LeaseTTL: cfg.LeaseTTL, Log: s.log})
	for _, u := range cfg.WorkerURLs {
		if err := s.fleet.AddStatic(u, 0); err != nil {
			cancel()
			return nil, fmt.Errorf("server: worker URL: %v", err)
		}
	}
	s.mux = http.NewServeMux()
	// Routes sharing a name share one endpoint: one concurrency limit,
	// one latency histogram (server.endpoints.<name> in /metrics).
	// routeTraced additionally threads the request span's context into
	// the handler (submit paths, where the job must inherit the caller's
	// trace); plain route skips that injection so hot read paths like
	// /v1/results stay allocation-free.
	s.routeTraced("POST /v1/sweeps", "sweeps", s.handleSubmit)
	s.routeTraced("POST /v1/cells", "cells", s.handleCells)
	s.route("GET /v1/jobs", "jobs", s.handleJobs)
	s.route("GET /v1/jobs/{id}", "jobs", s.handleJob)
	s.route("DELETE /v1/jobs/{id}", "jobs", s.handleCancel)
	s.route("GET /v1/jobs/{id}/stream", "stream", s.handleStream)
	s.route("GET /v1/jobs/{id}/rows", "rows", s.handleRows)
	s.route("GET /v1/jobs/{id}/trace", "trace", s.handleTrace)
	s.route("GET /v1/results", "results", s.handleResults)
	s.route("POST /v1/workers", "workers", s.handleWorkerRegister)
	s.route("GET /v1/workers", "workers", s.handleWorkersList)
	s.route("POST /v1/workers/{id}/heartbeat", "workers", s.handleWorkerHeartbeat)
	s.route("DELETE /v1/workers/{id}", "workers", s.handleWorkerDeregister)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	for i := 0; i < cfg.JobWorkers; i++ {
		s.runners.Add(1)
		go s.runJobs()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the daemon: new submits are rejected, running jobs are
// canceled (their already-committed rows stay in the store, so
// resubmitting resumes where they stopped), and the job runners exit.
// SSE streams of jobs that reached a terminal state deliver their
// final done event; streams cut off mid-cancellation end without one
// (the client sees a dropped stream and re-polls the job). The store
// itself is not closed; the owner does that after Close returns.
func (s *Server) Close() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	close(s.queue)
	// Jobs still queued (never started) must report a terminal state or
	// SSE subscribers would hang.
	for j := range s.queue {
		j.finish(nil, experiments.SweepStats{}, "canceled", "daemon shutting down")
	}
	s.runners.Wait()
}

// runJobs is one job-runner goroutine: it executes queued jobs until
// the queue closes.
func (s *Server) runJobs() {
	defer s.runners.Done()
	for j := range s.queue {
		s.runJob(j)
		s.evictOld()
	}
}

// evictOld trims terminal jobs beyond cfg.JobHistory, oldest first, so
// a long-lived daemon's memory stays bounded. Running and queued jobs
// are never evicted; the evicted jobs' rows remain in the store.
func (s *Server) evictOld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	nTerm := 0
	for _, id := range s.order {
		if s.jobs[id].isDone() {
			nTerm++
		}
	}
	if nTerm <= s.cfg.JobHistory {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if nTerm > s.cfg.JobHistory && s.jobs[id].isDone() {
			delete(s.jobs, id)
			nTerm--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.start(cancel)
	defer cancel()

	// The job's root span: child of the submit request's span (same
	// trace as the caller — for shard jobs, the coordinator's trace),
	// or a fresh root when the submit was untraced. Every sweep stage
	// span below parents under it via the context.
	jobSpan := s.tracer.Start(j.parentSC, "job")
	jobSpan.SetStr("id", j.id)
	jobSpan.SetInt("cells", int64(j.total))
	if j.cells != nil {
		jobSpan.SetBool("shard", true)
	}
	j.setTrace(jobSpan.Context())
	ctx = obs.NewContext(ctx, jobSpan.Context())
	s.log.Info("job started", "job", j.id, "cells", j.total, "trace", jobSpan.Trace.String())

	// fail finishes the job (and its span) on pre-sweep errors.
	fail := func(msg string) {
		s.metrics.jobsFailed.Add(1)
		j.finish(nil, experiments.SweepStats{}, "failed", msg)
		jobSpan.SetStr("state", "failed")
		jobSpan.End()
		s.log.Warn("job failed", "job", j.id, "err", msg)
	}

	if j.specFile != nil {
		// Registration is what makes the spec's apps (and mix members)
		// resolvable; deferred to run time so rejected submits leave the
		// registry untouched, and serialized because it is
		// process-global.
		s.regMu.Lock()
		_, err := j.specFile.Register()
		s.regMu.Unlock()
		if err != nil {
			fail(err.Error())
			return
		}
	}

	h := experiments.NewHarness(j.scale)
	if j.req.Seed != 0 {
		h.Seed = j.req.Seed
	}
	if j.req.Reconfig != 0 {
		h.ReconfigCycles = j.req.Reconfig
	}
	h.CacheDir = s.cfg.TraceCacheDir

	var stats experiments.SweepStats
	cfg := experiments.SweepConfig{
		Apps:     j.apps,
		Mixes:    j.mixes,
		Kinds:    j.kinds,
		Cells:    j.cells,
		Workers:  s.cfg.Workers,
		NoBypass: j.req.NoBypass,
		Context:  ctx,
		Store:    s.cfg.Store,
		Stats:    &stats,
		Tracer:   s.tracer,
		OnRow: func(done, total int, row experiments.SweepRow) {
			s.cellsDone.Add(1)
			j.addRow(done, total, row)
		},
	}
	// Coordinator mode: shard this grid across the fleet's current
	// alive set instead of simulating here. The membership snapshot is
	// taken per dispatch round, so workers joining or dying mid-job
	// change the routing live. A job that starts against an empty
	// fleet runs locally even if workers join later. Shard jobs
	// (j.cells) always run locally — that is the recursion anchor.
	var pool *dispatch.Pool
	if j.cells == nil && len(s.fleet.Snapshot().Members) > 0 {
		var perr error
		pool, perr = dispatch.NewPool(s.fleet, dispatch.Options{Log: s.log, Tracer: s.tracer})
		if perr != nil {
			fail(perr.Error())
			return
		}
		forward, ferr := forwardSpec(j)
		if ferr != nil {
			fail(ferr.Error())
			return
		}
		cfg.Remote = pool.Exec(dispatch.JobParams{
			Spec:     forward,
			Scale:    j.req.Scale,
			Seed:     j.req.Seed,
			Reconfig: j.req.Reconfig,
			NoBypass: j.req.NoBypass,
		})
	}
	rows, err := h.Sweep(cfg)
	if pool != nil {
		stats.Workers = pool.Stats()
		for _, ws := range stats.Workers {
			s.metrics.redispatched.Add(int64(ws.Redispatched))
			if ws.Dead {
				s.metrics.workersLost.Add(1)
			}
		}
		s.metrics.rebalances.Add(int64(pool.Rebalances()))
		s.recordWorkerStats(stats.Workers)
	}
	s.metrics.rowsServed.Add(int64(stats.Served))
	s.metrics.rowsComputed.Add(int64(stats.Computed))
	final := "done"
	switch {
	case ctx.Err() != nil:
		s.metrics.jobsCanceled.Add(1)
		final = "canceled"
		j.finish(rows, stats, final, ctx.Err().Error())
	case err != nil:
		s.metrics.jobsFailed.Add(1)
		final = "failed"
		j.finish(rows, stats, final, err.Error())
	default:
		s.metrics.jobsDone.Add(1)
		msg := ""
		if stats.Errors > 0 {
			msg = fmt.Sprintf("%d of %d cells failed", stats.Errors, len(rows))
		}
		j.finish(rows, stats, final, msg)
	}
	jobSpan.SetInt("served", int64(stats.Served))
	jobSpan.SetInt("computed", int64(stats.Computed))
	jobSpan.SetStr("state", final)
	jobSpan.End()
	s.log.Info("job finished", "job", j.id, "state", final,
		"served", stats.Served, "computed", stats.Computed, "errors", stats.Errors)
}

// forwardSpec builds the workload spec a coordinator ships with every
// shard. The job's own inline spec is not enough: the grid may name
// apps that live only in this process's registry (registered by
// earlier jobs' specs — e.g. apps:["all"] on a long-lived daemon),
// which a worker could not resolve. So the forwarded spec defines
// every app the grid touches, round-tripped from the registry the
// coordinator itself keyed the cells against, plus the job spec's mix
// definitions. Called after the job's spec is registered.
func forwardSpec(j *job) (json.RawMessage, error) {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, a := range j.apps {
		add(a)
	}
	for _, m := range j.mixes {
		for _, a := range m.Apps {
			add(a)
		}
	}
	appSpecs := make([]workloads.AppSpec, 0, len(names))
	for _, n := range names {
		sp, ok := workloads.ByName(n)
		if !ok {
			return nil, fmt.Errorf("app %q vanished from the registry before dispatch", n)
		}
		appSpecs = append(appSpecs, sp)
	}
	f := spec.FromAppSpecs("dispatch", appSpecs)
	// Only the mixes this job sweeps: an unswept spec mix may reference
	// spec-only apps that are not in the forwarded app list, and the
	// worker's spec validation would reject the whole file over them.
	if j.specFile != nil && len(j.mixes) > 0 {
		want := make(map[string]bool, len(j.mixes))
		for _, m := range j.mixes {
			want[m.Name] = true
		}
		for _, m := range j.specFile.Mixes {
			if want[m.Name] {
				f.Mixes = append(f.Mixes, m)
			}
		}
	}
	data, err := spec.Encode(f)
	if err != nil {
		return nil, fmt.Errorf("encoding the forwarded spec: %v", err)
	}
	return data, nil
}

// --- request handling ---

// Error codes carried by the envelope on every non-2xx /v1 response.
// They are API surface: internal/apiclient exposes them verbatim and
// docs/api.md documents them, so treat renames as breaking changes.
const (
	errBadRequest     = "bad_request"      // 400: malformed body, unknown name, bad parameter
	errNotFound       = "not_found"        // 404: no such job
	errJobNotFinished = "job_not_finished" // 409: rows requested before the job is terminal
	errOverloaded     = "overloaded"       // 429: per-endpoint concurrency limit shed
	errQueueFull      = "queue_full"       // 503: job queue at capacity
	errShuttingDown   = "shutting_down"    // 503: daemon is draining
	errInternal       = "internal"         // 500: the daemon's fault, not the caller's
)

// httpErr writes the uniform JSON error envelope:
//
//	{"error": {"code": "bad_request", "message": "unknown app \"x\""}}
//
// Every non-2xx /v1 response goes through here (or httpErrRetry), so
// clients can rely on the shape.
//
//whirl:envelope the designated error-envelope writer; everything else routes errors here
func httpErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": fmt.Sprintf(format, args...)},
	})
}

// httpErrRetry is httpErr plus a Retry-After hint — the back-pressure
// contract for 429 (concurrency shed) and 503 (queue full, draining):
// the condition is transient and the client should come back.
func httpErrRetry(w http.ResponseWriter, status, retryAfterSecs int, code, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	httpErr(w, status, code, format, args...)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit validates a SweepRequest, registers its inline spec,
// and enqueues the job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	var req SweepRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, errBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.buildJob(&req)
	if err != nil {
		httpErr(w, http.StatusBadRequest, errBadRequest, "%v", err)
		return
	}
	j.parentSC, _ = obs.FromContext(r.Context())
	s.enqueue(w, j)
}

// handleCells runs an explicit cell list — one shard of a distributed
// sweep — as a regular job (same queue, SSE stream, and store commit
// path as /v1/sweeps). The coordinator's dispatch layer is the intended
// caller, but the endpoint is plain HTTP: anything that can name cells
// can use it.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	var req dispatch.CellsRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, errBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.buildCellsJob(&req)
	if err != nil {
		httpErr(w, http.StatusBadRequest, errBadRequest, "%v", err)
		return
	}
	j.parentSC, _ = obs.FromContext(r.Context())
	if s.enqueue(w, j) {
		s.metrics.shardJobs.Add(1)
	}
}

// enqueue admits a built job onto the runner queue and answers the
// submit request, reporting whether the job was accepted. Registering
// and enqueueing happen under one lock: Close flips draining before
// closing the queue (also under the lock), so no send can hit a closed
// channel, and a full-queue rejection never has to unwind shared
// state. Job IDs are allocated only for accepted jobs — a rejected
// submit must not burn a sequence number.
func (s *Server) enqueue(w http.ResponseWriter, j *job) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpErrRetry(w, http.StatusServiceUnavailable, 5, errShuttingDown, "daemon is shutting down")
		return false
	}
	// The id must be set before the job is visible to a runner (status
	// reads j.id without further synchronization), so name it before
	// the send and advance seq only once the queue accepts.
	j.id = fmt.Sprintf("j%d", s.seq+1)
	select {
	case s.queue <- j:
		s.seq++
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	default:
		s.mu.Unlock()
		httpErrRetry(w, http.StatusServiceUnavailable, 1, errQueueFull, "job queue is full (%d pending)", s.cfg.QueueDepth)
		return false
	}
	s.mu.Unlock()
	s.metrics.jobsSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     j.id,
		"state":  "queued",
		"total":  j.total,
		"status": "/v1/jobs/" + j.id,
		"stream": "/v1/jobs/" + j.id + "/stream",
		"rows":   "/v1/jobs/" + j.id + "/rows",
	})
	return true
}

// buildCellsJob resolves a shard request: the inline spec is parsed
// (registered at run time, like /v1/sweeps) and every cell must name a
// resolvable app or a mix the spec defines.
func (s *Server) buildCellsJob(req *dispatch.CellsRequest) (*job, error) {
	j := &job{
		req: SweepRequest{
			Spec: req.Spec, Scale: req.Scale, Seed: req.Seed,
			Reconfig: req.Reconfig, NoBypass: req.NoBypass,
		},
		state: "queued", created: time.Now(), changed: make(chan struct{}),
	}
	j.scale = req.Scale
	if j.scale == 0 {
		j.scale = 1
	}
	if j.scale < 0 {
		return nil, fmt.Errorf("scale must be >= 0, got %g", j.scale)
	}
	inSpec := map[string]bool{}
	mixes := map[string]bool{}
	if len(req.Spec) > 0 {
		f, err := spec.Parse(req.Spec)
		if err != nil {
			return nil, err
		}
		j.specFile = f
		for _, a := range f.Apps {
			inSpec[a.Name] = true
		}
		for _, m := range f.Mixes {
			mixes[m.Name] = true
			j.mixes = append(j.mixes, experiments.SweepMix{
				Name: m.Name, Apps: m.Apps, Pins: m.Pins, Chip: m.BuildChip(),
			})
		}
	}
	if len(req.Cells) == 0 {
		return nil, fmt.Errorf("cells request has no cells")
	}
	seen := map[string]bool{}
	for _, c := range req.Cells {
		switch {
		case c.App != "" && c.Mix != "":
			return nil, fmt.Errorf("cell names both app %q and mix %q", c.App, c.Mix)
		case c.App != "":
			if _, ok := workloads.ByName(c.App); !ok && !inSpec[c.App] {
				return nil, fmt.Errorf("unknown app %q", c.App)
			}
		case c.Mix != "":
			if !mixes[c.Mix] {
				return nil, fmt.Errorf("mix %q not defined in the spec", c.Mix)
			}
		default:
			return nil, fmt.Errorf("cell names neither an app nor a mix")
		}
		if _, err := schemes.ParseKind(c.Scheme); err != nil {
			return nil, err
		}
		ident := c.App + "|" + c.Mix + "|" + c.Scheme
		if seen[ident] {
			return nil, fmt.Errorf("duplicate cell %s/%s", c.App+c.Mix, c.Scheme)
		}
		seen[ident] = true
	}
	j.cells = req.Cells
	j.total = len(req.Cells)
	return j, nil
}

// buildJob resolves a request into a runnable job: registers the
// inline spec, resolves apps/mixes/schemes, and sizes the grid.
func (s *Server) buildJob(req *SweepRequest) (*job, error) {
	j := &job{req: *req, state: "queued", created: time.Now(), changed: make(chan struct{})}
	j.scale = req.Scale
	if j.scale == 0 {
		j.scale = 1
	}
	if j.scale < 0 {
		return nil, fmt.Errorf("scale must be >= 0, got %g", j.scale)
	}

	// The spec is parsed and validated now but registered only when the
	// job runs (runJob): a rejected or queue-full submit must not
	// mutate the process-global workload registry other clients sweep.
	var f *spec.File
	var specApps []string
	inSpec := map[string]bool{}
	if len(req.Spec) > 0 {
		var err error
		f, err = spec.Parse(req.Spec)
		if err != nil {
			return nil, err
		}
		j.specFile = f
		for _, a := range f.Apps {
			specApps = append(specApps, a.Name)
			inSpec[a.Name] = true
		}
	}

	// "all" (explicit or defaulted) means the registry plus this spec's
	// own apps — registration is deferred to run time, so the spec's
	// names are unioned in here to match whirlsweep, which registers
	// -spec files before resolving "all".
	allApps := func() []string {
		names := workloads.Names()
		have := make(map[string]bool, len(names))
		for _, n := range names {
			have[n] = true
		}
		for _, n := range specApps {
			if !have[n] {
				names = append(names, n)
			}
		}
		return names
	}
	switch {
	case len(req.Apps) == 1 && req.Apps[0] == "all":
		j.apps = allApps()
	case len(req.Apps) > 0:
		// Exact duplicates would silently sweep (and double-commit) the
		// same cells; reject them instead of deduping quietly.
		seen := make(map[string]bool, len(req.Apps))
		for _, a := range req.Apps {
			if seen[a] {
				return nil, fmt.Errorf("duplicate app %q in request", a)
			}
			seen[a] = true
		}
		j.apps = req.Apps
	case len(req.Mixes) > 0:
		// Mixes only.
	case len(specApps) > 0:
		j.apps = specApps
	default:
		j.apps = allApps()
	}
	for _, a := range j.apps {
		if _, ok := workloads.ByName(a); !ok && !inSpec[a] {
			return nil, fmt.Errorf("unknown app %q", a)
		}
	}

	if len(req.Mixes) > 0 {
		if f == nil {
			return nil, fmt.Errorf("mixes need an inline spec that defines them")
		}
		all := len(req.Mixes) == 1 && req.Mixes[0] == "all"
		want := map[string]bool{}
		for _, m := range req.Mixes {
			want[m] = true
		}
		for _, m := range f.Mixes {
			if all || want[m.Name] {
				j.mixes = append(j.mixes, experiments.SweepMix{
					Name: m.Name, Apps: m.Apps, Pins: m.Pins, Chip: m.BuildChip(),
				})
				delete(want, m.Name)
			}
		}
		if all && len(j.mixes) == 0 {
			return nil, fmt.Errorf("the spec defines no mixes")
		}
		if !all {
			for m := range want {
				return nil, fmt.Errorf("mix %q not defined in the spec", m)
			}
		}
	}

	if len(req.Schemes) > 0 && !(len(req.Schemes) == 1 && req.Schemes[0] == "all") {
		seen := make(map[string]bool, len(req.Schemes))
		for _, name := range req.Schemes {
			k, err := schemes.ParseKind(name)
			if err != nil {
				return nil, err
			}
			// Like duplicate apps: a repeated scheme would cross into
			// identical cells — double-simulated and double-committed
			// locally, and poison for a coordinator (every worker would
			// reject the duplicated shard).
			if seen[k.ID()] {
				return nil, fmt.Errorf("duplicate scheme %q in request", name)
			}
			seen[k.ID()] = true
			j.kinds = append(j.kinds, k)
		}
	}
	nk := len(j.kinds)
	if nk == 0 {
		nk = len(schemes.AllKinds())
	}
	j.total = (len(j.apps) + len(j.mixes)) * nk
	if j.total == 0 {
		return nil, fmt.Errorf("sweep has no apps and no mixes")
	}
	return j, nil
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpErr(w, http.StatusNotFound, errNotFound, "no such job %q", r.PathValue("id"))
	}
	return j
}

// handleJobs lists every job this daemon has accepted, in submission
// order.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]map[string]any, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleStream serves the job's rows as Server-Sent Events: one "row"
// event per completed cell (already-finished rows replay first, so late
// subscribers see the full history), then one final "done" event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpErr(w, http.StatusInternalServerError, errInternal, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	cursor := 0
	for {
		rows, next, terminal := j.wait(cursor, r.Context(), s.baseCtx)
		for i, row := range rows {
			// A client gone mid-replay must release the connection (and
			// the endpoint's inflight slot) now, not after the remaining
			// rows are serialized into a dead socket — on a big replay
			// that lag kept the stream gauge inflated long after the
			// disconnect.
			if r.Context().Err() != nil {
				return
			}
			data, err := json.Marshal(row)
			if err != nil {
				// Never swallow a row: an unmarshalable cell (e.g. a NaN
				// that slipped past the engine's guards) surfaces as an
				// error row so subscribers keep an accurate cell count,
				// and the counter makes the corruption observable —
				// once per corrupt row, not per subscriber replay.
				if j.countMarshalErrOnce(cursor + i) {
					s.metrics.rowMarshalErrs.Add(1)
				}
				errRow := experiments.SweepRow{
					App: row.App, Scheme: row.Scheme, Mix: row.Mix, Key: row.Key,
					Err: fmt.Sprintf("row not representable as JSON: %v", err),
				}
				if data, err = json.Marshal(errRow); err != nil {
					continue // unreachable: error rows marshal
				}
			}
			fmt.Fprintf(w, "id: %d\nevent: row\ndata: %s\n\n", cursor+i+1, data)
		}
		cursor = next
		fl.Flush()
		if terminal {
			st := j.status()
			data, _ := json.Marshal(st)
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
			fl.Flush()
			return
		}
		if r.Context().Err() != nil || s.baseCtx.Err() != nil {
			return
		}
	}
}

// handleRows returns the finished grid in whirlsweep's output formats
// (csv rows are byte-identical to `whirlsweep -format csv`).
func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	rows, state := j.resultRows()
	if rows == nil {
		httpErr(w, http.StatusConflict, errJobNotFinished, "job %s is %s; rows are available once it finishes", j.id, state)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		experiments.WriteRowsJSON(w, rows)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		experiments.WriteRowsCSV(w, rows)
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		experiments.WriteRowsTable(w, rows)
	default:
		httpErr(w, http.StatusBadRequest, errBadRequest, "unknown format %q (valid: json, csv, table)", format)
	}
}

// rawRowsPool recycles the raw-line gathering slice across /v1/results
// requests so the warm path allocates nothing per row or per request
// once the pool and the slice capacity are warm.
var rawRowsPool = sync.Pool{
	New: func() any { s := make([][]byte, 0, 256); return &s },
}

// The JSON framing bytes of /v1/results, hoisted so the handler never
// converts string constants per request (each []byte("...") in the
// body would be one heap allocation under an escaping w.Write).
var (
	resultsOpen  = []byte("[")
	resultsComma = []byte(",\n")
	resultsClose = []byte("]\n")
)

// handleResults queries the persistent store directly; filters are
// ?app=, ?scheme=, ?key=, ?limit=. Rows are served from the store's
// retained JSONL bytes (results.Store.AppendRaw) — the warm path does
// no per-row marshaling or allocation, which is what keeps p99 flat
// when whirlload overdrives this endpoint.
//
//whirl:zeroalloc
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	q := results.Query{
		App:    r.URL.Query().Get("app"),
		Scheme: r.URL.Query().Get("scheme"),
		Key:    r.URL.Query().Get("key"),
	}
	if lim := r.URL.Query().Get("limit"); lim != "" {
		// strconv.Atoi, not Sscanf: "10abc" must be a 400, not a 10.
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			httpErr(w, http.StatusBadRequest, errBadRequest, "bad limit %q (want a non-negative integer)", lim)
			return
		}
		q.Limit = n
	}
	ptr := rawRowsPool.Get().(*[][]byte)
	raws := s.cfg.Store.AppendRaw(q, (*ptr)[:0])
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(resultsOpen)
	for i, raw := range raws {
		if i > 0 {
			w.Write(resultsComma)
		}
		w.Write(raw)
	}
	w.Write(resultsClose)
	// Drop the row references before pooling so the pool does not pin
	// store bytes between requests.
	for i := range raws {
		raws[i] = nil
	}
	*ptr = raws[:0]
	rawRowsPool.Put(ptr)
}

// handleTrace serves a job's span tree as JSONL (one obs span per
// line, sorted by start time): the job's root span, the per-cell stage
// spans beneath it, and — for coordinator jobs — the stitched spans
// fetched back from each worker's shard job. Available as soon as the
// job starts running; before that there is no trace yet.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	sc := j.traceContext()
	if !sc.Valid() {
		httpErr(w, http.StatusConflict, errJobNotFinished, "job %s has not started; no trace recorded yet", j.id)
		return
	}
	spans := s.tracer.Collect(sc.Trace)
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("Trace-Id", sc.Trace.String())
	w.WriteHeader(http.StatusOK)
	buf := make([]byte, 0, 512)
	for i := range spans {
		buf = obs.AppendSpanJSON(buf[:0], &spans[i])
		buf = append(buf, '\n')
		w.Write(buf)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            !draining,
		"version":       s.cfg.Version,
		"go":            runtime.Version(),
		"uptime_s":      int64(time.Since(s.started).Seconds()),
		"goroutines":    runtime.NumGoroutine(),
		"jobs":          jobs,
		"store_records": s.cfg.Store.Len(),
	})
}
