package server

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets bounds the latency histogram: bucket i counts samples
// whose microsecond value has bit-length i, i.e. [2^(i-1), 2^i), with
// bucket 0 holding exact zeros. 40 buckets cover up to ~12.7 days —
// anything longer saturates into the last bucket rather than indexing
// out of range.
const histBuckets = 40

// latHist is a lock-free log-bucketed latency histogram. Writers are
// request goroutines on the serving hot path, so recording is two
// atomic adds and no allocation; quantiles are computed on read from a
// snapshot (/metrics is the only reader).
type latHist struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a non-negative microsecond latency to its bucket.
func bucketOf(us int64) int {
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketBounds returns bucket i's [lo, hi) microsecond range.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(int64(1) << (i - 1)), float64(int64(1) << i)
}

// observe records one latency sample in microseconds.
func (h *latHist) observe(us int64) {
	h.count.Add(1)
	h.sumUS.Add(us)
	h.buckets[bucketOf(us)].Add(1)
}

// snapshot copies the histogram for quantile math. The copy is not a
// perfectly consistent cut under concurrent writes (count and buckets
// are read separately), which is fine for monitoring: quantiles are
// computed against the buckets' own total.
func (h *latHist) snapshot() histSnap {
	var s histSnap
	s.sumUS = h.sumUS.Load()
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
		s.count += s.buckets[i]
	}
	return s
}

// histSnap is an immutable histogram snapshot; its quantile math is
// pure, so it is the unit under test.
type histSnap struct {
	count   int64
	sumUS   int64
	buckets [histBuckets]int64
}

// quantile returns the q-th quantile (q in [0,1]) in microseconds,
// interpolated linearly inside the winning log bucket. Edge cases are
// pinned down rather than left to float drift:
//   - an empty histogram is 0 for every q;
//   - q <= 0 is the lower bound of the first occupied bucket;
//   - q >= 1 is the upper bound of the last occupied bucket;
//   - a single sample answers within its bucket's [lo, hi) for all q.
//
// The estimate's error is bounded by the bucket width (a factor of 2),
// which is the standard trade for constant memory and lock-free writes.
func (s *histSnap) quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the sample we want, 1-based; q=0 still targets the first.
	rank := q * float64(s.count)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, n := range s.buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo, hi := bucketBounds(i)
			// Fraction of the way through this bucket's samples.
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	// Unreachable when counts are consistent; defensively return the
	// last occupied bucket's upper bound.
	for i := histBuckets - 1; i >= 0; i-- {
		if s.buckets[i] > 0 {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	return 0
}

// meanUS returns the exact mean in microseconds (the sum is tracked
// outside the buckets, so the mean has no bucketing error).
func (s *histSnap) meanUS() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sumUS) / float64(s.count)
}

// roundMS converts microseconds to milliseconds with 3 decimal places,
// so /metrics output is stable and diff-friendly.
func roundMS(us float64) float64 {
	return math.Round(us) / 1000
}
