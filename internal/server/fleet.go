package server

import (
	"encoding/json"
	"net/http"
	"time"

	"whirlpool/internal/experiments"
	"whirlpool/internal/fleet"
)

// The /v1/workers surface: the coordinator half of the fleet protocol.
// Workers self-register, renew their lease with heartbeats that carry
// load samples, and can leave gracefully; operators read the roster.
// The worker side lives in fleet.Agent (whirld -join).

// workerRegisterRequest is the POST /v1/workers body.
type workerRegisterRequest struct {
	// URL is the worker's advertised base URL, as this coordinator
	// should dial it.
	URL string `json:"url"`
	// Capacity is the worker's parallel simulation slots (-parallel);
	// 0 means undeclared.
	Capacity int `json:"capacity"`
}

// workerHeartbeatRequest is the POST /v1/workers/{id}/heartbeat body.
type workerHeartbeatRequest struct {
	// Epoch must match the worker's current registration; a stale
	// epoch (the worker re-registered, or this lease already expired
	// and someone else re-registered the URL) gets a 404.
	Epoch int `json:"epoch"`
	// Load is the worker's current load sample.
	Load fleet.Load `json:"load"`
}

// handleWorkerRegister admits a worker into the fleet (or renews and
// re-epochs a known URL), returning its identity and lease terms.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var req workerRegisterRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, errBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpErrRetry(w, http.StatusServiceUnavailable, 5, errShuttingDown, "daemon is shutting down")
		return
	}
	m, ttl, err := s.fleet.Register(req.URL, req.Capacity)
	if err != nil {
		httpErr(w, http.StatusBadRequest, errBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":          m.ID,
		"epoch":       m.Epoch,
		"lease_ttl_s": ttl.Seconds(),
		// The cadence the worker should heartbeat at: a third of the
		// lease, so two consecutive lost beats still leave headroom.
		"heartbeat_s": ttl.Seconds() / 3,
	})
}

// handleWorkerHeartbeat renews a lease and records the load sample. A
// 404 tells the worker its lease is gone (expired, superseded, or
// never existed) — the fleet.Agent reacts by re-registering.
func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var req workerHeartbeatRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, errBadRequest, "bad request body: %v", err)
		return
	}
	id := r.PathValue("id")
	ttl, err := s.fleet.Heartbeat(id, req.Epoch, req.Load)
	if err != nil {
		httpErr(w, http.StatusNotFound, errNotFound, "no live lease for worker %q at epoch %d (re-register)", id, req.Epoch)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"lease_ttl_s": ttl.Seconds()})
}

// handleWorkerDeregister removes a worker gracefully (it is draining).
func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.fleet.Deregister(id); err != nil {
		httpErr(w, http.StatusNotFound, errNotFound, "no live lease for worker %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": "left"})
}

// handleWorkersList reports the full roster — alive and dead — plus
// the alive count, in registration order.
func (s *Server) handleWorkersList(w http.ResponseWriter, r *http.Request) {
	workers := s.fleet.Workers()
	alive := 0
	for _, wi := range workers {
		if wi.Alive {
			alive++
		}
	}
	if workers == nil {
		workers = []fleet.WorkerInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"alive":     alive,
		"lease_ttl": s.fleet.LeaseTTL().Seconds(),
		"workers":   workers,
	})
}

// Fleet exposes the daemon's worker registry (whirld wires it into
// logging/tests; dispatch consumes it as a fleet.Membership).
func (s *Server) Fleet() *fleet.Registry { return s.fleet }

// Load samples this daemon's current load for fleet heartbeats (the
// worker side of the protocol): cells of running jobs not yet done,
// cells of queued jobs, and recent completion throughput measured
// between successive calls.
func (s *Server) Load() fleet.Load {
	var inflight, queued int
	s.mu.Lock()
	for _, id := range s.order {
		state, total, done := s.jobs[id].progress()
		switch state {
		case "running":
			if n := total - done; n > 0 {
				inflight += n
			}
		case "queued":
			queued += total
		}
	}
	s.mu.Unlock()

	done := s.cellsDone.Load()
	now := time.Now()
	var rate float64
	s.loadMu.Lock()
	if !s.loadAt.IsZero() {
		if dt := now.Sub(s.loadAt).Seconds(); dt > 0 {
			rate = float64(done-s.loadCells) / dt
		}
	}
	s.loadAt, s.loadCells = now, done
	s.loadMu.Unlock()
	return fleet.Load{InflightCells: inflight, QueuedCells: queued, CellsPerSec: rate}
}

// recordWorkerStats folds one finished coordinator job's per-worker
// split into the daemon-lifetime aggregates served by /metrics
// (dispatch.workers.per_worker).
func (s *Server) recordWorkerStats(stats []experiments.WorkerStats) {
	s.dispMu.Lock()
	defer s.dispMu.Unlock()
	for _, ws := range stats {
		agg := s.dispWorkers[ws.Worker]
		if agg == nil {
			agg = &workerAgg{}
			if s.dispWorkers == nil {
				s.dispWorkers = map[string]*workerAgg{}
			}
			s.dispWorkers[ws.Worker] = agg
			s.dispOrder = append(s.dispOrder, ws.Worker)
		}
		agg.served += int64(ws.Served)
		agg.computed += int64(ws.Computed)
		agg.errors += int64(ws.Errors)
		agg.redispatched += int64(ws.Redispatched)
		agg.dead = ws.Dead
	}
}

// workerAgg is one worker URL's daemon-lifetime dispatch tally.
type workerAgg struct {
	served, computed, errors, redispatched int64
	// dead reflects the worker's fate in the most recent job that
	// dispatched to it.
	dead bool
}
