package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whirlpool/internal/results"
)

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// newElasticCoordinator boots a daemon with no static workers and the
// given lease TTL; workers are expected to join via POST /v1/workers.
func newElasticCoordinator(t *testing.T, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: 2, LeaseTTL: ttl, Version: "coord"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		store.Close()
	})
	return srv, ts
}

// TestWorkersEndpointLifecycle drives the full lease protocol over
// HTTP: register, list, heartbeat, stale-epoch fencing, deregister.
func TestWorkersEndpointLifecycle(t *testing.T) {
	_, ts := newElasticCoordinator(t, 10*time.Second)

	// Register.
	code, reg := postJSON(t, ts.URL+"/v1/workers", `{"url":"http://w:9000","capacity":3}`)
	if code != http.StatusOK {
		t.Fatalf("register: %d: %v", code, reg)
	}
	id, _ := reg["id"].(string)
	if id == "" || reg["epoch"] != float64(1) || reg["lease_ttl_s"] != float64(10) {
		t.Fatalf("register response = %v", reg)
	}
	if hb := reg["heartbeat_s"].(float64); hb <= 0 || hb > 10.0/3+0.01 {
		t.Fatalf("heartbeat_s = %v", hb)
	}

	// Listed as alive, with the declared capacity.
	var list map[string]any
	getJSON(t, ts.URL+"/v1/workers", &list)
	if list["alive"] != float64(1) {
		t.Fatalf("workers list = %v", list)
	}
	ws := list["workers"].([]any)[0].(map[string]any)
	if ws["id"] != id || ws["url"] != "http://w:9000" || ws["capacity"] != float64(3) || ws["alive"] != true {
		t.Fatalf("worker entry = %v", ws)
	}

	// Heartbeat at the right epoch renews; load sample is surfaced.
	code, hb := postJSON(t, ts.URL+"/v1/workers/"+id+"/heartbeat",
		`{"epoch":1,"load":{"inflight_cells":5,"queued_cells":2,"cells_per_sec":1.5}}`)
	if code != http.StatusOK || hb["lease_ttl_s"] != float64(10) {
		t.Fatalf("heartbeat: %d: %v", code, hb)
	}
	getJSON(t, ts.URL+"/v1/workers", &list)
	ws = list["workers"].([]any)[0].(map[string]any)
	load := ws["load"].(map[string]any)
	if load["inflight_cells"] != float64(5) || load["queued_cells"] != float64(2) {
		t.Fatalf("load after heartbeat = %v", ws)
	}

	// A stale epoch is fenced with 404.
	if code, body := postJSON(t, ts.URL+"/v1/workers/"+id+"/heartbeat", `{"epoch":0}`); code != http.StatusNotFound {
		t.Fatalf("stale-epoch heartbeat: %d: %v", code, body)
	}

	// Graceful leave; later heartbeats are 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: %d", resp.StatusCode)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/workers/"+id+"/heartbeat", `{"epoch":1}`); code != http.StatusNotFound {
		t.Fatalf("heartbeat after leave: %d", code)
	}
	getJSON(t, ts.URL+"/v1/workers", &list)
	if list["alive"] != float64(0) {
		t.Fatalf("alive after leave = %v", list)
	}
}

// TestWorkersEndpointValidation: malformed registrations are 400s.
func TestWorkersEndpointValidation(t *testing.T) {
	_, ts := newElasticCoordinator(t, time.Second)
	for _, body := range []string{
		`{"url":""}`,
		`{"url":"not-a-url"}`,
		`{"url":"ftp://w:1"}`,
		`{"url":"http://w:1","capacity":1,"bogus":true}`,
		`not json`,
	} {
		if code, resp := postJSON(t, ts.URL+"/v1/workers", body); code != http.StatusBadRequest {
			t.Errorf("register %q: %d %v, want 400", body, code, resp)
		}
	}
}

// TestElasticDispatch: a worker that joins by registration alone (no
// -workers flag anywhere) receives a sweep's cells, and the fleet
// metrics trace the membership.
func TestElasticDispatch(t *testing.T) {
	worker, wstore := newWorkerServer(t)
	srv, coord := newElasticCoordinator(t, 10*time.Second)

	// Before any registration the daemon simulates locally.
	if n := len(srv.fleet.Snapshot().Members); n != 0 {
		t.Fatalf("fresh elastic coordinator has %d members", n)
	}

	code, reg := postJSON(t, coord.URL+"/v1/workers", `{"url":"`+worker.URL+`","capacity":2}`)
	if code != http.StatusOK {
		t.Fatalf("join: %d: %v", code, reg)
	}

	id, _ := postSweep(t, coord, `{"apps":["delaunay","MIS"],"scale":0.02}`)["id"].(string)
	st := awaitJob(t, coord, id)
	if st["state"] != "done" {
		t.Fatalf("elastic job = %v", st)
	}
	total := int(st["total"].(float64))
	if st["computed"] != float64(total) {
		t.Fatalf("elastic counters = %v", st)
	}
	// Every cell went through the joined worker, not local simulation.
	if wstore.Len() < total {
		t.Fatalf("worker store has %d rows, want >= %d", wstore.Len(), total)
	}

	var m map[string]any
	getJSON(t, coord.URL+"/metrics", &m)
	fl := m["fleet"].(map[string]any)
	if fl["alive"] != float64(1) || fl["registrations"] != float64(1) {
		t.Fatalf("fleet metrics = %v", fl)
	}
	dw := m["dispatch"].(map[string]any)["workers"].(map[string]any)
	if dw["alive"] != float64(1) {
		t.Fatalf("dispatch.workers = %v", dw)
	}
	per := dw["per_worker"].(map[string]any)
	if _, ok := per[worker.URL]; !ok {
		t.Fatalf("per_worker missing %s: %v", worker.URL, per)
	}
	var flat map[string]any
	getJSON(t, coord.URL+"/metrics?format=flat", &flat)
	if flat["whirld.fleet.alive"] != float64(1) || flat["whirld.dispatch.workers.alive"] != float64(1) {
		t.Fatalf("flat fleet metrics missing: alive=%v workers.alive=%v",
			flat["whirld.fleet.alive"], flat["whirld.dispatch.workers.alive"])
	}
	if _, ok := flat["whirld.dispatch.worker."+worker.URL+".computed"]; !ok {
		t.Fatal("flat per-worker counters missing")
	}
}

// TestLeaseExpiryFailsOver: a joined worker that stops heartbeating is
// dead once its lease lapses — the roster says so, the metrics count
// it, and the next sweep runs without it (locally, here, since it was
// the only member).
func TestLeaseExpiryFailsOver(t *testing.T) {
	srv, coord := newElasticCoordinator(t, 100*time.Millisecond)
	code, reg := postJSON(t, coord.URL+"/v1/workers", `{"url":"http://w:9000","capacity":1}`)
	if code != http.StatusOK {
		t.Fatalf("join: %d: %v", code, reg)
	}

	deadline := time.Now().Add(5 * time.Second)
	for len(srv.fleet.Snapshot().Members) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var list map[string]any
	getJSON(t, coord.URL+"/v1/workers", &list)
	if list["alive"] != float64(0) {
		t.Fatalf("roster after expiry = %v", list)
	}
	ws := list["workers"].([]any)[0].(map[string]any)
	if ws["alive"] != false || ws["reason"] != "lease expired" {
		t.Fatalf("expired worker entry = %v", ws)
	}
	var m map[string]any
	getJSON(t, coord.URL+"/metrics", &m)
	fl := m["fleet"].(map[string]any)
	if fl["leases_expired"] != float64(1) || fl["dead"] != float64(1) {
		t.Fatalf("fleet metrics after expiry = %v", fl)
	}

	// With the fleet empty again, sweeps simulate locally.
	id, _ := postSweep(t, coord, `{"apps":["delaunay"],"schemes":["jigsaw"],"scale":0.02}`)["id"].(string)
	if st := awaitJob(t, coord, id); st["state"] != "done" || st["computed"] != float64(1) {
		t.Fatalf("local fallback job = %v", st)
	}
}

// TestStaticWorkerURLValidatedAtStartup: a bad -workers URL fails
// daemon construction, preserving the pre-fleet startup contract.
func TestStaticWorkerURLValidatedAtStartup(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := New(Config{Store: store, WorkerURLs: []string{"not-a-url"}}); err == nil ||
		!strings.Contains(err.Error(), "not-a-url") {
		t.Fatalf("bad static worker URL accepted: %v", err)
	}
}

// TestRegisterRejectedWhileDraining: a draining daemon refuses new
// fleet members the same way it refuses new jobs.
func TestRegisterRejectedWhileDraining(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	code, body := postJSON(t, ts.URL+"/v1/workers", `{"url":"http://w:9000"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("register while draining: %d: %v", code, body)
	}
}

// TestServerLoadSamples: Load reports queued/in-flight cells and a
// completion rate — the sample a worker whirld ships in heartbeats.
func TestServerLoadSamples(t *testing.T) {
	srv, ts := newElasticCoordinator(t, time.Second)
	if l := srv.Load(); l.InflightCells != 0 || l.QueuedCells != 0 {
		t.Fatalf("idle load = %+v", l)
	}
	id, _ := postSweep(t, ts, `{"apps":["delaunay"],"schemes":["jigsaw"],"scale":0.02}`)["id"].(string)
	if st := awaitJob(t, ts, id); st["state"] != "done" {
		t.Fatalf("job = %v", st)
	}
	// After completion nothing is in flight, and the rate numerator
	// (cellsDone) advanced.
	l := srv.Load()
	if l.InflightCells != 0 || l.QueuedCells != 0 {
		t.Fatalf("post-job load = %+v", l)
	}
	if srv.cellsDone.Load() == 0 {
		t.Fatal("cellsDone never advanced")
	}
	if l2 := srv.Load(); l2.CellsPerSec < 0 {
		t.Fatalf("negative rate: %+v", l2)
	}
}
