package server

import (
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"whirlpool/internal/obs"
)

// endpoint is the per-route serving state: a latency histogram, an
// in-flight gauge, and the concurrency limit that sheds load when the
// route is overdriven. One endpoint may cover several routes (all the
// /v1/jobs reads are one "jobs" endpoint).
type endpoint struct {
	name string
	// spanName is the request span's name ("http." + name), precomputed
	// so span emission never concatenates on the request path.
	spanName string
	limit    int64 // 0 = unlimited
	inflight atomic.Int64
	requests atomic.Int64
	shed     atomic.Int64
	hist     latHist
}

// defaultLimits are the per-endpoint concurrency caps. The point is
// isolation, not throttling: each cap is far above a healthy endpoint's
// concurrency, so shedding only starts when one request class is
// overdriven — and the other endpoints, each behind their own cap,
// keep serving. 0 means unlimited (health and metrics must stay
// reachable precisely when everything else is shedding).
var defaultLimits = map[string]int{
	"sweeps":  16,
	"cells":   16,
	"jobs":    256,
	"stream":  128,
	"rows":    64,
	"trace":   64,
	"results": 256,
	"workers": 256,
	"healthz": 0,
	"metrics": 0,
}

// EndpointNames returns the daemon's endpoint names, sorted — the valid
// keys for Config.EndpointLimits (and whirld's -inflight flag).
func EndpointNames() []string {
	names := make([]string, 0, len(defaultLimits))
	for name := range defaultLimits {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// newEndpoint builds (or, for routes sharing a name, reuses) one
// endpoint, applying the Config override when present (negative
// overrides mean unlimited).
func (s *Server) newEndpoint(name string) *endpoint {
	for _, ep := range s.endpoints {
		if ep.name == name {
			return ep
		}
	}
	limit, ok := s.cfg.EndpointLimits[name]
	if !ok {
		limit = defaultLimits[name]
	}
	if limit < 0 {
		limit = 0
	}
	ep := &endpoint{name: name, limit: int64(limit), spanName: "http." + name}
	s.endpoints = append(s.endpoints, ep)
	return ep
}

// route registers pattern on the mux wrapped in the endpoint's
// instrumentation: admission first (shed with 429 + Retry-After beyond
// the concurrency limit), then latency measurement into the histogram
// and a request span into the tracer.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(s.newEndpoint(name), false, h))
}

// routeTraced is route plus span-context injection: the handler's
// request context carries the request span (obs.FromContext), so jobs
// built there inherit the caller's trace. Injection costs ~3 small
// allocations per request (context.WithValue + Request.WithContext),
// which is why it is opt-in per route instead of universal — the warm
// /v1/results path must stay allocation-free.
func (s *Server) routeTraced(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(s.newEndpoint(name), true, h))
}

// instrument wraps h in ep's admission control, latency accounting,
// and per-request span. The span honors an inbound W3C traceparent
// header (joining the caller's trace); a malformed or absent header
// starts a fresh root. Split out from route so tests can measure the
// wrapper's allocation cost directly.
func (s *Server) instrument(ep *endpoint, injectCtx bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ep.requests.Add(1)
		if ep.limit > 0 {
			if ep.inflight.Add(1) > ep.limit {
				ep.inflight.Add(-1)
				ep.shed.Add(1)
				s.metrics.shed.Add(1)
				httpErrRetry(w, http.StatusTooManyRequests, 1, "overloaded",
					"%s is at its concurrency limit (%d in flight); retry later", ep.name, ep.limit)
				return
			}
			defer ep.inflight.Add(-1)
		}
		// "Traceparent" (pre-canonicalized) keeps Header.Get from
		// re-canonicalizing — and allocating — on every request.
		parent, _ := obs.ParseTraceparent(r.Header.Get("Traceparent"))
		sp := s.tracer.Start(parent, ep.spanName)
		sp.SetStr("path", r.URL.Path)
		if injectCtx {
			r = r.WithContext(obs.NewContext(r.Context(), sp.Context()))
		}
		start := time.Now()
		h(w, r)
		lat := time.Since(start)
		ep.hist.observe(lat.Microseconds())
		sp.EndDuration(lat)
	}
}

// endpointStats renders one endpoint's /metrics object.
func (ep *endpoint) stats() map[string]any {
	snap := ep.hist.snapshot()
	out := map[string]any{
		"requests": ep.requests.Load(),
		"inflight": ep.inflight.Load(),
		"shed":     ep.shed.Load(),
		"latency": map[string]any{
			"count":   snap.count,
			"mean_ms": roundMS(snap.meanUS()),
			"p50_ms":  roundMS(snap.quantile(0.50)),
			"p95_ms":  roundMS(snap.quantile(0.95)),
			"p99_ms":  roundMS(snap.quantile(0.99)),
		},
	}
	if ep.limit > 0 {
		out["limit"] = ep.limit
	}
	return out
}

// endpointsByName returns the endpoints sorted by name for stable
// /metrics output.
func (s *Server) endpointsByName() []*endpoint {
	eps := append([]*endpoint(nil), s.endpoints...)
	sort.Slice(eps, func(i, j int) bool { return eps[i].name < eps[j].name })
	return eps
}
