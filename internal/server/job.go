package server

import (
	"context"
	"sync"
	"time"

	"whirlpool/internal/experiments"
	"whirlpool/internal/obs"
	"whirlpool/internal/schemes"
	"whirlpool/internal/spec"
)

// job is one submitted sweep. Rows accumulate in arrival order for SSE
// replay; the grid-ordered result lands when the sweep finishes.
type job struct {
	id    string
	req   SweepRequest
	scale float64
	apps  []string
	mixes []experiments.SweepMix
	kinds []schemes.Kind
	// cells, when non-nil, marks a shard job (POST /v1/cells): the grid
	// is exactly this list, and it always runs locally — never
	// re-dispatched — even on a coordinator.
	cells   []experiments.SweepCell
	total   int
	created time.Time
	// specFile is the parsed inline spec, registered when the job runs
	// (not at submit, so rejected submits don't touch the registry).
	specFile *spec.File
	// parentSC is the span context of the submit request (which itself
	// honors any inbound traceparent): the job's root span is parented
	// under it, so a coordinator-submitted shard job joins the
	// coordinator's trace. Zero when the submit was untraced.
	parentSC obs.SpanContext

	mu        sync.Mutex
	state     string // queued | running | done | failed | canceled
	completed []experiments.SweepRow
	result    []experiments.SweepRow
	stats     experiments.SweepStats
	msg       string
	cancelReq bool
	cancel    context.CancelFunc
	// badCounted tracks which row ordinals were already counted as
	// marshal failures, so the metrics counter grows per corrupt row,
	// not per SSE subscriber replaying it.
	badCounted map[int]bool
	// changed is closed and replaced on every state/row update — a
	// broadcast that wakes all SSE subscribers at once.
	changed chan struct{}
	// traceSC is the job's own root span context, set when the job
	// starts running; GET /v1/jobs/{id}/trace collects by its trace ID.
	traceSC obs.SpanContext
}

func isTerminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

// isDone reports whether the job reached a terminal state.
func (j *job) isDone() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return isTerminal(j.state)
}

// bump wakes every waiter. Callers hold j.mu.
func (j *job) bump() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// start transitions queued → running and arms cancellation (honoring a
// cancel that arrived while the job was still queued).
func (j *job) start(cancel context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = cancel
	if j.cancelReq {
		cancel()
	}
	j.state = "running"
	j.bump()
}

// addRow records one finished cell (called from sweep workers,
// serialized by the engine).
func (j *job) addRow(done, total int, row experiments.SweepRow) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completed = append(j.completed, row)
	j.bump()
}

// progress snapshots the job's state and cell counts (for fleet load
// samples).
func (j *job) progress() (state string, total, done int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.total, len(j.completed)
}

// finish records the terminal state and the grid-ordered result.
func (j *job) finish(rows []experiments.SweepRow, stats experiments.SweepStats, state, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = rows
	j.stats = stats
	j.state = state
	j.msg = msg
	j.bump()
}

// requestCancel cancels a running job, or marks a queued one so it
// cancels the moment a runner picks it up.
func (j *job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelReq = true
	if j.cancel != nil {
		j.cancel()
	}
}

// setTrace records the job's root span context (once, when it starts).
func (j *job) setTrace(sc obs.SpanContext) {
	j.mu.Lock()
	j.traceSC = sc
	j.mu.Unlock()
}

// traceContext returns the job's root span context (zero before the
// job has started running).
func (j *job) traceContext() obs.SpanContext {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceSC
}

// countMarshalErrOnce reports whether the row at this ordinal has not
// been counted as a marshal failure yet, marking it counted.
func (j *job) countMarshalErrOnce(idx int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.badCounted[idx] {
		return false
	}
	if j.badCounted == nil {
		j.badCounted = map[int]bool{}
	}
	j.badCounted[idx] = true
	return true
}

// resultRows returns the grid-ordered rows once the job is terminal
// (nil otherwise, with the current state for the error message).
func (j *job) resultRows() ([]experiments.SweepRow, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !isTerminal(j.state) || j.result == nil {
		return nil, j.state
	}
	return j.result, j.state
}

// status snapshots the job for /v1/jobs/{id} and the SSE done event.
func (j *job) status() map[string]any {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := map[string]any{
		"id":           j.id,
		"state":        j.state,
		"total":        j.total,
		"done":         len(j.completed),
		"served":       j.stats.Served,
		"computed":     j.stats.Computed,
		"cell_errors":  j.stats.Errors,
		"created_unix": j.created.Unix(),
	}
	if j.stats.Canceled > 0 {
		st["cells_canceled"] = j.stats.Canceled
	}
	if j.traceSC.Valid() {
		st["trace_id"] = j.traceSC.Trace.String()
	}
	if len(j.stats.Workers) > 0 {
		st["workers"] = j.stats.Workers
	}
	if j.msg != "" {
		st["error"] = j.msg
	}
	return st
}

// wait blocks until the job has rows past cursor or reaches a terminal
// state, returning the new rows, the advanced cursor, and whether the
// state is terminal. Both contexts abort the wait (returning no rows,
// non-terminal).
func (j *job) wait(cursor int, reqCtx, baseCtx context.Context) ([]experiments.SweepRow, int, bool) {
	aborted := false
	j.mu.Lock()
	for {
		if len(j.completed) > cursor || isTerminal(j.state) {
			rows := append([]experiments.SweepRow(nil), j.completed[cursor:]...)
			term := isTerminal(j.state)
			j.mu.Unlock()
			return rows, cursor + len(rows), term
		}
		if aborted {
			j.mu.Unlock()
			return nil, cursor, false
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-reqCtx.Done():
			// A context wake can race the job's own finish() bump (both
			// fire during shutdown); re-check once under the lock so a
			// finished job still delivers its final rows + done event.
			aborted = true
		case <-baseCtx.Done():
			aborted = true
		}
		j.mu.Lock()
	}
}
