package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"runtime"
	"sync/atomic"
)

// metrics are the daemon's monotonic counters, served by /metrics in
// expvar style (flat JSON object; the process-wide expvar memstats ride
// along).
type metrics struct {
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	rowsServed    atomic.Int64
	rowsComputed  atomic.Int64
	// rowMarshalErrs counts SSE rows that could not be marshaled and
	// were surfaced as error rows instead of being dropped.
	rowMarshalErrs atomic.Int64
	// shardJobs counts POST /v1/cells submissions accepted (this daemon
	// acting as a distributed worker).
	shardJobs atomic.Int64
	// redispatched counts cells moved off dead workers to survivors
	// (this daemon acting as a coordinator); workersLost counts the
	// worker deaths that caused them.
	redispatched atomic.Int64
	workersLost  atomic.Int64
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Store.Stats()
	out := map[string]any{
		"whirld.jobs.submitted":        s.metrics.jobsSubmitted.Load(),
		"whirld.jobs.done":             s.metrics.jobsDone.Load(),
		"whirld.jobs.failed":           s.metrics.jobsFailed.Load(),
		"whirld.jobs.canceled":         s.metrics.jobsCanceled.Load(),
		"whirld.rows.served":           s.metrics.rowsServed.Load(),
		"whirld.rows.computed":         s.metrics.rowsComputed.Load(),
		"whirld.rows.marshal_errors":   s.metrics.rowMarshalErrs.Load(),
		"whirld.jobs.shards":           s.metrics.shardJobs.Load(),
		"whirld.dispatch.redispatched": s.metrics.redispatched.Load(),
		"whirld.dispatch.workers_lost": s.metrics.workersLost.Load(),
		"store.hits":                   st.Hits,
		"store.misses":                 st.Misses,
		"store.puts":                   st.Puts,
		"store.corrupt_rows":           st.CorruptRows,
		"store.index_rebuilds":         st.IndexRebuilds,
		"store.records":                st.Records,
		"goroutines":                   runtime.NumGoroutine(),
	}
	if ms := expvar.Get("memstats"); ms != nil {
		out["memstats"] = json.RawMessage(ms.String())
	}
	writeJSON(w, http.StatusOK, out)
}
