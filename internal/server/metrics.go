package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// metrics are the daemon's monotonic counters, served by /metrics as
// namespaced JSON (server.* / jobs.* / dispatch.* / store.*), with the
// pre-v1 flat expvar-style keys still available via ?format=flat (the
// mapping is documented in docs/server.md).
type metrics struct {
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	rowsServed    atomic.Int64
	rowsComputed  atomic.Int64
	// rowMarshalErrs counts SSE rows that could not be marshaled and
	// were surfaced as error rows instead of being dropped.
	rowMarshalErrs atomic.Int64
	// shardJobs counts POST /v1/cells submissions accepted (this daemon
	// acting as a distributed worker).
	shardJobs atomic.Int64
	// redispatched counts cells moved off dead workers to survivors
	// (this daemon acting as a coordinator); workersLost counts the
	// worker deaths that caused them.
	redispatched atomic.Int64
	workersLost  atomic.Int64
	// rebalances counts dispatch rounds that ran against a changed
	// fleet membership (a worker joined, died, or left mid-job and the
	// pending cells were re-routed).
	rebalances atomic.Int64
	// shed counts requests rejected by a per-endpoint concurrency limit
	// (429 + Retry-After) — distinct from queue-full 503s, which are
	// jobs the daemon accepted the connection for but had no queue
	// space to hold.
	shed atomic.Int64
}

// handleMetrics serves the namespaced metrics document:
//
//	{
//	  "server":   {uptime, goroutines, shed, endpoints.<name>.{requests,inflight,shed,limit,latency{p50/p95/p99}}},
//	  "jobs":     {submitted, done, failed, canceled, shards, rows{served, computed, marshal_errors}},
//	  "dispatch": {redispatched, workers_lost, workers{alive, per_worker.<url>.{served,computed,errors,redispatched,dead}}},
//	  "fleet":    {alive, dead, registrations, heartbeats, leases_expired, departures, rebalances},
//	  "store":    {hits, misses, puts, corrupt_rows, index_rebuilds, records},
//	  "memstats": {...}
//	}
//
// ?format=flat keeps the pre-v1 flat keys (whirld.jobs.submitted, ...)
// byte-compatible for existing scrapers, with the new counters flattened
// alongside them.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, s.metricsTree())
	case "flat":
		writeJSON(w, http.StatusOK, s.metricsFlat())
	case "prom":
		s.writeProm(w)
	default:
		httpErr(w, http.StatusBadRequest, errBadRequest, "unknown format %q (valid: json, flat, prom)", format)
	}
}

// perWorkerMetrics snapshots the daemon-lifetime per-worker dispatch
// aggregates, keyed by worker URL.
func (s *Server) perWorkerMetrics() map[string]any {
	s.dispMu.Lock()
	defer s.dispMu.Unlock()
	out := make(map[string]any, len(s.dispOrder))
	for _, url := range s.dispOrder {
		agg := s.dispWorkers[url]
		out[url] = map[string]any{
			"served":       agg.served,
			"computed":     agg.computed,
			"errors":       agg.errors,
			"redispatched": agg.redispatched,
			"dead":         agg.dead,
		}
	}
	return out
}

// metricsTree builds the namespaced document.
func (s *Server) metricsTree() map[string]any {
	st := s.cfg.Store.Stats()
	fst := s.fleet.Stats()
	eps := map[string]any{}
	for _, ep := range s.endpointsByName() {
		eps[ep.name] = ep.stats()
	}
	out := map[string]any{
		"server": map[string]any{
			"uptime_s":   int64(time.Since(s.started).Seconds()),
			"goroutines": runtime.NumGoroutine(),
			"shed":       s.metrics.shed.Load(),
			"spans":      s.tracer.Total(),
			"endpoints":  eps,
		},
		"runtime": map[string]any{
			"goroutines": runtime.NumGoroutine(),
		},
		"jobs": map[string]any{
			"submitted": s.metrics.jobsSubmitted.Load(),
			"done":      s.metrics.jobsDone.Load(),
			"failed":    s.metrics.jobsFailed.Load(),
			"canceled":  s.metrics.jobsCanceled.Load(),
			"shards":    s.metrics.shardJobs.Load(),
			"rows": map[string]any{
				"served":         s.metrics.rowsServed.Load(),
				"computed":       s.metrics.rowsComputed.Load(),
				"marshal_errors": s.metrics.rowMarshalErrs.Load(),
			},
		},
		"dispatch": map[string]any{
			"redispatched": s.metrics.redispatched.Load(),
			"workers_lost": s.metrics.workersLost.Load(),
			"workers": map[string]any{
				"alive":      fst.Alive,
				"per_worker": s.perWorkerMetrics(),
			},
		},
		"fleet": map[string]any{
			"alive":          fst.Alive,
			"dead":           fst.Dead,
			"registrations":  fst.Registrations,
			"heartbeats":     fst.Heartbeats,
			"leases_expired": fst.LeasesExpired,
			"departures":     fst.Departures,
			"rebalances":     s.metrics.rebalances.Load(),
		},
		"store": map[string]any{
			"hits":           st.Hits,
			"misses":         st.Misses,
			"puts":           st.Puts,
			"corrupt_rows":   st.CorruptRows,
			"index_rebuilds": st.IndexRebuilds,
			"records":        st.Records,
		},
	}
	if ms := expvar.Get("memstats"); ms != nil {
		out["memstats"] = json.RawMessage(ms.String())
	}
	return out
}

// metricsFlat renders the legacy flat document: the exact pre-v1 keys,
// plus the new server.* counters flattened with the same dotted-path
// convention.
func (s *Server) metricsFlat() map[string]any {
	st := s.cfg.Store.Stats()
	fst := s.fleet.Stats()
	out := map[string]any{
		"whirld.jobs.submitted":         s.metrics.jobsSubmitted.Load(),
		"whirld.jobs.done":              s.metrics.jobsDone.Load(),
		"whirld.jobs.failed":            s.metrics.jobsFailed.Load(),
		"whirld.jobs.canceled":          s.metrics.jobsCanceled.Load(),
		"whirld.rows.served":            s.metrics.rowsServed.Load(),
		"whirld.rows.computed":          s.metrics.rowsComputed.Load(),
		"whirld.rows.marshal_errors":    s.metrics.rowMarshalErrs.Load(),
		"whirld.jobs.shards":            s.metrics.shardJobs.Load(),
		"whirld.dispatch.redispatched":  s.metrics.redispatched.Load(),
		"whirld.dispatch.workers_lost":  s.metrics.workersLost.Load(),
		"whirld.dispatch.workers.alive": fst.Alive,
		"whirld.fleet.alive":            fst.Alive,
		"whirld.fleet.dead":             fst.Dead,
		"whirld.fleet.registrations":    fst.Registrations,
		"whirld.fleet.heartbeats":       fst.Heartbeats,
		"whirld.fleet.leases_expired":   fst.LeasesExpired,
		"whirld.fleet.departures":       fst.Departures,
		"whirld.fleet.rebalances":       s.metrics.rebalances.Load(),
		"store.hits":                    st.Hits,
		"store.misses":                  st.Misses,
		"store.puts":                    st.Puts,
		"store.corrupt_rows":            st.CorruptRows,
		"store.index_rebuilds":          st.IndexRebuilds,
		"store.records":                 st.Records,
		"goroutines":                    runtime.NumGoroutine(),
		"runtime.goroutines":            runtime.NumGoroutine(),
		"server.shed":                   s.metrics.shed.Load(),
		"server.spans":                  s.tracer.Total(),
	}
	s.dispMu.Lock()
	for _, url := range s.dispOrder {
		agg := s.dispWorkers[url]
		prefix := "whirld.dispatch.worker." + url
		out[prefix+".served"] = agg.served
		out[prefix+".computed"] = agg.computed
		out[prefix+".errors"] = agg.errors
		out[prefix+".redispatched"] = agg.redispatched
		dead := 0
		if agg.dead {
			dead = 1
		}
		out[prefix+".dead"] = dead
	}
	s.dispMu.Unlock()
	for _, ep := range s.endpointsByName() {
		snap := ep.hist.snapshot()
		prefix := "server.endpoints." + ep.name
		out[prefix+".requests"] = ep.requests.Load()
		out[prefix+".inflight"] = ep.inflight.Load()
		out[prefix+".shed"] = ep.shed.Load()
		if ep.limit > 0 {
			out[prefix+".limit"] = ep.limit
		}
		out[fmt.Sprintf("%s.latency.count", prefix)] = snap.count
		out[fmt.Sprintf("%s.latency.p50_ms", prefix)] = roundMS(snap.quantile(0.50))
		out[fmt.Sprintf("%s.latency.p95_ms", prefix)] = roundMS(snap.quantile(0.95))
		out[fmt.Sprintf("%s.latency.p99_ms", prefix)] = roundMS(snap.quantile(0.99))
	}
	if ms := expvar.Get("memstats"); ms != nil {
		out["memstats"] = json.RawMessage(ms.String())
	}
	return out
}
