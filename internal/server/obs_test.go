package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whirlpool/internal/experiments"
	"whirlpool/internal/obs"
)

// fetchTrace pulls a finished job's span tree off the trace endpoint.
func fetchTrace(t *testing.T, ts *httptest.Server, id string) []obs.Span {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("trace content-type = %q", ct)
	}
	spans, err := obs.ParseSpans(resp.Body)
	if err != nil {
		t.Fatalf("trace did not parse as span JSONL: %v", err)
	}
	return spans
}

// TestTraceEndpointTree: a finished sweep's trace is one tree — a
// single root request span, the job span under it, and the engine's
// per-cell stage spans under the job — all sharing one trace ID.
func TestTraceEndpointTree(t *testing.T) {
	_, ts, _ := newTestServer(t)
	id, _ := postSweep(t, ts, smallSweep)["id"].(string)
	st := awaitJob(t, ts, id)
	if st["state"] != "done" {
		t.Fatalf("job state = %v", st)
	}
	spans := fetchTrace(t, ts, id)
	if len(spans) == 0 {
		t.Fatal("trace endpoint returned no spans")
	}

	trace := spans[0].Trace
	byID := map[obs.SpanID]obs.Span{}
	names := map[string]int{}
	roots := 0
	for _, sp := range spans {
		if sp.Trace != trace {
			t.Fatalf("span %s is in trace %s, want %s", sp.Name, sp.Trace, trace)
		}
		byID[sp.ID] = sp
		names[sp.Name]++
		if sp.Parent.IsZero() {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want exactly 1 (names: %v)", roots, names)
	}
	for _, want := range []string{"http.sweeps", "job", "sweep.cell", "sim.run", "store.commit"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}
	// Every non-root span's parent must exist in the collected set — a
	// broken parent link means the waterfall cannot attach it.
	for _, sp := range spans {
		if sp.Parent.IsZero() {
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("span %q parent %s not in trace", sp.Name, sp.Parent)
		}
	}
	// The status document advertises the trace ID the endpoint serves.
	if st["trace_id"] != trace.String() {
		t.Errorf("status trace_id = %v, want %s", st["trace_id"], trace)
	}
}

// TestTraceparentPropagation: a submit carrying a valid W3C traceparent
// joins the caller's trace; malformed or absent headers start a fresh
// root instead of failing or inheriting garbage.
func TestTraceparentPropagation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"

	submit := func(traceparent string) string {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/sweeps", strings.NewReader(smallSweep))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set("Traceparent", traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.ID
	}

	traceOf := func(id string) string {
		st := awaitJob(t, ts, id)
		tid, _ := st["trace_id"].(string)
		if len(tid) != 32 {
			t.Fatalf("job %s trace_id = %q, want 32 hex digits", id, tid)
		}
		return tid
	}

	if got := traceOf(submit("00-" + callerTrace + "-00f067aa0ba902b7-01")); got != callerTrace {
		t.Errorf("valid traceparent: job trace = %s, want the caller's %s", got, callerTrace)
	}
	if got := traceOf(submit("00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")); got == callerTrace {
		t.Error("malformed traceparent joined the caller's trace instead of starting fresh")
	}
	fresh1, fresh2 := traceOf(submit("")), traceOf(submit(""))
	if fresh1 == fresh2 {
		t.Errorf("two untraced submits share trace %s; each should root its own", fresh1)
	}
}

// TestTraceBeforeJobRuns: asking for a trace before the job has begun
// running is a 409 conflict, mirroring /rows.
func TestTraceBeforeJobRuns(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	// A handmade job that is still queued: no trace context yet.
	j := &job{id: "jq", state: "queued", changed: make(chan struct{})}
	srv.mu.Lock()
	srv.jobs[j.id] = j
	srv.order = append(srv.order, j.id)
	srv.mu.Unlock()
	resp, err := http.Get(ts.URL + "/v1/jobs/jq/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace of queued job: status %d, want 409", resp.StatusCode)
	}
}

// TestStreamInflightReleasedOnDisconnect: a client that disconnects
// mid-replay must release the stream endpoint's inflight slot promptly,
// not after the rest of a large replay is serialized into a dead socket.
func TestStreamInflightReleasedOnDisconnect(t *testing.T) {
	srv, ts, _ := newTestServer(t)

	// A running (never-terminal) job with a large replay backlog.
	j := &job{id: "jbig", state: "running", total: 1 << 20, changed: make(chan struct{})}
	row := experiments.SweepRow{App: "delaunay", Scheme: "jigsaw"}
	for i := 0; i < 200000; i++ {
		j.completed = append(j.completed, row)
	}
	srv.mu.Lock()
	srv.jobs[j.id] = j
	srv.order = append(srv.order, j.id)
	srv.mu.Unlock()

	var ep *endpoint
	for _, e := range srv.endpoints {
		if e.name == "stream" {
			ep = e
		}
	}
	if ep == nil {
		t.Fatal("no stream endpoint")
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/jbig/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk so the stream is demonstrably mid-replay, then
	// vanish.
	buf := make([]byte, 4096)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first stream read: %v", err)
	}
	if got := ep.inflight.Load(); got != 1 {
		t.Fatalf("inflight during stream = %d, want 1", got)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(2 * time.Second)
	for ep.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream inflight stuck at %d after client disconnect", ep.inflight.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInstrumentAddsNoAllocs: the middleware wrapper — admission,
// histogram, and request span — must add zero heap allocations over the
// bare handler, keeping the warm /v1/results path allocation-free.
func TestInstrumentAddsNoAllocs(t *testing.T) {
	srv, _, _ := newTestServer(t)
	base := func(w http.ResponseWriter, r *http.Request) {}
	wrapped := srv.instrument(srv.newEndpoint("results"), false, base)

	req, err := http.NewRequest("GET", "/v1/results", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := nopResponseWriter{hdr: http.Header{}}
	// Warm the span pool and the histogram before measuring.
	for i := 0; i < 100; i++ {
		wrapped(w, req)
	}
	baseAllocs := testing.AllocsPerRun(200, func() { base(w, req) })
	wrappedAllocs := testing.AllocsPerRun(200, func() { wrapped(w, req) })
	if extra := wrappedAllocs - baseAllocs; extra > 0 {
		t.Fatalf("instrument adds %.1f allocs/request, want 0", extra)
	}
}

type nopResponseWriter struct{ hdr http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.hdr }
func (w nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nopResponseWriter) WriteHeader(int)             {}
