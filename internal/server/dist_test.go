package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"whirlpool/internal/experiments"
	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
	"whirlpool/internal/workloads"
)

// newWorkerServer boots a plain (non-coordinator) daemon with its own
// store, as one node of a distributed fleet.
func newWorkerServer(t *testing.T) (*httptest.Server, *results.Store) {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: 2, Version: "worker"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		store.Close()
	})
	return ts, store
}

// newCoordinator boots a daemon in coordinator mode over the given
// worker URLs, with its own store.
func newCoordinator(t *testing.T, workerURLs ...string) (*Server, *httptest.Server, *results.Store) {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: 2, WorkerURLs: workerURLs, Version: "coord"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		store.Close()
	})
	return srv, ts, store
}

// TestCellsEndpoint: POST /v1/cells runs exactly the named cells and
// produces rows bit-identical to a direct sweep of the same cells.
func TestCellsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	body := `{"cells":[{"app":"delaunay","scheme":"jigsaw"},{"app":"MIS","scheme":"snuca-lru"}],"scale":0.02}`
	resp, err := http.Post(ts.URL+"/v1/cells", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cells submit: %d: %v", resp.StatusCode, sub)
	}
	id, _ := sub["id"].(string)
	if sub["total"] != float64(2) {
		t.Fatalf("total = %v, want 2", sub["total"])
	}
	st := awaitJob(t, ts, id)
	if st["state"] != "done" || st["computed"] != float64(2) {
		t.Fatalf("cells job = %v", st)
	}
	var got []experiments.SweepRow
	getJSON(t, ts.URL+"/v1/jobs/"+id+"/rows", &got)
	h := experiments.NewHarness(0.02)
	want, err := h.Sweep(experiments.SweepConfig{Cells: []experiments.SweepCell{
		{App: "delaunay", Scheme: "jigsaw"}, {App: "MIS", Scheme: "snuca-lru"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range got {
		a, b := got[i], want[i]
		a.WallMS, b.WallMS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cells row %d differs:\n  http:   %+v\n  direct: %+v", i, a, b)
		}
	}
	var m map[string]any
	getJSON(t, ts.URL+"/metrics", &m)
	jobsM, _ := m["jobs"].(map[string]any)
	if jobsM["shards"] != float64(1) {
		t.Fatalf("shard counter = %v", m["jobs"])
	}
	var flat map[string]any
	getJSON(t, ts.URL+"/metrics?format=flat", &flat)
	if flat["whirld.jobs.shards"] != float64(1) {
		t.Fatalf("flat shard counter = %v", flat["whirld.jobs.shards"])
	}
}

// TestCellsValidation: malformed shard requests are 400s.
func TestCellsValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	bad := []string{
		`{}`,
		`{"cells":[]}`,
		`{"cells":[{"scheme":"jigsaw"}]}`,
		`{"cells":[{"app":"nosuchapp","scheme":"jigsaw"}]}`,
		`{"cells":[{"mix":"nosuchmix","scheme":"jigsaw"}]}`,
		`{"cells":[{"app":"delaunay","scheme":"bogus"}]}`,
		`{"cells":[{"app":"delaunay","mix":"m","scheme":"jigsaw"}]}`,
		`{"cells":[{"app":"delaunay","scheme":"jigsaw"},{"app":"delaunay","scheme":"jigsaw"}]}`,
		`{"cells":[{"app":"delaunay","scheme":"jigsaw"}],"scale":-2}`,
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/cells", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("cells %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestDistributedBitIdentity: a sweep sharded across two worker daemons
// — spec apps, builtin apps, and a mix — merges into a grid
// bit-identical to a single-node run, with a per-worker split in the
// job status, and a warm resubmit served entirely by the coordinator.
func TestDistributedBitIdentity(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	w1, w1store := newWorkerServer(t)
	w2, w2store := newWorkerServer(t)
	_, coord, _ := newCoordinator(t, w1.URL, w2.URL)

	req := `{
		"spec": {"apps": [{"name":"dist_kv","structs":[{"name":"x","bytes":"1MB","pattern":"zipf","param":0.8}],"accesses":100000}],
		         "mixes": [{"name":"dist_mix","apps":["dist_kv","MIS"]}]},
		"apps": ["dist_kv", "delaunay", "MIS"],
		"mixes": ["all"],
		"schemes": ["jigsaw", "snuca-lru"],
		"scale": 0.5
	}`
	sub := postSweep(t, coord, req)
	id, _ := sub["id"].(string)
	st := awaitJob(t, coord, id)
	if st["state"] != "done" {
		t.Fatalf("distributed job = %v", st)
	}
	total := int(st["total"].(float64))
	if total != 8 { // (3 apps + 1 mix) × 2 schemes
		t.Fatalf("total = %d, want 8", total)
	}
	if st["done"] != float64(total) || st["computed"] != float64(total) {
		t.Fatalf("distributed counters = %v", st)
	}

	// The per-worker split is surfaced and sums to the full grid.
	workersAny, ok := st["workers"].([]any)
	if !ok || len(workersAny) != 2 {
		t.Fatalf("status has no per-worker split: %v", st)
	}
	sumComputed := 0
	for _, wa := range workersAny {
		wm := wa.(map[string]any)
		sumComputed += int(wm["computed"].(float64))
		if wm["dead"] == true {
			t.Fatalf("healthy worker marked dead: %v", wm)
		}
	}
	if sumComputed != total {
		t.Fatalf("workers computed %d of %d cells", sumComputed, total)
	}

	// Bit-identity against a single-node run of the same grid.
	var got []experiments.SweepRow
	getJSON(t, coord.URL+"/v1/jobs/"+id+"/rows", &got)
	h := experiments.NewHarness(0.5)
	want, err := h.Sweep(experiments.SweepConfig{
		Apps: []string{"dist_kv", "delaunay", "MIS"},
		Mixes: []experiments.SweepMix{{
			Name: "dist_mix", Apps: []string{"dist_kv", "MIS"},
		}},
		Kinds: []schemes.Kind{schemes.KindJigsaw, schemes.KindSNUCALRU},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("distributed rows = %d, single-node = %d", len(got), len(want))
	}
	for i := range got {
		a, b := got[i], want[i]
		a.WallMS, b.WallMS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("row %d differs:\n  distributed: %+v\n  single-node: %+v", i, a, b)
		}
	}

	// Every computed row landed in the coordinator's store AND in the
	// computing worker's own.
	if w1store.Len()+w2store.Len() < total {
		t.Fatalf("worker stores hold %d + %d rows, want >= %d", w1store.Len(), w2store.Len(), total)
	}

	// Warm resubmit: the coordinator serves everything from its store —
	// no dispatch, no re-simulation anywhere.
	w1c, w2c := w1store.Stats().Puts, w2store.Stats().Puts
	id2, _ := postSweep(t, coord, req)["id"].(string)
	st2 := awaitJob(t, coord, id2)
	if st2["state"] != "done" || st2["served"] != float64(total) || st2["computed"] != float64(0) {
		t.Fatalf("warm resubmit = %v", st2)
	}
	if w1store.Stats().Puts != w1c || w2store.Stats().Puts != w2c {
		t.Fatal("warm resubmit reached the workers")
	}
}

// TestDistributedRegistryLeakedApps: apps that live only in the
// coordinator's registry (registered by an earlier job's spec) must
// still be computable by workers — the coordinator forwards a
// synthesized spec defining every app the grid touches.
func TestDistributedRegistryLeakedApps(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	w1, _ := newWorkerServer(t)
	_, coord, _ := newCoordinator(t, w1.URL)

	// Job 1 registers leak_app into the coordinator's global registry.
	spec1 := `{
		"spec": {"apps": [{"name":"leak_app","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"accesses":100000}]},
		"apps": ["leak_app"], "schemes": ["jigsaw"], "scale": 0.5
	}`
	id1, _ := postSweep(t, coord, spec1)["id"].(string)
	if st := awaitJob(t, coord, id1); st["state"] != "done" {
		t.Fatalf("spec job = %v", st)
	}

	// Job 2 names it with NO spec: the worker has never seen leak_app,
	// so only the forwarded synthesized spec makes this computable.
	// Different seed so nothing is served from the store.
	id2, _ := postSweep(t, coord, `{"apps":["leak_app","delaunay"],"schemes":["jigsaw"],"scale":0.5,"seed":7}`)["id"].(string)
	st := awaitJob(t, coord, id2)
	if st["state"] != "done" || st["computed"] != float64(2) || st["cell_errors"] != float64(0) {
		t.Fatalf("registry-leaked distributed job = %v", st)
	}
	var rows []experiments.SweepRow
	getJSON(t, coord.URL+"/v1/jobs/"+id2+"/rows", &rows)
	for _, r := range rows {
		if r.Err != "" || r.Cycles == 0 {
			t.Fatalf("leaked-app row = %+v", r)
		}
	}
}

// TestDistributedUnsweptMixNotForwarded: a spec mix the job does NOT
// sweep may reference spec-only apps outside the swept grid; the
// forwarded spec must omit it, or worker-side validation rejects the
// whole shard.
func TestDistributedUnsweptMixNotForwarded(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	w1, _ := newWorkerServer(t)
	_, coord, _ := newCoordinator(t, w1.URL)
	req := `{
		"spec": {"apps": [{"name":"fwd_a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"accesses":100000},
		                  {"name":"fwd_b","structs":[{"name":"y","bytes":"1MB","pattern":"rand"}],"accesses":100000}],
		         "mixes": [{"name":"fwd_m","apps":["fwd_b","MIS"]}]},
		"apps": ["fwd_a"], "schemes": ["jigsaw"], "scale": 0.5
	}`
	id, _ := postSweep(t, coord, req)["id"].(string)
	st := awaitJob(t, coord, id)
	if st["state"] != "done" || st["computed"] != float64(1) || st["cell_errors"] != float64(0) {
		t.Fatalf("job with unswept spec mix = %v", st)
	}
}

// deadWorkerFake accepts shards and then drops the SSE stream without
// delivering anything — the brutal kill -9 shape of worker death.
func deadWorkerFake(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": "doomed"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestDistributedDeadWorker: a worker dying mid-sweep does not lose the
// job — its shard re-dispatches to the survivor and every cell lands.
func TestDistributedDeadWorker(t *testing.T) {
	healthy, _ := newWorkerServer(t)
	dying := deadWorkerFake(t)
	srv, coord, _ := newCoordinator(t, healthy.URL, dying.URL)

	id, _ := postSweep(t, coord, `{"apps":["delaunay","MIS"],"scale":0.02}`)["id"].(string)
	st := awaitJob(t, coord, id)
	if st["state"] != "done" {
		t.Fatalf("job with dead worker = %v", st)
	}
	total := int(st["total"].(float64))
	if st["done"] != float64(total) || st["computed"] != float64(total) {
		t.Fatalf("counters with dead worker = %v", st)
	}
	var rows []experiments.SweepRow
	getJSON(t, coord.URL+"/v1/jobs/"+id+"/rows", &rows)
	if len(rows) != total {
		t.Fatalf("rows = %d, want %d", len(rows), total)
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("cell error after re-dispatch: %+v", r)
		}
	}
	var deadStats map[string]any
	for _, wa := range st["workers"].([]any) {
		wm := wa.(map[string]any)
		if wm["worker"] == dying.URL {
			deadStats = wm
		}
	}
	if deadStats == nil || deadStats["dead"] != true {
		t.Fatalf("dying worker not marked dead: %v", st["workers"])
	}
	if deadStats["redispatched"].(float64) == 0 {
		t.Fatalf("no cells re-dispatched off the dead worker: %v", deadStats)
	}
	if got := srv.metrics.workersLost.Load(); got != 1 {
		t.Fatalf("workers_lost = %d, want 1", got)
	}
	if srv.metrics.redispatched.Load() == 0 {
		t.Fatal("redispatched counter not bumped")
	}
}

// TestDistributedAllWorkersDead: with no survivors the job fails but
// still accounts for every cell as an error row.
func TestDistributedAllWorkersDead(t *testing.T) {
	dying := deadWorkerFake(t)
	_, coord, _ := newCoordinator(t, dying.URL)
	id, _ := postSweep(t, coord, `{"apps":["delaunay"],"schemes":["jigsaw"],"scale":0.02}`)["id"].(string)
	st := awaitJob(t, coord, id)
	if st["state"] != "failed" {
		t.Fatalf("all-dead job = %v", st)
	}
	if st["done"] != st["total"] {
		t.Fatalf("all-dead job left cells unaccounted: %v", st)
	}
	var rows []experiments.SweepRow
	getJSON(t, coord.URL+"/v1/jobs/"+id+"/rows", &rows)
	for _, r := range rows {
		if !strings.Contains(r.Err, "workers failed") {
			t.Fatalf("row not marked with dispatch failure: %+v", r)
		}
	}
}

// TestCellsJobNeverRedispatches: a coordinator that receives a shard
// (POST /v1/cells) simulates it locally instead of forwarding — the
// recursion anchor of the fleet.
func TestCellsJobNeverRedispatches(t *testing.T) {
	// Coordinator pointing at a worker that would fail any forwarded
	// shard; the cells job must succeed anyway, locally.
	dying := deadWorkerFake(t)
	_, coord, _ := newCoordinator(t, dying.URL)
	body := `{"cells":[{"app":"delaunay","scheme":"jigsaw"}],"scale":0.02}`
	resp, err := http.Post(coord.URL+"/v1/cells", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	id, _ := sub["id"].(string)
	st := awaitJob(t, coord, id)
	if st["state"] != "done" || st["computed"] != float64(1) {
		t.Fatalf("cells job on a coordinator = %v", st)
	}
}
