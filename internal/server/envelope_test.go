package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whirlpool/internal/results"
)

// checkEnvelope asserts a response is the uniform JSON error envelope
// {"error":{"code","message"}} with the expected status and code, a
// JSON content type, a non-empty message, and — when wantRetry — a
// positive integer Retry-After header.
func checkEnvelope(t *testing.T, label string, resp *http.Response, wantStatus int, wantCode string, wantRetry bool) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Errorf("%s: status = %d, want %d", label, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("%s: Content-Type = %q, want application/json", label, ct)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Errorf("%s: body is not the envelope: %v", label, err)
		return
	}
	if env.Error.Code != wantCode {
		t.Errorf("%s: code = %q, want %q", label, env.Error.Code, wantCode)
	}
	if env.Error.Message == "" {
		t.Errorf("%s: envelope message is empty", label)
	}
	ra := resp.Header.Get("Retry-After")
	if wantRetry && ra == "" {
		t.Errorf("%s: %d response lacks Retry-After", label, wantStatus)
	}
	if !wantRetry && ra != "" {
		t.Errorf("%s: unexpected Retry-After %q", label, ra)
	}
}

// TestErrorEnvelopeEveryFailurePath drives each handler's failure
// branches over a live server and asserts the envelope contract on all
// of them: the stateless 400/404s, the 400s that need a finished job,
// and the 409 that needs an unfinished one.
func TestErrorEnvelopeEveryFailurePath(t *testing.T) {
	_, ts, _ := newTestServer(t)

	// A finished job for the rows-format 400 path.
	done, _ := postSweep(t, ts, smallSweep)["id"].(string)
	awaitJob(t, ts, done)

	cases := []struct {
		label  string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"sweeps malformed body", "POST", "/v1/sweeps", `{not json`, 400, "bad_request"},
		{"sweeps unknown field", "POST", "/v1/sweeps", `{"bogus_field":1}`, 400, "bad_request"},
		{"sweeps unknown app", "POST", "/v1/sweeps", `{"apps":["nosuchapp"]}`, 400, "bad_request"},
		{"sweeps unknown scheme", "POST", "/v1/sweeps", `{"apps":["delaunay"],"schemes":["bogus"]}`, 400, "bad_request"},
		{"sweeps bad scale", "POST", "/v1/sweeps", `{"apps":["delaunay"],"scale":-1}`, 400, "bad_request"},
		{"cells malformed body", "POST", "/v1/cells", `{not json`, 400, "bad_request"},
		{"cells unknown app", "POST", "/v1/cells", `{"cells":[{"app":"nosuchapp","scheme":"jigsaw"}],"scale":0.02}`, 400, "bad_request"},
		{"job status not found", "GET", "/v1/jobs/j999", "", 404, "not_found"},
		{"job rows not found", "GET", "/v1/jobs/j999/rows", "", 404, "not_found"},
		{"job stream not found", "GET", "/v1/jobs/j999/stream", "", 404, "not_found"},
		{"job cancel not found", "DELETE", "/v1/jobs/j999", "", 404, "not_found"},
		{"rows bad format", "GET", "/v1/jobs/" + done + "/rows?format=bogus", "", 400, "bad_request"},
		{"results bad limit", "GET", "/v1/results?limit=bogus", "", 400, "bad_request"},
		{"results negative limit", "GET", "/v1/results?limit=-3", "", 400, "bad_request"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if tc.method == "POST" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		checkEnvelope(t, tc.label, resp, tc.status, tc.code, false)
	}
}

// TestErrorEnvelopeBackPressure covers the three back-pressure paths —
// rows on an unfinished job (409), a full queue (503 + Retry-After),
// and a draining daemon (503 + Retry-After) — which need a server whose
// single runner is pinned down by a long job.
func TestErrorEnvelopeBackPressure(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, err := New(Config{Store: store, Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// j1 occupies the single runner; j2 sits queued behind it, filling
	// the depth-1 queue and staying deterministically unfinished.
	id1, _ := postSweep(t, ts, `{"apps":["all"],"scale":0.05}`)["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st map[string]any
		getJSON(t, ts.URL+"/v1/jobs/"+id1, &st)
		if st["state"] == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", id1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	id2, _ := postSweep(t, ts, smallSweep)["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id2 + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, "rows on queued job", resp, http.StatusConflict, "job_not_finished", false)

	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(smallSweep))
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, "queue full", resp, http.StatusServiceUnavailable, "queue_full", true)

	// Cancel both so Close below drains quickly, then assert the
	// draining path's envelope.
	for _, id := range []string{id1, id2} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	awaitJob(t, ts, id1)
	awaitJob(t, ts, id2)
	srv.Close()
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(smallSweep))
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, "draining", resp, http.StatusServiceUnavailable, "shutting_down", true)
}

// TestErrorEnvelopeShed covers the admission-control 429: a parked
// request holds the endpoint's one slot, so the probe is shed with the
// overloaded envelope and a Retry-After hint.
func TestErrorEnvelopeShed(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, EndpointLimits: map[string]int{"results": 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); store.Close() })

	for _, ep := range srv.endpoints {
		if ep.name == "results" {
			ep.inflight.Add(1)
			defer ep.inflight.Add(-1)
		}
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/results", nil))
	resp := rec.Result()
	checkEnvelope(t, "results shed", resp, http.StatusTooManyRequests, "overloaded", true)
}
