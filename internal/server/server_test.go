package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"whirlpool/internal/experiments"
	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
	"whirlpool/internal/trace"
	"whirlpool/internal/workloads"
)

// newTestServer builds a Server over a fresh store and exposes it via
// httptest, tearing both down with the test.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *results.Store) {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: 2, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		store.Close()
	})
	return srv, ts, store
}

func postSweep(t *testing.T, ts *httptest.Server, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// awaitJob polls a job until it reaches a terminal state.
func awaitJob(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st map[string]any
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("job status: %d", code)
		}
		if s, _ := st["state"].(string); isTerminal(s) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

const smallSweep = `{"apps":["delaunay"],"schemes":["jigsaw"],"scale":0.02}`

// TestSubmitRunRows: an HTTP-submitted sweep produces rows identical
// (modulo wall-clock) to a direct experiments.Sweep run.
func TestSubmitRunRows(t *testing.T) {
	_, ts, _ := newTestServer(t)
	sub := postSweep(t, ts, smallSweep)
	id, _ := sub["id"].(string)
	st := awaitJob(t, ts, id)
	if st["state"] != "done" {
		t.Fatalf("job state = %v", st)
	}
	if st["computed"] != float64(1) || st["served"] != float64(0) {
		t.Fatalf("cold job counters = %v", st)
	}

	var got []experiments.SweepRow
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/rows", &got); code != http.StatusOK {
		t.Fatalf("rows: %d", code)
	}
	h := experiments.NewHarness(0.02)
	want, err := h.Sweep(experiments.SweepConfig{
		Apps: []string{"delaunay"}, Kinds: []schemes.Kind{schemes.KindJigsaw}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rows = %d, want 1", len(got))
	}
	a, b := got[0], want[0]
	a.WallMS, b.WallMS = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("HTTP row differs from direct run:\n  http:   %+v\n  direct: %+v", a, b)
	}
}

// TestWarmResubmitServesEverything: a resubmitted sweep is served
// entirely from the store — zero re-simulations, proven by counters.
func TestWarmResubmitServesEverything(t *testing.T) {
	_, ts, store := newTestServer(t)
	id1, _ := postSweep(t, ts, smallSweep)["id"].(string)
	awaitJob(t, ts, id1)
	misses := store.Stats().Misses

	id2, _ := postSweep(t, ts, smallSweep)["id"].(string)
	st := awaitJob(t, ts, id2)
	if st["state"] != "done" || st["served"] != float64(1) || st["computed"] != float64(0) {
		t.Fatalf("warm resubmit = %v, want 1 served / 0 computed", st)
	}
	if d := store.Stats().Misses - misses; d != 0 {
		t.Fatalf("warm resubmit missed the store %d times", d)
	}
}

// TestSSEStream: the stream replays finished rows to late subscribers
// and terminates with a done event carrying the final counters.
func TestSSEStream(t *testing.T) {
	_, ts, _ := newTestServer(t)
	id, _ := postSweep(t, ts, `{"apps":["delaunay","MIS"],"schemes":["jigsaw"],"scale":0.02}`)["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	var rows int
	var doneData string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "row" {
				var row experiments.SweepRow
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &row); err != nil {
					t.Fatalf("bad row event: %v", err)
				}
				rows++
			}
			if event == "done" {
				doneData = strings.TrimPrefix(line, "data: ")
			}
		}
		if doneData != "" {
			break
		}
	}
	if rows != 2 {
		t.Fatalf("stream delivered %d row events, want 2", rows)
	}
	var done map[string]any
	if err := json.Unmarshal([]byte(doneData), &done); err != nil || done["state"] != "done" {
		t.Fatalf("done event = %q (%v)", doneData, err)
	}

	// A subscriber arriving after completion gets the same history.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body := make([]byte, 64*1024)
	n, _ := resp2.Body.Read(body)
	replay := string(body[:n])
	if c := strings.Count(replay, "event: row"); c != 2 {
		t.Fatalf("late subscriber got %d row events, want 2 (stream: %.300s)", c, replay)
	}
}

// TestInlineSpecAndMix: an inline spec's apps and mixes sweep like
// whirlsweep -spec/-mix, and CSV rows match the direct writers.
func TestInlineSpecAndMix(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	_, ts, _ := newTestServer(t)
	req := `{
		"spec": {"apps": [{"name":"srv_kv","structs":[{"name":"x","bytes":"1MB","pattern":"zipf","param":0.8}],"accesses":100000}],
		         "mixes": [{"name":"srv_mix","apps":["srv_kv","MIS"]}]},
		"apps": ["srv_kv"],
		"mixes": ["all"],
		"schemes": ["jigsaw"],
		"scale": 0.5
	}`
	id, _ := postSweep(t, ts, req)["id"].(string)
	st := awaitJob(t, ts, id)
	if st["state"] != "done" {
		t.Fatalf("spec job = %v", st)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/rows?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + srv_kv app row + srv_mix row
		t.Fatalf("csv = %d lines: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "srv_kv,jigsaw,false,") || !strings.HasPrefix(lines[2], "srv_mix,jigsaw,true,") {
		t.Fatalf("csv rows = %q", lines[1:])
	}
}

// TestResultsEndpoint: committed rows are queryable with filters.
func TestResultsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	id, _ := postSweep(t, ts, `{"apps":["delaunay","MIS"],"schemes":["jigsaw"],"scale":0.02}`)["id"].(string)
	awaitJob(t, ts, id)

	var recs []results.Record
	if code := getJSON(t, ts.URL+"/v1/results", &recs); code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}
	if len(recs) != 2 {
		t.Fatalf("results = %d records, want 2", len(recs))
	}
	var filtered []results.Record
	getJSON(t, ts.URL+"/v1/results?app=MIS&scheme=jigsaw", &filtered)
	if len(filtered) != 1 || filtered[0].App != "MIS" {
		t.Fatalf("filtered results = %+v", filtered)
	}
	var row experiments.SweepRow
	if err := json.Unmarshal(filtered[0].Row, &row); err != nil || row.Cycles == 0 {
		t.Fatalf("record row payload = %s (%v)", filtered[0].Row, err)
	}
	var byKey []results.Record
	getJSON(t, ts.URL+"/v1/results?key="+filtered[0].Key, &byKey)
	if len(byKey) != 1 {
		t.Fatalf("key filter = %d records", len(byKey))
	}
}

// TestValidationErrors: malformed submissions fail fast with 400s, and
// unknown jobs 404.
func TestValidationErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	bad := []string{
		`{"apps":["nosuchapp"]}`,
		`{"schemes":["bogus"],"apps":["delaunay"]}`,
		`{"mixes":["m"]}`,
		`{"scale":-1,"apps":["delaunay"]}`,
		`{"spec":{"apps":[{"name":"x"}]}}`,
		`{not json`,
		`{"unknown_field":1}`,
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	for _, url := range []string{"/v1/jobs/j999", "/v1/jobs/j999/rows", "/v1/jobs/j999/stream"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", url, resp.StatusCode)
		}
	}
}

// TestCancelJob: DELETE cancels; completed cells stay committed so a
// resubmit resumes from the store.
func TestCancelJob(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// A grid big enough to still be running when the cancel lands.
	id, _ := postSweep(t, ts, `{"apps":["all"],"scale":0.05}`)["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := awaitJob(t, ts, id)
	if st["state"] != "canceled" {
		t.Fatalf("after DELETE, state = %v", st)
	}
}

// TestHealthzAndMetrics: liveness and counters respond.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t)
	id, _ := postSweep(t, ts, smallSweep)["id"].(string)
	awaitJob(t, ts, id)

	var hz map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz["ok"] != true || hz["version"] != "test" {
		t.Fatalf("healthz = %v", hz)
	}
	var list map[string][]map[string]any
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("jobs list: %d", code)
	}
	if len(list["jobs"]) != 1 || list["jobs"][0]["id"] != id {
		t.Fatalf("jobs list = %v", list)
	}
	var m map[string]any
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	jobs, _ := m["jobs"].(map[string]any)
	rows, _ := jobs["rows"].(map[string]any)
	if jobs["submitted"] != float64(1) || rows["computed"] != float64(1) {
		t.Fatalf("metrics.jobs = %v", m["jobs"])
	}
	srvM, _ := m["server"].(map[string]any)
	eps, _ := srvM["endpoints"].(map[string]any)
	sweeps, _ := eps["sweeps"].(map[string]any)
	lat, _ := sweeps["latency"].(map[string]any)
	if sweeps["requests"] != float64(1) || lat["count"] != float64(1) {
		t.Fatalf("metrics.server.endpoints.sweeps = %v", sweeps)
	}
	if _, ok := m["memstats"]; !ok {
		t.Fatal("metrics missing memstats")
	}

	// The legacy flat keys survive behind ?format=flat.
	var flat map[string]any
	if code := getJSON(t, ts.URL+"/metrics?format=flat", &flat); code != http.StatusOK {
		t.Fatalf("flat metrics: %d", code)
	}
	if flat["whirld.jobs.submitted"] != float64(1) || flat["whirld.rows.computed"] != float64(1) {
		t.Fatalf("flat metrics = %v", flat)
	}
	if _, ok := flat["server.endpoints.sweeps.latency.p99_ms"]; !ok {
		t.Fatal("flat metrics missing flattened endpoint latency")
	}
}

// TestCloseDrains: Close cancels running jobs to a terminal state and
// later submits are rejected.
func TestCloseDrains(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, err := New(Config{Store: store, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, _ := postSweep(t, ts, `{"apps":["all"],"scale":0.05}`)["id"].(string)
	srv.Close()
	st := awaitJob(t, ts, id)
	if s, _ := st["state"].(string); !isTerminal(s) {
		t.Fatalf("after Close, job state = %v", st)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(smallSweep))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close: %d, want 503", resp.StatusCode)
	}
}

// TestZeroCycleRowRoundTrip: a zero-cycle cell (empty recorded trace)
// must round-trip through the SSE stream and /rows?format=json without
// dropped or malformed rows — the IPC 0/0 NaN would previously make
// json.Marshal fail and the stream silently skip the row.
func TestZeroCycleRowRoundTrip(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	_, ts, _ := newTestServer(t)
	p := filepath.Join(t.TempDir(), "empty.wtrc")
	if err := trace.WriteFile(p, &trace.LLCTrace{}); err != nil {
		t.Fatal(err)
	}
	req := fmt.Sprintf(`{"spec":{"apps":[{"name":"zc_srv","source":"trace","trace":%q}]},"apps":["zc_srv"],"schemes":["jigsaw"]}`, p)
	id, _ := postSweep(t, ts, req)["id"].(string)
	st := awaitJob(t, ts, id)
	if st["state"] != "done" || st["cell_errors"] != float64(0) {
		t.Fatalf("zero-cycle job = %v", st)
	}

	// The SSE stream must carry the row, parseable, not dropped.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rowEvents int
	var row experiments.SweepRow
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "row":
			rowEvents++
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &row); err != nil {
				t.Fatalf("zero-cycle row event unparsable: %v", err)
			}
		}
		if event == "done" {
			break
		}
	}
	if rowEvents != 1 {
		t.Fatalf("stream delivered %d row events, want 1 (zero-cycle row dropped?)", rowEvents)
	}
	if row.Cycles != 0 || row.IPC != 0 || row.Err != "" {
		t.Fatalf("zero-cycle row = %+v", row)
	}

	// And /rows?format=json must be valid JSON holding the row.
	var rows []experiments.SweepRow
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/rows?format=json", &rows); code != http.StatusOK {
		t.Fatalf("rows: %d", code)
	}
	if len(rows) != 1 || rows[0].Cycles != 0 || rows[0].IPC != 0 {
		t.Fatalf("rows = %+v", rows)
	}
}

// TestStreamSurfacesMarshalFailures: a row that cannot be marshaled
// (NaN smuggled into a float) becomes an error row event plus a metrics
// counter — never a silently shortened stream.
func TestStreamSurfacesMarshalFailures(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	j := &job{id: "jx", req: SweepRequest{}, total: 1, created: time.Now(), changed: make(chan struct{})}
	j.state = "done"
	j.completed = []experiments.SweepRow{{App: "bad", Scheme: "jigsaw", IPC: math.NaN()}}
	j.result = j.completed
	srv.mu.Lock()
	srv.jobs[j.id] = j
	srv.order = append(srv.order, j.id)
	srv.mu.Unlock()

	resp, err := http.Get(ts.URL + "/v1/jobs/jx/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events, errRows int
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "row":
			events++
			var row experiments.SweepRow
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &row); err != nil {
				t.Fatalf("surfaced row unparsable: %v", err)
			}
			if row.App == "bad" && strings.Contains(row.Err, "not representable") {
				errRows++
			}
		}
		if event == "done" {
			break
		}
	}
	if events != 1 || errRows != 1 {
		t.Fatalf("stream delivered %d events (%d marshal-error rows), want 1/1", events, errRows)
	}
	if got := srv.metrics.rowMarshalErrs.Load(); got != 1 {
		t.Fatalf("rows.marshal_errors = %d, want 1", got)
	}

	// A second subscriber replays the same corrupt row; the counter
	// tracks corrupt rows, not stream attachments.
	resp2, err := http.Get(ts.URL + "/v1/jobs/jx/stream")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	n, _ := resp2.Body.Read(buf)
	resp2.Body.Close()
	if !strings.Contains(string(buf[:n]), "not representable") {
		t.Fatalf("replay lost the surfaced error row: %.200s", buf[:n])
	}
	if got := srv.metrics.rowMarshalErrs.Load(); got != 1 {
		t.Fatalf("rows.marshal_errors = %d after a replay, want still 1", got)
	}
}

// TestResultsLimitValidation: ?limit= must be a clean non-negative
// integer — Sscanf used to accept "10abc" as 10.
func TestResultsLimitValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	id, _ := postSweep(t, ts, `{"apps":["delaunay","MIS"],"schemes":["jigsaw"],"scale":0.02}`)["id"].(string)
	awaitJob(t, ts, id)

	for _, lim := range []string{"10abc", "abc", "-1", "1.5", "0x10", " 1"} {
		resp, err := http.Get(ts.URL + "/v1/results?limit=" + url.QueryEscape(lim))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("limit=%q: status %d, want 400", lim, resp.StatusCode)
		}
	}
	var recs []results.Record
	if code := getJSON(t, ts.URL+"/v1/results?limit=1", &recs); code != http.StatusOK || len(recs) != 1 {
		t.Fatalf("limit=1: code %d, %d records", code, len(recs))
	}
	if code := getJSON(t, ts.URL+"/v1/results?limit=0", &recs); code != http.StatusOK || len(recs) != 2 {
		t.Fatalf("limit=0 (unlimited): code %d, %d records", code, len(recs))
	}
}

// TestCanceledJobDoneReachesTotal: canceled cells flow through the
// progress path, so a canceled job's done counter reaches total and SSE
// subscribers see every cell (canceled ones included) before done.
func TestCanceledJobDoneReachesTotal(t *testing.T) {
	_, ts, _ := newTestServer(t)
	id, _ := postSweep(t, ts, `{"apps":["all"],"scale":0.05}`)["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := awaitJob(t, ts, id)
	if st["state"] != "canceled" {
		t.Fatalf("state = %v", st)
	}
	if st["done"] != st["total"] {
		t.Fatalf("canceled job frozen at done=%v of total=%v", st["done"], st["total"])
	}
	if st["cells_canceled"] == nil || st["cells_canceled"].(float64) == 0 {
		t.Fatalf("no canceled cells recorded: %v", st)
	}

	// The replayed stream carries the canceled rows, then done.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var rowEvents, canceledRows int
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "row":
			rowEvents++
			if strings.Contains(line, `"canceled"`) {
				canceledRows++
			}
		}
		if event == "done" {
			break
		}
	}
	if rowEvents != int(st["total"].(float64)) {
		t.Fatalf("stream replayed %d rows of %v total", rowEvents, st["total"])
	}
	if canceledRows == 0 {
		t.Fatal("no canceled rows in the stream")
	}
}

// TestDuplicateAppsRejected: duplicate names in apps would silently
// sweep (and double-commit) duplicate cells; they are 400s now.
func TestDuplicateAppsRejected(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"apps":["delaunay","MIS","delaunay"],"schemes":["jigsaw"],"scale":0.02}`))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate apps: status %d (%v), want 400", resp.StatusCode, body)
	}
	if env, _ := body["error"].(map[string]any); env["code"] != "bad_request" ||
		!strings.Contains(env["message"].(string), "duplicate app") {
		t.Fatalf("error = %v", body["error"])
	}

	// Duplicate schemes cross into identical cells the same way.
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"apps":["delaunay"],"schemes":["jigsaw","jigsaw"],"scale":0.02}`))
	if err != nil {
		t.Fatal(err)
	}
	body = nil
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate schemes: status %d (%v), want 400", resp.StatusCode, body)
	}
	if env, _ := body["error"].(map[string]any); env["code"] != "bad_request" ||
		!strings.Contains(env["message"].(string), "duplicate scheme") {
		t.Fatalf("error = %v", body["error"])
	}
}

// TestQueueFullDoesNotBurnIDs: a 503 on a full queue must not consume a
// job id — the next accepted job gets the next sequential id.
func TestQueueFullDoesNotBurnIDs(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, err := New(Config{Store: store, Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// j1 occupies the runner; wait until it actually runs so the queue
	// slot is free for j2.
	id1, _ := postSweep(t, ts, `{"apps":["all"],"scale":0.05}`)["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st map[string]any
		getJSON(t, ts.URL+"/v1/jobs/"+id1, &st)
		if st["state"] == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started: %v", id1, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	id2, _ := postSweep(t, ts, smallSweep)["id"].(string)
	if id1 != "j1" || id2 != "j2" {
		t.Fatalf("ids = %s, %s", id1, id2)
	}
	// The queue (depth 1) is now full: this submit must 503.
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(smallSweep))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue: status %d, want 503", resp.StatusCode)
	}

	// Unblock the runner and resubmit until accepted: the id must be j3
	// — a burned sequence number would make it j4.
	for _, id := range []string{id1, id2} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	awaitJob(t, ts, id1)
	awaitJob(t, ts, id2)
	var id3 string
	for time.Now().Before(deadline) {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(smallSweep))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			id3, _ = out["id"].(string)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if id3 != "j3" {
		t.Fatalf("post-503 submit got id %q, want j3 (rejections must not burn ids)", id3)
	}
}

// TestAllIncludesSpecApps: apps:["all"] with an inline spec must cover
// the spec's own apps too (registration is deferred to run time, so
// the union is computed at submit), matching whirlsweep -spec -apps all.
func TestAllIncludesSpecApps(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	_, ts, _ := newTestServer(t)
	req := `{"spec":{"apps":[{"name":"srv_union","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]},
	         "apps":["all"],"schemes":["jigsaw"],"scale":0.02}`
	// Count before submitting: the runner registers the spec app the
	// moment the job starts.
	want := float64(len(workloads.Names()) + 1)
	sub := postSweep(t, ts, req)
	if sub["total"] != want {
		t.Fatalf("total = %v, want %v (registry + the spec's app)", sub["total"], want)
	}
	// Don't simulate the whole suite: cancel and just require a clean
	// terminal state.
	id, _ := sub["id"].(string)
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	awaitJob(t, ts, id)
}
