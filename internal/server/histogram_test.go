package server

import (
	"math"
	"sync"
	"testing"
)

func snapOf(samples ...int64) histSnap {
	var h latHist
	for _, s := range samples {
		h.observe(s)
	}
	return h.snapshot()
}

// TestQuantileEmpty: an empty histogram answers 0 for every quantile —
// the documented "no data yet" value, not NaN or a panic.
func TestQuantileEmpty(t *testing.T) {
	s := snapOf()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.quantile(q); got != 0 {
			t.Fatalf("empty quantile(%g) = %g, want 0", q, got)
		}
	}
	if s.meanUS() != 0 {
		t.Fatalf("empty mean = %g, want 0", s.meanUS())
	}
}

// TestQuantileOneSample: with a single sample every quantile must land
// inside that sample's bucket [lo, hi), for all q including the 0 and 1
// extremes.
func TestQuantileOneSample(t *testing.T) {
	for _, us := range []int64{0, 1, 7, 100, 1 << 20} {
		s := snapOf(us)
		lo, hi := bucketBounds(bucketOf(us))
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			got := s.quantile(q)
			if got < lo || got > hi {
				t.Fatalf("one sample %dus: quantile(%g) = %g outside [%g, %g]", us, q, got, lo, hi)
			}
		}
		if s.meanUS() != float64(us) {
			t.Fatalf("one sample %dus: mean = %g", us, s.meanUS())
		}
	}
}

// TestQuantileSpread: quantiles of a bimodal distribution separate the
// modes — p50 sits with the fast majority, p99 with the slow tail —
// and the estimate error stays within the log bucket (factor of 2).
func TestQuantileSpread(t *testing.T) {
	var samples []int64
	for i := 0; i < 99; i++ {
		samples = append(samples, 100) // ~100us fast path
	}
	samples = append(samples, 1_000_000) // one 1s outlier
	s := snapOf(samples...)

	p50 := s.quantile(0.50)
	if p50 < 64 || p50 > 128 {
		t.Fatalf("p50 = %gus, want within the 100us bucket [64, 128)", p50)
	}
	p99 := s.quantile(0.99)
	if p99 > 256 {
		t.Fatalf("p99 = %gus, want still in the fast mode (99th of 100 samples is fast)", p99)
	}
	p100 := s.quantile(1)
	if p100 < 524288 || p100 > 2097152 {
		t.Fatalf("p100 = %gus, want within a factor of 2 of the 1s outlier", p100)
	}
}

// TestQuantileMonotone: quantiles never decrease in q, across a messy
// multi-bucket distribution.
func TestQuantileMonotone(t *testing.T) {
	s := snapOf(3, 17, 90, 90, 1200, 1201, 50000, 50001, 7, 0)
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := s.quantile(q)
		if got < prev {
			t.Fatalf("quantile(%g) = %g < quantile(%g) = %g", q, got, q-0.01, prev)
		}
		prev = got
	}
}

// TestQuantileClamps: out-of-range q behaves as its nearest bound.
func TestQuantileClamps(t *testing.T) {
	s := snapOf(100, 200, 400)
	if s.quantile(2) != s.quantile(1) {
		t.Fatal("q > 1 should clamp to 1")
	}
	if s.quantile(-0.5) != s.quantile(0) {
		t.Fatal("q < 0 should clamp to 0")
	}
}

// TestBucketOf: the mapping is the microsecond bit length, zero maps to
// bucket 0, negatives clamp to 0, and the top saturates instead of
// indexing out of range.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.us); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.us, got, tc.want)
		}
	}
}

// TestHistConcurrent: concurrent observers never lose counts (the
// histogram is on the request hot path; this is also the -race probe).
func TestHistConcurrent(t *testing.T) {
	var h latHist
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.snapshot()
	if s.count != workers*per {
		t.Fatalf("count = %d, want %d", s.count, workers*per)
	}
}
