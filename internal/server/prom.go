package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// writeProm renders the daemon's metrics in Prometheus text exposition
// format 0.0.4 (GET /metrics?format=prom). The mapping from the JSON
// tree is mechanical: dotted namespaces become underscore-joined
// whirld_* names, monotonic counters get the _total suffix, and each
// endpoint latency histogram is exposed as per-quantile gauges
// (whirld_endpoint_latency_ms{endpoint,quantile}) plus an observation
// counter — the daemon keeps quantile snapshots, not raw buckets, so a
// summary-style surface is the honest rendering. `whirltool promlint`
// validates this output in CI (obs-smoke).
func (s *Server) writeProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	p := promWriter{w: w}

	st := s.cfg.Store.Stats()
	fst := s.fleet.Stats()

	p.gauge("whirld_uptime_seconds", "Seconds since the daemon started.",
		"", float64(int64(time.Since(s.started).Seconds())))
	p.gauge("whirld_goroutines", "Live goroutines in the daemon process.",
		"", float64(runtime.NumGoroutine()))
	p.counter("whirld_spans_total", "Trace spans recorded since start.",
		"", float64(s.tracer.Total()))
	p.counter("whirld_shed_total", "Requests shed by per-endpoint concurrency limits.",
		"", float64(s.metrics.shed.Load()))

	p.counter("whirld_jobs_submitted_total", "Jobs accepted onto the queue.",
		"", float64(s.metrics.jobsSubmitted.Load()))
	p.counter("whirld_jobs_done_total", "Jobs finished successfully.",
		"", float64(s.metrics.jobsDone.Load()))
	p.counter("whirld_jobs_failed_total", "Jobs that failed.",
		"", float64(s.metrics.jobsFailed.Load()))
	p.counter("whirld_jobs_canceled_total", "Jobs canceled before finishing.",
		"", float64(s.metrics.jobsCanceled.Load()))
	p.counter("whirld_shard_jobs_total", "Shard jobs accepted via POST /v1/cells.",
		"", float64(s.metrics.shardJobs.Load()))
	p.counter("whirld_rows_served_total", "Sweep cells served from the result store.",
		"", float64(s.metrics.rowsServed.Load()))
	p.counter("whirld_rows_computed_total", "Sweep cells simulated.",
		"", float64(s.metrics.rowsComputed.Load()))
	p.counter("whirld_row_marshal_errors_total", "SSE rows surfaced as error rows because they could not be marshaled.",
		"", float64(s.metrics.rowMarshalErrs.Load()))

	p.counter("whirld_dispatch_redispatched_total", "Cells moved off dead workers to survivors.",
		"", float64(s.metrics.redispatched.Load()))
	p.counter("whirld_dispatch_workers_lost_total", "Workers that died mid-shard.",
		"", float64(s.metrics.workersLost.Load()))
	p.counter("whirld_dispatch_rebalances_total", "Dispatch rounds run against a changed fleet membership.",
		"", float64(s.metrics.rebalances.Load()))

	p.gauge("whirld_fleet_alive", "Fleet members currently alive.", "", float64(fst.Alive))
	p.gauge("whirld_fleet_dead", "Fleet members currently dead.", "", float64(fst.Dead))
	p.counter("whirld_fleet_registrations_total", "Worker registrations.", "", float64(fst.Registrations))
	p.counter("whirld_fleet_heartbeats_total", "Worker heartbeats.", "", float64(fst.Heartbeats))
	p.counter("whirld_fleet_leases_expired_total", "Worker leases expired.", "", float64(fst.LeasesExpired))
	p.counter("whirld_fleet_departures_total", "Graceful worker departures.", "", float64(fst.Departures))

	p.counter("whirld_store_hits_total", "Result store lookups served.", "", float64(st.Hits))
	p.counter("whirld_store_misses_total", "Result store lookups missed.", "", float64(st.Misses))
	p.counter("whirld_store_puts_total", "Result store commits.", "", float64(st.Puts))
	p.counter("whirld_store_corrupt_rows_total", "Corrupt rows skipped while reading the store.", "", float64(st.CorruptRows))
	p.gauge("whirld_store_records", "Records currently in the result store.", "", float64(st.Records))

	// Per-endpoint serving state. One TYPE header per family, then one
	// sample per endpoint (and per quantile for the latency summary).
	eps := s.endpointsByName()
	p.head("whirld_endpoint_requests_total", "Requests received, by endpoint.", "counter")
	for _, ep := range eps {
		p.sample("whirld_endpoint_requests_total", promLabels("endpoint", ep.name), float64(ep.requests.Load()))
	}
	p.head("whirld_endpoint_inflight", "Requests currently in flight, by endpoint.", "gauge")
	for _, ep := range eps {
		p.sample("whirld_endpoint_inflight", promLabels("endpoint", ep.name), float64(ep.inflight.Load()))
	}
	p.head("whirld_endpoint_shed_total", "Requests shed, by endpoint.", "counter")
	for _, ep := range eps {
		p.sample("whirld_endpoint_shed_total", promLabels("endpoint", ep.name), float64(ep.shed.Load()))
	}
	p.head("whirld_endpoint_latency_ms", "Request latency quantile snapshot in milliseconds, by endpoint.", "gauge")
	quantiles := []struct {
		q float64
		s string
	}{{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}
	snaps := make([]histSnap, len(eps))
	for i, ep := range eps {
		snaps[i] = ep.hist.snapshot()
	}
	for i, ep := range eps {
		for _, q := range quantiles {
			p.sample("whirld_endpoint_latency_ms",
				promLabels("endpoint", ep.name, "quantile", q.s),
				roundMS(snaps[i].quantile(q.q)))
		}
	}
	p.head("whirld_endpoint_latency_observations_total", "Latency observations, by endpoint.", "counter")
	for i, ep := range eps {
		p.sample("whirld_endpoint_latency_observations_total", promLabels("endpoint", ep.name), float64(snaps[i].count))
	}

	// Per-worker dispatch aggregates (coordinator role).
	s.dispMu.Lock()
	type workerRow struct {
		url string
		agg workerAgg
	}
	workers := make([]workerRow, 0, len(s.dispOrder))
	for _, url := range s.dispOrder {
		workers = append(workers, workerRow{url, *s.dispWorkers[url]})
	}
	s.dispMu.Unlock()
	if len(workers) > 0 {
		p.head("whirld_worker_cells_total", "Cells delivered per worker, by resolution.", "counter")
		for _, wr := range workers {
			p.sample("whirld_worker_cells_total", promLabels("worker", wr.url, "kind", "served"), float64(wr.agg.served))
			p.sample("whirld_worker_cells_total", promLabels("worker", wr.url, "kind", "computed"), float64(wr.agg.computed))
			p.sample("whirld_worker_cells_total", promLabels("worker", wr.url, "kind", "errors"), float64(wr.agg.errors))
			p.sample("whirld_worker_cells_total", promLabels("worker", wr.url, "kind", "redispatched"), float64(wr.agg.redispatched))
		}
		p.head("whirld_worker_dead", "Whether the worker has died mid-shard (1) or not (0).", "gauge")
		for _, wr := range workers {
			dead := 0.0
			if wr.agg.dead {
				dead = 1
			}
			p.sample("whirld_worker_dead", promLabels("worker", wr.url), dead)
		}
	}
}

// promWriter accumulates exposition lines onto an http response.
type promWriter struct{ w io.Writer }

// head writes the HELP + TYPE preamble for one metric family.
func (p promWriter) head(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, promEscapeHelp(help), name, typ)
}

// sample writes one sample line; labels is pre-rendered ("{...}" or "").
func (p promWriter) sample(name, labels string, v float64) {
	fmt.Fprintf(p.w, "%s%s %s\n", name, labels, promFloat(v))
}

func (p promWriter) counter(name, help, labels string, v float64) {
	p.head(name, help, "counter")
	p.sample(name, labels, v)
}

func (p promWriter) gauge(name, help, labels string, v float64) {
	p.head(name, help, "gauge")
	p.sample(name, labels, v)
}

// promFloat renders a sample value: integral values without an
// exponent, everything else via %g.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// promLabels renders k1,v1,k2,v2,... as a label set with escaped
// values.
func promLabels(kv ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(promEscapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func promEscapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promEscapeHelp escapes HELP text: backslash and newline only.
func promEscapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
