package graph

import (
	"testing"
	"testing/quick"
)

func TestFromEdgesSymmetric(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	for v := int32(0); v < 4; v++ {
		for _, u := range g.Neighbors(v) {
			found := false
			for _, w := range g.Neighbors(u) {
				if w == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", v, u)
			}
		}
	}
}

func TestFromEdgesDedupAndNoSelfLoops(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees: %d %d, want 1 1", g.Degree(0), g.Degree(1))
	}
	if g.Degree(2) != 0 {
		t.Fatal("self loop survived")
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(10, 8, 42)
	if g.N != 1024 {
		t.Fatalf("N = %d", g.N)
	}
	if g.M() == 0 {
		t.Fatal("no edges")
	}
	// Power-law-ish: max degree much higher than average.
	maxDeg, sum := 0, 0
	for v := int32(0); v < int32(g.N); v++ {
		d := g.Degree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(g.N)
	if float64(maxDeg) < 5*avg {
		t.Fatalf("not skewed: max %d avg %.1f", maxDeg, avg)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 4, 7)
	b := RMAT(8, 4, 7)
	if a.M() != b.M() {
		t.Fatal("RMAT not deterministic")
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatal("RMAT adjacency differs")
		}
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 3)
	if g.N != 12 {
		t.Fatalf("N = %d", g.N)
	}
	// Interior vertex has 4 neighbors; corner has 2.
	if g.Degree(5) != 4 {
		t.Fatalf("interior degree = %d", g.Degree(5))
	}
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
}

func TestUniform(t *testing.T) {
	g := Uniform(1000, 8, 3)
	avg := float64(g.M()) / float64(g.N)
	if avg < 5 || avg > 9 {
		t.Fatalf("avg degree %.1f, want ~8", avg)
	}
}

func TestQuickXadjMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		g := Uniform(200, 4, seed)
		for i := 0; i < g.N; i++ {
			if g.Xadj[i] > g.Xadj[i+1] {
				return false
			}
		}
		return int(g.Xadj[g.N]) == len(g.Adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
