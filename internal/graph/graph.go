// Package graph provides the CSR graphs and generators the parallel
// workloads (Sec 3.4) run on: RMAT power-law graphs for the irregular
// apps (pagerank, connectedComponents, triangleCounting) and 2-D grids
// for the regular ones.
package graph

import (
	"sort"

	"whirlpool/internal/stats"
)

// CSR is a compressed-sparse-row graph.
type CSR struct {
	N    int     // vertices
	Xadj []int32 // N+1 offsets into Adj
	Adj  []int32 // neighbor lists
}

// M returns the number of directed edges.
func (g *CSR) M() int { return len(g.Adj) }

// Degree returns vertex v's out-degree.
func (g *CSR) Degree(v int32) int {
	return int(g.Xadj[v+1] - g.Xadj[v])
}

// Neighbors returns v's adjacency slice (shared; do not modify).
func (g *CSR) Neighbors(v int32) []int32 {
	return g.Adj[g.Xadj[v]:g.Xadj[v+1]]
}

// FromEdges builds a CSR from an edge list, symmetrizing and removing
// self-loops and duplicates.
func FromEdges(n int, edges [][2]int32) *CSR {
	type edge struct{ u, v int32 }
	es := make([]edge, 0, 2*len(edges))
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		es = append(es, edge{e[0], e[1]}, edge{e[1], e[0]})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
	g := &CSR{N: n, Xadj: make([]int32, n+1)}
	var last edge = edge{-1, -1}
	for _, e := range es {
		if e == last {
			continue
		}
		last = e
		g.Adj = append(g.Adj, e.v)
		g.Xadj[e.u+1]++
	}
	for i := 0; i < n; i++ {
		g.Xadj[i+1] += g.Xadj[i]
	}
	return g
}

// RMAT generates a power-law graph with the classic recursive-matrix
// partition probabilities (a=0.57, b=c=0.19), the standard stand-in for
// the social/web graphs the paper's graph benchmarks run on.
func RMAT(scale int, edgeFactor int, seed uint64) *CSR {
	n := 1 << scale
	m := n * edgeFactor
	rng := stats.NewRng(seed)
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < 0.57: // a: top-left
			case r < 0.76: // b: top-right
				v |= 1 << bit
			case r < 0.95: // c: bottom-left
				u |= 1 << bit
			default: // d: bottom-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
	}
	return FromEdges(n, edges)
}

// Grid2D generates a w×h 4-neighbor mesh graph (regular apps partition
// these trivially).
func Grid2D(w, h int) *CSR {
	var edges [][2]int32
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, [2]int32{id(x, y), id(x+1, y)})
			}
			if y+1 < h {
				edges = append(edges, [2]int32{id(x, y), id(x, y+1)})
			}
		}
	}
	return FromEdges(w*h, edges)
}

// Uniform generates an Erdős–Rényi-style random graph with the given
// average degree.
func Uniform(n, avgDegree int, seed uint64) *CSR {
	rng := stats.NewRng(seed)
	m := n * avgDegree / 2
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	return FromEdges(n, edges)
}
