// Package fleet is whirld's worker-membership subsystem: the elastic
// replacement for a static -workers URL list. Workers self-register
// with the coordinator (POST /v1/workers), renew a lease with periodic
// heartbeats that carry load samples, and fall out of the alive set
// when the lease deadline passes — exactly the failure treatment a
// dropped connection gets, so "silent" deaths (a hung host, a network
// partition) and loud ones (kill -9) converge on the same re-dispatch
// path. A worker that re-registers after expiry rejoins the alive set
// under a fresh epoch.
//
// The package has three halves:
//
//   - Registry: the coordinator-side membership book — registration,
//     lease renewal, lazy expiry, and immutable Snapshots the dispatch
//     layer routes against.
//   - The router (router.go): capacity- and load-weighted rendezvous
//     hashing over a membership snapshot. Deterministic given the same
//     snapshot, so distributed sweeps stay reproducible.
//   - Agent (agent.go): the worker-side join loop — register,
//     heartbeat with load samples, re-register when the lease is gone.
package fleet

import (
	"fmt"
	"io"
	"log/slog"
	"net/url"
	"strings"
	"sync"
	"time"
)

// DefaultLeaseTTL is the lease duration when RegistryOptions.LeaseTTL
// is zero: long enough that one dropped heartbeat (sent every TTL/3)
// does not kill a worker, short enough that a dead worker stops
// receiving shards within seconds.
const DefaultLeaseTTL = 10 * time.Second

// DefaultCapacity stands in for a worker that did not declare one
// (static -workers members, or a registration with capacity 0).
const DefaultCapacity = 4

// Load is one worker's self-reported load sample, carried by every
// heartbeat. The router discounts a worker's routing weight by its
// backlog, so capacity follows observed demand instead of a static
// split.
type Load struct {
	// InflightCells counts cells of running jobs not yet finished on
	// the worker.
	InflightCells int `json:"inflight_cells"`
	// QueuedCells counts cells of jobs still waiting in the worker's
	// queue.
	QueuedCells int `json:"queued_cells"`
	// CellsPerSec is the worker's recent completion throughput.
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
}

// backlog is the load's total undone-cell count, the quantity the
// router discounts by.
func (l Load) backlog() int { return l.InflightCells + l.QueuedCells }

// Member is one alive worker inside a membership Snapshot.
type Member struct {
	// ID is the registry-assigned name ("w1", "w2", ...), stable for
	// the worker's URL across re-registrations. The router hashes IDs,
	// not URLs, so routing does not move when a fleet is rebuilt on
	// different ports.
	ID string
	// URL is the worker's advertised base URL.
	URL string
	// Epoch increments on every (re-)registration of the same URL; a
	// dispatcher that saw epoch N die ignores that verdict when epoch
	// N+1 joins.
	Epoch int
	// Capacity is the worker's declared parallel simulation slots
	// (whirld -parallel); 0 means undeclared (DefaultCapacity applies).
	Capacity int
	// Static marks a member seeded from a -workers URL list: no lease,
	// never expires, no load samples.
	Static bool
	// Load is the worker's latest heartbeat sample (zero for static
	// members).
	Load Load
}

// Key identifies one incarnation of a member: dispatch tracks per-job
// deaths by it, so a re-registered worker (new epoch) is retried while
// the dead incarnation stays dead.
func (m Member) Key() string { return fmt.Sprintf("%s#%d", m.ID, m.Epoch) }

// EffectiveCapacity is the declared capacity with the undeclared
// default applied.
func (m Member) EffectiveCapacity() int {
	if m.Capacity > 0 {
		return m.Capacity
	}
	return DefaultCapacity
}

// Weight is the member's routing weight: its capacity, discounted by
// self-reported backlog per slot. An idle worker weighs its full
// capacity; a worker with a backlog of one full wave weighs half.
func (m Member) Weight() float64 {
	c := float64(m.EffectiveCapacity())
	return c / (1 + float64(m.Load.backlog())/c)
}

// Snapshot is an immutable view of the alive set, in registration
// order. Version changes exactly when membership changes (join, death,
// departure, re-registration) — not on heartbeats — so a dispatcher
// comparing versions between rounds counts real rebalances only.
type Snapshot struct {
	Version uint64
	Members []Member
}

// Membership is dispatch's view of the fleet: anything that can
// produce membership snapshots. *Registry implements it; tests and
// static URL lists use Static.
type Membership interface {
	Snapshot() Snapshot
}

// ErrNoLease reports a heartbeat or deregistration for a worker the
// registry does not hold a live lease for (never registered, expired,
// or superseded by a newer epoch). The worker's move is to re-register.
var ErrNoLease = fmt.Errorf("fleet: no live lease for this worker (re-register)")

// RegistryOptions configure a Registry.
type RegistryOptions struct {
	// LeaseTTL is how long a lease lives without renewal; 0 means
	// DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
	// Log, if set, receives membership events (joins, expiries,
	// departures) with worker/epoch fields attached. Nil discards.
	Log *slog.Logger
}

// RegistryStats are the registry's monotonic counters plus the current
// alive/dead split, surfaced as the fleet.* metrics namespace.
type RegistryStats struct {
	Alive         int
	Dead          int
	Registrations int64
	Heartbeats    int64
	LeasesExpired int64
	Departures    int64
}

// WorkerInfo is one worker's full record for GET /v1/workers: identity,
// lease state, and the latest load sample.
type WorkerInfo struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Epoch    int    `json:"epoch"`
	Capacity int    `json:"capacity"`
	Static   bool   `json:"static,omitempty"`
	Alive    bool   `json:"alive"`
	// Reason says why a dead worker died: "lease expired" or "left".
	Reason string `json:"reason,omitempty"`
	// RegisteredUnix is the first registration time of this URL.
	RegisteredUnix int64 `json:"registered_unix"`
	// HeartbeatAgeS is seconds since the last heartbeat (or
	// registration); absent for static members.
	HeartbeatAgeS float64 `json:"heartbeat_age_s,omitempty"`
	// LeaseRemainingS is seconds until the lease expires; absent for
	// static and dead members.
	LeaseRemainingS float64 `json:"lease_remaining_s,omitempty"`
	Load            Load    `json:"load"`
}

// workerRec is the registry's mutable per-URL record.
type workerRec struct {
	id         string
	url        string
	epoch      int
	capacity   int
	static     bool
	alive      bool
	reason     string
	registered time.Time
	lastBeat   time.Time
	deadline   time.Time // zero for static members
	load       Load
}

// Registry is the coordinator-side membership book. All methods are
// safe for concurrent use; lease expiry is evaluated lazily against
// the clock on every read, so there is no background goroutine to
// leak and tests drive time explicitly.
type Registry struct {
	ttl time.Duration
	now func() time.Time
	log *slog.Logger

	mu      sync.Mutex
	byURL   map[string]*workerRec
	byID    map[string]*workerRec
	order   []*workerRec // registration order
	seq     int
	version uint64

	registrations int64
	heartbeats    int64
	leasesExpired int64
	departures    int64
}

// NewRegistry builds an empty registry.
func NewRegistry(opt RegistryOptions) *Registry {
	r := &Registry{
		ttl:   opt.LeaseTTL,
		now:   opt.Now,
		log:   opt.Log,
		byURL: map[string]*workerRec{},
		byID:  map[string]*workerRec{},
	}
	if r.ttl <= 0 {
		r.ttl = DefaultLeaseTTL
	}
	if r.now == nil {
		r.now = time.Now
	}
	if r.log == nil {
		r.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return r
}

// LeaseTTL returns the registry's lease duration.
func (r *Registry) LeaseTTL() time.Duration { return r.ttl }

// NormalizeURL canonicalizes a worker base URL the way every fleet
// entry point does: trimmed, http(s)-only, no trailing slash.
func NormalizeURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	if raw == "" {
		return "", fmt.Errorf("fleet: empty worker URL")
	}
	u, err := url.Parse(raw)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("fleet: worker URL %q is not http(s)://host[:port]", raw)
	}
	return raw, nil
}

// Register adds the worker at rawURL to the alive set (or renews and
// re-epochs it if the URL is already known), returning its member
// identity and the lease TTL the worker must heartbeat within.
func (r *Registry) Register(rawURL string, capacity int) (Member, time.Duration, error) {
	u, err := NormalizeURL(rawURL)
	if err != nil {
		return Member{}, 0, err
	}
	if capacity < 0 {
		return Member{}, 0, fmt.Errorf("fleet: negative capacity %d", capacity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.pruneLocked(now)
	rec := r.byURL[u]
	if rec == nil {
		r.seq++
		rec = &workerRec{id: fmt.Sprintf("w%d", r.seq), url: u, registered: now}
		r.byURL[u] = rec
		r.byID[rec.id] = rec
		r.order = append(r.order, rec)
	}
	rejoin := rec.epoch > 0
	rec.epoch++
	rec.capacity = capacity
	rec.static = false
	rec.alive = true
	rec.reason = ""
	rec.lastBeat = now
	rec.deadline = now.Add(r.ttl)
	rec.load = Load{}
	r.registrations++
	r.version++
	verb := "joined"
	if rejoin {
		verb = "re-joined"
	}
	r.log.Info("fleet: worker "+verb,
		"worker", rec.id, "url", u, "capacity", capacity,
		"lease", r.ttl.String(), "epoch", rec.epoch)
	return rec.member(), r.ttl, nil
}

// AddStatic seeds a permanent member from a configured URL (-workers
// back-compat). Static members hold no lease and never expire; their
// only death is the per-job connection-drop detection in dispatch.
// Re-adding a known URL is a no-op.
func (r *Registry) AddStatic(rawURL string, capacity int) error {
	u, err := NormalizeURL(rawURL)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byURL[u] != nil {
		return nil
	}
	r.seq++
	now := r.now()
	rec := &workerRec{
		id: fmt.Sprintf("w%d", r.seq), url: u, epoch: 1, capacity: capacity,
		static: true, alive: true, registered: now, lastBeat: now,
	}
	r.byURL[u] = rec
	r.byID[rec.id] = rec
	r.order = append(r.order, rec)
	r.version++
	return nil
}

// Heartbeat renews the lease of worker id at the given epoch and
// records its load sample, returning the renewed TTL. ErrNoLease means
// the registry holds no live lease for that incarnation — the worker
// re-registers and carries on.
func (r *Registry) Heartbeat(id string, epoch int, load Load) (time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.pruneLocked(now)
	rec := r.byID[id]
	if rec == nil || !rec.alive || rec.static || rec.epoch != epoch {
		return 0, ErrNoLease
	}
	rec.lastBeat = now
	rec.deadline = now.Add(r.ttl)
	rec.load = load
	r.heartbeats++
	return r.ttl, nil
}

// Deregister removes worker id from the alive set (graceful leave, the
// worker is draining). ErrNoLease if the worker is not currently alive.
func (r *Registry) Deregister(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.now())
	rec := r.byID[id]
	if rec == nil || !rec.alive || rec.static {
		return ErrNoLease
	}
	rec.alive = false
	rec.reason = "left"
	r.departures++
	r.version++
	r.log.Info("fleet: worker left", "worker", rec.id, "url", rec.url)
	return nil
}

// Snapshot returns the current alive set, expiring overdue leases
// first. The returned value is immutable.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.now())
	members := make([]Member, 0, len(r.order))
	for _, rec := range r.order {
		if rec.alive {
			members = append(members, rec.member())
		}
	}
	return Snapshot{Version: r.version, Members: members}
}

// Workers lists every worker the registry has ever seen — alive and
// dead — in registration order, for GET /v1/workers.
func (r *Registry) Workers() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.pruneLocked(now)
	out := make([]WorkerInfo, 0, len(r.order))
	for _, rec := range r.order {
		wi := WorkerInfo{
			ID: rec.id, URL: rec.url, Epoch: rec.epoch, Capacity: rec.capacity,
			Static: rec.static, Alive: rec.alive, Reason: rec.reason,
			RegisteredUnix: rec.registered.Unix(), Load: rec.load,
		}
		if !rec.static {
			wi.HeartbeatAgeS = now.Sub(rec.lastBeat).Seconds()
			if rec.alive {
				wi.LeaseRemainingS = rec.deadline.Sub(now).Seconds()
			}
		}
		out = append(out, wi)
	}
	return out
}

// Stats snapshots the registry's counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.now())
	st := RegistryStats{
		Registrations: r.registrations,
		Heartbeats:    r.heartbeats,
		LeasesExpired: r.leasesExpired,
		Departures:    r.departures,
	}
	for _, rec := range r.order {
		if rec.alive {
			st.Alive++
		} else {
			st.Dead++
		}
	}
	return st
}

// pruneLocked expires every leased member whose deadline has passed.
// Callers hold r.mu.
func (r *Registry) pruneLocked(now time.Time) {
	for _, rec := range r.order {
		if !rec.alive || rec.static || now.Before(rec.deadline) {
			continue
		}
		rec.alive = false
		rec.reason = "lease expired"
		r.leasesExpired++
		r.version++
		r.log.Warn("fleet: lease expired; marked dead",
			"worker", rec.id, "url", rec.url, "epoch", rec.epoch,
			"silence_s", fmt.Sprintf("%.1f", now.Sub(rec.lastBeat).Seconds()))
	}
}

func (rec *workerRec) member() Member {
	return Member{
		ID: rec.id, URL: rec.url, Epoch: rec.epoch,
		Capacity: rec.capacity, Static: rec.static, Load: rec.load,
	}
}

// Static builds a fixed membership over the given worker URLs — the
// -workers back-compat path and the natural fake for tests. URLs are
// normalized and deduplicated; an empty result is an error.
func Static(urls []string, capacity int) (Membership, error) {
	r := NewRegistry(RegistryOptions{})
	for _, u := range urls {
		if strings.TrimSpace(u) == "" {
			continue
		}
		if err := r.AddStatic(u, capacity); err != nil {
			return nil, err
		}
	}
	if len(r.Snapshot().Members) == 0 {
		return nil, fmt.Errorf("fleet: no worker URLs")
	}
	return staticMembership{r.Snapshot()}, nil
}

type staticMembership struct{ snap Snapshot }

func (s staticMembership) Snapshot() Snapshot { return s.snap }
