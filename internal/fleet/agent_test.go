package fleet

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whirlpool/internal/obs"
)

// testLog adapts t.Logf into the slog logger the agent expects.
func testLog(t *testing.T) *slog.Logger {
	return obs.NewLogger(testLogWriter{t}, "agent")
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// coordStub is a minimal coordinator speaking the /v1/workers protocol
// over a real Registry, standing in for internal/server in agent tests.
type coordStub struct {
	reg *Registry
	srv *httptest.Server
}

func newCoordStub(t *testing.T, ttl time.Duration) *coordStub {
	t.Helper()
	c := &coordStub{reg: NewRegistry(RegistryOptions{LeaseTTL: ttl})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		m, lease, err := c.reg.Register(req.URL, req.Capacity)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(registerResponse{
			ID: m.ID, Epoch: m.Epoch,
			LeaseTTLS: lease.Seconds(), HeartbeatS: lease.Seconds() / 3,
		})
	})
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		lease, err := c.reg.Heartbeat(r.PathValue("id"), req.Epoch, req.Load)
		if err != nil {
			http.Error(w, `{"error":{"code":"not_found","message":"no lease"}}`, http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(heartbeatResponse{LeaseTTLS: lease.Seconds()})
	})
	mux.HandleFunc("DELETE /v1/workers/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := c.reg.Deregister(r.PathValue("id")); err != nil {
			http.Error(w, `{"error":{"code":"not_found","message":"no lease"}}`, http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	c.srv = httptest.NewServer(mux)
	t.Cleanup(c.srv.Close)
	return c
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAgentRegistersAndHeartbeats(t *testing.T) {
	c := newCoordStub(t, 200*time.Millisecond)
	loads := 0
	a, err := StartAgent(AgentOptions{
		Coordinator: c.srv.URL,
		Advertise:   "http://worker:8081",
		Capacity:    3,
		Load:        func() Load { loads++; return Load{InflightCells: 2} },
		Log:         testLog(t),
	})
	if err != nil {
		t.Fatalf("StartAgent: %v", err)
	}
	defer a.Close()

	waitFor(t, "registration", func() bool { return len(c.reg.Snapshot().Members) == 1 })
	m := c.reg.Snapshot().Members[0]
	if m.URL != "http://worker:8081" || m.Capacity != 3 {
		t.Fatalf("registered member = %+v", m)
	}
	// Lease is 200ms, heartbeats every ~66ms: staying alive across 3
	// TTLs proves renewal works; load samples must flow through.
	waitFor(t, "load sample via heartbeat", func() bool {
		mem := c.reg.Snapshot().Members
		return len(mem) == 1 && mem[0].Load.InflightCells == 2
	})
	time.Sleep(600 * time.Millisecond)
	if len(c.reg.Snapshot().Members) != 1 {
		t.Fatal("agent's lease expired despite heartbeats")
	}
	if loads == 0 {
		t.Fatal("Load callback never sampled")
	}
}

func TestAgentCloseDeregisters(t *testing.T) {
	c := newCoordStub(t, 10*time.Second)
	a, err := StartAgent(AgentOptions{
		Coordinator: c.srv.URL, Advertise: "http://worker:8081", Capacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registration", func() bool { return len(c.reg.Snapshot().Members) == 1 })
	a.Close()
	if len(c.reg.Snapshot().Members) != 0 {
		t.Fatal("Close did not deregister")
	}
	if st := c.reg.Stats(); st.Departures != 1 {
		t.Fatalf("stats = %+v, want 1 departure", st)
	}
}

// TestAgentReregistersAfterLeaseLoss: when the coordinator forgets the
// lease (here: forced expiry via a TTL shorter than the heartbeat
// cadence would allow — we simulate by deregistering behind the
// agent's back), the next heartbeat's 404 must trigger re-registration
// under a bumped epoch.
func TestAgentReregistersAfterLeaseLoss(t *testing.T) {
	c := newCoordStub(t, 300*time.Millisecond)
	a, err := StartAgent(AgentOptions{
		Coordinator: c.srv.URL, Advertise: "http://worker:8081", Capacity: 1, Log: testLog(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	waitFor(t, "registration", func() bool { return len(c.reg.Snapshot().Members) == 1 })
	_, epoch1 := a.Identity()

	// Kill the lease out from under the agent.
	id, _ := a.Identity()
	if err := c.reg.Deregister(id); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-registration with bumped epoch", func() bool {
		mem := c.reg.Snapshot().Members
		return len(mem) == 1 && mem[0].Epoch > epoch1
	})
}

// TestAgentRetriesUnreachableCoordinator: an agent started against a
// dead coordinator keeps retrying and joins once it comes up.
func TestAgentRetriesUnreachableCoordinator(t *testing.T) {
	c := newCoordStub(t, 10*time.Second)
	addr := c.srv.Listener.Addr().String()
	c.srv.Close() // coordinator down

	a, err := StartAgent(AgentOptions{
		Coordinator: "http://" + addr, Advertise: "http://worker:8081", Capacity: 1,
	})
	if err != nil {
		t.Fatalf("StartAgent should not fail on unreachable coordinator: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // a failed attempt or two
	a.Close()
}

func TestStartAgentValidates(t *testing.T) {
	if _, err := StartAgent(AgentOptions{Coordinator: "http://c", Advertise: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bad advertise accepted: %v", err)
	}
	if _, err := StartAgent(AgentOptions{Coordinator: "", Advertise: "http://w:1"}); err == nil {
		t.Fatal("empty coordinator accepted")
	}
}
