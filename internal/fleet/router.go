package fleet

import (
	"hash/fnv"
	"math"
	"sort"
)

// Rank orders a snapshot's members by routing preference for one cell
// key, best first, using weighted rendezvous (highest-random-weight)
// hashing: each member scores weight/-ln(u) where u is a uniform
// (0,1) value hashed from (member ID, cell key), and higher scores
// win. The ranking is a pure function of the snapshot and the key —
// deterministic given the same membership, so distributed tests stay
// reproducible — and minimally disruptive across membership changes: a
// join or death only moves the cells that hashed to the affected
// member. IDs are hashed instead of URLs so routing survives a fleet
// rebuilt on different ephemeral ports.
func Rank(snap Snapshot, key string) []Member {
	ranked := make([]Member, len(snap.Members))
	copy(ranked, snap.Members)
	scores := make(map[string]float64, len(ranked))
	for _, m := range ranked {
		scores[m.ID] = score(m, key)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i].ID], scores[ranked[j].ID]
		if si != sj {
			return si > sj
		}
		return ranked[i].ID < ranked[j].ID
	})
	return ranked
}

// score is one member's rendezvous weight for one key. The -ln(u)
// transform (Thaler/Ravishankar) makes expected traffic share exactly
// proportional to Member.Weight.
func score(m Member, key string) float64 {
	h := fnv.New64a()
	h.Write([]byte(m.ID))
	h.Write([]byte{0})
	h.Write([]byte(key))
	// FNV alone is not uniform enough for the exponential transform
	// (short inputs under-avalanche), so finish with a murmur3-style
	// mix. Top 53 bits → uniform in (0,1): the +0.5 keeps u strictly
	// inside the interval so ln(u) is finite and non-zero.
	hv := fmix64(h.Sum64())
	u := (float64(hv>>11) + 0.5) / (1 << 53)
	w := m.Weight()
	if w <= 0 {
		w = 1e-9
	}
	return w / -math.Log(u)
}

// fmix64 is murmur3's 64-bit finalizer: full avalanche, so every
// input bit flips every output bit with probability ~1/2.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
