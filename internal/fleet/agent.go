package fleet

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"whirlpool/internal/apiclient"
)

// registerRequest / registerResponse / heartbeatRequest /
// heartbeatResponse are the wire shapes of the /v1/workers protocol,
// shared by Agent and the server handlers.
type registerRequest struct {
	URL      string `json:"url"`
	Capacity int    `json:"capacity"`
}

type registerResponse struct {
	ID          string  `json:"id"`
	Epoch       int     `json:"epoch"`
	LeaseTTLS   float64 `json:"lease_ttl_s"`
	HeartbeatS  float64 `json:"heartbeat_s"`
	Coordinator string  `json:"coordinator,omitempty"`
}

type heartbeatRequest struct {
	Epoch int  `json:"epoch"`
	Load  Load `json:"load"`
}

type heartbeatResponse struct {
	LeaseTTLS float64 `json:"lease_ttl_s"`
}

// AgentOptions configure a worker's join loop.
type AgentOptions struct {
	// Coordinator is the coordinator's base URL (whirld -join).
	Coordinator string
	// Advertise is this worker's own base URL, as the coordinator
	// should dial it.
	Advertise string
	// Capacity is the worker's parallel simulation slots (-parallel).
	Capacity int
	// Load supplies the load sample sent with each heartbeat; nil
	// sends zeros.
	Load func() Load
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Log, if set, receives join/lease events. Nil discards.
	Log *slog.Logger
}

// Agent is the worker side of the fleet protocol: it registers with
// the coordinator, heartbeats at a third of the lease TTL (with ±20%
// jitter so a fleet started together doesn't beat in lockstep), and
// re-registers whenever the coordinator no longer recognizes the lease
// — a coordinator restart or an expiry during a network hiccup heals
// without operator action. Close deregisters gracefully.
type Agent struct {
	api    *apiclient.Client
	opt    AgentOptions
	cancel context.CancelFunc
	done   chan struct{}

	mu    sync.Mutex
	id    string
	epoch int
}

// StartAgent validates options, performs no blocking I/O, and starts
// the join loop in the background; registration failures are retried
// with backoff until Close.
func StartAgent(opt AgentOptions) (*Agent, error) {
	if _, err := NormalizeURL(opt.Advertise); err != nil {
		return nil, err
	}
	api, err := apiclient.New(opt.Coordinator, opt.Client)
	if err != nil {
		return nil, err
	}
	if opt.Log == nil {
		opt.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opt.Load == nil {
		opt.Load = func() Load { return Load{} }
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Agent{api: api, opt: opt, cancel: cancel, done: make(chan struct{})}
	go a.run(ctx)
	return a, nil
}

// Close stops the heartbeat loop and deregisters from the coordinator
// (best-effort: a dead coordinator just lets the lease lapse).
func (a *Agent) Close() {
	a.cancel()
	<-a.done
	a.mu.Lock()
	id := a.id
	a.mu.Unlock()
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = a.api.Delete(ctx, "/v1/workers/"+id, nil)
}

// Identity returns the agent's current member identity ("" before the
// first successful registration).
func (a *Agent) Identity() (id string, epoch int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.id, a.epoch
}

func (a *Agent) run(ctx context.Context) {
	defer close(a.done)
	const maxBackoff = 5 * time.Second
	backoff := 250 * time.Millisecond
	for ctx.Err() == nil {
		reg, err := a.register(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			a.opt.Log.Warn("fleet: registering failed; will retry",
				"coordinator", a.api.Base(), "err", err.Error(), "backoff", backoff.String())
			if !sleep(ctx, backoff) {
				return
			}
			backoff = min(backoff*2, maxBackoff)
			continue
		}
		backoff = 250 * time.Millisecond
		a.opt.Log.Info("fleet: joined",
			"coordinator", a.api.Base(), "worker", reg.ID, "epoch", reg.Epoch,
			"lease_s", reg.LeaseTTLS, "heartbeat_s", reg.HeartbeatS)
		a.heartbeatLoop(ctx, reg)
	}
}

func (a *Agent) register(ctx context.Context) (registerResponse, error) {
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var resp registerResponse
	err := a.api.PostJSON(rctx, "/v1/workers", registerRequest{
		URL: a.opt.Advertise, Capacity: a.opt.Capacity,
	}, &resp)
	if err != nil {
		return registerResponse{}, err
	}
	a.mu.Lock()
	a.id, a.epoch = resp.ID, resp.Epoch
	a.mu.Unlock()
	return resp, nil
}

// heartbeatLoop renews the lease until the coordinator forgets it
// (→ return, caller re-registers) or ctx is canceled. Transport
// errors are retried on the normal cadence: the lease is TTL and the
// beat TTL/3, so two consecutive failures still leave headroom.
func (a *Agent) heartbeatLoop(ctx context.Context, reg registerResponse) {
	interval := time.Duration(reg.HeartbeatS * float64(time.Second))
	if interval <= 0 {
		interval = DefaultLeaseTTL / 3
	}
	for {
		d := interval + time.Duration((rand.Float64()-0.5)*0.4*float64(interval))
		if !sleep(ctx, d) {
			return
		}
		hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		var resp heartbeatResponse
		err := a.api.PostJSON(hctx, "/v1/workers/"+reg.ID+"/heartbeat",
			heartbeatRequest{Epoch: reg.Epoch, Load: a.opt.Load()}, &resp)
		cancel()
		if err == nil {
			continue
		}
		if ctx.Err() != nil {
			return
		}
		var ae *apiclient.Error
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			a.opt.Log.Warn("fleet: lease gone at the coordinator; re-registering", "worker", reg.ID)
			return
		}
		a.opt.Log.Warn("fleet: heartbeat failed; lease expires if this persists",
			"coordinator", a.api.Base(), "err", err.Error())
	}
}

// sleep waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
