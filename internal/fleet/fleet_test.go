package fleet

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Registry's lazy expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestRegistry(t *testing.T, ttl time.Duration) (*Registry, *fakeClock) {
	t.Helper()
	clk := newClock()
	return NewRegistry(RegistryOptions{LeaseTTL: ttl, Now: clk.now}), clk
}

func TestRegisterAddsAliveMember(t *testing.T) {
	r, _ := newTestRegistry(t, 10*time.Second)
	m, ttl, err := r.Register("http://h1:8081/", 3)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if ttl != 10*time.Second {
		t.Fatalf("lease ttl = %v, want 10s", ttl)
	}
	if m.ID != "w1" || m.Epoch != 1 || m.Capacity != 3 {
		t.Fatalf("member = %+v, want w1 epoch 1 capacity 3", m)
	}
	if m.URL != "http://h1:8081" {
		t.Fatalf("URL not normalized: %q", m.URL)
	}
	snap := r.Snapshot()
	if len(snap.Members) != 1 || snap.Members[0].ID != "w1" {
		t.Fatalf("snapshot = %+v, want [w1]", snap.Members)
	}
	st := r.Stats()
	if st.Alive != 1 || st.Dead != 0 || st.Registrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	r, _ := newTestRegistry(t, time.Second)
	for _, bad := range []string{"", "   ", "h1:8081", "ftp://h1", "http://"} {
		if _, _, err := r.Register(bad, 1); err == nil {
			t.Errorf("Register(%q) accepted, want error", bad)
		}
	}
	if _, _, err := r.Register("http://h1:8081", -1); err == nil {
		t.Errorf("negative capacity accepted")
	}
}

func TestHeartbeatRenewsLease(t *testing.T) {
	r, clk := newTestRegistry(t, 10*time.Second)
	m, _, _ := r.Register("http://h1:8081", 2)
	// Renew every 6s: past the original deadline each time, but alive
	// because each beat pushes the deadline out.
	for i := 0; i < 5; i++ {
		clk.advance(6 * time.Second)
		ttl, err := r.Heartbeat(m.ID, m.Epoch, Load{InflightCells: i})
		if err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		if ttl != 10*time.Second {
			t.Fatalf("heartbeat ttl = %v", ttl)
		}
	}
	snap := r.Snapshot()
	if len(snap.Members) != 1 {
		t.Fatalf("worker died despite renewals: %+v", snap)
	}
	if got := snap.Members[0].Load.InflightCells; got != 4 {
		t.Fatalf("load sample not recorded: inflight = %d, want 4", got)
	}
	if st := r.Stats(); st.Heartbeats != 5 {
		t.Fatalf("heartbeats = %d, want 5", st.Heartbeats)
	}
}

func TestLeaseExpiryIsDeath(t *testing.T) {
	r, clk := newTestRegistry(t, 10*time.Second)
	m, _, _ := r.Register("http://h1:8081", 2)
	v0 := r.Snapshot().Version

	clk.advance(10*time.Second - time.Millisecond)
	if len(r.Snapshot().Members) != 1 {
		t.Fatal("worker dead before deadline")
	}
	clk.advance(time.Millisecond)
	snap := r.Snapshot()
	if len(snap.Members) != 0 {
		t.Fatalf("worker alive past deadline: %+v", snap.Members)
	}
	if snap.Version == v0 {
		t.Fatal("version did not change on expiry")
	}
	// Expired lease: heartbeats are rejected with ErrNoLease.
	if _, err := r.Heartbeat(m.ID, m.Epoch, Load{}); err != ErrNoLease {
		t.Fatalf("heartbeat after expiry: err = %v, want ErrNoLease", err)
	}
	st := r.Stats()
	if st.Alive != 0 || st.Dead != 1 || st.LeasesExpired != 1 {
		t.Fatalf("stats = %+v", st)
	}
	ws := r.Workers()
	if len(ws) != 1 || ws[0].Alive || ws[0].Reason != "lease expired" {
		t.Fatalf("workers = %+v", ws)
	}
}

func TestRejoinAfterExpiry(t *testing.T) {
	r, clk := newTestRegistry(t, 10*time.Second)
	m1, _, _ := r.Register("http://h1:8081", 2)
	clk.advance(11 * time.Second) // lease lapses
	if len(r.Snapshot().Members) != 0 {
		t.Fatal("worker should be dead")
	}

	m2, _, err := r.Register("http://h1:8081", 4)
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if m2.ID != m1.ID {
		t.Fatalf("re-registration changed ID: %s -> %s", m1.ID, m2.ID)
	}
	if m2.Epoch != m1.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", m2.Epoch, m1.Epoch+1)
	}
	if m2.Capacity != 4 {
		t.Fatalf("capacity not updated: %d", m2.Capacity)
	}
	if len(r.Snapshot().Members) != 1 {
		t.Fatal("rejoined worker not alive")
	}
	// The old incarnation's heartbeats are fenced out...
	if _, err := r.Heartbeat(m1.ID, m1.Epoch, Load{}); err != ErrNoLease {
		t.Fatalf("stale-epoch heartbeat: err = %v, want ErrNoLease", err)
	}
	// ...while the new epoch renews normally.
	if _, err := r.Heartbeat(m2.ID, m2.Epoch, Load{}); err != nil {
		t.Fatalf("new-epoch heartbeat: %v", err)
	}
}

func TestDeregisterLeaves(t *testing.T) {
	r, _ := newTestRegistry(t, 10*time.Second)
	m, _, _ := r.Register("http://h1:8081", 2)
	if err := r.Deregister(m.ID); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if len(r.Snapshot().Members) != 0 {
		t.Fatal("worker alive after leaving")
	}
	if err := r.Deregister(m.ID); err != ErrNoLease {
		t.Fatalf("double deregister: err = %v, want ErrNoLease", err)
	}
	st := r.Stats()
	if st.Departures != 1 || st.LeasesExpired != 0 {
		t.Fatalf("stats = %+v", st)
	}
	ws := r.Workers()
	if len(ws) != 1 || ws[0].Reason != "left" {
		t.Fatalf("workers = %+v", ws)
	}
}

func TestStaticMembersNeverExpire(t *testing.T) {
	r, clk := newTestRegistry(t, time.Second)
	if err := r.AddStatic("http://h1:8081", 0); err != nil {
		t.Fatalf("AddStatic: %v", err)
	}
	if err := r.AddStatic("http://h1:8081/", 2); err != nil {
		t.Fatalf("AddStatic dup: %v", err)
	}
	clk.advance(time.Hour)
	snap := r.Snapshot()
	if len(snap.Members) != 1 || !snap.Members[0].Static {
		t.Fatalf("snapshot = %+v, want one static member", snap.Members)
	}
	if snap.Members[0].EffectiveCapacity() != DefaultCapacity {
		t.Fatalf("effective capacity = %d, want default %d",
			snap.Members[0].EffectiveCapacity(), DefaultCapacity)
	}
	// Static members have no lease to beat or give up.
	if _, err := r.Heartbeat(snap.Members[0].ID, 1, Load{}); err != ErrNoLease {
		t.Fatalf("static heartbeat: err = %v, want ErrNoLease", err)
	}
	if err := r.Deregister(snap.Members[0].ID); err != ErrNoLease {
		t.Fatalf("static deregister: err = %v, want ErrNoLease", err)
	}
}

func TestSnapshotVersionChangesOnMembershipOnly(t *testing.T) {
	r, clk := newTestRegistry(t, 10*time.Second)
	m, _, _ := r.Register("http://h1:8081", 2)
	v := r.Snapshot().Version
	clk.advance(time.Second)
	if _, err := r.Heartbeat(m.ID, m.Epoch, Load{InflightCells: 7}); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().Version; got != v {
		t.Fatalf("heartbeat bumped version %d -> %d", v, got)
	}
	if _, _, err := r.Register("http://h2:8082", 2); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().Version; got == v {
		t.Fatal("join did not bump version")
	}
}

// TestConcurrentHeartbeatExpiryRace hammers Heartbeat, Register,
// Snapshot, and Workers from many goroutines while the clock jumps
// past the lease deadline, for the race detector (make race covers
// this package). Invariant checked: the registry never deadlocks or
// yields a snapshot with a dead member in it.
func TestConcurrentHeartbeatExpiryRace(t *testing.T) {
	r, clk := newTestRegistry(t, 3*time.Second)
	m, _, _ := r.Register("http://h1:8081", 2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := r.Heartbeat(m.ID, m.Epoch, Load{InflightCells: 1})
				if err == ErrNoLease {
					// Lease lost to a clock jump: re-register, like Agent does.
					nm, _, rerr := r.Register("http://h1:8081", 2)
					if rerr != nil {
						t.Error(rerr)
						return
					}
					m2 := nm // race-free copy for this goroutine's next beats
					_ = m2
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			clk.advance(2 * time.Second)
			snap := r.Snapshot()
			for _, mm := range snap.Members {
				if mm.URL != "http://h1:8081" {
					t.Errorf("foreign member %+v", mm)
				}
			}
			_ = r.Workers()
			_ = r.Stats()
		}
		close(stop)
	}()
	wg.Wait()
}

func TestStaticMembership(t *testing.T) {
	m, err := Static([]string{"http://h1:8081", "http://h2:8082/", "http://h1:8081", ""}, 4)
	if err != nil {
		t.Fatalf("Static: %v", err)
	}
	snap := m.Snapshot()
	if len(snap.Members) != 2 {
		t.Fatalf("members = %+v, want 2 after dedupe", snap.Members)
	}
	for _, mm := range snap.Members {
		if !mm.Static || mm.Capacity != 4 {
			t.Fatalf("member = %+v, want static capacity 4", mm)
		}
	}
	if _, err := Static(nil, 0); err == nil {
		t.Fatal("empty Static accepted")
	}
	if _, err := Static([]string{"not-a-url"}, 0); err == nil ||
		!strings.Contains(err.Error(), "not-a-url") {
		t.Fatalf("bad URL error = %v", err)
	}
}

func TestWeightDiscountsBacklog(t *testing.T) {
	idle := Member{ID: "w1", Capacity: 4}
	if got := idle.Weight(); got != 4 {
		t.Fatalf("idle weight = %v, want 4", got)
	}
	busy := Member{ID: "w2", Capacity: 4, Load: Load{InflightCells: 4}}
	if got := busy.Weight(); got != 2 {
		t.Fatalf("one-wave-backlog weight = %v, want 2", got)
	}
	swamped := Member{ID: "w3", Capacity: 4, Load: Load{InflightCells: 4, QueuedCells: 8}}
	if got := swamped.Weight(); got >= busy.Weight() {
		t.Fatalf("more backlog did not lower weight: %v >= %v", got, busy.Weight())
	}
}
