package fleet

import (
	"fmt"
	"testing"
)

func snapOf(members ...Member) Snapshot { return Snapshot{Version: 1, Members: members} }

func TestRankDeterministic(t *testing.T) {
	snap := snapOf(
		Member{ID: "w1", URL: "http://h1", Capacity: 2},
		Member{ID: "w2", URL: "http://h2", Capacity: 2},
		Member{ID: "w3", URL: "http://h3", Capacity: 2},
	)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("cell-%d", i)
		a, b := Rank(snap, key), Rank(snap, key)
		for j := range a {
			if a[j].ID != b[j].ID {
				t.Fatalf("Rank(%q) not deterministic: %v vs %v at %d", key, a[j].ID, b[j].ID, j)
			}
		}
	}
}

// TestRankIgnoresURL pins the property the fleet smoke test relies on:
// routing hashes member IDs, not URLs, so the same fleet rebuilt on
// different ephemeral ports routes identically.
func TestRankIgnoresURL(t *testing.T) {
	a := snapOf(Member{ID: "w1", URL: "http://h:1111", Capacity: 2},
		Member{ID: "w2", URL: "http://h:2222", Capacity: 2})
	b := snapOf(Member{ID: "w1", URL: "http://h:9999", Capacity: 2},
		Member{ID: "w2", URL: "http://h:8888", Capacity: 2})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if Rank(a, key)[0].ID != Rank(b, key)[0].ID {
			t.Fatalf("key %q routed differently when only URLs changed", key)
		}
	}
}

// TestRankMinimalDisruption: adding a member only steals keys for
// itself — no key moves between pre-existing members.
func TestRankMinimalDisruption(t *testing.T) {
	before := snapOf(Member{ID: "w1", Capacity: 2}, Member{ID: "w2", Capacity: 2})
	after := snapOf(Member{ID: "w1", Capacity: 2}, Member{ID: "w2", Capacity: 2},
		Member{ID: "w3", Capacity: 2})
	moved, stolen := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("cell-%d", i)
		b, a := Rank(before, key)[0].ID, Rank(after, key)[0].ID
		if a == b {
			continue
		}
		if a == "w3" {
			stolen++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving members on a join", moved)
	}
	if stolen == 0 {
		t.Fatal("joiner stole no keys at all")
	}
}

// TestRankWeightProportional: a member with twice the capacity should
// win roughly twice the keys.
func TestRankWeightProportional(t *testing.T) {
	snap := snapOf(Member{ID: "w1", Capacity: 2}, Member{ID: "w2", Capacity: 4})
	wins := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		wins[Rank(snap, fmt.Sprintf("cell-%d", i))[0].ID]++
	}
	ratio := float64(wins["w2"]) / float64(wins["w1"])
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("capacity-2x member won %.2fx the keys (w1=%d w2=%d), want ~2x",
			ratio, wins["w1"], wins["w2"])
	}
}

// TestRankLoadAware: with equal capacity, a backlogged member should
// win fewer keys than an idle one.
func TestRankLoadAware(t *testing.T) {
	snap := snapOf(
		Member{ID: "w1", Capacity: 4},
		Member{ID: "w2", Capacity: 4, Load: Load{InflightCells: 8, QueuedCells: 8}},
	)
	wins := map[string]int{}
	for i := 0; i < 2000; i++ {
		wins[Rank(snap, fmt.Sprintf("cell-%d", i))[0].ID]++
	}
	if wins["w2"] >= wins["w1"] {
		t.Fatalf("backlogged member won as many keys as the idle one: %v", wins)
	}
}

func TestRankFullOrder(t *testing.T) {
	snap := snapOf(Member{ID: "w1", Capacity: 2}, Member{ID: "w2", Capacity: 2},
		Member{ID: "w3", Capacity: 2})
	ranked := Rank(snap, "some-cell")
	if len(ranked) != 3 {
		t.Fatalf("Rank returned %d members, want all 3", len(ranked))
	}
	seen := map[string]bool{}
	for _, m := range ranked {
		if seen[m.ID] {
			t.Fatalf("duplicate member %s in ranking", m.ID)
		}
		seen[m.ID] = true
	}
	if len(Rank(Snapshot{}, "k")) != 0 {
		t.Fatal("empty snapshot should rank to nothing")
	}
}
