package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Zeroalloc checks functions marked //whirl:zeroalloc — the span-emit
// path and the raw /v1/results gather path, whose 0-alloc deltas are
// load-bearing for serving p99 — for the allocating constructs that
// most often sneak into such code during review: fmt calls, string<->
// []byte conversions, runtime string concatenation, closures that
// capture locals (forcing them to escape), and append chains growing
// from a nil slice. The check is syntactic and intra-function: calls
// out to unmarked helpers are the callee's business (mark the helper
// too if it is on the hot path). The allocation *count* is still
// guarded dynamically by the bench-delta gate; this analyzer moves the
// common regressions to compile time.
var Zeroalloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "//whirl:zeroalloc functions must avoid fmt, string<->[]byte churn, escaping closures, and unpreallocated append",
	Run:  runZeroalloc,
}

func runZeroalloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.FuncMarker(fn, MarkZeroalloc) == nil {
				continue
			}
			checkZeroalloc(pass, fn)
		}
	}
	pass.reportBadMarkers([]string{MarkZeroalloc}, false)
}

func checkZeroalloc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	fresh := freshSlices(info, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := calleeFunc(info, n); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s allocates in //whirl:zeroalloc function %s", callee.Name(), fn.Name.Name)
				return true
			}
			if msg := allocConversion(info, n); msg != "" {
				pass.Reportf(n.Pos(), "%s allocates in //whirl:zeroalloc function %s", msg, fn.Name.Name)
				return true
			}
			if id, ok := appendTarget(info, n); ok {
				if obj, isFresh := fresh[info.Uses[id]]; isFresh && obj {
					pass.Reportf(n.Pos(), "append to unpreallocated slice %s in //whirl:zeroalloc function %s; make it with a capacity", id.Name, fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isRuntimeStringConcat(info, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in //whirl:zeroalloc function %s; append to a byte slice instead", fn.Name.Name)
			}
		case *ast.FuncLit:
			for _, name := range capturedVars(info, fn, n) {
				pass.Reportf(n.Pos(), "closure captures %s in //whirl:zeroalloc function %s; captured variables escape to the heap", name, fn.Name.Name)
			}
			return false // captures inside nested literals were just reported
		}
		return true
	})
}

// allocConversion describes a string<->byte/rune-slice conversion, the
// canonical hidden copy on hot paths. Returns "" for anything else.
func allocConversion(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return ""
	}
	dst := tv.Type.Underlying()
	src, ok := info.Types[call.Args[0]]
	if !ok {
		return ""
	}
	switch {
	case isString(dst) && isByteOrRuneSlice(src.Type.Underlying()):
		return "[]byte-to-string conversion"
	case isByteOrRuneSlice(dst) && isString(src.Type.Underlying()):
		return "string-to-[]byte conversion"
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// isRuntimeStringConcat reports whether e is a string + that survives
// to runtime (constant folding makes "a"+"b" free).
func isRuntimeStringConcat(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil { // constant-folded
		return false
	}
	return isString(tv.Type.Underlying())
}

// appendTarget returns the plain identifier being appended to, for
// calls of the form x = append(x, ...).
func appendTarget(info *types.Info, call *ast.CallExpr) (*ast.Ident, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	return target, true
}

// freshSlices collects local slice variables declared with no backing
// capacity: `var s []T`, `s := []T{}`, and `s := make([]T, 0)` with no
// cap argument. Appending to one of these grows from nil, reallocating
// along the way.
func freshSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	mark := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		if rhs == nil { // var s []T
			fresh[obj] = true
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			if len(rhs.Elts) == 0 {
				fresh[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "make" && len(rhs.Args) == 2 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					fresh[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					mark(name, rhs)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					mark(id, n.Rhs[i])
				}
			}
		}
		return true
	})
	return fresh
}

// capturedVars lists the enclosing function's local variables that lit
// captures. A capturing closure pins its captures to the heap; the
// zero-alloc paths pass state explicitly instead.
func capturedVars(info *types.Info, fn *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		pos := obj.Pos()
		if pos < fn.Pos() || pos > fn.End() { // package-level or foreign
			return true
		}
		if pos >= lit.Pos() && pos <= lit.End() { // the literal's own locals
			return true
		}
		seen[obj] = true
		names = append(names, obj.Name())
		return true
	})
	return names
}
