package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Registrylock guards the process-global registries — schemes,
// workloads, and the fleet membership — whose maps are read on every
// sweep cell and written by spec loading, runtime registration, and
// worker heartbeats. A guarded container is a map or slice declared in
// the same var block as a sync.Mutex/RWMutex (package registries) or
// in the same struct as a mutex field (fleet.Registry). Every
// function-like body that touches one must lock the paired mutex
// itself, inherit the lock from a lexically enclosing function, follow
// the repo's "...Locked" suffix convention (callers hold the lock), or
// carry //whirl:locked <reason>. This is lock *discipline* analysis,
// not a race detector — make race remains the dynamic backstop.
var Registrylock = &Analyzer{
	Name:  "registrylock",
	Doc:   "schemes/workloads/fleet registry state only under its guarding mutex",
	Match: suffixMatcher("internal/schemes", "internal/workloads", "internal/fleet"),
	Run:   runRegistrylock,
}

// guardedGroup is one mutex and the containers it guards.
type guardedGroup struct {
	mutex   types.Object            // the mutex var or field
	guarded map[types.Object]string // container object -> name
}

func runRegistrylock(pass *Pass) {
	groups := findGuardedGroups(pass)
	if len(groups) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, fs := range collectFuncScopes(f) {
			checkLockDiscipline(pass, fs, groups)
		}
	}
	pass.reportBadMarkers([]string{MarkLocked}, false)
}

// findGuardedGroups pairs mutexes with the containers they guard, in
// package var blocks and in struct types.
func findGuardedGroups(pass *Pass) []*guardedGroup {
	var groups []*guardedGroup
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.VAR:
				if g := groupFromVarBlock(info, gd); g != nil {
					groups = append(groups, g)
				}
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					if g := groupFromStruct(info, st); g != nil {
						groups = append(groups, g)
					}
				}
			}
		}
	}
	return groups
}

func groupFromVarBlock(info *types.Info, gd *ast.GenDecl) *guardedGroup {
	g := &guardedGroup{guarded: map[types.Object]string{}}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			switch {
			case isMutex(obj.Type()):
				if g.mutex == nil {
					g.mutex = obj
				}
			case isContainer(obj.Type()):
				g.guarded[obj] = name.Name
			}
		}
	}
	if g.mutex == nil || len(g.guarded) == 0 {
		return nil
	}
	return g
}

func groupFromStruct(info *types.Info, st *ast.StructType) *guardedGroup {
	g := &guardedGroup{guarded: map[types.Object]string{}}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			switch {
			case isMutex(obj.Type()):
				if g.mutex == nil {
					g.mutex = obj
				}
			case isContainer(obj.Type()):
				g.guarded[obj] = name.Name
			}
		}
	}
	if g.mutex == nil || len(g.guarded) == 0 {
		return nil
	}
	return g
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func isContainer(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

// checkLockDiscipline reports guarded accesses in one function-like
// body that cannot be shown to hold the right mutex.
func checkLockDiscipline(pass *Pass, fs *funcScope, groups []*guardedGroup) {
	info := pass.Pkg.Info
	for _, g := range groups {
		uses := guardedUses(info, fs, g)
		if len(uses) == 0 {
			continue
		}
		if locksMutex(info, fs.body, g.mutex) {
			continue
		}
		if enclosingHoldsLock(info, fs, g.mutex) {
			continue
		}
		if fs.decl != nil {
			if name := fs.decl.Name.Name; len(name) > 6 && name[len(name)-6:] == "Locked" {
				continue // callers hold the lock by convention
			}
			if m := pass.FuncMarker(fs.decl, MarkLocked); m != nil && m.Reason != "" {
				continue
			}
		}
		for _, use := range uses {
			pass.Reportf(use.pos, "%s accessed without holding %s; lock it, suffix the function ...Locked, or //whirl:locked <reason>", use.name, g.mutex.Name())
		}
	}
}

type guardedUse struct {
	name string
	pos  token.Pos
}

// guardedUses finds uses of g's containers directly inside fs's body
// (nested function literals analyze as their own scopes). Composite-
// literal field keys do not count: Registry{byURL: ...} initializes a
// value nothing else can see yet.
func guardedUses(info *types.Info, fs *funcScope, g *guardedGroup) []guardedUse {
	var uses []guardedUse
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.KeyValueExpr:
			if _, bareIdent := n.Key.(*ast.Ident); bareIdent {
				ast.Inspect(n.Value, walk)
				return false
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				if name, ok := g.guarded[obj]; ok {
					uses = append(uses, guardedUse{name: name, pos: n.Pos()})
				}
			}
		}
		return true
	}
	ast.Inspect(fs.body, walk)
	return uses
}

// locksMutex reports whether body contains a Lock/RLock call on the
// given mutex object (package var: regMu.Lock(); struct field:
// r.mu.Lock() on any receiver value).
func locksMutex(info *types.Info, body *ast.BlockStmt, mutex types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // a closure's deferred lock is its own business
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if refersToMutex(info, sel.X, mutex) {
			found = true
		}
		return true
	})
	return found
}

// refersToMutex reports whether expr denotes the mutex object: the
// package var itself, or a selection of the mutex field.
func refersToMutex(info *types.Info, expr ast.Expr, mutex types.Object) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e] == mutex
	case *ast.SelectorExpr:
		return info.Uses[e.Sel] == mutex
	}
	return false
}

func enclosingHoldsLock(info *types.Info, fs *funcScope, mutex types.Object) bool {
	for _, enc := range fs.enclosing {
		if locksMutex(info, enc.body, mutex) {
			return true
		}
	}
	return false
}
