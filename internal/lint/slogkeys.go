package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// Slogkeys keeps the structured-log and span-attribute namespace
// grep-able: `whirld: msg key=val` lines, /metrics names derived from
// attrs, and `whirltool spans` aggregates all assume keys are literal
// lowercase_snake strings. The analyzer checks every slog call
// (package functions and Logger methods) and every obs attribute
// constructor (obs.Str/Int/Bool, Span.SetStr/SetInt/SetBool): keys
// must be compile-time string constants matching ^[a-z][a-z0-9_]*$,
// and one call site (one statement, for chained Set*) must not set the
// same key twice — a duplicate silently shadows in log output and
// double-emits in span JSON.
var Slogkeys = &Analyzer{
	Name: "slogkeys",
	Doc:  "structured-log and span-attr keys must be literal lowercase_snake and unique per call site",
	Run:  runSlogkeys,
}

var keyRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// slogKVStart maps slog call names to the index of the first key-value
// argument. Applies to both the package-level functions and the
// *slog.Logger methods (same names, same shapes).
var slogKVStart = map[string]int{
	"Debug": 1, "Info": 1, "Warn": 1, "Error": 1,
	"DebugContext": 2, "InfoContext": 2, "WarnContext": 2, "ErrorContext": 2,
	"Log": 3, "With": 0,
}

func runSlogkeys(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Statement granularity so chained sp.SetStr("k",…).SetInt("k",…)
		// counts as one call site for the duplicate check.
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			checkStmtKeys(pass, info, stmt)
			return true
		})
	}
}

func checkStmtKeys(pass *Pass, info *types.Info, stmt ast.Stmt) {
	seen := map[string]bool{} // span-attr keys set within this statement
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, nested := n.(ast.Stmt); nested && n != stmt {
			return false // inner statements get their own visit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if start, ok := slogCall(fn); ok {
			checkSlogKVs(pass, info, call, start)
			return true
		}
		if arg, ok := obsAttrKeyArg(fn, call); ok && fn.Pkg() != pass.Pkg.Types {
			if key, ok := checkKeyArg(pass, info, arg, "span attr"); ok {
				if seen[key] {
					pass.Reportf(arg.Pos(), "span attr key %q set twice at this call site", key)
				}
				seen[key] = true
			}
		}
		return true
	})
}

// slogCall reports whether fn is a key-value-taking slog entry point,
// and at which argument the key-value pairs start.
func slogCall(fn *types.Func) (int, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "log/slog" {
		return 0, false
	}
	start, ok := slogKVStart[fn.Name()]
	return start, ok
}

// obsAttrKeyArg returns the key argument of an obs attribute
// constructor: Str/Int/Bool in a package named obs, or SetStr/SetInt/
// SetBool methods on a Span. The defining package itself is exempt at
// the call site above — its wrappers forward caller keys through
// non-literal parameters by design.
func obsAttrKeyArg(fn *types.Func, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) == 0 {
		return nil, false
	}
	switch fn.Name() {
	case "Str", "Int", "Bool":
		if fn.Pkg() != nil && pkgPathBase(fn.Pkg().Path()) == "obs" && isPkgFunc(fn, fn.Pkg().Path()) {
			return call.Args[0], true
		}
	case "SetStr", "SetInt", "SetBool":
		if named := recvNamed(fn); named != nil && named.Obj().Name() == "Span" {
			return call.Args[0], true
		}
	}
	return nil, false
}

// checkSlogKVs validates the alternating key-value tail of a slog
// call. Typed slog.Attr arguments take one slot; anything else at a
// key position must be a constant string key.
func checkSlogKVs(pass *Pass, info *types.Info, call *ast.CallExpr, start int) {
	seen := map[string]bool{}
	args := call.Args
	for i := start; i < len(args); {
		if isSlogAttr(info, args[i]) {
			i++
			continue
		}
		key, ok := checkKeyArg(pass, info, args[i], "log")
		if !ok {
			return // pairing is no longer knowable; stop at the first bad key
		}
		if seen[key] {
			pass.Reportf(args[i].Pos(), "log key %q passed twice at this call site", key)
		}
		seen[key] = true
		i += 2
	}
}

func isSlogAttr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Attr" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "log/slog"
}

// checkKeyArg validates one key argument: constant string (so grep can
// find it) matching lowercase_snake (so metrics and span tooling can
// parse it). Returns the key when it is usable for duplicate checks.
func checkKeyArg(pass *Pass, info *types.Info, arg ast.Expr, what string) (string, bool) {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "%s key must be a literal string, not a computed value", what)
		return "", false
	}
	key := constant.StringVal(tv.Value)
	if !keyRe.MatchString(key) {
		pass.Reportf(arg.Pos(), "%s key %q is not lowercase_snake ([a-z][a-z0-9_]*)", what, key)
		return "", false
	}
	return key, true
}
