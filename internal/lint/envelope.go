package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Envelope enforces the daemon's error contract: every non-2xx /v1
// response carries the uniform JSON envelope {"error":{code,message}}
// (docs/server.md "Errors"), which internal/apiclient and every
// retry/backoff decision in dispatch parse. Inside internal/server it
// flags the three ways an error can bypass the envelope writer:
// http.Error (plain-text body), a bare WriteHeader with a 4xx/5xx
// status, and a hand-rolled json.NewEncoder next to a direct error
// status. The designated writer itself carries //whirl:envelope.
var Envelope = &Analyzer{
	Name:  "envelope",
	Doc:   "non-2xx responses in internal/server must go through the //whirl:envelope writer",
	Match: suffixMatcher("internal/server"),
	Run:   runEnvelope,
}

func runEnvelope(pass *Pass) {
	rw := responseWriterIface(pass.Pkg.Types)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if m := pass.FuncMarker(fn, MarkEnvelope); m != nil && m.Reason != "" {
				continue // the designated envelope writer
			}
			checkEnvelope(pass, fn, rw)
		}
	}
	pass.reportBadMarkers([]string{MarkEnvelope}, false)
}

func checkEnvelope(pass *Pass, fn *ast.FuncDecl, rw *types.Interface) {
	info := pass.Pkg.Info

	// Pass 1: does this function write an error status directly?
	directError := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isHTTPError(info, call) || isErrorWriteHeader(info, call, rw) {
			directError = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isHTTPError(info, call):
			pass.Reportf(call.Pos(), "http.Error bypasses the JSON error envelope; use the //whirl:envelope writer")
		case isErrorWriteHeader(info, call, rw):
			pass.Reportf(call.Pos(), "bare WriteHeader with an error status bypasses the JSON error envelope; use the //whirl:envelope writer")
		case directError && isEncoderOnResponseWriter(info, call, rw):
			pass.Reportf(call.Pos(), "hand-rolled json.NewEncoder on an error path; route the error through the //whirl:envelope writer")
		}
		return true
	})
}

func isHTTPError(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return isPkgFunc(fn, "net/http") && fn.Name() == "Error"
}

// isErrorWriteHeader matches w.WriteHeader(c) where w serves HTTP and
// c is a constant in [400, 599]. Dynamic status codes (writeJSON-style
// helpers taking the code as a parameter) are out of reach here and
// stay covered by the envelope tests.
func isErrorWriteHeader(info *types.Info, call *ast.CallExpr, rw *types.Interface) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "WriteHeader" || len(call.Args) != 1 {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isResponseWriter(sig.Recv().Type(), rw) {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	code, ok := constant.Int64Val(tv.Value)
	return ok && code >= 400 && code <= 599
}

func isEncoderOnResponseWriter(info *types.Info, call *ast.CallExpr, rw *types.Interface) bool {
	fn := calleeFunc(info, call)
	if !isPkgFunc(fn, "encoding/json") || fn.Name() != "NewEncoder" || len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	return ok && isResponseWriter(tv.Type, rw)
}

// isResponseWriter reports whether t is (or implements) the net/http
// ResponseWriter interface. With no net/http in the import graph there
// is nothing to serve, so everything fails the test.
func isResponseWriter(t types.Type, rw *types.Interface) bool {
	if rw == nil || t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok && types.Identical(iface, rw) {
		return true
	}
	return types.Implements(t, rw)
}

// responseWriterIface digs net/http.ResponseWriter out of the
// package's import graph.
func responseWriterIface(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		obj := imp.Scope().Lookup("ResponseWriter")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}
