package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness: each testdata/<name> directory is a
// self-contained module seeded with violations. `// want "regex"` on a
// line expects a finding there whose message matches; `// want+N`
// anchors the expectation N lines below the comment (used for marker
// findings, which land on the //whirl: line itself and so cannot share
// it with a second comment). One want consumes exactly one finding;
// several quoted patterns in one comment expect several findings.
var wantRe = regexp.MustCompile(`^// want([+-][0-9]+)? (.+)$`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func collectWants(t *testing.T, pkg *Package, root string) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rel, err := filepath.Rel(root, pos.Filename)
				if err != nil {
					t.Fatalf("relativizing %s: %v", pos.Filename, err)
				}
				file := filepath.ToSlash(rel)
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				rest := strings.TrimSpace(m[2])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want %q: %v", file, pos.Line, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", file, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", file, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: file, line: pos.Line + offset, re: re, raw: pat})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}

// loadFixture loads the module under testdata/<name>.
func loadFixture(t *testing.T, name string) (string, []*Package) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return root, pkgs
}

// runFixture runs one analyzer over every package of a fixture module
// (bypassing Match) and diffs findings against the // want comments.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	root, pkgs := loadFixture(t, name)
	var findings []Finding
	var wants []*want
	for _, pkg := range pkgs {
		findings = append(findings, RunAnalyzer(a, pkg, root)...)
		wants = append(wants, collectWants(t, pkg, root)...)
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want expectations", name)
	}
	for _, f := range findings {
		if w := matchWant(wants, f); w != nil {
			w.hit = true
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

func matchWant(wants []*want, f Finding) *want {
	for _, w := range wants {
		if !w.hit && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
			return w
		}
	}
	return nil
}

// Each acceptance case: the analyzer must flag every seeded violation
// of its invariant and nothing else.
func TestDeterminismFixture(t *testing.T)  { runFixture(t, Determinism, "determinism") }
func TestZeroallocFixture(t *testing.T)    { runFixture(t, Zeroalloc, "zeroalloc") }
func TestEnvelopeFixture(t *testing.T)     { runFixture(t, Envelope, "envelope") }
func TestSlogkeysFixture(t *testing.T)     { runFixture(t, Slogkeys, "slogkeys") }
func TestRegistrylockFixture(t *testing.T) { runFixture(t, Registrylock, "registrylock") }

// The runner flags typoed marker kinds that no analyzer would ever
// consult (the determinism fixture seeds //whirl:wallclok).
func TestUnknownMarkers(t *testing.T) {
	root, pkgs := loadFixture(t, "determinism")
	var got []Finding
	for _, pkg := range pkgs {
		got = append(got, unknownMarkers(pkg, root)...)
	}
	if len(got) != 1 {
		t.Fatalf("unknownMarkers = %v, want exactly one finding", got)
	}
	f := got[0]
	if f.Analyzer != "markers" || !strings.Contains(f.Message, "wallclok") {
		t.Fatalf("unexpected unknown-marker finding: %s", f)
	}
}
