package lint

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one resolved diagnostic. File is module-root-relative
// and slash-separated, so findings (and the baseline) are stable
// across checkouts and operating systems.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the go-vet-style diagnostic line.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Config selects what Run analyzes.
type Config struct {
	// Dir is the directory to resolve patterns in (the module root or
	// any directory inside it). Defaults to ".".
	Dir string
	// Patterns are go-list package patterns; default ["./..."].
	Patterns []string
	// Analyzers selects a subset of All by name; nil/empty = all.
	Analyzers []string
	// Disable removes analyzers by name after selection.
	Disable []string
	// Baseline holds grandfathered findings: matching findings are
	// reported separately and do not fail the run. New findings always
	// fail.
	Baseline *Baseline
}

// Result is one whirlvet run's outcome.
type Result struct {
	// Findings are the new (non-baselined) findings, sorted by
	// position. Non-empty means the run failed.
	Findings []Finding
	// Baselined are findings matched (and absorbed) by the baseline.
	Baselined []Finding
	// Packages is the number of packages analyzed.
	Packages int
}

// Analyzers resolves cfg's analyzer selection against All, erroring on
// unknown names (a typo silently running zero analyzers is how lint
// gates rot).
func (cfg *Config) analyzers() ([]*Analyzer, error) {
	selected := All()
	if len(cfg.Analyzers) > 0 {
		selected = selected[:0:0]
		for _, name := range cfg.Analyzers {
			a, ok := ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (whirlvet -list shows valid names)", name)
			}
			selected = append(selected, a)
		}
	}
	for _, name := range cfg.Disable {
		if _, ok := ByName(name); !ok {
			return nil, fmt.Errorf("unknown analyzer %q in -disable (whirlvet -list shows valid names)", name)
		}
	}
	out := selected[:0:0]
	for _, a := range selected {
		disabled := false
		for _, name := range cfg.Disable {
			if a.Name == name {
				disabled = true
				break
			}
		}
		if !disabled {
			out = append(out, a)
		}
	}
	return out, nil
}

// Run loads the requested packages and applies the selected analyzers.
func Run(cfg Config) (*Result, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	analyzers, err := cfg.analyzers()
	if err != nil {
		return nil, err
	}
	pkgs, err := Load(dir, cfg.Patterns...)
	if err != nil {
		return nil, err
	}
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, unknownMarkers(pkg, root)...)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			findings = append(findings, RunAnalyzer(a, pkg, root)...)
		}
	}
	sortFindings(findings)

	res := &Result{Packages: len(pkgs)}
	if cfg.Baseline != nil {
		res.Findings, res.Baselined = cfg.Baseline.split(findings)
	} else {
		res.Findings = findings
	}
	return res, nil
}

// RunAnalyzer applies one analyzer to one loaded package, bypassing
// Match — the fixture tests use this to run an analyzer against a
// testdata module directly. root anchors relative finding paths; use
// pkg.Dir for fixture-local paths.
func RunAnalyzer(a *Analyzer, pkg *Package, root string) []Finding {
	var out []Finding
	pass := &Pass{
		Analyzer: a,
		Pkg:      pkg,
		report: func(d Diagnostic) {
			out = append(out, resolve(pkg.Fset, d, root))
		},
	}
	a.Run(pass)
	sortFindings(out)
	return out
}

// unknownMarkers flags //whirl: markers whose kind no analyzer owns.
// A typo like //whirl:wallclok would otherwise read as an allowlist
// entry while suppressing nothing.
func unknownMarkers(pkg *Package, root string) []Finding {
	var out []Finding
	for _, m := range pkg.markers.all {
		if knownMarks[m.Kind] {
			continue
		}
		out = append(out, resolve(pkg.Fset, Diagnostic{
			Pos:      m.Pos,
			Analyzer: "markers",
			Message:  fmt.Sprintf("unknown marker //whirl:%s (known kinds: envelope, locked, unordered, wallclock, zeroalloc)", m.Kind),
		}, root))
	}
	return out
}

func resolve(fset *token.FileSet, d Diagnostic, root string) Finding {
	p := fset.Position(d.Pos)
	file := p.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return Finding{
		File:     filepath.ToSlash(file),
		Line:     p.Line,
		Col:      p.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// moduleRoot locates the enclosing module's root directory.
func moduleRoot(dir string) (string, error) {
	pkgs, err := golist(dir, "-m", "-json=Dir")
	if err != nil {
		return "", err
	}
	if len(pkgs) == 0 || pkgs[0].Dir == "" {
		return "", fmt.Errorf("no module found at %s", dir)
	}
	return pkgs[0].Dir, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteText prints findings in the file:line:col form compilers and
// editors understand.
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}
