package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is a package-level function of the
// package with the given import path.
func isPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvNamed returns the defined type of fn's receiver (through one
// pointer), or nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// pkgPathBase returns the last element of an import path.
func pkgPathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// suffixMatcher builds an Analyzer.Match accepting exactly the given
// import paths, compared module-root-relative: "internal/server"
// matches "whirlpool/internal/server" and any other module's
// ".../internal/server" (which is what lets fixtures exercise Match in
// tests).
func suffixMatcher(rels ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, rel := range rels {
			if pkgPath == rel || strings.HasSuffix(pkgPath, "/"+rel) {
				return true
			}
		}
		return false
	}
}

// funcScopes pairs each function-like body (declaration or literal)
// with its lexically enclosing function-likes, innermost last.
type funcScope struct {
	decl      *ast.FuncDecl // nil for literals
	body      *ast.BlockStmt
	enclosing []*funcScope
}

// collectFuncScopes walks a file and returns every FuncDecl and
// FuncLit body with its enclosing chain.
func collectFuncScopes(f *ast.File) []*funcScope {
	var out []*funcScope
	var stack []*funcScope
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			fs := &funcScope{decl: n, body: n.Body, enclosing: append([]*funcScope(nil), stack...)}
			out = append(out, fs)
			stack = append(stack, fs)
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.FuncLit:
			fs := &funcScope{body: n.Body, enclosing: append([]*funcScope(nil), stack...)}
			out = append(out, fs)
			stack = append(stack, fs)
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	}
	for _, d := range f.Decls {
		ast.Inspect(d, walk)
	}
	return out
}
