package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's bit-identity contract: sweep rows,
// trace bytes, content-address keys, and rendezvous routing must be
// pure functions of (spec, scale, seed, reconfig, chip). Inside the
// compute-path packages it flags the three classic leaks — wall-clock
// reads, the global math/rand PRNGs, and map iteration order — all of
// which have produced "works on my machine" rows in systems like this
// one. Explicitly timing-only sites (span durations, store timestamps,
// retry jitter) carry a //whirl:wallclock marker with a reason;
// order-insensitive map walks (keys collected then sorted) carry
// //whirl:unordered.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock, global PRNG, or map-order dependence in the compute path",
	// The compute path: the simulator and everything that feeds it or
	// routes its cells. Serving-side packages (server, fleet, traffic,
	// obs, apiclient, results) are timing-bearing by design and stay
	// out of scope.
	Match: suffixMatcher(
		"whirlpool", // the public API package assembles figures and experiments
		"internal/sim", "internal/trace", "internal/dispatch", "internal/experiments",
		"internal/addr", "internal/cache", "internal/llc", "internal/noc",
		"internal/jigsaw", "internal/paws", "internal/mem", "internal/mrc",
		"internal/partition", "internal/stats", "internal/graph", "internal/energy",
		"internal/mon", "internal/schemes", "internal/workloads", "internal/spec",
	),
	Run: runDeterminism,
}

// wallclockFuncs are the time package reads that differ run to run.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if isPkgFunc(fn, "time") && wallclockFuncs[fn.Name()] {
					if !pass.Suppressed(n.Pos(), MarkWallclock) {
						pass.Reportf(n.Pos(), "time.%s in the compute path; timing-only sites need //whirl:wallclock <reason>", fn.Name())
					}
				}
			case *ast.Ident:
				fn, _ := info.Uses[n].(*types.Func)
				if globalRandFunc(fn) {
					if !pass.Suppressed(n.Pos(), MarkWallclock) {
						pass.Reportf(n.Pos(), "global %s.%s in the compute path; use a seeded local PRNG, or //whirl:wallclock <reason> for timing-only jitter", fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if !pass.Suppressed(n.Pos(), MarkUnordered) {
						pass.Reportf(n.Pos(), "map iteration order can reach results; sort the keys first, or //whirl:unordered <reason> if order provably cannot escape")
					}
				}
			}
			return true
		})
	}
	pass.reportBadMarkers([]string{MarkWallclock, MarkUnordered}, true)
}

// globalRandFunc reports whether fn is a package-level function of
// math/rand or math/rand/v2 that draws from the shared global PRNG.
// Constructors (New, NewSource, NewPCG, ...) build caller-seeded local
// generators and are the deterministic alternative, so they pass.
func globalRandFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	if !isPkgFunc(fn, path) {
		return false
	}
	return !strings.HasPrefix(fn.Name(), "New")
}
