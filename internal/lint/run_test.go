package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// Fixture module paths are chosen so Match sees them the way it sees
// the real module: the determinism fixture is module
// fixture/internal/sim, which the determinism analyzer's suffix
// matcher accepts.
func TestMatchScoping(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{Determinism, "whirlpool/internal/sim", true},
		{Determinism, "whirlpool", true},
		{Determinism, "fixture/internal/sim", true},
		{Determinism, "whirlpool/internal/server", false},
		{Determinism, "whirlpool/internal/obs", false},
		{Envelope, "whirlpool/internal/server", true},
		{Envelope, "whirlpool/internal/sim", false},
		{Registrylock, "whirlpool/internal/schemes", true},
		{Registrylock, "whirlpool/internal/workloads", true},
		{Registrylock, "whirlpool/internal/fleet", true},
		{Registrylock, "whirlpool/internal/sim", false},
	}
	for _, c := range cases {
		if got := c.a.Match(c.path); got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	if Zeroalloc.Match != nil || Slogkeys.Match != nil {
		t.Error("zeroalloc and slogkeys are marker/callsite-scoped and must match every package")
	}
}

// Run end to end on a fixture: Match routes the determinism analyzer
// to the fixture package (module fixture/internal/sim), the unknown-
// marker check always runs, analyzer selection filters, and a baseline
// absorbs exactly the findings it lists.
func TestRunOnFixture(t *testing.T) {
	dir := filepath.Join("testdata", "determinism")

	res, err := Run(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages != 1 {
		t.Fatalf("Packages = %d, want 1", res.Packages)
	}
	var det, markers int
	for _, f := range res.Findings {
		switch f.Analyzer {
		case "determinism":
			det++
		case "markers":
			markers++
		default:
			t.Errorf("unexpected analyzer %q on determinism fixture: %s", f.Analyzer, f)
		}
		if f.File != "det.go" {
			t.Errorf("finding path %q not module-root-relative", f.File)
		}
	}
	if det == 0 || markers != 1 {
		t.Fatalf("got %d determinism + %d markers findings, want >0 and 1", det, markers)
	}

	// Selecting a different analyzer must drop the determinism findings
	// but keep the marker-typo check.
	res2, err := Run(Config{Dir: dir, Analyzers: []string{"envelope"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res2.Findings {
		if f.Analyzer != "markers" {
			t.Errorf("analyzer selection leaked finding %s", f)
		}
	}

	// A baseline built from the first run absorbs everything.
	b := &Baseline{}
	for _, f := range res.Findings {
		b.Findings = append(b.Findings, BaselineEntry{File: f.File, Analyzer: f.Analyzer, Message: f.Message})
	}
	res3, err := Run(Config{Dir: dir, Baseline: b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Findings) != 0 {
		t.Fatalf("baselined run still fails: %v", res3.Findings)
	}
	if len(res3.Baselined) != len(res.Findings) {
		t.Fatalf("Baselined = %d findings, want %d", len(res3.Baselined), len(res.Findings))
	}
}

func TestUnknownAnalyzerNameErrors(t *testing.T) {
	if _, err := Run(Config{Dir: filepath.Join("testdata", "zeroalloc"), Analyzers: []string{"nope"}}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want unknown-analyzer error naming it", err)
	}
	if _, err := Run(Config{Dir: filepath.Join("testdata", "zeroalloc"), Disable: []string{"nope"}}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want unknown -disable error naming it", err)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/sim/sim.go", Line: 12, Col: 3, Analyzer: "determinism", Message: "m"}
	if got, want := f.String(), "internal/sim/sim.go:12:3: determinism: m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
