package lint

import (
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline.json")
	findings := []Finding{
		{File: "b.go", Line: 2, Col: 1, Analyzer: "determinism", Message: "m2"},
		{File: "a.go", Line: 9, Col: 4, Analyzer: "zeroalloc", Message: "m1"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "zeroalloc", Message: "m1"},
	}
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 3 {
		t.Fatalf("round-tripped %d entries, want 3 (duplicates are distinct entries)", len(b.Findings))
	}
	if b.Findings[0].File != "a.go" || b.Findings[2].File != "b.go" {
		t.Fatalf("baseline not sorted: %+v", b.Findings)
	}
}

// Matching is multiset-style on (file, analyzer, message): each entry
// absorbs one occurrence, and line numbers never participate (so
// unrelated edits shifting a grandfathered finding keep CI green).
func TestBaselineSplit(t *testing.T) {
	b := &Baseline{Findings: []BaselineEntry{
		{File: "a.go", Analyzer: "zeroalloc", Message: "m"},
	}}
	findings := []Finding{
		{File: "a.go", Line: 10, Analyzer: "zeroalloc", Message: "m"},
		{File: "a.go", Line: 20, Analyzer: "zeroalloc", Message: "m"},
		{File: "b.go", Line: 10, Analyzer: "zeroalloc", Message: "m"},
	}
	fresh, baselined := b.split(findings)
	if len(baselined) != 1 || baselined[0].Line != 10 {
		t.Fatalf("baselined = %v, want just the first a.go occurrence", baselined)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want the second a.go occurrence and b.go", fresh)
	}
}

func TestEmptyBaselineAbsorbsNothing(t *testing.T) {
	b := &Baseline{}
	findings := []Finding{{File: "a.go", Analyzer: "envelope", Message: "m"}}
	fresh, baselined := b.split(findings)
	if len(fresh) != 1 || len(baselined) != 0 {
		t.Fatalf("empty baseline: fresh=%v baselined=%v", fresh, baselined)
	}
}
