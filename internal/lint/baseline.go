package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline grandfathers known findings so the lint gate can land
// before every legacy violation is fixed, without ever letting new
// ones in. Entries match on (file, analyzer, message) — deliberately
// not line/column, so unrelated edits shifting a grandfathered finding
// do not break CI, while any new finding (even an identical message in
// a different file) still fails. Matching is multiset-style: two
// identical legacy findings need two entries, so fixing one and adding
// one elsewhere in the same file cannot cancel out.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one grandfathered finding.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

// WriteBaseline writes findings as a baseline file (sorted, one entry
// per finding occurrence).
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Findings: []BaselineEntry{}}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{File: f.File, Analyzer: f.Analyzer, Message: f.Message})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// split partitions findings into new (fail the run) and baselined
// (grandfathered), consuming each baseline entry at most once.
func (b *Baseline) split(findings []Finding) (fresh, baselined []Finding) {
	type key struct{ file, analyzer, message string }
	budget := map[key]int{}
	for _, e := range b.Findings {
		budget[key{e.File, e.Analyzer, e.Message}]++
	}
	for _, f := range findings {
		k := key{f.File, f.Analyzer, f.Message}
		if budget[k] > 0 {
			budget[k]--
			baselined = append(baselined, f)
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, baselined
}
