// Package lint is whirlvet's analysis engine: a dependency-free (stdlib
// go/parser + go/ast + go/types + go/importer only) driver that loads
// every package in the module and runs repo-specific analyzers over the
// type-checked syntax. Each analyzer encodes an invariant the codebase
// documents but could not previously enforce — bit-identical sweep
// rows, zero-alloc hot paths, envelope-only API errors, grep-able log
// keys, mutex-guarded registries. See docs/lint.md for the catalog.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// An Analyzer checks one invariant. Run is invoked once per loaded
// package with a Pass scoped to that package.
type Analyzer struct {
	// Name is the stable identifier used in diagnostics, -analyzers/
	// -disable flags, and the baseline file.
	Name string
	// Doc is the one-line description printed by whirlvet -list.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path; nil means every package. Fixture tests bypass Match and run
	// the analyzer directly.
	Match func(pkgPath string) bool
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass)
}

// All returns the analyzer suite in its fixed reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Zeroalloc,
		Envelope,
		Slogkeys,
		Registrylock,
	}
}

// ByName resolves one analyzer from All.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// A Diagnostic is one raw finding at a token position (resolved to a
// file:line:col Finding by the runner).
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// --- marker comments ---

// Marker kinds. Markers are magic comments of the form
//
//	//whirl:<kind> <reason>
//
// attached to the line they annotate (end-of-line) or to the line
// immediately above it. Kinds that suppress a finding require a
// non-empty reason; a reason-less marker suppresses nothing and is
// itself a finding.
const (
	// MarkWallclock allowlists an explicitly timing-only wall-clock or
	// global-PRNG site in the compute path (span durations, store
	// timestamps, retry jitter). Requires a reason.
	MarkWallclock = "wallclock"
	// MarkUnordered allowlists a map-range whose iteration order
	// provably cannot reach an output (e.g. keys are collected and
	// sorted before use). Requires a reason.
	MarkUnordered = "unordered"
	// MarkZeroalloc marks a function whose body must stay free of the
	// allocating constructs the zeroalloc analyzer checks. No reason
	// needed; the marker is the contract.
	MarkZeroalloc = "zeroalloc"
	// MarkEnvelope designates a function as the error-envelope writer:
	// the one place in internal/server allowed to write non-2xx status
	// codes directly. Requires a reason.
	MarkEnvelope = "envelope"
	// MarkLocked marks a function whose callers are documented to hold
	// the registry mutex (the "...Locked" suffix convention, spelled
	// out). Requires a reason.
	MarkLocked = "locked"
)

var knownMarks = map[string]bool{
	MarkWallclock: true,
	MarkUnordered: true,
	MarkZeroalloc: true,
	MarkEnvelope:  true,
	MarkLocked:    true,
}

// reasonRequired lists the kinds whose marker must carry a reason
// string to take effect.
var reasonRequired = map[string]bool{
	MarkWallclock: true,
	MarkUnordered: true,
	MarkEnvelope:  true,
	MarkLocked:    true,
}

// A Marker is one parsed //whirl: comment.
type Marker struct {
	Kind   string
	Reason string
	Pos    token.Pos
	File   string // filename as recorded in the FileSet
	Line   int
	used   bool
}

var markerRe = regexp.MustCompile(`^//whirl:([a-z]+)(?:[ \t]+(.*))?$`)

// parseMarkers extracts every //whirl: marker from a file's comments.
// Unknown kinds are returned too (kind verbatim) so the runner can
// flag typos like //whirl:wallclok.
func parseMarkers(fset *token.FileSet, f *ast.File) []*Marker {
	var out []*Marker
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := markerRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			p := fset.Position(c.Pos())
			out = append(out, &Marker{
				Kind:   m[1],
				Reason: strings.TrimSpace(m[2]),
				Pos:    c.Pos(),
				File:   p.Filename,
				Line:   p.Line,
			})
		}
	}
	return out
}

// markerIndex indexes a package's markers by (file, line).
type markerIndex struct {
	byLine map[string]map[int][]*Marker
	all    []*Marker
}

func newMarkerIndex(fset *token.FileSet, files []*ast.File) *markerIndex {
	idx := &markerIndex{byLine: map[string]map[int][]*Marker{}}
	for _, f := range files {
		for _, m := range parseMarkers(fset, f) {
			lines := idx.byLine[m.File]
			if lines == nil {
				lines = map[int][]*Marker{}
				idx.byLine[m.File] = lines
			}
			lines[m.Line] = append(lines[m.Line], m)
			idx.all = append(idx.all, m)
		}
	}
	return idx
}

// at returns the marker of the given kind covering pos: on the same
// line, or alone on the line immediately above.
func (idx *markerIndex) at(fset *token.FileSet, pos token.Pos, kind string) *Marker {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, m := range idx.byLine[p.Filename][line] {
			if m.Kind == kind {
				return m
			}
		}
	}
	return nil
}

// Suppressed reports whether a finding of the given marker kind at pos
// is allowlisted by a well-formed marker (correct kind, non-empty
// reason where one is required). The marker is recorded as used so the
// stale-marker check does not re-flag it.
func (p *Pass) Suppressed(pos token.Pos, kind string) bool {
	m := p.Pkg.markers.at(p.Pkg.Fset, pos, kind)
	if m == nil {
		return false
	}
	m.used = true
	if reasonRequired[kind] && m.Reason == "" {
		// A reason-less marker does not suppress; reportBadMarkers
		// flags the marker itself.
		return false
	}
	return true
}

// FuncMarker returns the marker of the given kind attached to a
// function declaration: in its doc comment, or on the line directly
// above the declaration (above the doc comment, when one exists).
func (p *Pass) FuncMarker(fn *ast.FuncDecl, kind string) *Marker {
	fset := p.Pkg.Fset
	start := fset.Position(fn.Pos())
	if fn.Doc != nil {
		docStart := fset.Position(fn.Doc.Pos()).Line
		docEnd := fset.Position(fn.Doc.End()).Line
		for line := docStart - 1; line <= docEnd; line++ {
			for _, m := range p.Pkg.markers.byLine[start.Filename][line] {
				if m.Kind == kind {
					m.used = true
					return m
				}
			}
		}
		return nil
	}
	for _, m := range p.Pkg.markers.byLine[start.Filename][start.Line-1] {
		if m.Kind == kind {
			m.used = true
			return m
		}
	}
	return nil
}

// reportBadMarkers emits marker-hygiene findings for the kinds an
// analyzer owns: reason-less markers of reason-required kinds, and —
// when checkStale is set — markers that suppressed nothing (stale
// allowlists are how grandfathered nondeterminism creeps back in).
func (p *Pass) reportBadMarkers(kinds []string, checkStale bool) {
	owned := map[string]bool{}
	for _, k := range kinds {
		owned[k] = true
	}
	for _, m := range p.Pkg.markers.all {
		if !owned[m.Kind] {
			continue
		}
		if reasonRequired[m.Kind] && m.Reason == "" {
			p.Reportf(m.Pos, "//whirl:%s marker requires a reason", m.Kind)
			continue
		}
		if checkStale && !m.used {
			p.Reportf(m.Pos, "//whirl:%s marker suppresses nothing; delete it", m.Kind)
		}
	}
}
