package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked module package ready for analysis.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	markers *markerIndex
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
}

// golist runs `go list` in dir and decodes its JSON package stream.
// The go command is the module-graph oracle here, not a dependency:
// analysis itself is pure go/{parser,types,importer}, and go.mod stays
// require-free.
func golist(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	// The loader must see exactly the module rooted at dir, even when
	// invoked from inside a fixture module during tests.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(errb.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(args, " "), msg)
	}
	dec := json.NewDecoder(&out)
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load parses and type-checks the packages matching patterns in the
// module rooted at (or containing) dir. Imports — stdlib and module-
// internal alike — are resolved from compiler export data produced by
// `go list -export`, so loading is fast and needs nothing beyond the
// Go toolchain already required to build the module. A module that
// does not compile fails loading with the compiler's own errors.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Pass 1: export data for every dependency of the targets. Running
	// without -e keeps broken builds loud (go list prints the compile
	// errors and exits non-zero).
	exportArgs := append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)
	deps, err := golist(dir, exportArgs...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	// Pass 2: the target packages themselves, with their file lists.
	targetArgs := append([]string{"-json=ImportPath,Dir,Name,GoFiles"}, patterns...)
	targets, err := golist(dir, targetArgs...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		var files []*ast.File
		for _, g := range t.GoFiles {
			name := filepath.Join(t.Dir, g)
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			// go list -export already proved the package compiles, so a
			// type error here means the loader itself is wrong — fail
			// loudly rather than analyzing half-typed syntax.
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:    t.ImportPath,
			Name:    t.Name,
			Dir:     t.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			markers: newMarkerIndex(fset, files),
		})
	}
	return pkgs, nil
}
