module fixture/internal/schemes

go 1.24
