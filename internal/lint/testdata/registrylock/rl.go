// Package rl seeds the registrylock finding classes: a package-level
// registry (mutex + containers in one var block) and a struct registry
// (mutex field + map field), each touched with and without the lock.
package rl

import "sync"

var (
	regMu sync.RWMutex
	reg   = map[string]int{}
	order []string
)

func get(name string) int {
	regMu.RLock()
	defer regMu.RUnlock()
	return reg[name]
}

func put(name string, v int) {
	regMu.Lock()
	defer regMu.Unlock()
	reg[name] = v
	order = append(order, name)
}

func bare(name string) int {
	return reg[name] // want "reg accessed without holding regMu"
}

func bareSlice() int {
	return len(order) // want "order accessed without holding regMu"
}

// namesLocked follows the ...Locked suffix convention: callers hold
// regMu.
func namesLocked() []string {
	return order
}

// The marker spells the convention out when the name cannot.
//
//whirl:locked every caller takes regMu first
func dump() map[string]int {
	return reg
}

// A reason-less marker does not exempt.
//
// want+2 "marker requires a reason"
//
//whirl:locked
func unreasoned() int {
	return len(reg) // want "reg accessed without holding regMu"
}

// A closure inherits the lock from its lexically enclosing function.
func inherited() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return func() []string { return order }()
}

// A closure that escapes without the lock is on its own.
func escape() func() int {
	return func() int {
		return reg["x"] // want "reg accessed without holding regMu"
	}
}

// A Table pairs a mutex field with the map it guards.
type Table struct {
	mu sync.Mutex
	m  map[string]int
}

// Get holds the lock.
func (t *Table) Get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[k]
}

// Bad reads the guarded map lock-free.
func (t *Table) Bad(k string) int {
	return t.m[k] // want "m accessed without holding mu"
}

// NewTable initializes the container before anything can race on it;
// composite-literal field keys are not accesses.
func NewTable() *Table {
	return &Table{m: map[string]int{}}
}
