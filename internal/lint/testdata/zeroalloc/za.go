// Package za seeds every zeroalloc finding class. Only functions
// marked //whirl:zeroalloc are checked; unmarked functions may
// allocate freely.
package za

import "fmt"

//whirl:zeroalloc
func viaSprintf(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf allocates"
}

//whirl:zeroalloc
func toString(b []byte) string {
	return string(b) // want "byte-to-string conversion allocates"
}

//whirl:zeroalloc
func toBytes(s string) []byte {
	return []byte(s) // want "string-to-..byte conversion allocates"
}

//whirl:zeroalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// Constant concatenation folds at compile time and is free.
//
//whirl:zeroalloc
func constConcat() string {
	return "a" + "b"
}

//whirl:zeroalloc
func closure(n int) func() int {
	return func() int { return n } // want "closure captures n"
}

// A closure that captures nothing does not escape its frame.
//
//whirl:zeroalloc
func cleanClosure() func() int {
	return func() int { return 1 }
}

//whirl:zeroalloc
func grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append to unpreallocated slice out"
	}
	return out
}

//whirl:zeroalloc
func growMakeZero() []int {
	out := make([]int, 0)
	return append(out, 1) // want "append to unpreallocated slice out"
}

// Preallocated append stays within the backing array.
//
//whirl:zeroalloc
func growPrealloc(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Unmarked: the analyzer has no contract to enforce here.
func unmarked(x int) string {
	return fmt.Sprintf("%d", x)
}
