module fixture/zeroalloc

go 1.24
