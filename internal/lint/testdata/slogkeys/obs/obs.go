// Package obs mimics whirlpool/internal/obs just enough for the
// slogkeys analyzer: attribute constructors named Str/Int/Bool in a
// package named obs, and a Span with chained Set* methods. Its own
// wrappers forward caller keys through parameters — the defining-
// package exemption keeps that from being flagged here.
package obs

// An Attr is one span attribute.
type Attr struct {
	K string
	V any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{K: k, V: v} }

// Int builds an int attribute.
func Int(k string, v int) Attr { return Attr{K: k, V: v} }

// Bool builds a bool attribute.
func Bool(k string, v bool) Attr { return Attr{K: k, V: v} }

// A Span accumulates attributes.
type Span struct {
	attrs []Attr
}

// SetStr records a string attribute.
func (s *Span) SetStr(k, v string) *Span {
	s.attrs = append(s.attrs, Str(k, v))
	return s
}

// SetInt records an int attribute.
func (s *Span) SetInt(k string, v int) *Span {
	s.attrs = append(s.attrs, Int(k, v))
	return s
}

// SetBool records a bool attribute.
func (s *Span) SetBool(k string, v bool) *Span {
	s.attrs = append(s.attrs, Bool(k, v))
	return s
}
