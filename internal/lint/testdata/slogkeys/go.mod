module fixture/slogkeys

go 1.24
