// Package sk seeds the slogkeys finding classes — non-literal keys,
// non-snake keys, and per-call-site duplicates — for slog package
// functions, Logger methods, and obs span-attribute constructors.
package sk

import (
	"context"
	"log/slog"

	"fixture/slogkeys/obs"
)

func logs(l *slog.Logger, user string) {
	l.Info("ok", "user_id", user)
	l.Info("bad case", "UserID", user)                           // want "not lowercase_snake"
	l.Info("bad dash", "user-id", user)                          // want "not lowercase_snake"
	l.Info("computed", user, 1)                                  // want "must be a literal string"
	l.Info("dup", "k", 1, "k", 2)                                // want "passed twice at this call site"
	l.InfoContext(context.Background(), "ctx", "K", 1)           // want "not lowercase_snake"
	slog.Warn("pkg level", "Bad", true)                          // want "not lowercase_snake"
	l.Log(context.Background(), slog.LevelInfo, "lvl", "OK2", 1) // want "not lowercase_snake"
	l.With("req_id", 1).Info("msg")
	l.Info("attr args take one slot", slog.Int("count", 1), "next_key", 2)
}

func spans(sp *obs.Span, key string) {
	sp.SetStr("app", "x").SetInt("cycles", 1)
	sp.SetStr("app", "x").SetInt("app", 2) // want "set twice at this call site"
	sp.SetStr(key, "x")                    // want "must be a literal string"
	sp.SetBool("Hit", true)                // want "not lowercase_snake"
	_ = obs.Str("BadKey", "v")             // want "not lowercase_snake"
	_ = obs.Int("ok_key", 1)
	_ = obs.Bool("flag", true)
}
