// Package env seeds the envelope analyzer's finding classes against
// the real net/http surface: plain-text http.Error, bare error
// WriteHeader, and hand-rolled JSON encoding on an error path.
package env

import (
	"encoding/json"
	"net/http"
)

func plainText(w http.ResponseWriter) {
	http.Error(w, "bad", http.StatusBadRequest) // want "http.Error bypasses the JSON error envelope"
}

func bareStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError) // want "bare WriteHeader with an error status"
}

// Success statuses are not the envelope's business.
func okStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNoContent)
}

func handRolled(w http.ResponseWriter, err error) {
	w.WriteHeader(422)                 // want "bare WriteHeader with an error status"
	_ = json.NewEncoder(w).Encode(err) // want "hand-rolled json.NewEncoder on an error path"
}

// The success path may stream JSON directly: no direct error status in
// this function, so the encoder is fine.
func writeJSON(w http.ResponseWriter, v any) {
	_ = json.NewEncoder(w).Encode(v)
}

// The designated envelope writer is exempt — it is the one place
// allowed to write error statuses.
//
//whirl:envelope the one sanctioned error writer in this fixture
func httpErr(w http.ResponseWriter, msg string) {
	w.WriteHeader(http.StatusBadRequest)
	_, _ = w.Write([]byte(msg))
}

// A reason-less marker does not exempt; both the marker and the write
// are flagged.
//
// want+2 "marker requires a reason"
//
//whirl:envelope
func unreasoned(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadGateway) // want "bare WriteHeader with an error status"
}
