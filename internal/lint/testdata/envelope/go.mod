module fixture/internal/server

go 1.24
