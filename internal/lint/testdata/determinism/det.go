// Package det seeds one violation of every determinism finding class —
// wall-clock reads, global PRNG draws, map iteration — plus the marker
// hygiene cases. The // want comments are matched by the fixture
// harness in internal/lint; // want+N anchors an expectation N lines
// below its comment (markers cannot share a line with a second
// comment).
package det

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Bare wall-clock reads differ run to run.
func clock() time.Duration {
	t0 := time.Now()      // want "time.Now in the compute path"
	return time.Since(t0) // want "time.Since in the compute path"
}

// Timing-only sites carry a reasoned marker and pass.
func clockAllowed() int64 {
	//whirl:wallclock span duration is timing metadata, not row data
	t0 := time.Now()
	return t0.Unix()
}

// A reason-less marker suppresses nothing; both the site and the
// marker itself are flagged.
func clockBadMarker() time.Time {
	// want+1 "marker requires a reason"
	//whirl:wallclock
	return time.Now() // want "time.Now in the compute path"
}

// A reasoned marker that matches no finding is stale.
// want+2 "suppresses nothing"
//
//whirl:wallclock measured wall time
func notTimed() int { return 1 }

// Global PRNG draws share mutable state across the process.
func prng() int {
	return rand.Intn(10) // want "global rand.Intn in the compute path"
}

func prngV2() uint64 {
	return randv2.Uint64() // want "global rand.Uint64 in the compute path"
}

// Caller-seeded local generators are the deterministic alternative.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// Map iteration order can reach results.
func mapRange(m map[string]int) int {
	s := 0
	for k := range m { // want "map iteration order can reach results"
		s += m[k]
	}
	return s
}

// Order-insensitive walks carry a reasoned //whirl:unordered.
func mapRangeAllowed(m map[string]int) int {
	s := 0
	//whirl:unordered sum is commutative over every entry
	for _, v := range m {
		s += v
	}
	return s
}

// Ranging a slice is ordered; the marker suppresses nothing.
func sliceRange(xs []int) int {
	s := 0
	// want+1 "suppresses nothing"
	//whirl:unordered slices iterate in order anyway
	for _, x := range xs {
		s += x
	}
	return s
}

// A typoed kind is invisible to every analyzer; the runner's marker
// check flags it (see TestUnknownMarkers).
//
//whirl:wallclok oops
func typoMarker() {}
