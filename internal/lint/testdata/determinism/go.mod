module fixture/internal/sim

go 1.24
