package stats

import (
	"math"
	"sort"
)

// Gmean returns the geometric mean of xs. It panics on non-positive inputs
// because geometric means of speedups are only defined for positive ratios.
func Gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: Gmean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedSpeedup computes the standard multi-programmed metric:
// sum over apps of IPC_scheme / IPC_baseline, normalized by app count.
func WeightedSpeedup(ipc, baseIPC []float64) float64 {
	if len(ipc) != len(baseIPC) || len(ipc) == 0 {
		panic("stats: WeightedSpeedup length mismatch")
	}
	sum := 0.0
	for i := range ipc {
		sum += ipc[i] / baseIPC[i]
	}
	return sum / float64(len(ipc))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// SortedDescending returns a copy of xs sorted high-to-low, for inverse-CDF
// plots such as Fig 22.
func SortedDescending(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s
}

// Histogram is a fixed-bucket counter over [0, max).
type Histogram struct {
	Buckets []uint64
	Width   float64
	Over    uint64 // samples >= max
}

// NewHistogram creates a histogram with n buckets covering [0, max).
func NewHistogram(n int, max float64) *Histogram {
	return &Histogram{Buckets: make([]uint64, n), Width: max / float64(n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int(x / h.Width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		h.Over++
		return
	}
	h.Buckets[i]++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 {
	t := h.Over
	for _, b := range h.Buckets {
		t += b
	}
	return t
}
