package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRngSeedsDiffer(t *testing.T) {
	a, b := NewRng(1), NewRng(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal outputs", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRng(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRng(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRng(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRng(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := NewRng(13)
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < 200000; i++ {
		v := r.Zipf(n, 0.9)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Head should be much more popular than the tail.
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := n - 10; i < n; i++ {
		tail += counts[i]
	}
	if head <= tail*3 {
		t.Fatalf("zipf not skewed: head=%d tail=%d", head, tail)
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := NewRng(1)
	if v := r.Zipf(1, 0.9); v != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", v)
	}
	if v := r.Zipf(0, 0.9); v != 0 {
		t.Fatalf("Zipf(0) = %d, want 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRng(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~half the output bits.
	totalFlips := 0
	const trials = 64
	for b := 0; b < trials; b++ {
		x := uint64(0xdeadbeefcafe)
		d := Hash64(x) ^ Hash64(x^(1<<uint(b)))
		totalFlips += popcount(d)
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("weak avalanche: avg %v flipped bits", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestGmean(t *testing.T) {
	g := Gmean([]float64{1, 4})
	if math.Abs(g-2) > 1e-12 {
		t.Fatalf("Gmean(1,4) = %v, want 2", g)
	}
	if Gmean(nil) != 0 {
		t.Fatal("Gmean(nil) should be 0")
	}
}

func TestGmeanPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gmean([]float64{1, 0})
}

func TestWeightedSpeedup(t *testing.T) {
	ws := WeightedSpeedup([]float64{2, 2}, []float64{1, 4})
	if math.Abs(ws-1.25) > 1e-12 {
		t.Fatalf("WeightedSpeedup = %v, want 1.25", ws)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("P50 = %v, want 3", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("P0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("P100 = %v, want 5", p)
	}
}

func TestSortedDescending(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedDescending(in)
	if out[0] != 3 || out[1] != 2 || out[2] != 1 {
		t.Fatalf("got %v", out)
	}
	if in[0] != 3 || in[1] != 1 {
		t.Fatal("input was modified")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Add(5)
	h.Add(95)
	h.Add(150) // overflow
	if h.Buckets[0] != 1 || h.Buckets[9] != 1 || h.Over != 1 {
		t.Fatalf("histogram mismatch: %+v", h)
	}
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	r := NewRng(21)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGmeanOfEqualValues(t *testing.T) {
	r := NewRng(31)
	f := func(k uint8) bool {
		v := 0.5 + r.Float64()*10
		xs := make([]float64, int(k%10)+1)
		for i := range xs {
			xs[i] = v
		}
		return math.Abs(Gmean(xs)-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
