// Package stats provides deterministic random number generation and the
// small statistical helpers used throughout the simulator: geometric means,
// weighted speedups, histograms, and reservoir sampling.
//
// All randomness in the repository flows through Rng so that every
// experiment is reproducible from a fixed seed.
package stats

import "math"

// Rng is a small, fast, deterministic PRNG (splitmix64 seeded xoshiro256**).
// The zero value is not valid; use NewRng.
type Rng struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is used only to seed the main generator.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRng returns a generator seeded deterministically from seed.
func NewRng(seed uint64) *Rng {
	r := &Rng{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rng) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Rng) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Zipf returns a value in [0, n) drawn from a Zipf-like distribution with
// exponent s. Small indices are the most popular. It uses rejection-free
// inverse-CDF approximation adequate for workload synthesis.
func (r *Rng) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-transform on the continuous bounded-Pareto approximation.
	u := r.Float64()
	if s == 1.0 {
		s = 1.0001 // avoid the harmonic special case
	}
	nf := float64(n)
	hi := math.Pow(nf, 1.0-s)
	x := math.Pow(u*(hi-1.0)+1.0, 1.0/(1.0-s))
	idx := int(x) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Perm returns a random permutation of [0, n).
func (r *Rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Rng) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Hash64 mixes a 64-bit value (splitmix64 finalizer). It is the standard
// address hash used by S-NUCA bank selection and monitor sampling.
func Hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
