package cache

import (
	"testing"
	"testing/quick"

	"whirlpool/internal/addr"
)

func TestSetAssocBasicHitMiss(t *testing.T) {
	c := NewSetAssoc(64*1024, 8, LRU)
	if hit, _, _ := c.Access(addr.Line(1), false); hit {
		t.Fatal("first access should miss")
	}
	if hit, _, _ := c.Access(addr.Line(1), false); !hit {
		t.Fatal("second access should hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestSetAssocLRUWithinWorkingSet(t *testing.T) {
	c := NewSetAssoc(64*1024, 8, LRU)
	n := int(c.LineCapacity() / 2) // comfortably fits
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			c.Access(addr.Line(i), false)
		}
	}
	// After the cold pass everything should hit: XOR-folded indexing
	// spreads contiguous lines perfectly.
	want := uint64(2 * n)
	if c.Hits != want {
		t.Fatalf("hits=%d, want %d", c.Hits, want)
	}
}

func TestSetAssocEvictionReported(t *testing.T) {
	c := NewSetAssoc(1024, 2, LRU) // 16 lines, 8 sets x 2 ways
	evictions := 0
	for i := 0; i < 1000; i++ {
		_, _, evicted := c.Access(addr.Line(i), false)
		if evicted {
			evictions++
		}
	}
	if evictions == 0 {
		t.Fatal("streaming through a tiny cache must evict")
	}
}

func TestSetAssocDirtyEviction(t *testing.T) {
	c := NewSetAssoc(1024, 2, LRU)
	dirtyEv := 0
	for i := 0; i < 1000; i++ {
		_, ev, evicted := c.Access(addr.Line(i), true)
		if evicted && ev.Dirty {
			dirtyEv++
		}
	}
	if dirtyEv == 0 {
		t.Fatal("writes must produce dirty evictions")
	}
}

func TestSetAssocWriteback(t *testing.T) {
	c := NewSetAssoc(64*1024, 8, LRU)
	c.Access(addr.Line(5), false)
	if !c.Writeback(addr.Line(5)) {
		t.Fatal("writeback of resident line should succeed")
	}
	if c.Writeback(addr.Line(999999)) {
		t.Fatal("writeback of absent line should fail")
	}
	// The dirtied line must produce a dirty eviction when invalidated.
	if present, dirty := c.Invalidate(addr.Line(5)); !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
}

func TestSetAssocInvalidate(t *testing.T) {
	c := NewSetAssoc(64*1024, 8, LRU)
	c.Access(addr.Line(3), false)
	if present, _ := c.Invalidate(addr.Line(3)); !present {
		t.Fatal("line should be present")
	}
	if c.Probe(addr.Line(3)) {
		t.Fatal("line should be gone after invalidate")
	}
	if present, _ := c.Invalidate(addr.Line(3)); present {
		t.Fatal("double invalidate should report absent")
	}
}

func TestSetAssocProbeDoesNotInsert(t *testing.T) {
	c := NewSetAssoc(64*1024, 8, LRU)
	if c.Probe(addr.Line(42)) {
		t.Fatal("probe of empty cache hit")
	}
	if hit, _, _ := c.Access(addr.Line(42), false); hit {
		t.Fatal("probe must not have inserted")
	}
}

// DRRIP should protect against thrashing: a scanning pattern larger than
// the cache mixed with a small hot set should keep the hot set resident
// much better than LRU does.
func TestDRRIPScanResistance(t *testing.T) {
	run := func(kind Repl) float64 {
		c := NewSetAssoc(64*1024, 16, kind)
		hot := 256     // lines, fits easily
		scan := 100000 // much larger than the 1024-line cache
		hotHits, hotAccs := 0, 0
		scanPos := 0
		for i := 0; i < 400000; i++ {
			if i%4 == 0 {
				hotAccs++
				if hit, _, _ := c.Access(addr.Line(i/4%hot), false); hit {
					hotHits++
				}
			} else {
				c.Access(addr.Line(1_000_000+scanPos), false)
				scanPos = (scanPos + 1) % scan
			}
		}
		return float64(hotHits) / float64(hotAccs)
	}
	lru := run(LRU)
	drrip := run(DRRIP)
	if drrip <= lru {
		t.Fatalf("DRRIP (%.3f) should beat LRU (%.3f) under scanning", drrip, lru)
	}
}

func TestSetAssocReset(t *testing.T) {
	c := NewSetAssoc(64*1024, 8, LRU)
	c.Access(addr.Line(1), true)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("stats not reset")
	}
	if c.Probe(addr.Line(1)) {
		t.Fatal("contents not reset")
	}
}

func TestSetAssocBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	NewSetAssoc(12288, 2, LRU) // 192 lines / 2 ways = 96 sets: not a power of two
}

func TestCapLRUBasic(t *testing.T) {
	c := NewCapLRU(4)
	for i := 0; i < 4; i++ {
		if hit, _, _ := c.Access(addr.Line(i), false); hit {
			t.Fatal("cold access hit")
		}
	}
	if c.Size() != 4 {
		t.Fatalf("size=%d", c.Size())
	}
	// Access 0..3 again: all hits.
	for i := 0; i < 4; i++ {
		if hit, _, _ := c.Access(addr.Line(i), false); !hit {
			t.Fatalf("line %d should hit", i)
		}
	}
	// Insert 4: evicts LRU (0).
	_, ev, evicted := c.Access(addr.Line(4), false)
	if !evicted || ev.Line != 0 {
		t.Fatalf("expected eviction of line 0, got %v %v", evicted, ev)
	}
	if c.Contains(addr.Line(0)) {
		t.Fatal("line 0 should be gone")
	}
}

func TestCapLRUPromotion(t *testing.T) {
	c := NewCapLRU(3)
	c.Access(addr.Line(1), false)
	c.Access(addr.Line(2), false)
	c.Access(addr.Line(3), false)
	c.Access(addr.Line(1), false) // promote 1
	_, ev, _ := c.Access(addr.Line(4), false)
	if ev.Line != 2 {
		t.Fatalf("expected LRU victim 2, got %d", ev.Line)
	}
}

func TestCapLRUZeroCapacity(t *testing.T) {
	c := NewCapLRU(0)
	hit, _, evicted := c.Access(addr.Line(1), false)
	if hit || evicted {
		t.Fatal("zero-capacity store must always miss, never evict")
	}
	if c.Size() != 0 {
		t.Fatal("zero-capacity store must stay empty")
	}
}

func TestCapLRUDirtyTracking(t *testing.T) {
	c := NewCapLRU(1)
	c.Access(addr.Line(1), true)
	_, ev, evicted := c.Access(addr.Line(2), false)
	if !evicted || !ev.Dirty {
		t.Fatal("dirty line eviction not reported")
	}
}

func TestCapLRUWriteback(t *testing.T) {
	c := NewCapLRU(2)
	c.Access(addr.Line(1), false)
	if !c.Writeback(addr.Line(1)) {
		t.Fatal("writeback should find resident line")
	}
	if c.Writeback(addr.Line(99)) {
		t.Fatal("writeback of absent line should fail")
	}
	c.Access(addr.Line(2), false)
	_, ev, _ := c.Access(addr.Line(3), false)
	if ev.Line != 1 || !ev.Dirty {
		t.Fatalf("evicted %v dirty=%v, want line 1 dirty", ev.Line, ev.Dirty)
	}
}

func TestCapLRUResizeShrink(t *testing.T) {
	c := NewCapLRU(10)
	for i := 0; i < 10; i++ {
		c.Access(addr.Line(i), i%2 == 0)
	}
	evs := c.Resize(3)
	if len(evs) != 7 {
		t.Fatalf("expected 7 evictions, got %d", len(evs))
	}
	if c.Size() != 3 {
		t.Fatalf("size=%d after shrink", c.Size())
	}
	// MRU survivors are 7,8,9.
	for i := 7; i < 10; i++ {
		if !c.Contains(addr.Line(i)) {
			t.Fatalf("line %d should survive shrink", i)
		}
	}
}

func TestCapLRUResizeGrow(t *testing.T) {
	c := NewCapLRU(2)
	c.Access(addr.Line(1), false)
	c.Access(addr.Line(2), false)
	if evs := c.Resize(5); len(evs) != 0 {
		t.Fatal("grow must not evict")
	}
	c.Access(addr.Line(3), false)
	if c.Size() != 3 {
		t.Fatalf("size=%d", c.Size())
	}
}

func TestCapLRUInvalidateAll(t *testing.T) {
	c := NewCapLRU(5)
	c.Access(addr.Line(1), true)
	c.Access(addr.Line(2), false)
	lines, dirty := c.InvalidateAll()
	if lines != 2 || dirty != 1 {
		t.Fatalf("lines=%d dirty=%d", lines, dirty)
	}
	if c.Size() != 0 {
		t.Fatal("store should be empty")
	}
	// Reusable after flush.
	c.Access(addr.Line(3), false)
	if !c.Contains(addr.Line(3)) {
		t.Fatal("store unusable after InvalidateAll")
	}
}

func TestCapLRUForEachOrder(t *testing.T) {
	c := NewCapLRU(3)
	c.Access(addr.Line(1), false)
	c.Access(addr.Line(2), false)
	c.Access(addr.Line(3), false)
	var got []addr.Line
	c.ForEach(func(l addr.Line) { got = append(got, l) })
	if len(got) != 3 || got[0] != 3 || got[2] != 1 {
		t.Fatalf("MRU order wrong: %v", got)
	}
}

// Property: size never exceeds capacity, and a hit never evicts.
func TestQuickCapLRUInvariants(t *testing.T) {
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		c := NewCapLRU(capacity)
		for _, op := range ops {
			hit, _, evicted := c.Access(addr.Line(op%64), false)
			if hit && evicted {
				return false
			}
			if c.Size() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CapLRU of capacity >= distinct lines touched never misses
// twice on the same line.
func TestQuickCapLRUNoCapacityMisses(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewCapLRU(256) // >= any distinct count of uint8 lines
		seen := map[addr.Line]bool{}
		for _, op := range ops {
			l := addr.Line(op)
			hit, _, _ := c.Access(l, false)
			if seen[l] && !hit {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
