// Package cache implements the hardware cache structures the simulator
// composes: set-associative arrays with pluggable replacement (LRU, SRRIP,
// BRRIP, DRRIP with set dueling), and a capacity-managed LRU store used to
// model fine-grain partitioned virtual caches (Jigsaw partitions banks with
// Vantage, so a partition behaves as an LRU cache of exactly its allocated
// capacity).
package cache

import (
	"whirlpool/internal/addr"
	"whirlpool/internal/stats"
)

// Repl selects the replacement policy of a SetAssoc cache.
type Repl int

// Replacement policies.
const (
	LRU Repl = iota
	SRRIP
	BRRIP
	DRRIP
)

// String returns the policy name.
func (r Repl) String() string {
	switch r {
	case LRU:
		return "LRU"
	case SRRIP:
		return "SRRIP"
	case BRRIP:
		return "BRRIP"
	case DRRIP:
		return "DRRIP"
	}
	return "unknown"
}

const (
	rrpvMax    = 3 // 2-bit re-reference prediction values
	rrpvLong   = 2 // SRRIP insertion
	brripProb  = 32
	duelLeader = 32   // leader sets per policy for DRRIP set dueling
	pselMax    = 1023 // 10-bit PSEL
)

// Eviction describes a line displaced by an insertion.
type Eviction struct {
	Line  addr.Line
	Dirty bool
}

// SetAssoc is a single set-associative cache array.
//
// Set indexing XOR-folds the upper address bits into the low index bits:
// contiguous data still spreads perfectly across sets (as with classic
// low-bit indexing) while large power-of-two strides avoid pathological
// conflicts — matching the near-ideal conflict behaviour of the paper's
// 52-candidate zcache banks (see docs/design.md).
type SetAssoc struct {
	sets  int
	ways  int
	shift uint // log2(sets)
	kind  Repl
	tags  []uint64 // line+1; 0 = invalid
	ts    []uint32 // LRU timestamps
	rrpv  []uint8
	dirty []bool
	clock uint32

	// DRRIP set dueling state.
	psel int
	rng  *stats.Rng

	// Statistics.
	Hits   uint64
	Misses uint64
}

// NewSetAssoc builds a cache of the given total size in bytes.
// sizeBytes must be a multiple of ways*LineBytes and sets must come out a
// power of two.
func NewSetAssoc(sizeBytes uint64, ways int, kind Repl) *SetAssoc {
	lines := sizeBytes / addr.LineBytes
	sets := int(lines) / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	n := sets * ways
	return &SetAssoc{
		sets:  sets,
		ways:  ways,
		shift: shift,
		kind:  kind,
		tags:  make([]uint64, n),
		ts:    make([]uint32, n),
		rrpv:  make([]uint8, n),
		dirty: make([]bool, n),
		psel:  pselMax / 2,
		rng:   stats.NewRng(0x5eed),
	}
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// LineCapacity returns total capacity in lines.
func (c *SetAssoc) LineCapacity() uint64 { return uint64(c.sets * c.ways) }

func (c *SetAssoc) setOf(l addr.Line) int {
	x := uint64(l)
	// XOR-fold three index-width slices of the address.
	folded := x ^ (x >> c.shift) ^ (x >> (2 * c.shift))
	return int(folded & uint64(c.sets-1))
}

// policyFor returns the effective insertion policy for a set, resolving
// DRRIP set dueling.
func (c *SetAssoc) policyFor(set int) Repl {
	if c.kind != DRRIP {
		return c.kind
	}
	// Leader sets: first duelLeader sets follow SRRIP, next follow BRRIP.
	switch {
	case set < duelLeader:
		return SRRIP
	case set < 2*duelLeader:
		return BRRIP
	default:
		if c.psel >= pselMax/2 {
			return BRRIP
		}
		return SRRIP
	}
}

// duelMiss updates PSEL on a miss in a leader set.
func (c *SetAssoc) duelMiss(set int) {
	if c.kind != DRRIP {
		return
	}
	if set < duelLeader {
		// Miss in SRRIP leader: vote for BRRIP.
		if c.psel < pselMax {
			c.psel++
		}
	} else if set < 2*duelLeader {
		if c.psel > 0 {
			c.psel--
		}
	}
}

// Access looks up line l, updating replacement state, and inserts it on a
// miss. It reports whether the access hit, and the eviction (if any) caused
// by the fill.
func (c *SetAssoc) Access(l addr.Line, write bool) (hit bool, ev Eviction, evicted bool) {
	set := c.setOf(l)
	base := set * c.ways
	tag := uint64(l) + 1
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.Hits++
			c.ts[base+w] = c.clock
			c.rrpv[base+w] = 0
			if write {
				c.dirty[base+w] = true
			}
			return true, Eviction{}, false
		}
	}
	c.Misses++
	c.duelMiss(set)
	w := c.victim(set)
	idx := base + w
	if c.tags[idx] != 0 {
		ev = Eviction{Line: addr.Line(c.tags[idx] - 1), Dirty: c.dirty[idx]}
		evicted = true
	}
	c.tags[idx] = tag
	c.ts[idx] = c.clock
	c.dirty[idx] = write
	switch c.policyFor(set) {
	case SRRIP:
		c.rrpv[idx] = rrpvLong
	case BRRIP:
		if c.rng.Intn(brripProb) == 0 {
			c.rrpv[idx] = rrpvLong
		} else {
			c.rrpv[idx] = rrpvMax
		}
	default:
		c.rrpv[idx] = 0
	}
	return false, ev, evicted
}

// victim picks the way to replace in set.
func (c *SetAssoc) victim(set int) int {
	base := set * c.ways
	// Prefer invalid ways.
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			return w
		}
	}
	if c.kind == LRU {
		best, bestTS := 0, c.ts[base]
		for w := 1; w < c.ways; w++ {
			if c.ts[base+w] < bestTS {
				best, bestTS = w, c.ts[base+w]
			}
		}
		return best
	}
	// RRIP family: find RRPV==max, aging as needed.
	for {
		for w := 0; w < c.ways; w++ {
			if c.rrpv[base+w] >= rrpvMax {
				return w
			}
		}
		for w := 0; w < c.ways; w++ {
			c.rrpv[base+w]++
		}
	}
}

// Writeback marks l dirty if present (an L2 writeback arriving at an
// inclusive LLC). It reports whether the line was present; if not, the
// writeback must go to memory. It does not insert or promote.
func (c *SetAssoc) Writeback(l addr.Line) bool {
	base := c.setOf(l) * c.ways
	tag := uint64(l) + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

// Probe reports whether l is present without touching replacement state.
func (c *SetAssoc) Probe(l addr.Line) bool {
	base := c.setOf(l) * c.ways
	tag := uint64(l) + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Invalidate removes l if present, reporting presence and dirtiness.
func (c *SetAssoc) Invalidate(l addr.Line) (present, dirty bool) {
	base := c.setOf(l) * c.ways
	tag := uint64(l) + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			d := c.dirty[base+w]
			c.tags[base+w] = 0
			c.dirty[base+w] = false
			c.rrpv[base+w] = rrpvMax
			return true, d
		}
	}
	return false, false
}

// Reset clears all contents and statistics.
func (c *SetAssoc) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.ts[i] = 0
		c.rrpv[i] = 0
		c.dirty[i] = false
	}
	c.clock = 0
	c.Hits = 0
	c.Misses = 0
	c.psel = pselMax / 2
}
