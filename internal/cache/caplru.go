package cache

import "whirlpool/internal/addr"

// CapLRU is a fully-associative LRU store with an adjustable capacity in
// lines. It models one virtual cache partition: Jigsaw's Vantage
// partitioning keeps each partition at exactly its allocated size, so the
// partition's hit/miss behaviour is that of an LRU cache of that capacity.
//
// Nodes live in a slice with an intrusive doubly-linked list and a free
// list, so steady-state operation does not allocate.
type CapLRU struct {
	capacity int
	m        map[addr.Line]int32
	nodes    []capNode
	free     []int32
	head     int32 // MRU; -1 when empty
	tail     int32 // LRU; -1 when empty

	Hits   uint64
	Misses uint64
}

type capNode struct {
	line       addr.Line
	prev, next int32
	dirty      bool
}

// NewCapLRU creates a store with the given capacity in lines (may be 0).
func NewCapLRU(capacity int) *CapLRU {
	return &CapLRU{
		capacity: capacity,
		m:        make(map[addr.Line]int32),
		head:     -1,
		tail:     -1,
	}
}

// Capacity returns the current capacity in lines.
func (c *CapLRU) Capacity() int { return c.capacity }

// Size returns the number of resident lines.
func (c *CapLRU) Size() int { return len(c.m) }

func (c *CapLRU) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *CapLRU) pushFront(i int32) {
	n := &c.nodes[i]
	n.prev = -1
	n.next = c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *CapLRU) alloc(l addr.Line, dirty bool) int32 {
	var i int32
	if n := len(c.free); n > 0 {
		i = c.free[n-1]
		c.free = c.free[:n-1]
		c.nodes[i] = capNode{line: l, dirty: dirty}
	} else {
		i = int32(len(c.nodes))
		c.nodes = append(c.nodes, capNode{line: l, dirty: dirty})
	}
	return i
}

// evictLRU removes the least-recently-used line and returns it.
func (c *CapLRU) evictLRU() Eviction {
	i := c.tail
	n := c.nodes[i]
	c.unlink(i)
	delete(c.m, n.line)
	c.free = append(c.free, i)
	return Eviction{Line: n.line, Dirty: n.dirty}
}

// Access looks up l, promoting it on a hit and inserting it on a miss.
// If capacity is zero the access always misses and nothing is inserted.
// At most one eviction results.
func (c *CapLRU) Access(l addr.Line, write bool) (hit bool, ev Eviction, evicted bool) {
	if i, ok := c.m[l]; ok {
		c.Hits++
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		if write {
			c.nodes[i].dirty = true
		}
		return true, Eviction{}, false
	}
	c.Misses++
	if c.capacity == 0 {
		return false, Eviction{}, false
	}
	if len(c.m) >= c.capacity {
		ev = c.evictLRU()
		evicted = true
	}
	i := c.alloc(l, write)
	c.m[l] = i
	c.pushFront(i)
	return false, ev, evicted
}

// Writeback marks l dirty if resident, reporting presence. It neither
// inserts nor promotes; absent lines must be written to memory.
func (c *CapLRU) Writeback(l addr.Line) bool {
	i, ok := c.m[l]
	if ok {
		c.nodes[i].dirty = true
	}
	return ok
}

// Contains reports whether l is resident, without updating LRU state.
func (c *CapLRU) Contains(l addr.Line) bool {
	_, ok := c.m[l]
	return ok
}

// Resize changes the capacity, evicting LRU lines as needed. The evicted
// lines are returned so callers can account for writebacks/invalidations.
func (c *CapLRU) Resize(capacity int) []Eviction {
	c.capacity = capacity
	var evs []Eviction
	for len(c.m) > capacity {
		evs = append(evs, c.evictLRU())
	}
	return evs
}

// InvalidateAll empties the store, returning the number of lines dropped
// and how many of them were dirty.
func (c *CapLRU) InvalidateAll() (lines, dirty int) {
	lines = len(c.m)
	for i := c.head; i >= 0; i = c.nodes[i].next {
		if c.nodes[i].dirty {
			dirty++
		}
	}
	c.m = make(map[addr.Line]int32)
	c.nodes = c.nodes[:0]
	c.free = c.free[:0]
	c.head, c.tail = -1, -1
	return lines, dirty
}

// ForEach calls fn for every resident line, MRU to LRU order.
func (c *CapLRU) ForEach(fn func(l addr.Line)) {
	for i := c.head; i >= 0; i = c.nodes[i].next {
		fn(c.nodes[i].line)
	}
}
