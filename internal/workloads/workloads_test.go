package workloads

import (
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/mem"
	"whirlpool/internal/trace"
)

func TestSpecsWellFormed(t *testing.T) {
	specs := Specs()
	if len(specs) != 31 {
		t.Fatalf("suite has %d apps, want 31 (15 SPEC + 16 PBBS)", len(specs))
	}
	names := map[string]bool{}
	nSpec, nPbbs := 0, 0
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate app %q", s.Name)
		}
		names[s.Name] = true
		switch s.Suite {
		case "spec":
			nSpec++
		case "pbbs":
			nPbbs++
		default:
			t.Fatalf("%s: bad suite %q", s.Name, s.Suite)
		}
		if len(s.Structs) == 0 || len(s.Phases) == 0 {
			t.Fatalf("%s: empty structs or phases", s.Name)
		}
		for _, ph := range s.Phases {
			if len(ph.Weights) != len(s.Structs) {
				t.Fatalf("%s: phase weights %d != structs %d", s.Name, len(ph.Weights), len(s.Structs))
			}
			if ph.Patterns != nil && len(ph.Patterns) != len(s.Structs) {
				t.Fatalf("%s: phase patterns length mismatch", s.Name)
			}
			var sum float64
			for _, w := range ph.Weights {
				if w < 0 {
					t.Fatalf("%s: negative weight", s.Name)
				}
				sum += w
			}
			if sum <= 0 {
				t.Fatalf("%s: zero weight phase", s.Name)
			}
		}
		for gi, g := range s.ManualPools {
			for _, si := range g {
				if si < 0 || si >= len(s.Structs) {
					t.Fatalf("%s: manual pool %d has bad index %d", s.Name, gi, si)
				}
			}
		}
		if s.APKI <= 0 || s.Accesses == 0 {
			t.Fatalf("%s: missing APKI or Accesses", s.Name)
		}
	}
	if nSpec != 15 || nPbbs != 16 {
		t.Fatalf("suite split %d/%d, want 15/16", nSpec, nPbbs)
	}
}

func TestTable2AppsPresent(t *testing.T) {
	// The manually-ported apps of Table 2 that are in the single-threaded
	// suite must carry manual pool groupings.
	manual := []string{"BFS", "delaunay", "matching", "refine", "MIS", "ST", "MST", "hull", "bzip2", "lbm", "mcf", "cactus"}
	for _, name := range manual {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("missing Table 2 app %q", name)
		}
		if len(s.ManualPools) == 0 {
			t.Fatalf("%s: no manual pools", name)
		}
		if s.ManualLOC == 0 {
			t.Fatalf("%s: no LOC entry", name)
		}
	}
}

func TestDelaunayMatchesPaper(t *testing.T) {
	// Fig 2: dt has a 6MB working set in three pools of 0.5/1.5/4 MB
	// with roughly even access split.
	s, _ := ByName("delaunay")
	if len(s.Structs) != 3 {
		t.Fatalf("dt pools = %d", len(s.Structs))
	}
	var total uint64
	for _, st := range s.Structs {
		total += st.Bytes
	}
	if total != 6*mb {
		t.Fatalf("dt working set = %d, want 6MB", total)
	}
	w := s.Phases[0].Weights
	if w[0] < 0.3 || w[1] < 0.3 || w[2] < 0.3 {
		t.Fatalf("dt access split not even: %v", w)
	}
}

func TestBuildAllocatesStructs(t *testing.T) {
	s, _ := ByName("mcf")
	w := Build(s, 1.0)
	if len(w.Structs) != 2 {
		t.Fatalf("structs = %d", len(w.Structs))
	}
	for i, st := range w.Structs {
		if st.Lines != addr.LinesFor(s.Structs[i].Bytes) {
			t.Fatalf("struct %d lines mismatch", i)
		}
		if w.Space.CallpointOf(st.Base) != st.CP {
			t.Fatalf("struct %d callpoint mismatch", i)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	s, _ := ByName("delaunay")
	w := Build(s, 0.01)
	s1, s2 := w.Stream(1), w.Stream(1)
	for i := 0; i < 10000; i++ {
		a1, ok1 := s1.Next()
		a2, ok2 := s2.Next()
		if ok1 != ok2 || a1 != a2 {
			t.Fatalf("streams diverged at %d", i)
		}
		if !ok1 {
			break
		}
	}
}

func TestStreamLengthScales(t *testing.T) {
	s, _ := ByName("hull")
	w := Build(s, 0.001)
	want := uint64(float64(s.Accesses) * 0.001)
	var n uint64
	st := w.Stream(1)
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		n++
	}
	if n != want {
		t.Fatalf("stream length %d, want %d", n, want)
	}
}

func TestStreamStaysInBounds(t *testing.T) {
	for _, name := range []string{"delaunay", "MIS", "lbm", "refine", "omnet"} {
		s, _ := ByName(name)
		w := Build(s, 0.01)
		st := w.Stream(7)
		for {
			a, ok := st.Next()
			if !ok {
				break
			}
			found := false
			for _, sa := range w.Structs {
				base := addr.LineOf(sa.Base)
				if a.Line >= base && a.Line < base+addr.Line(sa.Lines) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: access to line %#x outside every structure", name, uint64(a.Line))
			}
		}
	}
}

func TestAccessSplitMatchesWeights(t *testing.T) {
	s, _ := ByName("delaunay")
	w := Build(s, 0.05)
	st := w.Stream(3)
	counts := make([]uint64, len(w.Structs))
	var total uint64
	for {
		a, ok := st.Next()
		if !ok {
			break
		}
		total++
		for i, sa := range w.Structs {
			base := addr.LineOf(sa.Base)
			if a.Line >= base && a.Line < base+addr.Line(sa.Lines) {
				counts[i]++
				break
			}
		}
	}
	for i, c := range counts {
		frac := float64(c) / float64(total)
		want := s.Phases[0].Weights[i]
		if frac < want-0.05 || frac > want+0.05 {
			t.Fatalf("struct %d got %.3f of accesses, want ~%.3f", i, frac, want)
		}
	}
}

func TestLbmPhasesAlternate(t *testing.T) {
	// Fig 6: lbm's two grids must swap dominance across phases.
	s, _ := ByName("lbm")
	w := Build(s, 0.2)
	st := w.Stream(1)
	// Count per-structure accesses in windows; dominance must flip.
	window := w.Accesses / 20
	counts := [2]uint64{}
	var seen uint64
	flips := 0
	lastDominant := -1
	g1 := addr.LineOf(w.Structs[0].Base)
	g1end := g1 + addr.Line(w.Structs[0].Lines)
	for {
		a, ok := st.Next()
		if !ok {
			break
		}
		if a.Line >= g1 && a.Line < g1end {
			counts[0]++
		} else {
			counts[1]++
		}
		seen++
		if seen%window == 0 {
			dom := 0
			if counts[1] > counts[0] {
				dom = 1
			}
			if lastDominant >= 0 && dom != lastDominant {
				flips++
			}
			lastDominant = dom
			counts = [2]uint64{}
		}
	}
	if flips < 2 {
		t.Fatalf("lbm grids flipped dominance %d times, want >= 2", flips)
	}
}

func TestCallpointPools(t *testing.T) {
	s, _ := ByName("delaunay")
	w := Build(s, 0.01)
	m := w.CallpointPools([][]int{{0, 1}, {2}})
	if m[w.Structs[0].CP] != m[w.Structs[1].CP] {
		t.Fatal("grouped structs must share a pool")
	}
	if m[w.Structs[0].CP] == m[w.Structs[2].CP] {
		t.Fatal("separate groups must get distinct pools")
	}
}

func TestManualGroupingFallback(t *testing.T) {
	s, _ := ByName("milc") // not manually ported
	w := Build(s, 0.01)
	g := w.ManualGrouping()
	if len(g) != 1 || len(g[0]) != len(w.Structs) {
		t.Fatalf("fallback grouping should be one pool with all structs: %v", g)
	}
}

func TestFilteredTraceIsMemoryIntensive(t *testing.T) {
	// Appendix A keeps apps with > 5 L2 MPKI; spot-check a few.
	for _, name := range []string{"MIS", "lbm", "mcf"} {
		s, _ := ByName(name)
		w := Build(s, 0.05)
		tr := trace.FilterPrivate(w.Stream(1))
		mpki := float64(tr.DemandAccesses()) / float64(tr.Instrs) * 1000
		if mpki < 5 {
			t.Fatalf("%s: L2 MPKI %.1f < 5", name, mpki)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("ByName should fail for unknown apps")
	}
	if _, ok := ByName("lbm"); !ok {
		t.Fatal("lbm missing")
	}
	if len(Names()) != 31 {
		t.Fatal("Names length mismatch")
	}
}

var _ = mem.DefaultPool

// The snapshot helper must make registrations invisible to later tests:
// additions disappear, and shadowed built-ins reappear, on restore.
func TestSnapshotRegistryRestores(t *testing.T) {
	want := len(Names())
	restore := SnapshotRegistry()
	orig, _ := ByName("lbm")
	if err := Register(AppSpec{Name: "snap-only"}); err != nil {
		t.Fatal(err)
	}
	shadow := orig
	shadow.Accesses = orig.Accesses + 1
	if err := Register(shadow); err != nil {
		t.Fatal(err)
	}
	restore()
	if _, ok := ByName("snap-only"); ok {
		t.Fatal("registration survived restore")
	}
	if s, _ := ByName("lbm"); s.Accesses != orig.Accesses {
		t.Fatalf("shadowed builtin not restored: %d != %d", s.Accesses, orig.Accesses)
	}
	if len(Names()) != want {
		t.Fatalf("Names = %d after restore, want %d", len(Names()), want)
	}
}
