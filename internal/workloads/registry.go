package workloads

import (
	"fmt"
	"maps"
	"slices"
	"sync"
)

// The registry holds specs loaded at runtime (from workload-spec files,
// see internal/spec). Registered specs layer over the built-in suite:
// registering a name that already exists — built-in or previously
// registered — replaces it, so a spec file can both add new apps and
// tweak existing ones. ByName and Names consult the registry; everything
// downstream (the experiments harness, the public Run API, the CLIs)
// picks registered apps up automatically.
var (
	regMu   sync.RWMutex
	regList []AppSpec
	regIdx  = map[string]int{}
)

// Register adds a runtime spec, replacing any existing app with the same
// name. The spec is assumed validated (internal/spec does this before
// registering).
func Register(spec AppSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("workloads: cannot register a spec with an empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if i, ok := regIdx[spec.Name]; ok {
		regList[i] = spec
		return nil
	}
	regIdx[spec.Name] = len(regList)
	regList = append(regList, spec)
	return nil
}

// RegisterAll registers every spec, stopping at the first error.
func RegisterAll(specs []AppSpec) error {
	for _, s := range specs {
		if err := Register(s); err != nil {
			return err
		}
	}
	return nil
}

// registered returns the runtime spec for name, if any.
func registered(name string) (AppSpec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if i, ok := regIdx[name]; ok {
		return regList[i], true
	}
	return AppSpec{}, false
}

// SnapshotRegistry captures the current runtime registry and returns a
// function restoring it. The registry is global per process, so a test
// that registers apps (e.g. trace-sourced ones) leaks them into every
// later test in the same binary unless it restores the snapshot:
//
//	t.Cleanup(workloads.SnapshotRegistry())
//
// Restoring discards registrations made after the snapshot, including
// replacements of apps that existed at snapshot time.
func SnapshotRegistry() (restore func()) {
	regMu.Lock()
	defer regMu.Unlock()
	list := slices.Clone(regList)
	idx := maps.Clone(regIdx)
	return func() {
		regMu.Lock()
		defer regMu.Unlock()
		regList = list
		regIdx = idx
	}
}

// RegisteredNames returns the names of runtime-registered apps in
// registration order (including ones that shadow built-ins).
func RegisteredNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regList))
	for i, s := range regList {
		out[i] = s.Name
	}
	return out
}
