// Package workloads synthesizes the paper's benchmark suite. Each app is a
// set of data structures (allocated from the simulated pool allocator,
// tagged with per-structure callpoints) plus a deterministic access-stream
// generator reproducing the documented pool structure: sizes, access
// splits, reuse patterns, and phase behaviour (Table 2, Figs 2, 6, 8, 9,
// 11). See docs/design.md for why this substitution preserves the experiments.
package workloads

import (
	"fmt"

	"whirlpool/internal/addr"
	"whirlpool/internal/mem"
	"whirlpool/internal/stats"
	"whirlpool/internal/trace"
)

// Pattern selects a structure's reference pattern.
type Pattern int

// Reference patterns.
const (
	// Inherit keeps the structure's default pattern (phase overrides).
	Inherit Pattern = iota
	// Seq streams sequentially through the structure, wrapping.
	Seq
	// Rand touches uniform random lines.
	Rand
	// Zipf touches lines with Zipfian popularity (Param = exponent).
	Zipf
	// Chase walks a fixed pseudo-random permutation (pointer chasing).
	Chase
	// WSLoop loops sequentially over the first Param fraction of lines.
	WSLoop
	// RandWS touches uniform random lines within the first Param fraction.
	RandWS
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Seq:
		return "seq"
	case Rand:
		return "rand"
	case Zipf:
		return "zipf"
	case Chase:
		return "chase"
	case WSLoop:
		return "wsloop"
	case RandWS:
		return "randws"
	}
	return "inherit"
}

// StructSpec describes one program data structure.
type StructSpec struct {
	Name      string
	Bytes     uint64
	Pattern   Pattern
	Param     float64 // Zipf exponent or WS fraction
	WriteFrac float64 // fraction of accesses that are stores
}

// PhaseSpec describes one phase of execution. Phases cycle.
type PhaseSpec struct {
	// Len is the relative length of this phase within one period.
	Len float64
	// Weights gives each structure's share of accesses in this phase.
	Weights []float64
	// Patterns optionally overrides per-structure patterns (Inherit keeps
	// the default). Nil means no overrides.
	Patterns []Pattern
	// Params optionally overrides per-structure pattern params (0 keeps
	// the default). Nil means no overrides.
	Params []float64
}

// AppSpec is the complete static description of a synthetic benchmark.
type AppSpec struct {
	Name    string
	Suite   string // "spec" or "pbbs"
	Structs []StructSpec
	Phases  []PhaseSpec
	// PeriodFrac is the fraction of the run one full phase cycle takes
	// (1.0 = phases run once; 0.2 = the cycle repeats 5 times).
	PeriodFrac float64
	// PhaseJitter randomizes phase instance lengths by ±jitter fraction
	// (refine's irregular phase changes).
	PhaseJitter float64
	// APKI is the raw (L1-level) line-touch rate per kilo-instruction.
	APKI float64
	// Accesses is the default raw line-touch count at scale 1.0.
	Accesses uint64
	// ManualPools groups structure indices into the paper's manual pools
	// (Table 2). Structures absent from every group go to the default
	// pool.
	ManualPools [][]int
	// ManualLOC is the paper-reported lines of code changed (Table 2);
	// zero for apps the paper did not port manually.
	ManualLOC int
	// TracePath marks a trace-sourced app: instead of generating a
	// synthetic stream, the experiments harness replays the recorded
	// .wtrc file at this path (spec files with "source": "trace").
	// Trace-sourced apps have no structures; scale and seed are inert.
	TracePath string
}

// Workload is a built app: structures allocated in a simulated address
// space, ready to generate access streams.
type Workload struct {
	Spec    AppSpec
	Space   *mem.Space
	Structs []StructAlloc
	// Total raw accesses this workload will generate.
	Accesses uint64
}

// StructAlloc records where a structure landed.
type StructAlloc struct {
	Spec  StructSpec
	Base  addr.Addr
	Lines uint64
	CP    mem.Callpoint
}

// Build allocates the app's structures. Each structure allocates from its
// own callpoint (callpoint id = structure index + 1), mirroring the
// paper's observation that semantically different data comes from
// different allocation sites. scale multiplies the access count (not the
// footprint).
func Build(spec AppSpec, scale float64) *Workload {
	sp := mem.NewSpace()
	w := &Workload{Spec: spec, Space: sp}
	for i, st := range spec.Structs {
		cp := mem.Callpoint(i + 1)
		base := sp.Malloc(st.Bytes, mem.DefaultPool, cp)
		w.Structs = append(w.Structs, StructAlloc{
			Spec:  st,
			Base:  base,
			Lines: addr.LinesFor(st.Bytes),
			CP:    cp,
		})
	}
	w.Accesses = uint64(float64(spec.Accesses) * scale)
	if w.Accesses == 0 {
		w.Accesses = spec.Accesses
	}
	return w
}

// gen is the deterministic access-stream generator.
type gen struct {
	w   *Workload
	rng *stats.Rng

	remaining uint64
	gap       uint32

	// Per-structure pattern state.
	pos    []uint64 // sequential/chase positions
	stride []uint64 // chase strides (odd, structure-specific)

	// Phase state.
	phase      int
	phaseLeft  uint64
	phaseLens  []uint64 // accesses per phase instance (before jitter)
	cum        []float64
	curPattern []Pattern
	curParam   []float64
}

// Stream returns a fresh deterministic access stream for the workload.
// Streams with the same seed are identical. Trace-sourced workloads
// (AppSpec.TracePath) have no generator: their stream is empty, and the
// harness replays the recorded LLC trace instead. A synthetic spec
// without structs or phases is a construction error and still panics
// loudly rather than generating an empty (silently wrong) stream.
func (w *Workload) Stream(seed uint64) trace.Stream {
	if w.Spec.TracePath != "" {
		return &trace.SliceStream{}
	}
	g := &gen{
		w:         w,
		rng:       stats.NewRng(seed ^ stats.Hash64(hashName(w.Spec.Name))),
		remaining: w.Accesses,
	}
	g.gap = uint32(1000.0 / w.Spec.APKI)
	if g.gap == 0 {
		g.gap = 1
	}
	n := len(w.Structs)
	g.pos = make([]uint64, n)
	g.stride = make([]uint64, n)
	for i, st := range w.Structs {
		// A large odd stride coprime with the line count gives a fixed
		// pseudo-random full cycle for Chase.
		s := (stats.Hash64(uint64(i)+seed) | 1) % st.Lines
		if s < 2 {
			s = 3
		}
		for gcd(s, st.Lines) != 1 {
			s += 2
			if s >= st.Lines {
				s = 3
			}
		}
		g.stride[i] = s
	}
	// Phase lengths.
	period := w.Spec.PeriodFrac
	if period <= 0 || period > 1 {
		period = 1
	}
	total := float64(w.Accesses) * period
	var sumLen float64
	for _, p := range w.Spec.Phases {
		sumLen += p.Len
	}
	for _, p := range w.Spec.Phases {
		g.phaseLens = append(g.phaseLens, uint64(total*p.Len/sumLen))
	}
	g.curPattern = make([]Pattern, n)
	g.curParam = make([]float64, n)
	g.cum = make([]float64, n)
	g.enterPhase(0)
	return g
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (g *gen) enterPhase(i int) {
	g.phase = i
	ph := g.w.Spec.Phases[i]
	g.phaseLeft = g.phaseLens[i]
	if g.w.Spec.PhaseJitter > 0 {
		j := 1 + g.w.Spec.PhaseJitter*(2*g.rng.Float64()-1)
		g.phaseLeft = uint64(float64(g.phaseLeft) * j)
		if g.phaseLeft == 0 {
			g.phaseLeft = 1
		}
	}
	// Cumulative weights for structure selection.
	sum := 0.0
	for _, w := range ph.Weights {
		sum += w
	}
	acc := 0.0
	for s := range g.w.Structs {
		wgt := 0.0
		if s < len(ph.Weights) {
			wgt = ph.Weights[s]
		}
		acc += wgt / sum
		g.cum[s] = acc
		g.curPattern[s] = g.w.Structs[s].Spec.Pattern
		g.curParam[s] = g.w.Structs[s].Spec.Param
		if ph.Patterns != nil && s < len(ph.Patterns) && ph.Patterns[s] != Inherit {
			g.curPattern[s] = ph.Patterns[s]
		}
		if ph.Params != nil && s < len(ph.Params) && ph.Params[s] != 0 {
			g.curParam[s] = ph.Params[s]
		}
	}
}

// Next implements trace.Stream.
func (g *gen) Next() (trace.Access, bool) {
	if g.remaining == 0 {
		return trace.Access{}, false
	}
	g.remaining--
	if g.phaseLeft == 0 {
		g.enterPhase((g.phase + 1) % len(g.w.Spec.Phases))
	}
	g.phaseLeft--

	// Pick a structure by phase weights.
	u := g.rng.Float64()
	s := 0
	for s < len(g.cum)-1 && u > g.cum[s] {
		s++
	}
	st := &g.w.Structs[s]
	lines := st.Lines
	var off uint64
	switch g.curPattern[s] {
	case Seq:
		off = g.pos[s]
		g.pos[s]++
		if g.pos[s] >= lines {
			g.pos[s] = 0
		}
	case Rand:
		off = g.rng.Uint64n(lines)
	case Zipf:
		off = uint64(g.rng.Zipf(int(lines), g.curParam[s]))
	case Chase:
		g.pos[s] = (g.pos[s] + g.stride[s]) % lines
		off = g.pos[s]
	case WSLoop:
		ws := uint64(float64(lines) * g.curParam[s])
		if ws == 0 {
			ws = 1
		}
		if g.pos[s] >= ws {
			g.pos[s] = 0
		}
		off = g.pos[s]
		g.pos[s]++
	case RandWS:
		ws := uint64(float64(lines) * g.curParam[s])
		if ws == 0 {
			ws = 1
		}
		off = g.rng.Uint64n(ws)
	default:
		off = g.rng.Uint64n(lines)
	}
	line := addr.LineOf(st.Base) + addr.Line(off)
	write := g.rng.Float64() < st.Spec.WriteFrac
	return trace.Access{Line: line, Write: write, Gap: g.gap}, true
}

// CallpointPools maps each structure's callpoint to a pool id according to
// grouping (a list of structure-index groups). Group i maps to pool i+1;
// ungrouped structures map to the default pool. This is how a
// classification (manual or WhirlTool) is applied to a trace.
func (w *Workload) CallpointPools(grouping [][]int) map[mem.Callpoint]mem.PoolID {
	m := make(map[mem.Callpoint]mem.PoolID)
	for gi, group := range grouping {
		for _, si := range group {
			if si < 0 || si >= len(w.Structs) {
				panic(fmt.Sprintf("workloads: bad struct index %d in grouping", si))
			}
			m[w.Structs[si].CP] = mem.PoolID(gi + 1)
		}
	}
	return m
}

// ManualGrouping returns the paper's manual pool classification (Table 2),
// or a single all-structures pool if the app was not manually ported.
func (w *Workload) ManualGrouping() [][]int {
	if len(w.Spec.ManualPools) > 0 {
		return w.Spec.ManualPools
	}
	all := make([]int, len(w.Structs))
	for i := range all {
		all[i] = i
	}
	return [][]int{all}
}

// NumPoolsManual returns the number of manual pools (Table 2).
func (w *Workload) NumPoolsManual() int { return len(w.Spec.ManualPools) }

// PoolFootprints returns the per-structure footprint in bytes.
func (w *Workload) PoolFootprints() []uint64 {
	out := make([]uint64, len(w.Structs))
	for i, s := range w.Structs {
		out[i] = s.Spec.Bytes
	}
	return out
}
