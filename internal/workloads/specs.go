package workloads

import "whirlpool/internal/addr"

// The synthetic suite. Sizes, access splits, and phase behaviour of the
// apps the paper analyzes in detail (dt, mis, lbm, refine, cactus, SA,
// mcf, bzip2) follow the paper's own characterization; the rest are given
// plausible pool structures matching their known behaviour (streaming
// grids for milc/GemsFDTD/libquantum, pointer-heavy heaps for omnetpp/
// xalancbmk, etc.). All are memory-intensive (>5 L2 MPKI), as in App A.

const mb = addr.MB
const kb = addr.KB

func onePhase(weights ...float64) []PhaseSpec {
	return []PhaseSpec{{Len: 1, Weights: weights}}
}

// Specs returns the full single-threaded suite: 15 SPEC-like and 16
// PBBS-like apps (all PBBS but nbody, as in the paper).
func Specs() []AppSpec {
	return []AppSpec{
		// ------------------------- SPEC-like -------------------------
		{
			Name: "bzip2", Suite: "spec",
			Structs: []StructSpec{
				{Name: "arr1", Bytes: 4 * mb, Pattern: Zipf, Param: 0.8, WriteFrac: 0.3},
				{Name: "arr2", Bytes: 4 * mb, Pattern: Rand, WriteFrac: 0.3},
				{Name: "ftab", Bytes: 256 * kb, Pattern: Zipf, Param: 1.1, WriteFrac: 0.5},
				{Name: "tt", Bytes: 2 * mb, Pattern: Seq, WriteFrac: 0.5},
			},
			Phases: onePhase(0.35, 0.30, 0.15, 0.20),
			APKI:   35, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}, {2}, {3}}, ManualLOC: 43,
		},
		{
			Name: "gcc", Suite: "spec",
			Structs: []StructSpec{
				{Name: "rtl", Bytes: 3 * mb, Pattern: Chase, WriteFrac: 0.2},
				{Name: "symtab", Bytes: 1 * mb, Pattern: Zipf, Param: 0.9, WriteFrac: 0.1},
				{Name: "bitmaps", Bytes: 512 * kb, Pattern: Rand, WriteFrac: 0.4},
				{Name: "insns", Bytes: 6 * mb, Pattern: Seq, WriteFrac: 0.2},
			},
			Phases: []PhaseSpec{
				{Len: 0.5, Weights: []float64{0.4, 0.3, 0.2, 0.1}},
				{Len: 0.5, Weights: []float64{0.2, 0.2, 0.1, 0.5}},
			},
			PeriodFrac: 0.25,
			APKI:       30, Accesses: 3_000_000,
		},
		{
			Name: "mcf", Suite: "spec",
			Structs: []StructSpec{
				{Name: "nodes", Bytes: 1536 * kb, Pattern: Zipf, Param: 0.9, WriteFrac: 0.3},
				{Name: "arcs", Bytes: 96 * mb, Pattern: Chase, WriteFrac: 0.1},
			},
			Phases: onePhase(0.55, 0.45),
			APKI:   45, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}}, ManualLOC: 14,
		},
		{
			Name: "milc", Suite: "spec",
			Structs: []StructSpec{
				{Name: "links", Bytes: 96 * mb, Pattern: Seq, WriteFrac: 0.3},
				{Name: "fields", Bytes: 96 * mb, Pattern: Seq, WriteFrac: 0.4},
				{Name: "tmp", Bytes: 1 * mb, Pattern: Rand, WriteFrac: 0.5},
			},
			Phases: onePhase(0.45, 0.45, 0.10),
			APKI:   40, Accesses: 3_000_000,
		},
		{
			Name: "zeusmp", Suite: "spec",
			Structs: []StructSpec{
				{Name: "grid", Bytes: 8 * mb, Pattern: Seq, WriteFrac: 0.4},
				{Name: "stencil", Bytes: 2 * mb, Pattern: WSLoop, Param: 0.9, WriteFrac: 0.2},
			},
			Phases: onePhase(0.6, 0.4),
			APKI:   37, Accesses: 3_000_000,
		},
		{
			Name: "cactus", Suite: "spec",
			Structs: []StructSpec{
				{Name: "pugh", Bytes: 1536 * kb, Pattern: Zipf, Param: 0.7, WriteFrac: 0.2},
				{Name: "grid", Bytes: 128 * mb, Pattern: Seq, WriteFrac: 0.4},
			},
			Phases: onePhase(0.5, 0.5),
			APKI:   37, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}}, ManualLOC: 53,
		},
		{
			Name: "leslie", Suite: "spec",
			Structs: []StructSpec{
				{Name: "flux", Bytes: 6 * mb, Pattern: Seq, WriteFrac: 0.4},
				{Name: "state", Bytes: 4 * mb, Pattern: Rand, WriteFrac: 0.3},
				{Name: "coeffs", Bytes: 1 * mb, Pattern: Zipf, Param: 0.8, WriteFrac: 0.05},
			},
			Phases: []PhaseSpec{
				{Len: 0.7, Weights: []float64{0.4, 0.4, 0.2}},
				{Len: 0.3, Weights: []float64{0.7, 0.1, 0.2}},
			},
			PeriodFrac: 0.5,
			APKI:       35, Accesses: 3_000_000,
		},
		{
			Name: "soplex", Suite: "spec",
			Structs: []StructSpec{
				{Name: "matrix", Bytes: 10 * mb, Pattern: Rand, WriteFrac: 0.1},
				{Name: "vectors", Bytes: 1 * mb, Pattern: Zipf, Param: 0.9, WriteFrac: 0.4},
				{Name: "basis", Bytes: 2 * mb, Pattern: WSLoop, Param: 0.5, WriteFrac: 0.3},
			},
			Phases: []PhaseSpec{
				{Len: 0.6, Weights: []float64{0.5, 0.3, 0.2}},
				{Len: 0.4, Weights: []float64{0.2, 0.4, 0.4}},
			},
			PeriodFrac: 0.3,
			APKI:       32, Accesses: 3_000_000,
		},
		{
			Name: "gems", Suite: "spec",
			Structs: []StructSpec{
				{Name: "efield", Bytes: 96 * mb, Pattern: Seq, WriteFrac: 0.4},
				{Name: "hfield", Bytes: 96 * mb, Pattern: Seq, WriteFrac: 0.4},
				{Name: "coeff", Bytes: 2 * mb, Pattern: WSLoop, Param: 0.8, WriteFrac: 0.05},
			},
			Phases: onePhase(0.4, 0.4, 0.2),
			APKI:   40, Accesses: 3_000_000,
		},
		{
			Name: "libqntm", Suite: "spec",
			Structs: []StructSpec{
				{Name: "qureg", Bytes: 192 * mb, Pattern: Seq, WriteFrac: 0.5},
				{Name: "gates", Bytes: 512 * kb, Pattern: Zipf, Param: 1.0, WriteFrac: 0.1},
			},
			Phases: onePhase(0.85, 0.15),
			APKI:   42, Accesses: 3_000_000,
		},
		{
			// lbm: two grids indistinguishable on average, with markedly
			// different behaviour in alternating timesteps (Fig 6): the
			// source grid is accessed more and reuses well; the
			// destination sees little reuse. Pointers swap each step.
			Name: "lbm", Suite: "spec",
			Structs: []StructSpec{
				{Name: "grid1", Bytes: 12 * mb, Pattern: RandWS, Param: 0.4, WriteFrac: 0.2},
				{Name: "grid2", Bytes: 12 * mb, Pattern: Seq, WriteFrac: 0.8},
			},
			Phases: []PhaseSpec{
				{Len: 0.5, Weights: []float64{0.65, 0.35},
					Patterns: []Pattern{RandWS, Seq}, Params: []float64{0.4, 0}},
				{Len: 0.5, Weights: []float64{0.35, 0.65},
					Patterns: []Pattern{Seq, RandWS}, Params: []float64{0, 0.4}},
			},
			PeriodFrac: 0.4,
			APKI:       42, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}}, ManualLOC: 21,
		},
		{
			Name: "astar", Suite: "spec",
			Structs: []StructSpec{
				{Name: "graph", Bytes: 8 * mb, Pattern: Chase, WriteFrac: 0.05},
				{Name: "open", Bytes: 512 * kb, Pattern: Zipf, Param: 0.9, WriteFrac: 0.5},
				{Name: "closed", Bytes: 2 * mb, Pattern: Rand, WriteFrac: 0.3},
			},
			Phases: onePhase(0.5, 0.3, 0.2),
			APKI:   32, Accesses: 3_000_000,
		},
		{
			// omnetpp: many allocation sites (Fig 17 dendrogram).
			Name: "omnet", Suite: "spec",
			Structs: []StructSpec{
				{Name: "events", Bytes: 2 * mb, Pattern: Rand, WriteFrac: 0.4},
				{Name: "queues", Bytes: 512 * kb, Pattern: Zipf, Param: 1.0, WriteFrac: 0.5},
				{Name: "msgs", Bytes: 4 * mb, Pattern: Chase, WriteFrac: 0.3},
				{Name: "topo", Bytes: 1536 * kb, Pattern: Seq, WriteFrac: 0.05},
				{Name: "stats", Bytes: 256 * kb, Pattern: Zipf, Param: 0.8, WriteFrac: 0.6},
				{Name: "heap", Bytes: 3 * mb, Pattern: Rand, WriteFrac: 0.3},
			},
			Phases: []PhaseSpec{
				{Len: 0.5, Weights: []float64{0.25, 0.2, 0.25, 0.1, 0.1, 0.1}},
				{Len: 0.5, Weights: []float64{0.15, 0.25, 0.15, 0.05, 0.15, 0.25}},
			},
			PeriodFrac: 0.2,
			APKI:       30, Accesses: 3_000_000,
		},
		{
			Name: "sphinx3", Suite: "spec",
			Structs: []StructSpec{
				{Name: "am", Bytes: 8 * mb, Pattern: Zipf, Param: 0.7, WriteFrac: 0.02},
				{Name: "dict", Bytes: 1 * mb, Pattern: Zipf, Param: 1.0, WriteFrac: 0.02},
				{Name: "feat", Bytes: 2 * mb, Pattern: Seq, WriteFrac: 0.5},
			},
			Phases: onePhase(0.6, 0.2, 0.2),
			APKI:   35, Accesses: 3_000_000,
		},
		{
			Name: "xalanc", Suite: "spec",
			Structs: []StructSpec{
				{Name: "dom", Bytes: 6 * mb, Pattern: Chase, WriteFrac: 0.1},
				{Name: "strings", Bytes: 2 * mb, Pattern: Zipf, Param: 0.85, WriteFrac: 0.2},
				{Name: "templates", Bytes: 1 * mb, Pattern: Zipf, Param: 1.0, WriteFrac: 0.02},
				{Name: "out", Bytes: 4 * mb, Pattern: Seq, WriteFrac: 0.9},
			},
			Phases: []PhaseSpec{
				{Len: 0.6, Weights: []float64{0.4, 0.3, 0.2, 0.1}},
				{Len: 0.4, Weights: []float64{0.25, 0.2, 0.1, 0.45}},
			},
			PeriodFrac: 0.35,
			APKI:       32, Accesses: 3_000_000,
		},

		// ------------------------- PBBS-like -------------------------
		{
			Name: "BFS", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "vertices", Bytes: 2 * mb, Pattern: Rand, WriteFrac: 0.3},
				{Name: "edges", Bytes: 80 * mb, Pattern: Seq, WriteFrac: 0.0},
				{Name: "frontier", Bytes: 512 * kb, Pattern: WSLoop, Param: 0.6, WriteFrac: 0.5},
				{Name: "visited", Bytes: 256 * kb, Pattern: Rand, WriteFrac: 0.5},
			},
			Phases: onePhase(0.35, 0.35, 0.15, 0.15),
			APKI:   40, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}, {2}, {3}}, ManualLOC: 16,
		},
		{
			// mis: vertices cache well, edges are streaming (Fig 9).
			// Whirlpool bypasses edges and gives the cache to vertices.
			Name: "MIS", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "vertices", Bytes: 5 * mb, Pattern: Rand, WriteFrac: 0.3},
				{Name: "edges", Bytes: 128 * mb, Pattern: Seq, WriteFrac: 0.0},
				{Name: "flags", Bytes: 256 * kb, Pattern: Rand, WriteFrac: 0.6},
			},
			Phases: onePhase(0.42, 0.50, 0.08),
			APKI:   45, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}, {2}}, ManualLOC: 13,
		},
		{
			Name: "MST", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "unionfind", Bytes: 1 * mb, Pattern: Zipf, Param: 0.9, WriteFrac: 0.4},
				{Name: "tree", Bytes: 2 * mb, Pattern: Seq, WriteFrac: 0.8},
				{Name: "edges", Bytes: 96 * mb, Pattern: Seq, WriteFrac: 0.0},
			},
			Phases: onePhase(0.35, 0.15, 0.5),
			APKI:   42, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}, {2}}, ManualLOC: 11,
		},
		{
			// SA: pools that cache well; Whirlpool retains more of the
			// working set using *more* banks than Jigsaw (Fig 20).
			Name: "SA", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "suffixes", Bytes: 9 * mb, Pattern: Rand, WriteFrac: 0.2},
				{Name: "text", Bytes: 80 * mb, Pattern: Seq, WriteFrac: 0.0},
				{Name: "ranks", Bytes: 1 * mb, Pattern: Zipf, Param: 0.8, WriteFrac: 0.4},
			},
			Phases: onePhase(0.45, 0.35, 0.2),
			APKI:   40, Accesses: 3_000_000,
		},
		{
			Name: "ST", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "unionfind", Bytes: 1536 * kb, Pattern: Zipf, Param: 0.85, WriteFrac: 0.4},
				{Name: "tree", Bytes: 2 * mb, Pattern: Seq, WriteFrac: 0.8},
				{Name: "edges", Bytes: 96 * mb, Pattern: Seq, WriteFrac: 0.0},
			},
			Phases: onePhase(0.4, 0.15, 0.45),
			APKI:   40, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}, {2}}, ManualLOC: 13,
		},
		{
			// dt / delaunay: 6MB working set, three pools with equal
			// access split and 8x intensity spread (Fig 2).
			Name: "delaunay", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "points", Bytes: 512 * kb, Pattern: Rand, WriteFrac: 0.1},
				{Name: "vertices", Bytes: 1536 * kb, Pattern: Rand, WriteFrac: 0.3},
				{Name: "triangles", Bytes: 4 * mb, Pattern: Rand, WriteFrac: 0.3},
			},
			Phases: onePhase(0.34, 0.33, 0.33),
			APKI:   37, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}, {2}}, ManualLOC: 11,
		},
		{
			Name: "dict", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "table", Bytes: 6 * mb, Pattern: Rand, WriteFrac: 0.3},
				{Name: "keys", Bytes: 80 * mb, Pattern: Seq, WriteFrac: 0.0},
				{Name: "meta", Bytes: 256 * kb, Pattern: Zipf, Param: 1.0, WriteFrac: 0.4},
			},
			Phases: onePhase(0.5, 0.4, 0.1),
			APKI:   40, Accesses: 3_000_000,
		},
		{
			Name: "hull", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "points", Bytes: 8 * mb, Pattern: Seq, WriteFrac: 0.05},
				{Name: "hull", Bytes: 512 * kb, Pattern: Zipf, Param: 0.9, WriteFrac: 0.5},
			},
			Phases: onePhase(0.7, 0.3),
			APKI:   37, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}}, ManualLOC: 10,
		},
		{
			Name: "isort", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "input", Bytes: 8 * mb, Pattern: Seq, WriteFrac: 0.2},
				{Name: "buckets", Bytes: 2 * mb, Pattern: Rand, WriteFrac: 0.6},
			},
			Phases: onePhase(0.55, 0.45),
			APKI:   40, Accesses: 3_000_000,
		},
		{
			Name: "matching", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "vertices", Bytes: 2 * mb, Pattern: Rand, WriteFrac: 0.4},
				{Name: "edges", Bytes: 96 * mb, Pattern: Seq, WriteFrac: 0.0},
				{Name: "result", Bytes: 1 * mb, Pattern: Seq, WriteFrac: 0.8},
			},
			Phases: onePhase(0.4, 0.5, 0.1),
			APKI:   42, Accesses: 3_000_000,
			ManualPools: [][]int{{0}, {1}, {2}}, ManualLOC: 13,
		},
		{
			Name: "neighbors", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "points", Bytes: 4 * mb, Pattern: Rand, WriteFrac: 0.05},
				{Name: "tree", Bytes: 6 * mb, Pattern: Chase, WriteFrac: 0.05},
				{Name: "results", Bytes: 2 * mb, Pattern: Seq, WriteFrac: 0.9},
			},
			Phases: onePhase(0.35, 0.45, 0.2),
			APKI:   35, Accesses: 3_000_000,
		},
		{
			Name: "ray", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "triangles", Bytes: 6 * mb, Pattern: Zipf, Param: 0.6, WriteFrac: 0.0},
				{Name: "bvh", Bytes: 2 * mb, Pattern: Zipf, Param: 0.8, WriteFrac: 0.0},
				{Name: "rays", Bytes: 4 * mb, Pattern: Seq, WriteFrac: 0.5},
			},
			Phases: onePhase(0.4, 0.35, 0.25),
			APKI:   32, Accesses: 3_000_000,
		},
		{
			// refine: mostly vertices cache well while triangles+misc
			// stay small; at irregular intervals the pattern inverts
			// for ~100M cycles (Fig 11).
			Name: "refine", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "triangles", Bytes: 3 * mb, Pattern: WSLoop, Param: 0.25, WriteFrac: 0.3},
				{Name: "vertices", Bytes: 5 * mb, Pattern: Rand, WriteFrac: 0.2},
				{Name: "misc", Bytes: 4 * mb, Pattern: RandWS, Param: 0.15, WriteFrac: 0.4},
			},
			Phases: []PhaseSpec{
				{Len: 0.8, Weights: []float64{0.3, 0.5, 0.2}},
				{Len: 0.2, Weights: []float64{0.35, 0.3, 0.35},
					Patterns: []Pattern{WSLoop, Seq, RandWS},
					Params:   []float64{0.95, 0, 0.9}},
			},
			PeriodFrac:  0.25,
			PhaseJitter: 0.5,
			APKI:        37, Accesses: 3_000_000,
			ManualPools: [][]int{{1}, {0}, {2}}, ManualLOC: 8,
		},
		{
			Name: "remDups", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "input", Bytes: 112 * mb, Pattern: Seq, WriteFrac: 0.0},
				{Name: "table", Bytes: 4 * mb, Pattern: Rand, WriteFrac: 0.5},
			},
			Phases: onePhase(0.55, 0.45),
			APKI:   42, Accesses: 3_000_000,
		},
		{
			Name: "setCover", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "sets", Bytes: 96 * mb, Pattern: Seq, WriteFrac: 0.0},
				{Name: "elements", Bytes: 2 * mb, Pattern: Zipf, Param: 0.8, WriteFrac: 0.3},
				{Name: "cover", Bytes: 512 * kb, Pattern: Zipf, Param: 1.0, WriteFrac: 0.6},
			},
			Phases: []PhaseSpec{
				{Len: 0.5, Weights: []float64{0.55, 0.3, 0.15}},
				{Len: 0.5, Weights: []float64{0.3, 0.5, 0.2}},
			},
			PeriodFrac: 0.4,
			APKI:       37, Accesses: 3_000_000,
		},
		{
			Name: "sort", Suite: "pbbs",
			Structs: []StructSpec{
				{Name: "data", Bytes: 12 * mb, Pattern: Seq, WriteFrac: 0.4},
				{Name: "aux", Bytes: 12 * mb, Pattern: Seq, WriteFrac: 0.5},
			},
			Phases: onePhase(0.5, 0.5),
			APKI:   40, Accesses: 3_000_000,
		},
	}
}

// ByName returns the spec with the given name. Runtime-registered specs
// (see Register) shadow built-ins of the same name.
func ByName(name string) (AppSpec, bool) {
	if s, ok := registered(name); ok {
		return s, true
	}
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return AppSpec{}, false
}

// BuiltinNames returns the built-in suite's app names in suite order,
// ignoring the runtime registry — the paper's figure runners use this so
// loaded spec files cannot silently change what a "paper figure" means.
func BuiltinNames() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Names returns all app names: the built-in suite in order, then
// runtime-registered apps (minus any that shadow a built-in, which keep
// their built-in position).
func Names() []string {
	out := BuiltinNames()
	seen := make(map[string]bool, len(out))
	for _, n := range out {
		seen[n] = true
	}
	for _, n := range RegisteredNames() {
		if !seen[n] {
			out = append(out, n)
			seen[n] = true
		}
	}
	return out
}
