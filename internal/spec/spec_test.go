package spec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"whirlpool/internal/workloads"
)

const validSpec = `{
  "version": 1,
  "name": "test-set",
  "apps": [
    {
      "name": "kvtest",
      "structs": [
        {"name": "hot", "bytes": "2MB", "pattern": "zipf", "param": 0.9, "write_frac": 0.3},
        {"name": "log", "bytes": "512KB", "pattern": "seq", "write_frac": 0.9},
        {"name": "raw", "bytes": 131072, "pattern": "rand"}
      ],
      "phases": [
        {"len": 0.6, "weights": [0.6, 0.3, 0.1]},
        {"len": 0.4, "weights": [0.2, 0.6, 0.2], "patterns": ["inherit", "randws", "inherit"], "params": [0, 0.5, 0]}
      ],
      "period_frac": 0.5,
      "manual_pools": [[0], [1, 2]]
    }
  ],
  "mixes": [
    {"name": "duo", "apps": ["kvtest", "delaunay"]}
  ]
}`

func TestParseValid(t *testing.T) {
	f, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	specs := f.AppSpecs()
	if len(specs) != 1 {
		t.Fatalf("got %d apps, want 1", len(specs))
	}
	s := specs[0]
	if s.Name != "kvtest" || s.Suite != DefaultSuite {
		t.Errorf("name/suite = %q/%q", s.Name, s.Suite)
	}
	if s.Accesses != DefaultAccesses || s.APKI != DefaultAPKI {
		t.Errorf("defaults not applied: accesses=%d apki=%g", s.Accesses, s.APKI)
	}
	if s.Structs[0].Bytes != 2*1024*1024 || s.Structs[1].Bytes != 512*1024 || s.Structs[2].Bytes != 131072 {
		t.Errorf("byte sizes wrong: %+v", s.Structs)
	}
	if s.Structs[0].Pattern != workloads.Zipf || s.Structs[2].Pattern != workloads.Rand {
		t.Errorf("patterns wrong: %+v", s.Structs)
	}
	if s.Phases[1].Patterns[1] != workloads.RandWS {
		t.Errorf("phase pattern override wrong: %+v", s.Phases[1])
	}
	if apps, ok := f.MixApps("duo"); !ok || len(apps) != 2 {
		t.Errorf("mix duo not found or wrong: %v %v", apps, ok)
	}
	// The parsed app must build and stream.
	w := workloads.Build(s, 0.01)
	st := w.Stream(1)
	n := 0
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("parsed app generated no accesses")
	}
}

func TestParseDefaultsPhases(t *testing.T) {
	f, err := Parse([]byte(`{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := f.AppSpecs()[0]
	if len(s.Phases) != 1 || len(s.Phases[0].Weights) != 1 || s.Phases[0].Weights[0] != 1 {
		t.Fatalf("default phase wrong: %+v", s.Phases)
	}
}

func TestParseScale(t *testing.T) {
	f, err := Parse([]byte(`{"scale":0.5,"apps":[{"name":"a","accesses":1000,"structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := f.AppSpecs()[0].Accesses; got != 500 {
		t.Fatalf("scaled accesses = %d, want 500", got)
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"bad json", `{`, "unexpected"},
		{"unknown field", `{"apps":[{"name":"a","bytes":1}]}`, "unknown field"},
		{"no apps", `{"apps":[]}`, "no apps"},
		{"empty name", `{"apps":[{"name":"","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`, "name must match"},
		{"bad name", `{"apps":[{"name":"a b","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`, "name must match"},
		{"dup app", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]},{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`, "duplicate app"},
		{"no structs", `{"apps":[{"name":"a","structs":[]}]}`, "at least one struct"},
		{"dup struct", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"},{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`, "duplicate struct"},
		{"tiny struct", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":32,"pattern":"rand"}]}]}`, "at least one cache line"},
		{"bad size", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"4XB","pattern":"rand"}]}]}`, "bad size"},
		{"bad pattern", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"zipff"}]}]}`, "unknown pattern"},
		{"inherit struct", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"inherit"}]}]}`, "unknown pattern"},
		{"zipf no param", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"zipf"}]}]}`, "zipf needs param"},
		{"ws bad param", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"wsloop","param":1.5}]}]}`, "param in (0,1]"},
		{"bad writefrac", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand","write_frac":1.5}]}]}`, "write_frac"},
		{"weights len", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"phases":[{"len":1,"weights":[1,2]}]}]}`, "one entry per struct"},
		{"weights zero", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"phases":[{"len":1,"weights":[0]}]}]}`, "sum to > 0"},
		{"phase len", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"phases":[{"len":0,"weights":[1]}]}]}`, "len must be > 0"},
		{"phase zipf param", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"phases":[{"len":1,"weights":[1],"patterns":["zipf"]}]}]}`, "zipf needs param"},
		{"phase bad pattern", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"phases":[{"len":1,"weights":[1],"patterns":["zipff"]}]}]}`, "unknown pattern"},
		{"phase param no patterns", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"wsloop","param":0.5}],"phases":[{"len":1,"weights":[1],"params":[5]}]}]}`, "param in (0,1]"},
		{"pool index", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"manual_pools":[[1]]}]}`, "out of range"},
		{"pool dup", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}],"manual_pools":[[0],[0]]}]}`, "two pools"},
		{"bad apki", `{"apps":[{"name":"a","apki":-1,"structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`, "apki"},
		{"bad period", `{"apps":[{"name":"a","period_frac":2,"structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`, "period_frac"},
		{"mix unknown app", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["nosuch"]}]}`, "unknown app"},
		{"mix too big", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a","a","a","a","a","a","a","a","a","a","a","a","a","a","a","a","a"]}]}`, "1..16"},
		{"dup mix", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"]},{"name":"m","apps":["a"]}]}`, "duplicate mix"},
		{"bad version", `{"version":9,"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}]}`, "unsupported version"},
		{"pins len", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"pins":[0,1]}]}`, "one core per app"},
		{"pins dup", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]},{"name":"b","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a","b"],"pins":[2,2]}]}`, "two apps to one core"},
		{"pins range", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"pins":[16]}]}`, "out of range"},
		{"pins beyond chip", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"pins":[5],"chip":{"preset":"4core"}}]}`, "out of range"},
		{"chip bad preset", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"chip":{"preset":"32core"}}]}`, "unknown chip preset"},
		{"chip preset plus mesh", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"chip":{"preset":"4core","mesh":[5,5]}}]}`, "cannot combine"},
		{"chip mesh len", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"chip":{"mesh":[5]}}]}`, "[width, height]"},
		{"chip mesh range", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"chip":{"mesh":[1,5]}}]}`, "out of range"},
		{"chip too many cores", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"chip":{"mesh":[3,3],"cores":99}}]}`, "do not fit"},
		{"chip tiny bank", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a"],"chip":{"mesh":[5,5],"bank_kb":16}}]}`, "bank_kb"},
		{"mix overflows chip", `{"apps":[{"name":"a","structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}],"mixes":[{"name":"m","apps":["a","a","a","a","a"],"chip":{"preset":"4core"}}]}`, "1..4"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.in))
			if err == nil {
				t.Fatalf("Parse accepted invalid spec")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestParseMixPinsAndChip(t *testing.T) {
	f, err := Parse([]byte(`{
		"apps": [
			{"name": "a", "structs": [{"name": "x", "bytes": "1MB", "pattern": "rand"}]},
			{"name": "b", "structs": [{"name": "x", "bytes": "1MB", "pattern": "seq"}]}
		],
		"mixes": [
			{"name": "pinned", "apps": ["a", "b"], "pins": [0, 3]},
			{"name": "custom", "apps": ["a", "b"], "pins": [1, 5],
			 "chip": {"mesh": [8, 8], "cores": 6, "bank_kb": 256}},
			{"name": "preset", "apps": ["a"], "chip": {"preset": "16core"}}
		]
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Mixes[0].BuildChip() != nil {
		t.Fatal("mix without chip should resolve nil (default topology)")
	}
	chip := f.Mixes[1].BuildChip()
	if chip == nil || chip.NCores() != 6 || chip.NBanks() != 64 {
		t.Fatalf("custom chip = %+v", chip)
	}
	if got := chip.BankBytes; got != 256*1024 {
		t.Fatalf("bank bytes = %d, want 256KB", got)
	}
	preset := f.Mixes[2].BuildChip()
	if preset == nil || preset.NCores() != 16 || preset.NBanks() != 81 {
		t.Fatalf("preset chip = %+v", preset)
	}
}

// The built-in suite must survive encode → parse → convert exactly:
// spec files are a complete, lossless description of any workload the
// simulator can run.
func TestBuiltinRoundTrip(t *testing.T) {
	data, err := Encode(Builtin())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	f, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse(encoded builtin): %v", err)
	}
	got := f.AppSpecs()
	want := workloads.Specs()
	if len(got) != len(want) {
		t.Fatalf("round-trip count %d != %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("app %s did not round-trip:\n got: %+v\nwant: %+v", want[i].Name, got[i], want[i])
		}
	}
}

func TestByteSizeMarshal(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{96 * 1024 * 1024, `"96MB"`},
		{512 * 1024, `"512KB"`},
		{1536 * 1024, `"1536KB"`},
		{100, `100`},
	}
	for _, c := range cases {
		out, err := json.Marshal(c.in)
		if err != nil {
			t.Fatalf("Marshal(%d): %v", c.in, err)
		}
		if string(out) != c.want {
			t.Errorf("Marshal(%d) = %s, want %s", c.in, out, c.want)
		}
		var back ByteSize
		if err := json.Unmarshal(out, &back); err != nil || back != c.in {
			t.Errorf("Unmarshal(%s) = %d, %v; want %d", out, back, err, c.in)
		}
	}
}

func TestRegisterShadowsAndExtends(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	f, err := Parse([]byte(`{"apps":[
		{"name":"spec_test_new", "structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]},
		{"name":"delaunay", "accesses": 42000, "structs":[{"name":"x","bytes":"1MB","pattern":"rand"}]}
	]}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	names, err := f.Register()
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if len(names) != 2 {
		t.Fatalf("registered %d apps, want 2", len(names))
	}
	if _, ok := workloads.ByName("spec_test_new"); !ok {
		t.Error("new app not resolvable after Register")
	}
	if s, _ := workloads.ByName("delaunay"); s.Accesses != 42000 {
		t.Errorf("registered app should shadow builtin, got accesses=%d", s.Accesses)
	}
	all := workloads.Names()
	count := 0
	for _, n := range all {
		if n == "delaunay" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("delaunay appears %d times in Names, want 1", count)
	}
}

func TestTraceSourceApp(t *testing.T) {
	f, err := Parse([]byte(`{
		"apps": [{"name": "recorded", "source": "trace", "trace": "recorded.wtrc"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	specs := f.AppSpecs()
	if len(specs) != 1 {
		t.Fatalf("specs = %d", len(specs))
	}
	s := specs[0]
	if s.TracePath != "recorded.wtrc" || s.Suite != "trace" || len(s.Structs) != 0 {
		t.Fatalf("trace app spec = %+v", s)
	}
}

func TestTraceSourceValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"missing path", `{"apps":[{"name":"x","source":"trace"}]}`, "trace file path"},
		{"structs forbidden", `{"apps":[{"name":"x","source":"trace","trace":"a.wtrc","structs":[{"name":"s","bytes":64,"pattern":"seq"}]}]}`, "no structs"},
		{"apki forbidden", `{"apps":[{"name":"x","source":"trace","trace":"a.wtrc","apki":30}]}`, "generator parameters"},
		{"bad source", `{"apps":[{"name":"x","source":"magic"}]}`, "unknown source"},
		{"trace without source", `{"apps":[{"name":"x","trace":"a.wtrc","structs":[{"name":"s","bytes":64,"pattern":"seq"}]}]}`, "only valid with source"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.json)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestTraceSourceRelativePathResolution(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	err := os.WriteFile(path, []byte(`{
		"apps": [
			{"name": "rel", "source": "trace", "trace": "traces/a.wtrc"},
			{"name": "abs", "source": "trace", "trace": "/tmp/b.wtrc"}
		]
	}`), 0o666)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.Apps[0].Trace, filepath.Join(dir, "traces/a.wtrc"); got != want {
		t.Errorf("relative path = %q, want %q", got, want)
	}
	if got := f.Apps[1].Trace; got != "/tmp/b.wtrc" {
		t.Errorf("absolute path rewritten to %q", got)
	}
}

func TestTraceSourceRoundTrip(t *testing.T) {
	in := []workloads.AppSpec{{Name: "rec", Suite: "trace", TracePath: "x.wtrc"}}
	f := FromAppSpecs("rt", in)
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	out := back.AppSpecs()
	if len(out) != 1 || !reflect.DeepEqual(out[0], in[0]) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}
