// Package spec parses declarative workload-spec files into the
// workloads.AppSpec values the simulator runs. A spec file is JSON: a
// set of apps (structures, access patterns, phase schedules) plus
// optional multi-app mixes and a file-level scale factor. The format
// round-trips the built-in suite exactly (see Builtin and the tests),
// so the 31 hard-coded apps are just one loadable spec among many.
//
// See docs/workload-specs.md for the schema reference and examples.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"whirlpool/internal/addr"
	"whirlpool/internal/noc"
	"whirlpool/internal/workloads"
)

// File is a parsed workload-spec file.
type File struct {
	// Version is the schema version (currently 1; 0 means 1).
	Version int `json:"version,omitempty"`
	// Name labels the spec set (used in logs only).
	Name string `json:"name,omitempty"`
	// Comment is free-form documentation.
	Comment string `json:"comment,omitempty"`
	// Scale multiplies every app's access count at load time (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Apps are the workload definitions.
	Apps []App `json:"apps"`
	// Mixes name multi-programmed combinations (one app per core). Mix
	// members may be apps from this file or built-in suite apps.
	Mixes []Mix `json:"mixes,omitempty"`
}

// App mirrors workloads.AppSpec with human-friendly encodings (string
// patterns, size suffixes).
type App struct {
	Name string `json:"name"`
	// Source selects how the app's LLC trace is produced: "synthetic"
	// (the default: generated from structs/phases and private-filtered)
	// or "trace" (replayed from a recorded .wtrc file, see Trace).
	Source      string   `json:"source,omitempty"`
	Suite       string   `json:"suite,omitempty"`
	Structs     []Struct `json:"structs,omitempty"`
	Phases      []Phase  `json:"phases,omitempty"`
	PeriodFrac  float64  `json:"period_frac,omitempty"`
	PhaseJitter float64  `json:"phase_jitter,omitempty"`
	APKI        float64  `json:"apki,omitempty"`
	Accesses    uint64   `json:"accesses,omitempty"`
	ManualPools [][]int  `json:"manual_pools,omitempty"`
	ManualLOC   int      `json:"manual_loc,omitempty"`
	// Trace is the .wtrc file for source "trace" (whirltool trace
	// record writes them). Relative paths resolve against the spec
	// file's directory when loaded via Load.
	Trace string `json:"trace,omitempty"`
}

// Struct is one data structure.
type Struct struct {
	Name      string   `json:"name"`
	Bytes     ByteSize `json:"bytes"`
	Pattern   string   `json:"pattern"`
	Param     float64  `json:"param,omitempty"`
	WriteFrac float64  `json:"write_frac,omitempty"`
}

// Phase is one phase of the app's phase schedule.
type Phase struct {
	Len      float64   `json:"len"`
	Weights  []float64 `json:"weights"`
	Patterns []string  `json:"patterns,omitempty"`
	Params   []float64 `json:"params,omitempty"`
}

// Mix is a named multi-programmed combination.
type Mix struct {
	Name string   `json:"name"`
	Apps []string `json:"apps"`
	// Pins places app i on core pins[i] (distinct, within the chip's
	// core count). Omitted: app i runs on core i.
	Pins []int `json:"pins,omitempty"`
	// Chip overrides the topology this mix runs on. Omitted: the
	// 4-core chip when the apps and pins fit, else the 16-core chip.
	Chip *ChipSpec `json:"chip,omitempty"`
}

// ChipSpec describes a chip topology in a spec file: either one of the
// paper's presets or a custom mesh.
type ChipSpec struct {
	// Preset names a paper chip: "4core" (Fig 1) or "16core" (Fig 12).
	// Mutually exclusive with Mesh/Cores.
	Preset string `json:"preset,omitempty"`
	// Mesh is a custom [width, height] bank grid.
	Mesh []int `json:"mesh,omitempty"`
	// Cores attaches this many cores around the mesh border (default 4).
	Cores int `json:"cores,omitempty"`
	// BankKB sizes each LLC bank in KB (default 512).
	BankKB int `json:"bank_kb,omitempty"`
}

// validate checks the chip description without building it. The
// custom-mesh rules live in noc.ValidateCustom, shared with the public
// Chip type.
func (c *ChipSpec) validate() error {
	if kb := uint64(c.BankKB) * addr.KB; c.BankKB < 0 || (kb != 0 && kb < noc.MinBankBytes) {
		return fmt.Errorf("bank_kb %d out of range (want >= %d)", c.BankKB, noc.MinBankBytes/addr.KB)
	}
	if c.Preset != "" {
		if c.Preset != "4core" && c.Preset != "16core" {
			return fmt.Errorf("unknown chip preset %q (valid: 4core, 16core)", c.Preset)
		}
		if len(c.Mesh) != 0 || c.Cores != 0 {
			return fmt.Errorf("chip preset %q cannot combine with mesh/cores", c.Preset)
		}
		return nil
	}
	if len(c.Mesh) != 2 {
		return fmt.Errorf("chip needs either a preset or a [width, height] mesh")
	}
	return noc.ValidateCustom(c.Mesh[0], c.Mesh[1], c.NCores(), uint64(c.BankKB)*addr.KB)
}

// NCores reports the core count the chip description resolves to.
func (c *ChipSpec) NCores() int {
	if c.Preset == "4core" {
		return 4
	}
	if c.Preset == "16core" {
		return 16
	}
	if c.Cores == 0 {
		return 4
	}
	return c.Cores
}

// Build constructs the described chip. Call only after validation.
func (c *ChipSpec) Build() *noc.Chip {
	switch c.Preset {
	case "4core":
		chip := noc.FourCoreChip()
		if c.BankKB > 0 {
			chip.BankBytes = uint64(c.BankKB) * addr.KB
		}
		return chip
	case "16core":
		chip := noc.SixteenCoreChip()
		if c.BankKB > 0 {
			chip.BankBytes = uint64(c.BankKB) * addr.KB
		}
		return chip
	}
	return noc.Custom(c.Mesh[0], c.Mesh[1], c.NCores(), uint64(c.BankKB)*addr.KB)
}

// BuildChip resolves a mix's chip override, or nil for the default
// topology.
func (m *Mix) BuildChip() *noc.Chip {
	if m.Chip == nil {
		return nil
	}
	return m.Chip.Build()
}

// ByteSize is a byte count that unmarshals from either a JSON number or
// a string with a B/KB/MB/GB suffix ("96MB", "512 KB"), and marshals to
// the most compact exact suffix form.
type ByteSize uint64

var sizeRe = regexp.MustCompile(`^([0-9]+(?:\.[0-9]+)?)\s*([KMGkmg]?)[Bb]?$`)

// UnmarshalJSON implements json.Unmarshaler.
func (b *ByteSize) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		m := sizeRe.FindStringSubmatch(strings.TrimSpace(s))
		if m == nil {
			return fmt.Errorf("bad size %q (want e.g. 4194304, \"4MB\", \"512KB\")", s)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			return fmt.Errorf("bad size %q: %v", s, err)
		}
		switch strings.ToUpper(m[2]) {
		case "K":
			v *= addr.KB
		case "M":
			v *= addr.MB
		case "G":
			v *= addr.MB * 1024
		}
		*b = ByteSize(v)
		return nil
	}
	var n uint64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("bad size %s (want a byte count or a \"4MB\"-style string)", data)
	}
	*b = ByteSize(n)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (b ByteSize) MarshalJSON() ([]byte, error) {
	n := uint64(b)
	switch {
	case n >= addr.MB && n%addr.MB == 0:
		return json.Marshal(fmt.Sprintf("%dMB", n/addr.MB))
	case n >= addr.KB && n%addr.KB == 0:
		return json.Marshal(fmt.Sprintf("%dKB", n/addr.KB))
	}
	return json.Marshal(n)
}

// Defaults applied by Parse when a field is omitted.
const (
	DefaultAccesses = 3_000_000
	DefaultAPKI     = 35
	DefaultSuite    = "custom"
)

// nameRe restricts app/mix names so they survive comma-separated CLI
// flags and file paths.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9._+-]+$`)

var patternNames = map[string]workloads.Pattern{
	"inherit": workloads.Inherit,
	"seq":     workloads.Seq,
	"rand":    workloads.Rand,
	"zipf":    workloads.Zipf,
	"chase":   workloads.Chase,
	"wsloop":  workloads.WSLoop,
	"randws":  workloads.RandWS,
}

func parsePattern(s string, allowInherit bool) (workloads.Pattern, error) {
	p, ok := patternNames[s]
	if !ok || (p == workloads.Inherit && !allowInherit) {
		return 0, fmt.Errorf("unknown pattern %q (valid: seq, rand, zipf, chase, wsloop, randws)", s)
	}
	return p, nil
}

// paramOK checks a (pattern, param) pair; shared by struct defaults and
// phase overrides.
func paramOK(p workloads.Pattern, param float64) error {
	switch p {
	case workloads.Zipf:
		if param <= 0 || param > 4 {
			return fmt.Errorf("zipf needs param in (0,4], got %g", param)
		}
	case workloads.WSLoop, workloads.RandWS:
		if param <= 0 || param > 1 {
			return fmt.Errorf("%v needs param in (0,1] (working-set fraction), got %g", p, param)
		}
	}
	// Other patterns ignore param (the generator never reads it).
	return nil
}

// Parse decodes, applies defaults, and validates a spec file. Unknown
// JSON fields are rejected so typos fail loudly.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the top-level object")
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Load reads and parses a spec file from disk. Relative "trace" paths
// in the file resolve against the file's own directory.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	f.resolvePaths(filepath.Dir(path))
	return f, nil
}

// validate applies defaults and checks every constraint, reporting the
// first violation with its JSON path.
func (f *File) validate() error {
	if f.Version != 0 && f.Version != 1 {
		return fmt.Errorf("spec: unsupported version %d (this build understands 1)", f.Version)
	}
	if f.Scale < 0 {
		return fmt.Errorf("spec: scale must be >= 0, got %g", f.Scale)
	}
	if len(f.Apps) == 0 && len(f.Mixes) == 0 {
		return fmt.Errorf("spec: file defines no apps and no mixes")
	}
	appNames := make(map[string]bool, len(f.Apps))
	for i := range f.Apps {
		a := &f.Apps[i]
		at := fmt.Sprintf("apps[%d] (%s)", i, a.Name)
		if err := a.applyDefaultsAndValidate(); err != nil {
			return fmt.Errorf("spec: %s: %v", at, err)
		}
		if appNames[a.Name] {
			return fmt.Errorf("spec: %s: duplicate app name", at)
		}
		appNames[a.Name] = true
	}
	mixNames := make(map[string]bool, len(f.Mixes))
	for i := range f.Mixes {
		m := &f.Mixes[i]
		at := fmt.Sprintf("mixes[%d] (%s)", i, m.Name)
		if !nameRe.MatchString(m.Name) {
			return fmt.Errorf("spec: %s: name must match %s", at, nameRe)
		}
		if mixNames[m.Name] {
			return fmt.Errorf("spec: %s: duplicate mix name", at)
		}
		mixNames[m.Name] = true
		if m.Chip != nil {
			if err := m.Chip.validate(); err != nil {
				return fmt.Errorf("spec: %s: chip: %v", at, err)
			}
		}
		// The core budget: the mix's own chip, or the default choice
		// (4-core when apps and pins fit, else 16-core).
		cores := 16
		if m.Chip != nil {
			cores = m.Chip.NCores()
		}
		if len(m.Apps) < 1 || len(m.Apps) > cores {
			return fmt.Errorf("spec: %s: mixes take 1..%d apps (one per core), got %d", at, cores, len(m.Apps))
		}
		for _, name := range m.Apps {
			if appNames[name] {
				continue
			}
			if _, ok := workloads.ByName(name); !ok {
				return fmt.Errorf("spec: %s: unknown app %q (not in this file or the known suite)", at, name)
			}
		}
		if m.Pins != nil {
			if len(m.Pins) != len(m.Apps) {
				return fmt.Errorf("spec: %s: pins needs one core per app (%d), got %d", at, len(m.Apps), len(m.Pins))
			}
			seen := make(map[int]bool, len(m.Pins))
			for j, p := range m.Pins {
				if p < 0 || p >= cores {
					return fmt.Errorf("spec: %s: pins[%d] = %d out of range [0,%d)", at, j, p, cores)
				}
				if seen[p] {
					return fmt.Errorf("spec: %s: pins[%d] = %d pins two apps to one core", at, j, p)
				}
				seen[p] = true
			}
		}
	}
	return nil
}

func (a *App) applyDefaultsAndValidate() error {
	if !nameRe.MatchString(a.Name) {
		return fmt.Errorf("name must match %s", nameRe)
	}
	switch a.Source {
	case "", "synthetic":
		a.Source = ""
	case "trace":
		return a.validateTraceSource()
	default:
		return fmt.Errorf("unknown source %q (valid: synthetic, trace)", a.Source)
	}
	if a.Trace != "" {
		return fmt.Errorf("trace is only valid with source \"trace\"")
	}
	if a.Suite == "" {
		a.Suite = DefaultSuite
	}
	if a.Accesses == 0 {
		a.Accesses = DefaultAccesses
	}
	if a.APKI == 0 {
		a.APKI = DefaultAPKI
	}
	if a.APKI < 0 || a.APKI > 1000 {
		return fmt.Errorf("apki must be in (0,1000], got %g", a.APKI)
	}
	if a.PeriodFrac < 0 || a.PeriodFrac > 1 {
		return fmt.Errorf("period_frac must be in [0,1], got %g", a.PeriodFrac)
	}
	if a.PhaseJitter < 0 || a.PhaseJitter >= 1 {
		return fmt.Errorf("phase_jitter must be in [0,1), got %g", a.PhaseJitter)
	}
	if len(a.Structs) == 0 {
		return fmt.Errorf("needs at least one struct")
	}
	structNames := make(map[string]bool, len(a.Structs))
	for i, st := range a.Structs {
		at := fmt.Sprintf("structs[%d] (%s)", i, st.Name)
		if st.Name == "" {
			return fmt.Errorf("%s: needs a name", at)
		}
		if structNames[st.Name] {
			return fmt.Errorf("%s: duplicate struct name", at)
		}
		structNames[st.Name] = true
		if st.Bytes < addr.LineBytes {
			return fmt.Errorf("%s: bytes must be at least one cache line (%d), got %d", at, addr.LineBytes, st.Bytes)
		}
		p, err := parsePattern(st.Pattern, false)
		if err != nil {
			return fmt.Errorf("%s: %v", at, err)
		}
		if err := paramOK(p, st.Param); err != nil {
			return fmt.Errorf("%s: %v", at, err)
		}
		if st.WriteFrac < 0 || st.WriteFrac > 1 {
			return fmt.Errorf("%s: write_frac must be in [0,1], got %g", at, st.WriteFrac)
		}
	}
	if len(a.Phases) == 0 {
		w := make([]float64, len(a.Structs))
		for i := range w {
			w[i] = 1
		}
		a.Phases = []Phase{{Len: 1, Weights: w}}
	}
	for i, ph := range a.Phases {
		at := fmt.Sprintf("phases[%d]", i)
		if ph.Len <= 0 {
			return fmt.Errorf("%s: len must be > 0, got %g", at, ph.Len)
		}
		if len(ph.Weights) != len(a.Structs) {
			return fmt.Errorf("%s: weights needs one entry per struct (%d), got %d", at, len(a.Structs), len(ph.Weights))
		}
		sum := 0.0
		for j, w := range ph.Weights {
			if w < 0 {
				return fmt.Errorf("%s: weights[%d] must be >= 0, got %g", at, j, w)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("%s: weights must sum to > 0", at)
		}
		if ph.Patterns != nil && len(ph.Patterns) != len(a.Structs) {
			return fmt.Errorf("%s: patterns needs one entry per struct (%d), got %d", at, len(a.Structs), len(ph.Patterns))
		}
		if ph.Params != nil && len(ph.Params) != len(a.Structs) {
			return fmt.Errorf("%s: params needs one entry per struct (%d), got %d", at, len(a.Structs), len(ph.Params))
		}
		// Validate the effective (pattern, param) pair the generator
		// will use for each struct in this phase: patterns default to
		// the struct's own, and a phase param of 0 keeps the struct
		// default — note the generator applies params even when the
		// phase has no patterns array.
		for j := range a.Structs {
			p, _ := parsePattern(a.Structs[j].Pattern, false)
			if ph.Patterns != nil {
				op, err := parsePattern(ph.Patterns[j], true)
				if err != nil {
					return fmt.Errorf("%s: patterns[%d]: %v", at, j, err)
				}
				if op != workloads.Inherit {
					p = op
				}
			}
			param := a.Structs[j].Param
			if ph.Params != nil && ph.Params[j] != 0 {
				param = ph.Params[j]
			}
			if err := paramOK(p, param); err != nil {
				return fmt.Errorf("%s: structs[%d] (%s) in this phase: %v", at, j, a.Structs[j].Name, err)
			}
		}
	}
	seenIdx := make(map[int]bool)
	for gi, group := range a.ManualPools {
		for _, si := range group {
			if si < 0 || si >= len(a.Structs) {
				return fmt.Errorf("manual_pools[%d]: struct index %d out of range [0,%d)", gi, si, len(a.Structs))
			}
			if seenIdx[si] {
				return fmt.Errorf("manual_pools[%d]: struct index %d appears in two pools", gi, si)
			}
			seenIdx[si] = true
		}
	}
	return nil
}

// validateTraceSource checks a "trace"-sourced app: it takes a .wtrc
// path and nothing that only makes sense for the synthetic generator.
// The file itself is opened at run time, not load time, so specs can
// describe traces recorded later.
func (a *App) validateTraceSource() error {
	if a.Trace == "" {
		return fmt.Errorf("source \"trace\" needs a trace file path (record one with: whirltool trace record)")
	}
	if len(a.Structs) != 0 || len(a.Phases) != 0 || len(a.ManualPools) != 0 {
		return fmt.Errorf("trace-sourced apps take no structs, phases, or manual_pools (the recording fixed them)")
	}
	if a.Accesses != 0 || a.APKI != 0 || a.PeriodFrac != 0 || a.PhaseJitter != 0 || a.ManualLOC != 0 {
		return fmt.Errorf("trace-sourced apps take no generator parameters (accesses, apki, period_frac, phase_jitter, manual_loc)")
	}
	if a.Suite == "" {
		a.Suite = "trace"
	}
	return nil
}

// resolvePaths rebases the file's relative trace paths onto dir (the
// spec file's directory). Load calls it; Parse leaves paths untouched.
func (f *File) resolvePaths(dir string) {
	for i := range f.Apps {
		a := &f.Apps[i]
		if a.Trace != "" && !filepath.IsAbs(a.Trace) {
			a.Trace = filepath.Join(dir, a.Trace)
		}
	}
}

// AppSpecs converts the file's apps into runnable workload specs, with
// the file-level scale factor applied to access counts.
func (f *File) AppSpecs() []workloads.AppSpec {
	scale := f.Scale
	if scale == 0 {
		scale = 1
	}
	out := make([]workloads.AppSpec, len(f.Apps))
	for i, a := range f.Apps {
		out[i] = appToSpec(a, scale)
	}
	return out
}

func appToSpec(a App, scale float64) workloads.AppSpec {
	if a.Source == "trace" {
		return workloads.AppSpec{Name: a.Name, Suite: a.Suite, TracePath: a.Trace}
	}
	s := workloads.AppSpec{
		Name:        a.Name,
		Suite:       a.Suite,
		PeriodFrac:  a.PeriodFrac,
		PhaseJitter: a.PhaseJitter,
		APKI:        a.APKI,
		Accesses:    uint64(float64(a.Accesses) * scale),
		ManualPools: a.ManualPools,
		ManualLOC:   a.ManualLOC,
	}
	for _, st := range a.Structs {
		p, _ := parsePattern(st.Pattern, false)
		s.Structs = append(s.Structs, workloads.StructSpec{
			Name:      st.Name,
			Bytes:     uint64(st.Bytes),
			Pattern:   p,
			Param:     st.Param,
			WriteFrac: st.WriteFrac,
		})
	}
	for _, ph := range a.Phases {
		wp := workloads.PhaseSpec{Len: ph.Len, Weights: ph.Weights, Params: ph.Params}
		if ph.Patterns != nil {
			wp.Patterns = make([]workloads.Pattern, len(ph.Patterns))
			for j, ps := range ph.Patterns {
				wp.Patterns[j], _ = parsePattern(ps, true)
			}
		}
		s.Phases = append(s.Phases, wp)
	}
	return s
}

// MixApps resolves a mix name to its member app list.
func (f *File) MixApps(name string) ([]string, bool) {
	for _, m := range f.Mixes {
		if m.Name == name {
			return m.Apps, true
		}
	}
	return nil, false
}

// Register converts the file's apps and registers them with the
// workloads registry (replacing same-named apps), returning the
// registered names.
func (f *File) Register() ([]string, error) {
	specs := f.AppSpecs()
	if err := workloads.RegisterAll(specs); err != nil {
		return nil, err
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names, nil
}

// FromAppSpecs converts runnable specs back into the file form, the
// inverse of AppSpecs (at scale 1).
func FromAppSpecs(name string, specs []workloads.AppSpec) *File {
	f := &File{Version: 1, Name: name}
	for _, s := range specs {
		if s.TracePath != "" {
			f.Apps = append(f.Apps, App{Name: s.Name, Source: "trace", Suite: s.Suite, Trace: s.TracePath})
			continue
		}
		a := App{
			Name:        s.Name,
			Suite:       s.Suite,
			PeriodFrac:  s.PeriodFrac,
			PhaseJitter: s.PhaseJitter,
			APKI:        s.APKI,
			Accesses:    s.Accesses,
			ManualPools: s.ManualPools,
			ManualLOC:   s.ManualLOC,
		}
		for _, st := range s.Structs {
			a.Structs = append(a.Structs, Struct{
				Name:      st.Name,
				Bytes:     ByteSize(st.Bytes),
				Pattern:   st.Pattern.String(),
				Param:     st.Param,
				WriteFrac: st.WriteFrac,
			})
		}
		for _, ph := range s.Phases {
			p := Phase{Len: ph.Len, Weights: ph.Weights, Params: ph.Params}
			if ph.Patterns != nil {
				p.Patterns = make([]string, len(ph.Patterns))
				for j, pt := range ph.Patterns {
					p.Patterns[j] = pt.String()
				}
			}
			a.Phases = append(a.Phases, p)
		}
		f.Apps = append(f.Apps, a)
	}
	return f
}

// Builtin returns the built-in suite in spec-file form.
func Builtin() *File {
	f := FromAppSpecs("builtin", workloads.Specs())
	f.Comment = "The paper's 31-app synthetic suite, exported by whirlsweep -dump-builtin. Regenerate after editing internal/workloads/specs.go."
	return f
}

// Encode renders a spec file as canonical indented JSON.
func Encode(f *File) ([]byte, error) {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
