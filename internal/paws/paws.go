// Package paws implements partitioned work-stealing (Sec 3.4) and the
// task-parallel workloads of Fig 13.
//
// In conventional work-stealing, tasks land on arbitrary cores and every
// core ends up touching most of the data, so neither private caches nor
// NUCA placement can exploit locality. PaWS partitions the input data
// across cores (via internal/partition for irregular graphs), enqueues
// each task on the core owning its data, and steals from nearby cores
// first. Whirlpool then maps each partition to its own pool, so every
// pool's VC is placed next to the cores that use it.
package paws

import (
	"fmt"

	"whirlpool/internal/addr"
	"whirlpool/internal/graph"
	"whirlpool/internal/mem"
	"whirlpool/internal/noc"
	"whirlpool/internal/partition"
	"whirlpool/internal/stats"
	"whirlpool/internal/trace"
)

// Spec describes one parallel workload.
type Spec struct {
	Name string
	// Regular apps set the per-partition footprints directly; graph apps
	// derive them from the partitioned input graph.
	VertexBytesPerPart uint64
	EdgeBytesPerPart   uint64
	// Graph inputs (UseGraph): RMAT scale/edge-factor. Remote access
	// weights follow the real partition adjacency.
	UseGraph   bool
	GraphScale int
	EdgeFactor int

	Rounds       int
	TasksPerPart int
	UnitsPerTask int
	// TaskSkew > 0 makes task sizes uneven (load imbalance), which is
	// what forces stealing.
	TaskSkew float64

	// Access mix within a task.
	LocalVertexFrac float64 // random over the home partition's vertices
	LocalEdgeFrac   float64 // sequential over the home partition's edges
	// Remainder goes to remote partitions' vertices.
	WriteFrac float64

	// APKI is the line-touch rate per kilo-instruction.
	APKI float64
}

// Specs returns the six parallel apps of Fig 13.
func Specs() []Spec {
	return []Spec{
		{
			Name:               "mergesort",
			VertexBytesPerPart: 1 * addr.MB, // the array chunk
			EdgeBytesPerPart:   1 * addr.MB, // merge buffers
			Rounds:             4, TasksPerPart: 6, UnitsPerTask: 2500,
			TaskSkew:        0.2,
			LocalVertexFrac: 0.55, LocalEdgeFrac: 0.35, WriteFrac: 0.45,
			APKI: 40,
		},
		{
			Name:               "fft",
			VertexBytesPerPart: 1536 * addr.KB,
			EdgeBytesPerPart:   512 * addr.KB, // twiddle tables
			Rounds:             5, TasksPerPart: 5, UnitsPerTask: 2200,
			TaskSkew:        0.15,
			LocalVertexFrac: 0.60, LocalEdgeFrac: 0.25, WriteFrac: 0.5,
			APKI: 42,
		},
		{
			Name:               "delaunay",
			VertexBytesPerPart: 1 * addr.MB,    // points+vertices
			EdgeBytesPerPart:   1536 * addr.KB, // triangles
			Rounds:             3, TasksPerPart: 8, UnitsPerTask: 2200,
			TaskSkew:        0.5,
			LocalVertexFrac: 0.55, LocalEdgeFrac: 0.35, WriteFrac: 0.3,
			APKI: 37,
		},
		{
			Name:     "pagerank",
			UseGraph: true, GraphScale: 15, EdgeFactor: 12,
			Rounds: 4, TasksPerPart: 6, UnitsPerTask: 2200,
			TaskSkew:        0.6,
			LocalVertexFrac: 0.45, LocalEdgeFrac: 0.35, WriteFrac: 0.3,
			APKI: 45,
		},
		{
			Name:     "connectedComponents",
			UseGraph: true, GraphScale: 15, EdgeFactor: 10,
			Rounds: 6, TasksPerPart: 5, UnitsPerTask: 1800,
			TaskSkew:        0.8,
			LocalVertexFrac: 0.50, LocalEdgeFrac: 0.25, WriteFrac: 0.4,
			APKI: 45,
		},
		{
			Name:     "triangleCounting",
			UseGraph: true, GraphScale: 14, EdgeFactor: 16,
			Rounds: 3, TasksPerPart: 6, UnitsPerTask: 2600,
			TaskSkew:        0.7,
			LocalVertexFrac: 0.35, LocalEdgeFrac: 0.50, WriteFrac: 0.05,
			APKI: 42,
		},
	}
}

// SpecByName looks up a parallel app.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Task is one unit of schedulable work.
type Task struct {
	Part  int32
	Round int16
	Units int32
}

// App is a built parallel workload: per-partition pools and data, a task
// list, and remote-access weights.
type App struct {
	Spec   Spec
	NParts int
	Space  *mem.Space

	Pools       []mem.PoolID // per partition
	vertexBase  []addr.Line
	vertexLines []uint64
	edgeBase    []addr.Line
	edgeLines   []uint64

	Tasks []Task
	// remoteW[p][q]: weight of remote accesses from partition p to q
	// (cut-edge counts for graph apps; uniform neighbors otherwise).
	remoteW [][]float64
	// RemoteFrac is the realized remote access fraction (from the cut).
	RemoteFrac float64
	// EdgeCut reports the partitioner's cut (graph apps).
	EdgeCut int
}

// Build allocates the app's data over nParts partitions, one pool each.
func Build(spec Spec, nParts int, seed uint64) *App {
	a := &App{Spec: spec, NParts: nParts, Space: mem.NewSpace()}
	vb := make([]uint64, nParts)
	eb := make([]uint64, nParts)
	a.remoteW = make([][]float64, nParts)
	if spec.UseGraph {
		g := graph.RMAT(spec.GraphScale, spec.EdgeFactor, seed)
		parts := partition.Partition(g, nParts, seed)
		a.EdgeCut = partition.EdgeCut(g, parts)
		sizes := partition.Sizes(parts, nParts)
		// Per-partition footprints: 64B per vertex, 16B per edge slot.
		edgesPer := make([]int, nParts)
		for p := 0; p < nParts; p++ {
			a.remoteW[p] = make([]float64, nParts)
		}
		for v := int32(0); v < int32(g.N); v++ {
			pv := parts[v]
			edgesPer[pv] += g.Degree(v)
			for _, u := range g.Neighbors(v) {
				if parts[u] != pv {
					a.remoteW[pv][parts[u]]++
				}
			}
		}
		totalCross, totalEdges := 0.0, 0.0
		for p := 0; p < nParts; p++ {
			vb[p] = uint64(sizes[p]) * 64
			eb[p] = uint64(edgesPer[p]) * 16
			for q := 0; q < nParts; q++ {
				totalCross += a.remoteW[p][q]
			}
			totalEdges += float64(edgesPer[p])
		}
		if totalEdges > 0 {
			a.RemoteFrac = totalCross / totalEdges
		}
	} else {
		for p := 0; p < nParts; p++ {
			vb[p] = spec.VertexBytesPerPart
			eb[p] = spec.EdgeBytesPerPart
			a.remoteW[p] = make([]float64, nParts)
			// Regular apps exchange with logical neighbors (merge trees,
			// butterfly stages).
			a.remoteW[p][(p+1)%nParts] = 1
			a.remoteW[p][(p+nParts-1)%nParts] = 1
			if x := p ^ 1; x < nParts {
				a.remoteW[p][x] += 2
			}
		}
		a.RemoteFrac = 0.08
	}
	for p := 0; p < nParts; p++ {
		pool := a.Space.PoolCreate(fmt.Sprintf("part%d", p))
		a.Pools = append(a.Pools, pool)
		vbase := a.Space.Malloc(vb[p], pool, mem.NoCallpoint)
		ebase := a.Space.Malloc(eb[p], pool, mem.NoCallpoint)
		a.vertexBase = append(a.vertexBase, addr.LineOf(vbase))
		a.vertexLines = append(a.vertexLines, addr.LinesFor(vb[p]))
		a.edgeBase = append(a.edgeBase, addr.LineOf(ebase))
		a.edgeLines = append(a.edgeLines, addr.LinesFor(eb[p]))
	}
	// Tasks with skewed sizes for load imbalance.
	rng := stats.NewRng(seed ^ 0x9a75)
	for r := 0; r < spec.Rounds; r++ {
		for p := 0; p < nParts; p++ {
			for t := 0; t < spec.TasksPerPart; t++ {
				units := spec.UnitsPerTask
				if spec.TaskSkew > 0 {
					f := 1 + spec.TaskSkew*(2*rng.Float64()-1)*2
					if f < 0.2 {
						f = 0.2
					}
					units = int(float64(units) * f)
				}
				a.Tasks = append(a.Tasks, Task{Part: int32(p), Round: int16(r), Units: int32(units)})
			}
		}
	}
	return a
}

// PoolOfLine maps a line to its partition pool (the page-table lookup
// Whirlpool's classifier performs).
func (a *App) PoolOfLine(l addr.Line) mem.PoolID {
	return a.Space.PoolOfLine(l)
}

// Policy selects the scheduling discipline.
type Policy int

// Scheduling policies.
const (
	// Conventional work-stealing: round-robin spawn, random-victim steals.
	Conventional Policy = iota
	// PaWS: partition-affine enqueue, nearest-neighbor steals.
	PaWS
)

// String names the policy.
func (p Policy) String() string {
	if p == PaWS {
		return "PaWS"
	}
	return "WS"
}

// ScheduleResult carries the generated per-core access streams plus
// affinity accounting.
type ScheduleResult struct {
	Streams [][]trace.Access
	// HomeAccesses / TotalAccesses measure how often a partition's data
	// was touched from its owner core.
	HomeAccesses  uint64
	TotalAccesses uint64
	Steals        int
}

// Run schedules the app's tasks on nCores cores under the given policy
// and emits each core's access stream. Cores advance task-by-task in a
// round-robin interleaving; rounds are barriers.
func Run(a *App, nCores int, policy Policy, mesh *noc.Mesh, seed uint64) *ScheduleResult {
	if a.NParts != nCores {
		panic("paws: partitions must match cores")
	}
	res := &ScheduleResult{Streams: make([][]trace.Access, nCores)}
	rng := stats.NewRng(seed)
	gap := uint32(1000.0 / a.Spec.APKI)
	if gap == 0 {
		gap = 1
	}
	// Per-partition sequential positions persist across tasks (edges are
	// scanned in chunks).
	edgePos := make([]uint64, a.NParts)

	// Steal order per core: nearest cores first (PaWS), by mesh distance.
	stealOrder := make([][]int, nCores)
	for c := 0; c < nCores; c++ {
		order := make([]int, 0, nCores-1)
		for d := 1; d < nCores; d++ {
			order = append(order, (c+d)%nCores)
		}
		if policy == PaWS && mesh != nil {
			// Sort by physical core distance.
			cc := mesh.Cores[c]
			for i := 1; i < len(order); i++ {
				for j := i; j > 0; j-- {
					a1 := noc.Hops(cc, mesh.Cores[order[j-1]])
					a2 := noc.Hops(cc, mesh.Cores[order[j]])
					if a2 < a1 {
						order[j-1], order[j] = order[j], order[j-1]
					} else {
						break
					}
				}
			}
		}
		stealOrder[c] = order
	}

	maxRound := int16(0)
	for _, t := range a.Tasks {
		if t.Round > maxRound {
			maxRound = t.Round
		}
	}
	for round := int16(0); round <= maxRound; round++ {
		queues := make([][]Task, nCores)
		for i, t := range a.Tasks {
			if t.Round != round {
				continue
			}
			var home int
			if policy == PaWS {
				home = int(t.Part)
			} else {
				home = i % nCores
			}
			queues[home] = append(queues[home], t)
		}
		remaining := 0
		for _, q := range queues {
			remaining += len(q)
		}
		// Time-aware scheduling: the core with the least executed work
		// goes next, so cores that drew small tasks drain early and
		// steal from loaded ones — how imbalance drives stealing.
		times := make([]uint64, nCores)
		for remaining > 0 {
			c := 0
			for i := 1; i < nCores; i++ {
				if times[i] < times[c] {
					c = i
				}
			}
			var task Task
			if len(queues[c]) > 0 {
				task = queues[c][0]
				queues[c] = queues[c][1:]
			} else {
				victim := -1
				if policy == PaWS {
					for _, v := range stealOrder[c] {
						if len(queues[v]) > 0 {
							victim = v
							break
						}
					}
				} else {
					// Random victim probing, with an ordered fallback.
					for tries := 0; tries < nCores; tries++ {
						v := rng.Intn(nCores)
						if v != c && len(queues[v]) > 0 {
							victim = v
							break
						}
					}
					if victim < 0 {
						for _, v := range stealOrder[c] {
							if len(queues[v]) > 0 {
								victim = v
								break
							}
						}
					}
				}
				if victim < 0 {
					// Nothing left to steal this round; idle to the max.
					var max uint64
					for _, tm := range times {
						if tm > max {
							max = tm
						}
					}
					times[c] = max + 1
					continue
				}
				n := len(queues[victim])
				task = queues[victim][n-1]
				queues[victim] = queues[victim][:n-1]
				res.Steals++
			}
			remaining--
			times[c] += uint64(task.Units)
			a.execTask(task, c, gap, rng, &edgePos[task.Part], res)
		}
	}
	return res
}

// execTask emits one task's accesses into core c's stream.
func (a *App) execTask(t Task, c int, gap uint32, rng *stats.Rng, edgePos *uint64, res *ScheduleResult) {
	spec := &a.Spec
	p := t.Part
	w := a.remoteW[p]
	var wSum float64
	for _, x := range w {
		wSum += x
	}
	remoteFrac := a.RemoteFrac
	for i := int32(0); i < t.Units; i++ {
		r := rng.Float64()
		var line addr.Line
		switch {
		case r < spec.LocalVertexFrac:
			line = a.vertexBase[p] + addr.Line(rng.Uint64n(a.vertexLines[p]))
		case r < spec.LocalVertexFrac+spec.LocalEdgeFrac:
			*edgePos = (*edgePos + 1) % a.edgeLines[p]
			line = a.edgeBase[p] + addr.Line(*edgePos)
		default:
			// Remote vertex access, weighted by partition adjacency.
			q := p
			if wSum > 0 && rng.Float64() < remoteFrac/(1-spec.LocalVertexFrac-spec.LocalEdgeFrac)*3 {
				x := rng.Float64() * wSum
				for qi, wq := range w {
					x -= wq
					if x <= 0 {
						q = int32(qi)
						break
					}
				}
			}
			line = a.vertexBase[q] + addr.Line(rng.Uint64n(a.vertexLines[q]))
		}
		write := rng.Float64() < spec.WriteFrac
		res.Streams[c] = append(res.Streams[c], trace.Access{Line: line, Write: write, Gap: gap})
		res.TotalAccesses++
		if int32(c) == p {
			res.HomeAccesses++
		}
	}
}
