package paws

import (
	"testing"

	"whirlpool/internal/noc"
)

func TestSpecsWellFormed(t *testing.T) {
	specs := Specs()
	if len(specs) != 6 {
		t.Fatalf("parallel suite has %d apps, want 6", len(specs))
	}
	for _, s := range specs {
		if s.LocalVertexFrac+s.LocalEdgeFrac > 1 {
			t.Fatalf("%s: access mix exceeds 1", s.Name)
		}
		if s.Rounds <= 0 || s.TasksPerPart <= 0 || s.UnitsPerTask <= 0 {
			t.Fatalf("%s: empty task shape", s.Name)
		}
		if s.UseGraph && (s.GraphScale == 0 || s.EdgeFactor == 0) {
			t.Fatalf("%s: graph app without graph params", s.Name)
		}
	}
}

func TestBuildRegularApp(t *testing.T) {
	spec, _ := SpecByName("mergesort")
	a := Build(spec, 16, 1)
	if len(a.Pools) != 16 {
		t.Fatalf("pools = %d", len(a.Pools))
	}
	if len(a.Tasks) != spec.Rounds*16*spec.TasksPerPart {
		t.Fatalf("tasks = %d", len(a.Tasks))
	}
	// Distinct pools per partition; lines resolve to the right pool.
	for p := 0; p < 16; p++ {
		if got := a.PoolOfLine(a.vertexBase[p]); got != a.Pools[p] {
			t.Fatalf("partition %d vertex pool = %d, want %d", p, got, a.Pools[p])
		}
		if got := a.PoolOfLine(a.edgeBase[p]); got != a.Pools[p] {
			t.Fatalf("partition %d edge pool mismatch", p)
		}
	}
}

func TestBuildGraphApp(t *testing.T) {
	spec, _ := SpecByName("pagerank")
	spec.GraphScale = 12 // smaller for test speed
	a := Build(spec, 16, 1)
	if a.EdgeCut == 0 {
		t.Fatal("graph app should report an edge cut")
	}
	if a.RemoteFrac <= 0 || a.RemoteFrac > 0.9 {
		t.Fatalf("remote frac = %v", a.RemoteFrac)
	}
	// Footprints proportional to partition sizes: all nonzero.
	for p := 0; p < 16; p++ {
		if a.vertexLines[p] == 0 || a.edgeLines[p] == 0 {
			t.Fatalf("partition %d has empty data", p)
		}
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	spec, _ := SpecByName("mergesort")
	a := Build(spec, 16, 1)
	mesh := noc.SixteenCoreMesh()
	res := Run(a, 16, Conventional, mesh, 3)
	var want uint64
	for _, task := range a.Tasks {
		want += uint64(task.Units)
	}
	if res.TotalAccesses != want {
		t.Fatalf("accesses = %d, want %d", res.TotalAccesses, want)
	}
	var streamed uint64
	for _, s := range res.Streams {
		streamed += uint64(len(s))
	}
	if streamed != want {
		t.Fatalf("streamed = %d, want %d", streamed, want)
	}
}

// The core PaWS property: partition data is overwhelmingly accessed from
// its owner core, while conventional stealing scatters it.
func TestPaWSAffinity(t *testing.T) {
	spec, _ := SpecByName("delaunay")
	a := Build(spec, 16, 1)
	mesh := noc.SixteenCoreMesh()
	conv := Run(a, 16, Conventional, mesh, 3)
	paws := Run(a, 16, PaWS, mesh, 3)
	convAff := float64(conv.HomeAccesses) / float64(conv.TotalAccesses)
	pawsAff := float64(paws.HomeAccesses) / float64(paws.TotalAccesses)
	if pawsAff < 0.5 {
		t.Fatalf("PaWS affinity %.2f, want >= 0.5", pawsAff)
	}
	if pawsAff < convAff*2 {
		t.Fatalf("PaWS affinity %.2f not clearly above conventional %.2f", pawsAff, convAff)
	}
}

func TestStealingHappens(t *testing.T) {
	// Skewed tasks must force steals even under PaWS.
	spec, _ := SpecByName("connectedComponents")
	spec.GraphScale = 12
	a := Build(spec, 16, 1)
	mesh := noc.SixteenCoreMesh()
	res := Run(a, 16, PaWS, mesh, 3)
	if res.Steals == 0 {
		t.Fatal("no steals under load imbalance")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec, _ := SpecByName("fft")
	a1 := Build(spec, 16, 1)
	a2 := Build(spec, 16, 1)
	mesh := noc.SixteenCoreMesh()
	r1 := Run(a1, 16, PaWS, mesh, 5)
	r2 := Run(a2, 16, PaWS, mesh, 5)
	if r1.TotalAccesses != r2.TotalAccesses || r1.Steals != r2.Steals {
		t.Fatal("schedule not deterministic")
	}
	for c := range r1.Streams {
		if len(r1.Streams[c]) != len(r2.Streams[c]) {
			t.Fatal("streams not deterministic")
		}
	}
}

func TestPartitionsMustMatchCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	spec, _ := SpecByName("mergesort")
	a := Build(spec, 8, 1)
	Run(a, 16, PaWS, noc.SixteenCoreMesh(), 1)
}
