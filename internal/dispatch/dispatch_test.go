package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"whirlpool/internal/experiments"
	"whirlpool/internal/fleet"
	"whirlpool/internal/obs"
)

// logCapture is an io.Writer collecting whole log lines for assertions.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (c *logCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.lines = append(c.lines, strings.TrimRight(string(p), "\n"))
	c.mu.Unlock()
	return len(p), nil
}

func (c *logCapture) all() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines...)
}

func refs(n int) []experiments.CellRef {
	out := make([]experiments.CellRef, n)
	for i := range out {
		out[i] = experiments.CellRef{
			Index: i,
			Cell:  experiments.SweepCell{App: fmt.Sprintf("app%d", i), Scheme: "jigsaw"},
			Key:   fmt.Sprintf("%064d", i),
		}
	}
	return out
}

// bigQuota removes the per-round cap, collapsing dispatch to one round
// per fleet generation — the closest shape to pre-fleet behavior, used
// by tests that only care about failure handling.
func bigQuota(fleet.Member) int { return 1 << 20 }

// fakeWorker speaks just enough of the whirld protocol to be dispatched
// to: POST /v1/cells accepts a shard, the SSE stream fabricates one row
// per cell (cycles = a fingerprint of the worker), then a done event.
// dieAfter >= 0 makes the stream die after that many rows, before the
// done event — the "worker killed mid-shard" failure.
type fakeWorker struct {
	t         *testing.T
	fp        uint64
	dieAfter  int
	mu        sync.Mutex
	jobs      map[string][]experiments.SweepCell
	seq       int
	submitted int
	canceled  int
	// traceparents records the Traceparent header of each shard submit,
	// for propagation assertions.
	traceparents []string
}

func newFakeWorker(t *testing.T, fp uint64, dieAfter int) (*fakeWorker, *httptest.Server) {
	f := &fakeWorker{t: t, fp: fp, dieAfter: dieAfter, jobs: map[string][]experiments.SweepCell{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", f.handleCells)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", f.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.canceled++
		f.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return f, ts
}

func (f *fakeWorker) handleCells(w http.ResponseWriter, r *http.Request) {
	var req CellsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	f.seq++
	f.submitted += len(req.Cells)
	id := fmt.Sprintf("j%d", f.seq)
	f.jobs[id] = req.Cells
	f.traceparents = append(f.traceparents, r.Header.Get("Traceparent"))
	f.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{"id": id})
}

func (f *fakeWorker) handleStream(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	cells := f.jobs[r.PathValue("id")]
	f.mu.Unlock()
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	for i, c := range cells {
		if f.dieAfter >= 0 && i >= f.dieAfter {
			fl.Flush()
			return // connection drops: no done event
		}
		row := experiments.SweepRow{App: c.App, Scheme: c.Scheme, Mix: c.Mix != "", Cycles: f.fp}
		if c.Mix != "" {
			row.App = c.Mix
		}
		data, _ := json.Marshal(row)
		fmt.Fprintf(w, "id: %d\nevent: row\ndata: %s\n\n", i+1, data)
		fl.Flush()
	}
	st := map[string]any{"state": "done", "served": 0, "computed": len(cells)}
	data, _ := json.Marshal(st)
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	fl.Flush()
}

// collectDelivery runs a Pool over the cells and returns which worker
// fingerprint delivered each cell index.
func collectDelivery(t *testing.T, p *Pool, cells []experiments.CellRef) map[int]uint64 {
	t.Helper()
	got, err := collectDeliveryErr(t, p, cells, nil)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	return got
}

func collectDeliveryErr(t *testing.T, p *Pool, cells []experiments.CellRef, onRow func(experiments.CellRef, experiments.SweepRow)) (map[int]uint64, error) {
	t.Helper()
	got := map[int]uint64{}
	var mu sync.Mutex
	err := p.Exec(JobParams{Scale: 0.05})(context.Background(), cells,
		func(ref experiments.CellRef, row experiments.SweepRow) {
			mu.Lock()
			if _, dup := got[ref.Index]; dup {
				t.Errorf("cell %d delivered twice", ref.Index)
			}
			got[ref.Index] = row.Cycles
			mu.Unlock()
			if onRow != nil {
				onRow(ref, row)
			}
		})
	return got, err
}

// Two healthy workers split the grid and deliver every cell exactly
// once; with the same membership, a second job routes identically —
// the determinism the distributed bit-identity smoke rests on.
func TestPoolDispatchesAllCells(t *testing.T) {
	_, ts1 := newFakeWorker(t, 111, -1)
	_, ts2 := newFakeWorker(t, 222, -1)
	cells := refs(20)
	urls := []string{ts1.URL, ts2.URL}
	p1, err := New(urls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got1 := collectDelivery(t, p1, cells)
	if len(got1) != len(cells) {
		t.Fatalf("delivered %d of %d cells", len(got1), len(cells))
	}
	split := map[uint64]int{}
	for _, fp := range got1 {
		split[fp]++
	}
	if split[111] == 0 || split[222] == 0 {
		t.Fatalf("one worker got the whole grid: %v", split)
	}
	for _, ws := range p1.Stats() {
		if ws.Dead || ws.Computed == 0 {
			t.Errorf("healthy fleet stats: %+v", ws)
		}
	}
	// A fresh pool over the same worker list routes every cell to the
	// same worker (member IDs follow registration order, so the
	// assignment is a pure function of the membership and the keys).
	p2, err := New(urls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got2 := collectDelivery(t, p2, cells)
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("cell %d routed to %d then %d with identical membership", i, got1[i], got2[i])
		}
	}
}

// A worker that dies mid-shard is marked dead and its undelivered cells
// re-dispatch to the survivor; nothing is delivered twice, nothing is
// lost.
func TestPoolRedispatchOnWorkerDeath(t *testing.T) {
	_, healthy := newFakeWorker(t, 111, -1)
	dying, dyingTS := newFakeWorker(t, 666, 2) // delivers 2 rows, then drops
	cells := refs(24)
	p, err := New([]string{healthy.URL, dyingTS.URL}, Options{Quota: bigQuota})
	if err != nil {
		t.Fatal(err)
	}
	var capture logCapture
	p.log = obs.NewLogger(&capture, "dispatch")
	got := collectDelivery(t, p, cells)
	logged := capture.all()
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d cells after worker death", len(got), len(cells))
	}
	survived, died := 0, 0
	for _, fp := range got {
		switch fp {
		case 111:
			survived++
		case 666:
			died++
		}
	}
	if died != 2 || survived != len(cells)-2 {
		t.Fatalf("delivery split = %d from dying + %d from survivor, want 2 + %d", died, survived, len(cells)-2)
	}
	var deadStats, aliveStats *experiments.WorkerStats
	stats := p.Stats()
	for i := range stats {
		if stats[i].Worker == dyingTS.URL {
			deadStats = &stats[i]
		} else {
			aliveStats = &stats[i]
		}
	}
	dyingShard := dying.submitted // its one and only shard
	if dyingShard < 3 {
		t.Fatalf("test needs the dying worker to get >2 cells, got %d", dyingShard)
	}
	if deadStats == nil || !deadStats.Dead || deadStats.Redispatched != dyingShard-2 {
		t.Errorf("dead worker stats = %+v, want Dead with %d redispatched", deadStats, dyingShard-2)
	}
	if aliveStats == nil || aliveStats.Dead || aliveStats.Computed == 0 {
		t.Errorf("survivor stats = %+v", aliveStats)
	}
	// The rows the dying worker demonstrably delivered before dropping
	// its stream are still attributed to it.
	if deadStats.Computed != 2 {
		t.Errorf("dead worker computed = %d, want 2 (best-effort attribution)", deadStats.Computed)
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "undelivered") {
		t.Errorf("no worker-failure log line: %v", logged)
	}
	if dying.canceled == 0 {
		t.Errorf("dead worker's orphan job was never canceled")
	}
}

// When every worker dies the executor fails, reporting how much was
// left undelivered — the sweep layer then turns that into error rows.
func TestPoolAllWorkersDead(t *testing.T) {
	_, ts1 := newFakeWorker(t, 1, 0)
	_, ts2 := newFakeWorker(t, 2, 0)
	p, err := New([]string{ts1.URL, ts2.URL}, Options{Quota: bigQuota})
	if err != nil {
		t.Fatal(err)
	}
	execErr := p.Exec(JobParams{})(context.Background(), refs(6),
		func(experiments.CellRef, experiments.SweepRow) {})
	if execErr == nil || !strings.Contains(execErr.Error(), "all 2 workers failed") {
		t.Fatalf("err = %v", execErr)
	}
	for _, ws := range p.Stats() {
		if !ws.Dead {
			t.Errorf("worker %s not marked dead", ws.Worker)
		}
		// Nothing was moved to a survivor (there were none), so nothing
		// counts as redispatched — the cells became error rows instead.
		if ws.Redispatched != 0 {
			t.Errorf("redispatched counted with no survivors to take the cells: %+v", ws)
		}
	}
}

// A worker that registers with the fleet mid-job starts receiving
// cells in the very next round: per-round quotas leave pending cells
// for it to claim, so a sweep started on one worker finishes on two.
func TestPoolMidJobJoin(t *testing.T) {
	_, ts1 := newFakeWorker(t, 111, -1)
	_, ts2 := newFakeWorker(t, 222, -1)
	reg := fleet.NewRegistry(fleet.RegistryOptions{})
	if _, _, err := reg.Register(ts1.URL, 1); err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells := refs(8)
	var joinOnce sync.Once
	got, execErr := collectDeliveryErr(t, p, cells, func(experiments.CellRef, experiments.SweepRow) {
		joinOnce.Do(func() {
			if _, _, err := reg.Register(ts2.URL, 1); err != nil {
				t.Error(err)
			}
		})
	})
	if execErr != nil {
		t.Fatalf("Exec: %v", execErr)
	}
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d", len(got), len(cells))
	}
	joined := 0
	for _, fp := range got {
		if fp == 222 {
			joined++
		}
	}
	// Capacity 1 each → round size ≤ 2 once both are in; with 8 cells
	// and the join after the first delivery, the joiner is guaranteed
	// work (pending exceeds the fleet's per-round appetite until the
	// final rounds).
	if joined == 0 {
		t.Fatal("mid-job joiner received no cells")
	}
	if p.Rebalances() == 0 {
		t.Fatal("membership change mid-job not counted as a rebalance")
	}
}

// A worker whose lease expires mid-shard gets its shard canceled by
// the watcher and the undelivered cells re-dispatch — without waiting
// for a TCP failure, because the worker may still be reachable.
func TestPoolLeaseLossMidShard(t *testing.T) {
	// stall streams one row then parks until the connection dies.
	var stallJobs sync.Map
	var seq int
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var req CellsRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		seq++
		id := fmt.Sprintf("j%d", seq)
		mu.Unlock()
		stallJobs.Store(id, req.Cells)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		v, _ := stallJobs.Load(r.PathValue("id"))
		cells := v.([]experiments.SweepCell)
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		if len(cells) > 0 {
			c := cells[0]
			data, _ := json.Marshal(experiments.SweepRow{App: c.App, Scheme: c.Scheme, Cycles: 666})
			fmt.Fprintf(w, "event: row\ndata: %s\n\n", data)
		}
		fl.Flush()
		<-r.Context().Done()
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	stall := httptest.NewServer(mux)
	t.Cleanup(stall.Close)
	_, healthy := newFakeWorker(t, 111, -1)

	reg := fleet.NewRegistry(fleet.RegistryOptions{})
	stallM, _, err := reg.Register(stall.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Register(healthy.URL, 2); err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(reg, Options{WatchInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cells := refs(8)
	var dropOnce sync.Once
	got, execErr := collectDeliveryErr(t, p, cells, func(_ experiments.CellRef, row experiments.SweepRow) {
		if row.Cycles == 666 {
			// The stalled worker's lease dies out from under its shard.
			dropOnce.Do(func() {
				if err := reg.Deregister(stallM.ID); err != nil {
					t.Error(err)
				}
			})
		}
	})
	if execErr != nil {
		t.Fatalf("Exec: %v", execErr)
	}
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d after lease loss", len(got), len(cells))
	}
	fromStalled := 0
	for _, fp := range got {
		if fp == 666 {
			fromStalled++
		}
	}
	if fromStalled != 1 {
		t.Fatalf("stalled worker delivered %d rows, want exactly its pre-expiry 1", fromStalled)
	}
	var stallStats *experiments.WorkerStats
	stats := p.Stats()
	for i := range stats {
		if stats[i].Worker == stall.URL {
			stallStats = &stats[i]
		}
	}
	if stallStats == nil || !stallStats.Dead || stallStats.Redispatched == 0 {
		t.Fatalf("lease-lost worker stats = %+v, want dead with redispatched cells", stallStats)
	}
}

// Rows the worker reports as canceled (it is shutting down) are never
// delivered; the shard fails over instead.
func TestPoolCanceledRowsRedispatch(t *testing.T) {
	// A worker whose rows all come back canceled, then a canceled done.
	mux := http.NewServeMux()
	var jobs sync.Map
	var mu sync.Mutex
	seq := 0
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var req CellsRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		seq++
		id := fmt.Sprintf("j%d", seq)
		mu.Unlock()
		jobs.Store(id, req.Cells)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		v, _ := jobs.Load(r.PathValue("id"))
		cells := v.([]experiments.SweepCell)
		w.Header().Set("Content-Type", "text/event-stream")
		for _, c := range cells {
			data, _ := json.Marshal(experiments.SweepRow{App: c.App, Scheme: c.Scheme, Err: "canceled"})
			fmt.Fprintf(w, "event: row\ndata: %s\n\n", data)
		}
		data, _ := json.Marshal(map[string]any{"state": "canceled"})
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	shuttingDown := httptest.NewServer(mux)
	t.Cleanup(shuttingDown.Close)
	_, healthy := newFakeWorker(t, 111, -1)

	cells := refs(12)
	p, err := New([]string{shuttingDown.URL, healthy.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectDelivery(t, p, cells)
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d", len(got), len(cells))
	}
	for i, fp := range got {
		if fp != 111 {
			t.Errorf("cell %d delivered by the shutting-down worker (fp %d)", i, fp)
		}
	}
}

// A canceled coordinator context stops dispatch promptly and cancels
// the in-flight worker jobs.
func TestPoolContextCancel(t *testing.T) {
	// A worker that streams one row then stalls forever.
	var stallCanceled sync.WaitGroup
	stallCanceled.Add(1)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": "j1"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	var delOnce sync.Once
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		delOnce.Do(stallCanceled.Done)
		w.WriteHeader(200)
	})
	stall := httptest.NewServer(mux)
	t.Cleanup(stall.Close)

	p, err := New([]string{stall.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	execErr := p.Exec(JobParams{})(ctx, refs(3), func(experiments.CellRef, experiments.SweepRow) {})
	if execErr == nil {
		t.Fatal("canceled dispatch returned nil")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancel took %v", time.Since(start))
	}
	stallCanceled.Wait() // the orphan worker job got its DELETE
}

// A 400 on shard submit is deterministic — every worker would reject
// the same cells — so the shard fails as explicit error rows without
// killing the worker or cascading across the fleet.
func TestPoolShardRejectionDoesNotKillFleet(t *testing.T) {
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{
			"error": map[string]string{"code": "bad_request", "message": `unknown app "ghost"`},
		})
	}))
	t.Cleanup(rejecting.Close)
	_, healthy := newFakeWorker(t, 111, -1)

	cells := refs(16)
	p, err := New([]string{rejecting.URL, healthy.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]experiments.SweepRow{}
	var mu sync.Mutex
	execErr := p.Exec(JobParams{})(context.Background(), cells,
		func(ref experiments.CellRef, row experiments.SweepRow) {
			mu.Lock()
			got[ref.Index] = row
			mu.Unlock()
		})
	if execErr != nil {
		t.Fatalf("rejection cascaded into job failure: %v", execErr)
	}
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d cells", len(got), len(cells))
	}
	var errRows, cleanRows int
	for _, row := range got {
		if row.Err != "" {
			if !strings.Contains(row.Err, "unknown app") {
				t.Fatalf("rejection row lost the worker's message: %+v", row)
			}
			errRows++
		} else {
			cleanRows++
		}
	}
	if errRows == 0 || cleanRows == 0 {
		t.Fatalf("split = %d rejected + %d computed; want both nonzero", errRows, cleanRows)
	}
	for _, ws := range p.Stats() {
		if ws.Dead {
			t.Errorf("worker %s marked dead by a 400 rejection", ws.Worker)
		}
		if ws.Redispatched != 0 {
			t.Errorf("rejected cells were re-dispatched: %+v", ws)
		}
	}
}

// A worker whose recomputed key disagrees with the coordinator's is
// reporting a simulation of different inputs; its rows become error
// rows instead of poisoning the store under the wrong key.
func TestPoolKeyMismatchRejected(t *testing.T) {
	mux := http.NewServeMux()
	var jobs sync.Map
	var mu sync.Mutex
	seq := 0
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var req CellsRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		seq++
		id := fmt.Sprintf("j%d", seq)
		mu.Unlock()
		jobs.Store(id, req.Cells)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		v, _ := jobs.Load(r.PathValue("id"))
		cells := v.([]experiments.SweepCell)
		w.Header().Set("Content-Type", "text/event-stream")
		for _, c := range cells {
			row := experiments.SweepRow{App: c.App, Scheme: c.Scheme, Cycles: 7,
				Key: strings.Repeat("f", 64)} // never the coordinator's key
			data, _ := json.Marshal(row)
			fmt.Fprintf(w, "event: row\ndata: %s\n\n", data)
		}
		data, _ := json.Marshal(map[string]any{"state": "done", "computed": len(cells)})
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	stale := httptest.NewServer(mux)
	t.Cleanup(stale.Close)

	cells := refs(4)
	p, err := New([]string{stale.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]experiments.SweepRow{}
	var mu2 sync.Mutex
	execErr := p.Exec(JobParams{})(context.Background(), cells,
		func(ref experiments.CellRef, row experiments.SweepRow) {
			mu2.Lock()
			got[ref.Index] = row
			mu2.Unlock()
		})
	if execErr != nil {
		t.Fatalf("Exec: %v", execErr)
	}
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d", len(got), len(cells))
	}
	for i, row := range got {
		if !strings.Contains(row.Err, "key mismatch") {
			t.Fatalf("cell %d accepted despite key mismatch: %+v", i, row)
		}
		if row.Cycles != 0 {
			t.Fatalf("cell %d kept the mismatched numbers: %+v", i, row)
		}
	}
}

// A 503 on shard submit is back-pressure, not death: the pool retries
// with (jittered) backoff and the worker keeps its shard.
func TestPoolRetriesSubmit503(t *testing.T) {
	inner, _ := newFakeWorker(t, 111, -1)
	var rejects int
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		rejects++
		reject := rejects <= 2
		mu.Unlock()
		if reject {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{
				"error": map[string]string{"code": "queue_full", "message": "job queue is full"},
			})
			return
		}
		inner.handleCells(w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", inner.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cells := refs(4)
	p, err := New([]string{ts.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectDelivery(t, p, cells)
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d after transient 503s", len(got), len(cells))
	}
	if rejects != 3 { // 2 rejections + the accepted attempt
		t.Fatalf("submit attempts = %d, want 3", rejects)
	}
	for _, ws := range p.Stats() {
		if ws.Dead {
			t.Fatalf("worker marked dead by transient 503s: %+v", ws)
		}
	}
}

// New rejects empty fleets and dedupes URLs.
func TestPoolNew(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("New accepted an empty fleet")
	}
	if _, err := New([]string{"", "  "}, Options{}); err == nil {
		t.Fatal("New accepted blank URLs")
	}
	if _, err := NewPool(nil, Options{}); err == nil {
		t.Fatal("NewPool accepted a nil membership")
	}
	p, err := New([]string{"http://a", "http://a/", "http://b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(p.membership.Snapshot().Members); n != 2 {
		t.Fatalf("dedup left %d workers, want 2", n)
	}
}

// TestDispatchShardSpansOnFailover: with a Tracer wired in, every shard
// of one dispatch — including the re-dispatch after a mid-shard worker
// death — lands in the caller's single trace, the moved cells carry
// redispatched=true markers, and the worker submits all received the
// trace via W3C traceparent.
func TestDispatchShardSpansOnFailover(t *testing.T) {
	healthy, healthyTS := newFakeWorker(t, 111, -1)
	dying, dyingTS := newFakeWorker(t, 666, 2) // 2 rows, then kill -9
	cells := refs(24)
	tracer := obs.New(0)
	p, err := New([]string{healthyTS.URL, dyingTS.URL}, Options{Quota: bigQuota, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}

	root := tracer.Start(obs.SpanContext{}, "job")
	rootSC := root.Context()
	ctx := obs.NewContext(context.Background(), rootSC)
	delivered := 0
	if err := p.Exec(JobParams{Scale: 0.05})(ctx, cells, func(experiments.CellRef, experiments.SweepRow) {
		delivered++
	}); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	root.End()
	if delivered != len(cells) {
		t.Fatalf("delivered %d of %d cells", delivered, len(cells))
	}

	spans := tracer.Collect(rootSC.Trace)
	var shards, redispShards, redispCells int
	for _, sp := range spans {
		switch sp.Name {
		case "dispatch.shard":
			shards++
			if v, ok := sp.Attr("redispatched"); ok {
				if b, _ := v.IsBool(); b {
					redispShards++
				}
			}
			if _, ok := sp.Attr("worker"); !ok {
				t.Errorf("shard span without worker attr: %+v", sp)
			}
		case "dispatch.redispatch":
			redispCells++
			b, ok := sp.Attr("redispatched")
			if bv, _ := b.IsBool(); !ok || !bv {
				t.Errorf("redispatch marker span without redispatched=true: %+v", sp)
			}
			if sp.Parent.IsZero() {
				t.Error("redispatch marker span has no parent shard")
			}
		}
	}
	// Round 1: one shard per worker. Round 2: the dead worker's leftover
	// cells on the survivor. All in the one trace.
	if shards != 3 {
		t.Errorf("dispatch.shard spans = %d, want 3 (2 first-round + 1 failover)", shards)
	}
	if redispShards != 1 {
		t.Errorf("shards marked redispatched = %d, want 1", redispShards)
	}
	wantMoved := dying.submitted - 2 // the dying worker delivered 2 rows
	if redispCells != wantMoved {
		t.Errorf("redispatch marker spans = %d, want %d", redispCells, wantMoved)
	}

	// Every shard submit carried the trace to its worker.
	for _, f := range []*fakeWorker{healthy, dying} {
		f.mu.Lock()
		tps := append([]string(nil), f.traceparents...)
		f.mu.Unlock()
		for _, tp := range tps {
			sc, ok := obs.ParseTraceparent(tp)
			if !ok || sc.Trace != rootSC.Trace {
				t.Errorf("shard submit traceparent = %q, want trace %s", tp, rootSC.Trace)
			}
		}
	}
}
