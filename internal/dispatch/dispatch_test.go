package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"whirlpool/internal/experiments"
)

func refs(n int) []experiments.CellRef {
	out := make([]experiments.CellRef, n)
	for i := range out {
		out[i] = experiments.CellRef{
			Index: i,
			Cell:  experiments.SweepCell{App: fmt.Sprintf("app%d", i), Scheme: "jigsaw"},
			Key:   fmt.Sprintf("%064d", i),
		}
	}
	return out
}

// ShardOf must be a pure function of (cell, n): same inputs, same
// shard, every time, and always in range.
func TestShardOfDeterministic(t *testing.T) {
	cells := refs(64)
	for _, n := range []int{1, 2, 3, 7} {
		counts := make([]int, n)
		for _, c := range cells {
			s := ShardOf(c, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", c.Key, n, s)
			}
			if again := ShardOf(c, n); again != s {
				t.Fatalf("ShardOf not deterministic: %d then %d", s, again)
			}
			counts[s]++
		}
		if n > 1 {
			for s, c := range counts {
				if c == 0 {
					t.Errorf("n=%d: shard %d got no cells of %d (suspicious hash)", n, s, len(cells))
				}
			}
		}
	}
	// Keyless cells fall back to the identity triple, still deterministic.
	c := experiments.CellRef{Cell: experiments.SweepCell{App: "a", Scheme: "s"}}
	if ShardOf(c, 5) != ShardOf(c, 5) {
		t.Fatal("keyless ShardOf not deterministic")
	}
}

// fakeWorker speaks just enough of the whirld protocol to be dispatched
// to: POST /v1/cells accepts a shard, the SSE stream fabricates one row
// per cell (cycles = a fingerprint of the worker), then a done event.
// dieAfter >= 0 makes the stream die after that many rows, before the
// done event — the "worker killed mid-shard" failure.
type fakeWorker struct {
	t         *testing.T
	fp        uint64
	dieAfter  int
	mu        sync.Mutex
	jobs      map[string][]experiments.SweepCell
	seq       int
	submitted int
	canceled  int
}

func newFakeWorker(t *testing.T, fp uint64, dieAfter int) (*fakeWorker, *httptest.Server) {
	f := &fakeWorker{t: t, fp: fp, dieAfter: dieAfter, jobs: map[string][]experiments.SweepCell{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", f.handleCells)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", f.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.canceled++
		f.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return f, ts
}

func (f *fakeWorker) handleCells(w http.ResponseWriter, r *http.Request) {
	var req CellsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	f.seq++
	f.submitted += len(req.Cells)
	id := fmt.Sprintf("j%d", f.seq)
	f.jobs[id] = req.Cells
	f.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{"id": id})
}

func (f *fakeWorker) handleStream(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	cells := f.jobs[r.PathValue("id")]
	f.mu.Unlock()
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	for i, c := range cells {
		if f.dieAfter >= 0 && i >= f.dieAfter {
			fl.Flush()
			return // connection drops: no done event
		}
		row := experiments.SweepRow{App: c.App, Scheme: c.Scheme, Mix: c.Mix != "", Cycles: f.fp}
		if c.Mix != "" {
			row.App = c.Mix
		}
		data, _ := json.Marshal(row)
		fmt.Fprintf(w, "id: %d\nevent: row\ndata: %s\n\n", i+1, data)
		fl.Flush()
	}
	st := map[string]any{"state": "done", "served": 0, "computed": len(cells)}
	data, _ := json.Marshal(st)
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	fl.Flush()
}

// collectDelivery runs a Pool over the cells and returns which worker
// fingerprint delivered each cell index.
func collectDelivery(t *testing.T, p *Pool, cells []experiments.CellRef) map[int]uint64 {
	t.Helper()
	got := map[int]uint64{}
	var mu sync.Mutex
	err := p.Exec(JobParams{Scale: 0.05})(context.Background(), cells,
		func(ref experiments.CellRef, row experiments.SweepRow) {
			mu.Lock()
			if _, dup := got[ref.Index]; dup {
				t.Errorf("cell %d delivered twice", ref.Index)
			}
			got[ref.Index] = row.Cycles
			mu.Unlock()
		})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	return got
}

// Two healthy workers split the grid deterministically and deliver
// every cell exactly once.
func TestPoolDispatchesAllCells(t *testing.T) {
	_, ts1 := newFakeWorker(t, 111, -1)
	_, ts2 := newFakeWorker(t, 222, -1)
	cells := refs(20)
	p, err := New([]string{ts1.URL, ts2.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectDelivery(t, p, cells)
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d cells", len(got), len(cells))
	}
	// Delivery matches the routing function exactly.
	for _, c := range cells {
		wantFP := uint64(111)
		if ShardOf(c, 2) == 1 {
			wantFP = 222
		}
		if got[c.Index] != wantFP {
			t.Errorf("cell %d delivered by %d, routing says %d", c.Index, got[c.Index], wantFP)
		}
	}
	for _, ws := range p.Stats() {
		if ws.Dead || ws.Computed == 0 {
			t.Errorf("healthy fleet stats: %+v", ws)
		}
	}
}

// A worker that dies mid-shard is marked dead and its undelivered cells
// re-dispatch to the survivor; nothing is delivered twice, nothing is
// lost.
func TestPoolRedispatchOnWorkerDeath(t *testing.T) {
	_, healthy := newFakeWorker(t, 111, -1)
	dying, dyingTS := newFakeWorker(t, 666, 2) // delivers 2 rows, then drops
	cells := refs(24)
	p, err := New([]string{healthy.URL, dyingTS.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	p.logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	got := collectDelivery(t, p, cells)
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d cells after worker death", len(got), len(cells))
	}
	var dyingShard int
	for _, c := range cells {
		if ShardOf(c, 2) == 1 {
			dyingShard++
		}
	}
	if dyingShard < 3 {
		t.Fatalf("test needs the dying worker to get >2 cells, got %d", dyingShard)
	}
	survived, died := 0, 0
	for _, fp := range got {
		switch fp {
		case 111:
			survived++
		case 666:
			died++
		}
	}
	if died != 2 || survived != len(cells)-2 {
		t.Fatalf("delivery split = %d from dying + %d from survivor, want 2 + %d", died, survived, len(cells)-2)
	}
	stats := p.Stats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Worker < stats[j].Worker })
	var deadStats, aliveStats *experiments.WorkerStats
	for i := range stats {
		if stats[i].Worker == dyingTS.URL {
			deadStats = &stats[i]
		} else {
			aliveStats = &stats[i]
		}
	}
	if deadStats == nil || !deadStats.Dead || deadStats.Redispatched != dyingShard-2 {
		t.Errorf("dead worker stats = %+v, want Dead with %d redispatched", deadStats, dyingShard-2)
	}
	if aliveStats == nil || aliveStats.Dead || aliveStats.Computed == 0 {
		t.Errorf("survivor stats = %+v", aliveStats)
	}
	// The rows the dying worker demonstrably delivered before dropping
	// its stream are still attributed to it.
	if deadStats.Computed != 2 {
		t.Errorf("dead worker computed = %d, want 2 (best-effort attribution)", deadStats.Computed)
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "undelivered") {
		t.Errorf("no worker-failure log line: %v", logged)
	}
	if dying.canceled == 0 {
		t.Errorf("dead worker's orphan job was never canceled")
	}
}

// When every worker dies the executor fails, reporting how much was
// left undelivered — the sweep layer then turns that into error rows.
func TestPoolAllWorkersDead(t *testing.T) {
	_, ts1 := newFakeWorker(t, 1, 0)
	_, ts2 := newFakeWorker(t, 2, 0)
	p, err := New([]string{ts1.URL, ts2.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	execErr := p.Exec(JobParams{})(context.Background(), refs(6),
		func(experiments.CellRef, experiments.SweepRow) {})
	if execErr == nil || !strings.Contains(execErr.Error(), "all 2 workers failed") {
		t.Fatalf("err = %v", execErr)
	}
	for _, ws := range p.Stats() {
		if !ws.Dead {
			t.Errorf("worker %s not marked dead", ws.Worker)
		}
	}
	// Nothing was moved to a survivor (there were none), so nothing
	// counts as redispatched — the cells became error rows instead.
	for _, ws := range p.Stats() {
		if ws.Redispatched != 0 {
			t.Errorf("redispatched counted with no survivors to take the cells: %+v", ws)
		}
	}
}

// Rows the worker reports as canceled (it is shutting down) are never
// delivered; the shard fails over instead.
func TestPoolCanceledRowsRedispatch(t *testing.T) {
	// A worker whose rows all come back canceled, then a canceled done.
	mux := http.NewServeMux()
	var jobs sync.Map
	seq := 0
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var req CellsRequest
		json.NewDecoder(r.Body).Decode(&req)
		seq++
		id := fmt.Sprintf("j%d", seq)
		jobs.Store(id, req.Cells)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		v, _ := jobs.Load(r.PathValue("id"))
		cells := v.([]experiments.SweepCell)
		w.Header().Set("Content-Type", "text/event-stream")
		for _, c := range cells {
			data, _ := json.Marshal(experiments.SweepRow{App: c.App, Scheme: c.Scheme, Err: "canceled"})
			fmt.Fprintf(w, "event: row\ndata: %s\n\n", data)
		}
		data, _ := json.Marshal(map[string]any{"state": "canceled"})
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	shuttingDown := httptest.NewServer(mux)
	t.Cleanup(shuttingDown.Close)
	_, healthy := newFakeWorker(t, 111, -1)

	cells := refs(12)
	p, err := New([]string{shuttingDown.URL, healthy.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectDelivery(t, p, cells)
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d", len(got), len(cells))
	}
	for i, fp := range got {
		if fp != 111 {
			t.Errorf("cell %d delivered by the shutting-down worker (fp %d)", i, fp)
		}
	}
}

// A canceled coordinator context stops dispatch promptly and cancels
// the in-flight worker jobs.
func TestPoolContextCancel(t *testing.T) {
	// A worker that streams one row then stalls forever.
	var stallCanceled sync.WaitGroup
	stallCanceled.Add(1)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": "j1"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	var delOnce sync.Once
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		delOnce.Do(stallCanceled.Done)
		w.WriteHeader(200)
	})
	stall := httptest.NewServer(mux)
	t.Cleanup(stall.Close)

	p, err := New([]string{stall.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	execErr := p.Exec(JobParams{})(ctx, refs(3), func(experiments.CellRef, experiments.SweepRow) {})
	if execErr == nil {
		t.Fatal("canceled dispatch returned nil")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancel took %v", time.Since(start))
	}
	stallCanceled.Wait() // the orphan worker job got its DELETE
}

// A 400 on shard submit is deterministic — every worker would reject
// the same cells — so the shard fails as explicit error rows without
// killing the worker or cascading across the fleet.
func TestPoolShardRejectionDoesNotKillFleet(t *testing.T) {
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{
			"error": map[string]string{"code": "bad_request", "message": `unknown app "ghost"`},
		})
	}))
	t.Cleanup(rejecting.Close)
	_, healthy := newFakeWorker(t, 111, -1)

	cells := refs(16)
	p, err := New([]string{rejecting.URL, healthy.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]experiments.SweepRow{}
	var mu sync.Mutex
	execErr := p.Exec(JobParams{})(context.Background(), cells,
		func(ref experiments.CellRef, row experiments.SweepRow) {
			mu.Lock()
			got[ref.Index] = row
			mu.Unlock()
		})
	if execErr != nil {
		t.Fatalf("rejection cascaded into job failure: %v", execErr)
	}
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d cells", len(got), len(cells))
	}
	var errRows, cleanRows int
	for _, row := range got {
		if row.Err != "" {
			if !strings.Contains(row.Err, "unknown app") {
				t.Fatalf("rejection row lost the worker's message: %+v", row)
			}
			errRows++
		} else {
			cleanRows++
		}
	}
	if errRows == 0 || cleanRows == 0 {
		t.Fatalf("split = %d rejected + %d computed; want both nonzero", errRows, cleanRows)
	}
	for _, ws := range p.Stats() {
		if ws.Dead {
			t.Errorf("worker %s marked dead by a 400 rejection", ws.Worker)
		}
		if ws.Redispatched != 0 {
			t.Errorf("rejected cells were re-dispatched: %+v", ws)
		}
	}
}

// A worker whose recomputed key disagrees with the coordinator's is
// reporting a simulation of different inputs; its rows become error
// rows instead of poisoning the store under the wrong key.
func TestPoolKeyMismatchRejected(t *testing.T) {
	mux := http.NewServeMux()
	var jobs sync.Map
	seq := 0
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var req CellsRequest
		json.NewDecoder(r.Body).Decode(&req)
		seq++
		id := fmt.Sprintf("j%d", seq)
		jobs.Store(id, req.Cells)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		v, _ := jobs.Load(r.PathValue("id"))
		cells := v.([]experiments.SweepCell)
		w.Header().Set("Content-Type", "text/event-stream")
		for _, c := range cells {
			row := experiments.SweepRow{App: c.App, Scheme: c.Scheme, Cycles: 7,
				Key: strings.Repeat("f", 64)} // never the coordinator's key
			data, _ := json.Marshal(row)
			fmt.Fprintf(w, "event: row\ndata: %s\n\n", data)
		}
		data, _ := json.Marshal(map[string]any{"state": "done", "computed": len(cells)})
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	stale := httptest.NewServer(mux)
	t.Cleanup(stale.Close)

	cells := refs(4)
	p, err := New([]string{stale.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]experiments.SweepRow{}
	var mu sync.Mutex
	execErr := p.Exec(JobParams{})(context.Background(), cells,
		func(ref experiments.CellRef, row experiments.SweepRow) {
			mu.Lock()
			got[ref.Index] = row
			mu.Unlock()
		})
	if execErr != nil {
		t.Fatalf("Exec: %v", execErr)
	}
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d", len(got), len(cells))
	}
	for i, row := range got {
		if !strings.Contains(row.Err, "key mismatch") {
			t.Fatalf("cell %d accepted despite key mismatch: %+v", i, row)
		}
		if row.Cycles != 0 {
			t.Fatalf("cell %d kept the mismatched numbers: %+v", i, row)
		}
	}
}

// A 503 on shard submit is back-pressure, not death: the pool retries
// with backoff and the worker keeps its shard.
func TestPoolRetriesSubmit503(t *testing.T) {
	inner, _ := newFakeWorker(t, 111, -1)
	var rejects int
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		rejects++
		reject := rejects <= 2
		mu.Unlock()
		if reject {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{
				"error": map[string]string{"code": "queue_full", "message": "job queue is full"},
			})
			return
		}
		inner.handleCells(w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", inner.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cells := refs(4)
	p, err := New([]string{ts.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectDelivery(t, p, cells)
	if len(got) != len(cells) {
		t.Fatalf("delivered %d of %d after transient 503s", len(got), len(cells))
	}
	if rejects != 3 { // 2 rejections + the accepted attempt
		t.Fatalf("submit attempts = %d, want 3", rejects)
	}
	for _, ws := range p.Stats() {
		if ws.Dead {
			t.Fatalf("worker marked dead by transient 503s: %+v", ws)
		}
	}
}

// New rejects empty fleets and dedupes URLs.
func TestPoolNew(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("New accepted an empty fleet")
	}
	if _, err := New([]string{"", "  "}, Options{}); err == nil {
		t.Fatal("New accepted blank URLs")
	}
	p, err := New([]string{"http://a", "http://a/", "http://b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.workers) != 2 {
		t.Fatalf("dedup left %d workers, want 2", len(p.workers))
	}
}
