// Package dispatch is the coordinator half of distributed sweep
// execution: it shards a sweep's pending cells across remote worker
// whirld daemons by content-address, collects their rows over the
// existing SSE/HTTP job machinery, and re-dispatches a dead worker's
// unfinished cells to the survivors.
//
// The wire protocol is the worker daemon's POST /v1/cells endpoint (a
// CellsRequest: shared sweep parameters plus one shard's explicit cell
// list) followed by the standard GET /v1/jobs/{id}/stream SSE feed,
// spoken through internal/apiclient — worker failures arrive as typed
// apiclient.Error values, so a deterministic 400 rejection, retryable
// 429/503 back-pressure (with its Retry-After hint), and transport
// death are distinguished by type, not by string matching.
// Rows route back into the coordinator's grid by the cell key each row
// carries (falling back to the app/mix × scheme identity when a key is
// absent); the coordinator — not the worker — owns the grid, the
// progress accounting, and the result-store commit, so a worker can
// disappear at any point without corrupting a job.
package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"whirlpool/internal/apiclient"
	"whirlpool/internal/experiments"
)

// shardRejectedError marks a deterministic worker-side rejection (HTTP
// 400 from /v1/cells): every worker would reject the same shard the
// same way, so re-dispatching is pointless — the cells become explicit
// error rows and the worker stays alive.
type shardRejectedError struct{ msg string }

func (e *shardRejectedError) Error() string { return e.msg }

// errorRowFor fabricates the error row for a cell the fleet could not
// compute.
func errorRowFor(c experiments.CellRef, msg string) experiments.SweepRow {
	name := c.Cell.App
	if c.Cell.Mix != "" {
		name = c.Cell.Mix
	}
	return experiments.SweepRow{App: name, Scheme: c.Cell.Scheme, Mix: c.Cell.Mix != "", Err: msg}
}

// JobParams are the sweep parameters every shard of one job shares;
// they mirror the corresponding POST /v1/sweeps fields.
type JobParams struct {
	// Spec is the job's inline workload-spec file, forwarded verbatim so
	// workers can resolve spec-defined apps and mixes.
	Spec     json.RawMessage `json:"spec,omitempty"`
	Scale    float64         `json:"scale,omitempty"`
	Seed     uint64          `json:"seed,omitempty"`
	Reconfig uint64          `json:"reconfig,omitempty"`
	NoBypass bool            `json:"nobypass,omitempty"`
}

// CellsRequest is the POST /v1/cells body: the shared parameters plus
// the explicit cells of one shard. The worker runs exactly these cells
// as one job (internal/server decodes this same type).
type CellsRequest struct {
	JobParams
	Cells []experiments.SweepCell `json:"cells"`
}

// Pool is one job's view of the worker fleet. Worker failures are
// sticky for the lifetime of the Pool (one coordinator job): a daemon
// that died mid-shard is not retried until the next job builds a fresh
// Pool against the configured URLs.
type Pool struct {
	client *http.Client
	logf   func(format string, args ...any)

	mu      sync.Mutex
	workers []*workerState
}

type workerState struct {
	url  string
	api  *apiclient.Client
	dead bool

	served, computed, errors, redispatched int
}

// Options configure a Pool.
type Options struct {
	// Client overrides the HTTP client (tests, timeouts). The default
	// has no overall timeout: SSE streams live as long as the shard.
	Client *http.Client
	// Logf, if set, receives dispatch progress lines (worker deaths,
	// re-dispatches).
	Logf func(format string, args ...any)
}

// New builds a Pool over the given worker base URLs.
func New(urls []string, opt Options) (*Pool, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("dispatch: no worker URLs")
	}
	p := &Pool{client: opt.Client, logf: opt.Logf}
	if p.client == nil {
		p.client = &http.Client{}
	}
	if p.logf == nil {
		p.logf = func(string, ...any) {}
	}
	seen := map[string]bool{}
	for _, u := range urls {
		if strings.TrimSpace(u) == "" {
			continue
		}
		api, err := apiclient.New(u, p.client)
		if err != nil {
			return nil, fmt.Errorf("dispatch: worker %q: %v", u, err)
		}
		if seen[api.Base()] {
			continue
		}
		seen[api.Base()] = true
		p.workers = append(p.workers, &workerState{url: api.Base(), api: api})
	}
	if len(p.workers) == 0 {
		return nil, fmt.Errorf("dispatch: no worker URLs")
	}
	return p, nil
}

// ShardOf deterministically routes one cell onto [0, n): the cell's
// content-address hashed with FNV-1a, falling back to the identity
// triple for uncacheable cells. Pure function of (cell, n), so every
// coordinator — and every retry — routes the same grid the same way.
func ShardOf(c experiments.CellRef, n int) int {
	s := c.Key
	if s == "" {
		s = c.Cell.App + "|" + c.Cell.Mix + "|" + c.Cell.Scheme
	}
	h := fnv.New64a()
	h.Write([]byte(s))
	return int(h.Sum64() % uint64(n))
}

// Exec returns a RemoteExec bound to one job's parameters, pluggable
// straight into experiments.SweepConfig.Remote.
func (p *Pool) Exec(params JobParams) experiments.RemoteExec {
	return func(ctx context.Context, cells []experiments.CellRef, deliver func(experiments.CellRef, experiments.SweepRow)) error {
		return p.run(ctx, params, cells, deliver)
	}
}

// Stats snapshots the per-worker split for this Pool's job.
func (p *Pool) Stats() []experiments.WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]experiments.WorkerStats, len(p.workers))
	for i, w := range p.workers {
		out[i] = experiments.WorkerStats{
			Worker: w.url, Served: w.served, Computed: w.computed,
			Errors: w.errors, Redispatched: w.redispatched, Dead: w.dead,
		}
	}
	return out
}

func (p *Pool) alive() []*workerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*workerState
	for _, w := range p.workers {
		if !w.dead {
			out = append(out, w)
		}
	}
	return out
}

// run dispatches cells until every one is delivered or no workers
// survive. Each round shards the pending cells across the live workers;
// a failed shard marks its worker dead and feeds its undelivered cells
// into the next round.
func (p *Pool) run(ctx context.Context, params JobParams, cells []experiments.CellRef, deliver func(experiments.CellRef, experiments.SweepRow)) error {
	pending := cells
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		alive := p.alive()
		if len(alive) == 0 {
			return fmt.Errorf("all %d workers failed with %d cells undelivered", len(p.workers), len(pending))
		}
		shards := make([][]experiments.CellRef, len(alive))
		for _, c := range pending {
			s := ShardOf(c, len(alive))
			shards[s] = append(shards[s], c)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var next []experiments.CellRef
		type death struct {
			w *workerState
			n int
		}
		var deaths []death
		for si := range shards {
			if len(shards[si]) == 0 {
				continue
			}
			wg.Add(1)
			go func(w *workerState, shard []experiments.CellRef) {
				defer wg.Done()
				undone, err := p.runShard(ctx, w, params, shard, deliver)
				if err == nil || ctx.Err() != nil {
					return
				}
				var rej *shardRejectedError
				if errors.As(err, &rej) {
					// Deterministic rejection: the cells are poison for
					// every worker, so fail them here instead of killing
					// the fleet one healthy worker at a time.
					p.logf("dispatch: worker %s rejected its shard (%v); failing %d cells",
						w.url, err, len(undone))
					p.mu.Lock()
					w.errors += len(undone)
					p.mu.Unlock()
					for _, c := range undone {
						deliver(c, errorRowFor(c, err.Error()))
					}
					return
				}
				p.mu.Lock()
				w.dead = true
				p.mu.Unlock()
				p.logf("dispatch: worker %s failed (%v) with %d of its %d cells undelivered",
					w.url, err, len(undone), len(shard))
				mu.Lock()
				next = append(next, undone...)
				deaths = append(deaths, death{w, len(undone)})
				mu.Unlock()
			}(alive[si], shards[si])
		}
		wg.Wait()
		// Redispatched counts cells actually moved to survivors: with no
		// one left, the undelivered cells become error rows instead.
		if len(next) > 0 && len(p.alive()) > 0 {
			p.mu.Lock()
			for _, d := range deaths {
				d.w.redispatched += d.n
			}
			p.mu.Unlock()
		}
		// Grid order keeps re-dispatch rounds deterministic.
		sort.Slice(next, func(i, j int) bool { return next[i].Index < next[j].Index })
		pending = next
	}
	return ctx.Err()
}

// runShard runs one worker's shard: submit the cells, follow the job's
// SSE stream, and deliver each row into the coordinator's grid. It
// returns the cells that were not delivered (for re-dispatch) and a
// non-nil error when the worker must be considered dead: connection
// failures, a stream that ends without its done event, or a worker job
// that finished canceled/failed (worker shutdown cancels its jobs).
// Canceled rows are never delivered — those cells belong to a survivor.
func (p *Pool) runShard(ctx context.Context, w *workerState, params JobParams, shard []experiments.CellRef, deliver func(experiments.CellRef, experiments.SweepRow)) (undelivered []experiments.CellRef, err error) {
	// Route returned rows by key first, then by identity triple (keys
	// are recomputed worker-side and can be empty for uncacheable
	// cells; identities are unique within one job's grid).
	byKey := map[string]int{}
	byIdent := map[string]int{}
	taken := make([]bool, len(shard))
	req := CellsRequest{JobParams: params, Cells: make([]experiments.SweepCell, len(shard))}
	for i, c := range shard {
		req.Cells[i] = c.Cell
		if c.Key != "" {
			byKey[c.Key] = i
		}
		byIdent[identOf(c.Cell)] = i
	}
	// take routes a returned row to its shard cell. keyMismatch marks a
	// row whose identity matches but whose recomputed content-address
	// does not — the worker simulated different inputs (a stale .wtrc
	// copy, say), and memoizing its numbers under our key would poison
	// the store.
	take := func(row experiments.SweepRow) (ref experiments.CellRef, ok, keyMismatch bool) {
		ident := identOf(experiments.SweepCell{App: row.App, Scheme: row.Scheme})
		if row.Mix {
			ident = identOf(experiments.SweepCell{Mix: row.App, Scheme: row.Scheme})
		}
		i, found := byKey[row.Key]
		if row.Key == "" || !found {
			i, found = byIdent[ident]
			if found && row.Key != "" && shard[i].Key != "" && row.Key != shard[i].Key {
				keyMismatch = true
			}
		}
		if !found || taken[i] {
			return experiments.CellRef{}, false, false
		}
		taken[i] = true
		return shard[i], true, keyMismatch
	}
	leftover := func() []experiments.CellRef {
		var out []experiments.CellRef
		for i, t := range taken {
			if !t {
				out = append(out, shard[i])
			}
		}
		return out
	}

	id, err := p.submitCells(ctx, w, &req)
	if err != nil {
		return shard, err
	}
	// Whatever happens below, don't leave the worker simulating cells
	// nobody is waiting for (coordinator canceled, stream died).
	defer func() {
		if err != nil || ctx.Err() != nil {
			p.cancelJob(w, id)
		}
	}()

	stream, err := w.api.Stream(ctx, "/v1/jobs/"+id+"/stream")
	if err != nil {
		return shard, fmt.Errorf("stream: %w", err)
	}
	defer stream.Close()

	doneState := ""
	deliveredN := 0
	for doneState == "" {
		ev, nextErr := stream.Next()
		if nextErr != nil {
			// The stream died (or ended cleanly — io.EOF) before the
			// worker's authoritative done-event split; attribute what it
			// demonstrably delivered as computed so the per-worker stats
			// still roughly sum to the grid.
			p.mu.Lock()
			w.computed += deliveredN
			p.mu.Unlock()
			if ctx.Err() != nil {
				return leftover(), nil
			}
			if nextErr == io.EOF {
				nextErr = nil
			}
			return leftover(), fmt.Errorf("stream ended without done event (%v)", nextErr)
		}
		switch ev.Name {
		case "row":
			var row experiments.SweepRow
			if json.Unmarshal(ev.Data, &row) != nil {
				continue
			}
			if row.Err == "canceled" {
				continue // worker shutting down: the cell re-dispatches
			}
			ref, ok, keyMismatch := take(row)
			if !ok {
				continue
			}
			if keyMismatch {
				row = errorRowFor(ref, fmt.Sprintf(
					"key mismatch: worker %s computed %s for a cell addressed %s — differing inputs (stale trace file?); row rejected",
					w.url, row.Key, ref.Key))
			}
			if row.Err != "" {
				p.mu.Lock()
				w.errors++
				p.mu.Unlock()
			}
			deliveredN++
			deliver(ref, row)
		case "done":
			var st struct {
				State    string `json:"state"`
				Served   int    `json:"served"`
				Computed int    `json:"computed"`
			}
			if json.Unmarshal(ev.Data, &st) == nil {
				doneState = st.State
				p.mu.Lock()
				w.served += st.Served
				w.computed += st.Computed
				p.mu.Unlock()
			}
		}
	}
	if doneState != "done" {
		return leftover(), fmt.Errorf("worker job finished %s", doneState)
	}
	return leftover(), nil
}

func identOf(c experiments.SweepCell) string {
	return c.App + "|" + c.Mix + "|" + c.Scheme
}

// submitRetries and submitBackoff bound how long a shard submit rides
// out transient 503s (worker job queue full, ~3s total) before the
// worker is declared dead.
const (
	submitRetries = 5
	submitBackoff = 200 * time.Millisecond
)

// submitCells POSTs one shard and returns the worker's job id. Typed
// back-pressure (apiclient.Error.Temporary: a 429 shed or a 503
// queue-full/drain) is retried with backoff — honoring the server's
// Retry-After hint when it gives one — so a briefly saturated worker
// keeps its shard.
func (p *Pool) submitCells(ctx context.Context, w *workerState, req *CellsRequest) (string, error) {
	for attempt := 0; ; attempt++ {
		id, retryAfter, retryable, err := p.trySubmitCells(ctx, w, req)
		if err == nil {
			return id, nil
		}
		if !retryable || attempt >= submitRetries {
			return "", err
		}
		delay := submitBackoff * time.Duration(attempt+1)
		if retryAfter > 0 {
			delay = retryAfter
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(delay):
		}
	}
}

func (p *Pool) trySubmitCells(ctx context.Context, w *workerState, req *CellsRequest) (id string, retryAfter time.Duration, retryable bool, err error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := w.api.PostJSON(ctx, "/v1/cells", req, &out); err != nil {
		var ae *apiclient.Error
		if !errors.As(err, &ae) {
			// Transport failure (refused, reset, timeout): the worker is
			// unreachable, not back-pressured.
			return "", 0, false, fmt.Errorf("submit cells: %w", err)
		}
		if ae.Status == http.StatusBadRequest {
			// The worker understood the shard and said no — deterministic,
			// so don't kill workers over it (see shardRejectedError).
			return "", 0, false, &shardRejectedError{fmt.Sprintf("submit cells: %v", ae)}
		}
		return "", ae.RetryAfter, ae.Temporary(), fmt.Errorf("submit cells: %w", ae)
	}
	if out.ID == "" {
		return "", 0, false, fmt.Errorf("submit cells: worker accepted the shard but returned no job id")
	}
	return out.ID, 0, false, nil
}

// cancelJob best-effort DELETEs a worker job (the coordinator is gone
// or no longer listening). It deliberately ignores the caller's
// context, which is typically already canceled.
func (p *Pool) cancelJob(w *workerState, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = w.api.Delete(ctx, "/v1/jobs/"+id, nil)
}
