// Package dispatch is the coordinator half of distributed sweep
// execution: it routes a sweep's pending cells across the worker fleet
// by content-address, collects their rows over the existing SSE/HTTP
// job machinery, and re-dispatches cells when a worker dies — or
// hands them to a worker that joined — mid-job.
//
// Workers come from a fleet.Membership (the coordinator's live
// registry of self-registered workers, or a static URL list via New).
// Dispatch proceeds in rounds: each round snapshots the alive set,
// assigns pending cells in grid order to their weighted-rendezvous-
// ranked members (fleet.Rank — capacity- and load-aware, deterministic
// given the snapshot) up to a per-member quota, runs the shards in
// parallel, and re-snapshots for the next round. The quota is what
// makes the fleet elastic mid-job: cells beyond the fleet's current
// per-round appetite wait, so a worker that registers between rounds
// is guaranteed work while earlier arrivals are still busy, and a
// worker whose lease expires loses only its in-flight shard — a
// watcher cancels it and the cells re-enter the next round.
//
// The wire protocol is the worker daemon's POST /v1/cells endpoint (a
// CellsRequest: shared sweep parameters plus one shard's explicit cell
// list) followed by the standard GET /v1/jobs/{id}/stream SSE feed,
// spoken through internal/apiclient — worker failures arrive as typed
// apiclient.Error values, so a deterministic 400 rejection, retryable
// 429/503 back-pressure (with its Retry-After hint), and transport
// death are distinguished by type, not by string matching.
// Rows route back into the coordinator's grid by the cell key each row
// carries (falling back to the app/mix × scheme identity when a key is
// absent); the coordinator — not the worker — owns the grid, the
// progress accounting, and the result-store commit, so a worker can
// disappear at any point without corrupting a job.
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"time"

	"whirlpool/internal/apiclient"
	"whirlpool/internal/experiments"
	"whirlpool/internal/fleet"
	"whirlpool/internal/obs"
)

// shardRejectedError marks a deterministic worker-side rejection (HTTP
// 400 from /v1/cells): every worker would reject the same shard the
// same way, so re-dispatching is pointless — the cells become explicit
// error rows and the worker stays alive.
type shardRejectedError struct{ msg string }

func (e *shardRejectedError) Error() string { return e.msg }

// errLeaseLost is the cancel cause the membership watcher injects into
// a running shard whose worker fell out of the alive set (lease expiry
// or deregistration): unlike a job cancellation, the shard's cells
// must be re-dispatched.
var errLeaseLost = errors.New("worker lease lost")

// errorRowFor fabricates the error row for a cell the fleet could not
// compute.
func errorRowFor(c experiments.CellRef, msg string) experiments.SweepRow {
	name := c.Cell.App
	if c.Cell.Mix != "" {
		name = c.Cell.Mix
	}
	return experiments.SweepRow{App: name, Scheme: c.Cell.Scheme, Mix: c.Cell.Mix != "", Err: msg}
}

// JobParams are the sweep parameters every shard of one job shares;
// they mirror the corresponding POST /v1/sweeps fields.
type JobParams struct {
	// Spec is the job's inline workload-spec file, forwarded verbatim so
	// workers can resolve spec-defined apps and mixes.
	Spec     json.RawMessage `json:"spec,omitempty"`
	Scale    float64         `json:"scale,omitempty"`
	Seed     uint64          `json:"seed,omitempty"`
	Reconfig uint64          `json:"reconfig,omitempty"`
	NoBypass bool            `json:"nobypass,omitempty"`
}

// CellsRequest is the POST /v1/cells body: the shared parameters plus
// the explicit cells of one shard. The worker runs exactly these cells
// as one job (internal/server decodes this same type).
type CellsRequest struct {
	JobParams
	Cells []experiments.SweepCell `json:"cells"`
}

// Options configure a Pool.
type Options struct {
	// Client overrides the HTTP client (tests, timeouts). The default
	// has no overall timeout: SSE streams live as long as the shard.
	Client *http.Client
	// Log, if set, receives dispatch progress events (worker deaths,
	// re-dispatches, rebalances) with worker/cells fields. Nil discards.
	Log *slog.Logger
	// Tracer, if set, records one "dispatch.shard" span per shard POSTed
	// to a worker (parented under the span context riding the dispatch
	// Context, so shards hang off the coordinator's job span), propagates
	// the trace to workers via W3C traceparent on the shard submit, and
	// stitches each finished worker's span tree back in by fetching its
	// GET /v1/jobs/{id}/trace. Nil disables tracing.
	Tracer *obs.Tracer
	// Quota bounds how many cells one member is assigned per round;
	// nil means the member's effective capacity (its -parallel slots).
	// Small quotas mean more rounds and therefore more chances for
	// joiners to pick up work mid-job.
	Quota func(fleet.Member) int
	// WatchInterval is how often a running round re-checks membership
	// for mid-shard lease expiry; 0 means 250ms.
	WatchInterval time.Duration
}

// Pool is one job's view of the worker fleet. Worker deaths are sticky
// per incarnation for the lifetime of the Pool (one coordinator job):
// a worker that died mid-shard is not retried until it re-registers
// under a new epoch — or, for static members, until the next job
// builds a fresh Pool.
type Pool struct {
	membership fleet.Membership
	client     *http.Client
	log        *slog.Logger
	tracer     *obs.Tracer
	quota      func(fleet.Member) int
	watchEvery time.Duration

	mu         sync.Mutex
	apis       map[string]*apiclient.Client
	stats      map[string]*workerStats
	order      []string        // first-seen URL order, for Stats
	deadKeys   map[string]bool // Member.Key() → died this job
	rebalances int
	// redisp marks grid indices of cells that came back from a dead
	// worker: their next shard span carries redispatched=true.
	redisp map[int]bool
}

type workerStats struct {
	served, computed, errors, redispatched int
	dead                                   bool
}

// NewPool builds a Pool routing over a live membership: each dispatch
// round snapshots it, so workers joining or dying mid-job change the
// very next round's assignment.
func NewPool(m fleet.Membership, opt Options) (*Pool, error) {
	if m == nil {
		return nil, fmt.Errorf("dispatch: nil membership")
	}
	p := &Pool{
		membership: m,
		client:     opt.Client,
		log:        opt.Log,
		tracer:     opt.Tracer,
		quota:      opt.Quota,
		watchEvery: opt.WatchInterval,
		apis:       map[string]*apiclient.Client{},
		stats:      map[string]*workerStats{},
		deadKeys:   map[string]bool{},
		redisp:     map[int]bool{},
	}
	if p.client == nil {
		p.client = &http.Client{}
	}
	if p.log == nil {
		p.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if p.quota == nil {
		p.quota = func(m fleet.Member) int { return m.EffectiveCapacity() }
	}
	if p.watchEvery <= 0 {
		p.watchEvery = 250 * time.Millisecond
	}
	return p, nil
}

// New builds a Pool over a fixed worker URL list (the -workers
// back-compat path): membership is a static snapshot, so only the
// per-job death tracking applies.
func New(urls []string, opt Options) (*Pool, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("dispatch: no worker URLs")
	}
	m, err := fleet.Static(urls, 0)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %v", err)
	}
	return NewPool(m, opt)
}

// Exec returns a RemoteExec bound to one job's parameters, pluggable
// straight into experiments.SweepConfig.Remote.
func (p *Pool) Exec(params JobParams) experiments.RemoteExec {
	return func(ctx context.Context, cells []experiments.CellRef, deliver func(experiments.CellRef, experiments.SweepRow)) error {
		return p.run(ctx, params, cells, deliver)
	}
}

// Stats snapshots the per-worker split for this Pool's job, in
// first-contact order.
func (p *Pool) Stats() []experiments.WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]experiments.WorkerStats, 0, len(p.order))
	for _, url := range p.order {
		w := p.stats[url]
		out = append(out, experiments.WorkerStats{
			Worker: url, Served: w.served, Computed: w.computed,
			Errors: w.errors, Redispatched: w.redispatched, Dead: w.dead,
		})
	}
	return out
}

// Rebalances counts the rounds that ran against a changed membership
// (a join, death, or departure between rounds re-routed the pending
// cells).
func (p *Pool) Rebalances() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rebalances
}

// statsForLocked returns the per-URL tally, creating it on first
// contact. Callers hold p.mu.
func (p *Pool) statsForLocked(url string) *workerStats {
	w := p.stats[url]
	if w == nil {
		w = &workerStats{}
		p.stats[url] = w
		p.order = append(p.order, url)
	}
	return w
}

func (p *Pool) apiFor(m fleet.Member) (*apiclient.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if api := p.apis[m.URL]; api != nil {
		return api, nil
	}
	api, err := apiclient.New(m.URL, p.client)
	if err != nil {
		return nil, fmt.Errorf("dispatch: worker %q: %v", m.URL, err)
	}
	p.apis[m.URL] = api
	return api, nil
}

// routeKey is the rendezvous key for one cell: its content-address,
// falling back to the identity triple for uncacheable cells.
func routeKey(c experiments.CellRef) string {
	if c.Key != "" {
		return c.Key
	}
	return identOf(c.Cell)
}

// shardAssign is one member's work for one round.
type shardAssign struct {
	member fleet.Member
	cells  []experiments.CellRef
}

// assignRound routes pending cells (in grid order) onto the alive
// members by weighted rendezvous rank, capping each member at its
// round quota. Cells that find every ranked member full wait for the
// next round — that deferral is what guarantees a mid-job joiner gets
// cells. Deterministic given (alive, pending).
func (p *Pool) assignRound(alive []fleet.Member, pending []experiments.CellRef) (shards []shardAssign, deferred []experiments.CellRef) {
	snap := fleet.Snapshot{Members: alive}
	byID := map[string]int{} // member ID → index in shards
	for _, c := range pending {
		placed := false
		for _, m := range fleet.Rank(snap, routeKey(c)) {
			q := p.quota(m)
			if q < 1 {
				q = 1
			}
			i, ok := byID[m.ID]
			if !ok {
				i = len(shards)
				byID[m.ID] = i
				shards = append(shards, shardAssign{member: m})
			}
			if len(shards[i].cells) >= q {
				continue
			}
			shards[i].cells = append(shards[i].cells, c)
			placed = true
			break
		}
		if !placed {
			deferred = append(deferred, c)
		}
	}
	out := shards[:0]
	for _, s := range shards {
		if len(s.cells) > 0 {
			out = append(out, s)
		}
	}
	return out, deferred
}

// run dispatches cells in rounds until every one is delivered or no
// workers survive. Each round snapshots the membership, assigns the
// pending cells up to per-member quotas, and runs the shards in
// parallel under a lease watcher; a failed shard marks its worker
// incarnation dead and feeds its undelivered cells — plus any cells
// deferred past the round's quotas — into the next round.
func (p *Pool) run(ctx context.Context, params JobParams, cells []experiments.CellRef, deliver func(experiments.CellRef, experiments.SweepRow)) error {
	pending := cells
	var lastVer uint64
	ran := false
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		snap := p.membership.Snapshot()
		var alive []fleet.Member
		p.mu.Lock()
		for _, m := range snap.Members {
			if !p.deadKeys[m.Key()] {
				alive = append(alive, m)
				p.statsForLocked(m.URL).dead = false
			}
		}
		total := len(p.order)
		p.mu.Unlock()
		if len(alive) == 0 {
			return fmt.Errorf("all %d workers failed with %d cells undelivered", total, len(pending))
		}
		if ran && snap.Version != lastVer {
			p.mu.Lock()
			p.rebalances++
			p.mu.Unlock()
			p.log.Info("dispatch: membership changed; rebalancing",
				"cells", len(pending), "workers", len(alive))
		}
		ran, lastVer = true, snap.Version

		shards, deferred := p.assignRound(alive, pending)
		next := p.runRound(ctx, params, shards, deliver)
		if err := ctx.Err(); err != nil {
			return err
		}
		// Redispatched counts cells actually moved to survivors: with no
		// one left, the undelivered cells become error rows instead.
		next = append(next, deferred...)
		sort.Slice(next, func(i, j int) bool { return next[i].Index < next[j].Index })
		pending = next
	}
	return ctx.Err()
}

// runRound executes one round's shards in parallel, watching
// membership for mid-shard lease expiry, and returns the cells that
// must re-dispatch (from workers that died this round).
func (p *Pool) runRound(ctx context.Context, params JobParams, shards []shardAssign, deliver func(experiments.CellRef, experiments.SweepRow)) []experiments.CellRef {
	type running struct {
		member fleet.Member
		cancel context.CancelCauseFunc
	}
	live := make([]running, len(shards))
	ctxs := make([]context.Context, len(shards))
	for i := range shards {
		shardCtx, cancel := context.WithCancelCause(ctx)
		ctxs[i] = shardCtx
		live[i] = running{member: shards[i].member, cancel: cancel}
		defer cancel(nil)
	}

	// Lease watcher: while the round runs, a member that falls out of
	// the alive set gets its shard canceled with errLeaseLost so its
	// cells re-enter the next round immediately instead of waiting for
	// a TCP timeout. Static members hold no lease and are skipped.
	watchStop := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		t := time.NewTicker(p.watchEvery)
		defer t.Stop()
		for {
			select {
			case <-watchStop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
			}
			aliveKeys := map[string]bool{}
			for _, m := range p.membership.Snapshot().Members {
				aliveKeys[m.Key()] = true
			}
			for _, r := range live {
				if !r.member.Static && !aliveKeys[r.member.Key()] {
					r.cancel(errLeaseLost)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var next []experiments.CellRef
	type death struct {
		url string
		n   int
	}
	var deaths []death
	for i := range shards {
		wg.Add(1)
		go func(shardCtx context.Context, m fleet.Member, shard []experiments.CellRef) {
			defer wg.Done()
			undone, err := p.runShard(ctx, shardCtx, m, params, shard, deliver)
			if err == nil || ctx.Err() != nil {
				return
			}
			var rej *shardRejectedError
			if errors.As(err, &rej) {
				// Deterministic rejection: the cells are poison for
				// every worker, so fail them here instead of killing
				// the fleet one healthy worker at a time.
				p.log.Warn("dispatch: worker rejected its shard; failing cells",
					"worker", m.URL, "err", err.Error(), "cells", len(undone))
				p.mu.Lock()
				p.statsForLocked(m.URL).errors += len(undone)
				p.mu.Unlock()
				for _, c := range undone {
					deliver(c, errorRowFor(c, err.Error()))
				}
				return
			}
			p.mu.Lock()
			p.deadKeys[m.Key()] = true
			p.statsForLocked(m.URL).dead = true
			for _, c := range undone {
				p.redisp[c.Index] = true
			}
			p.mu.Unlock()
			p.log.Warn("dispatch: worker failed; cells undelivered",
				"worker", m.URL, "err", err.Error(),
				"undelivered", len(undone), "shard", len(shard))
			mu.Lock()
			next = append(next, undone...)
			deaths = append(deaths, death{m.URL, len(undone)})
			mu.Unlock()
		}(ctxs[i], shards[i].member, shards[i].cells)
	}
	wg.Wait()
	close(watchStop)
	<-watchDone

	if len(next) > 0 && p.anySurvivors() {
		p.mu.Lock()
		for _, d := range deaths {
			p.statsForLocked(d.url).redispatched += d.n
		}
		p.mu.Unlock()
	}
	return next
}

// anySurvivors reports whether the current membership still holds a
// member this job hasn't declared dead.
func (p *Pool) anySurvivors() bool {
	snap := p.membership.Snapshot()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range snap.Members {
		if !p.deadKeys[m.Key()] {
			return true
		}
	}
	return false
}

// runShard runs one worker's shard: submit the cells, follow the job's
// SSE stream, and deliver each row into the coordinator's grid. It
// returns the cells that were not delivered (for re-dispatch) and a
// non-nil error when the worker must be considered dead: connection
// failures, a stream that ends without its done event, a worker job
// that finished canceled/failed (worker shutdown cancels its jobs), or
// a lease lost mid-shard (shardCtx canceled by the round's watcher).
// Canceled rows are never delivered — those cells belong to a survivor.
func (p *Pool) runShard(jobCtx, shardCtx context.Context, m fleet.Member, params JobParams, shard []experiments.CellRef, deliver func(experiments.CellRef, experiments.SweepRow)) (undelivered []experiments.CellRef, err error) {
	// One span per shard, parented under whatever span context rides the
	// job's context (the coordinator's job span). The shard's submit ctx
	// carries this span, so apiclient stamps it into the POST's
	// traceparent header and the worker's whole job joins our trace.
	parent, _ := obs.FromContext(jobCtx)
	sp := p.tracer.Start(parent, "dispatch.shard")
	sp.SetStr("worker", m.URL)
	sp.SetInt("cells", int64(len(shard)))
	if n := p.countRedispatched(shard); n > 0 {
		sp.SetBool("redispatched", true)
		sp.SetInt("redispatched_cells", int64(n))
		// Mark each moved cell with its own zero-length child span, so a
		// failover's second placement is visible per cell in the tree.
		for _, c := range shard {
			if !p.isRedispatched(c.Index) {
				continue
			}
			name := c.Cell.App
			if c.Cell.Mix != "" {
				name = c.Cell.Mix
			}
			cellSp := p.tracer.Start(sp.Context(), "dispatch.redispatch")
			cellSp.SetStr("app", name)
			cellSp.SetStr("scheme", c.Cell.Scheme)
			cellSp.SetBool("redispatched", true)
			cellSp.SetStr("worker", m.URL)
			cellSp.EndDuration(0)
		}
	}
	defer func() {
		if err != nil {
			sp.SetBool("error", true)
		}
		sp.End()
	}()
	shardCtx = obs.NewContext(shardCtx, sp.Context())

	api, err := p.apiFor(m)
	if err != nil {
		return shard, err
	}
	// Route returned rows by key first, then by identity triple (keys
	// are recomputed worker-side and can be empty for uncacheable
	// cells; identities are unique within one job's grid).
	byKey := map[string]int{}
	byIdent := map[string]int{}
	taken := make([]bool, len(shard))
	req := CellsRequest{JobParams: params, Cells: make([]experiments.SweepCell, len(shard))}
	for i, c := range shard {
		req.Cells[i] = c.Cell
		if c.Key != "" {
			byKey[c.Key] = i
		}
		byIdent[identOf(c.Cell)] = i
	}
	// take routes a returned row to its shard cell. keyMismatch marks a
	// row whose identity matches but whose recomputed content-address
	// does not — the worker simulated different inputs (a stale .wtrc
	// copy, say), and memoizing its numbers under our key would poison
	// the store.
	take := func(row experiments.SweepRow) (ref experiments.CellRef, ok, keyMismatch bool) {
		ident := identOf(experiments.SweepCell{App: row.App, Scheme: row.Scheme})
		if row.Mix {
			ident = identOf(experiments.SweepCell{Mix: row.App, Scheme: row.Scheme})
		}
		i, found := byKey[row.Key]
		if row.Key == "" || !found {
			i, found = byIdent[ident]
			if found && row.Key != "" && shard[i].Key != "" && row.Key != shard[i].Key {
				keyMismatch = true
			}
		}
		if !found || taken[i] {
			return experiments.CellRef{}, false, false
		}
		taken[i] = true
		return shard[i], true, keyMismatch
	}
	leftover := func() []experiments.CellRef {
		var out []experiments.CellRef
		for i, t := range taken {
			if !t {
				out = append(out, shard[i])
			}
		}
		return out
	}
	// leaseLost distinguishes the watcher's cancellation (the worker's
	// lease expired → death, re-dispatch) from a job cancellation
	// (quiet abort).
	leaseLost := func() bool {
		return errors.Is(context.Cause(shardCtx), errLeaseLost)
	}

	id, err := p.submitCells(shardCtx, api, &req)
	if err != nil {
		if jobCtx.Err() != nil {
			return shard, nil
		}
		if leaseLost() {
			return shard, fmt.Errorf("lease lost before shard submit: %w", errLeaseLost)
		}
		return shard, err
	}
	// Whatever happens below, don't leave the worker simulating cells
	// nobody is waiting for (coordinator canceled, stream died, lease
	// lost while the worker itself is still up).
	defer func() {
		if err != nil || shardCtx.Err() != nil {
			p.cancelJob(api, id)
		}
	}()

	stream, err := api.Stream(shardCtx, "/v1/jobs/"+id+"/stream")
	if err != nil {
		if jobCtx.Err() != nil {
			return shard, nil
		}
		if leaseLost() {
			return shard, fmt.Errorf("lease lost opening shard stream: %w", errLeaseLost)
		}
		return shard, fmt.Errorf("stream: %w", err)
	}
	defer stream.Close()

	doneState := ""
	deliveredN := 0
	for doneState == "" {
		ev, nextErr := stream.Next()
		if nextErr != nil {
			// The stream died (or ended cleanly — io.EOF) before the
			// worker's authoritative done-event split; attribute what it
			// demonstrably delivered as computed so the per-worker stats
			// still roughly sum to the grid.
			p.mu.Lock()
			p.statsForLocked(m.URL).computed += deliveredN
			p.mu.Unlock()
			if jobCtx.Err() != nil {
				return leftover(), nil
			}
			if leaseLost() {
				return leftover(), fmt.Errorf("lease expired mid-shard: %w", errLeaseLost)
			}
			if nextErr == io.EOF {
				nextErr = nil
			}
			return leftover(), fmt.Errorf("stream ended without done event (%v)", nextErr)
		}
		switch ev.Name {
		case "row":
			var row experiments.SweepRow
			if json.Unmarshal(ev.Data, &row) != nil {
				continue
			}
			if row.Err == "canceled" {
				continue // worker shutting down: the cell re-dispatches
			}
			ref, ok, keyMismatch := take(row)
			if !ok {
				continue
			}
			if keyMismatch {
				row = errorRowFor(ref, fmt.Sprintf(
					"key mismatch: worker %s computed %s for a cell addressed %s — differing inputs (stale trace file?); row rejected",
					m.URL, row.Key, ref.Key))
			}
			if row.Err != "" {
				p.mu.Lock()
				p.statsForLocked(m.URL).errors++
				p.mu.Unlock()
			}
			deliveredN++
			deliver(ref, row)
		case "done":
			var st struct {
				State    string `json:"state"`
				Served   int    `json:"served"`
				Computed int    `json:"computed"`
			}
			if json.Unmarshal(ev.Data, &st) == nil {
				doneState = st.State
				p.mu.Lock()
				w := p.statsForLocked(m.URL)
				w.served += st.Served
				w.computed += st.Computed
				p.mu.Unlock()
			}
		}
	}
	if doneState != "done" {
		return leftover(), fmt.Errorf("worker job finished %s", doneState)
	}
	p.stitchWorkerTrace(api, id, sp.Context())
	return leftover(), nil
}

// countRedispatched counts the shard's cells previously marked as
// re-dispatched (they came back undelivered from a dead worker).
func (p *Pool) countRedispatched(shard []experiments.CellRef) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range shard {
		if p.redisp[c.Index] {
			n++
		}
	}
	return n
}

func (p *Pool) isRedispatched(index int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.redisp[index]
}

// stitchWorkerTrace pulls a finished shard's span tree off the worker
// (GET /v1/jobs/{id}/trace) and folds it into the coordinator's tracer,
// so one distributed sweep collects as one tree. Only the subtree
// parented under this shard's span is taken: a worker serving several
// shards of the same sweep holds them all under one trace ID, and
// re-emitting a sibling shard's spans would duplicate them. Strictly
// best-effort: a worker without the endpoint, or one that died right
// after its done event, just leaves a gap in the trace.
func (p *Pool) stitchWorkerTrace(api *apiclient.Client, id string, sc obs.SpanContext) {
	if p.tracer == nil || !sc.Valid() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	raw, err := api.GetRaw(ctx, "/v1/jobs/"+id+"/trace")
	if err != nil {
		return
	}
	spans, err := obs.ParseSpans(bytes.NewReader(raw))
	if err != nil {
		return
	}
	keep := map[obs.SpanID]bool{sc.Span: true}
	for changed := true; changed; {
		changed = false
		for _, s := range spans {
			if s.Trace == sc.Trace && !keep[s.ID] && keep[s.Parent] {
				keep[s.ID] = true
				changed = true
			}
		}
	}
	for _, s := range spans {
		if s.ID != sc.Span && keep[s.ID] {
			p.tracer.Emit(s)
		}
	}
}

func identOf(c experiments.SweepCell) string {
	return c.App + "|" + c.Mix + "|" + c.Scheme
}

// submitRetries and submitBackoff bound how long a shard submit rides
// out transient 503s (worker job queue full, ~3s total) before the
// worker is declared dead.
const (
	submitRetries = 5
	submitBackoff = 200 * time.Millisecond
)

// submitCells POSTs one shard and returns the worker's job id. Typed
// back-pressure (apiclient.Error.Temporary: a 429 shed or a 503
// queue-full/drain) is retried with backoff — honoring the server's
// Retry-After hint when it gives one — so a briefly saturated worker
// keeps its shard. The delay is jittered to ±50% so shards rebuffed
// by the same saturated worker at the same moment don't resubmit in
// lockstep and collide again.
func (p *Pool) submitCells(ctx context.Context, api *apiclient.Client, req *CellsRequest) (string, error) {
	for attempt := 0; ; attempt++ {
		id, retryAfter, retryable, err := p.trySubmitCells(ctx, api, req)
		if err == nil {
			return id, nil
		}
		if !retryable || attempt >= submitRetries {
			return "", err
		}
		base := submitBackoff * time.Duration(attempt+1)
		if retryAfter > 0 {
			base = retryAfter
		}
		//whirl:wallclock retry-backoff jitter shapes timing only; no row data derives from it
		delay := base/2 + rand.N(base)
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(delay):
		}
	}
}

func (p *Pool) trySubmitCells(ctx context.Context, api *apiclient.Client, req *CellsRequest) (id string, retryAfter time.Duration, retryable bool, err error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := api.PostJSON(ctx, "/v1/cells", req, &out); err != nil {
		var ae *apiclient.Error
		if !errors.As(err, &ae) {
			// Transport failure (refused, reset, timeout): the worker is
			// unreachable, not back-pressured.
			return "", 0, false, fmt.Errorf("submit cells: %w", err)
		}
		if ae.Status == http.StatusBadRequest {
			// The worker understood the shard and said no — deterministic,
			// so don't kill workers over it (see shardRejectedError).
			return "", 0, false, &shardRejectedError{fmt.Sprintf("submit cells: %v", ae)}
		}
		return "", ae.RetryAfter, ae.Temporary(), fmt.Errorf("submit cells: %w", ae)
	}
	if out.ID == "" {
		return "", 0, false, fmt.Errorf("submit cells: worker accepted the shard but returned no job id")
	}
	return out.ID, 0, false, nil
}

// cancelJob best-effort DELETEs a worker job (the coordinator is gone
// or no longer listening). It deliberately ignores the caller's
// context, which is typically already canceled.
func (p *Pool) cancelJob(api *apiclient.Client, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = api.Delete(ctx, "/v1/jobs/"+id, nil)
}
