package energy

import (
	"math"
	"testing"
)

func TestMeterComponents(t *testing.T) {
	var m Meter
	m.AddBank(2)
	m.AddHops(3)
	m.AddDRAM(1)
	if m.BankPJ != 2*BankAccessPJ {
		t.Fatalf("bank = %v", m.BankPJ)
	}
	if m.NetworkPJ != 3*HopPJ {
		t.Fatalf("network = %v", m.NetworkPJ)
	}
	if m.MemoryPJ != DRAMAccessPJ {
		t.Fatalf("memory = %v", m.MemoryPJ)
	}
	if math.Abs(m.Total()-(m.BankPJ+m.NetworkPJ+m.MemoryPJ)) > 1e-9 {
		t.Fatal("total != sum of components")
	}
}

func TestMeterAddAndReset(t *testing.T) {
	var a, b Meter
	a.AddBank(1)
	b.AddDRAM(2)
	a.Add(b)
	if a.MemoryPJ != 2*DRAMAccessPJ {
		t.Fatal("Add did not accumulate")
	}
	a.Reset()
	if a.Total() != 0 {
		t.Fatal("Reset did not zero")
	}
}

func TestRelativeMagnitudes(t *testing.T) {
	// The paper's premise: DRAM ≫ bank access ≫ hop; tag probe < bank.
	if DRAMAccessPJ < 10*BankAccessPJ {
		t.Fatal("DRAM should dominate bank accesses")
	}
	if BankAccessPJ < HopPJ {
		t.Fatal("bank access should exceed one hop")
	}
	if BankTagProbePJ >= BankAccessPJ {
		t.Fatal("tag probe should be cheaper than a full access")
	}
}
