// Package energy accounts for data-movement (uncore) energy, the metric the
// paper reports in every evaluation figure: cache bank dynamic energy,
// network energy, and main memory dynamic energy.
//
// The per-event constants follow the magnitudes the paper cites (Sec 1 and
// Appendix A): an on-chip access to a ~1MB cache costs about 1nJ, sending
// 256 bits across the chip costs ~300pJ (we charge per flit-hop on a mesh
// with 128-bit flits), and a DRAM access costs 20-50nJ. Relative costs are
// what matter for reproducing the paper's energy breakdowns; see docs/design.md.
package energy

// Per-event energies in picojoules.
const (
	// BankAccessPJ is the dynamic energy of one 512KB LLC bank lookup
	// (read or write of a 64B line plus tag match).
	BankAccessPJ = 400.0
	// BankTagProbePJ is a tag-only probe (e.g., a directory-filtered miss
	// or an IdealSPD multi-level lookup that misses).
	BankTagProbePJ = 80.0
	// HopPJ is the energy for one 64B line (4 flits of 128 bits) to
	// traverse one router+link hop. 256 bits across chip ~ 300pJ at ~10
	// hops gives ~30pJ per 2 flits per hop; a full line is 4 flits.
	HopPJ = 60.0
	// CtrlHopPJ is a control message (1 flit) traversing one hop.
	CtrlHopPJ = 15.0
	// DRAMAccessPJ is one main-memory line fetch: the *dynamic* DDR3L
	// energy of a 64B transfer (Micron power-calculator scale, excluding
	// background power, as McPAT-style uncore accounting does). Keeping
	// this at the dynamic-only level preserves the paper's breakdown
	// shape, where network and bank energy are visible next to memory.
	DRAMAccessPJ = 8000.0
	// DirLookupPJ is one directory lookup (IdealSPD).
	DirLookupPJ = 100.0
)

// Meter accumulates energy by component. The zero value is ready to use.
// Meter is not safe for concurrent use; the simulator owns one per run.
type Meter struct {
	BankPJ    float64
	NetworkPJ float64
	MemoryPJ  float64
}

// AddBank charges n bank accesses.
func (m *Meter) AddBank(n float64) { m.BankPJ += n * BankAccessPJ }

// AddTagProbe charges n tag-only probes.
func (m *Meter) AddTagProbe(n float64) { m.BankPJ += n * BankTagProbePJ }

// AddDirLookup charges n directory lookups.
func (m *Meter) AddDirLookup(n float64) { m.BankPJ += n * DirLookupPJ }

// AddHops charges a 64B data transfer over h hops.
func (m *Meter) AddHops(h int) { m.NetworkPJ += float64(h) * HopPJ }

// AddCtrlHops charges a control message over h hops.
func (m *Meter) AddCtrlHops(h int) { m.NetworkPJ += float64(h) * CtrlHopPJ }

// AddDRAM charges n main-memory accesses.
func (m *Meter) AddDRAM(n float64) { m.MemoryPJ += n * DRAMAccessPJ }

// Total returns total data-movement energy in picojoules.
func (m *Meter) Total() float64 { return m.BankPJ + m.NetworkPJ + m.MemoryPJ }

// Add accumulates another meter into m.
func (m *Meter) Add(o Meter) {
	m.BankPJ += o.BankPJ
	m.NetworkPJ += o.NetworkPJ
	m.MemoryPJ += o.MemoryPJ
}

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }
