package noc

import (
	"testing"
	"testing/quick"
)

func TestHops(t *testing.T) {
	if h := Hops(Coord{0, 0}, Coord{3, 4}); h != 7 {
		t.Fatalf("Hops = %d, want 7", h)
	}
	if h := Hops(Coord{2, 2}, Coord{2, 2}); h != 0 {
		t.Fatalf("Hops same coord = %d, want 0", h)
	}
}

func TestHopLatency(t *testing.T) {
	if HopLatency(0) != 0 {
		t.Fatal("zero hops should be zero latency")
	}
	// 1 hop: 1 link + 2 routers = 2 + 6 = 8.
	if HopLatency(1) != 8 {
		t.Fatalf("HopLatency(1) = %d, want 8", HopLatency(1))
	}
	if HopLatency(2) <= HopLatency(1) {
		t.Fatal("latency must grow with hops")
	}
}

func TestFourCoreMeshGeometry(t *testing.T) {
	m := FourCoreMesh()
	if m.W != 5 || m.H != 5 || m.NBanks != 25 {
		t.Fatalf("bad mesh: W=%d H=%d banks=%d", m.W, m.H, m.NBanks)
	}
	if len(m.Cores) != 4 {
		t.Fatalf("want 4 cores, got %d", len(m.Cores))
	}
}

func TestSixteenCoreMeshGeometry(t *testing.T) {
	m := SixteenCoreMesh()
	if m.W != 9 || m.H != 9 || m.NBanks != 81 {
		t.Fatalf("bad mesh: W=%d H=%d banks=%d", m.W, m.H, m.NBanks)
	}
	if len(m.Cores) != 16 {
		t.Fatalf("want 16 cores, got %d", len(m.Cores))
	}
	if len(m.MemCtls) != 4 {
		t.Fatalf("want 4 MCUs, got %d", len(m.MemCtls))
	}
}

func TestBanksByDistanceSorted(t *testing.T) {
	m := FourCoreMesh()
	for c := 0; c < 4; c++ {
		order := m.BanksByDistance(c)
		if len(order) != 25 {
			t.Fatalf("core %d: %d banks", c, len(order))
		}
		for i := 1; i < len(order); i++ {
			if m.CoreBankHops(c, order[i-1]) > m.CoreBankHops(c, order[i]) {
				t.Fatalf("core %d: order not sorted at %d", c, i)
			}
		}
	}
}

func TestBankCoordRoundTrip(t *testing.T) {
	m := FourCoreMesh()
	for b := 0; b < m.NBanks; b++ {
		if m.BankID(m.BankCoord(b)) != b {
			t.Fatalf("bank %d round trip failed", b)
		}
	}
}

func TestAvgLatencyNearestMonotone(t *testing.T) {
	m := FourCoreMesh()
	prev := 0.0
	for n := 1; n <= 25; n++ {
		l := m.AvgLatencyNearest(0, n)
		if l < prev {
			t.Fatalf("avg latency decreased at n=%d: %v < %v", n, l, prev)
		}
		prev = l
	}
}

func TestChipGeometry(t *testing.T) {
	c := FourCoreChip()
	if c.TotalBytes() != 25*512*1024 {
		t.Fatalf("TotalBytes = %d", c.TotalBytes())
	}
	if c.BankLines() != 8192 {
		t.Fatalf("BankLines = %d", c.BankLines())
	}
	if c.TotalLines() != 25*8192 {
		t.Fatalf("TotalLines = %d", c.TotalLines())
	}
	if c.NCores() != 4 {
		t.Fatalf("NCores = %d", c.NCores())
	}
}

func TestBorderMeshPlacement(t *testing.T) {
	cases := []struct{ w, h, cores, wantMCs int }{
		{5, 5, 4, 1},
		{8, 8, 8, 4},
		{8, 4, 6, 4},
		{2, 2, 4, 1},
		{9, 9, 16, 4},
	}
	for _, c := range cases {
		m := BorderMesh(c.w, c.h, c.cores)
		if m.W != c.w || m.H != c.h || m.NBanks != c.w*c.h {
			t.Fatalf("%dx%d: bad geometry W=%d H=%d banks=%d", c.w, c.h, m.W, m.H, m.NBanks)
		}
		if len(m.Cores) != c.cores {
			t.Fatalf("%dx%d: %d cores, want %d", c.w, c.h, len(m.Cores), c.cores)
		}
		if len(m.MemCtls) != c.wantMCs {
			t.Fatalf("%dx%d/%d cores: %d MCUs, want %d", c.w, c.h, c.cores, len(m.MemCtls), c.wantMCs)
		}
		seen := map[Coord]bool{}
		for _, cc := range m.Cores {
			if cc.X != 0 && cc.X != c.w-1 && cc.Y != 0 && cc.Y != c.h-1 {
				t.Fatalf("%dx%d: core at %v is not on the border", c.w, c.h, cc)
			}
			if seen[cc] {
				t.Fatalf("%dx%d: two cores share coordinate %v", c.w, c.h, cc)
			}
			seen[cc] = true
		}
	}
}

func TestBorderMeshRejectsBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { BorderMesh(1, 5, 2) },
		func() { BorderMesh(5, 5, 0) },
		func() { BorderMesh(3, 3, MaxBorderCores(3, 3)+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad BorderMesh geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestRectMeshBankCoordRoundTrip(t *testing.T) {
	m := BorderMesh(7, 3, 4)
	for b := 0; b < m.NBanks; b++ {
		if m.BankID(m.BankCoord(b)) != b {
			t.Fatalf("bank %d round trip failed", b)
		}
	}
	c := m.BankCoord(m.NBanks - 1)
	if c.X != 6 || c.Y != 2 {
		t.Fatalf("last bank at %v, want {6 2}", c)
	}
}

func TestQuickHopsSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax % 9), int(ay % 9)}
		b := Coord{int(bx % 9), int(by % 9)}
		return Hops(a, b) == Hops(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHops2TriangleInequality(t *testing.T) {
	m := FourCoreMesh()
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%25), int(b%25), int(c%25)
		return m.Hops2(x, z) <= m.Hops2(x, y)+m.Hops2(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
