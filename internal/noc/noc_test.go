package noc

import (
	"testing"
	"testing/quick"
)

func TestHops(t *testing.T) {
	if h := Hops(Coord{0, 0}, Coord{3, 4}); h != 7 {
		t.Fatalf("Hops = %d, want 7", h)
	}
	if h := Hops(Coord{2, 2}, Coord{2, 2}); h != 0 {
		t.Fatalf("Hops same coord = %d, want 0", h)
	}
}

func TestHopLatency(t *testing.T) {
	if HopLatency(0) != 0 {
		t.Fatal("zero hops should be zero latency")
	}
	// 1 hop: 1 link + 2 routers = 2 + 6 = 8.
	if HopLatency(1) != 8 {
		t.Fatalf("HopLatency(1) = %d, want 8", HopLatency(1))
	}
	if HopLatency(2) <= HopLatency(1) {
		t.Fatal("latency must grow with hops")
	}
}

func TestFourCoreMeshGeometry(t *testing.T) {
	m := FourCoreMesh()
	if m.K != 5 || m.NBanks != 25 {
		t.Fatalf("bad mesh: K=%d banks=%d", m.K, m.NBanks)
	}
	if len(m.Cores) != 4 {
		t.Fatalf("want 4 cores, got %d", len(m.Cores))
	}
}

func TestSixteenCoreMeshGeometry(t *testing.T) {
	m := SixteenCoreMesh()
	if m.K != 9 || m.NBanks != 81 {
		t.Fatalf("bad mesh: K=%d banks=%d", m.K, m.NBanks)
	}
	if len(m.Cores) != 16 {
		t.Fatalf("want 16 cores, got %d", len(m.Cores))
	}
	if len(m.MemCtls) != 4 {
		t.Fatalf("want 4 MCUs, got %d", len(m.MemCtls))
	}
}

func TestBanksByDistanceSorted(t *testing.T) {
	m := FourCoreMesh()
	for c := 0; c < 4; c++ {
		order := m.BanksByDistance(c)
		if len(order) != 25 {
			t.Fatalf("core %d: %d banks", c, len(order))
		}
		for i := 1; i < len(order); i++ {
			if m.CoreBankHops(c, order[i-1]) > m.CoreBankHops(c, order[i]) {
				t.Fatalf("core %d: order not sorted at %d", c, i)
			}
		}
	}
}

func TestBankCoordRoundTrip(t *testing.T) {
	m := FourCoreMesh()
	for b := 0; b < m.NBanks; b++ {
		if m.BankID(m.BankCoord(b)) != b {
			t.Fatalf("bank %d round trip failed", b)
		}
	}
}

func TestAvgLatencyNearestMonotone(t *testing.T) {
	m := FourCoreMesh()
	prev := 0.0
	for n := 1; n <= 25; n++ {
		l := m.AvgLatencyNearest(0, n)
		if l < prev {
			t.Fatalf("avg latency decreased at n=%d: %v < %v", n, l, prev)
		}
		prev = l
	}
}

func TestChipGeometry(t *testing.T) {
	c := FourCoreChip()
	if c.TotalBytes() != 25*512*1024 {
		t.Fatalf("TotalBytes = %d", c.TotalBytes())
	}
	if c.BankLines() != 8192 {
		t.Fatalf("BankLines = %d", c.BankLines())
	}
	if c.TotalLines() != 25*8192 {
		t.Fatalf("TotalLines = %d", c.TotalLines())
	}
	if c.NCores() != 4 {
		t.Fatalf("NCores = %d", c.NCores())
	}
}

func TestQuickHopsSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax % 9), int(ay % 9)}
		b := Coord{int(bx % 9), int(by % 9)}
		return Hops(a, b) == Hops(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHops2TriangleInequality(t *testing.T) {
	m := FourCoreMesh()
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%25), int(b%25), int(c%25)
		return m.Hops2(x, z) <= m.Hops2(x, y)+m.Hops2(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
