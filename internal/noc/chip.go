package noc

import (
	"fmt"

	"whirlpool/internal/addr"
)

// Table 3 latency parameters shared by all LLC organizations.
const (
	// BankLatency is one LLC bank access (9-cycle zcache bank).
	BankLatency = 9
	// MemLatency is main memory zero-load latency in cycles.
	MemLatency = 120
	// DirLatency is a directory lookup (IdealSPD).
	DirLatency = 6
)

// Chip bundles the mesh with bank geometry; it is the static hardware
// configuration every scheme is built against.
type Chip struct {
	Mesh      *Mesh
	BankBytes uint64
}

// NBanks returns the number of LLC banks.
func (c *Chip) NBanks() int { return c.Mesh.NBanks }

// NCores returns the number of cores.
func (c *Chip) NCores() int { return len(c.Mesh.Cores) }

// BankLines returns one bank's capacity in cache lines.
func (c *Chip) BankLines() uint64 { return c.BankBytes / addr.LineBytes }

// TotalLines returns the whole LLC's capacity in lines.
func (c *Chip) TotalLines() uint64 { return c.BankLines() * uint64(c.NBanks()) }

// TotalBytes returns the whole LLC's capacity in bytes.
func (c *Chip) TotalBytes() uint64 { return c.BankBytes * uint64(c.NBanks()) }

// Custom-chip limits shared by every surface that builds topologies
// (the public Chip type, spec files, the CLIs).
const (
	// MinMeshSide / MaxMeshSide bound custom mesh dimensions.
	MinMeshSide = 2
	MaxMeshSide = 64
	// MinBankBytes is the smallest supported LLC bank.
	MinBankBytes = 64 * addr.KB
)

// ValidateCustom checks custom chip parameters without building the
// chip. bankBytes 0 means the 512KB default. This is the single home
// of the custom-topology rules; Custom enforces it.
func ValidateCustom(w, h, nCores int, bankBytes uint64) error {
	if bankBytes != 0 && bankBytes < MinBankBytes {
		return fmt.Errorf("noc: bank size %dB out of range (want >= %dKB)", bankBytes, MinBankBytes/addr.KB)
	}
	if w < MinMeshSide || h < MinMeshSide || w > MaxMeshSide || h > MaxMeshSide {
		return fmt.Errorf("noc: mesh %dx%d out of range (want %d..%d per side)", w, h, MinMeshSide, MaxMeshSide)
	}
	if max := MaxBorderCores(w, h); nCores < 1 || nCores > max {
		return fmt.Errorf("noc: %d cores do not fit a %dx%d mesh border (max %d)", nCores, w, h, max)
	}
	return nil
}

// Custom builds a w×h-bank chip with nCores border-attached cores and
// the given per-bank capacity (0 = the paper's 512KB banks). It is the
// constructor behind the public API's first-class chip topologies and
// panics on parameters ValidateCustom rejects.
func Custom(w, h, nCores int, bankBytes uint64) *Chip {
	if err := ValidateCustom(w, h, nCores, bankBytes); err != nil {
		panic(err.Error())
	}
	if bankBytes == 0 {
		bankBytes = 512 * addr.KB
	}
	return &Chip{Mesh: BorderMesh(w, h, nCores), BankBytes: bankBytes}
}

// FourCoreChip is the 4-core, 25-bank, 512KB/bank chip of Fig 1
// (3.1MB/core).
func FourCoreChip() *Chip {
	return &Chip{Mesh: FourCoreMesh(), BankBytes: 512 * addr.KB}
}

// SixteenCoreChip is the 16-core, 81-bank chip of Fig 12 (2.5MB/core).
func SixteenCoreChip() *Chip {
	return &Chip{Mesh: SixteenCoreMesh(), BankBytes: 512 * addr.KB}
}
