package noc

import "whirlpool/internal/addr"

// Table 3 latency parameters shared by all LLC organizations.
const (
	// BankLatency is one LLC bank access (9-cycle zcache bank).
	BankLatency = 9
	// MemLatency is main memory zero-load latency in cycles.
	MemLatency = 120
	// DirLatency is a directory lookup (IdealSPD).
	DirLatency = 6
)

// Chip bundles the mesh with bank geometry; it is the static hardware
// configuration every scheme is built against.
type Chip struct {
	Mesh      *Mesh
	BankBytes uint64
}

// NBanks returns the number of LLC banks.
func (c *Chip) NBanks() int { return c.Mesh.NBanks }

// NCores returns the number of cores.
func (c *Chip) NCores() int { return len(c.Mesh.Cores) }

// BankLines returns one bank's capacity in cache lines.
func (c *Chip) BankLines() uint64 { return c.BankBytes / addr.LineBytes }

// TotalLines returns the whole LLC's capacity in lines.
func (c *Chip) TotalLines() uint64 { return c.BankLines() * uint64(c.NBanks()) }

// TotalBytes returns the whole LLC's capacity in bytes.
func (c *Chip) TotalBytes() uint64 { return c.BankBytes * uint64(c.NBanks()) }

// FourCoreChip is the 4-core, 25-bank, 512KB/bank chip of Fig 1
// (3.1MB/core).
func FourCoreChip() *Chip {
	return &Chip{Mesh: FourCoreMesh(), BankBytes: 512 * addr.KB}
}

// SixteenCoreChip is the 16-core, 81-bank chip of Fig 12 (2.5MB/core).
func SixteenCoreChip() *Chip {
	return &Chip{Mesh: SixteenCoreMesh(), BankBytes: 512 * addr.KB}
}
