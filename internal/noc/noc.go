// Package noc models the on-chip mesh network connecting cores, LLC banks,
// and memory controllers: a k×k mesh with X-Y routing, 3-cycle pipelined
// routers and 2-cycle links (Table 3).
//
// The 4-core chip is a 5×5 mesh of banks with 4 cores attached on the left
// edge (Fig 1); the 16-core chip is a 9×9 mesh with 16 cores around the
// border (Fig 12). Cores and memory controllers attach at fixed mesh
// coordinates; distances are precomputed.
package noc

const (
	// RouterCycles is the pipelined router traversal latency per hop.
	RouterCycles = 3
	// LinkCycles is the link traversal latency per hop.
	LinkCycles = 2
)

// Coord is a mesh coordinate (column x, row y).
type Coord struct{ X, Y int }

// Mesh is a W×H array of LLC banks with cores and memory controllers
// attached at fixed coordinates. All fields are immutable after New.
type Mesh struct {
	W, H    int     // mesh dimensions: W columns × H rows of banks
	NBanks  int     // W*H
	Cores   []Coord // attachment point of each core
	MemCtls []Coord // attachment point of each memory controller

	// coreBankHops[c][b] is the hop count from core c to bank b.
	coreBankHops [][]int
	// coreBanksByDist[c] lists bank ids sorted by distance from core c
	// (ties broken by bank id for determinism).
	coreBanksByDist [][]int
	// bankMemHops[b] is the hop count from bank b to its closest memory
	// controller.
	bankMemHops []int
	// coreMemHops[c] is the hop count from core c to its closest
	// memory controller.
	coreMemHops []int
}

// BankCoord returns the mesh coordinate of bank b (row-major).
func (m *Mesh) BankCoord(b int) Coord { return Coord{b % m.W, b / m.W} }

// BankID returns the bank id at coordinate c.
func (m *Mesh) BankID(c Coord) int { return c.Y*m.W + c.X }

// Hops returns the X-Y routing hop count between two coordinates.
func Hops(a, b Coord) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// HopLatency returns the network latency in cycles for h hops (one way).
func HopLatency(h int) uint64 {
	if h == 0 {
		return 0
	}
	return uint64(h*LinkCycles + (h+1)*RouterCycles)
}

// New builds a square k×k mesh with the given attachment points.
func New(k int, cores, memCtls []Coord) *Mesh {
	return NewRect(k, k, cores, memCtls)
}

// NewRect builds a w×h mesh with the given attachment points.
func NewRect(w, h int, cores, memCtls []Coord) *Mesh {
	m := &Mesh{
		W:       w,
		H:       h,
		NBanks:  w * h,
		Cores:   append([]Coord(nil), cores...),
		MemCtls: append([]Coord(nil), memCtls...),
	}
	m.coreBankHops = make([][]int, len(cores))
	m.coreBanksByDist = make([][]int, len(cores))
	for c, cc := range cores {
		hops := make([]int, m.NBanks)
		order := make([]int, m.NBanks)
		for b := 0; b < m.NBanks; b++ {
			hops[b] = Hops(cc, m.BankCoord(b))
			order[b] = b
		}
		// Insertion sort by (distance, id): NBanks is small (25 or 81).
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				a, b := order[j-1], order[j]
				if hops[a] > hops[b] || (hops[a] == hops[b] && a > b) {
					order[j-1], order[j] = b, a
				} else {
					break
				}
			}
		}
		m.coreBankHops[c] = hops
		m.coreBanksByDist[c] = order
	}
	m.bankMemHops = make([]int, m.NBanks)
	for b := 0; b < m.NBanks; b++ {
		best := 1 << 30
		for _, mc := range memCtls {
			if h := Hops(m.BankCoord(b), mc); h < best {
				best = h
			}
		}
		m.bankMemHops[b] = best
	}
	m.coreMemHops = make([]int, len(cores))
	for c, cc := range cores {
		best := 1 << 30
		for _, mc := range memCtls {
			if h := Hops(cc, mc); h < best {
				best = h
			}
		}
		m.coreMemHops[c] = best
	}
	return m
}

// CoreBankHops returns the hop count from core c to bank b.
func (m *Mesh) CoreBankHops(c, b int) int { return m.coreBankHops[c][b] }

// Hops2 returns the hop count between two banks.
func (m *Mesh) Hops2(a, b int) int {
	return Hops(m.BankCoord(a), m.BankCoord(b))
}

// BanksByDistance returns bank ids sorted by distance from core c.
// The returned slice is shared; callers must not modify it.
func (m *Mesh) BanksByDistance(c int) []int { return m.coreBanksByDist[c] }

// BankMemHops returns the hop count from bank b to its nearest memory
// controller.
func (m *Mesh) BankMemHops(b int) int { return m.bankMemHops[b] }

// CoreMemHops returns the hop count from core c to its nearest memory
// controller (used when an access bypasses the LLC).
func (m *Mesh) CoreMemHops(c int) int { return m.coreMemHops[c] }

// AvgLatencyNearest returns the average round-trip network latency (cycles)
// from core c to the n nearest banks, the quantity Jigsaw's latency curves
// use for "the average latency to the closest cache banks needed for a
// given VC size".
func (m *Mesh) AvgLatencyNearest(c, n int) float64 {
	if n <= 0 {
		return 0
	}
	if n > m.NBanks {
		n = m.NBanks
	}
	order := m.coreBanksByDist[c]
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(2 * HopLatency(m.coreBankHops[c][order[i]]))
	}
	return sum / float64(n)
}

// borderCoords lists the border cells of a w×h mesh clockwise from the
// top-left corner: top row left→right, right column top→bottom, bottom
// row right→left, left column bottom→top.
func borderCoords(w, h int) []Coord {
	out := make([]Coord, 0, 2*(w+h)-4)
	for x := 0; x < w; x++ {
		out = append(out, Coord{x, 0})
	}
	for y := 1; y < h; y++ {
		out = append(out, Coord{w - 1, y})
	}
	for x := w - 2; x >= 0; x-- {
		out = append(out, Coord{x, h - 1})
	}
	for y := h - 2; y >= 1; y-- {
		out = append(out, Coord{0, y})
	}
	return out
}

// MaxBorderCores returns how many cores a w×h mesh can attach (one per
// border cell).
func MaxBorderCores(w, h int) int { return 2*(w+h) - 4 }

// BorderMesh builds a w×h mesh with nCores cores spread evenly around
// the border (clockwise from the top-left corner) and memory
// controllers at the edge midpoints: one controller (right edge middle)
// for chips of up to 4 cores, four (one per edge) beyond that,
// mirroring the paper's 4- and 16-core configurations. It is the
// deterministic placement behind custom chip topologies; the paper's
// exact chips remain FourCoreMesh and SixteenCoreMesh.
func BorderMesh(w, h, nCores int) *Mesh {
	if w < 2 || h < 2 {
		panic("noc: BorderMesh needs at least a 2x2 mesh")
	}
	border := borderCoords(w, h)
	if nCores < 1 || nCores > len(border) {
		panic("noc: BorderMesh core count must be in 1..2(w+h)-4")
	}
	cores := make([]Coord, nCores)
	for i := range cores {
		cores[i] = border[i*len(border)/nCores]
	}
	var mem []Coord
	if nCores <= 4 {
		mem = []Coord{{w - 1, h / 2}}
	} else {
		mem = []Coord{{w / 2, 0}, {w - 1, h / 2}, {w / 2, h - 1}, {0, h / 2}}
	}
	return NewRect(w, h, cores, mem)
}

// FourCoreMesh returns the 4-core, 5×5-bank chip of Fig 1: cores attached
// along the left edge, one memory controller on the right edge middle.
func FourCoreMesh() *Mesh {
	cores := []Coord{{0, 0}, {0, 1}, {0, 3}, {0, 4}}
	mem := []Coord{{4, 2}}
	return New(5, cores, mem)
}

// SixteenCoreMesh returns the 16-core, 9×9-bank chip of Fig 12: cores
// around the border (4 per side), 4 memory controllers at edge midpoints.
func SixteenCoreMesh() *Mesh {
	cores := []Coord{
		{1, 0}, {3, 0}, {5, 0}, {7, 0}, // top
		{8, 1}, {8, 3}, {8, 5}, {8, 7}, // right
		{7, 8}, {5, 8}, {3, 8}, {1, 8}, // bottom
		{0, 7}, {0, 5}, {0, 3}, {0, 1}, // left
	}
	mem := []Coord{{4, 0}, {8, 4}, {4, 8}, {0, 4}}
	return New(9, cores, mem)
}
