package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
	"whirlpool/internal/trace"
	"whirlpool/internal/workloads"
)

// registerEmptyTraceApp registers an app whose recording holds zero
// accesses — the zero-cycle, zero-instruction corner every division in
// the row builder must survive.
func registerEmptyTraceApp(t *testing.T, name string) {
	t.Helper()
	t.Cleanup(workloads.SnapshotRegistry())
	p := filepath.Join(t.TempDir(), "empty.wtrc")
	if err := trace.WriteFile(p, &trace.LLCTrace{}); err != nil {
		t.Fatal(err)
	}
	workloads.Register(workloads.AppSpec{Name: name, Suite: "trace", TracePath: p})
}

// A zero-cycle cell must produce a finite row: IPC 0 (not NaN), and the
// row must survive json.Marshal — NaN would make the serving path drop
// or corrupt it.
func TestSweepZeroCycleRow(t *testing.T) {
	registerEmptyTraceApp(t, "zc_app")
	h := NewHarness(1)
	rows, err := h.Sweep(SweepConfig{Apps: []string{"zc_app"}, Kinds: []schemes.Kind{schemes.KindJigsaw}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Err != "" {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Cycles != 0 || r.Instrs != 0 {
		t.Fatalf("empty trace simulated work: %+v", r)
	}
	if r.IPC != 0 || r.APKI != 0 || r.MPKI != 0 {
		t.Fatalf("zero-cycle row has non-zero rates (NaN guard missing?): %+v", r)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("zero-cycle row does not marshal: %v", err)
	}
	var back SweepRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, rows); err != nil {
		t.Fatalf("WriteRowsJSON on a zero-cycle row: %v", err)
	}
}

// Canceled cells must flow through OnRow like any other resolution, so
// progress observers see done reach total even on aborted sweeps.
func TestSweepCanceledRowsReachOnRow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	h := NewHarness(0.05)
	var rowsSeen, canceledSeen, lastDone, total int
	rows, err := h.Sweep(SweepConfig{
		Apps:    []string{"delaunay", "MIS", "mcf"},
		Kinds:   []schemes.Kind{schemes.KindSNUCALRU, schemes.KindSNUCADRRIP},
		Workers: 1,
		Context: ctx,
		OnRow: func(done, tot int, row SweepRow) {
			cancel()
			rowsSeen++
			lastDone, total = done, tot
			if row.Err == "canceled" {
				canceledSeen++
			}
		},
	})
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if rowsSeen != len(rows) || lastDone != total || total != len(rows) {
		t.Fatalf("OnRow saw %d rows, last done=%d/%d; want every one of %d cells observed",
			rowsSeen, lastDone, total, len(rows))
	}
	if canceledSeen == 0 {
		t.Fatal("no canceled rows reached OnRow")
	}
}

// Explicit Cells grids run exactly the named cells, in order, and are
// bit-identical to the same cells from a cross-product sweep.
func TestSweepExplicitCells(t *testing.T) {
	full, err := NewHarness(0.05).Sweep(SweepConfig{
		Apps:  []string{"delaunay", "MIS"},
		Mixes: []SweepMix{{Name: "duo", Apps: []string{"delaunay", "MIS"}}},
		Kinds: []schemes.Kind{schemes.KindSNUCALRU, schemes.KindJigsaw},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A hand-picked, reordered subset of the same grid.
	cells := []SweepCell{
		{Mix: "duo", Scheme: "jigsaw"},
		{App: "MIS", Scheme: "snuca-lru"},
		{App: "delaunay", Scheme: "jigsaw"},
	}
	got, err := NewHarness(0.05).Sweep(SweepConfig{
		Mixes: []SweepMix{{Name: "duo", Apps: []string{"delaunay", "MIS"}}},
		Cells: cells,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("got %d rows for %d cells", len(got), len(cells))
	}
	find := func(app string, mix bool, scheme string) SweepRow {
		for _, r := range full {
			if r.App == app && r.Mix == mix && r.Scheme == scheme {
				return r
			}
		}
		t.Fatalf("no full-grid row for %s/%s", app, scheme)
		return SweepRow{}
	}
	for i, c := range cells {
		want := find(c.App+c.Mix, c.Mix != "", c.Scheme)
		g := got[i]
		g.WallMS, want.WallMS = 0, 0
		if !reflect.DeepEqual(g, want) {
			t.Errorf("cell %d differs from cross-product run:\n  cells: %+v\n  full:  %+v", i, g, want)
		}
	}

	// Bad cells fail validation up front.
	bad := []SweepCell{
		{Scheme: "jigsaw"},
		{App: "delaunay", Mix: "duo", Scheme: "jigsaw"},
		{Mix: "nosuch", Scheme: "jigsaw"},
		{App: "delaunay", Scheme: "bogus"},
	}
	for _, c := range bad {
		if _, err := NewHarness(0.05).Sweep(SweepConfig{
			Mixes: []SweepMix{{Name: "duo", Apps: []string{"delaunay"}}},
			Cells: []SweepCell{c},
		}); err == nil {
			t.Errorf("cell %+v passed validation", c)
		}
	}
	// Duplicate cells would collide in remote row routing.
	if _, err := NewHarness(0.05).Sweep(SweepConfig{
		Cells: []SweepCell{
			{App: "delaunay", Scheme: "jigsaw"},
			{App: "delaunay", Scheme: "jigsaw"},
		},
	}); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Errorf("duplicate cells passed validation: %v", err)
	}
}

// Rows carry deterministic content-address keys even without a store:
// two independent sweeps of the same inputs agree, different inputs
// diverge, and the key matches what the store path uses.
func TestSweepRowKeys(t *testing.T) {
	cfg := SweepConfig{Apps: []string{"delaunay"}, Kinds: []schemes.Kind{schemes.KindJigsaw}}
	a, err := NewHarness(0.05).Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHarness(0.05).Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Key == "" || a[0].Key != b[0].Key {
		t.Fatalf("keys not deterministic: %q vs %q", a[0].Key, b[0].Key)
	}
	h := NewHarness(0.05)
	h.Seed = 42
	c, err := h.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c[0].Key == a[0].Key {
		t.Fatal("different seed produced the same cell key")
	}

	// A store-served row carries the same key as the computed one.
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cold := cfg
	cold.Store = store
	coldRows, err := NewHarness(0.05).Sweep(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmRows, err := NewHarness(0.05).Sweep(cold)
	if err != nil {
		t.Fatal(err)
	}
	if coldRows[0].Key != a[0].Key || warmRows[0].Key != a[0].Key {
		t.Fatalf("store path keys diverge: cold %q warm %q direct %q",
			coldRows[0].Key, warmRows[0].Key, a[0].Key)
	}
}

// A Remote executor replaces local simulation: the coordinator builds
// zero traces, delivered rows are committed to the store, and cells the
// executor never delivers become error rows (or canceled rows when the
// context was canceled) so the grid is always fully accounted for.
func TestSweepRemoteExec(t *testing.T) {
	want, err := NewHarness(0.05).Sweep(SweepConfig{
		Apps:  []string{"delaunay", "MIS"},
		Kinds: []schemes.Kind{schemes.KindSNUCALRU},
	})
	if err != nil {
		t.Fatal(err)
	}

	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	workerH := NewHarness(0.05) // the "remote" simulating node
	var stats SweepStats
	coordH := NewHarness(0.05)
	rows, err := coordH.Sweep(SweepConfig{
		Apps:  []string{"delaunay", "MIS"},
		Kinds: []schemes.Kind{schemes.KindSNUCALRU},
		Store: store,
		Stats: &stats,
		Remote: func(ctx context.Context, cells []CellRef, deliver func(CellRef, SweepRow)) error {
			for _, c := range cells {
				got, err := workerH.Sweep(SweepConfig{Cells: []SweepCell{c.Cell}, Workers: 1})
				if err != nil {
					return err
				}
				deliver(c, got[0])
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	if coordH.TraceBuilds() != 0 {
		t.Errorf("coordinator built %d traces; remote sweeps must build none", coordH.TraceBuilds())
	}
	if stats.Computed != 2 || stats.Served != 0 {
		t.Errorf("stats = %+v, want 2 computed", stats)
	}
	for i := range rows {
		g, w := rows[i], want[i]
		g.WallMS, w.WallMS = 0, 0
		if !reflect.DeepEqual(g, w) {
			t.Errorf("remote row %d differs:\n  remote: %+v\n  local:  %+v", i, g, w)
		}
	}
	if store.Len() != 2 {
		t.Errorf("store holds %d rows after remote sweep, want 2 (per-cell commit)", store.Len())
	}

	// A warm resubmit is served locally: the executor must see no cells.
	var warmStats SweepStats
	warm, err := NewHarness(0.05).Sweep(SweepConfig{
		Apps:  []string{"delaunay", "MIS"},
		Kinds: []schemes.Kind{schemes.KindSNUCALRU},
		Store: store,
		Stats: &warmStats,
		Remote: func(ctx context.Context, cells []CellRef, deliver func(CellRef, SweepRow)) error {
			return fmt.Errorf("executor called with %d cells on a warm store", len(cells))
		},
	})
	if err != nil || warmStats.Served != 2 {
		t.Fatalf("warm remote sweep: err=%v stats=%+v", err, warmStats)
	}
	for i := range warm {
		g, w := warm[i], want[i]
		g.WallMS, w.WallMS = 0, 0
		if !reflect.DeepEqual(g, w) {
			t.Errorf("warm row %d differs from direct run", i)
		}
	}

	// An executor that fails leaves error rows, never silent holes.
	failRows, err := NewHarness(0.05).Sweep(SweepConfig{
		Apps:  []string{"delaunay"},
		Kinds: []schemes.Kind{schemes.KindSNUCALRU},
		Remote: func(ctx context.Context, cells []CellRef, deliver func(CellRef, SweepRow)) error {
			return fmt.Errorf("fleet on fire")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "fleet on fire") {
		t.Fatalf("failed executor: err = %v", err)
	}
	if len(failRows) != 1 || !strings.Contains(failRows[0].Err, "fleet on fire") {
		t.Fatalf("failed executor rows = %+v", failRows)
	}

	// A canceled context marks undelivered cells canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cRows, err := NewHarness(0.05).Sweep(SweepConfig{
		Apps:    []string{"delaunay"},
		Kinds:   []schemes.Kind{schemes.KindSNUCALRU},
		Context: ctx,
		Remote: func(ctx context.Context, cells []CellRef, deliver func(CellRef, SweepRow)) error {
			return ctx.Err()
		},
	})
	if err == nil || len(cRows) != 1 || cRows[0].Err != "canceled" {
		t.Fatalf("canceled remote sweep: err=%v rows=%+v", err, cRows)
	}
}

// The CSV writer's key column round-trips and stays the last field, so
// `cut -d, -f1-16` keeps stripping exactly wall_ms and error.
func TestSweepCSVKeyColumn(t *testing.T) {
	rows := []SweepRow{{App: "a", Scheme: "s", Key: "k123"}}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasSuffix(lines[0], ",wall_ms,error,key") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], ",k123") {
		t.Fatalf("row = %q", lines[1])
	}
}
