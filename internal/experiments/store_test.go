package experiments

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
	"whirlpool/internal/trace"
	"whirlpool/internal/workloads"
)

// TestSweepStoreMemoizes is the core memoization contract: a sweep
// against a warm store performs zero trace builds and zero simulations
// (the store counters prove it), and the served rows are bit-identical
// to the freshly computed ones.
func TestSweepStoreMemoizes(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := SweepConfig{
		Apps:    []string{"delaunay", "MIS"},
		Kinds:   []schemes.Kind{schemes.KindJigsaw, schemes.KindSNUCALRU},
		Workers: 2,
		Store:   store,
	}

	cold := NewHarness(0.05)
	rows1, err := cold.Sweep(cfg)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	st := store.Stats()
	if st.Hits != 0 || st.Misses != int64(len(rows1)) || st.Puts != int64(len(rows1)) {
		t.Fatalf("cold sweep stats = %+v, want 0 hits, %d misses, %d puts", st, len(rows1), len(rows1))
	}

	// A fresh harness: no in-memory trace cache, no disk trace cache —
	// any served row provably came from the result store alone.
	warm := NewHarness(0.05)
	rows2, err := warm.Sweep(cfg)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	st = store.Stats()
	if st.Hits != int64(len(rows1)) || st.Misses != int64(len(rows1)) {
		t.Fatalf("warm sweep stats = %+v, want %d hits and no new misses", st, len(rows1))
	}
	if b := warm.TraceBuilds(); b != 0 {
		t.Fatalf("warm sweep built %d traces, want 0 (store must preempt trace prefetch)", b)
	}
	if len(rows2) != len(rows1) {
		t.Fatalf("warm sweep returned %d rows, want %d", len(rows2), len(rows1))
	}
	for i := range rows1 {
		a, b := rows1[i], rows2[i]
		// WallMS is host timing: the served row carries the recorded
		// compute time, every other field must match bit for bit.
		a.WallMS, b.WallMS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("row %d differs served vs computed:\n  computed: %+v\n  served:   %+v", i, a, b)
		}
	}
}

// TestSweepStoreRespectsConfig: rows memoized at one (scale, seed,
// scheme, bypass) must not serve a sweep at another — the key covers
// the full configuration.
func TestSweepStoreRespectsConfig(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	base := SweepConfig{Apps: []string{"delaunay"}, Kinds: []schemes.Kind{schemes.KindJigsaw}, Store: store}

	h := NewHarness(0.05)
	if _, err := h.Sweep(base); err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		h    *Harness
		cfg  SweepConfig
	}{
		{"other scale", NewHarness(0.02), base},
		{"other seed", func() *Harness { h := NewHarness(0.05); h.Seed = 7; return h }(), base},
		{"other scheme", NewHarness(0.05),
			SweepConfig{Apps: base.Apps, Kinds: []schemes.Kind{schemes.KindSNUCALRU}, Store: store}},
		{"nobypass", NewHarness(0.05),
			SweepConfig{Apps: base.Apps, Kinds: base.Kinds, NoBypass: true, Store: store}},
	}
	for _, v := range variants {
		before := store.Stats().Hits
		if _, err := v.cfg.Store.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := v.h.Sweep(v.cfg); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if hits := store.Stats().Hits - before; hits != 0 {
			t.Errorf("%s: served %d rows from a differently-configured sweep", v.name, hits)
		}
	}
	// The original configuration still serves.
	before := store.Stats().Hits
	if _, err := NewHarness(0.05).Sweep(base); err != nil {
		t.Fatal(err)
	}
	if hits := store.Stats().Hits - before; hits != 1 {
		t.Errorf("original config served %d rows after variant sweeps, want 1", hits)
	}
}

// TestSweepStoreMix: mix cells memoize too, keyed on the member specs,
// pins, and chip.
func TestSweepStoreMix(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	mix := SweepMix{Name: "m1", Apps: []string{"delaunay", "MIS"}}
	cfg := SweepConfig{Mixes: []SweepMix{mix}, Kinds: []schemes.Kind{schemes.KindJigsaw}, Store: store}
	rows1, err := NewHarness(0.05).Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewHarness(0.05)
	rows2, err := warm.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TraceBuilds() != 0 {
		t.Fatalf("warm mix sweep built %d traces, want 0", warm.TraceBuilds())
	}
	a, b := rows1[0], rows2[0]
	a.WallMS, b.WallMS = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mix row differs served vs computed:\n  %+v\n  %+v", a, b)
	}
	// Same members under a different mix name: the row's identity
	// column (App = mix name) differs, so it must not be served.
	before := store.Stats().Hits
	renamed := cfg
	renamed.Mixes = []SweepMix{{Name: "m2", Apps: mix.Apps}}
	if _, err := NewHarness(0.05).Sweep(renamed); err != nil {
		t.Fatal(err)
	}
	if hits := store.Stats().Hits - before; hits != 0 {
		t.Errorf("renamed mix served %d rows recorded under the old name", hits)
	}
}

// registerPanickingApp registers a spec whose manual pool grouping
// references a struct index that does not exist — the classifier build
// panics inside the simulator exactly like the paper-scheme classifier
// does for lines outside any arena. Restoration is handled by the
// registry snapshot.
func registerPanickingApp(t *testing.T, name string) {
	t.Helper()
	t.Cleanup(workloads.SnapshotRegistry())
	spec, ok := workloads.ByName("delaunay")
	if !ok {
		t.Fatal("builtin delaunay missing")
	}
	spec.Name = name
	spec.ManualPools = [][]int{{len(spec.Structs) + 5}} // out of range: CallpointPools panics
	if err := workloads.Register(spec); err != nil {
		t.Fatal(err)
	}
}

// TestSweepPanicRowCarriesStack: a panicking cell must produce an error
// row that names the panic site (the stack), not just the panic value.
func TestSweepPanicRowCarriesStack(t *testing.T) {
	registerPanickingApp(t, "boom")
	h := NewHarness(0.05)
	rows, err := h.Sweep(SweepConfig{
		Apps:  []string{"boom", "MIS"},
		Kinds: []schemes.Kind{schemes.KindWhirlpool},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	var boom, ok SweepRow
	for _, r := range rows {
		if r.App == "boom" {
			boom = r
		}
		if r.App == "MIS" {
			ok = r
		}
	}
	if boom.Err == "" {
		t.Fatal("panicking cell produced no error row")
	}
	if !strings.Contains(boom.Err, "bad struct index") {
		t.Errorf("error row lost the panic value: %q", boom.Err)
	}
	if !strings.Contains(boom.Err, "CallpointPools") {
		t.Errorf("error row lost the panic site stack: %.200q", boom.Err)
	}
	if ok.Err != "" || ok.Cycles == 0 {
		t.Errorf("healthy cell affected by neighboring panic: %+v", ok)
	}
}

// TestSweepStoreSkipsErrorRows: failed cells are recomputed every time,
// never memoized.
func TestSweepStoreSkipsErrorRows(t *testing.T) {
	registerPanickingApp(t, "boom-store")
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := SweepConfig{Apps: []string{"boom-store"}, Kinds: []schemes.Kind{schemes.KindWhirlpool}, Store: store}
	for round := 0; round < 2; round++ {
		rows, err := NewHarness(0.05).Sweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].Err == "" {
			t.Fatalf("round %d: expected an error row", round)
		}
	}
	st := store.Stats()
	if st.Puts != 0 || st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("error rows leaked into the store: %+v", st)
	}
}

// TestSweepStoreTraceSourcedContent: a trace-sourced app's cell key
// covers the .wtrc *contents*, so re-recording the file at the same
// path invalidates the memoized rows instead of serving stale ones.
func TestSweepStoreTraceSourcedContent(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	rec := NewHarness(0.02)
	path := filepath.Join(t.TempDir(), "rec.wtrc")
	if err := trace.WriteFile(path, rec.App("delaunay").Tr); err != nil {
		t.Fatal(err)
	}
	if err := workloads.Register(workloads.AppSpec{Name: "rec-app", Suite: "trace", TracePath: path}); err != nil {
		t.Fatal(err)
	}
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	var stats SweepStats
	cfg := SweepConfig{Apps: []string{"rec-app"}, Kinds: []schemes.Kind{schemes.KindJigsaw},
		Store: store, Stats: &stats}
	if _, err := NewHarness(0.02).Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHarness(0.02).Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	if stats.Served != 1 {
		t.Fatalf("unchanged recording not served: %+v", stats)
	}

	// Re-record different content at the same path: must recompute.
	if err := trace.WriteFile(path, rec.App("hull").Tr); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHarness(0.02).Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	if stats.Served != 0 || stats.Computed != 1 {
		t.Fatalf("re-recorded trace served stale rows: %+v", stats)
	}
}
