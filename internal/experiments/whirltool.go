package experiments

import (
	"sync"

	"whirlpool/internal/addr"
	"whirlpool/internal/mem"
	"whirlpool/internal/whirltool"
	"whirlpool/internal/workloads"
)

// whirlToolCache memoizes dendrograms per (app, train) so Fig 16's three
// pool counts reuse one profiling run.
type whirlToolCache struct {
	mu   sync.Mutex
	dens map[string]*whirltool.Dendrogram
}

var wtCache = whirlToolCache{dens: make(map[string]*whirltool.Dendrogram)}

// Dendrogram profiles an app with WhirlTool and returns its clustering.
// train profiles the paper's train/small inputs: a shorter run with a
// different seed (different input graph/data, same program).
func (h *Harness) Dendrogram(appName string, train bool) *whirltool.Dendrogram {
	key := appName
	if train {
		key += "/train"
	}
	wtCache.mu.Lock()
	if d, ok := wtCache.dens[key]; ok {
		wtCache.mu.Unlock()
		return d
	}
	wtCache.mu.Unlock()

	spec, ok := workloads.ByName(appName)
	if !ok {
		panic("experiments: unknown app " + appName)
	}
	scale, seed := h.Scale, h.Seed
	if train {
		scale, seed = h.Scale*0.35, h.Seed+0x7121
	}
	w := workloads.Build(spec, scale)
	interval := w.Accesses / 8
	if interval < 10_000 {
		interval = 10_000
	}
	prof := whirltool.NewProfiler(
		func(l addr.Line) mem.Callpoint { return w.Space.CallpointOfLine(l) },
		whirltool.ProfilerConfig{IntervalAccesses: interval},
	)
	st := w.Stream(seed)
	for {
		a, ok := st.Next()
		if !ok {
			break
		}
		prof.Access(a.Line)
	}
	d := whirltool.Analyze(prof.Finish())
	wtCache.mu.Lock()
	wtCache.dens[key] = d
	wtCache.mu.Unlock()
	return d
}

// WhirlToolGrouping returns the k-pool classification as struct-index
// groups (callpoint i+1 tags structure i).
func (h *Harness) WhirlToolGrouping(appName string, k int, train bool) [][]int {
	d := h.Dendrogram(appName, train)
	pools := d.Pools(k)
	out := make([][]int, 0, len(pools))
	for _, group := range pools {
		g := make([]int, 0, len(group))
		for _, cp := range group {
			g = append(g, int(cp)-1)
		}
		out = append(out, g)
	}
	return out
}
