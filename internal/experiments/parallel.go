package experiments

import (
	"whirlpool/internal/addr"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
	"whirlpool/internal/paws"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/trace"
)

// ParallelVariant is one bar of Fig 13.
type ParallelVariant int

// The four evaluated combinations.
const (
	VariantSNUCA         ParallelVariant = iota // S-NUCA + conventional stealing
	VariantJigsaw                               // Jigsaw + conventional stealing
	VariantJigsawPaWS                           // Jigsaw + PaWS
	VariantWhirlpoolPaWS                        // Whirlpool + PaWS
)

// String returns the figure label.
func (v ParallelVariant) String() string {
	switch v {
	case VariantSNUCA:
		return "SNUCA"
	case VariantJigsaw:
		return "Jigsaw"
	case VariantJigsawPaWS:
		return "J+PaWS"
	case VariantWhirlpoolPaWS:
		return "W+PaWS"
	}
	return "?"
}

// ParallelVariants lists Fig 13's bars in order.
func ParallelVariants() []ParallelVariant {
	return []ParallelVariant{VariantSNUCA, VariantJigsaw, VariantJigsawPaWS, VariantWhirlpoolPaWS}
}

// parallelTraces caches the filtered per-core traces for one (app,
// policy) pair.
func (h *Harness) parallelTraces(app *paws.App, policy paws.Policy, mesh *noc.Mesh) []trace.Reader {
	sched := paws.Run(app, len(mesh.Cores), policy, mesh, h.Seed)
	out := make([]trace.Reader, len(sched.Streams))
	for c, accs := range sched.Streams {
		out[c] = trace.FilterPrivate(&trace.SliceStream{Accs: accs})
	}
	return out
}

// RunParallel runs one parallel app under one variant on the 16-core chip
// (Fig 13).
func (h *Harness) RunParallel(appName string, variant ParallelVariant) *sim.Result {
	spec, ok := paws.SpecByName(appName)
	if !ok {
		panic("experiments: unknown parallel app " + appName)
	}
	chip := noc.SixteenCoreChip()
	app := paws.Build(spec, chip.NCores(), h.Seed)
	// Parallel runs complete in far fewer wall cycles (the work splits 16
	// ways), so the runtime must reconfigure proportionally faster to see
	// the same number of adaptation steps as the paper's long runs.
	reconfig := h.ReconfigCycles / 4

	policy := paws.Conventional
	if variant == VariantJigsawPaWS || variant == VariantWhirlpoolPaWS {
		policy = paws.PaWS
	}
	traces := h.parallelTraces(app, policy, chip.Mesh)

	meter := &energy.Meter{}
	var l llc.LLC
	switch variant {
	case VariantSNUCA:
		l = schemes.Build(schemes.KindSNUCALRU, schemes.Options{Chip: chip, Meter: meter})
	case VariantJigsaw, VariantJigsawPaWS:
		// Work-stealing makes most pages process-shared, so baseline
		// Jigsaw sees one process VC (Sec 3.4).
		l = schemes.Build(schemes.KindJigsaw, schemes.Options{
			Chip: chip, Meter: meter,
			JigsawClassify: llc.ProcessShared,
			ReconfigCycles: reconfig,
		})
	case VariantWhirlpoolPaWS:
		// One process-shared VC per partition pool, placed near its users.
		poolOf := func(line addr.Line) llc.VCKey {
			return llc.VCKey{Core: llc.SharedVC, Pool: app.PoolOfLine(line)}
		}
		l = schemes.Build(schemes.KindWhirlpool, schemes.Options{
			Chip: chip, Meter: meter,
			WhirlpoolClassify: func(core int, line addr.Line) llc.VCKey { return poolOf(line) },
			ReconfigCycles:    reconfig,
		})
	}
	return sim.Run(sim.Config{
		LLC:    l,
		Meter:  meter,
		Traces: traces,
		Warmup: true,
	})
}
