package experiments

import (
	"testing"

	"whirlpool/internal/schemes"
)

// The harness-level bench trajectory (make bench-json): what one app
// costs to load cold (generate + private-filter) vs warm (streamed from
// the on-disk .wtrc cache), and what one simulation pass costs once the
// trace is resident.

// BenchmarkHarnessTraceColdLoad measures a cold trace load: fresh
// harness, no disk cache — the price every CLI invocation used to pay.
func BenchmarkHarnessTraceColdLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := NewHarness(0.05)
		if _, err := h.AppErr("delaunay"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessTraceWarmLoad measures a warm trace load: fresh
// harness streaming the trace back from a warm on-disk cache.
func BenchmarkHarnessTraceWarmLoad(b *testing.B) {
	dir := b.TempDir()
	warm := NewHarness(0.05)
	warm.CacheDir = dir
	if _, err := warm.AppErr("delaunay"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHarness(0.05)
		h.CacheDir = dir
		if _, err := h.AppErr("delaunay"); err != nil {
			b.Fatal(err)
		}
		if s := h.CacheStats(); s.DiskHits != 1 {
			b.Fatalf("cache miss during warm bench: %+v", s)
		}
	}
}

// BenchmarkSimRunDelaunay measures one sim.Run replay (S-NUCA LRU, the
// cheapest scheme) against a resident trace: the per-scheme marginal
// cost of a sweep cell.
func BenchmarkSimRunDelaunay(b *testing.B) {
	h := NewHarness(0.05)
	h.App("delaunay") // build outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := h.RunSingle("delaunay", schemes.KindSNUCALRU, RunOptions{})
		if r.Demand == 0 {
			b.Fatal("empty run")
		}
	}
}
