package experiments

import (
	"testing"

	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
)

// The harness-level bench trajectory (make bench-json): what one app
// costs to load cold (generate + private-filter) vs warm (streamed from
// the on-disk .wtrc cache), and what one simulation pass costs once the
// trace is resident.

// BenchmarkHarnessTraceColdLoad measures a cold trace load: fresh
// harness, no disk cache — the price every CLI invocation used to pay.
func BenchmarkHarnessTraceColdLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := NewHarness(0.05)
		if _, err := h.AppErr("delaunay"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessTraceWarmLoad measures a warm trace load: fresh
// harness streaming the trace back from a warm on-disk cache.
func BenchmarkHarnessTraceWarmLoad(b *testing.B) {
	dir := b.TempDir()
	warm := NewHarness(0.05)
	warm.CacheDir = dir
	if _, err := warm.AppErr("delaunay"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHarness(0.05)
		h.CacheDir = dir
		if _, err := h.AppErr("delaunay"); err != nil {
			b.Fatal(err)
		}
		if s := h.CacheStats(); s.DiskHits != 1 {
			b.Fatalf("cache miss during warm bench: %+v", s)
		}
	}
}

// BenchmarkSimRunDelaunay measures one sim.Run replay (S-NUCA LRU, the
// cheapest scheme) against a resident trace: the per-scheme marginal
// cost of a sweep cell.
func BenchmarkSimRunDelaunay(b *testing.B) {
	h := NewHarness(0.05)
	h.App("delaunay") // build outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := h.RunSingle("delaunay", schemes.KindSNUCALRU, RunOptions{})
		if r.Demand == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSimRunnerReuseHarness measures the harness-level per-cell
// cost when a sweep worker's Runner is threaded through RunSingle: the
// trace is resident and the replay arenas are reused, so each iteration
// pays scheme construction + replay only.
func BenchmarkSimRunnerReuseHarness(b *testing.B) {
	h := NewHarness(0.05)
	h.App("delaunay")
	runner := sim.NewRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := h.RunSingle("delaunay", schemes.KindSNUCALRU, RunOptions{Runner: runner})
		if r.Demand == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSweepBatchedSameApp measures the batched sweep shape the
// scheduler optimizes for: every scheme of one app on one worker, the
// app's trace built once outside the timer, each cell riding the
// worker's warm Runner and the shared trace reader.
func BenchmarkSweepBatchedSameApp(b *testing.B) {
	h := NewHarness(0.05)
	h.App("delaunay")
	kinds := []schemes.Kind{schemes.KindSNUCALRU, schemes.KindSNUCADRRIP, schemes.KindAwasthi}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := h.Sweep(SweepConfig{Apps: []string{"delaunay"}, Kinds: kinds, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
	}
}
