// Package experiments reproduces every table and figure in the paper's
// evaluation. The Harness builds workloads, filters their traces through
// the private cache levels once, and replays them against any scheme;
// runner functions (fig*.go) regenerate each figure's rows.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"whirlpool/internal/addr"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/mem"
	"whirlpool/internal/noc"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/trace"
	"whirlpool/internal/workloads"
)

// DefaultReconfigCycles is the scaled-down analogue of the paper's 25ms
// reconfiguration period (see docs/design.md: runs are ~10^8 cycles, so a 2M
// cycle period yields a comparable number of reconfigurations per run).
const DefaultReconfigCycles = 2_000_000

// DefaultSeed drives workload generation when no seed is configured;
// every published number in the repo uses it.
const DefaultSeed = 0xC0FFEE

// Harness caches built workloads and filtered traces so each app is
// generated and private-filtered once per process, then replayed against
// every scheme. The cache is a per-app once: concurrent callers (the
// sweep worker pool) build distinct apps in parallel, but each app's
// expensive trace.FilterPrivate pass runs exactly once.
//
// With CacheDir set, the harness additionally keeps a content-addressed
// on-disk trace cache: each generated trace is written as a .wtrc file
// keyed by the app-spec digest × scale × seed × reconfig, and later
// harnesses (other processes, parallel sweep reruns) stream it back
// instead of regenerating. The key covers the full spec, so a spec-file
// edit or codec bump never resurrects a stale trace.
type Harness struct {
	// Scale multiplies every app's access count (1.0 = full runs).
	Scale float64
	// ReconfigCycles is the D-NUCA runtime period.
	ReconfigCycles uint64
	// Seed drives all workload generation.
	Seed uint64
	// CacheDir, when non-empty, enables the on-disk trace cache. Set it
	// before running, or concurrently via SetCacheDir.
	CacheDir string

	mu        sync.Mutex
	cache     map[string]*appEntry
	builds    atomic.Int64
	diskHits  atomic.Int64
	writeErrs atomic.Int64
}

// SetCacheDir updates CacheDir safely while runs may be in flight
// (whirlpool.SetTraceCacheDir retargets live harnesses through it).
func (h *Harness) SetCacheDir(dir string) {
	h.mu.Lock()
	h.CacheDir = dir
	h.mu.Unlock()
}

// cacheDir reads CacheDir under the same lock.
func (h *Harness) cacheDir() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.CacheDir
}

type appEntry struct {
	once sync.Once
	at   *AppTrace
	err  error
}

// AppTrace is a built app plus its LLC-level trace. Tr is a TraceReader
// rather than a concrete trace: generated apps hold an eager in-memory
// LLCTrace, while traces resolved from .wtrc files (recorded apps, disk
// cache hits) stay memory-mapped and decode lazily per cursor — the
// zero-copy path. Mappings live as long as the harness caches the entry
// (process lifetime), so they are never explicitly closed.
type AppTrace struct {
	W  *workloads.Workload
	Tr trace.TraceReader
}

// NewHarness creates a harness at the given workload scale.
func NewHarness(scale float64) *Harness {
	return &Harness{
		Scale:          scale,
		ReconfigCycles: DefaultReconfigCycles,
		Seed:           DefaultSeed,
		cache:          make(map[string]*appEntry),
	}
}

// Invalidate drops the cached trace for each named app, so the next run
// rebuilds it from the current workload registry. Call it after
// registering a spec that redefines an already-run app; harmless for
// names never run (or never known) here. Runs already in flight keep
// the trace they resolved.
func (h *Harness) Invalidate(names ...string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, n := range names {
		delete(h.cache, n)
	}
}

// AppErr returns the cached trace for an app, building it on first use.
// Unknown names (not built-in and not registered) return an error
// without consuming the entry, so an app registered later still builds.
// The spec is resolved at first build and the trace cached for the
// harness's lifetime: register spec files before running (the CLIs do).
func (h *Harness) AppErr(name string) (*AppTrace, error) {
	spec, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown app %q", name)
	}
	h.mu.Lock()
	e := h.cache[name]
	if e == nil {
		e = &appEntry{}
		h.cache[name] = e
	}
	h.mu.Unlock()
	e.once.Do(func() {
		e.at, e.err = h.buildAppTrace(spec)
	})
	return e.at, e.err
}

// buildAppTrace resolves one app's LLC trace: from its recorded .wtrc
// file (trace-sourced spec apps), from the on-disk trace cache, or by
// generating and private-filtering the synthetic stream — writing the
// result back to the cache when one is configured.
func (h *Harness) buildAppTrace(spec workloads.AppSpec) (*AppTrace, error) {
	w := workloads.Build(spec, h.Scale)
	if spec.TracePath != "" {
		// Externally recorded app: the .wtrc file IS the trace; scale
		// and seed do not apply, and the disk cache would be redundant.
		// The file is validated up front (header + CRC) but its columns
		// stay mapped and decode lazily per replay cursor.
		tr, err := trace.OpenMapped(spec.TracePath)
		if err != nil {
			return nil, fmt.Errorf("experiments: app %q: %w", spec.Name, err)
		}
		return &AppTrace{W: w, Tr: tr}, nil
	}
	var cachePath string
	if dir := h.cacheDir(); dir != "" {
		cachePath = filepath.Join(dir, traceCacheName(spec, h.Scale, h.Seed, h.ReconfigCycles))
		if tr, err := trace.OpenMapped(cachePath); err == nil {
			h.diskHits.Add(1)
			return &AppTrace{W: w, Tr: tr}, nil
		}
		// Miss, corrupt entry, or unreadable dir: regenerate (and try to
		// overwrite below — a corrupt file heals itself).
	}
	h.builds.Add(1)
	tr := trace.FilterPrivate(w.Stream(h.Seed))
	if cachePath != "" {
		// The trace is already built, so a cache write failure (read-only
		// dir, full disk) degrades to uncached operation instead of
		// failing the run; CacheStats.WriteErrors makes it observable.
		err := os.MkdirAll(filepath.Dir(cachePath), 0o777)
		if err == nil {
			err = trace.WriteFile(cachePath, tr)
		}
		if err != nil {
			h.writeErrs.Add(1)
		}
	}
	return &AppTrace{W: w, Tr: tr}, nil
}

// traceCacheName is the content-addressed cache file name for one
// (spec, scale, seed, reconfig) combination. The digest covers the full
// app spec (JSON) and the .wtrc format version; the app name prefix is
// cosmetic, for humans listing the cache directory. Reconfig does not
// influence trace content (filtering stops at the private levels) but
// stays in the key for parity with the in-memory harness key — runs
// differing only in reconfig period duplicate identical entries.
func traceCacheName(spec workloads.AppSpec, scale float64, seed, reconfig uint64) string {
	j, _ := json.Marshal(spec)
	d := sha256.New()
	fmt.Fprintf(d, "wtrc%d|scale=%g|seed=%d|reconfig=%d|", trace.FormatVersion, scale, seed, reconfig)
	d.Write(j)
	return fmt.Sprintf("%s-%s.wtrc", spec.Name, hex.EncodeToString(d.Sum(nil))[:24])
}

// CacheStats reports trace provenance counters: Builds counts traces
// generated + private-filtered in this process, DiskHits counts traces
// streamed from the on-disk cache instead, and WriteErrors counts
// cache write-backs that failed (the run continued uncached). A
// warm-cache rerun shows Builds == 0.
type CacheStats struct {
	Builds      int64
	DiskHits    int64
	WriteErrors int64
}

// CacheStats returns the harness's trace provenance counters.
func (h *Harness) CacheStats() CacheStats {
	return CacheStats{
		Builds:      h.builds.Load(),
		DiskHits:    h.diskHits.Load(),
		WriteErrors: h.writeErrs.Load(),
	}
}

// App returns the cached trace for an app, panicking on unknown names
// (the figure runners all use vetted built-in names).
func (h *Harness) App(name string) *AppTrace {
	at, err := h.AppErr(name)
	if err != nil {
		panic(err.Error())
	}
	return at
}

// TraceBuilds reports how many app traces this harness has built — the
// sweep tests assert that trace generation is cached per app, not
// repeated per (app, scheme).
func (h *Harness) TraceBuilds() int64 { return h.builds.Load() }

// poolClassifier builds the Whirlpool classifier for one app: line →
// callpoint → pool (per grouping), giving each pool a per-core VC.
// Trace-sourced apps have no structures (and their lines live in no
// arena of the simulated space), so they classify as one pool per core.
func poolClassifier(w *workloads.Workload, grouping [][]int) llc.Classifier {
	if len(w.Structs) == 0 {
		return func(core int, line addr.Line) llc.VCKey {
			return llc.VCKey{Core: int16(core)}
		}
	}
	cpPools := w.CallpointPools(grouping)
	space := w.Space
	return func(core int, line addr.Line) llc.VCKey {
		return llc.VCKey{
			Core: int16(core),
			Pool: cpPools[space.CallpointOfLine(line)],
		}
	}
}

// RunOptions tweak a single run.
type RunOptions struct {
	// Grouping overrides the pool classification (nil = the app's manual
	// grouping from Table 2, or one pool if never ported).
	Grouping [][]int
	// NoBypass disables VC bypassing (the Fig 21/22 ablation).
	NoBypass bool
	// NoWarmup skips the warm-up pass (time-series figures that want to
	// show the adaptation transient set this).
	NoWarmup bool
	// Chip overrides the default 4-core chip.
	Chip *noc.Chip
	// OnAccess / OnTick / PoolOf pass through to the simulator.
	OnAccess func(now uint64, core int, a trace.LLCAccess, lat uint64, out llc.Outcome)
	OnTick   func(now uint64)
	PerPool  bool // enable per-structure pool counters
	// LLCOverride, when set, is used instead of building kind (for
	// ablation variants of Jigsaw/Whirlpool).
	LLCOverride func(chip *noc.Chip, m *energy.Meter) llc.LLC
	// Runner, when set, supplies the simulation arenas. Sweep workers
	// pass their per-goroutine Runner so consecutive cells reuse replay
	// state; nil means a fresh run (identical results, more allocation).
	Runner *sim.Runner
}

// runOn dispatches through the optional Runner.
func runOn(r *sim.Runner, cfg sim.Config) *sim.Result {
	if r != nil {
		return r.Run(cfg)
	}
	return sim.Run(cfg)
}

// RunSingle runs one app (on core 0 of a 4-core chip, like the paper's
// dt example) under one scheme.
func (h *Harness) RunSingle(app string, kind schemes.Kind, opt RunOptions) *sim.Result {
	at := h.App(app)
	chip := opt.Chip
	if chip == nil {
		chip = noc.FourCoreChip()
	}
	grouping := opt.Grouping
	if grouping == nil {
		grouping = at.W.ManualGrouping()
	}
	meter := &energy.Meter{}
	var l llc.LLC
	if opt.LLCOverride != nil {
		l = opt.LLCOverride(chip, meter)
	} else {
		l = schemes.Build(kind, schemes.Options{
			Chip:              chip,
			Meter:             meter,
			JigsawClassify:    llc.ThreadPrivate,
			WhirlpoolClassify: poolClassifier(at.W, grouping),
			ReconfigCycles:    h.ReconfigCycles,
			JigsawBypass:      !opt.NoBypass,
			WhirlpoolBypass:   !opt.NoBypass,
		})
	}
	traces := make([]trace.Reader, chip.NCores())
	traces[0] = at.Tr
	cfg := sim.Config{
		LLC:      l,
		Meter:    meter,
		Traces:   traces,
		OnAccess: opt.OnAccess,
		OnTick:   opt.OnTick,
		Warmup:   !opt.NoWarmup,
	}
	if opt.PerPool {
		space := at.W.Space
		cfg.PoolOf = func(line addr.Line) mem.PoolID {
			return mem.PoolID(space.CallpointOfLine(line))
		}
		cfg.NumPools = len(at.W.Structs) + 1
	}
	return runOn(opt.Runner, cfg)
}

// mixLineOffset separates per-core address spaces in multi-programmed
// mixes (apps are independent processes; shared arrays must not alias).
func mixLineOffset(core int) addr.Line {
	return addr.Line(uint64(core+1) << 44)
}

// RunMix runs one app per core under the fixed-work methodology
// (Appendix A): every app keeps running until all finish one pass; stats
// freeze at each app's first completion. App i runs on core i; use
// RunMixPinned to place apps on specific cores.
func (h *Harness) RunMix(apps []string, kind schemes.Kind, chip *noc.Chip, noBypass bool) *sim.Result {
	return h.RunMixPinned(apps, nil, kind, chip, noBypass)
}

// RunMixPinned is RunMix with explicit core placement: app i runs on
// core pins[i]. Pins must be distinct and within the chip's core count;
// nil means the identity placement (app i on core i). Per-core results
// land at the pinned core's index in Result.Cores.
func (h *Harness) RunMixPinned(apps []string, pins []int, kind schemes.Kind, chip *noc.Chip, noBypass bool) *sim.Result {
	return h.runMixPinned(apps, pins, kind, chip, noBypass, nil)
}

// runMixPinned is RunMixPinned with an optional Runner supplying the
// simulation arenas (the sweep worker path).
func (h *Harness) runMixPinned(apps []string, pins []int, kind schemes.Kind, chip *noc.Chip, noBypass bool, runner *sim.Runner) *sim.Result {
	if len(apps) > chip.NCores() {
		panic("experiments: more apps than cores")
	}
	if pins == nil {
		pins = make([]int, len(apps))
		for i := range pins {
			pins[i] = i
		}
	}
	if len(pins) != len(apps) {
		panic(fmt.Sprintf("experiments: %d pins for %d apps", len(pins), len(apps)))
	}
	meter := &energy.Meter{}

	// Whirlpool classification across the mix: decode the core's app from
	// the line offset.
	type appCtx struct {
		w       *workloads.Workload
		cpPools map[mem.Callpoint]mem.PoolID
	}
	ctxs := make([]appCtx, chip.NCores())
	traces := make([]trace.Reader, chip.NCores())
	for i, name := range apps {
		c := pins[i]
		if c < 0 || c >= chip.NCores() {
			panic(fmt.Sprintf("experiments: pin %d outside the chip's %d cores", c, chip.NCores()))
		}
		if traces[c] != nil {
			panic(fmt.Sprintf("experiments: two apps pinned to core %d", c))
		}
		at := h.App(name)
		ctxs[c] = appCtx{w: at.W, cpPools: at.W.CallpointPools(at.W.ManualGrouping())}
		traces[c] = trace.Offset(at.Tr, mixLineOffset(c))
	}
	whirlpoolClassify := func(core int, line addr.Line) llc.VCKey {
		// Trace-sourced apps (no structures) fall into the default
		// one-VC-per-core arm, like idle cores.
		if core >= len(ctxs) || ctxs[core].w == nil || len(ctxs[core].w.Structs) == 0 {
			return llc.VCKey{Core: int16(core)}
		}
		orig := line - mixLineOffset(core)
		ctx := &ctxs[core]
		return llc.VCKey{
			Core: int16(core),
			Pool: ctx.cpPools[ctx.w.Space.CallpointOfLine(orig)],
		}
	}
	l := schemes.Build(kind, schemes.Options{
		Chip:              chip,
		Meter:             meter,
		JigsawClassify:    llc.ThreadPrivate,
		WhirlpoolClassify: whirlpoolClassify,
		ReconfigCycles:    h.ReconfigCycles,
		JigsawBypass:      !noBypass,
		WhirlpoolBypass:   !noBypass,
	})
	return runOn(runner, sim.Config{
		LLC:    l,
		Meter:  meter,
		Traces: traces,
		Loop:   true,
		Warmup: true,
	})
}

// poolClassifierForTest exposes the classifier for white-box debugging.
func poolClassifierForTest(at *AppTrace) llc.Classifier {
	return poolClassifier(at.W, at.W.ManualGrouping())
}

// NewSNUCAForDebug exposes an S-NUCA build for white-box tests.
func NewSNUCAForDebug(chip *noc.Chip, m *energy.Meter) llc.LLC {
	return schemes.Build(schemes.KindSNUCALRU, schemes.Options{Chip: chip, Meter: m})
}
