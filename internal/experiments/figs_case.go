package experiments

import (
	"fmt"
	"strings"

	"whirlpool/internal/addr"
	"whirlpool/internal/energy"
	"whirlpool/internal/jigsaw"
	"whirlpool/internal/llc"
	"whirlpool/internal/mrc"
	"whirlpool/internal/noc"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/trace"
)

// Fig02 reproduces dt's working-set and access-pattern breakdown: pool
// sizes and per-pool LLC access intensity (Fig 2).
func (h *Harness) Fig02() *Table {
	at := h.App("delaunay")
	r := h.RunSingle("delaunay", schemes.KindWhirlpool, RunOptions{PerPool: true})
	t := &Table{
		Title: "Fig 2: dt working set and access breakdown",
		Cols:  []string{"pool", "MB", "LLC APKI", "APKI/MB"},
	}
	instrK := float64(r.Instrs) / 1000
	for i, s := range at.W.Structs {
		apki := float64(r.PoolAccesses[i+1]) / instrK
		mb := float64(s.Spec.Bytes) / float64(addr.MB)
		t.AddRow(s.Spec.Name, F(mb, 2), F(apki, 2), F(apki/mb, 2))
	}
	t.AddNote("paper: 0.5/1.5/4 MB pools, ~even access split, 8x intensity spread")
	return t
}

// Fig05 renders the dt placement maps for S-NUCA, Jigsaw, and Whirlpool
// (Figs 3-5): which VC owns each bank of the 5x5 mesh.
func (h *Harness) Fig05() string {
	var b strings.Builder
	b.WriteString("== Figs 3-5: dt data placement across the 25-bank mesh ==\n")
	b.WriteString("(S-NUCA hashes lines over all banks; shown as '*' everywhere)\n\n")

	renderMap := func(title string, owners []int, labels []string) {
		fmt.Fprintf(&b, "%s\n", title)
		k := 5
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				o := owners[y*k+x]
				cell := "."
				if o >= 0 && o < len(labels) {
					cell = labels[o]
				}
				fmt.Fprintf(&b, " %s", cell)
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	// S-NUCA: every bank holds a hash slice of everything.
	snuca := make([]int, 25)
	for i := range snuca {
		snuca[i] = 0
	}
	renderMap("S-NUCA (Fig 3): data spread over every bank", snuca, []string{"*"})

	run := func(whirl bool) *jigsaw.Dnuca {
		at := h.App("delaunay")
		var d *jigsaw.Dnuca
		classify := llc.ThreadPrivate
		name := "Jigsaw"
		if whirl {
			classify = poolClassifier(at.W, at.W.ManualGrouping())
			name = "Whirlpool"
		}
		h.RunSingle("delaunay", schemes.KindWhirlpool, RunOptions{
			LLCOverride: func(chip *noc.Chip, m *energy.Meter) llc.LLC {
				d = jigsaw.New(jigsaw.Config{
					Chip: chip, Meter: m,
					Classify:       classify,
					SchemeName:     name,
					BypassEnabled:  true,
					ReconfigCycles: h.ReconfigCycles,
				})
				return d
			},
		})
		return d
	}
	jig := run(false)
	renderMap("Jigsaw (Fig 4): one VC packed near the core ('J'; '.' unused)",
		jig.BankOwnerMap(), []string{"J"})

	whirl := run(true)
	at := h.App("delaunay")
	labels := make([]string, len(whirl.VCs()))
	legend := make([]string, 0, len(labels))
	for i, v := range whirl.VCs() {
		name := "?"
		if int(v.Key.Pool) >= 1 && int(v.Key.Pool) <= len(at.W.Structs) {
			name = at.W.Structs[v.Key.Pool-1].Spec.Name
		}
		labels[i] = fmt.Sprintf("%d", v.Key.Pool)
		legend = append(legend, fmt.Sprintf("%s=%s", labels[i], name))
	}
	renderMap("Whirlpool (Fig 5): per-pool VCs, intense pools closest ("+
		strings.Join(legend, ", ")+"; '.' unused)", whirl.BankOwnerMap(), labels)
	return b.String()
}

// Fig06 reproduces lbm's alternating per-pool access pattern: per-pool
// APKI over time windows (Fig 6).
func (h *Harness) Fig06() *Table {
	at := h.App("lbm")
	t := &Table{
		Title: "Fig 6: lbm per-pool LLC APKI over time (alternating phases)",
		Cols:  []string{"window", "grid1 APKI", "grid2 APKI", "dominant"},
	}
	const windows = 12
	counts := make([][2]uint64, windows)
	instrs := make([]uint64, windows)
	total := at.Tr.Stats().Instrs
	var instrSoFar uint64
	g1 := addr.LineOf(at.W.Structs[0].Base)
	g1end := g1 + addr.Line(at.W.Structs[0].Lines)
	h.RunSingle("lbm", schemes.KindWhirlpool, RunOptions{
		NoWarmup: true,
		OnAccess: func(now uint64, core int, a trace.LLCAccess, lat uint64, out llc.Outcome) {
			instrSoFar += uint64(a.Gap)
			w := int(instrSoFar * windows / (total + 1))
			if w >= windows {
				w = windows - 1
			}
			instrs[w] += uint64(a.Gap)
			if a.Line >= g1 && a.Line < g1end {
				counts[w][0]++
			} else {
				counts[w][1]++
			}
		},
	})
	flips := 0
	last := -1
	for w := 0; w < windows; w++ {
		ik := float64(instrs[w]) / 1000
		if ik == 0 {
			continue
		}
		a1 := float64(counts[w][0]) / ik
		a2 := float64(counts[w][1]) / ik
		dom := "grid1"
		di := 0
		if a2 > a1 {
			dom, di = "grid2", 1
		}
		if last >= 0 && di != last {
			flips++
		}
		last = di
		t.AddRow(fmt.Sprintf("%d", w), F(a1, 1), F(a2, 1), dom)
	}
	t.AddNote("dominance flips %d times: the grids swap roles each timestep", flips)
	return t
}

// curveTable renders per-pool miss-rate curves (MPKI vs LLC MB) and the
// derived latency curves for an app: Fig 8 (dt) and Fig 9 (mis).
func (h *Harness) curveTable(app string, figure string) *Table {
	at := h.App(app)
	chip := noc.FourCoreChip()
	// Profile each pool's LLC-level stream exactly.
	profs := make([]*poolCurve, len(at.W.Structs))
	for i := range profs {
		profs[i] = newPoolCurve(chip)
	}
	for cur := at.Tr.NewCursor(); ; {
		a, ok := cur.Next()
		if !ok {
			break
		}
		if a.Writeback {
			continue
		}
		cp := int(at.W.Space.CallpointOfLine(a.Line)) - 1
		if cp >= 0 && cp < len(profs) {
			profs[cp].add(a.Line)
		}
	}
	t := &Table{
		Title: figure,
		Cols:  []string{"LLC MB"},
	}
	for _, s := range at.W.Structs {
		t.Cols = append(t.Cols, s.Spec.Name+" MPKI")
	}
	instrK := float64(at.Tr.Stats().Instrs) / 1000
	sizes := []float64{0, 1, 2, 3, 4, 5, 6, 8, 10, 12}
	for _, mb := range sizes {
		row := []string{F(mb, 0)}
		for i := range profs {
			misses := profs[i].at(uint64(mb * float64(addr.MB) / addr.LineBytes))
			row = append(row, F(misses/instrK, 2))
		}
		t.AddRow(row...)
	}
	return t
}

// poolCurve wraps an exact stack-distance profile over the LLC domain.
type poolCurve struct {
	prof *mrc.Profiler
}

func newPoolCurve(chip *noc.Chip) *poolCurve {
	gran := chip.BankLines() / 4
	buckets := int(chip.TotalLines() / gran)
	return &poolCurve{prof: mrc.NewProfiler(gran, buckets, 0)}
}

func (p *poolCurve) add(l addr.Line) { p.prof.Access(l) }

func (p *poolCurve) at(lines uint64) float64 {
	return p.prof.Curve().At(lines)
}

// Fig08 reproduces dt's per-pool miss-rate curves (Fig 8a).
func (h *Harness) Fig08() *Table {
	t := h.curveTable("delaunay", "Fig 8a: dt per-pool LLC miss-rate curves")
	t.AddNote("each pool's MPKI falls to ~0 once its footprint fits (0.5/1.5/4 MB)")
	return t
}

// Fig09 reproduces mis's curves (Fig 9a): vertices cache well, edges
// stream at every size — the bypass case.
func (h *Harness) Fig09() *Table {
	t := h.curveTable("MIS", "Fig 9a: mis per-pool LLC miss-rate curves")
	t.AddNote("edges are flat (streaming): Whirlpool bypasses them and gives the cache to vertices")
	return t
}

// SchemeBreakdown reproduces the per-app six-scheme breakdown figures:
// Fig 10 (mis), Fig 19 (cactus), Fig 20 (SA). Values are normalized to
// Whirlpool = 1.0 for time/energy; accesses are absolute APKI.
func (h *Harness) SchemeBreakdown(app, figure string) *Table {
	t := &Table{
		Title: figure,
		Cols: []string{"scheme", "exec time", "DME total", "net", "bank", "mem",
			"LLC APKI", "hit%", "miss%", "byp%"},
	}
	results := make(map[schemes.Kind]*sim.Result)
	at := h.App(app)
	for _, k := range schemes.PaperKinds() {
		opt := RunOptions{}
		if k == schemes.KindWhirlpool && len(at.W.Spec.ManualPools) == 0 {
			// Apps the paper never ported manually (e.g., SA) get their
			// pools from WhirlTool, as in Sec 4.5.
			opt.Grouping = h.WhirlToolGrouping(app, 3, true)
		}
		results[k] = h.RunSingle(app, k, opt)
	}
	base := results[schemes.KindWhirlpool]
	for _, k := range schemes.PaperKinds() {
		r := results[k]
		d := float64(r.Demand)
		t.AddRow(k.String(),
			F(float64(r.Cycles)/float64(base.Cycles), 3),
			F(r.Energy.Total()/base.Energy.Total(), 3),
			F(r.Energy.NetworkPJ/base.Energy.Total(), 3),
			F(r.Energy.BankPJ/base.Energy.Total(), 3),
			F(r.Energy.MemoryPJ/base.Energy.Total(), 3),
			F(r.TotalAccessesAPKI(), 1),
			F(100*float64(r.Hits)/d, 1),
			F(100*float64(r.Misses)/d, 1),
			F(100*float64(r.Bypasses)/d, 1),
		)
	}
	t.AddNote("time and energy normalized to Whirlpool = 1.0")
	return t
}

// Fig10 is mis's breakdown.
func (h *Harness) Fig10() *Table {
	return h.SchemeBreakdown("MIS", "Fig 10: mis performance/energy/access breakdown")
}

// Fig19 is cactus's breakdown.
func (h *Harness) Fig19() *Table {
	return h.SchemeBreakdown("cactus", "Fig 19: cactus performance/energy/access breakdown")
}

// Fig20 is SA's breakdown.
func (h *Harness) Fig20() *Table {
	return h.SchemeBreakdown("SA", "Fig 20: SA performance/energy/access breakdown")
}

// Fig11 samples refine's per-pool allocations over time (Fig 11a),
// showing the runtime adapting to irregular phase changes.
func (h *Harness) Fig11() *Table {
	at := h.App("refine")
	var d *jigsaw.Dnuca
	t := &Table{
		Title: "Fig 11a: refine cache allocations over time (MB, avg hops)",
	}
	t.Cols = []string{"Mcycles"}
	for _, s := range at.W.Structs {
		t.Cols = append(t.Cols, s.Spec.Name)
	}
	var lastSample uint64
	h.RunSingle("refine", schemes.KindWhirlpool, RunOptions{
		NoWarmup: true,
		LLCOverride: func(chip *noc.Chip, m *energy.Meter) llc.LLC {
			d = jigsaw.New(jigsaw.Config{
				Chip: chip, Meter: m,
				Classify:       poolClassifier(at.W, [][]int{{0}, {1}, {2}}),
				SchemeName:     "Whirlpool",
				BypassEnabled:  true,
				ReconfigCycles: h.ReconfigCycles,
			})
			return d
		},
		OnTick: func(now uint64) {
			if now-lastSample < h.ReconfigCycles {
				return
			}
			lastSample = now
			allocs := d.Allocations()
			dist := d.AvgAllocDistance()
			row := []string{F(float64(now)/1e6, 0)}
			byPool := make(map[int]string)
			for i, v := range d.VCs() {
				mb := float64(allocs[i]) * addr.LineBytes / float64(addr.MB)
				byPool[int(v.Key.Pool)] = fmt.Sprintf("%.1fMB@%.1f", mb, dist[i])
			}
			for p := 1; p <= len(at.W.Structs); p++ {
				cell, ok := byPool[p]
				if !ok {
					cell = "-"
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		},
	})
	t.AddNote("allocations and placement distance shift during refine's irregular phases")
	return t
}

// Fig13 runs the six parallel apps under the four variants (Fig 13):
// execution time and data-movement energy normalized to S-NUCA.
func (h *Harness) Fig13(apps []string) *Table {
	t := &Table{
		Title: "Fig 13: parallel apps on 16 cores (norm. to S-NUCA)",
		Cols:  []string{"app", "variant", "exec time", "DME", "LLC APKI"},
	}
	for _, app := range apps {
		var base *sim.Result
		for _, v := range ParallelVariants() {
			r := h.RunParallel(app, v)
			if v == VariantSNUCA {
				base = r
			}
			t.AddRow(app, v.String(),
				F(float64(r.Cycles)/float64(base.Cycles), 3),
				F(r.Energy.Total()/base.Energy.Total(), 3),
				F(r.TotalAccessesAPKI(), 1))
		}
	}
	return t
}
