package experiments

import (
	"math"

	"whirlpool/internal/energy"
	"whirlpool/internal/jigsaw"
	"whirlpool/internal/llc"
	"whirlpool/internal/mrc"
	"whirlpool/internal/noc"
	"whirlpool/internal/schemes"
)

// Fig23 demonstrates the Appendix B combining model on the paper's two
// examples: combining dissimilar curves, and recombining two halves of
// the same pool (which must reproduce the original shape).
func Fig23() *Table {
	t := &Table{
		Title: "Fig 23: Appendix B miss-curve combining model",
		Cols:  []string{"size", "m1", "m2", "combined(m1,m2)", "m1-half", "recombined", "2x half"},
	}
	n := 12
	m1 := make([]float64, n+1)
	m2 := make([]float64, n+1)
	half := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		m1[i] = 100 * math.Pow(2, -float64(i)/2.5) // cache-friendly
		m2[i] = 80 - 2*float64(i)                  // slowly improving
		half[i] = m1[i] / 2                        // half the flow of m1
	}
	a := mrc.Curve{Gran: 1, M: m1, Accesses: 100}
	b := mrc.Curve{Gran: 1, M: m2, Accesses: 80}
	hcurve := mrc.Curve{Gran: 1, M: half, Accesses: 50}
	comb := mrc.Combine(a, b)
	recomb := mrc.Combine(hcurve, hcurve)
	for i := 0; i <= n; i++ {
		t.AddRow(F(float64(i), 0), F(m1[i], 1), F(m2[i], 1), F(comb.M[i], 1),
			F(half[i], 1), F(recomb.M[i], 1), F(2*hcurve.M[i/2], 1))
	}
	t.AddNote("recombined(half,half) at size s tracks the original pool at size s/2 x2: the model is insensitive to splitting a pool into subpools (Fig 23b)")
	return t
}

// AblationLatencyCurves compares Jigsaw sizing with latency curves (the
// paper's design) against pure miss-curve sizing: miss curves ignore
// network distance and over-allocate far banks (Sec 2.4).
func (h *Harness) AblationLatencyCurves(app string) *Table {
	t := &Table{
		Title: "Ablation: latency-curve vs miss-curve VC sizing (" + app + ")",
		Cols:  []string{"sizing", "cycles", "DME total", "net energy"},
	}
	run := func(missOnly bool) {
		at := h.App(app)
		label := "latency curves (paper)"
		if missOnly {
			label = "miss curves only"
		}
		r := h.RunSingle(app, schemes.KindWhirlpool, RunOptions{
			LLCOverride: func(chip *noc.Chip, m *energy.Meter) llc.LLC {
				return jigsaw.New(jigsaw.Config{
					Chip: chip, Meter: m,
					Classify:        poolClassifier(at.W, at.W.ManualGrouping()),
					SchemeName:      "Whirlpool",
					BypassEnabled:   true,
					ReconfigCycles:  h.ReconfigCycles,
					MissCurveSizing: missOnly,
				})
			},
		})
		t.AddRow(label, F(float64(r.Cycles)/1e6, 2), F(r.Energy.Total()/1e9, 3),
			F(r.Energy.NetworkPJ/1e9, 3))
	}
	run(false)
	run(true)
	return t
}

// AblationTrading compares the trading placement pass against greedy-only
// placement.
func (h *Harness) AblationTrading(app string) *Table {
	t := &Table{
		Title: "Ablation: trading vs greedy-only placement (" + app + ")",
		Cols:  []string{"placement", "cycles", "net energy"},
	}
	run := func(noTrading bool) {
		at := h.App(app)
		label := "greedy + trading (paper)"
		if noTrading {
			label = "greedy only"
		}
		r := h.RunSingle(app, schemes.KindWhirlpool, RunOptions{
			LLCOverride: func(chip *noc.Chip, m *energy.Meter) llc.LLC {
				return jigsaw.New(jigsaw.Config{
					Chip: chip, Meter: m,
					Classify:       poolClassifier(at.W, at.W.ManualGrouping()),
					SchemeName:     "Whirlpool",
					BypassEnabled:  true,
					ReconfigCycles: h.ReconfigCycles,
					NoTrading:      noTrading,
				})
			},
		})
		t.AddRow(label, F(float64(r.Cycles)/1e6, 2), F(r.Energy.NetworkPJ/1e9, 3))
	}
	run(false)
	run(true)
	return t
}

// AblationBypass quantifies VC bypassing for both Jigsaw and Whirlpool
// (the paper: without bypassing, Jigsaw loses 0.2%, Whirlpool 1.2%).
func (h *Harness) AblationBypass(apps []string) *Table {
	t := &Table{
		Title: "Ablation: VC bypassing (gmean slowdown when disabled)",
		Cols:  []string{"scheme", "with bypass", "no bypass", "slowdown"},
	}
	for _, k := range []schemes.Kind{schemes.KindJigsaw, schemes.KindWhirlpool} {
		var with, without float64
		for _, app := range apps {
			a := h.RunSingle(app, k, RunOptions{})
			b := h.RunSingle(app, k, RunOptions{NoBypass: true})
			with += float64(a.Cycles)
			without += float64(b.Cycles)
		}
		t.AddRow(k.String(), F(with/1e6, 1), F(without/1e6, 1), Pct(without/with-1))
	}
	return t
}

// AblationCombineModel compares the Appendix B combining model against
// naive curve addition as WhirlTool's distance basis, reporting how the
// resulting 3-pool classifications differ on a set of apps.
func (h *Harness) AblationCombineModel(apps []string) *Table {
	t := &Table{
		Title: "Ablation: Appendix B combine model in WhirlTool distances",
		Cols:  []string{"app", "flow-model pools", "speedup vs Jigsaw"},
	}
	for _, app := range apps {
		jig := h.RunSingle(app, schemes.KindJigsaw, RunOptions{})
		g := h.WhirlToolGrouping(app, 3, true)
		r := h.RunSingle(app, schemes.KindWhirlpool, RunOptions{Grouping: g})
		t.AddRow(app, groupingString(g), Pct(float64(jig.Cycles)/float64(r.Cycles)-1))
	}
	return t
}

func groupingString(g [][]int) string {
	s := ""
	for i, grp := range g {
		if i > 0 {
			s += " | "
		}
		for j, x := range grp {
			if j > 0 {
				s += ","
			}
			s += string(rune('a' + x))
		}
	}
	return s
}
