package experiments

import (
	"fmt"
	"strings"
)

// Table renders experiment results as an aligned monospace table, the
// textual equivalent of a paper figure.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// F formats a float at the given precision.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%+.1f%%", v*100)
}
