package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// sweepCSVHeader is the column order for CSV output; kept in sync with
// rowCSV below.
var sweepCSVHeader = []string{
	"app", "scheme", "mix", "cycles", "instrs", "ipc", "apki", "mpki",
	"llc_accesses", "hits", "misses", "bypasses",
	"energy_pj", "network_energy_pj", "bank_energy_pj", "memory_energy_pj",
	"wall_ms", "error", "key",
}

func rowCSV(r SweepRow) []string {
	return []string{
		r.App, r.Scheme, strconv.FormatBool(r.Mix),
		strconv.FormatUint(r.Cycles, 10),
		strconv.FormatUint(r.Instrs, 10),
		strconv.FormatFloat(r.IPC, 'f', 6, 64),
		strconv.FormatFloat(r.APKI, 'f', 4, 64),
		strconv.FormatFloat(r.MPKI, 'f', 4, 64),
		strconv.FormatUint(r.LLCAccesses, 10),
		strconv.FormatUint(r.Hits, 10),
		strconv.FormatUint(r.Misses, 10),
		strconv.FormatUint(r.Bypasses, 10),
		strconv.FormatFloat(r.EnergyPJ, 'f', 0, 64),
		strconv.FormatFloat(r.NetworkEnergyPJ, 'f', 0, 64),
		strconv.FormatFloat(r.BankEnergyPJ, 'f', 0, 64),
		strconv.FormatFloat(r.MemoryEnergyPJ, 'f', 0, 64),
		strconv.FormatFloat(r.WallMS, 'f', 3, 64),
		r.Err,
		r.Key,
	}
}

// WriteRowsCSV writes sweep rows as CSV with a header row.
func WriteRowsCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sweepCSVHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(rowCSV(r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRowsJSON writes sweep rows as an indented JSON array.
func WriteRowsJSON(w io.Writer, rows []SweepRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteRowsTable writes sweep rows as an aligned human-readable table.
func WriteRowsTable(w io.Writer, rows []SweepRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tscheme\tcycles(M)\tIPC\tAPKI\tMPKI\thit%\tbyp%\tDME(mJ)\twall(ms)")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(tw, "%s\t%s\tERROR: %s\n", r.App, r.Scheme, r.Err)
			continue
		}
		d := float64(r.LLCAccesses)
		if d == 0 {
			d = 1
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.3f\t%.1f\t%.2f\t%.1f\t%.1f\t%.3f\t%.1f\n",
			r.App, r.Scheme, float64(r.Cycles)/1e6, r.IPC, r.APKI, r.MPKI,
			100*float64(r.Hits)/d, 100*float64(r.Bypasses)/d, r.EnergyPJ/1e9, r.WallMS)
	}
	return tw.Flush()
}
