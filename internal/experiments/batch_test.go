package experiments

import (
	"reflect"
	"testing"

	"whirlpool/internal/schemes"
)

// mkJobs builds a fake grid of single-app cells with the given names.
func mkJobs(names ...string) []sweepJob {
	jobs := make([]sweepJob, len(names))
	for i, n := range names {
		jobs[i] = sweepJob{app: n, kind: schemes.KindSNUCALRU}
	}
	return jobs
}

// flatten re-serializes batches for coverage checks.
func flatten(batches [][]int) []int {
	var out []int
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

func TestBatchByAppGroups(t *testing.T) {
	// The common grid shape: apps × schemes, cells for one app adjacent.
	jobs := mkJobs("a", "a", "a", "b", "b", "b", "c", "c", "c")
	served := make([]bool, len(jobs))
	batches := batchByApp(jobs, served, 3)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3 (one per app): %v", len(batches), batches)
	}
	for _, b := range batches {
		name := jobs[b[0]].name()
		for _, i := range b {
			if jobs[i].name() != name {
				t.Fatalf("batch %v mixes apps", b)
			}
		}
	}
	if got := flatten(batches); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("coverage broken: %v", got)
	}
}

func TestBatchByAppInterleaved(t *testing.T) {
	// Shard grids can interleave apps; grouping must still collect them.
	jobs := mkJobs("a", "b", "a", "b", "a", "b")
	served := make([]bool, len(jobs))
	batches := batchByApp(jobs, served, 2)
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2: %v", len(batches), batches)
	}
	if !reflect.DeepEqual(batches[0], []int{0, 2, 4}) || !reflect.DeepEqual(batches[1], []int{1, 3, 5}) {
		t.Fatalf("grouping wrong: %v", batches)
	}
}

func TestBatchByAppChunksOneApp(t *testing.T) {
	// One app dominating the grid must still spread across the pool.
	jobs := mkJobs("a", "a", "a", "a", "a", "a", "a", "a")
	served := make([]bool, len(jobs))
	batches := batchByApp(jobs, served, 4)
	if len(batches) != 4 {
		t.Fatalf("got %d batches, want 4: %v", len(batches), batches)
	}
	for _, b := range batches {
		if len(b) > 2 { // ceil(8/4)
			t.Fatalf("batch %v exceeds the chunk cap", b)
		}
	}
	if got, want := flatten(batches), []int{0, 1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("coverage broken: %v", got)
	}
}

func TestBatchByAppSkipsServed(t *testing.T) {
	jobs := mkJobs("a", "a", "b", "b")
	served := []bool{true, false, false, true}
	batches := batchByApp(jobs, served, 1)
	if got, want := flatten(batches), []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("served cells leaked into batches: %v", batches)
	}
	if b := batchByApp(jobs, []bool{true, true, true, true}, 4); b != nil {
		t.Fatalf("fully served grid produced batches: %v", b)
	}
}

// TestSweepBatchedRowIdentity crosses worker counts (which change how
// cells batch onto runners) and requires identical rows: batching and
// runner reuse must be invisible in the output.
func TestSweepBatchedRowIdentity(t *testing.T) {
	apps := []string{"delaunay", "MIS"}
	kinds := []schemes.Kind{schemes.KindSNUCALRU, schemes.KindWhirlpool}
	mix := SweepMix{Name: "mix1", Apps: []string{"delaunay", "MIS"}}
	var base []SweepRow
	for _, workers := range []int{1, 4} {
		h := NewHarness(0.03)
		rows, err := h.Sweep(SweepConfig{
			Apps: apps, Mixes: []SweepMix{mix}, Kinds: kinds, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range rows {
			rows[i].WallMS = 0 // host timing is the one legitimately varying field
		}
		if base == nil {
			base = rows
			continue
		}
		if !reflect.DeepEqual(base, rows) {
			t.Fatalf("workers=%d changed rows:\n%+v\nvs\n%+v", workers, rows, base)
		}
	}
}
