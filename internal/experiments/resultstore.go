package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"whirlpool/internal/noc"
	"whirlpool/internal/obs"
	"whirlpool/internal/results"
	"whirlpool/internal/workloads"
)

// sweepRowVersion versions SweepRow's semantic content inside result
// store keys. Bump it whenever a row field changes meaning (not just
// formatting), so stale stores recompute instead of serving rows whose
// numbers no longer mean what the reader thinks.
const sweepRowVersion = 1

// chipKey is a stable textual description of a topology for hashing:
// mesh dimensions, core count, and bank capacity pin down everything
// that influences simulation results.
func chipKey(c *noc.Chip) string {
	return fmt.Sprintf("%dx%d:%d:%d", c.Mesh.W, c.Mesh.H, c.NCores(), c.BankBytes)
}

// traceDigest hashes one .wtrc recording, memoizing per path in memo
// so a sweep crossing a trace-sourced app with many schemes reads the
// file once, not once per cell.
func traceDigest(path string, memo map[string]string) (string, error) {
	if dg, ok := memo[path]; ok {
		return dg, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	d := sha256.New()
	if _, err := io.Copy(d, f); err != nil {
		return "", err
	}
	dg := hex.EncodeToString(d.Sum(nil))
	memo[path] = dg
	return dg, nil
}

// cellKey content-addresses one sweep cell the same way the trace cache
// addresses traces: sha256 over every input that influences the row —
// the full workload spec JSON (all member specs for mixes, plus pins
// and the mix name, which is the row's identity column), the scheme id,
// scale, seed, reconfig period, bypass setting, chip topology, and the
// row format version. Two cells with equal keys are bit-identical
// simulations. memo caches .wtrc digests across cells of one lookup
// pass.
func (h *Harness) cellKey(j sweepJob, noBypass bool, memo map[string]string) (string, error) {
	d := sha256.New()
	fmt.Fprintf(d, "wrow%d|scale=%g|seed=%d|reconfig=%d|nobypass=%t|scheme=%s|",
		sweepRowVersion, h.Scale, h.Seed, h.ReconfigCycles, noBypass, j.kind.ID())
	writeSpec := func(name string) error {
		spec, ok := workloads.ByName(name)
		if !ok {
			return fmt.Errorf("experiments: unknown app %q while keying cell", name)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			return err
		}
		d.Write(data)
		d.Write([]byte{'|'})
		if spec.TracePath != "" {
			// A trace-sourced app's identity is the recording, not its
			// path: re-recording the same file must change the key, or a
			// warm store would serve the old recording's rows forever
			// (the harness deliberately re-reads .wtrc files fresh each
			// run for the same reason). Unreadable files make the cell
			// uncacheable; the run then fails with the real error.
			dg, err := traceDigest(spec.TracePath, memo)
			if err != nil {
				return err
			}
			fmt.Fprintf(d, "%s|", dg)
		}
		return nil
	}
	if j.mix != nil {
		fmt.Fprintf(d, "mix=%s|pins=%v|chip=%s|", j.mix.Name, j.mix.Pins, chipKey(mixChip(j.mix)))
		for _, a := range j.mix.Apps {
			if err := writeSpec(a); err != nil {
				return "", err
			}
		}
	} else {
		// Single-app cells always run on core 0 of the default 4-core
		// chip (RunSingle with no override).
		fmt.Fprintf(d, "app|chip=%s|", chipKey(noc.FourCoreChip()))
		if err := writeSpec(j.app); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(d.Sum(nil)), nil
}

// cellKeys content-addresses every grid cell. Keys are computed even
// without a store: rows carry them out (SweepRow.Key), and distributed
// coordinators shard and route by them. Uncacheable cells (e.g. an
// unreadable .wtrc) get an empty key and are computed, never stored.
func (h *Harness) cellKeys(jobs []sweepJob, noBypass bool) []string {
	keys := make([]string, len(jobs))
	traceMemo := map[string]string{}
	for i, j := range jobs {
		if key, err := h.cellKey(j, noBypass, traceMemo); err == nil {
			keys[i] = key
		}
	}
	return keys
}

// storeLookup prefills rows for every keyed cell already present in the
// store, marking them served. A served cell costs one store Get: no
// trace generation, no simulation. Records that fail to decode (or
// memoized error rows, which are never written but could exist in a
// hand-edited store) are recomputed. The engine's key overrides the
// stored row's (older stores predate SweepRow.Key).
func (h *Harness) storeLookup(store *results.Store, keys []string, rows []SweepRow, served []bool, tr *obs.Tracer, parent obs.SpanContext) {
	for i, key := range keys {
		if key == "" {
			continue // uncacheable: compute, don't store
		}
		sp := tr.Start(parent, "store.lookup")
		rec, ok := store.Get(key)
		if ok {
			var row SweepRow
			if json.Unmarshal(rec.Row, &row) == nil && row.Err == "" {
				row.Key = key
				rows[i] = row
				served[i] = true
			}
		}
		sp.SetStr("key", key)
		sp.SetBool("hit", served[i])
		sp.End()
	}
}

// storeCommit appends one freshly computed row under its cell key.
// Error rows are never memoized (the failure may be environmental), and
// store write failures degrade to uncached operation — observable as
// Stats().Puts lagging Misses — rather than failing the sweep.
func storeCommit(store *results.Store, key string, row SweepRow) {
	if key == "" || row.Err != "" {
		return
	}
	data, err := json.Marshal(row)
	if err != nil {
		return
	}
	_ = store.Put(results.Record{
		Key:    key,
		App:    row.App,
		Scheme: row.Scheme,
		//whirl:wallclock store-record timestamp is provenance metadata, not row data
		Unix: time.Now().Unix(),
		Row:  data,
	})
}
