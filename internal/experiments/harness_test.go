package experiments

import (
	"testing"

	"whirlpool/internal/noc"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
)

// The shared test harness runs at reduced scale to keep tests fast.
var testH = NewHarness(0.15)

func runAll(t *testing.T, app string) map[schemes.Kind]*sim.Result {
	t.Helper()
	out := make(map[schemes.Kind]*sim.Result)
	for _, k := range schemes.AllKinds() {
		out[k] = testH.RunSingle(app, k, RunOptions{})
	}
	return out
}

func TestAllSchemesRunDelaunay(t *testing.T) {
	res := runAll(t, "delaunay")
	for k, r := range res {
		if r.Demand == 0 {
			t.Fatalf("%v: no LLC accesses", k)
		}
		if r.Cycles == 0 || r.Instrs == 0 {
			t.Fatalf("%v: empty run", k)
		}
		if r.Energy.Total() == 0 {
			t.Fatalf("%v: no energy recorded", k)
		}
		if r.Hits+r.Misses+r.Bypasses != r.Demand {
			t.Fatalf("%v: outcome counts %d+%d+%d != demand %d",
				k, r.Hits, r.Misses, r.Bypasses, r.Demand)
		}
	}
	// All schemes replay the same trace: identical instruction counts.
	base := res[schemes.KindJigsaw].Instrs
	for k, r := range res {
		if r.Instrs != base {
			t.Fatalf("%v: instrs %d != %d", k, r.Instrs, base)
		}
	}
}

// The headline dt result (Sec 2.1): Whirlpool beats Jigsaw beats S-NUCA
// on both performance and data movement energy.
func TestDelaunayOrdering(t *testing.T) {
	res := runAll(t, "delaunay")
	snuca := res[schemes.KindSNUCALRU]
	jig := res[schemes.KindJigsaw]
	whirl := res[schemes.KindWhirlpool]
	if jig.Cycles >= snuca.Cycles {
		t.Errorf("Jigsaw (%d cycles) should beat S-NUCA (%d)", jig.Cycles, snuca.Cycles)
	}
	if whirl.Cycles > jig.Cycles {
		t.Errorf("Whirlpool (%d cycles) should not lose to Jigsaw (%d)", whirl.Cycles, jig.Cycles)
	}
	if whirl.Energy.Total() >= snuca.Energy.Total() {
		t.Errorf("Whirlpool energy (%.0f) should beat S-NUCA (%.0f)",
			whirl.Energy.Total(), snuca.Energy.Total())
	}
}

// The mis case study (Fig 9/10): Whirlpool must bypass the streaming
// edges pool and cut data movement energy substantially vs Jigsaw.
func TestMISBypassAndEnergy(t *testing.T) {
	jig := testH.RunSingle("MIS", schemes.KindJigsaw, RunOptions{})
	whirl := testH.RunSingle("MIS", schemes.KindWhirlpool, RunOptions{})
	if whirl.Bypasses == 0 {
		t.Fatal("Whirlpool should bypass mis's edges pool")
	}
	if whirl.Cycles >= jig.Cycles {
		t.Errorf("Whirlpool (%d cycles) should beat Jigsaw (%d) on mis", whirl.Cycles, jig.Cycles)
	}
	if whirl.Energy.Total() >= jig.Energy.Total() {
		t.Errorf("Whirlpool energy (%.0f) should beat Jigsaw (%.0f) on mis",
			whirl.Energy.Total(), jig.Energy.Total())
	}
	// Network + bank savings are where bypassing shows up.
	if whirl.Energy.BankPJ >= jig.Energy.BankPJ {
		t.Errorf("Whirlpool bank energy (%.0f) should drop vs Jigsaw (%.0f)",
			whirl.Energy.BankPJ, jig.Energy.BankPJ)
	}
}

// IdealSPD's bimodal behaviour (Sec 4.5): fine when the working set fits
// its 1.5MB private region, expensive multi-level lookups when it does not.
func TestIdealSPDEnergyOnLargeWS(t *testing.T) {
	res := runAll(t, "MIS")
	spd := res[schemes.KindIdealSPD]
	whirl := res[schemes.KindWhirlpool]
	if spd.Energy.Total() <= whirl.Energy.Total() {
		t.Errorf("IdealSPD energy (%.0f) should exceed Whirlpool (%.0f) on a large-WS app",
			spd.Energy.Total(), whirl.Energy.Total())
	}
}

func TestPerPoolCounters(t *testing.T) {
	r := testH.RunSingle("delaunay", schemes.KindWhirlpool, RunOptions{PerPool: true})
	if len(r.PoolAccesses) == 0 {
		t.Fatal("no per-pool counters")
	}
	// dt's three structures split accesses roughly evenly (Fig 2).
	var nonzero int
	for _, c := range r.PoolAccesses[1:] {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 3 {
		t.Fatalf("dt should touch 3 pools, got %d: %v", nonzero, r.PoolAccesses)
	}
}

func TestMixFixedWork(t *testing.T) {
	h := NewHarness(0.05)
	r := h.RunMix([]string{"mcf", "lbm", "MIS", "delaunay"}, schemes.KindWhirlpool,
		noc.FourCoreChip(), false)
	if len(r.Cores) != 4 {
		t.Fatalf("cores = %d", len(r.Cores))
	}
	for c, cr := range r.Cores {
		if cr.Instrs == 0 || cr.Cycles == 0 {
			t.Fatalf("core %d: empty result", c)
		}
		if cr.IPC() <= 0 {
			t.Fatalf("core %d: IPC %v", c, cr.IPC())
		}
	}
}

func TestMixWhirlpoolVsJigsawWeightedSpeedup(t *testing.T) {
	h := NewHarness(0.05)
	apps := []string{"mcf", "cactus", "MIS", "delaunay"}
	jig := h.RunMix(apps, schemes.KindJigsaw, noc.FourCoreChip(), false)
	whirl := h.RunMix(apps, schemes.KindWhirlpool, noc.FourCoreChip(), false)
	ws := 0.0
	for c := range apps {
		ws += whirl.Cores[c].IPC() / jig.Cores[c].IPC()
	}
	ws /= float64(len(apps))
	if ws < 0.97 {
		t.Errorf("Whirlpool weighted speedup vs Jigsaw = %.3f; should not lose meaningfully", ws)
	}
}

func TestHarnessTraceCaching(t *testing.T) {
	h := NewHarness(0.02)
	a := h.App("hull")
	b := h.App("hull")
	if a != b {
		t.Fatal("trace not cached")
	}
}

func TestRunSingleDeterministic(t *testing.T) {
	h1 := NewHarness(0.05)
	h2 := NewHarness(0.05)
	r1 := h1.RunSingle("mcf", schemes.KindWhirlpool, RunOptions{})
	r2 := h2.RunSingle("mcf", schemes.KindWhirlpool, RunOptions{})
	if r1.Cycles != r2.Cycles || r1.Hits != r2.Hits || r1.Misses != r2.Misses {
		t.Fatalf("nondeterministic: %d/%d/%d vs %d/%d/%d",
			r1.Cycles, r1.Hits, r1.Misses, r2.Cycles, r2.Hits, r2.Misses)
	}
}
