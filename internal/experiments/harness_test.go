package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"whirlpool/internal/noc"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/trace"
	"whirlpool/internal/workloads"
)

// The shared test harness runs at reduced scale to keep tests fast.
var testH = NewHarness(0.15)

func runAll(t *testing.T, app string) map[schemes.Kind]*sim.Result {
	t.Helper()
	out := make(map[schemes.Kind]*sim.Result)
	for _, k := range schemes.AllKinds() {
		out[k] = testH.RunSingle(app, k, RunOptions{})
	}
	return out
}

func TestAllSchemesRunDelaunay(t *testing.T) {
	res := runAll(t, "delaunay")
	for k, r := range res {
		if r.Demand == 0 {
			t.Fatalf("%v: no LLC accesses", k)
		}
		if r.Cycles == 0 || r.Instrs == 0 {
			t.Fatalf("%v: empty run", k)
		}
		if r.Energy.Total() == 0 {
			t.Fatalf("%v: no energy recorded", k)
		}
		if r.Hits+r.Misses+r.Bypasses != r.Demand {
			t.Fatalf("%v: outcome counts %d+%d+%d != demand %d",
				k, r.Hits, r.Misses, r.Bypasses, r.Demand)
		}
	}
	// All schemes replay the same trace: identical instruction counts.
	base := res[schemes.KindJigsaw].Instrs
	for k, r := range res {
		if r.Instrs != base {
			t.Fatalf("%v: instrs %d != %d", k, r.Instrs, base)
		}
	}
}

// The headline dt result (Sec 2.1): Whirlpool beats Jigsaw beats S-NUCA
// on both performance and data movement energy.
func TestDelaunayOrdering(t *testing.T) {
	res := runAll(t, "delaunay")
	snuca := res[schemes.KindSNUCALRU]
	jig := res[schemes.KindJigsaw]
	whirl := res[schemes.KindWhirlpool]
	if jig.Cycles >= snuca.Cycles {
		t.Errorf("Jigsaw (%d cycles) should beat S-NUCA (%d)", jig.Cycles, snuca.Cycles)
	}
	if whirl.Cycles > jig.Cycles {
		t.Errorf("Whirlpool (%d cycles) should not lose to Jigsaw (%d)", whirl.Cycles, jig.Cycles)
	}
	if whirl.Energy.Total() >= snuca.Energy.Total() {
		t.Errorf("Whirlpool energy (%.0f) should beat S-NUCA (%.0f)",
			whirl.Energy.Total(), snuca.Energy.Total())
	}
}

// The mis case study (Fig 9/10): Whirlpool must bypass the streaming
// edges pool and cut data movement energy substantially vs Jigsaw.
func TestMISBypassAndEnergy(t *testing.T) {
	jig := testH.RunSingle("MIS", schemes.KindJigsaw, RunOptions{})
	whirl := testH.RunSingle("MIS", schemes.KindWhirlpool, RunOptions{})
	if whirl.Bypasses == 0 {
		t.Fatal("Whirlpool should bypass mis's edges pool")
	}
	if whirl.Cycles >= jig.Cycles {
		t.Errorf("Whirlpool (%d cycles) should beat Jigsaw (%d) on mis", whirl.Cycles, jig.Cycles)
	}
	if whirl.Energy.Total() >= jig.Energy.Total() {
		t.Errorf("Whirlpool energy (%.0f) should beat Jigsaw (%.0f) on mis",
			whirl.Energy.Total(), jig.Energy.Total())
	}
	// Network + bank savings are where bypassing shows up.
	if whirl.Energy.BankPJ >= jig.Energy.BankPJ {
		t.Errorf("Whirlpool bank energy (%.0f) should drop vs Jigsaw (%.0f)",
			whirl.Energy.BankPJ, jig.Energy.BankPJ)
	}
}

// IdealSPD's bimodal behaviour (Sec 4.5): fine when the working set fits
// its 1.5MB private region, expensive multi-level lookups when it does not.
func TestIdealSPDEnergyOnLargeWS(t *testing.T) {
	res := runAll(t, "MIS")
	spd := res[schemes.KindIdealSPD]
	whirl := res[schemes.KindWhirlpool]
	if spd.Energy.Total() <= whirl.Energy.Total() {
		t.Errorf("IdealSPD energy (%.0f) should exceed Whirlpool (%.0f) on a large-WS app",
			spd.Energy.Total(), whirl.Energy.Total())
	}
}

func TestPerPoolCounters(t *testing.T) {
	r := testH.RunSingle("delaunay", schemes.KindWhirlpool, RunOptions{PerPool: true})
	if len(r.PoolAccesses) == 0 {
		t.Fatal("no per-pool counters")
	}
	// dt's three structures split accesses roughly evenly (Fig 2).
	var nonzero int
	for _, c := range r.PoolAccesses[1:] {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 3 {
		t.Fatalf("dt should touch 3 pools, got %d: %v", nonzero, r.PoolAccesses)
	}
}

func TestMixFixedWork(t *testing.T) {
	h := NewHarness(0.05)
	r := h.RunMix([]string{"mcf", "lbm", "MIS", "delaunay"}, schemes.KindWhirlpool,
		noc.FourCoreChip(), false)
	if len(r.Cores) != 4 {
		t.Fatalf("cores = %d", len(r.Cores))
	}
	for c, cr := range r.Cores {
		if cr.Instrs == 0 || cr.Cycles == 0 {
			t.Fatalf("core %d: empty result", c)
		}
		if cr.IPC() <= 0 {
			t.Fatalf("core %d: IPC %v", c, cr.IPC())
		}
	}
}

func TestMixWhirlpoolVsJigsawWeightedSpeedup(t *testing.T) {
	h := NewHarness(0.05)
	apps := []string{"mcf", "cactus", "MIS", "delaunay"}
	jig := h.RunMix(apps, schemes.KindJigsaw, noc.FourCoreChip(), false)
	whirl := h.RunMix(apps, schemes.KindWhirlpool, noc.FourCoreChip(), false)
	ws := 0.0
	for c := range apps {
		ws += whirl.Cores[c].IPC() / jig.Cores[c].IPC()
	}
	ws /= float64(len(apps))
	if ws < 0.97 {
		t.Errorf("Whirlpool weighted speedup vs Jigsaw = %.3f; should not lose meaningfully", ws)
	}
}

func TestHarnessTraceCaching(t *testing.T) {
	h := NewHarness(0.02)
	a := h.App("hull")
	b := h.App("hull")
	if a != b {
		t.Fatal("trace not cached")
	}
}

func TestRunSingleDeterministic(t *testing.T) {
	h1 := NewHarness(0.05)
	h2 := NewHarness(0.05)
	r1 := h1.RunSingle("mcf", schemes.KindWhirlpool, RunOptions{})
	r2 := h2.RunSingle("mcf", schemes.KindWhirlpool, RunOptions{})
	if r1.Cycles != r2.Cycles || r1.Hits != r2.Hits || r1.Misses != r2.Misses {
		t.Fatalf("nondeterministic: %d/%d/%d vs %d/%d/%d",
			r1.Cycles, r1.Hits, r1.Misses, r2.Cycles, r2.Hits, r2.Misses)
	}
}

// TestDiskTraceCacheWarmRerun is the acceptance contract for the on-disk
// trace cache: a second harness pointed at the same cache directory runs
// the same cells with zero trace regenerations, and its results are
// bit-identical to the cold run's.
func TestDiskTraceCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	apps := []string{"delaunay", "MIS"}

	cold := NewHarness(0.05)
	cold.CacheDir = dir
	coldRes := map[string]*sim.Result{}
	for _, app := range apps {
		coldRes[app] = cold.RunSingle(app, schemes.KindJigsaw, RunOptions{})
	}
	cs := cold.CacheStats()
	if cs.Builds != int64(len(apps)) || cs.DiskHits != 0 {
		t.Fatalf("cold stats = %+v, want %d builds, 0 hits", cs, len(apps))
	}

	warm := NewHarness(0.05)
	warm.CacheDir = dir
	for _, app := range apps {
		r := warm.RunSingle(app, schemes.KindJigsaw, RunOptions{})
		c := coldRes[app]
		if r.Cycles != c.Cycles || r.Hits != c.Hits || r.Misses != c.Misses ||
			r.Instrs != c.Instrs || r.Energy.Total() != c.Energy.Total() {
			t.Fatalf("%s: warm-cache result differs from cold run", app)
		}
	}
	ws := warm.CacheStats()
	if ws.Builds != 0 || ws.DiskHits != int64(len(apps)) {
		t.Fatalf("warm stats = %+v, want 0 builds, %d hits", ws, len(apps))
	}
}

// TestDiskTraceCacheKeying: different scale or seed must never share a
// cache entry.
func TestDiskTraceCacheKeying(t *testing.T) {
	dir := t.TempDir()
	h1 := NewHarness(0.05)
	h1.CacheDir = dir
	h1.App("hull")

	h2 := NewHarness(0.02) // different scale
	h2.CacheDir = dir
	h2.App("hull")
	if s := h2.CacheStats(); s.Builds != 1 || s.DiskHits != 0 {
		t.Fatalf("different scale reused a cache entry: %+v", s)
	}

	h3 := NewHarness(0.05) // different seed
	h3.CacheDir = dir
	h3.Seed = 12345
	h3.App("hull")
	if s := h3.CacheStats(); s.Builds != 1 || s.DiskHits != 0 {
		t.Fatalf("different seed reused a cache entry: %+v", s)
	}

	// Same config again: both prior entries are live, zero rebuilds.
	h4 := NewHarness(0.05)
	h4.CacheDir = dir
	h4.App("hull")
	if s := h4.CacheStats(); s.Builds != 0 || s.DiskHits != 1 {
		t.Fatalf("identical config missed the cache: %+v", s)
	}
}

// TestDiskTraceCacheHealsCorruptEntry: a truncated/corrupt cache file is
// treated as a miss and overwritten, not an error.
func TestDiskTraceCacheHealsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	h1 := NewHarness(0.02)
	h1.CacheDir = dir
	want := h1.App("hull").Tr.Stats()

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("cache dir: %v entries, err %v", len(ents), err)
	}
	path := filepath.Join(dir, ents[0].Name())
	if err := os.WriteFile(path, []byte("WTRCgarbage"), 0o666); err != nil {
		t.Fatal(err)
	}

	h2 := NewHarness(0.02)
	h2.CacheDir = dir
	got := h2.App("hull").Tr.Stats()
	if got != want {
		t.Fatalf("healed trace stats = %+v, want %+v", got, want)
	}
	if s := h2.CacheStats(); s.Builds != 1 {
		t.Fatalf("corrupt entry should rebuild: %+v", s)
	}

	h3 := NewHarness(0.02)
	h3.CacheDir = dir
	h3.App("hull")
	if s := h3.CacheStats(); s.DiskHits != 1 {
		t.Fatalf("healed entry should hit: %+v", s)
	}
}

// TestDiskTraceCacheWriteFailureDegrades: an unwritable cache dir must
// not fail the run — the built trace is used uncached and the failure
// is visible in CacheStats.
func TestDiskTraceCacheWriteFailureDegrades(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	h := NewHarness(0.02)
	h.CacheDir = blocker // a file: MkdirAll and writes fail
	r := h.RunSingle("hull", schemes.KindJigsaw, RunOptions{})
	if r.Demand == 0 {
		t.Fatal("run failed under an unwritable cache dir")
	}
	if s := h.CacheStats(); s.Builds != 1 || s.WriteErrors != 1 {
		t.Fatalf("stats = %+v, want 1 build, 1 write error", s)
	}
}

// TestTraceSourcedApp registers a recorded .wtrc as an app spec and
// checks it replays bit-identically to the app it was recorded from
// (under a classification-independent scheme).
func TestTraceSourcedApp(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	dir := t.TempDir()
	rec := NewHarness(0.05)
	at, err := rec.AppErr("delaunay")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dt.wtrc")
	if err := trace.WriteFile(path, at.Tr); err != nil {
		t.Fatal(err)
	}

	if err := workloads.Register(workloads.AppSpec{Name: "dt-recorded", Suite: "trace", TracePath: path}); err != nil {
		t.Fatal(err)
	}
	h := NewHarness(0.05)
	direct := h.RunSingle("delaunay", schemes.KindJigsaw, RunOptions{})
	replay := h.RunSingle("dt-recorded", schemes.KindJigsaw, RunOptions{})
	if direct.Cycles != replay.Cycles || direct.Misses != replay.Misses ||
		direct.Hits != replay.Hits || direct.Instrs != replay.Instrs {
		t.Fatalf("trace replay differs: direct %d/%d/%d, replay %d/%d/%d",
			direct.Cycles, direct.Hits, direct.Misses,
			replay.Cycles, replay.Hits, replay.Misses)
	}
}

// TestTraceSourcedAppAllSchemes: a structless trace app must run under
// every scheme — including Whirlpool, whose classifier must not probe
// the (empty) simulated address space — alone and inside a mix.
func TestTraceSourcedAppAllSchemes(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	dir := t.TempDir()
	rec := NewHarness(0.02)
	path := filepath.Join(dir, "hull.wtrc")
	if err := trace.WriteFile(path, rec.App("hull").Tr); err != nil {
		t.Fatal(err)
	}
	if err := workloads.Register(workloads.AppSpec{Name: "hull-rec", Suite: "trace", TracePath: path}); err != nil {
		t.Fatal(err)
	}
	h := NewHarness(0.02)
	for _, k := range schemes.AllKinds() {
		r := h.RunSingle("hull-rec", k, RunOptions{})
		if r.Demand == 0 {
			t.Fatalf("%v: empty trace-app run", k)
		}
	}
	mix := h.RunMix([]string{"hull-rec", "MIS"}, schemes.KindWhirlpool, noc.FourCoreChip(), false)
	if mix.Cores[0].Demand == 0 || mix.Cores[1].Demand == 0 {
		t.Fatal("trace app in a whirlpool mix produced empty cores")
	}
}

// TestTraceSourcedAppMissingFile: a bad trace path errors cleanly.
func TestTraceSourcedAppMissingFile(t *testing.T) {
	t.Cleanup(workloads.SnapshotRegistry())
	if err := workloads.Register(workloads.AppSpec{Name: "bad-trace", TracePath: "/nonexistent/x.wtrc"}); err != nil {
		t.Fatal(err)
	}
	h := NewHarness(0.05)
	if _, err := h.AppErr("bad-trace"); err == nil {
		t.Fatal("missing trace file must error")
	}
}
