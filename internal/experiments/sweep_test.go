package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"whirlpool/internal/noc"
	"whirlpool/internal/schemes"
)

// The sweep engine must produce rows identical to serial single-app
// runs: same trace cache, same seed, no cross-worker interference.
func TestSweepMatchesSerial(t *testing.T) {
	apps := []string{"delaunay", "MIS", "mcf"}
	kinds := schemes.AllKinds()

	sweepH := NewHarness(0.1)
	rows, err := sweepH.Sweep(SweepConfig{Apps: apps, Kinds: kinds, Workers: 4})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(rows) != len(apps)*len(kinds) {
		t.Fatalf("got %d rows, want %d", len(rows), len(apps)*len(kinds))
	}

	serialH := NewHarness(0.1)
	i := 0
	for _, app := range apps {
		for _, k := range kinds {
			row := rows[i]
			i++
			if row.Err != "" {
				t.Fatalf("%s/%v: sweep error: %s", app, k, row.Err)
			}
			if row.App != app || row.Scheme != k.ID() {
				t.Fatalf("row %d is (%s,%s), want (%s,%s): grid order broken",
					i-1, row.App, row.Scheme, app, k.ID())
			}
			r := serialH.RunSingle(app, k, RunOptions{})
			if row.Cycles != r.Cycles || row.Instrs != r.Instrs ||
				row.Hits != r.Hits || row.Misses != r.Misses ||
				row.Bypasses != r.Bypasses || row.LLCAccesses != r.Demand {
				t.Errorf("%s/%v: sweep row %+v != serial result cycles=%d instrs=%d hits=%d misses=%d byp=%d demand=%d",
					app, k, row, r.Cycles, r.Instrs, r.Hits, r.Misses, r.Bypasses, r.Demand)
			}
			if row.EnergyPJ != r.Energy.Total() {
				t.Errorf("%s/%v: sweep energy %g != serial %g", app, k, row.EnergyPJ, r.Energy.Total())
			}
		}
	}
}

// Trace generation is the expensive part: a full-grid sweep must build
// each app exactly once, not once per scheme.
func TestSweepTraceCacheReuse(t *testing.T) {
	h := NewHarness(0.05)
	apps := []string{"delaunay", "MIS", "mcf"}
	rows, err := h.Sweep(SweepConfig{Apps: apps, Workers: 4})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(rows) != len(apps)*6 {
		t.Fatalf("got %d rows, want %d", len(rows), len(apps)*6)
	}
	if got := h.TraceBuilds(); got != int64(len(apps)) {
		t.Errorf("built %d traces for %d apps × 6 schemes, want %d (one per app)",
			got, len(apps), len(apps))
	}
}

// Mix rows run through the same engine and match serial RunMix.
func TestSweepMixMatchesSerial(t *testing.T) {
	mix := SweepMix{Name: "duo", Apps: []string{"delaunay", "MIS"}}
	kinds := []schemes.Kind{schemes.KindSNUCALRU, schemes.KindWhirlpool}

	sweepH := NewHarness(0.05)
	rows, err := sweepH.Sweep(SweepConfig{Mixes: []SweepMix{mix}, Kinds: kinds, Workers: 2})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	serialH := NewHarness(0.05)
	for i, k := range kinds {
		row := rows[i]
		if row.Err != "" {
			t.Fatalf("%v: %s", k, row.Err)
		}
		if !row.Mix || row.App != "duo" {
			t.Fatalf("row %d not marked as mix duo: %+v", i, row)
		}
		r := serialH.RunMix(mix.Apps, k, noc.FourCoreChip(), false)
		if row.Cycles != r.Cycles || row.Hits != r.Hits || row.Misses != r.Misses {
			t.Errorf("%v: mix row %+v != serial cycles=%d hits=%d misses=%d",
				k, row, r.Cycles, r.Hits, r.Misses)
		}
	}
}

func TestSweepUnknownApp(t *testing.T) {
	h := NewHarness(0.05)
	_, err := h.Sweep(SweepConfig{Apps: []string{"delaunay", "nosuchapp"}})
	if err == nil {
		t.Fatal("Sweep accepted an unknown app")
	}
	if !strings.Contains(err.Error(), "nosuchapp") {
		t.Errorf("error %q does not name the unknown app", err)
	}
	if h.TraceBuilds() != 0 {
		t.Errorf("sweep built %d traces before failing validation, want 0", h.TraceBuilds())
	}
}

func TestSweepEmpty(t *testing.T) {
	h := NewHarness(0.05)
	if _, err := h.Sweep(SweepConfig{}); err == nil {
		t.Fatal("empty sweep should error")
	}
}

func TestSweepWriters(t *testing.T) {
	h := NewHarness(0.05)
	rows, err := h.Sweep(SweepConfig{
		Apps:  []string{"delaunay"},
		Kinds: []schemes.Kind{schemes.KindSNUCALRU},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	var csvBuf, jsonBuf, tableBuf bytes.Buffer
	if err := WriteRowsCSV(&csvBuf, rows); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header+1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "app,scheme,") || !strings.HasPrefix(lines[1], "delaunay,snuca-lru,") {
		t.Errorf("unexpected CSV:\n%s", csvBuf.String())
	}
	if err := WriteRowsJSON(&jsonBuf, rows); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !strings.Contains(jsonBuf.String(), `"app": "delaunay"`) {
		t.Errorf("unexpected JSON:\n%s", jsonBuf.String())
	}
	if err := WriteRowsTable(&tableBuf, rows); err != nil {
		t.Fatalf("table: %v", err)
	}
	if !strings.Contains(tableBuf.String(), "delaunay") {
		t.Errorf("unexpected table:\n%s", tableBuf.String())
	}
}

// A canceled context aborts the sweep before any trace is built and
// marks unrun cells.
func TestSweepCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := NewHarness(0.05)
	rows, err := h.Sweep(SweepConfig{
		Apps:    []string{"delaunay", "MIS"},
		Context: ctx,
	})
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if h.TraceBuilds() != 0 {
		t.Errorf("canceled sweep built %d traces, want 0", h.TraceBuilds())
	}
	for _, r := range rows {
		if r.Err != "canceled" {
			t.Fatalf("unrun cell not marked canceled: %+v", r)
		}
	}
}

// Canceling mid-sweep keeps the finished rows and skips the rest.
func TestSweepCanceledMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	h := NewHarness(0.05)
	rows, err := h.Sweep(SweepConfig{
		Apps:    []string{"delaunay", "MIS", "mcf"},
		Kinds:   []schemes.Kind{schemes.KindSNUCALRU, schemes.KindSNUCADRRIP},
		Workers: 1,
		Context: ctx,
		OnRow:   func(done, total int, row SweepRow) { cancel() },
	})
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	var finished, canceled int
	for _, r := range rows {
		switch r.Err {
		case "":
			finished++
		case "canceled":
			canceled++
		default:
			t.Fatalf("unexpected cell error: %+v", r)
		}
	}
	if finished == 0 || canceled == 0 {
		t.Fatalf("mid-sweep cancel: %d finished, %d canceled; want both nonzero", finished, canceled)
	}
}

// Pinned mixes place each app's stats at its pinned core and agree with
// the identity placement run on the same cores' apps.
func TestSweepPinnedMix(t *testing.T) {
	h := NewHarness(0.05)
	mix := SweepMix{
		Name: "pinned",
		Apps: []string{"delaunay", "MIS"},
		Pins: []int{3, 0},
	}
	rows, err := h.Sweep(SweepConfig{
		Mixes: []SweepMix{mix},
		Kinds: []schemes.Kind{schemes.KindWhirlpool},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(rows) != 1 || rows[0].Err != "" {
		t.Fatalf("rows = %+v", rows)
	}
	serial := NewHarness(0.05)
	r := serial.RunMixPinned(mix.Apps, mix.Pins, schemes.KindWhirlpool, noc.FourCoreChip(), false)
	if rows[0].Cycles != r.Cycles || rows[0].Hits != r.Hits {
		t.Fatalf("sweep row %+v != serial pinned run cycles=%d hits=%d", rows[0], r.Cycles, r.Hits)
	}
	// delaunay was pinned to core 3, MIS to core 0.
	if r.Cores[3].Instrs == 0 || r.Cores[0].Instrs == 0 {
		t.Fatal("no stats at the pinned cores")
	}
	if r.Cores[1].Instrs != 0 || r.Cores[2].Instrs != 0 {
		t.Fatal("stats appeared at unpinned cores")
	}
}

// Pins spilling past 4 cores promote the mix onto the 16-core chip.
func TestSweepPinsPromoteChip(t *testing.T) {
	m := &SweepMix{Apps: []string{"a", "b"}, Pins: []int{0, 12}}
	if got := mixChip(m).NCores(); got != 16 {
		t.Fatalf("pin 12 resolved a %d-core chip, want 16", got)
	}
	m = &SweepMix{Apps: []string{"a", "b"}}
	if got := mixChip(m).NCores(); got != 4 {
		t.Fatalf("2-app mix resolved a %d-core chip, want 4", got)
	}
}

// Invalid pins fail sweep validation up front, before trace building.
func TestSweepPinValidation(t *testing.T) {
	h := NewHarness(0.05)
	bad := []SweepMix{
		{Name: "short", Apps: []string{"delaunay", "MIS"}, Pins: []int{0}},
		{Name: "dup", Apps: []string{"delaunay", "MIS"}, Pins: []int{1, 1}},
		{Name: "range", Apps: []string{"delaunay", "MIS"}, Pins: []int{0, 99}},
	}
	for _, m := range bad {
		if _, err := h.Sweep(SweepConfig{Mixes: []SweepMix{m}}); err == nil {
			t.Fatalf("mix %q with bad pins passed validation", m.Name)
		}
	}
	if h.TraceBuilds() != 0 {
		t.Errorf("validation built %d traces, want 0", h.TraceBuilds())
	}
}

// A mix with its own chip runs on it.
func TestSweepMixChipOverride(t *testing.T) {
	h := NewHarness(0.05)
	chip := noc.Custom(6, 6, 6, 0)
	rows, err := h.Sweep(SweepConfig{
		Mixes: []SweepMix{{
			Name: "hexa",
			Apps: []string{"delaunay", "MIS", "mcf", "lbm", "hull", "cactus"},
			Chip: chip,
		}},
		Kinds: []schemes.Kind{schemes.KindSNUCALRU},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(rows) != 1 || rows[0].Err != "" {
		t.Fatalf("rows = %+v", rows)
	}
	serial := NewHarness(0.05)
	r := serial.RunMix([]string{"delaunay", "MIS", "mcf", "lbm", "hull", "cactus"},
		schemes.KindSNUCALRU, noc.Custom(6, 6, 6, 0), false)
	if rows[0].Cycles != r.Cycles {
		t.Fatalf("sweep on custom chip %+v != serial cycles=%d", rows[0], r.Cycles)
	}
}

// Progress callbacks arrive once per cell with monotonically increasing
// done counts.
func TestSweepProgress(t *testing.T) {
	h := NewHarness(0.05)
	var seen []int
	_, err := h.Sweep(SweepConfig{
		Apps:    []string{"delaunay", "MIS"},
		Kinds:   []schemes.Kind{schemes.KindSNUCALRU},
		Workers: 2,
		OnRow:   func(done, total int, row SweepRow) { seen = append(seen, done*100+total) },
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(seen) != 2 || seen[0] != 102 || seen[1] != 202 {
		t.Errorf("progress callbacks = %v, want [102 202]", seen)
	}
}
