package experiments

import (
	"fmt"

	"whirlpool/internal/mem"
	"whirlpool/internal/noc"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/stats"
	"whirlpool/internal/workloads"
)

// Fig16 sweeps WhirlTool's pool count (2/3/4) over the given apps and
// reports speedup over Jigsaw, with the manual classification as the
// reference dot (Fig 16).
func (h *Harness) Fig16(apps []string) *Table {
	t := &Table{
		Title: "Fig 16: WhirlTool speedup over Jigsaw (2/3/4 pools) vs manual",
		Cols:  []string{"app", "2 pools", "3 pools", "4 pools", "manual", "manual-pools"},
	}
	for _, app := range apps {
		jig := h.RunSingle(app, schemes.KindJigsaw, RunOptions{})
		row := []string{app}
		for k := 2; k <= 4; k++ {
			g := h.WhirlToolGrouping(app, k, true)
			r := h.RunSingle(app, schemes.KindWhirlpool, RunOptions{Grouping: g})
			row = append(row, Pct(float64(jig.Cycles)/float64(r.Cycles)-1))
		}
		at := h.App(app)
		if at.W.NumPoolsManual() > 0 {
			man := h.RunSingle(app, schemes.KindWhirlpool, RunOptions{})
			row = append(row, Pct(float64(jig.Cycles)/float64(man.Cycles)-1),
				fmt.Sprintf("%d", at.W.NumPoolsManual()))
		} else {
			row = append(row, "-", "-")
		}
		t.AddRow(row...)
	}
	return t
}

// Fig17 renders WhirlTool's clustering dendrograms for dt and omnetpp
// (Fig 17).
func (h *Harness) Fig17() string {
	out := "== Fig 17: WhirlTool hierarchical clustering ==\n"
	for _, app := range []string{"delaunay", "omnet"} {
		at := h.App(app)
		d := h.Dendrogram(app, true)
		nameOf := func(cp mem.Callpoint) string {
			i := int(cp) - 1
			if i >= 0 && i < len(at.W.Structs) {
				return at.W.Structs[i].Spec.Name
			}
			return fmt.Sprintf("cp%d", cp)
		}
		out += fmt.Sprintf("\n%s:\n%s", app, d.Render(nameOf))
	}
	return out
}

// Fig18 compares WhirlTool profiles from train vs ref inputs on the apps
// the paper calls out as sensitive (Fig 18).
func (h *Harness) Fig18() *Table {
	t := &Table{
		Title: "Fig 18: WhirlTool sensitivity to training inputs (speedup vs Jigsaw, 3 pools)",
		Cols:  []string{"app", "profile train", "profile ref"},
	}
	for _, app := range []string{"leslie", "omnet", "xalanc", "setCover"} {
		jig := h.RunSingle(app, schemes.KindJigsaw, RunOptions{})
		gTrain := h.WhirlToolGrouping(app, 3, true)
		gRef := h.WhirlToolGrouping(app, 3, false)
		rTrain := h.RunSingle(app, schemes.KindWhirlpool, RunOptions{Grouping: gTrain})
		rRef := h.RunSingle(app, schemes.KindWhirlpool, RunOptions{Grouping: gRef})
		t.AddRow(app,
			Pct(float64(jig.Cycles)/float64(rTrain.Cycles)-1),
			Pct(float64(jig.Cycles)/float64(rRef.Cycles)-1))
	}
	return t
}

// Fig21 runs the whole single-threaded suite under all six schemes and
// reports gmean slowdown vs Whirlpool plus energy and access breakdowns
// (Fig 21). WhirlTool classification (3 pools, train inputs) stands in
// for Whirlpool's classification, as in the paper's final evaluation.
func (h *Harness) Fig21(apps []string) (*Table, map[schemes.Kind][]*sim.Result) {
	all := make(map[schemes.Kind][]*sim.Result)
	for _, app := range apps {
		grouping := h.WhirlToolGrouping(app, 3, true)
		for _, k := range schemes.PaperKinds() {
			opt := RunOptions{}
			if k == schemes.KindWhirlpool {
				opt.Grouping = grouping
			}
			all[k] = append(all[k], h.RunSingle(app, k, opt))
		}
	}
	t := &Table{
		Title: "Fig 21: overall single-threaded results (" + fmt.Sprint(len(apps)) + " apps)",
		Cols: []string{"scheme", "gmean slowdown", "DME (norm)", "net", "bank", "mem",
			"LLC APKI", "hits", "misses", "bypasses"},
	}
	base := all[schemes.KindWhirlpool]
	var baseEnergy float64
	for _, r := range base {
		baseEnergy += r.Energy.Total()
	}
	for _, k := range schemes.PaperKinds() {
		rs := all[k]
		ratios := make([]float64, len(rs))
		var eTot, eNet, eBank, eMem float64
		var demand, hits, misses, byp, instrs uint64
		for i, r := range rs {
			ratios[i] = float64(r.Cycles) / float64(base[i].Cycles)
			eTot += r.Energy.Total()
			eNet += r.Energy.NetworkPJ
			eBank += r.Energy.BankPJ
			eMem += r.Energy.MemoryPJ
			demand += r.Demand
			hits += r.Hits
			misses += r.Misses
			byp += r.Bypasses
			instrs += r.Instrs
		}
		instrK := float64(instrs) / 1000
		t.AddRow(k.String(),
			Pct(stats.Gmean(ratios)-1),
			F(eTot/baseEnergy, 3),
			F(eNet/baseEnergy, 3),
			F(eBank/baseEnergy, 3),
			F(eMem/baseEnergy, 3),
			F(float64(demand)/instrK, 1),
			F(float64(hits)/instrK, 1),
			F(float64(misses)/instrK, 1),
			F(float64(byp)/instrK, 1))
	}
	t.AddNote("slowdown vs Whirlpool (gmean over apps); energy normalized to Whirlpool total")
	return t, all
}

// MixSpec names one multi-programmed mix.
type MixSpec struct {
	Apps []string
}

// RandomMixes draws n mixes of size k from the SPEC-like apps, as in
// Appendix A ("random mixes of memory-intensive SPEC CPU2006 apps").
func RandomMixes(n, k int, seed uint64) []MixSpec {
	var specApps []string
	for _, s := range workloads.Specs() {
		if s.Suite == "spec" {
			specApps = append(specApps, s.Name)
		}
	}
	rng := stats.NewRng(seed)
	mixes := make([]MixSpec, n)
	for i := range mixes {
		apps := make([]string, k)
		for j := range apps {
			apps[j] = specApps[rng.Intn(len(specApps))]
		}
		mixes[i] = MixSpec{Apps: apps}
	}
	return mixes
}

// Fig22Row is one scheme's weighted-speedup distribution over mixes.
type Fig22Row struct {
	Label    string
	Speedups []float64 // sorted descending (inverse CDF)
	Gmean    float64
}

// Fig22 runs multi-programmed mixes at 4 or 16 cores and reports weighted
// speedup over Jigsaw for Whirlpool and the no-bypass ablations (Fig 22).
func (h *Harness) Fig22(mixes []MixSpec, cores16 bool) (*Table, []Fig22Row) {
	chipFor := func() *noc.Chip {
		if cores16 {
			return noc.SixteenCoreChip()
		}
		return noc.FourCoreChip()
	}
	type variant struct {
		label    string
		kind     schemes.Kind
		noBypass bool
	}
	variants := []variant{
		{"Whirlpool", schemes.KindWhirlpool, false},
		{"Whirlpool-NoBypass", schemes.KindWhirlpool, true},
		{"Jigsaw-NoBypass", schemes.KindJigsaw, true},
	}
	rows := make([]Fig22Row, len(variants))
	for i := range rows {
		rows[i].Label = variants[i].label
	}
	for _, mix := range mixes {
		base := h.RunMix(mix.Apps, schemes.KindJigsaw, chipFor(), false)
		for vi, v := range variants {
			r := h.RunMix(mix.Apps, v.kind, chipFor(), v.noBypass)
			ws := 0.0
			for c := range mix.Apps {
				ws += r.Cores[c].IPC() / base.Cores[c].IPC()
			}
			rows[vi].Speedups = append(rows[vi].Speedups, ws/float64(len(mix.Apps)))
		}
	}
	label := "4 cores"
	if cores16 {
		label = "16 cores"
	}
	t := &Table{
		Title: "Fig 22 (" + label + "): weighted speedup vs Jigsaw over mixes",
		Cols:  []string{"scheme", "gmean", "min", "p25", "median", "p75", "max"},
	}
	for i := range rows {
		rows[i].Speedups = stats.SortedDescending(rows[i].Speedups)
		rows[i].Gmean = stats.Gmean(rows[i].Speedups)
		s := rows[i].Speedups
		t.AddRow(rows[i].Label,
			F(rows[i].Gmean, 4),
			F(s[len(s)-1], 4),
			F(stats.Percentile(s, 25), 4),
			F(stats.Percentile(s, 50), 4),
			F(stats.Percentile(s, 75), 4),
			F(s[0], 4))
	}
	return t, rows
}

// Table2 reproduces the manual-port summary (Table 2).
func (h *Harness) Table2() *Table {
	t := &Table{
		Title: "Table 2: manually ported applications",
		Cols:  []string{"application", "pools", "data structures", "LOC"},
	}
	for _, s := range workloads.Specs() {
		if len(s.ManualPools) == 0 {
			continue
		}
		names := ""
		for i, st := range s.Structs {
			if i > 0 {
				names += ", "
			}
			names += st.Name
		}
		t.AddRow(s.Name, fmt.Sprintf("%d", len(s.ManualPools)), names,
			fmt.Sprintf("%d", s.ManualLOC))
	}
	return t
}

// Table3 prints the simulated system configuration (Table 3).
func Table3() *Table {
	t := &Table{
		Title: "Table 3: simulated system configuration",
		Cols:  []string{"component", "configuration"},
	}
	t.AddRow("Cores", "4/16 cores, OOO-equivalent stall model, 2 GHz")
	t.AddRow("L1 caches", "32KB, 8-way, split D/I, 4-cycle latency")
	t.AddRow("L2 caches", "128KB private per-core, 8-way, inclusive, 6-cycle latency")
	t.AddRow("L3 cache", "512KB/bank, zcache-equivalent assoc, 9-cycle bank latency")
	t.AddRow("NoC", "5x5/9x9 mesh, X-Y routing, 3-cycle routers, 2-cycle links")
	t.AddRow("Memory", "1/4 MCUs, 120-cycle zero-load latency")
	return t
}
