package experiments

import (
	"strconv"
	"strings"
	"testing"

	"whirlpool/internal/schemes"
)

// Figure-runner smoke tests at small scale: each must produce a table
// with the expected structure and the paper's qualitative content.

// Scale 0.25 keeps each trace's unique footprint above the LLC size so
// warm-up cannot artificially fit streaming data (see docs/design.md).
var figH = NewHarness(0.25)

func TestFig02Structure(t *testing.T) {
	tab := figH.Fig02()
	if len(tab.Rows) != 3 {
		t.Fatalf("dt has 3 pools, table has %d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "points" || tab.Rows[2][0] != "triangles" {
		t.Fatalf("unexpected pools: %v", tab.Rows)
	}
}

func TestFig05RendersThreeMaps(t *testing.T) {
	out := figH.Fig05()
	for _, want := range []string{"S-NUCA", "Jigsaw", "Whirlpool"} {
		if !strings.Contains(out, want) {
			t.Fatalf("placement output missing %s:\n%s", want, out)
		}
	}
	// The Whirlpool map must mention the dt pool names in its legend.
	if !strings.Contains(out, "points") {
		t.Fatal("Whirlpool legend missing pool names")
	}
}

func TestFig06ShowsAlternation(t *testing.T) {
	tab := figH.Fig06()
	if len(tab.Rows) < 6 {
		t.Fatalf("too few windows: %d", len(tab.Rows))
	}
	// Both grids must dominate at some point.
	doms := map[string]bool{}
	for _, r := range tab.Rows {
		doms[r[3]] = true
	}
	if !doms["grid1"] || !doms["grid2"] {
		t.Fatalf("no alternation: %v", doms)
	}
}

func TestFig08CurvesDrop(t *testing.T) {
	tab := figH.Fig08()
	// The first row is size 0 (everything misses), the last is 12MB
	// (everything fits): each pool's MPKI must fall drastically.
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	for c := 1; c < len(tab.Cols); c++ {
		if first[c] == last[c] {
			t.Fatalf("pool %s curve did not drop: %v -> %v", tab.Cols[c], first[c], last[c])
		}
	}
}

func TestFig09EdgesFlat(t *testing.T) {
	tab := figH.Fig09()
	// Find the edges column; its MPKI at max size must stay substantial
	// (streaming), unlike vertices.
	edgeCol := -1
	for c, name := range tab.Cols {
		if strings.HasPrefix(name, "edges") {
			edgeCol = c
		}
	}
	if edgeCol < 0 {
		t.Fatalf("no edges column: %v", tab.Cols)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[edgeCol] == "0.00" {
		t.Fatal("edges curve dropped to zero; should stream")
	}
}

func TestFig10SixRows(t *testing.T) {
	tab := figH.Fig10()
	if len(tab.Rows) != 6 {
		t.Fatalf("six schemes expected, got %d", len(tab.Rows))
	}
	// Whirlpool is the normalization baseline: its exec time is 1.000.
	for _, r := range tab.Rows {
		if r[0] == "Whirlpool" && r[1] != "1.000" {
			t.Fatalf("whirlpool not normalized: %v", r)
		}
	}
}

func TestFig11ProducesTimeline(t *testing.T) {
	tab := figH.Fig11()
	if len(tab.Rows) < 3 {
		t.Fatalf("timeline too short: %d rows", len(tab.Rows))
	}
	if len(tab.Cols) != 4 {
		t.Fatalf("cols = %v", tab.Cols)
	}
}

func TestFig16SubsetRuns(t *testing.T) {
	tab := figH.Fig16([]string{"MIS", "hull"})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Manual columns filled for both (both are Table 2 apps).
	for _, r := range tab.Rows {
		if r[4] == "-" {
			t.Fatalf("manual column missing for %s", r[0])
		}
	}
}

func TestFig17MentionsBothApps(t *testing.T) {
	out := figH.Fig17()
	if !strings.Contains(out, "delaunay") || !strings.Contains(out, "omnet") {
		t.Fatalf("dendrograms missing apps:\n%s", out)
	}
	if !strings.Contains(out, "merge") {
		t.Fatal("no merges rendered")
	}
}

func TestFig21SubsetStructure(t *testing.T) {
	tab, all := figH.Fig21([]string{"delaunay", "MIS", "mcf"})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for k, rs := range all {
		if len(rs) != 3 {
			t.Fatalf("%v: %d results", k, len(rs))
		}
	}
	// Whirlpool's gmean slowdown over itself is +0.0%.
	for _, r := range tab.Rows {
		if r[0] == "Whirlpool" && r[1] != "+0.0%" {
			t.Fatalf("whirlpool row: %v", r)
		}
	}
}

func TestFig22SmallMixes(t *testing.T) {
	mixes := RandomMixes(3, 4, 1)
	h := NewHarness(0.04)
	tab, rows := h.Fig22(mixes, false)
	if len(tab.Rows) != 3 {
		t.Fatalf("variants = %d", len(tab.Rows))
	}
	for _, r := range rows {
		if len(r.Speedups) != 3 {
			t.Fatalf("%s: %d speedups", r.Label, len(r.Speedups))
		}
		if r.Gmean < 0.8 || r.Gmean > 1.5 {
			t.Fatalf("%s: implausible gmean %v", r.Label, r.Gmean)
		}
	}
}

func TestRandomMixesShape(t *testing.T) {
	mixes := RandomMixes(5, 4, 2)
	if len(mixes) != 5 {
		t.Fatalf("mixes = %d", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Apps) != 4 {
			t.Fatalf("mix size = %d", len(m.Apps))
		}
	}
	// Deterministic.
	again := RandomMixes(5, 4, 2)
	for i := range mixes {
		for j := range mixes[i].Apps {
			if mixes[i].Apps[j] != again[i].Apps[j] {
				t.Fatal("mixes not deterministic")
			}
		}
	}
}

func TestFig23SelfSimilarity(t *testing.T) {
	tab := Fig23()
	if len(tab.Rows) != 13 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable2AllManualApps(t *testing.T) {
	tab := figH.Table2()
	if len(tab.Rows) != 12 {
		t.Fatalf("Table 2 rows = %d, want 12 manually ported apps", len(tab.Rows))
	}
}

func TestTable3Static(t *testing.T) {
	tab := Table3()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationLatencyCurvesRuns(t *testing.T) {
	tab := figH.AblationLatencyCurves("delaunay")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationBypassRuns(t *testing.T) {
	tab := figH.AblationBypass([]string{"MIS"})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestSchemeBreakdownConsistency(t *testing.T) {
	tab := figH.SchemeBreakdown("cactus", "test")
	// hit% + miss% + byp% ≈ 100 for every scheme.
	for _, r := range tab.Rows {
		var sum float64
		for _, c := range []int{7, 8, 9} {
			v, err := strconv.ParseFloat(r[c], 64)
			if err != nil {
				t.Fatalf("bad cell %q", r[c])
			}
			sum += v
		}
		if sum < 99.5 || sum > 100.5 {
			t.Fatalf("%s: outcome percentages sum to %v", r[0], sum)
		}
	}
}

// Fig13 on one app (graph apps are slower; mergesort is the quick one).
func TestFig13OneApp(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel sim is slow")
	}
	tab := figH.Fig13([]string{"mergesort"})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "SNUCA" {
		t.Fatalf("first variant = %v", tab.Rows[0])
	}
}

func TestParallelVariantOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel sim is slow")
	}
	base := figH.RunParallel("pagerank", VariantSNUCA)
	wp := figH.RunParallel("pagerank", VariantWhirlpoolPaWS)
	if wp.Cycles >= base.Cycles {
		t.Errorf("W+PaWS (%d) should beat S-NUCA (%d) on pagerank", wp.Cycles, base.Cycles)
	}
	// Energy: the paper reports large W+PaWS savings; our model's
	// per-partition VC reconfiguration churn keeps energy near S-NUCA
	// instead (documented deviation, EXPERIMENTS.md). Bound the damage.
	if wp.Energy.Total() >= 2*base.Energy.Total() {
		t.Errorf("W+PaWS energy (%.2e) should stay within 2x of S-NUCA (%.2e)",
			wp.Energy.Total(), base.Energy.Total())
	}
}

func TestManualVsJigsawGainsOnPortedApps(t *testing.T) {
	// Sec 3.1: over the manually ported apps, Whirlpool improves on
	// Jigsaw on average.
	apps := []string{"MIS", "delaunay", "mcf", "cactus"}
	var jigC, whlC float64
	for _, app := range apps {
		jigC += float64(figH.RunSingle(app, schemes.KindJigsaw, RunOptions{}).Cycles)
		whlC += float64(figH.RunSingle(app, schemes.KindWhirlpool, RunOptions{}).Cycles)
	}
	if whlC >= jigC {
		t.Errorf("Whirlpool (%v) should beat Jigsaw (%v) over ported apps", whlC, jigC)
	}
}
