package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"whirlpool/internal/noc"
	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/workloads"
)

// SweepMix is a named multi-programmed combination swept as one unit
// (one app per core, fixed-work methodology).
type SweepMix struct {
	Name string
	Apps []string
	// Pins places app i on core Pins[i]; nil means app i on core i.
	Pins []int
	// Chip overrides the default topology (4-core chip for up to 4
	// apps, 16-core beyond).
	Chip *noc.Chip
}

// SweepConfig describes an app × scheme grid to fan out across workers.
type SweepConfig struct {
	// Apps are single-app jobs (run on core 0 of the 4-core chip).
	Apps []string
	// Mixes are multi-app jobs (4-core chip up to 4 apps, 16-core up
	// to 16, or each mix's own Chip).
	Mixes []SweepMix
	// Kinds are the schemes to cross with every app and mix; nil means
	// every registered scheme.
	Kinds []schemes.Kind
	// Workers bounds concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// NoBypass disables VC bypassing in every run (ablation sweeps).
	NoBypass bool
	// OnRow, if set, observes each finished row (progress reporting).
	// It is called from worker goroutines, serialized by the engine.
	OnRow func(done, total int, row SweepRow)
	// Context, if set, cancels the sweep: in-flight cells finish, cells
	// not yet started are marked with Err "canceled", and Sweep returns
	// the context's error alongside the partial rows.
	Context context.Context
	// Store, if set, memoizes cells in a persistent result store: any
	// cell whose content-address (spec JSON × scheme × scale × seed ×
	// reconfig × chip × format version) is already present is served
	// without regenerating its trace or simulating anything, and each
	// freshly computed row is committed as it finishes — including
	// mid-sweep cancellation, so a resubmitted sweep resumes where the
	// canceled one stopped. Store.Stats() proves the split: Hits rows
	// were served, Misses were computed. Error rows are never memoized.
	Store *results.Store
	// Stats, if non-nil, is filled with this sweep's cell-resolution
	// summary before Sweep returns (per-sweep accounting even when the
	// Store is shared by concurrent sweeps).
	Stats *SweepStats
}

// SweepStats summarizes how one sweep's cells were resolved.
type SweepStats struct {
	// Served cells came from the result store: no trace generation, no
	// simulation.
	Served int `json:"served"`
	// Computed cells were simulated (and committed to the store when
	// one is configured).
	Computed int `json:"computed"`
	// Errors counts cells that failed (error rows).
	Errors int `json:"errors"`
	// Canceled counts cells skipped by context cancellation.
	Canceled int `json:"canceled"`
}

// SweepRow is one (app-or-mix, scheme) cell of a sweep's result grid.
type SweepRow struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	// Mix marks rows produced by a multi-app mix; App is the mix name.
	Mix bool `json:"mix,omitempty"`

	Cycles uint64  `json:"cycles"`
	Instrs uint64  `json:"instrs"`
	IPC    float64 `json:"ipc"`
	APKI   float64 `json:"apki"`
	MPKI   float64 `json:"mpki"`

	LLCAccesses uint64 `json:"llc_accesses"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Bypasses    uint64 `json:"bypasses"`

	EnergyPJ        float64 `json:"energy_pj"`
	NetworkEnergyPJ float64 `json:"network_energy_pj"`
	BankEnergyPJ    float64 `json:"bank_energy_pj"`
	MemoryEnergyPJ  float64 `json:"memory_energy_pj"`

	// WallMS is host wall-clock time for this cell (not simulated time).
	WallMS float64 `json:"wall_ms"`
	// Err is set when the cell failed; the other fields are then zero.
	Err string `json:"error,omitempty"`
}

func rowFromResult(name string, mix bool, kind schemes.Kind, r *sim.Result, wall time.Duration) SweepRow {
	return SweepRow{
		App:             name,
		Scheme:          kind.ID(),
		Mix:             mix,
		Cycles:          r.Cycles,
		Instrs:          r.Instrs,
		IPC:             float64(r.Instrs) / float64(r.Cycles),
		APKI:            r.TotalAccessesAPKI(),
		MPKI:            r.MPKI(),
		LLCAccesses:     r.Demand,
		Hits:            r.Hits,
		Misses:          r.Misses,
		Bypasses:        r.Bypasses,
		EnergyPJ:        r.Energy.Total(),
		NetworkEnergyPJ: r.Energy.NetworkPJ,
		BankEnergyPJ:    r.Energy.BankPJ,
		MemoryEnergyPJ:  r.Energy.MemoryPJ,
		WallMS:          float64(wall.Microseconds()) / 1000,
	}
}

// sweepJob is one grid cell.
type sweepJob struct {
	app  string
	mix  *SweepMix
	kind schemes.Kind
}

// mixChip resolves the topology a mix runs on: its own Chip if set,
// else the paper's 4-core chip when the apps and pins fit, else the
// 16-core chip.
func mixChip(m *SweepMix) *noc.Chip {
	if m.Chip != nil {
		return m.Chip
	}
	need := len(m.Apps)
	for _, p := range m.Pins {
		if p+1 > need {
			need = p + 1
		}
	}
	if need <= 4 {
		return noc.FourCoreChip()
	}
	return noc.SixteenCoreChip()
}

// Sweep fans the app × scheme grid out across a worker pool and returns
// one row per cell, in deterministic grid order (apps first, then
// mixes; schemes in the given order). Each app's trace is generated and
// private-filtered once and shared read-only by every scheme's run, so
// results are bit-identical to serial RunSingle/RunMix calls.
func (h *Harness) Sweep(cfg SweepConfig) ([]SweepRow, error) {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = schemes.AllKinds()
	}
	if len(cfg.Apps) == 0 && len(cfg.Mixes) == 0 {
		return nil, fmt.Errorf("experiments: sweep has no apps and no mixes")
	}

	// Fail fast on unresolvable names and oversized mixes, before any
	// expensive trace generation.
	needed := map[string]bool{}
	for _, a := range cfg.Apps {
		needed[a] = true
	}
	for i := range cfg.Mixes {
		m := &cfg.Mixes[i]
		cores := mixChip(m).NCores()
		if len(m.Apps) == 0 || len(m.Apps) > cores {
			return nil, fmt.Errorf("experiments: mix %q has %d apps (want 1..%d)", m.Name, len(m.Apps), cores)
		}
		if m.Pins != nil {
			if len(m.Pins) != len(m.Apps) {
				return nil, fmt.Errorf("experiments: mix %q has %d pins for %d apps", m.Name, len(m.Pins), len(m.Apps))
			}
			seen := map[int]bool{}
			for _, p := range m.Pins {
				if p < 0 || p >= cores {
					return nil, fmt.Errorf("experiments: mix %q pins core %d (chip has %d cores)", m.Name, p, cores)
				}
				if seen[p] {
					return nil, fmt.Errorf("experiments: mix %q pins core %d twice", m.Name, p)
				}
				seen[p] = true
			}
		}
		for _, a := range m.Apps {
			needed[a] = true
		}
	}
	var unknown []string
	for a := range needed {
		if _, ok := workloads.ByName(a); !ok {
			unknown = append(unknown, a)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("experiments: unknown apps in sweep: %v (whirlsim -list shows valid names)", unknown)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The grid, in deterministic order: apps first, then mixes.
	var jobs []sweepJob
	for _, a := range cfg.Apps {
		for _, k := range kinds {
			jobs = append(jobs, sweepJob{app: a, kind: k})
		}
	}
	for i := range cfg.Mixes {
		for _, k := range kinds {
			jobs = append(jobs, sweepJob{mix: &cfg.Mixes[i], kind: k})
		}
	}
	rows := make([]SweepRow, len(jobs))

	// Stage 0: serve memoized cells from the result store. This happens
	// before trace prefetch so a fully warm store costs zero trace
	// generations as well as zero simulations.
	var served []bool
	var keys []string
	if cfg.Store != nil {
		served, keys = h.storeLookup(cfg.Store, jobs, cfg.NoBypass, rows)
	}

	// Stage 1: build every trace an unserved cell needs, concurrently,
	// each exactly once.
	prefetchNeeded := map[string]bool{}
	for i, j := range jobs {
		if served != nil && served[i] {
			continue
		}
		if j.mix != nil {
			for _, a := range j.mix.Apps {
				prefetchNeeded[a] = true
			}
		} else {
			prefetchNeeded[j.app] = true
		}
	}
	names := make([]string, 0, len(prefetchNeeded))
	for a := range prefetchNeeded {
		names = append(names, a)
	}
	sort.Strings(names)
	prefetch := make(chan string, len(names))
	for _, a := range names {
		prefetch <- a
	}
	close(prefetch)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range prefetch {
				if ctx.Err() != nil {
					continue // drain without building
				}
				_, _ = h.AppErr(a)
			}
		}()
	}
	wg.Wait()

	// Stage 2: run the unserved cells. Served rows stream through OnRow
	// first (they are done by definition), in grid order.
	var done int
	for i := range jobs {
		if served != nil && served[i] {
			done++
			if cfg.OnRow != nil {
				cfg.OnRow(done, len(jobs), rows[i])
			}
		}
	}
	idx := make(chan int, len(jobs))
	for i := range jobs {
		if served == nil || !served[i] {
			idx <- i
		}
	}
	close(idx)
	var progressMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					name := jobs[i].app
					if jobs[i].mix != nil {
						name = jobs[i].mix.Name
					}
					rows[i] = SweepRow{App: name, Scheme: jobs[i].kind.ID(),
						Mix: jobs[i].mix != nil, Err: "canceled"}
					continue
				}
				rows[i] = h.runSweepJob(jobs[i], cfg.NoBypass)
				if cfg.Store != nil {
					storeCommit(cfg.Store, keys[i], rows[i])
				}
				progressMu.Lock()
				done++
				if cfg.OnRow != nil {
					cfg.OnRow(done, len(jobs), rows[i])
				}
				progressMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if cfg.Stats != nil {
		st := SweepStats{}
		for i, r := range rows {
			switch {
			case served != nil && served[i]:
				st.Served++
			case r.Err == "canceled":
				st.Canceled++
			case r.Err != "":
				st.Errors++
			default:
				st.Computed++
			}
		}
		*cfg.Stats = st
	}
	if err := ctx.Err(); err != nil {
		return rows, fmt.Errorf("experiments: sweep canceled after %d of %d cells: %w", done, len(jobs), err)
	}
	return rows, nil
}

// runSweepJob executes one cell, converting panics from deep inside the
// simulator into error rows so one bad cell cannot take down a sweep.
// The panic site's stack rides along in the error row: without it a
// sweep-reported failure is undebuggable, because recover() by itself
// discards where the panic happened.
func (h *Harness) runSweepJob(j sweepJob, noBypass bool) (row SweepRow) {
	name := j.app
	if j.mix != nil {
		name = j.mix.Name
	}
	defer func() {
		if r := recover(); r != nil {
			row = SweepRow{App: name, Scheme: j.kind.ID(), Mix: j.mix != nil,
				Err: fmt.Sprintf("panic: %v\n%s", r, debug.Stack())}
		}
	}()
	start := time.Now()
	var r *sim.Result
	if j.mix != nil {
		r = h.RunMixPinned(j.mix.Apps, j.mix.Pins, j.kind, mixChip(j.mix), noBypass)
	} else {
		r = h.RunSingle(j.app, j.kind, RunOptions{NoBypass: noBypass})
	}
	return rowFromResult(name, j.mix != nil, j.kind, r, time.Since(start))
}
