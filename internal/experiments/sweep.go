package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"whirlpool/internal/noc"
	"whirlpool/internal/obs"
	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
	"whirlpool/internal/sim"
	"whirlpool/internal/workloads"
)

// SweepMix is a named multi-programmed combination swept as one unit
// (one app per core, fixed-work methodology).
type SweepMix struct {
	Name string
	Apps []string
	// Pins places app i on core Pins[i]; nil means app i on core i.
	Pins []int
	// Chip overrides the default topology (4-core chip for up to 4
	// apps, 16-core beyond).
	Chip *noc.Chip
}

// SweepCell names one grid cell explicitly: either an app or a mix
// (resolved against SweepConfig.Mixes by name) crossed with one scheme.
// Explicit cells are how a distributed coordinator hands a shard of its
// grid to a worker: the worker runs exactly these cells, nothing else.
type SweepCell struct {
	App    string `json:"app,omitempty"`
	Mix    string `json:"mix,omitempty"`
	Scheme string `json:"scheme"`
}

// CellRef identifies one pending (not store-served) cell handed to a
// Remote executor: its position in the grid, its identity, and its
// content-address (empty when the cell is uncacheable). Rows coming
// back from remote workers carry the same key, which is how the
// coordinator routes them into the grid.
type CellRef struct {
	Index int
	Cell  SweepCell
	Key   string
}

// RemoteExec executes a sweep's pending cells somewhere else (the
// dispatch layer shards them across worker daemons). It must call
// deliver at most once per cell, from any goroutine, and must not call
// it after returning; cells never delivered are marked canceled (when
// ctx was canceled) or as error rows (when the executor failed).
type RemoteExec func(ctx context.Context, cells []CellRef, deliver func(CellRef, SweepRow)) error

// SweepConfig describes an app × scheme grid to fan out across workers.
type SweepConfig struct {
	// Apps are single-app jobs (run on core 0 of the 4-core chip).
	Apps []string
	// Mixes are multi-app jobs (4-core chip up to 4 apps, 16-core up
	// to 16, or each mix's own Chip). With Cells set they are only
	// definitions: mix cells resolve against them by name.
	Mixes []SweepMix
	// Kinds are the schemes to cross with every app and mix; nil means
	// every registered scheme. Ignored when Cells is set.
	Kinds []schemes.Kind
	// Cells, when non-empty, replaces the apps × schemes cross product
	// with exactly these cells, in order (shard execution).
	Cells []SweepCell
	// Workers bounds concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// NoBypass disables VC bypassing in every run (ablation sweeps).
	NoBypass bool
	// OnRow, if set, observes each finished row (progress reporting),
	// including canceled cells, so done reaches total even on aborted
	// sweeps. It is called from worker goroutines, serialized by the
	// engine.
	OnRow func(done, total int, row SweepRow)
	// Context, if set, cancels the sweep: in-flight cells finish, cells
	// not yet started are marked with Err "canceled", and Sweep returns
	// the context's error alongside the partial rows.
	Context context.Context
	// Store, if set, memoizes cells in a persistent result store: any
	// cell whose content-address (spec JSON × scheme × scale × seed ×
	// reconfig × chip × format version) is already present is served
	// without regenerating its trace or simulating anything, and each
	// freshly computed row is committed as it finishes — including
	// mid-sweep cancellation, so a resubmitted sweep resumes where the
	// canceled one stopped. Store.Stats() proves the split: Hits rows
	// were served, Misses were computed. Error rows are never memoized.
	Store *results.Store
	// Remote, if set, executes the pending (not store-served) cells via
	// a remote executor instead of the local worker pool. Store lookup,
	// per-cell commit, progress, and cancellation accounting all stay
	// here; only the simulation happens elsewhere. No traces are built
	// locally.
	Remote RemoteExec
	// Stats, if non-nil, is filled with this sweep's cell-resolution
	// summary before Sweep returns (per-sweep accounting even when the
	// Store is shared by concurrent sweeps).
	Stats *SweepStats
	// Tracer, if set, receives per-cell stage spans (store.lookup,
	// trace.load, sim.run, store.commit), parented under the span
	// context riding Context (obs.FromContext) when one is present.
	// Span emission is allocation-free; a nil Tracer costs nothing.
	Tracer *obs.Tracer
}

// SweepStats summarizes how one sweep's cells were resolved.
type SweepStats struct {
	// Served cells came from the result store: no trace generation, no
	// simulation.
	Served int `json:"served"`
	// Computed cells were simulated (and committed to the store when
	// one is configured).
	Computed int `json:"computed"`
	// Errors counts cells that failed (error rows).
	Errors int `json:"errors"`
	// Canceled counts cells skipped by context cancellation.
	Canceled int `json:"canceled"`
	// Workers, on distributed sweeps, splits the work by executing
	// worker (filled by the dispatch layer, not by Sweep itself).
	Workers []WorkerStats `json:"workers,omitempty"`
}

// WorkerStats is one remote worker's share of a distributed sweep.
type WorkerStats struct {
	// Worker is the worker daemon's base URL.
	Worker string `json:"worker"`
	// Served and Computed split the worker's delivered cells by how its
	// own store resolved them.
	Served   int `json:"served"`
	Computed int `json:"computed"`
	// Errors counts error rows this worker delivered.
	Errors int `json:"errors,omitempty"`
	// Redispatched counts cells moved to surviving workers after this
	// one died mid-shard.
	Redispatched int `json:"redispatched,omitempty"`
	// Dead marks a worker that failed during the sweep.
	Dead bool `json:"dead,omitempty"`
}

// SweepRow is one (app-or-mix, scheme) cell of a sweep's result grid.
type SweepRow struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	// Mix marks rows produced by a multi-app mix; App is the mix name.
	Mix bool `json:"mix,omitempty"`

	Cycles uint64  `json:"cycles"`
	Instrs uint64  `json:"instrs"`
	IPC    float64 `json:"ipc"`
	APKI   float64 `json:"apki"`
	MPKI   float64 `json:"mpki"`

	LLCAccesses uint64 `json:"llc_accesses"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Bypasses    uint64 `json:"bypasses"`

	EnergyPJ        float64 `json:"energy_pj"`
	NetworkEnergyPJ float64 `json:"network_energy_pj"`
	BankEnergyPJ    float64 `json:"bank_energy_pj"`
	MemoryEnergyPJ  float64 `json:"memory_energy_pj"`

	// WallMS is host wall-clock time for this cell (not simulated time).
	WallMS float64 `json:"wall_ms"`
	// Err is set when the cell failed; the other fields are then zero.
	Err string `json:"error,omitempty"`
	// Key is the cell's content-address (see resultstore.go), the same
	// for every run with identical inputs; empty when the cell is
	// uncacheable. Distributed coordinators route returned rows into
	// the grid by it.
	Key string `json:"key,omitempty"`
}

func rowFromResult(name string, mix bool, kind schemes.Kind, r *sim.Result, wall time.Duration) SweepRow {
	// A zero-access cell (e.g. an empty recorded trace) finishes in zero
	// cycles; 0/0 would be NaN, which json.Marshal rejects, so zero-work
	// cells report zero IPC like sim.CoreResult.IPC does.
	ipc := 0.0
	if r.Cycles != 0 {
		ipc = float64(r.Instrs) / float64(r.Cycles)
	}
	return SweepRow{
		App:             name,
		Scheme:          kind.ID(),
		Mix:             mix,
		Cycles:          r.Cycles,
		Instrs:          r.Instrs,
		IPC:             ipc,
		APKI:            r.TotalAccessesAPKI(),
		MPKI:            r.MPKI(),
		LLCAccesses:     r.Demand,
		Hits:            r.Hits,
		Misses:          r.Misses,
		Bypasses:        r.Bypasses,
		EnergyPJ:        r.Energy.Total(),
		NetworkEnergyPJ: r.Energy.NetworkPJ,
		BankEnergyPJ:    r.Energy.BankPJ,
		MemoryEnergyPJ:  r.Energy.MemoryPJ,
		WallMS:          float64(wall.Microseconds()) / 1000,
	}
}

// sweepJob is one grid cell.
type sweepJob struct {
	app  string
	mix  *SweepMix
	kind schemes.Kind
}

// name returns the row's identity column: the app or mix name.
func (j sweepJob) name() string {
	if j.mix != nil {
		return j.mix.Name
	}
	return j.app
}

// cell returns the job's wire-format identity.
func (j sweepJob) cell() SweepCell {
	if j.mix != nil {
		return SweepCell{Mix: j.mix.Name, Scheme: j.kind.ID()}
	}
	return SweepCell{App: j.app, Scheme: j.kind.ID()}
}

// canceledRow marks one never-run cell.
func canceledRow(j sweepJob, key string) SweepRow {
	return SweepRow{App: j.name(), Scheme: j.kind.ID(), Mix: j.mix != nil,
		Key: key, Err: "canceled"}
}

// mixChip resolves the topology a mix runs on: its own Chip if set,
// else the paper's 4-core chip when the apps and pins fit, else the
// 16-core chip.
func mixChip(m *SweepMix) *noc.Chip {
	if m.Chip != nil {
		return m.Chip
	}
	need := len(m.Apps)
	for _, p := range m.Pins {
		if p+1 > need {
			need = p + 1
		}
	}
	if need <= 4 {
		return noc.FourCoreChip()
	}
	return noc.SixteenCoreChip()
}

// sweepProgress serializes per-row observation: done counts every
// resolved cell — served, computed, failed, or canceled — so observers
// always see done reach total.
type sweepProgress struct {
	mu    sync.Mutex
	done  int
	total int
	onRow func(done, total int, row SweepRow)
}

func (p *sweepProgress) emit(row SweepRow) {
	p.mu.Lock()
	p.done++
	if p.onRow != nil {
		p.onRow(p.done, p.total, row)
	}
	p.mu.Unlock()
}

// buildGrid resolves the configured grid into ordered cells: the
// explicit Cells list when set, else apps × kinds then mixes × kinds.
func buildGrid(cfg *SweepConfig, kinds []schemes.Kind) ([]sweepJob, error) {
	if len(cfg.Cells) > 0 {
		mixByName := map[string]*SweepMix{}
		for i := range cfg.Mixes {
			mixByName[cfg.Mixes[i].Name] = &cfg.Mixes[i]
		}
		jobs := make([]sweepJob, 0, len(cfg.Cells))
		seen := make(map[SweepCell]bool, len(cfg.Cells))
		for _, c := range cfg.Cells {
			k, err := schemes.ParseKind(c.Scheme)
			if err != nil {
				return nil, fmt.Errorf("experiments: cell: %w", err)
			}
			// Duplicate cells would collide in remote row routing (two
			// grid slots, one identity) — reject them here like the
			// daemon's shard endpoint does.
			if seen[c] {
				return nil, fmt.Errorf("experiments: duplicate cell %s%s/%s", c.App, c.Mix, c.Scheme)
			}
			seen[c] = true
			switch {
			case c.App != "" && c.Mix != "":
				return nil, fmt.Errorf("experiments: cell names both app %q and mix %q", c.App, c.Mix)
			case c.Mix != "":
				m, ok := mixByName[c.Mix]
				if !ok {
					return nil, fmt.Errorf("experiments: cell references undefined mix %q", c.Mix)
				}
				jobs = append(jobs, sweepJob{mix: m, kind: k})
			case c.App != "":
				jobs = append(jobs, sweepJob{app: c.App, kind: k})
			default:
				return nil, fmt.Errorf("experiments: cell names neither an app nor a mix")
			}
		}
		return jobs, nil
	}
	if len(cfg.Apps) == 0 && len(cfg.Mixes) == 0 {
		return nil, fmt.Errorf("experiments: sweep has no apps and no mixes")
	}
	var jobs []sweepJob
	for _, a := range cfg.Apps {
		for _, k := range kinds {
			jobs = append(jobs, sweepJob{app: a, kind: k})
		}
	}
	for i := range cfg.Mixes {
		for _, k := range kinds {
			jobs = append(jobs, sweepJob{mix: &cfg.Mixes[i], kind: k})
		}
	}
	return jobs, nil
}

// validateGrid fails fast on unresolvable names and malformed mixes,
// before any expensive trace generation.
func validateGrid(cfg *SweepConfig, jobs []sweepJob) error {
	for i := range cfg.Mixes {
		m := &cfg.Mixes[i]
		cores := mixChip(m).NCores()
		if len(m.Apps) == 0 || len(m.Apps) > cores {
			return fmt.Errorf("experiments: mix %q has %d apps (want 1..%d)", m.Name, len(m.Apps), cores)
		}
		if m.Pins != nil {
			if len(m.Pins) != len(m.Apps) {
				return fmt.Errorf("experiments: mix %q has %d pins for %d apps", m.Name, len(m.Pins), len(m.Apps))
			}
			seen := map[int]bool{}
			for _, p := range m.Pins {
				if p < 0 || p >= cores {
					return fmt.Errorf("experiments: mix %q pins core %d (chip has %d cores)", m.Name, p, cores)
				}
				if seen[p] {
					return fmt.Errorf("experiments: mix %q pins core %d twice", m.Name, p)
				}
				seen[p] = true
			}
		}
	}
	needed := map[string]bool{}
	for _, j := range jobs {
		if j.mix != nil {
			for _, a := range j.mix.Apps {
				needed[a] = true
			}
		} else {
			needed[j.app] = true
		}
	}
	var unknown []string
	//whirl:unordered unknown names are sorted before they reach the error message
	for a := range needed {
		if _, ok := workloads.ByName(a); !ok {
			unknown = append(unknown, a)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("experiments: unknown apps in sweep: %v (whirlsim -list shows valid names)", unknown)
	}
	return nil
}

// Sweep fans the app × scheme grid out across a worker pool and returns
// one row per cell, in deterministic grid order (apps first, then
// mixes; schemes in the given order). Each app's trace is generated and
// private-filtered once and shared read-only by every scheme's run, so
// results are bit-identical to serial RunSingle/RunMix calls.
//
// The run is staged: cells are content-addressed (stage 0), served from
// the result store where possible, trace-prefetched (stage 1), then
// simulated (stage 2) — locally on the worker pool, or remotely when
// cfg.Remote is set (the distributed coordinator path, which reuses
// stages 0 and the per-cell commit unchanged).
func (h *Harness) Sweep(cfg SweepConfig) ([]SweepRow, error) {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = schemes.AllKinds()
	}
	jobs, err := buildGrid(&cfg, kinds)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("experiments: sweep has no cells")
	}
	if err := validateGrid(&cfg, jobs); err != nil {
		return nil, err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rows := make([]SweepRow, len(jobs))

	// Stage spans parent under whatever span context rides the sweep's
	// context (the daemon's job span; absent on plain CLI runs).
	spanParent, _ := obs.FromContext(ctx)

	// Stage 0: content-address every cell (always, not just with a
	// store — rows carry their keys so coordinators can route them and
	// clients can correlate runs), then serve memoized cells. This
	// happens before trace prefetch so a fully warm store costs zero
	// trace generations as well as zero simulations.
	keys := h.cellKeys(jobs, cfg.NoBypass)
	served := make([]bool, len(jobs))
	if cfg.Store != nil {
		h.storeLookup(cfg.Store, keys, rows, served, cfg.Tracer, spanParent)
	}

	// Stage 1: build every trace an unserved cell needs, concurrently,
	// each exactly once. Skipped entirely on the remote path: the
	// simulating workers build their own.
	if cfg.Remote == nil {
		h.prefetchTraces(ctx, jobs, served, workers, cfg.Tracer, spanParent)
	}

	// Stage 2: resolve every cell. Served rows stream through the
	// progress path first (they are done by definition), in grid order.
	prog := &sweepProgress{total: len(jobs), onRow: cfg.OnRow}
	for i := range jobs {
		if served[i] {
			prog.emit(rows[i])
		}
	}
	var execErr error
	if cfg.Remote != nil {
		execErr = h.runRemote(ctx, &cfg, jobs, rows, keys, served, prog)
	} else {
		h.runLocal(ctx, &cfg, jobs, rows, keys, served, prog, workers, spanParent)
	}

	if cfg.Stats != nil {
		st := SweepStats{}
		for i, r := range rows {
			switch {
			case served[i]:
				st.Served++
			case r.Err == "canceled":
				st.Canceled++
			case r.Err != "":
				st.Errors++
			default:
				st.Computed++
			}
		}
		*cfg.Stats = st
	}
	if err := ctx.Err(); err != nil {
		return rows, fmt.Errorf("experiments: sweep canceled after %d of %d cells: %w", prog.done, len(jobs), err)
	}
	if execErr != nil {
		return rows, fmt.Errorf("experiments: dispatch: %w", execErr)
	}
	return rows, nil
}

// prefetchTraces builds each unserved cell's app traces concurrently,
// each exactly once (stage 1). Each build emits a trace.load span whose
// mmap attr records whether the trace came up as a zero-copy mapped
// .wtrc or a heap-decoded stream.
func (h *Harness) prefetchTraces(ctx context.Context, jobs []sweepJob, served []bool, workers int, tr *obs.Tracer, parent obs.SpanContext) {
	needed := map[string]bool{}
	for i, j := range jobs {
		if served[i] {
			continue
		}
		if j.mix != nil {
			for _, a := range j.mix.Apps {
				needed[a] = true
			}
		} else {
			needed[j.app] = true
		}
	}
	names := make([]string, 0, len(needed))
	//whirl:unordered prefetch names are sorted before the workers see them
	for a := range needed {
		names = append(names, a)
	}
	sort.Strings(names)
	prefetch := make(chan string, len(names))
	for _, a := range names {
		prefetch <- a
	}
	close(prefetch)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range prefetch {
				if ctx.Err() != nil {
					continue // drain without building
				}
				sp := tr.Start(parent, "trace.load")
				at, err := h.AppErr(a)
				sp.SetStr("app", a)
				if err != nil {
					sp.SetStr("error", err.Error())
				} else if at != nil && at.Tr != nil {
					m, ok := at.Tr.(interface{ Mapped() bool })
					sp.SetBool("mmap", ok && m.Mapped())
				}
				sp.End()
			}
		}()
	}
	wg.Wait()
}

// runLocal simulates the unserved cells on the local worker pool
// (stage 2). Every resolved cell — computed, failed, or canceled —
// flows through the progress path.
//
// Cells are handed out in same-app batches: all unserved cells of one
// app (or mix) are grouped so one worker runs every scheme of that app
// back to back, feeding the same decoded (or mapped) trace reader into
// each scheme instance through its per-worker sim.Runner — the replay
// cursors rewind instead of re-decoding, and the per-run arenas are
// reused across the whole batch. Rows stay bit-identical: grouping only
// changes which goroutine runs a cell, never its inputs, and every cell
// still commits to the store and emits progress individually. Large
// groups are chunked so a sweep dominated by one app still spreads
// across the pool.
func (h *Harness) runLocal(ctx context.Context, cfg *SweepConfig, jobs []sweepJob, rows []SweepRow, keys []string, served []bool, prog *sweepProgress, workers int, spanParent obs.SpanContext) {
	batches := batchByApp(jobs, served, workers)
	work := make(chan []int, len(batches))
	for _, b := range batches {
		work <- b
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := sim.NewRunner()
			for batch := range work {
				for _, i := range batch {
					if ctx.Err() != nil {
						rows[i] = canceledRow(jobs[i], keys[i])
						prog.emit(rows[i])
						continue
					}
					cell := cfg.Tracer.Start(spanParent, "sweep.cell")
					cell.SetStr("app", jobs[i].name())
					cell.SetStr("scheme", jobs[i].kind.ID())
					sp := cfg.Tracer.Start(cell.Context(), "sim.run")
					sp.SetStr("app", jobs[i].name())
					sp.SetStr("scheme", jobs[i].kind.ID())
					if m := jobs[i].mix; m != nil {
						sp.SetInt("cells", int64(len(m.Apps)))
					} else {
						sp.SetInt("cells", 1)
					}
					row := h.runSweepJob(jobs[i], cfg.NoBypass, runner)
					sp.End()
					row.Key = keys[i]
					rows[i] = row
					if cfg.Store != nil {
						sp = cfg.Tracer.Start(cell.Context(), "store.commit")
						storeCommit(cfg.Store, keys[i], row)
						sp.End()
					}
					if row.Err != "" {
						cell.SetBool("error", true)
					}
					cell.End()
					prog.emit(row)
				}
			}
		}()
	}
	wg.Wait()
}

// batchByApp groups the unserved cell indices by app/mix name (grid
// order preserved within each group, groups in first-appearance order),
// then chunks groups so no batch exceeds ceil(unserved/workers) cells —
// the cap that keeps a one-app sweep parallel while still letting the
// common grid shape (every scheme × one app) ride a single worker's
// warm trace.
func batchByApp(jobs []sweepJob, served []bool, workers int) [][]int {
	groups := map[string][]int{}
	var order []string
	unserved := 0
	for i := range jobs {
		if served[i] {
			continue
		}
		name := jobs[i].name()
		if _, ok := groups[name]; !ok {
			order = append(order, name)
		}
		groups[name] = append(groups[name], i)
		unserved++
	}
	if unserved == 0 {
		return nil
	}
	maxBatch := (unserved + workers - 1) / workers
	if maxBatch < 1 {
		maxBatch = 1
	}
	var batches [][]int
	for _, name := range order {
		g := groups[name]
		for len(g) > maxBatch {
			batches = append(batches, g[:maxBatch])
			g = g[maxBatch:]
		}
		batches = append(batches, g)
	}
	return batches
}

// runRemote hands the unserved cells to cfg.Remote (stage 2 on a
// distributed coordinator): delivered rows are keyed, committed, and
// observed exactly like locally computed ones; cells the executor never
// delivered become canceled or error rows, so the grid is always fully
// accounted for.
func (h *Harness) runRemote(ctx context.Context, cfg *SweepConfig, jobs []sweepJob, rows []SweepRow, keys []string, served []bool, prog *sweepProgress) error {
	pending := make([]CellRef, 0, len(jobs))
	for i, j := range jobs {
		if !served[i] {
			pending = append(pending, CellRef{Index: i, Cell: j.cell(), Key: keys[i]})
		}
	}
	if len(pending) == 0 {
		return nil // fully warm: don't touch the fleet
	}
	delivered := make([]bool, len(jobs))
	var mu sync.Mutex
	execErr := cfg.Remote(ctx, pending, func(ref CellRef, row SweepRow) {
		mu.Lock()
		bad := ref.Index < 0 || ref.Index >= len(jobs) || served[ref.Index] || delivered[ref.Index]
		if !bad {
			delivered[ref.Index] = true
		}
		mu.Unlock()
		if bad {
			return
		}
		row.Key = keys[ref.Index]
		rows[ref.Index] = row
		if cfg.Store != nil {
			storeCommit(cfg.Store, keys[ref.Index], row)
		}
		prog.emit(row)
	})
	for i := range jobs {
		if served[i] || delivered[i] {
			continue
		}
		row := canceledRow(jobs[i], keys[i])
		if ctx.Err() == nil {
			row.Err = "dispatch: no worker delivered this cell"
			if execErr != nil {
				row.Err = "dispatch: " + execErr.Error()
			}
		}
		rows[i] = row
		prog.emit(row)
	}
	return execErr
}

// runSweepJob executes one cell, converting panics from deep inside the
// simulator into error rows so one bad cell cannot take down a sweep.
// The panic site's stack rides along in the error row: without it a
// sweep-reported failure is undebuggable, because recover() by itself
// discards where the panic happened.
// A panicked cell leaves runner reusable: Runner.Run reinitializes every
// arena slot on entry, so stale mid-run state never leaks forward.
func (h *Harness) runSweepJob(j sweepJob, noBypass bool, runner *sim.Runner) (row SweepRow) {
	defer func() {
		if r := recover(); r != nil {
			row = SweepRow{App: j.name(), Scheme: j.kind.ID(), Mix: j.mix != nil,
				Err: fmt.Sprintf("panic: %v\n%s", r, debug.Stack())}
		}
	}()
	start := time.Now() //whirl:wallclock cell wall time feeds the row's wall_ms column, which bit-identity checks strip
	var r *sim.Result
	if j.mix != nil {
		r = h.runMixPinned(j.mix.Apps, j.mix.Pins, j.kind, mixChip(j.mix), noBypass, runner)
	} else {
		r = h.RunSingle(j.app, j.kind, RunOptions{NoBypass: noBypass, Runner: runner})
	}
	//whirl:wallclock wall_ms is timing metadata; every simulated column is deterministic
	return rowFromResult(j.name(), j.mix != nil, j.kind, r, time.Since(start))
}
