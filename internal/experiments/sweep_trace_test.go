package experiments

import (
	"context"
	"path/filepath"
	"testing"

	"whirlpool/internal/obs"
	"whirlpool/internal/results"
	"whirlpool/internal/schemes"
)

// countSpans tallies collected spans by name.
func countSpans(spans []obs.Span) map[string]int {
	n := map[string]int{}
	for _, s := range spans {
		n[s.Name]++
	}
	return n
}

// TestSweepEmitsStageSpans drives a tiny store-backed sweep with a
// tracer attached and checks the per-cell stage spans: every span in
// one trace, sweep.cell/sim.run/store.commit per computed cell,
// trace.load per app with the mmap attr, and on a warm resubmit
// store.lookup hits with no sim.run at all.
func TestSweepEmitsStageSpans(t *testing.T) {
	dir := t.TempDir()
	store, err := results.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatalf("results.Open: %v", err)
	}
	defer store.Close()

	tr := obs.New(256)
	root := tr.Start(obs.SpanContext{}, "job")
	ctx := obs.NewContext(context.Background(), root.Context())

	h := NewHarness(0.02)
	kinds := []schemes.Kind{schemes.KindJigsaw}
	cfg := SweepConfig{
		Apps:    []string{"delaunay", "MIS"},
		Kinds:   kinds,
		Workers: 2,
		Context: ctx,
		Store:   store,
		Tracer:  tr,
	}
	if _, err := h.Sweep(cfg); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	root.End()

	spans := tr.Collect(root.Trace)
	byName := countSpans(spans)
	if byName["sweep.cell"] != 2 || byName["sim.run"] != 2 || byName["store.commit"] != 2 {
		t.Fatalf("cold sweep spans = %v, want 2 each of sweep.cell/sim.run/store.commit", byName)
	}
	if byName["trace.load"] != 2 {
		t.Fatalf("trace.load spans = %d, want 2 (one per app)", byName["trace.load"])
	}
	if byName["store.lookup"] != 2 {
		t.Fatalf("store.lookup spans = %d, want 2", byName["store.lookup"])
	}
	for _, s := range spans {
		switch s.Name {
		case "trace.load":
			if _, ok := s.Attr("mmap"); !ok {
				t.Errorf("trace.load span missing mmap attr")
			}
		case "store.lookup":
			if a, ok := s.Attr("hit"); !ok {
				t.Errorf("store.lookup span missing hit attr")
			} else if hit, _ := a.IsBool(); hit {
				t.Errorf("cold store.lookup reported a hit")
			}
		case "sim.run":
			if a, ok := s.Attr("scheme"); !ok {
				t.Errorf("sim.run missing scheme attr")
			} else if v, _ := a.IsStr(); v != "jigsaw" {
				t.Errorf("sim.run scheme = %q", v)
			}
		case "sweep.cell":
			if s.Parent != root.Context().Span {
				t.Errorf("sweep.cell not parented under the job span")
			}
		}
	}

	// Warm resubmit: everything served, nothing simulated.
	tr2 := obs.New(256)
	root2 := tr2.Start(obs.SpanContext{}, "job")
	cfg.Context = obs.NewContext(context.Background(), root2.Context())
	cfg.Tracer = tr2
	if _, err := h.Sweep(cfg); err != nil {
		t.Fatalf("warm Sweep: %v", err)
	}
	root2.End()
	warm := countSpans(tr2.Collect(root2.Trace))
	if warm["sim.run"] != 0 || warm["sweep.cell"] != 0 {
		t.Fatalf("warm sweep simulated: %v", warm)
	}
	if warm["store.lookup"] != 2 {
		t.Fatalf("warm store.lookup spans = %d, want 2", warm["store.lookup"])
	}
	for _, s := range tr2.Collect(root2.Trace) {
		if s.Name != "store.lookup" {
			continue
		}
		if a, ok := s.Attr("hit"); !ok {
			t.Fatal("warm store.lookup missing hit attr")
		} else if hit, _ := a.IsBool(); !hit {
			t.Fatal("warm store.lookup missed")
		}
	}
}

// TestSweepWithoutTracerIsNoop pins the nil-tracer contract: a sweep
// with no Tracer runs identically and emits nothing.
func TestSweepWithoutTracerIsNoop(t *testing.T) {
	h := NewHarness(0.02)
	rows, err := h.Sweep(SweepConfig{
		Apps:  []string{"delaunay"},
		Kinds: []schemes.Kind{schemes.KindJigsaw},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(rows) != 1 || rows[0].Err != "" {
		t.Fatalf("rows = %+v", rows)
	}
}

// TestSweepCellSpanAllocBudget is the acceptance-criteria guard: the
// full per-cell span sequence runLocal emits (sweep.cell + sim.run +
// store.commit, with their attrs) must stay within 2 allocations per
// cell. With pooled spans it is zero.
func TestSweepCellSpanAllocBudget(t *testing.T) {
	tr := obs.New(1024)
	parent := obs.SpanContext{}
	root := tr.Start(parent, "job")
	parent = root.Context()
	root.End()

	perCell := func() {
		cell := tr.Start(parent, "sweep.cell")
		cell.SetStr("app", "delaunay")
		cell.SetStr("scheme", "jigsaw")
		sp := tr.Start(cell.Context(), "sim.run")
		sp.SetStr("app", "delaunay")
		sp.SetStr("scheme", "jigsaw")
		sp.SetInt("cells", 1)
		sp.End()
		sp = tr.Start(cell.Context(), "store.commit")
		sp.End()
		cell.End()
	}
	perCell() // warm the span pool
	if avg := testing.AllocsPerRun(200, perCell); avg > 2 {
		t.Fatalf("per-cell span sequence allocates %v per cell, budget is 2", avg)
	}
}

// BenchmarkSweepSpanEmit rides in make bench-json and guards the same
// budget as TestSweepCellSpanAllocBudget with allocs/op visible in the
// BENCH_trace.json trajectory.
func BenchmarkSweepSpanEmit(b *testing.B) {
	tr := obs.New(obs.DefaultRingSize)
	root := tr.Start(obs.SpanContext{}, "job")
	parent := root.Context()
	root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cell := tr.Start(parent, "sweep.cell")
		cell.SetStr("app", "delaunay")
		cell.SetStr("scheme", "jigsaw")
		sp := tr.Start(cell.Context(), "sim.run")
		sp.SetStr("app", "delaunay")
		sp.SetStr("scheme", "jigsaw")
		sp.SetInt("cells", 1)
		sp.End()
		sp = tr.Start(cell.Context(), "store.commit")
		sp.End()
		cell.End()
	}
}
