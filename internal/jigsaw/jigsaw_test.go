package jigsaw

import (
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/mem"
	"whirlpool/internal/noc"
	"whirlpool/internal/trace"
)

func testConfig(classify llc.Classifier, bypass bool) Config {
	return Config{
		Chip:           noc.FourCoreChip(),
		Meter:          &energy.Meter{},
		Classify:       classify,
		SchemeName:     "test",
		BypassEnabled:  bypass,
		ReconfigCycles: 1_000_000,
	}
}

func TestVTBBankDistribution(t *testing.T) {
	chip := noc.FourCoreChip()
	v := newVC(llc.VCKey{Core: 0}, chip, chip.BankLines()/4)
	// Give the VC a 3:1 share split between banks 0 and 5.
	for b := range v.Shares {
		v.Shares[b] = 0
	}
	v.Shares[0] = 3000
	v.Shares[5] = 1000
	v.rebuildPrefix()
	counts := map[int]int{}
	for l := addr.Line(0); l < 100000; l++ {
		counts[v.Bank(l)]++
	}
	if len(counts) != 2 {
		t.Fatalf("lines mapped to %d banks, want 2", len(counts))
	}
	ratio := float64(counts[0]) / float64(counts[5])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("split ratio %.2f, want ~3.0", ratio)
	}
}

func TestVTBDeterministic(t *testing.T) {
	chip := noc.FourCoreChip()
	v := newVC(llc.VCKey{Core: 1}, chip, chip.BankLines()/4)
	for l := addr.Line(0); l < 1000; l++ {
		if v.Bank(l) != v.Bank(l) {
			t.Fatal("Bank not deterministic")
		}
	}
}

func TestVCInitialPlacementNearOwner(t *testing.T) {
	chip := noc.FourCoreChip()
	v := newVC(llc.VCKey{Core: 0}, chip, chip.BankLines()/4)
	nearest := chip.Mesh.BanksByDistance(0)[0]
	if v.Shares[nearest] == 0 {
		t.Fatal("initial allocation skipped the nearest bank")
	}
}

// Drive the engine with a cache-friendly pool and a streaming pool and
// check Whirlpool's characteristic decisions: the friendly pool gets
// capacity, the streaming pool is bypassed (the mis case study, Fig 9/10).
func TestBypassStreamingPool(t *testing.T) {
	poolOf := func(l addr.Line) mem.PoolID {
		if l < 1<<20 {
			return 1 // friendly
		}
		return 2 // streaming
	}
	classify := func(core int, l addr.Line) llc.VCKey {
		return llc.VCKey{Core: int16(core), Pool: poolOf(l)}
	}
	d := New(testConfig(classify, true))
	friendlyLines := uint64(20000) // ~1.2MB, fits easily
	streamLines := uint64(4 << 20) // way beyond LLC
	now := uint64(0)
	pos := uint64(0)
	for i := 0; i < 3_000_000; i++ {
		var l addr.Line
		if i%2 == 0 {
			l = addr.Line(uint64(i*2654435761) % friendlyLines)
		} else {
			pos = (pos + 1) % streamLines
			l = addr.Line(1<<20 + pos)
		}
		lat, _ := d.Access(0, trace.LLCAccess{Line: l})
		now += 2 + lat
		d.Tick(now)
	}
	var friendly, stream *VC
	for _, v := range d.VCs() {
		switch v.Key.Pool {
		case 1:
			friendly = v
		case 2:
			stream = v
		}
	}
	if friendly == nil || stream == nil {
		t.Fatal("VCs not created")
	}
	if !stream.Bypassed {
		t.Fatal("streaming pool should be bypassed")
	}
	if friendly.Bypassed {
		t.Fatal("friendly pool must not be bypassed")
	}
	// The friendly pool gets the capacity (latency-aware sizing may stop
	// slightly short of the full working set when the marginal far bank
	// does not pay for itself — the Sec 2.4 tradeoff).
	if friendly.TotalShare() < friendlyLines/2 {
		t.Fatalf("friendly pool alloc %d lines, want >= %d",
			friendly.TotalShare(), friendlyLines/2)
	}
	if d.Hits == 0 {
		t.Fatal("friendly pool should produce hits")
	}
	if d.Bypasses == 0 {
		t.Fatal("no bypassed accesses recorded")
	}
}

// The dt scenario: three pools with equal access rates but different
// sizes. The most intense pool (smallest) must be placed in the closest
// banks (Fig 5), and unused capacity must remain (Fig 4: dt fits in half
// the chip).
func TestPlacementByIntensity(t *testing.T) {
	mb := uint64(1 << 20)
	bounds := []uint64{0, mb / 2, 2 * mb, 6 * mb} // 0.5, 1.5, 4 MB pools
	poolOf := func(l addr.Line) mem.PoolID {
		b := uint64(l) * addr.LineBytes
		for p := 1; p < len(bounds); p++ {
			if b < bounds[p] {
				return mem.PoolID(p)
			}
		}
		return mem.PoolID(len(bounds) - 1)
	}
	classify := func(core int, l addr.Line) llc.VCKey {
		return llc.VCKey{Core: int16(core), Pool: poolOf(l)}
	}
	cfg := testConfig(classify, true)
	d := New(cfg)
	rng := uint64(12345)
	now := uint64(0)
	for i := 0; i < 4_000_000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		pool := i % 3
		lo := bounds[pool]
		hi := bounds[pool+1]
		b := lo + (rng>>33)%(hi-lo)
		lat, _ := d.Access(0, trace.LLCAccess{Line: addr.Line(b / addr.LineBytes)})
		now += 2 + lat
		d.Tick(now)
	}
	vcs := d.VCs()
	if len(vcs) != 3 {
		t.Fatalf("VCs = %d, want 3", len(vcs))
	}
	var points, triangles *VC
	for _, v := range vcs {
		switch v.Key.Pool {
		case 1:
			points = v
		case 3:
			triangles = v
		}
	}
	if points.Intensity() <= triangles.Intensity() {
		t.Fatalf("points intensity %.4f should exceed triangles %.4f",
			points.Intensity(), triangles.Intensity())
	}
	// The smallest pool must sit closer to core 0 than the largest.
	dist := d.AvgAllocDistance()
	var dPoints, dTri float64
	for i, v := range vcs {
		switch v.Key.Pool {
		case 1:
			dPoints = dist[i]
		case 3:
			dTri = dist[i]
		}
	}
	if dPoints >= dTri {
		t.Fatalf("points at distance %.2f, triangles at %.2f: intense pool not closer", dPoints, dTri)
	}
	// dt's 6MB working set fits in 12 of the 25 banks: several banks
	// must stay unused.
	owners := d.BankOwnerMap()
	unused := 0
	for _, o := range owners {
		if o == -1 {
			unused++
		}
	}
	if unused < 5 {
		t.Fatalf("only %d banks unused; latency-aware sizing should leave far banks empty", unused)
	}
}

func TestReconfigurationHappens(t *testing.T) {
	d := New(testConfig(llc.ThreadPrivate, false))
	now := uint64(0)
	for i := 0; i < 100_000; i++ {
		lat, _ := d.Access(0, trace.LLCAccess{Line: addr.Line(i % 5000)})
		now += 2 + lat
		d.Tick(now)
	}
	if d.Reconfigs == 0 {
		t.Fatal("runtime never reconfigured")
	}
}

func TestSharedVCCentroidPlacement(t *testing.T) {
	// A VC accessed only by core 3 must migrate its placement toward
	// core 3 even if created as shared.
	d := New(testConfig(llc.ProcessShared, false))
	now := uint64(0)
	for i := 0; i < 1_000_000; i++ {
		lat, _ := d.Access(3, trace.LLCAccess{Line: addr.Line(i % 30000)})
		now += 2 + lat
		d.Tick(now)
	}
	v := d.VCs()[0]
	mesh := d.cfg.Chip.Mesh
	// Weighted distance of the allocation from core 3 should be small:
	// compare against the worst possible bank.
	var worst float64
	for b := 0; b < d.cfg.Chip.NBanks(); b++ {
		if h := float64(mesh.CoreBankHops(3, b)); h > worst {
			worst = h
		}
	}
	var lines uint64
	var sum float64
	for b, s := range v.Shares {
		lines += s
		sum += float64(s) * float64(mesh.CoreBankHops(3, b))
	}
	avg := sum / float64(lines)
	if avg > worst/2 {
		t.Fatalf("shared VC not pulled toward its user: avg dist %.2f (worst %.2f)", avg, worst)
	}
}

func TestWritebackPathDoesNotMissTrack(t *testing.T) {
	d := New(testConfig(llc.ThreadPrivate, false))
	// Demand-load a line, then write it back: no new demand miss.
	d.Access(0, trace.LLCAccess{Line: 42})
	missesBefore := d.Misses
	d.Access(0, trace.LLCAccess{Line: 42, Writeback: true})
	if d.Misses != missesBefore {
		t.Fatal("writeback counted as demand miss")
	}
	if d.DemandAccs != 1 {
		t.Fatalf("demand accesses = %d, want 1", d.DemandAccs)
	}
}

func TestMissCurveSizingAblation(t *testing.T) {
	cfg := testConfig(llc.ThreadPrivate, false)
	cfg.MissCurveSizing = true
	d := New(cfg)
	now := uint64(0)
	for i := 0; i < 200_000; i++ {
		lat, _ := d.Access(0, trace.LLCAccess{Line: addr.Line(i % 2000)})
		now += 2 + lat
		d.Tick(now)
	}
	// Pure miss-curve sizing has no latency penalty for far banks, so a
	// tiny working set still works; just verify it runs and allocates.
	if d.VCs()[0].TotalShare() == 0 {
		t.Fatal("no allocation under miss-curve sizing")
	}
}

func TestEnergyAccounted(t *testing.T) {
	cfg := testConfig(llc.ThreadPrivate, false)
	d := New(cfg)
	for i := 0; i < 10000; i++ {
		d.Access(0, trace.LLCAccess{Line: addr.Line(i)})
	}
	if cfg.Meter.Total() == 0 {
		t.Fatal("no energy recorded")
	}
	if cfg.Meter.MemoryPJ == 0 {
		t.Fatal("misses must charge DRAM energy")
	}
}
