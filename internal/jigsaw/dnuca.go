package jigsaw

import (
	"sort"

	"whirlpool/internal/energy"
	"whirlpool/internal/llc"
	"whirlpool/internal/noc"
	"whirlpool/internal/trace"
)

// Config parameterizes a Dnuca instance. Jigsaw and Whirlpool are the same
// engine with different classifiers and bypass settings.
type Config struct {
	Chip     *noc.Chip
	Meter    *energy.Meter
	Classify llc.Classifier
	// SchemeName is reported by Name() ("Jigsaw", "Whirlpool", ...).
	SchemeName string
	// BypassEnabled allows single-threaded VCs to bypass the LLC.
	BypassEnabled bool
	// ReconfigCycles is the reconfiguration period (scaled-down analogue
	// of the paper's 25ms).
	ReconfigCycles uint64
	// Gran is the allocation granularity in lines (default: 1/4 bank).
	Gran uint64
	// MissCurveSizing sizes VCs with miss curves instead of latency
	// curves (an ablation; the paper argues latency curves are the point).
	MissCurveSizing bool
	// NoTrading disables the trading placement pass (ablation).
	NoTrading bool
}

// Dnuca is the shared-baseline D-NUCA engine behind both Jigsaw and
// Whirlpool. It satisfies llc.LLC.
type Dnuca struct {
	cfg  Config
	vcs  map[llc.VCKey]*VC
	keys []llc.VCKey // stable iteration order

	lastReconfig uint64
	// Stats.
	Reconfigs       uint64
	MovedLines      uint64
	BypassSwitch    uint64
	DemandAccs      uint64
	Hits, Misses    uint64
	Bypasses        uint64
	WritebacksMem   uint64
	ResizeEvictions uint64
}

// New creates the engine. Callers pick Jigsaw vs Whirlpool purely through
// Config (classifier + name + bypass flag).
func New(cfg Config) *Dnuca {
	if cfg.Gran == 0 {
		cfg.Gran = cfg.Chip.BankLines() / 4
	}
	if cfg.ReconfigCycles == 0 {
		cfg.ReconfigCycles = 2_000_000
	}
	if cfg.SchemeName == "" {
		cfg.SchemeName = "Jigsaw"
	}
	return &Dnuca{cfg: cfg, vcs: make(map[llc.VCKey]*VC)}
}

// Name implements llc.LLC.
func (d *Dnuca) Name() string { return d.cfg.SchemeName }

func (d *Dnuca) vc(key llc.VCKey) *VC {
	if v, ok := d.vcs[key]; ok {
		return v
	}
	v := newVC(key, d.cfg.Chip, d.cfg.Gran)
	d.vcs[key] = v
	d.keys = append(d.keys, key)
	return v
}

// Access implements llc.LLC.
func (d *Dnuca) Access(core int, a trace.LLCAccess) (uint64, llc.Outcome) {
	key := d.cfg.Classify(core, a.Line)
	v := d.vc(key)
	m := d.cfg.Chip.Mesh
	mt := d.cfg.Meter

	if a.Writeback {
		if v.Bypassed {
			// Bypassed VC: writebacks go straight to memory.
			mt.AddDRAM(1)
			mt.AddHops(m.CoreMemHops(core))
			d.WritebacksMem++
			return 0, llc.Miss
		}
		bank := v.Bank(a.Line)
		mt.AddHops(m.CoreBankHops(core, bank))
		if v.Store.Writeback(a.Line) {
			mt.AddTagProbe(1)
		} else {
			// Not resident: forward to memory.
			mt.AddTagProbe(1)
			mt.AddDRAM(1)
			mt.AddHops(m.BankMemHops(bank))
			d.WritebacksMem++
		}
		return 0, llc.Miss
	}

	d.DemandAccs++
	v.Mon.Access(core, a.Line, a.Write)

	if v.Bypassed {
		// Single lookup-free path to memory: the VTB bypass bit means no
		// bank is consulted at all.
		d.Bypasses++
		mt.AddDRAM(1)
		mt.AddHops(2 * m.CoreMemHops(core)) // request + line back
		return noc.MemLatency + 2*noc.HopLatency(m.CoreMemHops(core)), llc.Bypass
	}

	bank := v.Bank(a.Line)
	hops := m.CoreBankHops(core, bank)
	lat := 2*noc.HopLatency(hops) + noc.BankLatency
	mt.AddBank(1)
	mt.AddHops(hops) // line (or request) traverses core<->bank

	hit, ev, evicted := v.Store.Access(a.Line, a.Write)
	if hit {
		d.Hits++
		return lat, llc.Hit
	}
	d.Misses++
	memHops := m.BankMemHops(bank)
	lat += noc.MemLatency + 2*noc.HopLatency(memHops)
	mt.AddDRAM(1)
	mt.AddHops(memHops) // fill from the controller to the bank
	if evicted && ev.Dirty {
		mt.AddDRAM(1)
		mt.AddHops(m.BankMemHops(v.Bank(ev.Line)))
		d.WritebacksMem++
	}
	return lat, llc.Miss
}

// Tick implements llc.LLC: runs the OS reconfiguration runtime
// periodically.
func (d *Dnuca) Tick(now uint64) {
	if now-d.lastReconfig < d.cfg.ReconfigCycles {
		return
	}
	d.lastReconfig = now
	d.Reconfigure()
}

// Reconfigure performs one full reconfiguration: refresh placement
// centroids, size VCs from their monitors, place them, and apply the new
// configuration (resizing stores, flipping bypass bits, charging data
// movement for migrated lines).
func (d *Dnuca) Reconfigure() {
	d.Reconfigs++
	if len(d.keys) == 0 {
		return
	}
	chip := d.cfg.Chip
	// Stable order: sort keys (map iteration is randomized).
	sort.Slice(d.keys, func(i, j int) bool {
		a, b := d.keys[i], d.keys[j]
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		return a.Pool < b.Pool
	})
	vcs := make([]*VC, 0, len(d.keys))
	for _, k := range d.keys {
		v := d.vcs[k]
		v.lastAccesses = v.Mon.Accesses
		// Refresh centroid weights from observed per-core accesses
		// (EWMA to damp noise).
		var tot uint64
		for _, c := range v.Mon.CoreAccess {
			tot += c
		}
		if tot > 0 {
			for c := range v.coreW {
				obs := float64(v.Mon.CoreAccess[c]) / float64(tot)
				v.coreW[c] = 0.5*v.coreW[c] + 0.5*obs
			}
			v.recomputeDistances(chip)
		}
		vcs = append(vcs, v)
	}

	allocs := sizeVCs(chip, vcs, d.cfg.Gran, d.cfg.BypassEnabled, d.cfg.MissCurveSizing)

	// Snapshot old shares to charge migration costs.
	old := make([][]uint64, len(allocs))
	for i, a := range allocs {
		old[i] = append([]uint64(nil), a.vc.Shares...)
	}

	placeVCs(chip, allocs, d.cfg.Gran, !d.cfg.NoTrading)

	for i := range allocs {
		a := &allocs[i]
		v := a.vc
		newBypass := a.bypass && a.buckets == 0
		if newBypass != v.Bypassed {
			d.BypassSwitch++
			if newBypass {
				// Entering bypass: invalidate the VC in the LLC to keep
				// coherence (Sec 3.2); dirty lines go to memory.
				lines, dirty := v.Store.InvalidateAll()
				d.cfg.Meter.AddDRAM(float64(dirty))
				d.cfg.Meter.AddCtrlHops(lines / 8) // bulk invalidation traffic
				d.WritebacksMem += uint64(dirty)
			}
			v.Bypassed = newBypass
		}
		newCap := uint64(a.buckets) * d.cfg.Gran
		for _, ev := range v.Store.Resize(int(newCap)) {
			d.ResizeEvictions++
			if ev.Dirty {
				d.cfg.Meter.AddDRAM(1)
				d.WritebacksMem++
			}
		}
		// Lines whose bank changed are migrated lazily by Jigsaw's
		// incremental scan (the paper measures <0.4% of system cycles
		// and negligible energy for reconfigurations); charge control
		// traffic for the remapped fraction.
		var moved, tot uint64
		for b := range v.Shares {
			n, o := v.Shares[b], old[i][b]
			if n > o {
				moved += n - o
			}
			tot += n
		}
		if tot > 0 && v.Store.Size() > 0 {
			frac := float64(moved) / float64(tot)
			ml := float64(v.Store.Size()) * frac
			d.MovedLines += uint64(ml)
			d.cfg.Meter.AddCtrlHops(int(ml / 8)) // bulk remap messages
		}
		v.Mon.ResetInterval()
	}
}

// VCs returns the engine's virtual caches in stable order (for
// introspection: placement maps, allocation time series).
func (d *Dnuca) VCs() []*VC {
	out := make([]*VC, 0, len(d.keys))
	keys := append([]llc.VCKey(nil), d.keys...)
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		return a.Pool < b.Pool
	})
	for _, k := range keys {
		out = append(out, d.vcs[k])
	}
	return out
}

// BankOwnerMap returns, for each bank, the VC holding the plurality of its
// lines (-1 for unused banks) — the data behind the Fig 3-5 placement
// maps. The returned indices follow VCs() order.
func (d *Dnuca) BankOwnerMap() []int {
	vcs := d.VCs()
	nb := d.cfg.Chip.NBanks()
	owner := make([]int, nb)
	for b := 0; b < nb; b++ {
		owner[b] = -1
		var best uint64
		for i, v := range vcs {
			if v.Shares[b] > best {
				best = v.Shares[b]
				owner[b] = i
			}
		}
	}
	return owner
}

// Allocations returns each VC's current allocation in lines, in VCs()
// order (Fig 11's time series).
func (d *Dnuca) Allocations() []uint64 {
	vcs := d.VCs()
	out := make([]uint64, len(vcs))
	for i, v := range vcs {
		out[i] = v.TotalShare()
	}
	return out
}

// AvgAllocDistance returns the intensity-weighted average hop distance of
// each VC's allocation, in VCs() order (the y-ordering of Fig 11a).
func (d *Dnuca) AvgAllocDistance() []float64 {
	vcs := d.VCs()
	out := make([]float64, len(vcs))
	for i, v := range vcs {
		var lines uint64
		var sum float64
		for b, s := range v.Shares {
			lines += s
			sum += float64(s) * v.hops[b]
		}
		if lines > 0 {
			out[i] = sum / float64(lines)
		}
	}
	return out
}

var _ llc.LLC = (*Dnuca)(nil)
