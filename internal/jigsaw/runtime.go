package jigsaw

import (
	"math"
	"sort"

	"whirlpool/internal/mrc"
	"whirlpool/internal/noc"
)

// sizing and placement: the OS runtime that fires every reconfiguration
// interval (25ms in the paper; scaled in simulation — see docs/design.md).

// memPenalty returns the effective miss penalty in cycles: memory latency
// plus the average bank-to-controller round trip.
func memPenalty(chip *noc.Chip) float64 {
	m := chip.Mesh
	sum := 0.0
	for b := 0; b < chip.NBanks(); b++ {
		sum += float64(2 * noc.HopLatency(m.BankMemHops(b)))
	}
	return noc.MemLatency + sum/float64(chip.NBanks())
}

// bypassLatency is the per-access cost of a bypassed VC: straight to
// memory from the core, with no bank lookup.
func bypassLatency(chip *noc.Chip, v *VC) float64 {
	m := chip.Mesh
	if v.Key.Core >= 0 {
		return noc.MemLatency + float64(2*noc.HopLatency(m.CoreMemHops(int(v.Key.Core))))
	}
	sum := 0.0
	for c := 0; c < chip.NCores(); c++ {
		sum += float64(2 * noc.HopLatency(m.CoreMemHops(c)))
	}
	return noc.MemLatency + sum/float64(chip.NCores())
}

// latencyCurve builds the VC's total-latency curve: access-latency term
// plus miss-latency term, per interval (Sec 2.4). Index i is capacity
// i*gran lines. If missOnly is set (ablation), the curve is just misses.
func latencyCurve(chip *noc.Chip, v *VC, curve mrc.Curve, bypassable, missOnly bool) []float64 {
	n := curve.Buckets()
	out := make([]float64, n+1)
	a := float64(v.Mon.Accesses)
	for i := 0; i <= n; i++ {
		if missOnly {
			out[i] = curve.M[i]
			continue
		}
		lines := uint64(i) * curve.Gran
		if i == 0 {
			if bypassable {
				// Bypassing skips the LLC entirely: no bank access
				// latency on any access (the Sec 3.2/3.3 change that
				// makes the partitioner bypass-aware).
				out[0] = a * bypassLatency(chip, v)
			} else {
				// Zero capacity but the bank must still be checked;
				// effectively everything misses after a wasted lookup.
				out[0] = a*v.avgAccessLatency(chip, chip.BankLines()) +
					curve.M[0]*v.avgMissPenalty(chip, chip.BankLines())
			}
			continue
		}
		out[i] = a*v.avgAccessLatency(chip, lines) + curve.M[i]*v.avgMissPenalty(chip, lines)
	}
	return out
}

// convexify replaces curve with its lower convex envelope so greedy
// marginal allocation is optimal.
func convexify(l []float64) []float64 {
	c := mrc.Curve{Gran: 1, M: append([]float64(nil), l...)}
	// Latency curves need not be monotone (far banks can hurt);
	// convex-hull of the raw curve still yields the achievable envelope.
	h := c.ConvexHull()
	return h.M
}

// allocation is the sizing decision for one VC.
type allocation struct {
	vc      *VC
	raw     []float64 // total-latency curve
	curve   []float64 // convexified total-latency curve
	buckets int       // chosen size in curve buckets
	bypass  bool
}

// bypassMargin requires bypassing to beat the best cached configuration
// before committing: sampled monitor curves are noisy, and a spurious
// bypass flip invalidates the whole VC. The margin is thin because
// bypassing's latency edge over caching-with-all-misses is itself thin
// (the bank lookup); the age gate provides cold-start stability.
const bypassMargin = 0.98

// bypassWarmupAge is how many reconfigurations a VC must live through
// before it may be bypassed (cold first-interval curves make everything
// look like streaming).
const bypassWarmupAge = 2

// sizeVCs partitions LLC capacity among VCs by greedy marginal-gain
// allocation over convex latency curves. Capacity is left unallocated when
// extra banks would not reduce total latency (how dt ends up using half
// the chip). Returns the chosen allocations.
func sizeVCs(chip *noc.Chip, vcs []*VC, gran uint64, bypassEnabled, missOnly bool) []allocation {
	totalBuckets := int(chip.TotalLines() / gran)
	allocs := make([]allocation, len(vcs))
	for i, v := range vcs {
		curve := v.Mon.Curve()
		bypassable := bypassEnabled && v.Key.Core >= 0 && v.age >= bypassWarmupAge
		lc := latencyCurve(chip, v, curve, bypassable, missOnly)
		allocs[i] = allocation{vc: v, raw: lc, curve: convexify(lc), bypass: bypassable}
		if !bypassable {
			// Non-bypassable VCs must keep at least one bucket.
			allocs[i].buckets = 1
			totalBuckets--
		}
		v.age++
	}
	if totalBuckets < 0 {
		totalBuckets = 0
	}
	// Greedy: hand out buckets to the best marginal gain until gains dry
	// up or capacity runs out. V and B are small (≤ ~20 VCs, ~100-300
	// buckets), so the O(V·B) loop is fine.
	for totalBuckets > 0 {
		best, bestGain := -1, 0.0
		for i := range allocs {
			a := &allocs[i]
			if a.buckets >= len(a.curve)-1 {
				continue
			}
			gain := a.curve[a.buckets] - a.curve[a.buckets+1]
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // no VC benefits from more capacity
		}
		allocs[best].buckets++
		totalBuckets--
	}
	// Bypass hysteresis: only commit to 0 buckets when bypassing beats
	// the best cached configuration by a margin; otherwise grant a
	// single bucket if any remain.
	for i := range allocs {
		a := &allocs[i]
		if !a.bypass || a.buckets > 0 {
			continue
		}
		cachedBest := a.raw[1]
		for _, v := range a.raw[1:] {
			if v < cachedBest {
				cachedBest = v
			}
		}
		if a.raw[0] >= bypassMargin*cachedBest && totalBuckets > 0 {
			a.buckets = 1
			totalBuckets--
		}
	}
	// Shrink dead-band: sampled curves jitter allocations by a bucket
	// between intervals, and every one-bucket shrink costs resize
	// evictions that re-miss. Suppress single-bucket shrinks (growth is
	// free, so it always passes — allocations converge upward).
	for i := range allocs {
		a := &allocs[i]
		prev := int(a.vc.allocLines / gran)
		if a.buckets == 0 || prev == 0 {
			continue
		}
		if a.buckets == prev-1 && totalBuckets > 0 {
			a.buckets = prev
			totalBuckets--
		}
	}
	return allocs
}

// placeVCs assigns each VC's capacity to banks: greedy placement in
// intensity order, then the trading pass that exchanges capacity between
// VCs (and free space) whenever that reduces intensity-weighted distance.
func placeVCs(chip *noc.Chip, allocs []allocation, gran uint64, trading bool) {
	bankLines := chip.BankLines()
	free := make([]uint64, chip.NBanks())
	for b := range free {
		free[b] = bankLines
	}
	// Intensity order: most intensely accessed VCs get the closest banks.
	order := make([]int, len(allocs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ax, ay := &allocs[order[x]], &allocs[order[y]]
		ix := intensityOf(ax, gran)
		iy := intensityOf(ay, gran)
		if ix != iy {
			return ix > iy
		}
		return order[x] < order[y]
	})
	for _, i := range order {
		a := &allocs[i]
		v := a.vc
		for b := range v.Shares {
			v.Shares[b] = 0
		}
		need := uint64(a.buckets) * gran
		v.allocLines = need
		for _, b := range v.distRank {
			if need == 0 {
				break
			}
			take := need
			if take > free[b] {
				take = free[b]
			}
			if take == 0 {
				continue
			}
			v.Shares[b] = take
			free[b] -= take
			need -= take
		}
	}
	if trading {
		tradeCapacity(chip, allocs, free, gran)
	}
	for i := range allocs {
		allocs[i].vc.rebuildPrefix()
	}
}

func intensityOf(a *allocation, gran uint64) float64 {
	lines := uint64(a.buckets) * gran
	if lines == 0 {
		return math.Inf(1)
	}
	return float64(a.vc.Mon.Accesses) / float64(lines)
}

// tradeCapacity runs bounded improvement rounds: each VC tries to move its
// worst-placed capacity into free space or trade it with another VC when
// the swap reduces total intensity-weighted hops.
func tradeCapacity(chip *noc.Chip, allocs []allocation, free []uint64, gran uint64) {
	const maxRounds = 24
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i := range allocs {
			u := &allocs[i]
			uv := u.vc
			iu := intensityOf(u, gran)
			if math.IsInf(iu, 1) || uv.TotalLinesHeld() == 0 {
				continue
			}
			// u's worst-held bank.
			bw := worstBank(uv)
			if bw < 0 {
				continue
			}
			// 1) Unilateral move into free space in a closer bank.
			for _, b := range uv.distRank {
				if uv.hops[b] >= uv.hops[bw] {
					break
				}
				if free[b] == 0 {
					continue
				}
				delta := uv.Shares[bw]
				if delta > free[b] {
					delta = free[b]
				}
				uv.Shares[bw] -= delta
				uv.Shares[b] += delta
				free[b] -= delta
				free[bw] += delta
				improved = true
				bw = worstBank(uv)
				if bw < 0 {
					break
				}
			}
			if bw < 0 {
				continue
			}
			// 2) Trade with another VC holding capacity closer to u.
			for j := range allocs {
				if j == i {
					continue
				}
				w := &allocs[j]
				wv := w.vc
				iw := intensityOf(w, gran)
				if math.IsInf(iw, 1) {
					continue
				}
				for _, b := range uv.distRank {
					if uv.hops[b] >= uv.hops[bw] {
						break
					}
					if wv.Shares[b] == 0 {
						continue
					}
					// Gain of swapping δ lines of u@bw with w@b:
					// u moves bw→b, w moves b→bw.
					gain := iu*(uv.hops[bw]-uv.hops[b]) + iw*(wv.hops[b]-wv.hops[bw])
					if gain <= 1e-12 {
						continue
					}
					delta := uv.Shares[bw]
					if wv.Shares[b] < delta {
						delta = wv.Shares[b]
					}
					uv.Shares[bw] -= delta
					uv.Shares[b] += delta
					wv.Shares[b] -= delta
					wv.Shares[bw] += delta
					improved = true
					bw = worstBank(uv)
					if bw < 0 {
						break
					}
				}
				if bw < 0 {
					break
				}
			}
		}
		if !improved {
			break
		}
	}
}

// worstBank returns the held bank with the largest weighted distance, or
// -1 if the VC holds nothing.
func worstBank(v *VC) int {
	best := -1
	var bestHops float64
	for b, s := range v.Shares {
		if s > 0 && (best < 0 || v.hops[b] > bestHops) {
			best, bestHops = b, v.hops[b]
		}
	}
	return best
}

// TotalLinesHeld sums the VC's bank shares.
func (v *VC) TotalLinesHeld() uint64 {
	var t uint64
	for _, s := range v.Shares {
		t += s
	}
	return t
}
