// Package jigsaw implements the paper's baseline D-NUCA substrate and the
// Whirlpool extensions on top of it:
//
//   - Virtual caches (VCs) built from bank partitions, located in a single
//     lookup through VTB entries (configurable hashes over per-bank shares).
//   - Runtime GMON monitors per VC.
//   - A periodic reconfiguration runtime that sizes VCs with total-latency
//     curves (not just miss curves) and places them with the greedy+trading
//     placement algorithm.
//   - Whirlpool: one VC per memory pool and VC bypassing.
package jigsaw

import (
	"sort"

	"whirlpool/internal/addr"
	"whirlpool/internal/cache"
	"whirlpool/internal/llc"
	"whirlpool/internal/mon"
	"whirlpool/internal/noc"
	"whirlpool/internal/stats"
)

// VC is one virtual cache: a monitor, a capacity-managed store modeling
// its partition, and a VTB entry (bank shares + prefix table) giving every
// line a unique bank in a single lookup.
type VC struct {
	Key llc.VCKey
	Mon *mon.Monitor

	// Store models the partition's hit/miss behaviour at its allocated
	// capacity (Vantage keeps partitions at exactly their allocation).
	Store *cache.CapLRU

	// Shares[b] is the number of lines of bank b allocated to this VC.
	Shares []uint64
	prefix []uint64 // cumulative shares over banks with Shares[b] > 0
	pbanks []int    // bank ids matching prefix entries
	total  uint64

	// Bypassed VCs have no LLC allocation; their accesses go straight to
	// memory (Whirlpool's VC bypassing).
	Bypassed bool
	// age counts reconfigurations this VC has lived through; bypass
	// decisions wait for warm monitor state (see sizeVCs).
	age int

	// Placement inputs, refreshed each reconfiguration.
	coreW    []float64 // per-core access weights (centroid)
	hops     []float64 // weighted hops to each bank
	distRank []int     // banks sorted by weighted distance

	// Interval bookkeeping.
	lastAccesses uint64 // accesses in the interval that just closed
	allocLines   uint64
}

// newVC creates a VC with a provisional allocation near its owner: two
// banks' worth of capacity in the closest banks. The first reconfiguration
// replaces this.
func newVC(key llc.VCKey, chip *noc.Chip, gran uint64) *VC {
	nb := chip.NBanks()
	v := &VC{
		Key:    key,
		Mon:    mon.New(gran, chip.TotalLines(), chip.NCores()),
		Shares: make([]uint64, nb),
		coreW:  make([]float64, chip.NCores()),
		hops:   make([]float64, nb),
	}
	// Initial centroid: the owner core, or the chip center when shared.
	if key.Core >= 0 {
		v.coreW[key.Core] = 1
	} else {
		for c := range v.coreW {
			v.coreW[c] = 1
		}
	}
	v.recomputeDistances(chip)
	initial := 2 * chip.BankLines()
	v.Store = cache.NewCapLRU(int(initial))
	left := initial
	for _, b := range v.distRank {
		take := left
		if take > chip.BankLines() {
			take = chip.BankLines()
		}
		v.Shares[b] = take
		left -= take
		if left == 0 {
			break
		}
	}
	v.rebuildPrefix()
	v.allocLines = initial
	return v
}

// recomputeDistances refreshes the weighted bank distances from the
// current per-core access weights.
func (v *VC) recomputeDistances(chip *noc.Chip) {
	m := chip.Mesh
	var wsum float64
	for _, w := range v.coreW {
		wsum += w
	}
	if wsum == 0 {
		wsum = 1
	}
	nb := chip.NBanks()
	if v.distRank == nil {
		v.distRank = make([]int, nb)
	}
	for b := 0; b < nb; b++ {
		h := 0.0
		for c, w := range v.coreW {
			if w > 0 {
				h += w * float64(m.CoreBankHops(c, b))
			}
		}
		v.hops[b] = h / wsum
		v.distRank[b] = b
	}
	// Sort by *quantized* distance with a bank-id tiebreak: tiny interval-
	// to-interval drifts in the access centroid must not reshuffle
	// equidistant banks, or every reconfiguration would migrate data for
	// no benefit.
	q := func(h float64) int { return int(h*4 + 0.5) }
	sort.Slice(v.distRank, func(i, j int) bool {
		bi, bj := v.distRank[i], v.distRank[j]
		qi, qj := q(v.hops[bi]), q(v.hops[bj])
		if qi != qj {
			return qi < qj
		}
		return bi < bj
	})
}

// avgAccessLatency returns the average round-trip network+bank latency if
// this VC were allocated `lines` of capacity spread over its closest
// banks — the access-latency term of Jigsaw's total-latency curves.
func (v *VC) avgAccessLatency(chip *noc.Chip, lines uint64) float64 {
	if lines == 0 {
		return float64(noc.BankLatency)
	}
	bankLines := chip.BankLines()
	nBanks := int((lines + bankLines - 1) / bankLines)
	if nBanks > len(v.distRank) {
		nBanks = len(v.distRank)
	}
	sum := 0.0
	for i := 0; i < nBanks; i++ {
		sum += float64(2 * noc.HopLatency(int(v.hops[v.distRank[i]]+0.5)))
	}
	return sum/float64(nBanks) + float64(noc.BankLatency)
}

// avgMissPenalty returns the average miss cost if the VC occupied `lines`
// of capacity in its closest banks: memory latency plus the bank-to-
// controller round trip of those banks. Using the same banks as
// avgAccessLatency keeps the sizing model consistent with the bypass
// alternative.
func (v *VC) avgMissPenalty(chip *noc.Chip, lines uint64) float64 {
	m := chip.Mesh
	bankLines := chip.BankLines()
	nBanks := int((lines + bankLines - 1) / bankLines)
	if nBanks < 1 {
		nBanks = 1
	}
	if nBanks > len(v.distRank) {
		nBanks = len(v.distRank)
	}
	sum := 0.0
	for i := 0; i < nBanks; i++ {
		sum += float64(2 * noc.HopLatency(m.BankMemHops(v.distRank[i])))
	}
	return noc.MemLatency + sum/float64(nBanks)
}

// rebuildPrefix rebuilds the VTB hash table from Shares.
func (v *VC) rebuildPrefix() {
	v.prefix = v.prefix[:0]
	v.pbanks = v.pbanks[:0]
	var cum uint64
	for b, s := range v.Shares {
		if s == 0 {
			continue
		}
		cum += s
		v.prefix = append(v.prefix, cum)
		v.pbanks = append(v.pbanks, b)
	}
	v.total = cum
}

// Bank returns the bank holding line l: the single-lookup VTB hash. Each
// line maps to exactly one bank, proportionally to bank shares.
func (v *VC) Bank(l addr.Line) int {
	if v.total == 0 {
		// No allocation (transient); use the closest bank.
		return v.distRank[0]
	}
	h := stats.Hash64(uint64(l)) % v.total
	// Binary search the cumulative share table.
	lo, hi := 0, len(v.prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if h < v.prefix[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return v.pbanks[lo]
}

// TotalShare returns the VC's current allocation in lines.
func (v *VC) TotalShare() uint64 { return v.total }

// Intensity returns last-interval accesses per allocated line — the
// quantity the trading placement algorithm ranks VCs by ("APKI per MB").
func (v *VC) Intensity() float64 {
	if v.allocLines == 0 {
		return float64(v.lastAccesses)
	}
	return float64(v.lastAccesses) / float64(v.allocLines)
}
