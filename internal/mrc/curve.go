// Package mrc implements miss-rate-curve machinery: Mattson stack-distance
// profiling (exact and hash-sampled), the curve algebra Jigsaw's runtime
// and WhirlTool's analyzer need — convex hulls, optimal convex
// partitioning — and the paper's Appendix B model for combining the miss
// curves of two pools that share a cache.
package mrc

import "math"

// Curve is a miss-rate curve: M[i] is the expected number of misses per
// measurement interval when the pool is given a cache of i*Gran lines.
// M is non-increasing; M[0] counts every access as a miss.
//
// Curves from the same interval are directly comparable and, per the
// Appendix B flow argument, additive in "flow" terms.
type Curve struct {
	Gran     uint64    // lines per bucket
	M        []float64 // misses at capacity i*Gran, i = 0..len(M)-1
	Accesses float64   // accesses in the interval
}

// NewCurve returns an all-miss curve with n+1 points (capacity 0..n*gran)
// for a pool with the given accesses per interval.
func NewCurve(n int, gran uint64, accesses float64) Curve {
	m := make([]float64, n+1)
	for i := range m {
		m[i] = accesses
	}
	return Curve{Gran: gran, M: m, Accesses: accesses}
}

// Clone returns a deep copy.
func (c Curve) Clone() Curve {
	out := c
	out.M = append([]float64(nil), c.M...)
	return out
}

// Buckets returns the number of capacity steps (len(M)-1).
func (c Curve) Buckets() int { return len(c.M) - 1 }

// MaxLines returns the largest capacity the curve covers.
func (c Curve) MaxLines() uint64 { return uint64(c.Buckets()) * c.Gran }

// At returns the miss count at a capacity of `lines`, linearly
// interpolating between buckets and clamping at the ends.
func (c Curve) At(lines uint64) float64 {
	if len(c.M) == 0 {
		return 0
	}
	pos := float64(lines) / float64(c.Gran)
	i := int(pos)
	if i >= len(c.M)-1 {
		return c.M[len(c.M)-1]
	}
	frac := pos - float64(i)
	return c.M[i]*(1-frac) + c.M[i+1]*frac
}

// atF reads the curve at fractional bucket position s, clamping.
func (c Curve) atF(s float64) float64 {
	if s <= 0 {
		return c.M[0]
	}
	i := int(s)
	if i >= len(c.M)-1 {
		return c.M[len(c.M)-1]
	}
	frac := s - float64(i)
	return c.M[i]*(1-frac) + c.M[i+1]*frac
}

// Scale multiplies misses and accesses by f, in place.
func (c *Curve) Scale(f float64) {
	for i := range c.M {
		c.M[i] *= f
	}
	c.Accesses *= f
}

// AddInPlace accumulates o (same Gran and length) into c. This is the
// *naive* curve sum (used as an ablation); Combine is the paper's model.
func (c *Curve) AddInPlace(o Curve) {
	if c.Gran != o.Gran || len(c.M) != len(o.M) {
		panic("mrc: AddInPlace shape mismatch")
	}
	for i := range c.M {
		c.M[i] += o.M[i]
	}
	c.Accesses += o.Accesses
}

// Monotonize enforces the non-increasing invariant in place (profiling
// noise from sampling can produce tiny inversions).
func (c *Curve) Monotonize() {
	for i := 1; i < len(c.M); i++ {
		if c.M[i] > c.M[i-1] {
			c.M[i] = c.M[i-1]
		}
	}
}

// ConvexHull returns the lower convex envelope of the curve: the best
// performance achievable at every size by time-sharing two configurations
// (the paper computes hulls before partitioning; Melkman-style linear-time
// scan).
func (c Curve) ConvexHull() Curve {
	n := len(c.M)
	out := c.Clone()
	if n < 3 {
		return out
	}
	// Graham scan over points (i, M[i]) keeping the lower hull, then fill
	// intermediate buckets by linear interpolation between hull vertices.
	type pt struct {
		x int
		y float64
	}
	hull := make([]pt, 0, n)
	for i := 0; i < n; i++ {
		p := pt{i, c.M[i]}
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Remove b if it lies above segment a-p (cross product).
			if (float64(b.x-a.x))*(p.y-a.y)-(b.y-a.y)*(float64(p.x-a.x)) <= 0 {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, p)
	}
	for k := 0; k+1 < len(hull); k++ {
		a, b := hull[k], hull[k+1]
		for i := a.x; i <= b.x; i++ {
			frac := float64(i-a.x) / float64(b.x-a.x)
			out.M[i] = a.y*(1-frac) + b.y*frac
		}
	}
	return out
}

// Combine implements the paper's Appendix B flow model: the miss curve
// that results from two pools sharing one unpartitioned cache. Both inputs
// must share Gran. The output covers the sum of the input domains.
//
//	def combineMissCurves(m1, m2):
//	    s1, s2 = 0, 0
//	    for s = 0 to N:
//	        m[s] = m1[s1] + m2[s2]
//	        s1 += m1[s1] / m[s]
//	        s2 += m2[s2] / m[s]
func Combine(a, b Curve) Curve {
	if a.Gran != b.Gran {
		panic("mrc: Combine granularity mismatch")
	}
	n := a.Buckets() + b.Buckets()
	out := Curve{Gran: a.Gran, M: make([]float64, n+1), Accesses: a.Accesses + b.Accesses}
	s1, s2 := 0.0, 0.0
	for s := 0; s <= n; s++ {
		m1 := a.atF(s1)
		m2 := b.atF(s2)
		m := m1 + m2
		out.M[s] = m
		if m > 0 {
			s1 += m1 / m
			s2 += m2 / m
		} else {
			// No flow at all: split the remaining capacity evenly.
			s1 += 0.5
			s2 += 0.5
		}
	}
	out.Monotonize()
	return out
}

// CombineAll folds Combine over several curves. Combine is commutative and
// associative (up to interpolation error), so order does not matter.
func CombineAll(curves []Curve) Curve {
	if len(curves) == 0 {
		return Curve{Gran: 1, M: []float64{0}, Accesses: 0}
	}
	acc := curves[0].Clone()
	for _, c := range curves[1:] {
		acc = Combine(acc, c)
	}
	return acc
}

// Partition returns the best achievable miss curve when capacity is
// explicitly split between two pools at every total size: the infimal
// convolution of the two convex hulls. With convex inputs the greedy
// marginal-gain merge is optimal and runs in linear time (this is the
// "partitioned miss rate curve" of Sec 4.2).
func Partition(a, b Curve) Curve {
	if a.Gran != b.Gran {
		panic("mrc: Partition granularity mismatch")
	}
	ha, hb := a.ConvexHull(), b.ConvexHull()
	n := a.Buckets() + b.Buckets()
	out := Curve{Gran: a.Gran, M: make([]float64, n+1), Accesses: a.Accesses + b.Accesses}
	out.M[0] = ha.M[0] + hb.M[0]
	ia, ib := 0, 0
	for s := 1; s <= n; s++ {
		var gainA, gainB float64
		if ia < ha.Buckets() {
			gainA = ha.M[ia] - ha.M[ia+1]
		} else {
			gainA = -1
		}
		if ib < hb.Buckets() {
			gainB = hb.M[ib] - hb.M[ib+1]
		} else {
			gainB = -1
		}
		if gainA >= gainB {
			ia++
		} else {
			ib++
		}
		out.M[s] = ha.M[ia] + hb.M[ib]
	}
	return out
}

// Distance is WhirlTool's clustering metric for one interval: the area
// between the combined and partitioned curves — how many extra misses
// merging the pools would cost versus keeping them apart. It is >= 0.
func Distance(a, b Curve) float64 {
	comb := Combine(a, b)
	part := Partition(a, b)
	area := 0.0
	for i := range comb.M {
		d := comb.M[i] - part.M[i]
		if d > 0 {
			area += d
		}
	}
	return area * float64(comb.Gran)
}

// Resample returns the curve re-bucketed to n buckets over the same
// domain (linear interpolation).
func (c Curve) Resample(n int) Curve {
	out := Curve{Gran: (c.MaxLines() + uint64(n) - 1) / uint64(n), Accesses: c.Accesses}
	if out.Gran == 0 {
		out.Gran = 1
	}
	out.M = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out.M[i] = c.At(uint64(i) * out.Gran)
	}
	return out
}

// WithGran returns the curve re-bucketed to granularity gran, covering at
// least the same domain.
func (c Curve) WithGran(gran uint64) Curve {
	if gran == c.Gran {
		return c.Clone()
	}
	n := int((c.MaxLines() + gran - 1) / gran)
	if n < 1 {
		n = 1
	}
	out := Curve{Gran: gran, M: make([]float64, n+1), Accesses: c.Accesses}
	for i := 0; i <= n; i++ {
		out.M[i] = c.At(uint64(i) * gran)
	}
	return out
}

// AreaDiff integrates |a-b| over the common domain; a convergence helper
// for tests.
func AreaDiff(a, b Curve) float64 {
	n := len(a.M)
	if len(b.M) < n {
		n = len(b.M)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Abs(a.M[i] - b.M[i])
	}
	return sum
}
