package mrc

import (
	"math"
	"testing"
	"testing/quick"

	"whirlpool/internal/addr"
)

func TestProfilerExactDistances(t *testing.T) {
	// Stream: A B C A  — A's reuse distance is 2 (B, C touched since).
	p := NewProfiler(1, 8, 0)
	for _, l := range []addr.Line{1, 2, 3, 1} {
		p.Access(l)
	}
	c := p.Curve()
	// 4 accesses: 3 cold + 1 reuse at distance 2.
	// Misses at capacity >= 3 lines: only the 3 cold misses.
	if c.M[0] != 4 {
		t.Fatalf("M[0] = %v, want 4 (everything misses at size 0)", c.M[0])
	}
	if c.M[2] != 4 {
		t.Fatalf("M[2] = %v, want 4 (dist 2 still misses at cap 2)", c.M[2])
	}
	if c.M[3] != 3 {
		t.Fatalf("M[3] = %v, want 3 (A hits at cap 3)", c.M[3])
	}
}

func TestProfilerImmediateReuse(t *testing.T) {
	p := NewProfiler(1, 4, 0)
	p.Access(addr.Line(9))
	p.Access(addr.Line(9))
	c := p.Curve()
	// Distance 0: hits at any capacity >= 1.
	if c.M[1] != 1 {
		t.Fatalf("M[1] = %v, want 1 (only the cold miss)", c.M[1])
	}
}

func TestProfilerCurveMonotone(t *testing.T) {
	p := NewProfiler(4, 32, 0)
	for i := 0; i < 5000; i++ {
		p.Access(addr.Line(i*7919%300) + 1000)
	}
	c := p.Curve()
	for i := 1; i < len(c.M); i++ {
		if c.M[i] > c.M[i-1]+1e-9 {
			t.Fatalf("curve not monotone at %d: %v > %v", i, c.M[i], c.M[i-1])
		}
	}
}

func TestProfilerCompaction(t *testing.T) {
	// Force many accesses so the BIT rebuilds several times.
	p := NewProfiler(16, 64, 0)
	const lines = 500
	for i := 0; i < 300000; i++ {
		p.Access(addr.Line(i % lines))
	}
	c := p.Curve()
	// A cyclic scan over 500 lines: at capacity >= 500 lines, only 500
	// cold misses remain.
	atFull := c.At(512)
	if atFull > 505 || atFull < 495 {
		t.Fatalf("misses at full capacity = %v, want ~500 cold", atFull)
	}
	// At tiny capacity everything misses.
	if c.M[0] != 300000 {
		t.Fatalf("M[0] = %v, want 300000", c.M[0])
	}
}

func TestProfilerWorkingSetKnee(t *testing.T) {
	// Loop over a 64-line working set: the curve must drop (near) to cold
	// misses exactly at 64 lines.
	p := NewProfiler(8, 32, 0)
	for pass := 0; pass < 100; pass++ {
		for i := 0; i < 64; i++ {
			p.Access(addr.Line(i))
		}
	}
	c := p.Curve()
	below := c.At(56) // below the knee: scans miss
	above := c.At(72) // above the knee: everything hits
	if above > 70 {
		t.Fatalf("misses above knee = %v, want ~64 cold misses", above)
	}
	if below < 1000 {
		t.Fatalf("misses below knee = %v, want thrashing", below)
	}
}

func TestSampledProfilerApproximatesExact(t *testing.T) {
	gen := func(shift uint) Curve {
		p := NewProfiler(64, 64, shift)
		// Mixture: hot zipf-ish head + scan.
		for i := 0; i < 400000; i++ {
			var l addr.Line
			if i%2 == 0 {
				l = addr.Line(i % 512)
			} else {
				l = addr.Line(10000 + i%3000)
			}
			p.Access(l)
		}
		return p.Curve()
	}
	exact := gen(0)
	sampled := gen(3) // 1/8 sampling
	// Compare shapes: relative area difference under 20%.
	var area, diff float64
	for i := range exact.M {
		area += exact.M[i]
		diff += math.Abs(exact.M[i] - sampled.M[i])
	}
	if diff/area > 0.20 {
		t.Fatalf("sampled curve deviates %.1f%% from exact", 100*diff/area)
	}
}

func TestCurveAtInterpolation(t *testing.T) {
	c := Curve{Gran: 10, M: []float64{100, 50, 0}, Accesses: 100}
	if v := c.At(0); v != 100 {
		t.Fatalf("At(0) = %v", v)
	}
	if v := c.At(5); v != 75 {
		t.Fatalf("At(5) = %v, want 75", v)
	}
	if v := c.At(25); v != 0 {
		t.Fatalf("At(25) = %v, want clamp to 0", v)
	}
}

func TestConvexHullBelowCurve(t *testing.T) {
	c := Curve{Gran: 1, M: []float64{100, 90, 20, 15, 10, 9, 8}, Accesses: 100}
	h := c.ConvexHull()
	for i := range c.M {
		if h.M[i] > c.M[i]+1e-9 {
			t.Fatalf("hull above curve at %d: %v > %v", i, h.M[i], c.M[i])
		}
	}
	// Hull must be convex: differences non-decreasing.
	for i := 2; i < len(h.M); i++ {
		d1 := h.M[i-1] - h.M[i-2]
		d2 := h.M[i] - h.M[i-1]
		if d2 < d1-1e-9 {
			t.Fatalf("hull not convex at %d", i)
		}
	}
	// Endpoints preserved.
	if h.M[0] != c.M[0] || h.M[len(h.M)-1] != c.M[len(c.M)-1] {
		t.Fatal("hull endpoints must match curve")
	}
}

func TestConvexHullOfConvexCurveIsIdentity(t *testing.T) {
	c := Curve{Gran: 1, M: []float64{100, 60, 30, 15, 8, 5, 4}, Accesses: 100}
	h := c.ConvexHull()
	if AreaDiff(c, h) > 1e-9 {
		t.Fatalf("hull changed an already-convex curve by %v", AreaDiff(c, h))
	}
}

// Appendix B, Fig 23b: combining two halves of the same access pattern
// must reproduce a scaled version of the original curve.
func TestCombineSelfSimilar(t *testing.T) {
	// m(s) = 100 * 2^-s, a smooth convex curve.
	n := 16
	m := make([]float64, n+1)
	for i := range m {
		m[i] = 100 * math.Pow(2, -float64(i)/3)
	}
	a := Curve{Gran: 4, M: m, Accesses: 100}
	comb := Combine(a, a)
	// comb at size 2s should equal 2*a at size s.
	for i := 0; i <= n; i++ {
		want := 2 * a.M[i]
		got := comb.M[2*i]
		if math.Abs(got-want) > 0.05*want+1e-9 {
			t.Fatalf("self-combine at %d: got %v want %v", 2*i, got, want)
		}
	}
}

func TestCombineCommutative(t *testing.T) {
	a := Curve{Gran: 2, M: []float64{100, 40, 10, 5, 2}, Accesses: 100}
	b := Curve{Gran: 2, M: []float64{50, 45, 40, 35, 30}, Accesses: 50}
	ab := Combine(a, b)
	ba := Combine(b, a)
	if AreaDiff(ab, ba) > 1e-6 {
		t.Fatalf("Combine not commutative: diff %v", AreaDiff(ab, ba))
	}
}

func TestCombinePreservesEndpoints(t *testing.T) {
	a := Curve{Gran: 2, M: []float64{100, 10, 1}, Accesses: 100}
	b := Curve{Gran: 2, M: []float64{60, 30, 20}, Accesses: 60}
	c := Combine(a, b)
	if math.Abs(c.M[0]-160) > 1e-9 {
		t.Fatalf("combined M[0] = %v, want 160", c.M[0])
	}
	// The flow model advances read heads proportionally to miss flow, so
	// the tail lands near — but not exactly at — the sum of the pools'
	// full-size misses (the model is approximate by design).
	last := c.M[len(c.M)-1]
	if last < 21-1e-9 || last > 48 {
		t.Fatalf("combined tail = %v, want in [21, 48]", last)
	}
	if c.Accesses != 160 {
		t.Fatalf("combined accesses = %v", c.Accesses)
	}
}

func TestCombineInsensitiveToInfrequentPool(t *testing.T) {
	a := Curve{Gran: 1, M: []float64{1000, 400, 100, 20, 5, 1, 0, 0, 0}, Accesses: 1000}
	tiny := Curve{Gran: 1, M: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}, Accesses: 1}
	c := Combine(a, tiny)
	// The combined curve over a's domain should be close to a.
	for i := 0; i < len(a.M); i++ {
		if math.Abs(c.M[i]-a.M[i]) > 0.1*a.M[0] {
			t.Fatalf("tiny pool distorted curve at %d: %v vs %v", i, c.M[i], a.M[i])
		}
	}
}

func TestPartitionBeatsCombine(t *testing.T) {
	// A cache-friendly pool and a streaming pool: partitioning must not
	// be worse than combining anywhere (Fig 15's right side).
	friendly := Curve{Gran: 1, M: []float64{100, 40, 10, 2, 0, 0, 0, 0, 0}, Accesses: 100}
	stream := Curve{Gran: 1, M: []float64{100, 99, 98, 97, 96, 95, 94, 93, 92}, Accesses: 100}
	comb := Combine(friendly, stream)
	part := Partition(friendly, stream)
	for i := range part.M {
		if part.M[i] > comb.M[i]+1e-6 {
			t.Fatalf("partitioned worse than combined at %d: %v > %v", i, part.M[i], comb.M[i])
		}
	}
}

func TestPartitionOptimalAtFullSize(t *testing.T) {
	a := Curve{Gran: 1, M: []float64{10, 6, 3, 1}, Accesses: 10}
	b := Curve{Gran: 1, M: []float64{20, 12, 4, 2}, Accesses: 20}
	p := Partition(a, b)
	// At combined full size both pools are at their full size.
	want := a.M[3] + b.M[3]
	got := p.M[len(p.M)-1]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("partition tail = %v, want %v", got, want)
	}
	// Exhaustive check at every size against brute force over hulls.
	ha, hb := a.ConvexHull(), b.ConvexHull()
	for s := 0; s < len(p.M); s++ {
		best := math.Inf(1)
		for x := 0; x <= s; x++ {
			y := s - x
			if x >= len(ha.M) || y >= len(hb.M) {
				continue
			}
			if v := ha.M[x] + hb.M[y]; v < best {
				best = v
			}
		}
		if math.Abs(p.M[s]-best) > 1e-9 {
			t.Fatalf("partition suboptimal at %d: %v vs %v", s, p.M[s], best)
		}
	}
}

func TestDistanceSimilarVsDissimilar(t *testing.T) {
	// Fig 15: combining two cache-friendly pools costs little; combining
	// a friendly pool with a streaming pool costs a lot.
	m1 := Curve{Gran: 1, M: []float64{100, 30, 5, 0, 0, 0, 0, 0, 0}, Accesses: 100}
	m2 := Curve{Gran: 1, M: []float64{90, 35, 8, 1, 0, 0, 0, 0, 0}, Accesses: 90}
	m3 := Curve{Gran: 1, M: []float64{100, 98, 96, 94, 92, 90, 88, 86, 84}, Accesses: 100}
	dSimilar := Distance(m1, m2)
	dDissimilar := Distance(m1, m3)
	if dDissimilar <= dSimilar {
		t.Fatalf("distance(friendly,streaming)=%v should exceed distance(friendly,friendly)=%v",
			dDissimilar, dSimilar)
	}
}

func TestDistanceNonNegative(t *testing.T) {
	a := Curve{Gran: 1, M: []float64{5, 4, 3, 2}, Accesses: 5}
	b := Curve{Gran: 1, M: []float64{7, 1, 0, 0}, Accesses: 7}
	if d := Distance(a, b); d < 0 {
		t.Fatalf("negative distance %v", d)
	}
}

func TestResample(t *testing.T) {
	c := Curve{Gran: 2, M: []float64{100, 50, 25, 12, 6}, Accesses: 100}
	r := c.Resample(4)
	if r.Buckets() != 4 {
		t.Fatalf("buckets = %d", r.Buckets())
	}
	if r.M[0] != 100 {
		t.Fatalf("resample changed M[0]: %v", r.M[0])
	}
	if math.Abs(r.M[4]-6) > 1e-9 {
		t.Fatalf("resample tail %v, want 6", r.M[4])
	}
}

func TestWithGran(t *testing.T) {
	c := Curve{Gran: 2, M: []float64{100, 50, 25}, Accesses: 100}
	g := c.WithGran(1)
	if g.Gran != 1 {
		t.Fatal("gran not applied")
	}
	if g.At(2) != c.At(2) {
		t.Fatalf("WithGran changed values: %v vs %v", g.At(2), c.At(2))
	}
}

func TestMonotonize(t *testing.T) {
	c := Curve{Gran: 1, M: []float64{10, 12, 5, 7}, Accesses: 12}
	c.Monotonize()
	for i := 1; i < len(c.M); i++ {
		if c.M[i] > c.M[i-1] {
			t.Fatalf("still non-monotone at %d", i)
		}
	}
}

func TestCombineAllAssociativeish(t *testing.T) {
	a := Curve{Gran: 1, M: []float64{100, 40, 10, 2, 0}, Accesses: 100}
	b := Curve{Gran: 1, M: []float64{50, 25, 12, 6, 3}, Accesses: 50}
	c := Curve{Gran: 1, M: []float64{80, 70, 60, 50, 40}, Accesses: 80}
	abc := CombineAll([]Curve{a, b, c})
	cba := CombineAll([]Curve{c, b, a})
	// Allow small interpolation error.
	var area float64
	for _, v := range abc.M {
		area += v
	}
	if AreaDiff(abc, cba)/area > 0.05 {
		t.Fatalf("CombineAll order-sensitive: %v", AreaDiff(abc, cba)/area)
	}
}

// Property: Combine output is monotone non-increasing for monotone inputs.
func TestQuickCombineMonotone(t *testing.T) {
	f := func(seedA, seedB [6]uint8) bool {
		mk := func(seed [6]uint8) Curve {
			m := make([]float64, 7)
			m[0] = 200
			for i := 1; i < 7; i++ {
				m[i] = m[i-1] - float64(seed[i-1])/255*m[i-1]
			}
			return Curve{Gran: 1, M: m, Accesses: 200}
		}
		c := Combine(mk(seedA), mk(seedB))
		for i := 1; i < len(c.M); i++ {
			if c.M[i] > c.M[i-1]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Partition never exceeds either pool alone plus the other at
// zero (achievable splits bound it).
func TestQuickPartitionBounds(t *testing.T) {
	f := func(seedA, seedB [6]uint8) bool {
		mk := func(seed [6]uint8) Curve {
			m := make([]float64, 7)
			m[0] = 100
			for i := 1; i < 7; i++ {
				m[i] = m[i-1] * (1 - float64(seed[i-1])/512)
			}
			return Curve{Gran: 1, M: m, Accesses: 100}
		}
		a, b := mk(seedA), mk(seedB)
		p := Partition(a, b)
		ha, hb := a.ConvexHull(), b.ConvexHull()
		for s := 0; s < len(p.M); s++ {
			// Split (min(s, lenA), rest) is achievable.
			x := s
			if x > ha.Buckets() {
				x = ha.Buckets()
			}
			y := s - x
			if y > hb.Buckets() {
				y = hb.Buckets()
			}
			if p.M[s] > ha.M[x]+hb.M[y]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
