package mrc

import (
	"sort"

	"whirlpool/internal/addr"
	"whirlpool/internal/stats"
)

// Profiler measures LRU stack distances over a line-address stream and
// produces miss-rate curves (Mattson's algorithm with an order-statistic
// Fenwick tree, O(log n) per access).
//
// With SampleShift > 0 the profiler hash-samples 1/2^shift of all lines and
// scales distances and counts back up — the same trick hardware GMONs and
// RapidMRC use — cutting time and memory by the sampling factor while
// preserving curve shape.
type Profiler struct {
	gran        uint64 // lines per curve bucket
	buckets     int
	sampleShift uint

	last  map[addr.Line]int32 // line -> time position in BIT
	bit   []int32             // Fenwick tree: 1 at current last-access positions
	time  int32               // next time position (1-based)
	live  int32               // number of marked positions (= distinct lines)
	histo []uint64            // histo[i]: distances in [i*gran, (i+1)*gran), post-scaling
	over  uint64              // distances beyond the curve domain
	cold  uint64              // first-touch accesses
	acc   uint64              // total accesses observed (pre-sampling)
}

// NewProfiler creates a profiler producing curves with the given bucket
// granularity (in lines) and bucket count. sampleShift of 6 samples 1/64
// of lines; 0 profiles exactly.
func NewProfiler(gran uint64, buckets int, sampleShift uint) *Profiler {
	if gran == 0 || buckets <= 0 {
		panic("mrc: bad profiler geometry")
	}
	p := &Profiler{
		gran:        gran,
		buckets:     buckets,
		sampleShift: sampleShift,
		last:        make(map[addr.Line]int32),
		histo:       make([]uint64, buckets),
	}
	p.grow(1 << 16)
	return p
}

func (p *Profiler) grow(n int) {
	bit := make([]int32, n+1)
	p.bit = bit
}

// bitAdd adds v at position i (1-based).
func (p *Profiler) bitAdd(i, v int32) {
	for ; int(i) < len(p.bit); i += i & (-i) {
		p.bit[i] += v
	}
}

// bitSum returns the prefix sum over [1, i].
func (p *Profiler) bitSum(i int32) int32 {
	s := int32(0)
	for ; i > 0; i -= i & (-i) {
		s += p.bit[i]
	}
	return s
}

// compact renumbers live positions 1..live preserving order, resetting the
// time counter. Called when the BIT fills up.
func (p *Profiler) compact() {
	type ent struct {
		line addr.Line
		t    int32
	}
	ents := make([]ent, 0, len(p.last))
	//whirl:unordered entries are sorted by last-access time, unique per line, before renumbering
	for l, t := range p.last {
		ents = append(ents, ent{l, t})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].t < ents[j].t })
	n := len(p.bit) - 1
	if int(p.live)*2 > n {
		n *= 2
	}
	p.grow(n)
	p.time = 0
	for _, e := range ents {
		p.time++
		p.last[e.line] = p.time
		p.bitAdd(p.time, 1)
	}
}

// sampled reports whether line l is in the sampled subset.
func (p *Profiler) sampled(l addr.Line) bool {
	if p.sampleShift == 0 {
		return true
	}
	return stats.Hash64(uint64(l))&((1<<p.sampleShift)-1) == 0
}

// Access records one access to line l.
func (p *Profiler) Access(l addr.Line) {
	p.acc++
	if !p.sampled(l) {
		return
	}
	scale := uint64(1) << p.sampleShift
	if t, ok := p.last[l]; ok {
		// Distance = number of distinct lines accessed strictly after t.
		d := uint64(p.live-p.bitSum(t)) * scale
		b := d / p.gran
		if b >= uint64(p.buckets) {
			p.over++
		} else {
			p.histo[b]++
		}
		p.bitAdd(t, -1)
		p.live--
	} else {
		p.cold++
	}
	p.time++
	if int(p.time) >= len(p.bit) {
		p.compact()
		p.time++
	}
	p.last[l] = p.time
	p.bitAdd(p.time, 1)
	p.live++
}

// Accesses returns the raw (pre-sampling) access count.
func (p *Profiler) Accesses() uint64 { return p.acc }

// Curve converts the recorded histogram into a miss curve: misses at
// capacity c = cold + (distances >= c). Sampled counts are scaled back up.
func (p *Profiler) Curve() Curve {
	scale := float64(uint64(1) << p.sampleShift)
	c := Curve{Gran: p.gran, M: make([]float64, p.buckets+1), Accesses: float64(p.acc)}
	tail := (float64(p.cold) + float64(p.over)) * scale
	c.M[p.buckets] = tail
	for i := p.buckets - 1; i >= 0; i-- {
		c.M[i] = c.M[i+1] + float64(p.histo[i])*scale
	}
	return c
}

// Reset clears the distance histogram and access counters but keeps the
// recency state, so consecutive intervals see warm history (matching
// periodic hardware monitors that only reset counters).
func (p *Profiler) Reset() {
	for i := range p.histo {
		p.histo[i] = 0
	}
	p.over, p.cold, p.acc = 0, 0, 0
}

// HardReset clears everything including recency state.
func (p *Profiler) HardReset() {
	p.Reset()
	p.last = make(map[addr.Line]int32)
	p.grow(1 << 16)
	p.time, p.live = 0, 0
}
