package partition

import (
	"testing"

	"whirlpool/internal/graph"
	"whirlpool/internal/stats"
)

func TestPartitionBalance(t *testing.T) {
	g := graph.RMAT(12, 8, 1)
	k := 16
	parts := Partition(g, k, 7)
	sizes := Sizes(parts, k)
	want := g.N / k
	for p, s := range sizes {
		if s < want/2 || s > want*2 {
			t.Fatalf("partition %d has %d vertices, want ~%d", p, s, want)
		}
	}
}

func TestPartitionCoversAllVertices(t *testing.T) {
	g := graph.Uniform(2000, 6, 2)
	parts := Partition(g, 8, 3)
	if len(parts) != g.N {
		t.Fatalf("len(parts) = %d", len(parts))
	}
	for v, p := range parts {
		if p < 0 || p >= 8 {
			t.Fatalf("vertex %d in invalid part %d", v, p)
		}
	}
}

func TestPartitionBeatsRandomCut(t *testing.T) {
	// The whole point of the METIS substitute: far lower edge cut than a
	// random assignment.
	g := graph.Grid2D(64, 64)
	k := 16
	parts := Partition(g, k, 5)
	cut := EdgeCut(g, parts)

	rng := stats.NewRng(9)
	random := make([]int32, g.N)
	for i := range random {
		random[i] = int32(rng.Intn(k))
	}
	randomCut := EdgeCut(g, random)
	if cut*3 > randomCut {
		t.Fatalf("partitioner cut %d not clearly better than random %d", cut, randomCut)
	}
}

func TestPartitionGridCutNearOptimal(t *testing.T) {
	// A 64x64 grid into 16 parts: optimal cut is ~ 4x4 blocks of 16x16 =
	// 24 boundaries x 16 = 384 edges. Accept within 3x.
	g := graph.Grid2D(64, 64)
	parts := Partition(g, 16, 11)
	cut := EdgeCut(g, parts)
	if cut > 3*384 {
		t.Fatalf("grid cut %d, want <= %d", cut, 3*384)
	}
}

func TestPartitionSinglePart(t *testing.T) {
	g := graph.Uniform(100, 4, 1)
	parts := Partition(g, 1, 1)
	for _, p := range parts {
		if p != 0 {
			t.Fatal("k=1 must put everything in part 0")
		}
	}
	if EdgeCut(g, parts) != 0 {
		t.Fatal("k=1 cut must be 0")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := graph.RMAT(10, 6, 4)
	a := Partition(g, 8, 42)
	b := Partition(g, 8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("partitioning not deterministic")
		}
	}
}

func TestEdgeCutCountsOnce(t *testing.T) {
	g := graph.FromEdges(2, [][2]int32{{0, 1}})
	parts := []int32{0, 1}
	if cut := EdgeCut(g, parts); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
}
