// Package partition is the METIS substitute: it splits a graph into k
// balanced parts while minimizing edge cut, via greedy BFS region growing
// followed by Kernighan–Lin-style boundary refinement. PaWS uses it to
// give each core a partition of the input graph (Sec 3.4).
package partition

import (
	"whirlpool/internal/graph"
	"whirlpool/internal/stats"
)

// Partition assigns each vertex to one of k parts.
func Partition(g *graph.CSR, k int, seed uint64) []int32 {
	if k <= 1 {
		return make([]int32, g.N)
	}
	parts := bfsGrow(g, k, seed)
	refine(g, parts, k, 8)
	return parts
}

// bfsGrow grows k regions from spread-out seeds, claiming vertices in BFS
// order with per-part capacity n/k (+slack); leftovers round-robin.
func bfsGrow(g *graph.CSR, k int, seed uint64) []int32 {
	rng := stats.NewRng(seed)
	parts := make([]int32, g.N)
	for i := range parts {
		parts[i] = -1
	}
	capacity := (g.N + k - 1) / k
	counts := make([]int, k)
	queues := make([][]int32, k)
	// Seeds: random distinct vertices.
	for p := 0; p < k; p++ {
		for {
			v := int32(rng.Intn(g.N))
			if parts[v] == -1 {
				parts[v] = int32(p)
				counts[p]++
				queues[p] = append(queues[p], v)
				break
			}
		}
	}
	// Round-robin BFS expansion so regions grow evenly.
	for {
		progress := false
		for p := 0; p < k; p++ {
			if counts[p] >= capacity || len(queues[p]) == 0 {
				continue
			}
			v := queues[p][0]
			queues[p] = queues[p][1:]
			for _, u := range g.Neighbors(v) {
				if parts[u] == -1 && counts[p] < capacity {
					parts[u] = int32(p)
					counts[p]++
					queues[p] = append(queues[p], u)
					progress = true
				}
			}
		}
		if !progress {
			done := true
			for p := 0; p < k; p++ {
				if len(queues[p]) > 0 && counts[p] < capacity {
					done = false
				}
			}
			if done {
				break
			}
		}
	}
	// Unreached vertices (disconnected): fill the lightest parts.
	for v := 0; v < g.N; v++ {
		if parts[v] == -1 {
			best := 0
			for p := 1; p < k; p++ {
				if counts[p] < counts[best] {
					best = p
				}
			}
			parts[v] = int32(best)
			counts[best]++
		}
	}
	return parts
}

// refine runs boundary-vertex passes: move a vertex to the neighboring
// part where most of its edges live, if balance permits.
func refine(g *graph.CSR, parts []int32, k, passes int) {
	counts := make([]int, k)
	for _, p := range parts {
		counts[p]++
	}
	maxSize := (g.N/k)*11/10 + 1 // 10% imbalance tolerance
	gainCount := make([]int, k)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := int32(0); v < int32(g.N); v++ {
			cur := parts[v]
			neigh := g.Neighbors(v)
			if len(neigh) == 0 {
				continue
			}
			for i := range gainCount {
				gainCount[i] = 0
			}
			for _, u := range neigh {
				gainCount[parts[u]]++
			}
			best := cur
			for p := int32(0); p < int32(k); p++ {
				if p == cur || counts[p] >= maxSize {
					continue
				}
				if gainCount[p] > gainCount[best] {
					best = p
				}
			}
			if best != cur && counts[cur] > 1 {
				parts[v] = best
				counts[cur]--
				counts[best]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// EdgeCut counts edges crossing partitions (each undirected edge counted
// once).
func EdgeCut(g *graph.CSR, parts []int32) int {
	cut := 0
	for v := int32(0); v < int32(g.N); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v && parts[u] != parts[v] {
				cut++
			}
		}
	}
	return cut
}

// Sizes returns per-part vertex counts.
func Sizes(parts []int32, k int) []int {
	out := make([]int, k)
	for _, p := range parts {
		out[p]++
	}
	return out
}
