// Package cliutil holds tiny flag-parsing helpers shared by the cmd/
// binaries.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// TraceCacheUsage is the shared help text for the -trace-cache flag.
const TraceCacheUsage = "on-disk trace cache directory ('auto' = the user cache dir; empty = disabled)"

// StoreUsage is the shared help text for the -store flag.
const StoreUsage = "result store directory: finished rows are memoized there and served without re-simulation ('auto' = the user cache dir; empty = disabled)"

// ResolveTraceCacheDir maps a -trace-cache flag value to a directory:
// "" stays disabled, "auto" resolves to <user cache dir>/whirlpool/traces,
// anything else is used as given.
func ResolveTraceCacheDir(v string) (string, error) {
	return resolveAuto(v, "-trace-cache", "traces")
}

// ResolveStoreDir maps a -store flag value to a directory: "" stays
// disabled, "auto" resolves to <user cache dir>/whirlpool/results,
// anything else is used as given. whirlsweep and whirld resolve the
// same default, so the CLI and the daemon share one result universe.
func ResolveStoreDir(v string) (string, error) {
	return resolveAuto(v, "-store", "results")
}

func resolveAuto(v, flagName, sub string) (string, error) {
	if v != "auto" {
		return v, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("%s auto: %v", flagName, err)
	}
	return filepath.Join(base, "whirlpool", sub), nil
}

// SplitList splits a comma-separated flag value, trimming whitespace
// and dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
