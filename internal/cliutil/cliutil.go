// Package cliutil holds tiny flag-parsing helpers shared by the cmd/
// binaries.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// TraceCacheUsage is the shared help text for the -trace-cache flag.
const TraceCacheUsage = "on-disk trace cache directory ('auto' = the user cache dir; empty = disabled)"

// ResolveTraceCacheDir maps a -trace-cache flag value to a directory:
// "" stays disabled, "auto" resolves to <user cache dir>/whirlpool/traces,
// anything else is used as given.
func ResolveTraceCacheDir(v string) (string, error) {
	if v != "auto" {
		return v, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("-trace-cache auto: %v", err)
	}
	return filepath.Join(base, "whirlpool", "traces"), nil
}

// SplitList splits a comma-separated flag value, trimming whitespace
// and dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
