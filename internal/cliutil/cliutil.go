// Package cliutil holds tiny flag-parsing helpers shared by the cmd/
// binaries.
package cliutil

import "strings"

// SplitList splits a comma-separated flag value, trimming whitespace
// and dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
