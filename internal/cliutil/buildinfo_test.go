package cliutil

import (
	"regexp"
	"strings"
	"testing"
)

// Version feeds `<prog> -version` for every binary and the make smoke
// greps: "<stamped>[ (rev[+dirty])] go<toolchain>". Test builds are
// unstamped, so the version is "dev"; the VCS suffix depends on
// whether the toolchain embedded checkout info.
func TestVersionShape(t *testing.T) {
	re := regexp.MustCompile(`^dev( \([0-9a-f]+(\+dirty)?\))? go1\.[0-9]`)
	if v := Version(); !re.MatchString(v) {
		t.Fatalf("Version() = %q, want match for %v", v, re)
	}
}

// The ldflags stamp (-X whirlpool/internal/cliutil.buildVersion=...)
// replaces the "dev" prefix and nothing else.
func TestVersionStamped(t *testing.T) {
	old := buildVersion
	buildVersion = "v9.9.9"
	defer func() { buildVersion = old }()
	if v := Version(); !strings.HasPrefix(v, "v9.9.9 ") {
		t.Fatalf("stamped Version() = %q, want v9.9.9 prefix", v)
	}
}
