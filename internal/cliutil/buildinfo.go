package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// buildVersion is stamped at link time by the Makefile (and CI, which
// runs the same targets):
//
//	go build -ldflags "-X whirlpool/internal/cliutil.buildVersion=<v>"
//
// Unstamped builds (plain `go build`, `go run`, tests) report "dev".
var buildVersion = "dev"

// Version returns the build identity shared by every binary: the
// stamped version, the VCS revision the Go toolchain baked in (when
// built from a checkout), and the toolchain version.
func Version() string {
	v := buildVersion
	if info, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" {
			v += " (" + rev + dirty + ")"
		}
	}
	return v + " " + runtime.Version()
}

// VersionFlag registers the shared -version flag; call before
// flag.Parse and pass the result to HandleVersion after.
func VersionFlag() *bool {
	return flag.Bool("version", false, "print build version and exit")
}

// HandleVersion prints "<prog> <version>" and exits 0 when show is
// set; a no-op otherwise.
func HandleVersion(prog string, show bool) {
	if show {
		fmt.Printf("%s %s\n", prog, Version())
		os.Exit(0)
	}
}
