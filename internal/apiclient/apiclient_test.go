package apiclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newClient(t *testing.T, h http.Handler) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadBases(t *testing.T) {
	for _, base := range []string{"", "   ", "localhost:8080", "ftp://x"} {
		if _, err := New(base, nil); err == nil {
			t.Errorf("New(%q) succeeded, want error", base)
		}
	}
	c, err := New("http://x:1/", nil)
	if err != nil || c.Base() != "http://x:1" {
		t.Fatalf("New trailing slash: base %q, err %v", c.Base(), err)
	}
}

// TestErrorEnvelope: the envelope decodes into code+message, legacy
// flat-string bodies still yield the message, and garbage bodies fall
// back to raw text — never a decode failure.
func TestErrorEnvelope(t *testing.T) {
	cases := []struct {
		name, body  string
		status      int
		retryAfter  string
		wantCode    string
		wantMessage string
		wantRetry   time.Duration
		temporary   bool
	}{
		{
			name: "envelope", status: 400,
			body:     `{"error":{"code":"bad_request","message":"scale must be >= 0"}}`,
			wantCode: "bad_request", wantMessage: "scale must be >= 0",
		},
		{
			name: "envelope with retry-after", status: 503, retryAfter: "2",
			body:     `{"error":{"code":"queue_full","message":"job queue is full"}}`,
			wantCode: "queue_full", wantMessage: "job queue is full",
			wantRetry: 2 * time.Second, temporary: true,
		},
		{
			name: "shed 429", status: 429, retryAfter: "1",
			body:     `{"error":{"code":"overloaded","message":"results concurrency limit"}}`,
			wantCode: "overloaded", wantMessage: "results concurrency limit",
			wantRetry: time.Second, temporary: true,
		},
		{
			name: "legacy flat string", status: 404,
			body:        `{"error":"no such job \"j9\""}`,
			wantMessage: `no such job "j9"`,
		},
		{
			name: "plain text body", status: 500,
			body:        "internal chaos\n",
			wantMessage: "internal chaos",
		},
		{
			name: "empty body", status: 502,
			wantMessage: "Bad Gateway",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.retryAfter != "" {
					w.Header().Set("Retry-After", tc.retryAfter)
				}
				w.WriteHeader(tc.status)
				io.WriteString(w, tc.body)
			}))
			err := c.GetJSON(context.Background(), "/v1/jobs/j9", &struct{}{})
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("error %v is not *Error", err)
			}
			if ae.Status != tc.status || ae.Code != tc.wantCode || ae.Message != tc.wantMessage {
				t.Fatalf("got %+v, want status %d code %q message %q", ae, tc.status, tc.wantCode, tc.wantMessage)
			}
			if ae.RetryAfter != tc.wantRetry {
				t.Fatalf("RetryAfter = %v, want %v", ae.RetryAfter, tc.wantRetry)
			}
			if ae.Temporary() != tc.temporary {
				t.Fatalf("Temporary() = %v, want %v", ae.Temporary(), tc.temporary)
			}
			if ErrorStatus(err) != tc.status {
				t.Fatalf("ErrorStatus = %d, want %d", ErrorStatus(err), tc.status)
			}
		})
	}
	if ErrorStatus(errors.New("plain")) != 0 {
		t.Fatal("ErrorStatus of a non-API error should be 0")
	}
}

func TestPostJSONRoundTrip(t *testing.T) {
	c := newClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.Header.Get("Content-Type") != "application/json" {
			t.Errorf("got %s with Content-Type %q", r.Method, r.Header.Get("Content-Type"))
		}
		var in map[string]any
		if err := readJSON(r.Body, &in); err != nil {
			t.Errorf("body: %v", err)
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"j1","echo":%q}`, in["app"])
	}))
	var out struct {
		ID   string `json:"id"`
		Echo string `json:"echo"`
	}
	err := c.PostJSON(context.Background(), "/v1/sweeps", map[string]string{"app": "delaunay"}, &out)
	if err != nil || out.ID != "j1" || out.Echo != "delaunay" {
		t.Fatalf("out %+v, err %v", out, err)
	}
}

func readJSON(r io.Reader, out any) error {
	return json.NewDecoder(r).Decode(out)
}

// TestStream parses id/event/data framing, multi-line data, and EOF.
func TestStream(t *testing.T) {
	c := newClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, "id: 1\nevent: row\ndata: {\"app\":\"delaunay\"}\n\n")
		io.WriteString(w, "event: note\ndata: line1\ndata: line2\n\n")
		io.WriteString(w, "event: done\ndata: {}\n\n")
	}))
	st, err := c.Stream(context.Background(), "/v1/jobs/j1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ev, err := st.Next()
	if err != nil || ev.ID != 1 || ev.Name != "row" || string(ev.Data) != `{"app":"delaunay"}` {
		t.Fatalf("event 1 = %+v, err %v", ev, err)
	}
	ev, err = st.Next()
	if err != nil || ev.Name != "note" || string(ev.Data) != "line1\nline2" {
		t.Fatalf("event 2 = %+v, err %v", ev, err)
	}
	ev, err = st.Next()
	if err != nil || ev.Name != "done" {
		t.Fatalf("event 3 = %+v, err %v", ev, err)
	}
	if _, err = st.Next(); err != io.EOF {
		t.Fatalf("after last event: %v, want io.EOF", err)
	}
}

// TestStreamError: a non-200 on the stream endpoint decodes the
// envelope like any other call.
func TestStreamError(t *testing.T) {
	c := newClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":{"code":"not_found","message":"no such job"}}`)
	}))
	_, err := c.Stream(context.Background(), "/v1/jobs/nope/stream")
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != "not_found" || ae.Status != 404 {
		t.Fatalf("stream error = %v", err)
	}
}

func TestDoNilOutDrainsBody(t *testing.T) {
	c := newClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok":true}`)
	}))
	if err := c.Do(context.Background(), http.MethodGet, "/healthz", nil, nil); err != nil {
		t.Fatal(err)
	}
}
