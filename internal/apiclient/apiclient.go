// Package apiclient is the one HTTP client for whirld's v1 API: every
// in-repo consumer — the distributed dispatcher, the whirlload traffic
// generator, the smoke tests — talks to a daemon through it, so the
// wire conventions (the JSON error envelope, Retry-After back-pressure,
// SSE framing) are implemented exactly once.
//
// The client is deliberately schema-light: it moves JSON values and SSE
// events, and callers bring their own request/response types. What it
// owns is the error contract: every non-2xx /v1 response body is the
// envelope
//
//	{"error": {"code": "queue_full", "message": "job queue is full (64 pending)"}}
//
// which Do/GetJSON/PostJSON/Delete decode into a typed *Error carrying
// the machine-readable code, the human message, the HTTP status, and
// any Retry-After hint — so callers switch on err.Code instead of
// re-parsing bodies.
package apiclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"whirlpool/internal/obs"
)

// Error is a decoded non-2xx response. It is always returned as *Error
// so errors.As works from any wrapping depth.
type Error struct {
	// Code is the envelope's machine-readable error code ("bad_request",
	// "queue_full", ...). Empty when the server predates the envelope or
	// the body was not decodable; Status still identifies the failure.
	Code string
	// Message is the human-readable half of the envelope (or the raw
	// body when no envelope was present).
	Message string
	// Status is the HTTP status code.
	Status int
	// RetryAfter is the parsed Retry-After header (0 when absent): the
	// server's back-pressure hint for 429/503 responses.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("HTTP %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("HTTP %d: %s", e.Status, e.Message)
}

// Temporary reports whether the failure is back-pressure the caller
// should retry (429 shed or 503 queue-full/drain), as opposed to a
// deterministic rejection.
func (e *Error) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// ErrorStatus returns err's HTTP status when err is (or wraps) an
// *Error, and 0 otherwise.
func ErrorStatus(err error) int {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// envelope is the wire shape of every non-2xx /v1 body. Error is kept
// raw because pre-envelope daemons sent {"error": "message"} with a
// plain string — decodable either way, so a new client still reads old
// servers' failures.
type envelope struct {
	Error json.RawMessage `json:"error"`
}

type envelopeBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// decodeError builds the *Error for a non-2xx response from its body
// and headers. Never fails: an undecodable body becomes the message
// verbatim (truncated), so the caller always sees something actionable.
func decodeError(resp *http.Response, body []byte) *Error {
	e := &Error{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var env envelope
	if json.Unmarshal(body, &env) == nil && len(env.Error) > 0 {
		var eb envelopeBody
		if json.Unmarshal(env.Error, &eb) == nil && eb.Message != "" {
			e.Code = eb.Code
			e.Message = eb.Message
			return e
		}
		var legacy string
		if json.Unmarshal(env.Error, &legacy) == nil && legacy != "" {
			e.Message = legacy
			return e
		}
	}
	msg := strings.TrimSpace(string(body))
	if len(msg) > 512 {
		msg = msg[:512] + "..."
	}
	if msg == "" {
		msg = http.StatusText(resp.StatusCode)
	}
	e.Message = msg
	return e
}

// Client talks to one daemon. The zero value is not usable; build with
// New.
type Client struct {
	base string
	http *http.Client
}

// New builds a Client for the daemon at base (e.g. "http://host:8080";
// trailing slashes are trimmed). hc overrides the HTTP client — pass
// nil for a default with no overall timeout, which SSE streams need.
func New(base string, hc *http.Client) (*Client, error) {
	base = strings.TrimRight(strings.TrimSpace(base), "/")
	if base == "" {
		return nil, fmt.Errorf("apiclient: empty base URL")
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("apiclient: base URL %q is not http(s)", base)
	}
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: base, http: hc}, nil
}

// Base returns the normalized base URL.
func (c *Client) Base() string { return c.base }

// Do issues one request against path (which must start with "/"),
// decoding a 2xx JSON body into out (skipped when out is nil) and any
// other status into an *Error. body, when non-nil, is marshaled as the
// JSON request body.
func (c *Client) Do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("apiclient: encoding %s %s body: %v", method, path, err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("apiclient: %v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	injectTraceparent(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("apiclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		return decodeError(resp, data)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("apiclient: decoding %s %s response: %v", method, path, err)
	}
	return nil
}

// injectTraceparent stamps the W3C traceparent header when ctx carries
// a span context (obs.NewContext), so every API call a traced caller
// makes joins its trace — this is how a coordinator's job span becomes
// the parent of a worker's request span across the wire.
func injectTraceparent(ctx context.Context, req *http.Request) {
	if sc, ok := obs.FromContext(ctx); ok {
		req.Header.Set(obs.TraceparentHeader, obs.Traceparent(sc))
	}
}

// GetJSON GETs path and decodes the JSON response into out.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	return c.Do(ctx, http.MethodGet, path, nil, out)
}

// GetRaw GETs path and returns the raw response body (capped at 16 MiB)
// — for non-JSON payloads like the JSONL trace endpoint.
func (c *Client) GetRaw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("apiclient: %v", err)
	}
	injectTraceparent(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("apiclient: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		return nil, decodeError(resp, data)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("apiclient: reading %s: %w", path, err)
	}
	return data, nil
}

// PostJSON POSTs body as JSON and decodes the response into out.
func (c *Client) PostJSON(ctx context.Context, path string, body, out any) error {
	return c.Do(ctx, http.MethodPost, path, body, out)
}

// Delete issues a DELETE, decoding the response into out when non-nil.
func (c *Client) Delete(ctx context.Context, path string, out any) error {
	return c.Do(ctx, http.MethodDelete, path, nil, out)
}

// Event is one Server-Sent Event.
type Event struct {
	// ID is the event's id: line parsed as an integer (0 when absent —
	// whirld row ordinals start at 1).
	ID int
	// Name is the event: field ("row", "done").
	Name string
	// Data is the event's data: payload, typically JSON.
	Data []byte
}

// Stream is an open SSE subscription. Close it (or cancel the request
// context) to release the connection.
type Stream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Stream GETs an SSE endpoint (e.g. "/v1/jobs/j1/stream"). The caller
// must Close the returned stream.
func (c *Client) Stream(ctx context.Context, path string) (*Stream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("apiclient: %v", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	injectTraceparent(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("apiclient: stream %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
		return nil, decodeError(resp, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	return &Stream{body: resp.Body, sc: sc}, nil
}

// Next returns the next event. io.EOF means the server ended the
// stream; any other error is a transport failure.
func (s *Stream) Next() (Event, error) {
	var ev Event
	have := false
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			// Blank line terminates an event — but only one that carried
			// data; leading keep-alive blanks are skipped.
			if have {
				return ev, nil
			}
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
			have = true
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
			have = true
		case strings.HasPrefix(line, "data: "):
			// Multi-line data concatenates with newlines, per the SSE spec.
			if ev.Data != nil {
				ev.Data = append(ev.Data, '\n')
			}
			ev.Data = append(ev.Data, strings.TrimPrefix(line, "data: ")...)
			have = true
		}
	}
	if err := s.sc.Err(); err != nil {
		return Event{}, err
	}
	if have {
		return ev, nil // final event unterminated by a blank line
	}
	return Event{}, io.EOF
}

// Close releases the stream's connection.
func (s *Stream) Close() error { return s.body.Close() }
