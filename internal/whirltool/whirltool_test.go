package whirltool

import (
	"strings"
	"testing"

	"whirlpool/internal/addr"
	"whirlpool/internal/mem"
	"whirlpool/internal/stats"
)

// synthetic address layout: callpoint = high bits of the line address.
func cpOf(l addr.Line) mem.Callpoint {
	return mem.Callpoint(uint64(l) >> 24)
}

func lineFor(cp mem.Callpoint, off uint64) addr.Line {
	return addr.Line(uint64(cp)<<24 | off)
}

// feed generates a stream with three callpoints: two cache-friendly pools
// with similar behaviour and one streaming pool.
func feed(p *Profiler, accesses int) {
	rng := stats.NewRng(7)
	pos := uint64(0)
	for i := 0; i < accesses; i++ {
		switch i % 3 {
		case 0: // friendly A: 8k-line hot set
			p.Access(lineFor(1, rng.Uint64n(8192)))
		case 1: // friendly B: similar 10k-line hot set
			p.Access(lineFor(2, rng.Uint64n(10240)))
		default: // streaming C
			pos++
			p.Access(lineFor(3, pos%(1<<22)))
		}
	}
}

func newTestProfiler() *Profiler {
	return NewProfiler(cpOf, ProfilerConfig{
		Gran:             1024,
		Buckets:          64,
		SampleShift:      2,
		IntervalAccesses: 100_000,
	})
}

func TestProfilerTracksCallpoints(t *testing.T) {
	p := newTestProfiler()
	feed(p, 300_000)
	prof := p.Finish()
	if len(prof.Callpoints) != 3 {
		t.Fatalf("callpoints = %v", prof.Callpoints)
	}
	if prof.Intervals != 3 {
		t.Fatalf("intervals = %d, want 3", prof.Intervals)
	}
	for _, cp := range prof.Callpoints {
		if len(prof.Curves[cp]) != prof.Intervals {
			t.Fatalf("cp %d: %d curves for %d intervals", cp, len(prof.Curves[cp]), prof.Intervals)
		}
	}
}

func TestProfilerPadsLateCallpoints(t *testing.T) {
	p := newTestProfiler()
	// Callpoint 5 only appears in the second interval.
	for i := 0; i < 100_000; i++ {
		p.Access(lineFor(1, uint64(i%1000)))
	}
	for i := 0; i < 100_000; i++ {
		p.Access(lineFor(5, uint64(i%1000)))
	}
	prof := p.Finish()
	if len(prof.Curves[5]) != 2 {
		t.Fatalf("late callpoint has %d curves, want 2", len(prof.Curves[5]))
	}
	if prof.Curves[5][0].Accesses != 0 {
		t.Fatal("padded interval should be empty")
	}
}

// The streaming callpoint must be the outlier: clustering with k=2 should
// group the two cache-friendly callpoints together (the Fig 15 intuition).
func TestAnalyzeClustersFriendlyTogether(t *testing.T) {
	p := newTestProfiler()
	feed(p, 600_000)
	d := Analyze(p.Finish())
	if len(d.Merges) != 2 {
		t.Fatalf("merges = %d, want 2", len(d.Merges))
	}
	pools := d.Pools(2)
	if len(pools) != 2 {
		t.Fatalf("pools = %d", len(pools))
	}
	// One pool must be exactly {3} (the stream).
	var streamAlone bool
	for _, g := range pools {
		if len(g) == 1 && g[0] == 3 {
			streamAlone = true
		}
	}
	if !streamAlone {
		t.Fatalf("streaming callpoint not isolated: %v", pools)
	}
	// First merge (closest) must be the two friendly pools.
	m := d.Merges[0]
	got := append(append([]mem.Callpoint(nil), m.A...), m.B...)
	if len(got) != 2 || (got[0] != 1 && got[1] != 1) || (got[0] != 2 && got[1] != 2) {
		t.Fatalf("first merge should join callpoints 1 and 2, got %v + %v", m.A, m.B)
	}
}

func TestMergeDistancesNondecreasing(t *testing.T) {
	p := newTestProfiler()
	feed(p, 600_000)
	d := Analyze(p.Finish())
	for i := 1; i < len(d.Merges); i++ {
		// Agglomerative clustering merges closest-first; later merges
		// should not be dramatically cheaper (allow slack for the
		// non-metric combined-curve distance).
		if d.Merges[i].Distance < d.Merges[i-1].Distance*0.5 {
			t.Fatalf("merge %d distance %v << previous %v", i,
				d.Merges[i].Distance, d.Merges[i-1].Distance)
		}
	}
}

func TestPoolsCuts(t *testing.T) {
	p := newTestProfiler()
	feed(p, 300_000)
	d := Analyze(p.Finish())
	if n := len(d.Pools(1)); n != 1 {
		t.Fatalf("k=1: %d pools", n)
	}
	if n := len(d.Pools(3)); n != 3 {
		t.Fatalf("k=3: %d pools", n)
	}
	if n := len(d.Pools(10)); n != 3 {
		t.Fatalf("k>leaves: %d pools, want 3", n)
	}
	// Total membership preserved at every cut.
	for k := 1; k <= 3; k++ {
		total := 0
		for _, g := range d.Pools(k) {
			total += len(g)
		}
		if total != 3 {
			t.Fatalf("k=%d loses callpoints: %d", k, total)
		}
	}
}

// Pools active in disjoint phases should cluster cheaply (Sec 4.2: the
// per-interval distance sum makes phase-disjoint pools close).
func TestPhaseDisjointPoolsAreClose(t *testing.T) {
	p := NewProfiler(cpOf, ProfilerConfig{
		Gran: 1024, Buckets: 64, SampleShift: 2, IntervalAccesses: 50_000,
	})
	rng := stats.NewRng(3)
	// Interval 1: only cp 1 active; interval 2: only cp 2; both heavy.
	// cp 3 is active in both intervals (conflicts with both).
	for i := 0; i < 50_000; i++ {
		if i%2 == 0 {
			p.Access(lineFor(1, rng.Uint64n(30000)))
		} else {
			p.Access(lineFor(3, rng.Uint64n(30000)))
		}
	}
	for i := 0; i < 50_000; i++ {
		if i%2 == 0 {
			p.Access(lineFor(2, rng.Uint64n(30000)))
		} else {
			p.Access(lineFor(3, rng.Uint64n(30000)))
		}
	}
	d := Analyze(p.Finish())
	first := d.Merges[0]
	got := map[mem.Callpoint]bool{}
	for _, cp := range append(append([]mem.Callpoint(nil), first.A...), first.B...) {
		got[cp] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("phase-disjoint pools should merge first, merged %v + %v", first.A, first.B)
	}
}

func TestRuntimeMapping(t *testing.T) {
	r := NewRuntime([][]mem.Callpoint{{1, 2}, {3}})
	if r.PoolOf(1) != r.PoolOf(2) {
		t.Fatal("grouped callpoints should share a pool")
	}
	if r.PoolOf(1) == r.PoolOf(3) {
		t.Fatal("separate clusters should get distinct pools")
	}
	if r.PoolOf(99) != mem.DefaultPool {
		t.Fatal("unprofiled callpoints must fall to the default pool")
	}
	if r.NumPools() != 2 {
		t.Fatalf("NumPools = %d", r.NumPools())
	}
}

func TestRenderDendrogram(t *testing.T) {
	p := newTestProfiler()
	feed(p, 300_000)
	d := Analyze(p.Finish())
	out := d.Render(func(cp mem.Callpoint) string {
		return map[mem.Callpoint]string{1: "alpha", 2: "beta", 3: "gamma"}[cp]
	})
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "merge") {
		t.Fatalf("render output missing content:\n%s", out)
	}
}
