// Package whirltool implements WhirlTool (Sec 4), the profile-guided tool
// that discovers memory pools in unmodified programs:
//
//   - The profiler identifies allocations by callpoint and samples each
//     callpoint's stack-distance distribution at regular intervals.
//   - The analyzer clusters callpoints into pools with a distance metric
//     based on miss-rate curves: the extra misses incurred by combining
//     two pools (Appendix B flow model) versus partitioning capacity
//     between them.
//   - The runtime maps each allocation to its assigned pool.
//
// The paper implements the profiler as a Pintool; here it interposes on
// the simulated allocator's callpoint tags (see docs/design.md).
package whirltool

import (
	"fmt"
	"sort"
	"strings"

	"whirlpool/internal/addr"
	"whirlpool/internal/mem"
	"whirlpool/internal/mrc"
)

// Profiler collects per-callpoint, per-interval miss-rate curves from a
// raw access stream.
type Profiler struct {
	cpOf func(addr.Line) mem.Callpoint

	gran        uint64
	buckets     int
	sampleShift uint
	interval    uint64 // accesses per profiling interval

	profs  map[mem.Callpoint]*mrc.Profiler
	curves map[mem.Callpoint][]mrc.Curve
	seen   uint64
	closed int // intervals closed so far
}

// ProfilerConfig tunes the profiler. Zero values get defaults.
type ProfilerConfig struct {
	// Gran is the curve bucket size in lines (default 4096 = 1/2 bank).
	Gran uint64
	// Buckets is the curve length (default 120, covering ~30MB).
	Buckets int
	// SampleShift hash-samples 1-in-2^shift lines (default 3).
	SampleShift uint
	// IntervalAccesses closes a profiling interval every N accesses
	// (the paper samples every 50M instructions; default 250k accesses).
	IntervalAccesses uint64
}

// NewProfiler creates a profiler; cpOf resolves a line to its allocation
// callpoint (the simulated allocator's tag lookup).
func NewProfiler(cpOf func(addr.Line) mem.Callpoint, cfg ProfilerConfig) *Profiler {
	if cfg.Gran == 0 {
		cfg.Gran = 4096
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 120
	}
	if cfg.SampleShift == 0 {
		cfg.SampleShift = 3
	}
	if cfg.IntervalAccesses == 0 {
		cfg.IntervalAccesses = 250_000
	}
	return &Profiler{
		cpOf:        cpOf,
		gran:        cfg.Gran,
		buckets:     cfg.Buckets,
		sampleShift: cfg.SampleShift,
		interval:    cfg.IntervalAccesses,
		profs:       make(map[mem.Callpoint]*mrc.Profiler),
		curves:      make(map[mem.Callpoint][]mrc.Curve),
	}
}

// Access feeds one memory reference to the profiler.
func (p *Profiler) Access(l addr.Line) {
	cp := p.cpOf(l)
	prof, ok := p.profs[cp]
	if !ok {
		prof = mrc.NewProfiler(p.gran, p.buckets, p.sampleShift)
		p.profs[cp] = prof
	}
	prof.Access(l)
	p.seen++
	if p.seen%p.interval == 0 {
		p.closeInterval()
	}
}

func (p *Profiler) closeInterval() {
	for cp, prof := range p.profs {
		c := prof.Curve()
		// Pad earlier intervals where this callpoint was absent.
		for len(p.curves[cp]) < p.closed {
			p.curves[cp] = append(p.curves[cp], mrc.NewCurve(p.buckets, p.gran, 0))
		}
		p.curves[cp] = append(p.curves[cp], c)
		prof.Reset()
	}
	p.closed++
}

// Profile is the profiler's output: per-callpoint, per-interval curves.
type Profile struct {
	Callpoints []mem.Callpoint
	Intervals  int
	Curves     map[mem.Callpoint][]mrc.Curve
}

// Finish closes the trailing interval and returns the profile.
func (p *Profiler) Finish() *Profile {
	if p.seen%p.interval != 0 {
		p.closeInterval()
	}
	out := &Profile{
		Intervals: p.closed,
		Curves:    make(map[mem.Callpoint][]mrc.Curve),
	}
	for cp := range p.profs {
		cs := p.curves[cp]
		for len(cs) < p.closed {
			cs = append(cs, mrc.NewCurve(p.buckets, p.gran, 0))
		}
		out.Curves[cp] = cs
		out.Callpoints = append(out.Callpoints, cp)
	}
	sort.Slice(out.Callpoints, func(i, j int) bool {
		return out.Callpoints[i] < out.Callpoints[j]
	})
	return out
}

// Merge records one agglomerative clustering step.
type Merge struct {
	A, B     []mem.Callpoint // members of the two merged clusters
	Distance float64
}

// Dendrogram is the full clustering hierarchy (Fig 17).
type Dendrogram struct {
	Leaves []mem.Callpoint
	Merges []Merge // in merge order (closest first)
}

// cluster is the analyzer's working state for one pool-in-progress.
type cluster struct {
	members []mem.Callpoint
	curves  []mrc.Curve // one per interval
}

// Analyze performs agglomerative clustering over the profiled callpoints.
// Distance between clusters is the summed per-interval area between their
// combined (Appendix B) and partitioned curves, so pools active in
// disjoint phases cluster cheaply (Sec 4.2).
func Analyze(p *Profile) *Dendrogram {
	d := &Dendrogram{Leaves: append([]mem.Callpoint(nil), p.Callpoints...)}
	clusters := make([]*cluster, 0, len(p.Callpoints))
	for _, cp := range p.Callpoints {
		clusters = append(clusters, &cluster{
			members: []mem.Callpoint{cp},
			curves:  p.Curves[cp],
		})
	}
	dist := func(a, b *cluster) float64 {
		sum := 0.0
		for i := 0; i < p.Intervals; i++ {
			sum += mrc.Distance(a.curves[i], b.curves[i])
		}
		return sum
	}
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, 0.0
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				dv := dist(clusters[i], clusters[j])
				if bi < 0 || dv < best {
					bi, bj, best = i, j, dv
				}
			}
		}
		a, b := clusters[bi], clusters[bj]
		d.Merges = append(d.Merges, Merge{
			A:        append([]mem.Callpoint(nil), a.members...),
			B:        append([]mem.Callpoint(nil), b.members...),
			Distance: best,
		})
		merged := &cluster{members: append(append([]mem.Callpoint(nil), a.members...), b.members...)}
		merged.curves = make([]mrc.Curve, p.Intervals)
		for i := 0; i < p.Intervals; i++ {
			c := mrc.Combine(a.curves[i], b.curves[i])
			// Normalize back to the standard geometry so further
			// distance computations stay aligned (the combined domain
			// beyond the profiling window carries no extra signal).
			merged.curves[i] = normalizeCurve(c, a.curves[i].Gran, a.curves[i].Buckets())
		}
		sort.Slice(merged.members, func(x, y int) bool { return merged.members[x] < merged.members[y] })
		clusters[bi] = merged
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	return d
}

// normalizeCurve rebuckets c to the given granularity and bucket count,
// clamping the tail (capacities beyond the profiling window are flat).
func normalizeCurve(c mrc.Curve, gran uint64, buckets int) mrc.Curve {
	out := mrc.Curve{Gran: gran, M: make([]float64, buckets+1), Accesses: c.Accesses}
	for i := 0; i <= buckets; i++ {
		out.M[i] = c.At(uint64(i) * gran)
	}
	return out
}

// Pools cuts the dendrogram into k pools: undo the last k-1 merges.
// Callpoints are grouped by connected components of the earlier merges.
func (d *Dendrogram) Pools(k int) [][]mem.Callpoint {
	n := len(d.Leaves)
	if k >= n {
		out := make([][]mem.Callpoint, n)
		for i, cp := range d.Leaves {
			out[i] = []mem.Callpoint{cp}
		}
		return out
	}
	if k < 1 {
		k = 1
	}
	// Union-find over the first n-k merges.
	parent := make(map[mem.Callpoint]mem.Callpoint, n)
	var find func(x mem.Callpoint) mem.Callpoint
	find = func(x mem.Callpoint) mem.Callpoint {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, cp := range d.Leaves {
		parent[cp] = cp
	}
	for _, m := range d.Merges[:n-k] {
		ra, rb := find(m.A[0]), find(m.B[0])
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := make(map[mem.Callpoint][]mem.Callpoint)
	for _, cp := range d.Leaves {
		r := find(cp)
		groups[r] = append(groups[r], cp)
	}
	roots := make([]mem.Callpoint, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	out := make([][]mem.Callpoint, 0, k)
	for _, r := range roots {
		g := groups[r]
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out = append(out, g)
	}
	return out
}

// Render prints the dendrogram as indented merge steps (the textual Fig
// 17), with names resolved through nameOf.
func (d *Dendrogram) Render(nameOf func(mem.Callpoint) string) string {
	var b strings.Builder
	for i, m := range d.Merges {
		fmt.Fprintf(&b, "merge %2d  dist=%-12.4g  {%s} + {%s}\n",
			i+1, m.Distance, joinNames(m.A, nameOf), joinNames(m.B, nameOf))
	}
	return b.String()
}

func joinNames(cps []mem.Callpoint, nameOf func(mem.Callpoint) string) string {
	names := make([]string, len(cps))
	for i, cp := range cps {
		names[i] = nameOf(cp)
	}
	return strings.Join(names, ",")
}
