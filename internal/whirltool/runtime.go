package whirltool

import "whirlpool/internal/mem"

// Runtime is WhirlTool's allocator shim: it maps each allocation callpoint
// to its assigned pool. Allocations from unprofiled callpoints fall into
// the default (thread-private) pool, as in Sec 4.3.
type Runtime struct {
	poolOf map[mem.Callpoint]mem.PoolID
}

// NewRuntime builds the callpoint-to-pool map from the analyzer's pools:
// pool i+1 holds the i-th cluster (pool 0 is the default pool).
func NewRuntime(pools [][]mem.Callpoint) *Runtime {
	r := &Runtime{poolOf: make(map[mem.Callpoint]mem.PoolID)}
	for i, group := range pools {
		for _, cp := range group {
			r.poolOf[cp] = mem.PoolID(i + 1)
		}
	}
	return r
}

// PoolOf returns the pool for an allocation callpoint.
func (r *Runtime) PoolOf(cp mem.Callpoint) mem.PoolID {
	return r.poolOf[cp] // zero value = DefaultPool for unprofiled sites
}

// NumPools returns the number of assigned pools (excluding default).
func (r *Runtime) NumPools() int {
	max := mem.PoolID(0)
	for _, p := range r.poolOf {
		if p > max {
			max = p
		}
	}
	return int(max)
}
